package rtsm

import (
	"fmt"
	"sync/atomic"
	"testing"

	"rtsm/internal/arch"
	"rtsm/internal/core"
	"rtsm/internal/manager"
	"rtsm/internal/model"
	"rtsm/internal/workload"
)

// The admission benchmarks measure the online manager's throughput on a
// multi-application churn workload: a stream of distinct synthetic
// applications is admitted and immediately released, so the platform stays
// in steady state and the cost measured is the full admission pipeline —
// snapshot, speculative mapping, serialized commit. The sequential
// variant is the pre-pipeline behaviour (one admission at a time); the
// parallel variants run the mapping phase on N workers and quantify the
// speedup optimistic concurrency buys. EXPERIMENTS.md records a reference
// run.

func churnApp(i int) (*model.Application, *model.Library) {
	// 64 recurring application structures — an online deployment serves
	// a fixed catalogue of streaming applications, not endless novelty.
	s := i % 64
	app, lib := workload.Synthetic(workload.SynthOptions{
		Shape:     workload.ShapeChain,
		Processes: 3 + s%3,
		Seed:      int64(s),
		MaxUtil:   0.15,
		// A relaxed period keeps per-channel bandwidth low so the shared
		// SRC0/SINK0 network interfaces fit the ~2×workers applications
		// resident at once; the platform saturates around 46 of these.
		PeriodNs: 40_000,
	})
	app.Name = fmt.Sprintf("churn-%d", i)
	return app, lib
}

// warmCatalogue runs one admission of every catalogue structure (as
// built by arrival) outside the benchmark timer, so all variants measure
// steady-state throughput (for the reuse-enabled ones that includes a
// warm template cache) rather than first-arrival costs.
func warmCatalogue(b *testing.B, m *manager.Manager, arrival func(s int) (*model.Application, *model.Library)) {
	// First pass keeps admissions resident, so successive structures are
	// mapped against an increasingly loaded platform and the remembered
	// placements spread over the mesh instead of all clustering on the
	// same first-fit tiles.
	var names []string
	for s := 0; s < 64; s++ {
		app, lib := arrival(s)
		app.Name = fmt.Sprintf("warm-res-%d", s)
		if out := m.Admit(app, lib); out.Admitted {
			names = append(names, app.Name)
		}
	}
	for _, name := range names {
		if err := m.Stop(name); err != nil {
			b.Fatal(err)
		}
	}
	// Second pass adds each structure's empty-platform placement.
	for s := 0; s < 64; s++ {
		app, lib := arrival(s)
		app.Name = fmt.Sprintf("warm-%d", s)
		if out := m.Admit(app, lib); out.Admitted {
			if err := m.Stop(app.Name); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAdmissionThroughput is the sequential path: arrivals admitted
// one at a time from a single goroutine, as the pre-pipeline manager did.
func BenchmarkAdmissionThroughput(b *testing.B) {
	m := manager.New(workload.SyntheticPlatform(8, 8, 123), core.Config{})
	warmCatalogue(b, m, churnApp)
	base := m.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app, lib := churnApp(i)
		out := m.Admit(app, lib)
		if out.Admitted {
			if err := m.Stop(app.Name); err != nil {
				b.Fatal(err)
			}
		}
	}
	reportAdmissions(b, m, base)
}

func benchmarkAdmissionParallel(b *testing.B, workers int, reuse, repair bool) {
	m := manager.New(workload.SyntheticPlatform(8, 8, 123), core.Config{})
	m.SetMappingReuse(reuse)
	m.SetRepair(repair)
	warmCatalogue(b, m, churnApp)
	base := m.Stats()
	pipe := manager.NewPipeline(m, workers, workers)
	defer pipe.Close()

	// Keep the stop side tight: a deep buffer here would let admitted
	// applications linger as residents and squeeze later arrivals out.
	pending := make(chan (<-chan manager.Outcome), workers)
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		for ch := range pending {
			out := <-ch
			if out.Admitted {
				if err := m.Stop(out.App); err != nil {
					// Keep draining: bailing out here would wedge the
					// producer on the bounded pending channel and hang
					// the benchmark instead of failing it.
					b.Error(err)
				}
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app, lib := churnApp(i)
		ch, err := pipe.Submit(app, lib)
		if err != nil {
			b.Fatal(err)
		}
		pending <- ch
	}
	close(pending)
	<-collectorDone
	b.StopTimer()
	reportAdmissions(b, m, base)
}

// BenchmarkAdmissionThroughputParallel4 runs the same workload through a
// 4-worker pipeline configured as a throughput deployment (mapping reuse
// on); the acceptance bar is ≥2x the sequential admissions/sec. On
// multi-core hosts the speedup comes from parallel speculative mapping
// AND template reuse; on a single-core host (like the CI container)
// reuse carries it alone — the %reused metric makes the split visible.
func BenchmarkAdmissionThroughputParallel4(b *testing.B) {
	benchmarkAdmissionParallel(b, 4, true, true)
}

// BenchmarkAdmissionThroughputParallel4NoRepair is the same deployment
// with the incremental remapping engine off: every conflict retry and
// stale template re-runs the full four-step map. Comparing it against
// Parallel4 quantifies what repair buys under contention; CI uploads the
// pair as the repair on/off comparison artifact.
func BenchmarkAdmissionThroughputParallel4NoRepair(b *testing.B) {
	benchmarkAdmissionParallel(b, 4, true, false)
}

// BenchmarkAdmissionThroughputParallel8 doubles the workers to expose the
// scaling curve past the acceptance point.
func BenchmarkAdmissionThroughputParallel8(b *testing.B) {
	benchmarkAdmissionParallel(b, 8, true, true)
}

// BenchmarkAdmissionThroughputParallel4NoReuse isolates pure optimistic
// concurrency: 4 mapping workers, every arrival fully mapped. This is
// the number to watch on multi-core hosts; on one core it cannot beat
// sequential (mapping is CPU-bound) and documents exactly that.
func BenchmarkAdmissionThroughputParallel4NoReuse(b *testing.B) {
	benchmarkAdmissionParallel(b, 4, false, true)
}

// shardApp is churnApp pinned to one region's stream endpoints: arrival i
// rotates through both the 64-structure catalogue and the platform's
// regions, so consecutive arrivals land in different mesh regions and
// their commit footprints are (mostly) disjoint.
func shardApp(i, regions int) (*model.Application, *model.Library) {
	s := i % 64
	r := i % regions
	app, lib := workload.Synthetic(workload.SynthOptions{
		Shape:     workload.ShapeChain,
		Processes: 3 + s%3,
		Seed:      int64(s),
		MaxUtil:   0.15,
		PeriodNs:  40_000,
		SrcTile:   fmt.Sprintf("SRC%d", r),
		SinkTile:  fmt.Sprintf("SINK%d", r),
	})
	app.Name = fmt.Sprintf("churn-%d", i)
	return app, lib
}

// benchmarkAdmissionSharded drives the region-pinned churn workload
// through a pipeline. Both sides of the sharded-vs-global comparison use
// the same 8×8 platform with one SRC/SINK pair per 4×4 quadrant and the
// same round-robin region pinning; `sharded` only selects whether commits
// take per-region locks (4 regions) or one global region lock. The
// difference between the two is therefore exactly what sharding the
// commit path buys.
func benchmarkAdmissionSharded(b *testing.B, workers int, sharded bool) {
	const regionSize = 4
	plat := workload.SyntheticRegionPlatform(8, 8, 123, regionSize)
	regions := plat.RegionCount()
	if !sharded {
		plat.PartitionRegions(0) // same workload, one lock
	}
	m := manager.New(plat, core.Config{})
	m.SetMappingReuse(true)
	m.SetRepair(true)
	// Warm the template cache per (structure, region) pair so the timed
	// section measures steady state.
	warmCatalogue(b, m, func(s int) (*model.Application, *model.Library) {
		return shardApp(s, regions)
	})
	base := m.Stats()
	pipe := manager.NewPipeline(m, workers, workers)
	defer pipe.Close()
	pending := make(chan (<-chan manager.Outcome), workers)
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		for ch := range pending {
			out := <-ch
			if out.Admitted {
				if err := m.Stop(out.App); err != nil {
					b.Error(err)
				}
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app, lib := shardApp(i, regions)
		ch, err := pipe.Submit(app, lib)
		if err != nil {
			b.Fatal(err)
		}
		pending <- ch
	}
	close(pending)
	<-collectorDone
	b.StopTimer()
	reportAdmissions(b, m, base)
}

// BenchmarkAdmissionShardedRegions commits the region-pinned workload
// through per-region locks: admissions whose plans touch disjoint 4×4
// quadrants of the 8×8 mesh validate and commit fully in parallel.
// Compare against BenchmarkAdmissionShardedGlobalLock — identical
// workload, one global lock — to read off what the sharded commit path
// buys; CI uploads the pair as the sharded-vs-global artifact.
func BenchmarkAdmissionShardedRegions(b *testing.B) {
	benchmarkAdmissionSharded(b, 4, true)
}

// BenchmarkAdmissionShardedGlobalLock is the ablation: the identical
// region-pinned workload with the platform left unpartitioned, so every
// commit serializes behind one region lock (the pre-sharding behaviour).
func BenchmarkAdmissionShardedGlobalLock(b *testing.B) {
	benchmarkAdmissionSharded(b, 4, false)
}

// benchmarkCommitOnly isolates the commit section itself: four
// goroutines repeatedly validate-commit-release pre-computed plans, one
// per 4×4 quadrant, with no mapping work in the loop. Sharded, each
// goroutine holds only its own region's lock and the four commit
// sections proceed concurrently (uncontended locks); global, all four
// serialize behind one lock. The pair therefore measures exactly what
// the ISSUE's acceptance criterion names: disjoint-region admissions
// committing concurrently vs not.
func benchmarkCommitOnly(b *testing.B, sharded bool) {
	const regionSize = 4
	plat := workload.SyntheticRegionPlatform(8, 8, 123, regionSize)
	regions := plat.RegionCount()
	if !sharded {
		plat.PartitionRegions(0) // same platform and plans, one lock
	}
	locks := arch.NewRegionLocks(plat.RegionCount())
	// One pre-mapped application per quadrant, computed on the empty
	// platform; the timed loop never runs the mapper.
	plans := make([]*core.Plan, regions)
	for r := 0; r < regions; r++ {
		app, lib := workload.Synthetic(workload.SynthOptions{
			Shape: workload.ShapeChain, Processes: 3, Seed: int64(r),
			MaxUtil: 0.15, PeriodNs: 40_000,
			SrcTile: fmt.Sprintf("SRC%d", r), SinkTile: fmt.Sprintf("SINK%d", r),
		})
		app.Name = fmt.Sprintf("commit-only-%d", r)
		mapper := &core.Mapper{Lib: lib}
		res, err := mapper.Map(app, plat)
		if err != nil || !res.Feasible {
			b.Fatalf("fixture mapping for region %d failed: %v", r, err)
		}
		plan, err := core.NewPlan(plat, res)
		if err != nil {
			b.Fatal(err)
		}
		plans[r] = plan
	}
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		plan := plans[int(next.Add(1)-1)%regions]
		footprint := plan.Regions()
		for pb.Next() {
			locks.Lock(footprint)
			if err := plan.Validate(plat); err != nil {
				locks.Unlock(footprint)
				b.Error(err)
				return
			}
			plan.Commit(plat)
			plan.Release(plat)
			locks.Unlock(footprint)
		}
	})
}

// BenchmarkAdmissionShardedCommitOnly: the per-region-lock commit
// section, four disjoint quadrants committing concurrently.
func BenchmarkAdmissionShardedCommitOnly(b *testing.B) {
	benchmarkCommitOnly(b, true)
}

// BenchmarkAdmissionShardedCommitOnlyGlobalLock: the same commit
// sections serialized behind one global region lock.
func BenchmarkAdmissionShardedCommitOnlyGlobalLock(b *testing.B) {
	benchmarkCommitOnly(b, false)
}

// batchApp is shardApp with a lighter QoS contract: utilisation low
// enough that the 16×16 mesh never runs out of capacity under the
// benchmark's resident population, and a relaxed period so the shared
// per-region stream interfaces stay uncontended. In this regime an
// admission is pure pipeline overhead — queue hop, fingerprint,
// validation, locks, bookkeeping — which is exactly the cost batching
// claims to amortize; heavier contracts shift the comparison to repair
// throughput, which both variants share.
func batchApp(i, regions int) (*model.Application, *model.Library) {
	s := i % 64
	r := i % regions
	app, lib := workload.Synthetic(workload.SynthOptions{
		Shape:     workload.ShapeChain,
		Processes: 3 + s%3,
		Seed:      int64(s),
		MaxUtil:   0.05,
		PeriodNs:  400_000,
		SrcTile:   fmt.Sprintf("SRC%d", r),
		SinkTile:  fmt.Sprintf("SINK%d", r),
	})
	app.Name = fmt.Sprintf("churn-%d", i)
	return app, lib
}

// benchmarkAdmissionBatched drives a region-spread churn workload (one
// arrival per region, round-robin over a 16-region 16×16 mesh) through a
// pipeline with the batched admission path at drain size `batch` (0 =
// per-item admission, the unbatched control). Everything else — platform,
// workload, workers, queue depth, collector — is identical between the
// two variants, so the admissions/sec difference is exactly what merging
// disjoint plans into one multi-application commit buys.
func benchmarkAdmissionBatched(b *testing.B, workers, batch int, cfg core.Config) {
	const regionSize = 4
	plat := workload.SyntheticRegionPlatform(16, 16, 123, regionSize)
	regions := plat.RegionCount()
	m := manager.New(plat, cfg)
	m.SetMappingReuse(true)
	m.SetRepair(true)
	warmCatalogue(b, m, func(s int) (*model.Application, *model.Library) {
		return batchApp(s, regions)
	})
	base := m.Stats()
	// Same deep queue for both variants: batches can only form when the
	// submit side can run ahead of the workers.
	pipe := manager.NewPipeline(m, workers, workers*8)
	defer pipe.Close()
	if batch > 1 {
		pipe.SetBatch(batch)
	}
	// The pending buffer caps the resident population (admissions the
	// collector has not yet stopped). Keeping it below the region count
	// leaves every region mostly free, so the remembered placements stay
	// valid and the timed section measures pipeline overhead, not tile
	// contention.
	pending := make(chan (<-chan manager.Outcome), workers*3)
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		for ch := range pending {
			out := <-ch
			if out.Admitted {
				if err := m.Stop(out.App); err != nil {
					b.Error(err)
				}
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app, lib := batchApp(i, regions)
		ch, err := pipe.Submit(app, lib)
		if err != nil {
			b.Fatal(err)
		}
		pending <- ch
	}
	close(pending)
	<-collectorDone
	b.StopTimer()
	st := m.Stats()
	total := st.Admitted - base.Admitted
	if total > 0 {
		b.ReportMetric(100*float64(st.BatchedAdmissions-base.BatchedAdmissions)/float64(total), "%batched")
		b.ReportMetric(100*float64(st.BatchSpills-base.BatchSpills)/float64(total), "%spilled")
		b.ReportMetric(100*float64(st.BatchFallbacks-base.BatchFallbacks)/float64(total), "%fellback")
	}
	reportAdmissions(b, m, base)
}

// BenchmarkAdmissionBatched is the batched admission path end to end: 4
// pipeline workers draining up to 8 region-spread arrivals into one
// merged multi-application commit per round, queue hops and collector
// included. The acceptance bar is ≥1.3x the admissions/sec of
// BenchmarkAdmissionUnbatched; CI uploads the pair (BENCH_6.json) as
// the batched-vs-unbatched artifact. The win is contention absorption,
// not raw path length: per admission the batch does the same
// fingerprint-plan-validate-commit work as the per-item path (the
// uncontended BenchmarkAdmissionBurst* pair in internal/manager pins
// that parity), but one merged commit replaces K racing lock
// acquisitions, and arrivals whose footprints collide recycle their
// speculative plan through a spill commit instead of re-racing — the
// retries/arrival metric reads several times lower than the unbatched
// control's.
func BenchmarkAdmissionBatched(b *testing.B) {
	benchmarkAdmissionBatched(b, 4, 8, core.Config{})
}

// BenchmarkAdmissionUnbatched is the per-item control: the identical
// region-spread workload, pipeline and queue depth with batching off.
func BenchmarkAdmissionUnbatched(b *testing.B) {
	benchmarkAdmissionBatched(b, 4, 0, core.Config{})
}

// BenchmarkAdmissionBatchedRegionBias is BenchmarkAdmissionBatched with
// the region-aware placement bias on: the mapper prices tiles outside the
// regions a spec already occupies, so speculative plans keep narrower
// region-lock footprints and more of them merge into each batch commit
// instead of spilling. The workload pins each arrival's endpoints to one
// region already, so the headline admissions/sec sits near the unbiased
// number — the bias is the %spilled/%fellback knob for workloads whose
// footprints would otherwise straddle regions (EXPERIMENTS.md records the
// comparison).
func BenchmarkAdmissionBatchedRegionBias(b *testing.B) {
	benchmarkAdmissionBatched(b, 4, 8, core.Config{RegionBias: 10})
}

// reportAdmissions derives the timed-section metrics: base is the stats
// snapshot taken after the untimed warmup, so its arrivals don't count.
func reportAdmissions(b *testing.B, m *manager.Manager, base manager.Stats) {
	st := m.Stats()
	st.Admitted -= base.Admitted
	st.Rejected -= base.Rejected
	st.Retries -= base.Retries
	st.TemplateHits -= base.TemplateHits
	st.ConflictRetries -= base.ConflictRetries
	st.StaleTemplates -= base.StaleTemplates
	st.RepairedConflicts -= base.RepairedConflicts
	st.RepairedTemplates -= base.RepairedTemplates
	if st.Admitted == 0 {
		b.Fatal("benchmark admitted nothing; workload broken")
	}
	elapsed := b.Elapsed()
	if elapsed > 0 {
		b.ReportMetric(float64(st.Admitted)/elapsed.Seconds(), "admissions/sec")
	}
	total := st.Admitted + st.Rejected
	b.ReportMetric(100*float64(st.Admitted)/float64(total), "%admitted")
	b.ReportMetric(float64(st.Retries)/float64(total), "retries/arrival")
	b.ReportMetric(100*float64(st.TemplateHits)/float64(total), "%reused")
	if rate, ok := st.RepairRate(); ok {
		b.ReportMetric(100*rate, "%repaired")
	}
	if err := m.CheckInvariants(); err != nil {
		b.Fatalf("ledger corrupted under benchmark load: %v", err)
	}
}
