package rtsm

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestGodocCoverage enforces the documentation contract on the packages
// the architecture guide describes: every package carries a package
// comment and every exported top-level identifier (type, function,
// method, var and const group) carries a doc comment. go vet has no such
// check, so this test is the enforcement mechanism — it runs in the
// normal CI test step and fails the build on an undocumented export.
func TestGodocCoverage(t *testing.T) {
	pkgs := []string{
		"internal/arch",
		"internal/core",
		"internal/manager",
		"internal/fleet",
		"internal/churn",
		"internal/stream",
		"internal/front",
		"internal/chaos",
	}
	for _, dir := range pkgs {
		t.Run(strings.ReplaceAll(dir, "/", "_"), func(t *testing.T) {
			for _, problem := range lintPackageDocs(t, dir) {
				t.Error(problem)
			}
		})
	}
}

// lintPackageDocs parses a package directory (tests excluded) and
// returns one message per documentation gap.
func lintPackageDocs(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgMap, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	var problems []string
	for _, pkg := range pkgMap {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		for name, f := range pkg.Files {
			rel := filepath.Base(name)
			for _, decl := range f.Decls {
				problems = append(problems, lintDecl(fset, dir, rel, decl)...)
			}
		}
	}
	return problems
}

// lintDecl reports documentation gaps of one top-level declaration.
func lintDecl(fset *token.FileSet, dir, file string, decl ast.Decl) []string {
	var problems []string
	missing := func(pos token.Pos, what string) {
		problems = append(problems, fmt.Sprintf("%s/%s:%d: %s lacks a doc comment",
			dir, file, fset.Position(pos).Line, what))
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return nil
		}
		kind := "exported function " + d.Name.Name
		if d.Recv != nil {
			// Only methods on exported receivers are part of the API.
			if recvTypeName(d.Recv) == "" {
				return nil
			}
			kind = fmt.Sprintf("exported method %s.%s", recvTypeName(d.Recv), d.Name.Name)
		}
		missing(d.Pos(), kind)
	case *ast.GenDecl:
		groupDoc := d.Doc != nil
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && !groupDoc && s.Doc == nil {
					missing(s.Pos(), "exported type "+s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, n := range s.Names {
					// A doc comment on the group (const/var block) covers
					// its members; ungrouped exported values need their
					// own.
					if n.IsExported() && !groupDoc && s.Doc == nil {
						missing(n.Pos(), "exported value "+n.Name)
					}
				}
			}
		}
	}
	return problems
}

// recvTypeName returns the exported receiver type name of a method, or ""
// when the receiver type is unexported.
func recvTypeName(recv *ast.FieldList) string {
	if recv == nil || len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok && id.IsExported() {
		return id.Name
	}
	return ""
}
