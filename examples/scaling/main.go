// Scaling: the benchmark corpus the paper's conclusions ask for (§5),
// exercised through the public API. Generates synthetic streaming
// applications of the three shapes across sizes, maps each, and prints a
// compact survey of mapper time, feasibility and energy, plus an
// independent simulation cross-check of a sample.
//
// Run with: go run ./examples/scaling
package main

import (
	"fmt"
	"log"
	"time"

	"rtsm/internal/core"
	"rtsm/internal/sim"
	"rtsm/internal/workload"
)

func main() {
	shapes := []workload.Shape{workload.ShapeChain, workload.ShapeForkJoin, workload.ShapeLayered}
	sizes := []int{4, 8, 16, 32}

	fmt.Printf("%-10s %-6s %-10s %-10s %-12s %s\n",
		"shape", "procs", "feasible", "time", "energy[nJ]", "sim check")
	for _, shape := range shapes {
		for _, n := range sizes {
			app, lib := workload.Synthetic(workload.SynthOptions{
				Shape: shape, Processes: n, Seed: int64(n) * 31,
			})
			plat := workload.SyntheticPlatform(6, 6, int64(n)*31)
			start := time.Now()
			res, err := core.NewMapper(lib).Map(app, plat)
			elapsed := time.Since(start)
			if err != nil {
				log.Fatalf("%s/%d: %v", shape, n, err)
			}
			check := "-"
			if res.Feasible {
				rep, err := sim.Validate(app, res)
				if err != nil {
					log.Fatalf("%s/%d: sim: %v", shape, n, err)
				}
				if rep.MeetsThroughput {
					check = "confirmed"
				} else {
					check = fmt.Sprintf("period %.0f ns in sim", rep.PeriodNs)
				}
			}
			fmt.Printf("%-10s %-6d %-10v %-10v %-12.1f %s\n",
				shape, n, res.Feasible, elapsed.Round(time.Microsecond), res.Energy.Total(), check)
		}
	}
}
