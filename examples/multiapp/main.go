// Multi-application admission: the scenario the paper's introduction
// motivates. Applications are started and stopped at run time; each new
// arrival is mapped against the platform's *actual* residual resources
// (not design-time worst cases), admitted if feasible, and its
// reservations persist until it stops.
//
// Two HIPERLAN/2 receivers cannot coexist on the Figure 2 platform (four
// heavy kernels, two Montiums) — but a receiver plus a lightweight sensor
// pipeline can, and after the receiver stops, a second receiver fits
// again.
//
// Run with: go run ./examples/multiapp
package main

import (
	"fmt"
	"log"

	"rtsm/internal/arch"
	"rtsm/internal/core"
	"rtsm/internal/csdf"
	"rtsm/internal/model"
	"rtsm/internal/workload"
)

// sensorApp is a light two-process pipeline that fits on the ARMs next to
// a running receiver.
func sensorApp() (*model.Application, *model.Library) {
	app := model.NewApplication("sensor", model.QoS{PeriodNs: 100_000})
	src := app.AddPinnedProcess("probe", "A/D")
	avg := app.AddProcess("avg")
	detect := app.AddProcess("detect")
	sink := app.AddPinnedProcess("report", "Sink")
	app.Connect(src, avg, 16, 4)
	app.Connect(avg, detect, 4, 4)
	app.Connect(detect, sink, 1, 4)
	lib := model.NewLibrary()
	lib.Add(&model.Implementation{
		Process: "avg", TileType: arch.TypeARM,
		WCET:            csdf.Vals(3, 120, 1),
		In:              map[string]csdf.Pattern{"in": csdf.Vals(16, 0, 0)},
		Out:             map[string]csdf.Pattern{"out": csdf.Vals(0, 0, 4)},
		EnergyPerPeriod: 15, MemBytes: 1024,
	})
	lib.Add(&model.Implementation{
		Process: "detect", TileType: arch.TypeARM,
		WCET:            csdf.Vals(1, 80, 1),
		In:              map[string]csdf.Pattern{"in": csdf.Vals(4, 0, 0)},
		Out:             map[string]csdf.Pattern{"out": csdf.Vals(0, 0, 1)},
		EnergyPerPeriod: 9, MemBytes: 1024,
	})
	return app, lib
}

func occupancy(plat *arch.Platform) string {
	s := ""
	for _, t := range plat.Tiles {
		if t.Occupants > 0 {
			s += fmt.Sprintf("  %-9s occ=%d util=%.0f%% mem=%d B\n",
				t.Name, t.Occupants, 100*t.ReservedUtil, t.ReservedMem)
		}
	}
	if s == "" {
		return "  (all tiles idle)\n"
	}
	return s
}

func main() {
	plat := workload.Hiperlan2Platform()
	mode := workload.Hiperlan2Modes[2]

	fmt.Println("1) Admit a HIPERLAN/2 receiver:")
	rxApp := workload.Hiperlan2(mode)
	rxLib := workload.Hiperlan2Library(mode)
	rx, err := core.NewMapper(rxLib).Map(rxApp, plat)
	if err != nil {
		log.Fatal(err)
	}
	if !rx.Feasible {
		log.Fatal("receiver unexpectedly infeasible")
	}
	if err := core.Apply(plat, rx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   admitted at %.1f nJ/symbol\n", rx.Energy.Total())
	fmt.Print(occupancy(plat))

	fmt.Println("\n2) Try to admit a second receiver (should fail — the Montiums are taken):")
	rx2App := workload.Hiperlan2(mode)
	rx2App.Name = "hiperlan2-rx2"
	rx2, err := core.NewMapper(rxLib).Map(rx2App, plat)
	switch {
	case err != nil:
		fmt.Printf("   rejected: %v\n", err)
	case !rx2.Feasible:
		fmt.Println("   rejected: no feasible mapping with current occupancy")
	default:
		fmt.Println("   unexpectedly admitted!")
	}

	fmt.Println("\n3) Admit a lightweight sensor pipeline alongside (fits the ARM headroom):")
	sApp, sLib := sensorApp()
	sensor, err := core.NewMapper(sLib).Map(sApp, plat)
	if err != nil {
		log.Fatal(err)
	}
	if !sensor.Feasible {
		log.Fatalf("sensor infeasible: %v", sensor.Trace.Notes)
	}
	if err := core.Apply(plat, sensor); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   admitted at %.1f nJ/period\n", sensor.Energy.Total())
	fmt.Print(occupancy(plat))

	fmt.Println("\n4) Stop the receiver and retry the second one:")
	core.Remove(plat, rx)
	rx2, err = core.NewMapper(rxLib).Map(rx2App, plat)
	if err != nil {
		log.Fatal(err)
	}
	if !rx2.Feasible {
		log.Fatalf("second receiver still infeasible: %v", rx2.Trace.Notes)
	}
	if err := core.Apply(plat, rx2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   admitted at %.1f nJ/symbol\n", rx2.Energy.Total())
	fmt.Print(occupancy(plat))
}
