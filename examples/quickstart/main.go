// Quickstart: define a three-process streaming application, give each
// process two implementations, build a 2×2 platform, and let the run-time
// spatial mapper place, route and verify it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rtsm/internal/arch"
	"rtsm/internal/core"
	"rtsm/internal/csdf"
	"rtsm/internal/model"
)

func main() {
	// 1. The application: a pipeline src → filter → fft → quant → sink
	//    processing one block of 64 samples every 10 µs.
	app := model.NewApplication("quickstart", model.QoS{PeriodNs: 10_000})
	src := app.AddPinnedProcess("src", "ADC")
	filter := app.AddProcess("filter")
	fft := app.AddProcess("fft")
	quant := app.AddProcess("quant")
	sink := app.AddPinnedProcess("sink", "DAC")
	app.Connect(src, filter, 64, 4)
	app.Connect(filter, fft, 64, 4)
	app.Connect(fft, quant, 64, 4)
	app.Connect(quant, sink, 16, 4)

	// 2. The implementation library: every process can run on an ARM
	//    (cheap to have around, hungry per sample) or on a DSP (faster
	//    and leaner). CSDF phases are read / compute / write; WCETs are
	//    clock cycles on the target tile.
	lib := model.NewLibrary()
	impl := func(proc string, tt arch.TileType, compute int64, energy float64, inTok, outTok int64) *model.Implementation {
		return &model.Implementation{
			Process: proc, TileType: tt,
			WCET:            csdf.Vals(inTok/8+1, compute, outTok/8+1),
			In:              map[string]csdf.Pattern{"in": csdf.Vals(inTok, 0, 0)},
			Out:             map[string]csdf.Pattern{"out": csdf.Vals(0, 0, outTok)},
			EnergyPerPeriod: energy, MemBytes: 2048,
		}
	}
	lib.Add(impl("filter", arch.TypeARM, 400, 90, 64, 64))
	lib.Add(impl("filter", arch.TypeDSP, 250, 35, 64, 64))
	lib.Add(impl("fft", arch.TypeARM, 900, 210, 64, 64))
	lib.Add(impl("fft", arch.TypeDSP, 400, 95, 64, 64))
	lib.Add(impl("quant", arch.TypeARM, 150, 40, 64, 16))
	lib.Add(impl("quant", arch.TypeDSP, 100, 25, 64, 16))

	// 3. The platform: a 2×2 mesh with one ARM, one DSP, and the two
	//    pinned converter tiles.
	plat := arch.NewMesh("quickstart-soc", 2, 2, 800_000_000)
	plat.AttachTile(arch.TileSpec{Name: "ARM0", Type: arch.TypeARM, At: arch.Pt(1, 0),
		ClockHz: 200e6, MemBytes: 64 << 10, NICapBps: 800e6})
	plat.AttachTile(arch.TileSpec{Name: "DSP0", Type: arch.TypeDSP, At: arch.Pt(1, 1),
		ClockHz: 200e6, MemBytes: 32 << 10, NICapBps: 800e6})
	plat.AttachTile(arch.TileSpec{Name: "ADC", Type: arch.TypeSource, At: arch.Pt(0, 0),
		ClockHz: 200e6, MemBytes: 8 << 10, NICapBps: 800e6})
	plat.AttachTile(arch.TileSpec{Name: "DAC", Type: arch.TypeSink, At: arch.Pt(0, 1),
		ClockHz: 200e6, MemBytes: 8 << 10, NICapBps: 800e6})

	// 4. Map it.
	res, err := core.NewMapper(lib).Map(app, plat)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("placement:")
	for _, p := range app.Processes {
		tid, ok := res.Mapping.Tile[p.ID]
		if !ok {
			continue
		}
		what := "(pinned)"
		if im := res.Mapping.Impl[p.ID]; im != nil {
			what = fmt.Sprintf("as %s (%.0f nJ/period)", im.TileType, im.EnergyPerPeriod)
		}
		fmt.Printf("  %-8s on %-5s %s\n", p.Name, res.Platform.Tile(tid).Name, what)
	}
	fmt.Printf("\nenergy:   %s\n", res.Energy)
	fmt.Printf("period:   %.0f ns (required %d ns)\n", res.Analysis.Period, app.QoS.PeriodNs)
	fmt.Printf("latency:  %d ns\n", res.Analysis.Latency)
	fmt.Printf("feasible: %v\n", res.Feasible)
}
