// The paper's worked example (§4): the HIPERLAN/2 receiver mapped onto the
// Figure 2 MPSoC, narrated step by step. This walks the exact decisions of
// the paper — step 1's desirability order, Table 2's swap sequence, the
// throughput-sorted routing, and the Figure 3 CSDF graph with computed
// buffers — and then changes the channel conditions at run time
// (switching demapping mode), remapping each time, which is the paper's
// core argument for mapping at run time.
//
// Run with: go run ./examples/hiperlan2
package main

import (
	"fmt"
	"log"

	"rtsm/internal/core"
	"rtsm/internal/workload"
)

func main() {
	fmt.Println("=== The worked example: QPSK3/4 ===")
	mode := workload.Hiperlan2Modes[3]
	app := workload.Hiperlan2(mode)
	lib := workload.Hiperlan2Library(mode)
	plat := workload.Hiperlan2Platform()

	res, err := core.NewMapper(lib).Map(app, plat)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nStep 1 — choose implementations by desirability.")
	fmt.Println("The inverse OFDM and the remainder cannot meet the 4 µs symbol")
	fmt.Println("period on an ARM, and each Montium holds one kernel, so all four")
	fmt.Println("choices are forced in this small example — in the paper's words,")
	fmt.Println("\"chosen per default\":")
	for _, r := range res.Trace.Step1 {
		fmt.Println("   ", r)
	}

	fmt.Println("\nStep 2 — local search over moves and swaps (the paper's Table 2;")
	fmt.Println("cost is the sum of Manhattan distances over all stream channels):")
	fmt.Print(res.Trace.RenderStep2Table([]string{"ARM1", "ARM2", "MONTIUM1", "MONTIUM2"}))

	fmt.Println("\nStep 3 — route channels, heaviest first, reserving lanes:")
	for _, r := range res.Trace.Step3 {
		fmt.Println("   ", r)
	}

	fmt.Println("\nStep 4 — verify QoS on the mapped CSDF graph (Figure 3):")
	fmt.Printf("    period %.0f ns (required %d), latency %d ns → feasible=%v\n",
		res.Analysis.Period, app.QoS.PeriodNs, res.Analysis.Latency, res.Feasible)
	for _, c := range app.StreamChannels() {
		fmt.Printf("    buffer %-24s %3d tokens\n", c.Name, res.Mapping.Buffers[c.ID])
	}
	fmt.Printf("    energy: %s\n", res.Energy)

	fmt.Println("\n=== Run-time adaptation: the seven demapping modes ===")
	fmt.Println("The demapping type changes with channel conditions; remapping at")
	fmt.Println("run time re-verifies and re-prices the stream every time:")
	fmt.Printf("%-12s %-10s %-14s %s\n", "mode", "b [tokens]", "energy [nJ]", "period [ns]")
	for _, m := range workload.Hiperlan2Modes {
		a := workload.Hiperlan2(m)
		l := workload.Hiperlan2Library(m)
		p := workload.Hiperlan2Platform()
		r, err := core.NewMapper(l).Map(a, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %-10d %-14.1f %.0f (feasible=%v)\n",
			m.Name, m.DemapBits, r.Energy.Total(), r.Analysis.Period, r.Feasible)
	}
}
