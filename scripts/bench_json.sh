#!/usr/bin/env bash
# Run a set of root-package benchmarks and render the result as a small
# JSON artifact with per-benchmark metric means and headline speedups.
# The checked-in BENCH_*.json files at the repo root are reference runs
# of this script; CI re-runs it on every build and uploads the fresh
# files alongside the raw `go test -bench` output, so the speedups are
# tracked as first-class comparison artifacts (like the repair and
# sharding pairs in bench.txt), and TestBenchTrajectory gates the
# checked-in numbers against the acceptance bars.
#
# Per-run numbers are noisy — throughput swings with how many conflict
# retries and template repairs the cross-worker races happen to
# trigger — so the JSON records the mean over $COUNT runs of each
# benchmark and ratios of those means.
#
# Usage: scripts/bench_json.sh [BENCHMARK...]
#
#   With no arguments, runs the batched-vs-unbatched admission pair and
#   writes BENCH_6.json in its original format (the lone
#   "speedup_admissions_per_sec" key is batched over unbatched).
#
#   With arguments, each BENCHMARK is an exact root-package benchmark
#   name; the FIRST is the baseline. The JSON gains a "baseline" key and
#   a "speedups_admissions_per_sec" object mapping every other benchmark
#   to its admissions/sec mean over the baseline's.
#
#   BENCHTIME=2s COUNT=3 OUT=BENCH_6.json scripts/bench_json.sh
#   BENCHTIME=800x COUNT=3 OUT=BENCH_7.json DESC="fleet admission: meshes 1 vs 2 vs 4" \
#     scripts/bench_json.sh BenchmarkFleetAdmission1 BenchmarkFleetAdmission2 BenchmarkFleetAdmission4
set -euo pipefail

benchtime=${BENCHTIME:-2s}
count=${COUNT:-3}

if [ "$#" -eq 0 ]; then
  legacy=1
  set -- BenchmarkAdmissionBatched BenchmarkAdmissionUnbatched
  out=${OUT:-BENCH_6.json}
  raw=${RAW:-bench-batch.txt}
  desc=${DESC:-"batched vs unbatched pipeline admission"}
else
  legacy=0
  out=${OUT:?set OUT=<file>.json when naming benchmarks explicitly}
  raw=${RAW:-${out%.json}-raw.txt}
  desc=${DESC:-"$*"}
fi

pattern="^($(IFS='|'; echo "$*"))\$"

go test -run xxx -bench "$pattern" -benchtime "$benchtime" -count "$count" . | tee "$raw"

awk -v benchtime="$benchtime" -v count="$count" -v goversion="$(go version)" \
    -v desc="$desc" -v legacy="$legacy" -v names="$*" '
BEGIN {
  n = split(names, order, " ")
}
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
  want = 0
  for (k = 1; k <= n; k++) if (order[k] == name) want = 1
  if (!want) next
  seen[name] = 1
  runs[name]++
  # A benchmark line is: name, iterations, then (value, unit) pairs.
  for (i = 3; i < NF; i += 2) {
    unit = $(i + 1)
    gsub(/\//, "_per_", unit)
    gsub(/%/, "pct_", unit)
    sum[name, unit] += $i
    if (!(unit in units)) { units[unit] = ++nu; uorder[nu] = unit }
  }
}
END {
  for (k = 1; k <= n; k++) if (!(order[k] in seen)) {
    print "bench_json: missing benchmark " order[k] > "/dev/stderr"
    exit 1
  }
  printf "{\n"
  printf "  \"pair\": \"%s\",\n", desc
  printf "  \"go\": \"%s\",\n", goversion
  printf "  \"benchtime\": \"%s\",\n", benchtime
  printf "  \"count\": %d,\n", count
  printf "  \"benchmarks\": {\n"
  for (k = 1; k <= n; k++) {
    name = order[k]
    printf "    \"%s\": {", name
    first = 1
    for (u = 1; u <= nu; u++) {
      unit = uorder[u]
      if (!((name, unit) in sum)) continue
      if (!first) printf ", "
      first = 0
      printf "\"%s\": %.6g", unit, sum[name, unit] / runs[name]
    }
    printf "}%s\n", (k < n) ? "," : ""
  }
  printf "  },\n"
  if (legacy) {
    # BENCH_6 compatibility: batched over unbatched, single scalar key.
    b = sum[order[1], "admissions_per_sec"] / runs[order[1]]
    u = sum[order[2], "admissions_per_sec"] / runs[order[2]]
    printf "  \"speedup_admissions_per_sec\": %.3f\n", b / u
  } else {
    base = sum[order[1], "admissions_per_sec"] / runs[order[1]]
    printf "  \"baseline\": \"%s\",\n", order[1]
    printf "  \"speedups_admissions_per_sec\": {\n"
    for (k = 2; k <= n; k++) {
      v = sum[order[k], "admissions_per_sec"] / runs[order[k]]
      printf "    \"%s\": %.3f%s\n", order[k], v / base, (k < n) ? "," : ""
    }
    printf "  }\n"
  }
  printf "}\n"
}' "$raw" > "$out"

echo "bench_json: wrote $out"
cat "$out"
