#!/usr/bin/env bash
# Run the batched-vs-unbatched admission benchmark pair and render the
# result as a small JSON artifact. The checked-in BENCH_6.json at the
# repo root is a reference run of this script; CI re-runs it on every
# build and uploads the fresh file alongside the raw `go test -bench`
# output, so the batched-admission speedup is tracked as a first-class
# comparison artifact (like the repair and sharding pairs in bench.txt).
#
# Both benchmarks drive the identical 4-worker churn workload through
# the pipeline; they differ only in whether workers drain arrivals in
# batches (merged multi-application commits, spill commits for
# overlapping plans) or one at a time. Per-run numbers are noisy —
# the per-item control's throughput swings with how many conflict
# retries and template repairs the cross-worker races happen to
# trigger — so the JSON records the mean over $COUNT runs of each
# benchmark and the ratio of those means.
#
# Usage: scripts/bench_json.sh
#   BENCHTIME=2s COUNT=3 OUT=BENCH_6.json scripts/bench_json.sh
set -euo pipefail

benchtime=${BENCHTIME:-2s}
count=${COUNT:-3}
out=${OUT:-BENCH_6.json}
raw=${RAW:-bench-batch.txt}

go test -run xxx -bench 'BenchmarkAdmission(Batched|Unbatched)$' \
  -benchtime "$benchtime" -count "$count" . | tee "$raw"

awk -v benchtime="$benchtime" -v count="$count" -v goversion="$(go version)" '
/^BenchmarkAdmission(Batched|Unbatched)/ {
  name = $1
  sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
  seen[name] = 1
  runs[name]++
  # A benchmark line is: name, iterations, then (value, unit) pairs.
  for (i = 3; i < NF; i += 2) {
    unit = $(i + 1)
    gsub(/\//, "_per_", unit)
    gsub(/%/, "pct_", unit)
    sum[name, unit] += $i
    if (!(unit in units)) { units[unit] = ++nu; uorder[nu] = unit }
  }
}
END {
  n = 2
  order[0] = "BenchmarkAdmissionBatched"
  order[1] = "BenchmarkAdmissionUnbatched"
  for (k = 0; k < n; k++) if (!(order[k] in seen)) {
    print "bench_json: missing benchmark " order[k] > "/dev/stderr"
    exit 1
  }
  printf "{\n"
  printf "  \"pair\": \"batched vs unbatched pipeline admission\",\n"
  printf "  \"go\": \"%s\",\n", goversion
  printf "  \"benchtime\": \"%s\",\n", benchtime
  printf "  \"count\": %d,\n", count
  printf "  \"benchmarks\": {\n"
  for (k = 0; k < n; k++) {
    name = order[k]
    printf "    \"%s\": {", name
    first = 1
    for (u = 1; u <= nu; u++) {
      unit = uorder[u]
      if (!((name, unit) in sum)) continue
      if (!first) printf ", "
      first = 0
      printf "\"%s\": %.6g", unit, sum[name, unit] / runs[name]
    }
    printf "}%s\n", (k < n - 1) ? "," : ""
  }
  printf "  },\n"
  b = sum["BenchmarkAdmissionBatched", "admissions_per_sec"] / runs["BenchmarkAdmissionBatched"]
  u = sum["BenchmarkAdmissionUnbatched", "admissions_per_sec"] / runs["BenchmarkAdmissionUnbatched"]
  printf "  \"speedup_admissions_per_sec\": %.3f\n", b / u
  printf "}\n"
}' "$raw" > "$out"

echo "bench_json: wrote $out"
cat "$out"
