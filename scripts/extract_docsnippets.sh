#!/usr/bin/env bash
# Extract fenced ```go blocks from markdown files into build-tagged Go
# files under docbuild/ and compile them, so the code in the docs cannot
# rot: an identifier renamed in the source breaks the docs build.
#
# Every fenced go block must be a complete file starting with a package
# clause (the docs use `package docsnippets`); each block is written to
# its own package directory so blocks never collide.
#
# Usage: scripts/extract_docsnippets.sh docs/ARCHITECTURE.md README.md
set -euo pipefail

out=docbuild
rm -rf "$out"
n=0
for md in "$@"; do
  [[ -f $md ]] || { echo "extract_docsnippets: no such file: $md" >&2; exit 1; }
  in=0
  block=""
  lineno=0
  start=0
  while IFS= read -r line || [[ -n $line ]]; do
    lineno=$((lineno + 1))
    if [[ $in == 0 && $line == '```go' ]]; then
      in=1
      start=$((lineno + 1))
      block=""
      continue
    fi
    if [[ $in == 1 && $line == '```' ]]; then
      in=0
      n=$((n + 1))
      if [[ $block != package* ]]; then
        echo "extract_docsnippets: $md:$start: go block must start with a package clause" >&2
        exit 1
      fi
      dir=$(printf '%s/snippet_%02d' "$out" "$n")
      mkdir -p "$dir"
      {
        echo '//go:build docsnippets'
        echo
        printf '%s' "$block"
      } >"$dir/snippet.go"
      continue
    fi
    if [[ $in == 1 ]]; then
      block+="$line"$'\n'
    fi
  done <"$md"
  if [[ $in == 1 ]]; then
    echo "extract_docsnippets: $md: unterminated go block" >&2
    exit 1
  fi
done

if [[ $n == 0 ]]; then
  echo "extract_docsnippets: no fenced go blocks found in: $*" >&2
  exit 1
fi

go build -tags docsnippets "./$out/..."
echo "extract_docsnippets: built $n doc snippet(s) from: $*"
rm -rf "$out"
