module rtsm

go 1.24
