package rtsm

import (
	"fmt"
	"testing"

	"rtsm/internal/core"
	"rtsm/internal/fleet"
	"rtsm/internal/manager"
	"rtsm/internal/model"
	"rtsm/internal/workload"
)

// The fleet benchmarks measure what horizontal federation buys on a
// contended churn workload. The scenario holds a fixed population of
// residents — sized to push a single 8×8 mesh to the edge of saturation —
// while arrivals churn through. On one mesh every arrival fights the
// saturated ledger: mapping runs long, placements collide, commits
// conflict and retry, and a growing share of arrivals burn a full
// mapping round only to be rejected. Federated over 2 or 4 meshes the
// same resident population spreads out, so arrivals land on mostly-free
// meshes where the warm template cache answers instantly and commits
// never collide. The total worker budget is held constant (4 workers
// split across the mesh pipelines), so on a single-core host the
// speedup is pure contention removal — fewer conflicts, repairs and
// doomed mapping rounds — not extra CPU. CI uploads the 1/2/4-mesh trio
// as BENCH_7.json; the acceptance bars are ≥1.7x admissions/sec at 2
// meshes and ≥3x at 4 (EXPERIMENTS.md records a reference run).
// fleetApp is churnApp with a four-structure catalogue: a fleet deployment
// serving few distinct application structures at high rates maximizes the
// same-structure concurrency that makes a single mesh's workers race for
// identical template placements — exactly the contention routing removes.
func fleetApp(i int) (*model.Application, *model.Library) {
	s := i % 4
	app, lib := workload.Synthetic(workload.SynthOptions{
		Shape:     workload.ShapeChain,
		Processes: 3 + s%3,
		Seed:      int64(s),
		MaxUtil:   0.15,
		PeriodNs:  40_000,
	})
	app.Name = fmt.Sprintf("churn-%d", i)
	return app, lib
}

func benchmarkFleetAdmission(b *testing.B, meshes int) {
	const totalWorkers = 4
	perWorkers := totalWorkers / meshes
	if perWorkers < 1 {
		perWorkers = 1
	}
	// The resident cap is the contention knob. 40 residents push a single
	// 8×8 mesh deep into saturation: its workers race for the same few
	// template placements, templates go stale, and arrivals degrade to
	// full mapping rounds against a crowded ledger. Federated, the same
	// population sits at 20 or 10 residents per mesh, where the warm
	// template cache answers nearly every arrival.
	const residentCap = 40

	specs := make([]workload.MeshSpec, meshes)
	for i := range specs {
		specs[i] = workload.MeshSpec{W: 8, H: 8, Seed: 123 + int64(i)*101}
	}
	plats := workload.SyntheticFleetPlatforms(specs)
	cfgs := make([]fleet.MeshConfig, meshes)
	mgrs := make([]*manager.Manager, meshes)
	for i, plat := range plats {
		m := manager.New(plat, core.Config{})
		m.SetMappingReuse(true)
		m.SetRepair(true)
		// Warm every mesh's template cache so all variants measure
		// steady-state behaviour, not first-arrival mapping.
		warmCatalogue(b, m, fleetApp)
		mgrs[i] = m
		queue := perWorkers * 4
		if queue < 4 {
			queue = 4
		}
		cfgs[i] = fleet.MeshConfig{Manager: m, Workers: perWorkers, Queue: queue}
	}
	f, err := fleet.New(fleet.Config{Seed: 7, Sample: meshes, SpillMargin: 0.03}, cfgs...)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	base := make([]manager.Stats, meshes)
	for i, m := range mgrs {
		base[i] = m.Stats()
	}

	pending := make(chan (<-chan fleet.Outcome), residentCap)
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		// FIFO resident population: each admission above the cap departs
		// the oldest resident, holding occupancy at residentCap.
		var residents []string
		for ch := range pending {
			out := <-ch
			if !out.Admitted {
				continue
			}
			residents = append(residents, out.App)
			if len(residents) > residentCap {
				oldest := residents[0]
				residents = residents[1:]
				if err := f.Stop(oldest); err != nil {
					// Keep draining; bailing would wedge the producer on
					// the bounded pending channel.
					b.Error(err)
				}
			}
		}
		for _, name := range residents {
			if err := f.Stop(name); err != nil {
				b.Error(err)
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app, lib := fleetApp(i)
		app.Name = fmt.Sprintf("fleet-%d", i)
		ch, err := f.Submit(app, lib)
		if err != nil {
			b.Fatal(err)
		}
		pending <- ch
	}
	close(pending)
	f.Close()
	<-collectorDone
	b.StopTimer()

	var st manager.Stats
	for i, m := range mgrs {
		s := m.Stats()
		if testing.Verbose() {
			b.Logf("mesh %d: admitted %d rejected %d conflicts %d hits %d running %d",
				i, s.Admitted-base[i].Admitted, s.Rejected-base[i].Rejected,
				s.Conflicts-base[i].Conflicts, s.TemplateHits-base[i].TemplateHits,
				m.LoadEstimate().Running())
		}
		delta := s
		delta.Admitted -= base[i].Admitted
		delta.Rejected -= base[i].Rejected
		delta.Retries -= base[i].Retries
		delta.TemplateHits -= base[i].TemplateHits
		st.Add(delta)
		if err := m.CheckInvariants(); err != nil {
			b.Fatalf("mesh %d ledger corrupted under benchmark load: %v", i, err)
		}
	}
	if st.Admitted == 0 {
		b.Fatal("benchmark admitted nothing; workload broken")
	}
	if elapsed := b.Elapsed(); elapsed > 0 {
		b.ReportMetric(float64(st.Admitted)/elapsed.Seconds(), "admissions/sec")
	}
	total := st.Admitted + st.Rejected
	b.ReportMetric(100*float64(st.Admitted)/float64(total), "%admitted")
	b.ReportMetric(float64(st.Retries)/float64(total), "retries/arrival")
	b.ReportMetric(100*float64(st.TemplateHits)/float64(total), "%reused")
	fs := f.Stats()
	b.ReportMetric(float64(fs.Spills), "spills")
}

// BenchmarkFleetAdmission1 is the baseline: the whole contended workload
// on a single mesh (the fleet layer degrades to a plain manager).
func BenchmarkFleetAdmission1(b *testing.B) { benchmarkFleetAdmission(b, 1) }

// BenchmarkFleetAdmission2 federates the identical workload and worker
// budget over two meshes. Acceptance bar: ≥1.7x the single-mesh
// admissions/sec.
func BenchmarkFleetAdmission2(b *testing.B) { benchmarkFleetAdmission(b, 2) }

// BenchmarkFleetAdmission4 federates over four meshes. Acceptance bar:
// ≥3x the single-mesh admissions/sec.
func BenchmarkFleetAdmission4(b *testing.B) { benchmarkFleetAdmission(b, 4) }
