package rtsm

import (
	"fmt"
	"testing"

	"rtsm/internal/arch"
	"rtsm/internal/core"
	"rtsm/internal/manager"
	"rtsm/internal/model"
	"rtsm/internal/workload"
)

// The snapshot benchmarks quantify what the copy-on-write engine takes
// out of the admission hot path. Two pairs, both run with -benchmem and
// uploaded by CI as the bench-snapshot-comparison artifact:
//
//   - BenchmarkAdmissionSnapshot{CoW,DeepCopy}: the base-snapshot
//     acquisition one admission performs, measured on a churn-loaded
//     16×16 mesh manager (the acceptance pair: CoW must be ≥2x faster
//     and ≥4x lighter in B/op than the deep copy);
//   - BenchmarkSnapshotOnly{CoW,DeepCopy}: the raw arch-level capture,
//     isolating the O(regions) pointer capture from the O(mesh) struct
//     copy without any manager machinery.
//
// BenchmarkAdmissionChurn16{CoW,DeepCopy} put the same toggle under the
// full pipeline (map + commit + stop) for end-to-end context.

// loadedChurnManager16 builds a 16×16 region-sharded mesh, admits a
// churn-style resident population and returns the manager — the platform
// state a steady-state admission snapshots against.
func loadedChurnManager16(b *testing.B, cow bool) *manager.Manager {
	plat := workload.SyntheticRegionPlatform(16, 16, 123, 4)
	regions := plat.RegionCount()
	m := manager.New(plat, core.Config{})
	m.SetCoWSnapshots(cow)
	m.SetMappingReuse(true)
	resident := 0
	for i := 0; i < 64; i++ {
		app, lib := shardApp(i, regions)
		app.Name = fmt.Sprintf("resident-%d", i)
		if out := m.Admit(app, lib); out.Admitted {
			resident++
		}
	}
	if resident == 0 {
		b.Fatal("no residents admitted; churn fixture broken")
	}
	return m
}

// benchmarkAdmissionSnapshot measures exactly the snapshot acquisition
// the admission path performs per mapping round (manager.Snapshot is
// that call; epoch sharing, when it hits, makes an admission cheaper
// still by skipping even this).
func benchmarkAdmissionSnapshot(b *testing.B, cow bool) {
	m := loadedChurnManager16(b, cow)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := m.Snapshot(); s == nil {
			b.Fatal("nil snapshot")
		}
	}
}

// BenchmarkAdmissionSnapshotCoW: copy-on-write base-snapshot acquisition
// on the churn workload at 16×16 — the acceptance side of the pair.
func BenchmarkAdmissionSnapshotCoW(b *testing.B) {
	benchmarkAdmissionSnapshot(b, true)
}

// BenchmarkAdmissionSnapshotDeepCopy: the pre-CoW deep copy under all
// region locks, same platform state.
func BenchmarkAdmissionSnapshotDeepCopy(b *testing.B) {
	benchmarkAdmissionSnapshot(b, false)
}

// snapshotOnlyPlatform is a reservation-loaded 16×16 mesh for the raw
// capture pair: a handful of committed mappings so tiles and links carry
// non-trivial state.
func snapshotOnlyPlatform(b *testing.B) *arch.Platform {
	plat := workload.SyntheticRegionPlatform(16, 16, 123, 4)
	regions := plat.RegionCount()
	for i := 0; i < 2*regions; i++ {
		app, lib := shardApp(i, regions)
		app.Name = fmt.Sprintf("load-%d", i)
		res, err := (&core.Mapper{Lib: lib}).Map(app, plat)
		if err != nil || !res.Feasible {
			continue
		}
		if err := core.Apply(plat, res); err != nil {
			continue
		}
	}
	return plat
}

// BenchmarkSnapshotOnlyCoW is the raw copy-on-write capture: per-region
// pointer copies plus the version vector, coordinated through a region
// lock set the way the manager captures.
func BenchmarkSnapshotOnlyCoW(b *testing.B) {
	plat := snapshotOnlyPlatform(b)
	locks := arch.NewRegionLocks(plat.RegionCount())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := plat.SnapshotCoW(locks); s == nil {
			b.Fatal("nil snapshot")
		}
	}
}

// BenchmarkSnapshotOnlyDeepCopy is the raw deep copy of every tile and
// link struct, the pre-CoW capture.
func BenchmarkSnapshotOnlyDeepCopy(b *testing.B) {
	plat := snapshotOnlyPlatform(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := plat.Snapshot(); s == nil {
			b.Fatal("nil snapshot")
		}
	}
}

// benchmarkAdmissionChurn16 drives the full pipeline — snapshot,
// speculative map, sharded commit, stop — on the 16×16 region-pinned
// churn workload with the snapshot engine toggled, for end-to-end
// context around the capture-only pair.
func benchmarkAdmissionChurn16(b *testing.B, cow bool) {
	plat := workload.SyntheticRegionPlatform(16, 16, 123, 4)
	regions := plat.RegionCount()
	m := manager.New(plat, core.Config{})
	m.SetCoWSnapshots(cow)
	m.SetEpochSnapshots(cow)
	m.SetMappingReuse(true)
	warmCatalogue(b, m, func(s int) (*model.Application, *model.Library) {
		return shardApp(s, regions)
	})
	base := m.Stats()
	pipe := manager.NewPipeline(m, 4, 4)
	defer pipe.Close()
	pending := make(chan (<-chan manager.Outcome), 4)
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		for ch := range pending {
			out := <-ch
			if out.Admitted {
				if err := m.Stop(out.App); err != nil {
					b.Error(err)
				}
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app, lib := shardApp(i, regions)
		ch, err := pipe.Submit(app, lib)
		if err != nil {
			b.Fatal(err)
		}
		pending <- ch
	}
	close(pending)
	<-collectorDone
	b.StopTimer()
	reportAdmissions(b, m, base)
}

// BenchmarkAdmissionChurn16CoW: the full admission pipeline at 16×16
// with copy-on-write epoch snapshots (the default configuration).
func BenchmarkAdmissionChurn16CoW(b *testing.B) {
	benchmarkAdmissionChurn16(b, true)
}

// BenchmarkAdmissionChurn16DeepCopy: the same pipeline forced back to
// per-admission deep-copy snapshots (the pre-CoW behaviour).
func BenchmarkAdmissionChurn16DeepCopy(b *testing.B) {
	benchmarkAdmissionChurn16(b, false)
}
