// Command hiperlan2 runs the paper's worked example (§4) end to end for a
// chosen demapping mode: step-by-step trace, the resulting CSDF graph with
// buffer capacities, the energy breakdown, and an independent simulation
// check.
package main

import (
	"flag"
	"fmt"
	"os"

	"rtsm/internal/core"
	"rtsm/internal/energy"
	"rtsm/internal/sim"
	"rtsm/internal/workload"
)

func main() {
	var (
		modeName  = flag.String("mode", "QPSK3/4", "HIPERLAN/2 mode (see -modes)")
		listModes = flag.Bool("modes", false, "list the seven modes and exit")
		verbose   = flag.Bool("v", false, "print the full CSDF graph")
		dot       = flag.Bool("dot", false, "emit the mapped CSDF graph (Figure 3) as Graphviz DOT and exit")
		itemise   = flag.Bool("energy", false, "print the itemised energy report")
	)
	flag.Parse()
	if *listModes {
		for _, m := range workload.Hiperlan2Modes {
			fmt.Printf("%-10s b=%d\n", m.Name, m.DemapBits)
		}
		return
	}
	var mode *workload.Hiperlan2Mode
	for i := range workload.Hiperlan2Modes {
		if workload.Hiperlan2Modes[i].Name == *modeName {
			mode = &workload.Hiperlan2Modes[i]
			break
		}
	}
	if mode == nil {
		fmt.Fprintf(os.Stderr, "hiperlan2: unknown mode %q (try -modes)\n", *modeName)
		os.Exit(1)
	}

	app := workload.Hiperlan2(*mode)
	lib := workload.Hiperlan2Library(*mode)
	plat := workload.Hiperlan2Platform()
	fmt.Printf("Mapping %s onto %s\n\n", app.Name, plat.Name)
	fmt.Print(plat)

	res, err := core.NewMapper(lib).Map(app, plat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hiperlan2:", err)
		os.Exit(1)
	}
	if *dot {
		fmt.Print(res.Graph.DOT())
		return
	}

	fmt.Println("\nStep 1 — implementation assignment (by desirability):")
	for _, r := range res.Trace.Step1 {
		fmt.Println(" ", r)
	}
	fmt.Println("\nStep 2 — tile assignment (Table 2):")
	fmt.Print(res.Trace.RenderStep2Table([]string{"ARM1", "ARM2", "MONTIUM1", "MONTIUM2"}))
	fmt.Println("\nStep 3 — channel routing (non-increasing throughput):")
	for _, r := range res.Trace.Step3 {
		fmt.Println(" ", r)
	}
	fmt.Println("\nStep 4 — QoS verification:")
	fmt.Printf("  period  %.0f ns (required %d ns)\n", res.Analysis.Period, app.QoS.PeriodNs)
	fmt.Printf("  latency %d ns\n", res.Analysis.Latency)
	fmt.Printf("  buffers:")
	for _, c := range app.StreamChannels() {
		fmt.Printf("  %s=%d", c.Name, res.Mapping.Buffers[c.ID])
	}
	fmt.Println()
	fmt.Printf("  feasible: %v (refinements: %d)\n", res.Feasible, res.Refinements)
	fmt.Printf("\nEnergy: %s\n", res.Energy)
	if *itemise {
		params := energy.DefaultParams()
		fmt.Print(params.Detailed(app, res.Platform, core.AssignmentView(res.Mapping)))
	}

	if *verbose {
		fmt.Println("\nFinal CSDF graph (Figure 3):")
		fmt.Print(res.Graph)
	}

	if res.Feasible {
		rep, err := sim.Validate(app, res)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hiperlan2: simulation:", err)
			os.Exit(1)
		}
		fmt.Printf("\nIndependent check: %s\n", rep)
	}
}
