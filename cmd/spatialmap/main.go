// Command spatialmap maps an arbitrary streaming application onto an
// arbitrary platform, both supplied as one JSON bundle (see cmd/benchgen
// for producing bundles). It prints the mapping, its energy and the QoS
// verdict; -json emits a machine-readable result.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rtsm/internal/core"
	"rtsm/internal/schedule"
	"rtsm/internal/workload"
)

type jsonResult struct {
	Feasible    bool              `json:"feasible"`
	EnergyNJ    float64           `json:"energyNJ"`
	PeriodNs    float64           `json:"periodNs"`
	LatencyNs   int64             `json:"latencyNs"`
	Refinements int               `json:"refinements"`
	Placement   map[string]string `json:"placement"` // process -> tile
	Routes      map[string]int    `json:"routes"`    // channel -> hops
	Buffers     map[string]int64  `json:"buffers"`   // channel -> tokens
}

func main() {
	var (
		in       = flag.String("in", "", "bundle JSON file (default stdin)")
		asJSON   = flag.Bool("json", false, "emit the result as JSON")
		strategy = flag.String("strategy", "first", "step-2 strategy: first|best")
		router   = flag.String("router", "adaptive", "step-3 routing: adaptive|xy")
		weighted = flag.Bool("weighted", false, "traffic-weighted step-2 cost instead of hop sum")
		tighten  = flag.Bool("tighten", false, "tighten buffer capacities (slower, smaller buffers)")
		schedOut = flag.Bool("schedule", false, "derive and print per-tile static-order schedules")
	)
	flag.Parse()

	r := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	app, lib, plat, err := workload.ReadBundle(r)
	if err != nil {
		fatal(err)
	}

	cfg := core.Config{TightenBuffers: *tighten}
	switch *strategy {
	case "first":
	case "best":
		cfg.Strategy = core.BestImprovement
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}
	switch *router {
	case "adaptive":
	case "xy":
		cfg.Router = core.XYOnly
	default:
		fatal(fmt.Errorf("unknown router %q", *router))
	}
	if *weighted {
		cfg.CommCost = core.TrafficWeighted
	}

	res, err := (&core.Mapper{Lib: lib, Cfg: cfg}).Map(app, plat)
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		out := jsonResult{
			Feasible:    res.Feasible,
			EnergyNJ:    res.Energy.Total(),
			Refinements: res.Refinements,
			Placement:   make(map[string]string),
			Routes:      make(map[string]int),
			Buffers:     make(map[string]int64),
		}
		if res.Analysis != nil {
			out.PeriodNs = res.Analysis.Period
			out.LatencyNs = res.Analysis.Latency
		}
		for _, p := range app.Processes {
			if tid, ok := res.Mapping.Tile[p.ID]; ok {
				out.Placement[p.Name] = res.Platform.Tile(tid).Name
			}
		}
		for _, c := range app.StreamChannels() {
			if path, ok := res.Mapping.Route[c.ID]; ok {
				out.Routes[c.Name] = path.Hops()
			}
			if buf, ok := res.Mapping.Buffers[c.ID]; ok {
				out.Buffers[c.Name] = buf
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("application %q on platform %q\n\n", app.Name, plat.Name)
	fmt.Println("placement:")
	for _, p := range app.Processes {
		tid, ok := res.Mapping.Tile[p.ID]
		if !ok {
			continue
		}
		impl := "(pinned)"
		if im := res.Mapping.Impl[p.ID]; im != nil {
			impl = string(im.TileType)
		}
		fmt.Printf("  %-16s → %-12s %s\n", p.Name, res.Platform.Tile(tid).Name, impl)
	}
	fmt.Println("\nroutes:")
	for _, r := range res.Trace.Step3 {
		fmt.Println(" ", r)
	}
	if res.Analysis != nil {
		fmt.Printf("\nperiod %.0f ns (required %d), latency %d ns\n",
			res.Analysis.Period, app.QoS.PeriodNs, res.Analysis.Latency)
	}
	fmt.Printf("energy: %s\nfeasible: %v\n", res.Energy, res.Feasible)
	if *schedOut && res.Feasible {
		sched, err := schedule.Build(app, res)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n%s", sched)
	}
	if !res.Feasible {
		for _, n := range res.Trace.Notes {
			fmt.Println("note:", n)
		}
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spatialmap:", err)
	os.Exit(1)
}
