package main

import (
	"strings"
	"testing"
)

func TestRunDispatch(t *testing.T) {
	// The fast selectors must produce their section headers; the full
	// sweeps are covered by the experiments package and the benchmarks.
	cases := map[string]string{
		"fig1":   "E1 / Figure 1",
		"table1": "E2 / Table 1",
		"fig2":   "E3 / Figure 2",
		"table2": "E4 / Table 2",
		"fig3":   "E5 / Figure 3",
	}
	for sel, want := range cases {
		out, err := run(sel, 1)
		if err != nil {
			t.Fatalf("%s: %v", sel, err)
		}
		if !strings.Contains(out, want) {
			t.Errorf("%s output missing %q", sel, want)
		}
	}
}

func TestRunRuntimeSelector(t *testing.T) {
	out, err := run("runtime", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "E6") {
		t.Errorf("runtime output missing header:\n%s", out)
	}
}

func TestRunUnknownSelector(t *testing.T) {
	if _, err := run("nope", 1); err == nil {
		t.Error("unknown selector accepted")
	}
}
