// Command experiments regenerates the paper's tables and figures and the
// extended benchmark suite. Run with -list to see the available
// experiment IDs, or -e all for the full report (EXPERIMENTS.md records
// the outcomes of exactly this run).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rtsm/internal/experiments"
)

func main() {
	var (
		which = flag.String("e", "all", "experiment to run (see -list)")
		list  = flag.Bool("list", false, "list experiment selectors and exit")
		iters = flag.Int("iters", 100, "iterations for the runtime experiment")
	)
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}
	out, err := run(*which, *iters)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Println(out)
}

func run(which string, iters int) (string, error) {
	switch which {
	case "fig1":
		return experiments.Fig1(), nil
	case "table1":
		return experiments.Table1(experiments.DefaultMode), nil
	case "fig2":
		return experiments.Fig2(), nil
	case "table2":
		out, _, err := experiments.Table2()
		return out, err
	case "fig3":
		out, _, err := experiments.Fig3()
		return out, err
	case "runtime":
		rep, err := experiments.MapperRuntime(iters)
		if err != nil {
			return "", err
		}
		return rep.String(), nil
	case "runtime-vs-designtime":
		_, out, err := experiments.RuntimeVsDesignTime()
		return out, err
	case "quality":
		_, out, err := experiments.Quality(10)
		return out, err
	case "scaling":
		_, out, err := experiments.Scaling()
		return out, err
	case "ablation":
		_, out, err := experiments.Ablation()
		return out, err
	case "validate":
		return experiments.ValidateAll()
	case "admission":
		_, out, err := experiments.Admission()
		return out, err
	case "all":
		return experiments.All()
	default:
		return "", fmt.Errorf("unknown experiment %q (try -list)", which)
	}
}
