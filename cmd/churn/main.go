// Command churn drives the concurrent admission pipeline with an online
// workload: hundreds of streaming applications from a recurring catalogue
// arrive through a bounded work queue, run for a while and leave, while N
// workers map arrivals in parallel against platform snapshots. It reports
// admission throughput and latency and verifies the reservation ledger is
// exactly clean after full churn.
//
// Examples:
//
//	go run ./cmd/churn                       # 4 workers, 400 arrivals
//	go run ./cmd/churn -workers 8 -apps 1000 # heavier
//	go run ./cmd/churn -compare              # sequential vs pipeline
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rtsm/internal/core"
	"rtsm/internal/manager"
	"rtsm/internal/model"
	"rtsm/internal/workload"
)

var (
	workers   = flag.Int("workers", 4, "admission worker goroutines")
	queue     = flag.Int("queue", 0, "work queue depth (0 = same as workers)")
	apps      = flag.Int("apps", 400, "number of application arrivals")
	mesh      = flag.Int("mesh", 8, "platform mesh width and height")
	seed      = flag.Int64("seed", 123, "platform generator seed")
	catalogue = flag.Int("catalogue", 64, "distinct application structures in rotation")
	util      = flag.Float64("util", 0.15, "max per-implementation utilisation")
	period    = flag.Int64("period", 40_000, "QoS period in ns")
	resident  = flag.Int("resident", 0, "applications kept running at once (0 = 2x workers)")
	reuse     = flag.Bool("reuse", true, "reuse mapping templates for recurring structures")
	retries   = flag.Int("retries", manager.DefaultMaxRetries, "max re-mapping rounds per arrival")
	compare   = flag.Bool("compare", false, "also run the sequential path and report the speedup")
)

func arrival(i int) (*model.Application, *model.Library) {
	s := i % *catalogue
	app, lib := workload.Synthetic(workload.SynthOptions{
		Shape:     workload.ShapeChain,
		Processes: 3 + s%3,
		Seed:      int64(s),
		MaxUtil:   *util,
		PeriodNs:  *period,
	})
	app.Name = fmt.Sprintf("app-%d", i)
	return app, lib
}

type runResult struct {
	stats   manager.Stats
	elapsed time.Duration
	clean   bool
}

func (r runResult) admissionsPerSec() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.stats.Admitted) / r.elapsed.Seconds()
}

// run pushes *apps arrivals through a pipeline with the given worker
// count, keeping up to maxResident applications running at once, then
// stops everything and checks the ledger.
func run(workers, depth, maxResident int, reuse bool) runResult {
	plat := workload.SyntheticPlatform(*mesh, *mesh, *seed)
	pristine := plat.Residual()
	m := manager.New(plat, core.Config{})
	m.SetMappingReuse(reuse)
	m.SetMaxRetries(*retries)
	pipe := manager.NewPipeline(m, workers, depth)

	start := time.Now()
	pending := make(chan (<-chan manager.Outcome), maxResident)
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		var residents []string
		for ch := range pending {
			out := <-ch
			if !out.Admitted {
				continue
			}
			residents = append(residents, out.App)
			if len(residents) > maxResident {
				oldest := residents[0]
				residents = residents[1:]
				if err := m.Stop(oldest); err != nil {
					fmt.Fprintf(os.Stderr, "churn: stop %s: %v\n", oldest, err)
				}
			}
		}
		for _, name := range residents {
			if err := m.Stop(name); err != nil {
				fmt.Fprintf(os.Stderr, "churn: final stop %s: %v\n", name, err)
			}
		}
	}()
	for i := 0; i < *apps; i++ {
		ch, err := pipe.Submit(arrival(i))
		if err != nil {
			fmt.Fprintf(os.Stderr, "churn: submit: %v\n", err)
			break
		}
		pending <- ch
	}
	close(pending)
	pipe.Close()
	<-collectorDone
	elapsed := time.Since(start)

	if err := m.CheckInvariants(); err != nil {
		fmt.Fprintf(os.Stderr, "churn: ledger invariant violated: %v\n", err)
		return runResult{stats: m.Stats(), elapsed: elapsed}
	}
	return runResult{stats: m.Stats(), elapsed: elapsed, clean: m.Residual().Equal(pristine)}
}

func report(label string, r runResult) {
	st := r.stats
	total := st.Admitted + st.Rejected
	fmt.Printf("%s:\n", label)
	fmt.Printf("  arrivals          %d (%d admitted, %d rejected, %.1f%% admitted)\n",
		total, st.Admitted, st.Rejected, 100*float64(st.Admitted)/float64(max64(total, 1)))
	fmt.Printf("  throughput        %.1f admissions/sec over %v\n", r.admissionsPerSec(), r.elapsed.Round(time.Millisecond))
	fmt.Printf("  optimistic retry  %d commit conflicts, %d re-mapping rounds\n", st.Conflicts, st.Retries)
	fmt.Printf("  template reuse    %d of %d admissions (%.1f%%)\n",
		st.TemplateHits, st.Admitted, 100*float64(st.TemplateHits)/float64(max64(st.Admitted, 1)))
	if total > 0 {
		fmt.Printf("  mean latencies    wait %v, map %v, commit %v\n",
			(st.Wait / time.Duration(total)).Round(time.Microsecond),
			(st.Map / time.Duration(total)).Round(time.Microsecond),
			(st.Commit / time.Duration(total)).Round(time.Microsecond))
	}
	fmt.Printf("  ledger clean      %v\n", r.clean)
}

func max64(v uint64, min uint64) uint64 {
	if v < min {
		return min
	}
	return v
}

func main() {
	flag.Parse()
	if *workers < 1 {
		*workers = 1 // mirror the pipeline's own clamp in the report
	}
	depth := *queue
	if depth <= 0 {
		depth = *workers
	}
	maxResident := *resident
	if maxResident <= 0 {
		maxResident = 2 * *workers
	}

	fmt.Printf("churn: %d arrivals from a %d-structure catalogue onto a %d×%d mesh\n\n",
		*apps, *catalogue, *mesh, *mesh)
	pipe := run(*workers, depth, maxResident, *reuse)
	report(fmt.Sprintf("pipeline (%d workers, queue %d, reuse %v)", *workers, depth, *reuse), pipe)
	ok := pipe.clean

	if *compare {
		fmt.Println()
		seq := run(1, 1, maxResident, false)
		report("sequential (1 worker, no reuse)", seq)
		ok = ok && seq.clean
		if seq.admissionsPerSec() > 0 {
			fmt.Printf("\nspeedup: %.2fx admissions/sec\n", pipe.admissionsPerSec()/seq.admissionsPerSec())
		}
	}
	if !ok {
		os.Exit(1)
	}
}
