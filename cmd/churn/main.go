// Command churn drives the concurrent admission pipeline with an online
// workload: hundreds of streaming applications from a recurring catalogue
// arrive through a bounded work queue, run for a while and leave, while N
// workers map arrivals in parallel against platform snapshots. It reports
// admission throughput and latency — including how much of the conflict
// and stale-template load the incremental repair engine absorbed — and
// verifies the reservation ledger is exactly clean after full churn. The
// scenario loop itself lives in internal/churn so the tests can drive it.
//
// Examples:
//
//	go run ./cmd/churn                       # 4 workers, 400 arrivals
//	go run ./cmd/churn -workers 8 -apps 1000 # heavier
//	go run ./cmd/churn -compare              # sequential vs pipeline
//	go run ./cmd/churn -repair=false         # full remap on every retry
//	go run ./cmd/churn -regionsize 4         # region-sharded commit path
//	go run ./cmd/churn -priomix 70:20:10     # mixed admission classes, preemption on
//	go run ./cmd/churn -priomix 70:20:10 -preempt=false  # priority queue only
//	go run ./cmd/churn -cow=false            # per-admission deep-copy snapshots
//	go run ./cmd/churn -epoch=false          # CoW snapshots, no epoch sharing
//	go run ./cmd/churn -regionsize 4 -batch 8  # merged multi-application commits
//	go run ./cmd/churn -meshes 4             # fleet: 4 federated meshes, routed admission
//	go run ./cmd/churn -meshes 4 -rebalance 5ms  # with background hot->cold rebalancing
//	go run ./cmd/churn -faultrate 0.02       # fail a tile per ~50 arrivals, measure recovery
//	go run ./cmd/churn -journal run.jsonl    # stream the hash-chained admission journal
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rtsm/internal/churn"
	"rtsm/internal/manager"
	"rtsm/internal/model"
)

var (
	workers   = flag.Int("workers", 4, "admission worker goroutines")
	queue     = flag.Int("queue", 0, "work queue depth (0 = same as workers)")
	apps      = flag.Int("apps", 400, "number of application arrivals")
	mesh      = flag.Int("mesh", 8, "platform mesh width and height")
	meshes    = flag.Int("meshes", 1, "federate across N independent meshes behind the fleet router (1 = single-manager path)")
	rebal     = flag.Duration("rebalance", 0, "fleet rebalancer period, draining best-effort residents hot->cold (0 = off; needs -meshes > 1)")
	seed      = flag.Int64("seed", 123, "platform generator seed")
	catalogue = flag.Int("catalogue", 64, "distinct application structures in rotation")
	util      = flag.Float64("util", 0.15, "max per-implementation utilisation")
	period    = flag.Int64("period", 40_000, "QoS period in ns")
	resident  = flag.Int("resident", 0, "applications kept running at once (0 = 2x workers)")
	regions   = flag.Int("regionsize", 0, "shard the commit path: mesh-region side length (0 = one global region)")
	globalOne = flag.Bool("globallock", false, "keep -regionsize's workload but commit through one global lock (sharding ablation)")
	reuse     = flag.Bool("reuse", true, "reuse mapping templates for recurring structures")
	repair    = flag.Bool("repair", true, "repair stale mappings instead of re-mapping from scratch")
	cow       = flag.Bool("cow", true, "copy-on-write snapshots (off = per-admission deep copies, the snapshot ablation)")
	epoch     = flag.Bool("epoch", true, "share one frozen base snapshot per pipeline epoch (needs -cow)")
	batch     = flag.Int("batch", 0, "drain up to K queued arrivals into one merged multi-application commit (<=1 = per-item admission)")
	priomix   = flag.String("priomix", "", "mixed admission classes as bestEffort:standard:critical weights, e.g. 70:20:10 (empty = all best-effort)")
	preempt   = flag.Bool("preempt", true, "let full-mesh priority arrivals preempt lower classes (relocation before eviction)")
	faultrate = flag.Float64("faultrate", 0, "inject run-time tile faults at this expected rate per arrival, evacuating and relocating residents (0 = off)")
	faultbias = flag.Float64("faultbias", 0, "region-bias pricing for fault-evacuation refits: positive steers evacuees toward hot-spare capacity")
	journalTo = flag.String("journal", "", "stream the hash-chained admission journal to this file (single-mesh runs only)")
	retries   = flag.Int("retries", manager.DefaultMaxRetries, "max re-mapping rounds per arrival")
	compare   = flag.Bool("compare", false, "also run the sequential path and report the speedup")
)

func options() churn.Options {
	return churn.Options{
		Workers:    *workers,
		Queue:      *queue,
		Apps:       *apps,
		Mesh:       *mesh,
		Meshes:     *meshes,
		Rebalance:  *rebal,
		Seed:       *seed,
		Catalogue:  *catalogue,
		MaxUtil:    *util,
		PeriodNs:   *period,
		Resident:   *resident,
		RegionSize: *regions,
		GlobalLock: *globalOne,
		Reuse:      *reuse,
		Repair:     *repair,
		CoW:        *cow,
		Epoch:      *epoch,
		Batch:      *batch,
		PrioMix:    *priomix,
		Preempt:    *preempt,
		FaultRate:  *faultrate,
		FaultBias:  *faultbias,
		Retries:    *retries,
		ErrWriter:  os.Stderr,
	}
}

func report(label string, r churn.Result) {
	st := r.Stats
	total := st.Admitted + st.Rejected
	fmt.Printf("%s:\n", label)
	if len(r.PerMesh) > 0 {
		fs := r.Fleet
		fmt.Printf("  fleet             %d meshes, %d spills (%d admitted by a sibling), %d overflow rejects\n",
			len(r.PerMesh), fs.Spills, fs.SpillAdmits, fs.OverflowRejects)
		if fs.Relocations+fs.RelocFailbacks+fs.RelocDrops > 0 {
			fmt.Printf("  rebalancer        %d residents moved hot->cold, %d failbacks, %d drops\n",
				fs.Relocations, fs.RelocFailbacks, fs.RelocDrops)
		}
		if fs.MeshEvictions > 0 {
			fmt.Printf("  reconciler        %d placements retired after mesh-local evictions\n",
				fs.MeshEvictions)
		}
		for i, ms := range r.PerMesh {
			fmt.Printf("  mesh %-12d %d admitted, %d rejected, %d conflicts, %d template hits\n",
				i, ms.Admitted, ms.Rejected, ms.Conflicts, ms.TemplateHits)
		}
	}
	fmt.Printf("  commit sharding   %d region(s)\n", r.Regions)
	arrivalsLabel := "arrivals"
	if len(r.PerMesh) > 0 {
		// Spilled arrivals are counted on every mesh they tried, so the
		// summed mesh-level view exceeds the true arrival count.
		arrivalsLabel = "mesh attempts"
	}
	fmt.Printf("  %-17s %d (%d admitted, %d rejected, %.1f%% admitted)\n",
		arrivalsLabel, total, st.Admitted, st.Rejected, 100*float64(st.Admitted)/float64(max(total, 1)))
	fmt.Printf("  throughput        %.1f admissions/sec over %v\n", r.AdmissionsPerSec(), r.Elapsed.Round(time.Millisecond))
	fmt.Printf("  optimistic retry  %d commit conflicts, %d re-mapping rounds\n", st.Conflicts, st.Retries)
	fmt.Printf("  template reuse    %d of %d admissions (%.1f%%)\n",
		st.TemplateHits, st.Admitted, 100*float64(st.TemplateHits)/float64(max(st.Admitted, 1)))
	fmt.Printf("  incremental repair %d of %d retry/stale rounds repaired (%d of %d conflict retries, %d of %d stale templates; %d fell back to full remap)\n",
		st.RepairedConflicts+st.RepairedTemplates, st.ConflictRetries+st.StaleTemplates,
		st.RepairedConflicts, st.ConflictRetries, st.RepairedTemplates, st.StaleTemplates, st.FullRemaps)
	if acq := st.Snapshots + st.SnapshotsShared; acq > 0 {
		fmt.Printf("  snapshots         %d captured, %d shared from an epoch (%.1f%%), %d CoW region faults\n",
			st.Snapshots, st.SnapshotsShared, 100*float64(st.SnapshotsShared)/float64(acq), st.CoWFaults)
	}
	if st.Batches > 0 || st.BatchedAdmissions > 0 || st.BatchSpills > 0 || st.BatchFallbacks > 0 {
		fmt.Printf("  batched admission %d merged commits, %d of %d admissions batched (%.1f%%), %d spill commits, %d fallbacks to per-item\n",
			st.Batches, st.BatchedAdmissions, st.Admitted,
			100*float64(st.BatchedAdmissions)/float64(max(st.Admitted, 1)), st.BatchSpills, st.BatchFallbacks)
	}
	if rate, ok := st.RepairRate(); ok {
		fmt.Printf("  repair rate       %.1f%%\n", 100*rate)
	}
	for c := 0; c < model.NumPriorities; c++ {
		cls := st.ByClass[c]
		if cls.Admitted+cls.Rejected == 0 {
			continue
		}
		rate, _ := st.AdmissionRate(model.Priority(c))
		fmt.Printf("  class %-11s %d arrivals, %.1f%% admitted\n",
			model.Priority(c), cls.Admitted+cls.Rejected, 100*rate)
	}
	if st.Preemptions > 0 {
		fmt.Printf("  preemption        %d victims displaced (%d relocated, %d evicted)\n",
			st.Preemptions, st.Relocations, st.Evictions)
	}
	if st.FaultsInjected > 0 {
		fmt.Printf("  faults            %d injected (%d residents relocated, %d dropped), recover mean %v, max %v\n",
			st.FaultsInjected, st.FaultRelocated, st.FaultDropped,
			r.MeanFaultRecover().Round(time.Microsecond), r.FaultRecoverMax.Round(time.Microsecond))
	}
	if r.JournalErr != nil {
		fmt.Printf("  journal           WRITE FAILED: %v\n", r.JournalErr)
	}
	if total > 0 {
		fmt.Printf("  mean latencies    wait %v, map %v, repair %v, commit %v\n",
			(st.Wait / time.Duration(total)).Round(time.Microsecond),
			(st.Map / time.Duration(total)).Round(time.Microsecond),
			(st.Repair / time.Duration(total)).Round(time.Microsecond),
			(st.Commit / time.Duration(total)).Round(time.Microsecond))
	}
	if r.LedgerErr != nil {
		fmt.Printf("  ledger            INVARIANT VIOLATED: %v\n", r.LedgerErr)
		return
	}
	fmt.Printf("  ledger clean      %v\n", r.Clean)
	if !r.Clean {
		fmt.Printf("  ledger drift      %d tiles, %d links changed\n", len(r.Drift.Tiles), len(r.Drift.Links))
	}
}

// validateFlags fails fast on flag combinations that would silently run
// a different scenario than the one asked for, instead of surfacing as a
// confusing report later. Defaults never trip it: only explicitly set
// flags are held against each other.
func validateFlags() error {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *batch < 0 {
		return fmt.Errorf("churn: -batch %d is negative (use 0 or 1 for per-item admission)", *batch)
	}
	if set["globallock"] && *globalOne && *regions <= 0 {
		return fmt.Errorf("churn: -globallock is the sharding ablation of -regionsize; give -regionsize a positive value")
	}
	if set["epoch"] && *epoch && set["cow"] && !*cow {
		return fmt.Errorf("churn: -epoch needs -cow; epoch sharing only works on copy-on-write snapshots")
	}
	if *meshes < 1 {
		return fmt.Errorf("churn: -meshes %d; need at least one mesh", *meshes)
	}
	if *rebal > 0 && *meshes <= 1 {
		return fmt.Errorf("churn: -rebalance moves residents between meshes; give -meshes a value above 1")
	}
	if *compare && *meshes > 1 {
		return fmt.Errorf("churn: -compare benchmarks the single-mesh pipeline; run fleet scaling via BenchmarkFleetAdmission (see EXPERIMENTS.md) instead")
	}
	if *faultrate < 0 {
		return fmt.Errorf("churn: -faultrate %g is negative", *faultrate)
	}
	if *journalTo != "" && *meshes > 1 {
		return fmt.Errorf("churn: -journal records one manager's hash chain; a fleet run would interleave %d of them", *meshes)
	}
	if *journalTo != "" && *compare {
		return fmt.Errorf("churn: -journal and -compare would write two runs' chains into one file; journal one run at a time")
	}
	return nil
}

func main() {
	flag.Parse()
	if err := validateFlags(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opts := options()
	if _, err := churn.ParsePrioMix(opts.PrioMix); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *journalTo != "" {
		jf, err := os.Create(*journalTo)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer jf.Close()
		opts.Journal = jf
	}
	if opts.Resident <= 0 {
		// Resolve the default here so the -compare run keeps the same
		// resident population as the pipeline run.
		opts.Resident = 2 * max(opts.Workers, 1)
	}

	target := fmt.Sprintf("a %d×%d mesh", opts.Mesh, opts.Mesh)
	if opts.Meshes > 1 {
		target = fmt.Sprintf("a fleet of %d %d×%d meshes", opts.Meshes, opts.Mesh, opts.Mesh)
	}
	fmt.Printf("churn: %d arrivals from a %d-structure catalogue onto %s\n\n",
		opts.Apps, opts.Catalogue, target)
	pipe := churn.Run(opts)
	if pipe.ConfigErr != nil {
		fmt.Fprintln(os.Stderr, pipe.ConfigErr)
		os.Exit(2)
	}
	label := fmt.Sprintf("pipeline (%d workers, reuse %v, repair %v)", opts.Workers, opts.Reuse, opts.Repair)
	if opts.Meshes > 1 {
		label = fmt.Sprintf("fleet (%d meshes, %d workers, reuse %v, repair %v)", opts.Meshes, opts.Workers, opts.Reuse, opts.Repair)
	}
	report(label, pipe)
	ok := pipe.Clean && pipe.LedgerErr == nil && pipe.JournalErr == nil

	if *compare {
		seqOpts := opts
		seqOpts.Workers = 1
		seqOpts.Queue = 1
		seqOpts.Resident = opts.Resident
		seqOpts.Reuse = false
		seqOpts.Repair = false
		fmt.Println()
		seq := churn.Run(seqOpts)
		report("sequential (1 worker, no reuse, no repair)", seq)
		ok = ok && seq.Clean && seq.LedgerErr == nil
		if seq.AdmissionsPerSec() > 0 {
			fmt.Printf("\nspeedup: %.2fx admissions/sec\n", pipe.AdmissionsPerSec()/seq.AdmissionsPerSec())
		}
	}
	if !ok {
		os.Exit(1)
	}
}
