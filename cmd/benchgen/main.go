// Command benchgen emits JSON bundles (application + implementation
// library + platform) for cmd/spatialmap: either the paper's HIPERLAN/2
// case or a seeded synthetic instance, answering the paper's call for a
// benchmark corpus (§5).
package main

import (
	"flag"
	"fmt"
	"os"

	"rtsm/internal/workload"
)

func main() {
	var (
		kind  = flag.String("kind", "hiperlan2", "bundle kind: hiperlan2|chain|forkjoin|layered")
		mode  = flag.String("mode", "QPSK3/4", "HIPERLAN/2 mode (hiperlan2 kind)")
		procs = flag.Int("procs", 8, "process count (synthetic kinds)")
		seed  = flag.Int64("seed", 1, "generator seed (synthetic kinds)")
		mesh  = flag.Int("mesh", 4, "mesh edge length (synthetic kinds)")
		out   = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var bundle *workload.Bundle
	switch *kind {
	case "hiperlan2":
		var m *workload.Hiperlan2Mode
		for i := range workload.Hiperlan2Modes {
			if workload.Hiperlan2Modes[i].Name == *mode {
				m = &workload.Hiperlan2Modes[i]
				break
			}
		}
		if m == nil {
			fatal(fmt.Errorf("unknown mode %q", *mode))
		}
		bundle = workload.NewBundle(
			workload.Hiperlan2(*m),
			workload.Hiperlan2Library(*m),
			workload.Hiperlan2Platform())
	case "chain", "forkjoin", "layered":
		app, lib := workload.Synthetic(workload.SynthOptions{
			Shape:     workload.Shape(*kind),
			Processes: *procs,
			Seed:      *seed,
		})
		bundle = workload.NewBundle(app, lib, workload.SyntheticPlatform(*mesh, *mesh, *seed))
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := bundle.Write(w); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}
