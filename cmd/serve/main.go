// Command serve runs the streaming admission front-end against a
// synthetic arrival storm: a generator pushes applications through the
// staged server (ingress throttle, per-class dropping buffers, circuit
// breaker, dead-letter retry queue) into a single manager pipeline or a
// federated fleet, while a collector recycles residents so the mesh
// keeps churning. It prints the server's ledger — every arrival ends in
// exactly one of admitted/rejected/shed/expired — plus the rolling
// latency window, and exits nonzero if the ledger or the reservation
// invariants break.
//
// Examples:
//
//	go run ./cmd/serve                          # 100k arrivals, one mesh
//	go run ./cmd/serve -arrivals 2000000        # the EXPERIMENTS.md soak
//	go run ./cmd/serve -meshes 4                # fleet-backed admission
//	go run ./cmd/serve -rate 50000              # ingress throttle, 50k/s
//	go run ./cmd/serve -dlq 0                   # no dead-letter queue
//	go run ./cmd/serve -journal run.jsonl       # durable admission journal
//	go run ./cmd/serve -journal run.jsonl -syncevery 64  # periodic fsync
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rtsm/internal/journal"
	"rtsm/internal/model"
	"rtsm/internal/stream"
)

var (
	arrivals  = flag.Int("arrivals", 100_000, "number of application arrivals to generate")
	workers   = flag.Int("workers", 4, "admission worker goroutines (split across meshes when federated)")
	queue     = flag.Int("queue", 0, "backend work queue depth (0 = 16x workers)")
	mesh      = flag.Int("mesh", 12, "platform mesh width and height")
	meshes    = flag.Int("meshes", 1, "federate across N meshes behind the fleet router (1 = single pipeline)")
	regions   = flag.Int("regionsize", 3, "commit-path region side length (0 = one global region)")
	seed      = flag.Int64("seed", 123, "platform and router seed")
	batch     = flag.Int("batch", 0, "merged multi-application commits of up to K arrivals (<=1 = per-item)")
	catalogue = flag.Int("catalogue", 6, "distinct application structures in rotation")
	util      = flag.Float64("util", 0.12, "max per-implementation utilisation")
	period    = flag.Int64("period", 40_000, "QoS period in ns")
	priomix   = flag.String("priomix", "60:30:10", "admission classes as bestEffort:standard:critical weights")
	resident  = flag.Int("resident", 0, "admissions kept running at once (0 = 4x workers)")

	ingress    = flag.Int("ingress", 256, "ingress buffer depth (Submit blocks when full)")
	classbuf   = flag.Int("classbuf", 64, "Critical class buffer; Standard gets half, BestEffort a quarter")
	rate       = flag.Int("rate", 0, "throttle dispatch to this many arrivals/sec (0 = unlimited)")
	dlqCap     = flag.Int("dlq", 1024, "dead-letter queue capacity for capacity-rejected arrivals (0 = off)")
	dlqBelow   = flag.Float64("dlq-below", 0.75, "retry parked arrivals when utilization drops below this")
	dlqRetries = flag.Int("dlq-retries", 3, "backend attempts per arrival before it expires")
	dlqEvery   = flag.Duration("dlq-every", 5*time.Millisecond, "dead-letter retry poll period")

	brkWindow   = flag.Duration("breaker-window", 500*time.Millisecond, "circuit-breaker failure-ratio window")
	brkMin      = flag.Int("breaker-min", 20, "min samples in the window before the breaker can trip")
	brkRatio    = flag.Float64("breaker-ratio", 0.5, "failure ratio that opens the breaker")
	brkLatency  = flag.Duration("breaker-latency", 0, "admission latency counted as a failure (0 = off)")
	brkCooldown = flag.Duration("breaker-cooldown", 250*time.Millisecond, "open -> half-open cooldown")
	brkProbes   = flag.Int("breaker-probes", 5, "half-open probe admissions before closing")

	window    = flag.Duration("window", time.Second, "rolling metrics window for p50/p99 and rate")
	journalTo = flag.String("journal", "", "stream the hash-chained admission journal to this file (single-mesh only)")
	syncevery = flag.Int("syncevery", 0, "fsync the journal after every n-th event (0 = on acks only)")

	requireShed = flag.Bool("requireshed", false, "exit nonzero unless the run shed at least one arrival (CI smoke)")
	requireDLQ  = flag.Bool("requiredlq", false, "exit nonzero unless the DLQ recovered at least one arrival (CI smoke)")
)

func main() {
	flag.Parse()

	opts := stream.SoakOptions{
		Arrivals: *arrivals, Mesh: *mesh, RegionSize: *regions, Seed: *seed,
		Meshes: *meshes, Workers: *workers, Queue: *queue, Batch: *batch,
		Catalogue: *catalogue, MaxUtil: *util, PeriodNs: *period,
		PrioMix: *priomix, Resident: *resident,
		Server: stream.Options{
			Ingress: *ingress, ClassBuf: *classbuf, Rate: *rate,
			DLQ: *dlqCap, DLQBelow: *dlqBelow, DLQRetries: *dlqRetries, DLQEvery: *dlqEvery,
			Breaker: stream.BreakerConfig{
				Window: *brkWindow, MinSamples: *brkMin, Ratio: *brkRatio,
				Latency: *brkLatency, Cooldown: *brkCooldown, Probes: *brkProbes,
			},
			Window: *window,
		},
	}

	var jfile *os.File
	if *journalTo != "" {
		f, err := os.Create(*journalTo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(2)
		}
		jfile = f
		opts.Journal = journal.NewWriter(f, journal.Options{Syncer: f, SyncEvery: *syncevery})
	}

	res := stream.RunSoak(opts)
	if res.ConfigErr != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", res.ConfigErr)
		os.Exit(2)
	}
	if opts.Journal != nil {
		if err := opts.Journal.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "serve: journal: %v\n", err)
			os.Exit(1)
		}
		if err := jfile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "serve: journal: %v\n", err)
			os.Exit(1)
		}
	}
	report(res)

	fail := false
	if res.LedgerErr != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", res.LedgerErr)
		fail = true
	}
	if *requireShed && res.Report.Shed() == 0 {
		fmt.Fprintln(os.Stderr, "serve: -requireshed: the run shed nothing")
		fail = true
	}
	if *requireDLQ && res.Report.Recovered == 0 {
		fmt.Fprintln(os.Stderr, "serve: -requiredlq: the DLQ recovered nothing")
		fail = true
	}
	if fail {
		os.Exit(1)
	}
}

func report(res stream.SoakResult) {
	rep := res.Report
	st := res.Stats
	fmt.Printf("streaming admission:\n")
	fmt.Printf("  arrivals          %d over %v (%.0f arrivals/sec, %.0f admissions/sec)\n",
		rep.Submitted, res.Elapsed.Round(time.Millisecond), res.ArrivalsPerSec(), res.AdmissionsPerSec())
	fmt.Printf("  ledger            %d admitted (%d via DLQ) + %d rejected + %d shed + %d expired = %d\n",
		rep.Admitted, rep.Recovered, rep.Rejected, rep.Shed(), rep.Expired,
		rep.Admitted+rep.Rejected+rep.Shed()+rep.Expired)
	for c := 0; c < model.NumPriorities; c++ {
		if rep.ShedByClass[c] == 0 {
			continue
		}
		fmt.Printf("  shed %-12s %d\n", model.Priority(c), rep.ShedByClass[c])
	}
	if rep.Shed() > 0 {
		fmt.Printf("  shed stages       %d at class buffers, %d at the breaker, %d at the backend queue\n",
			rep.ShedBuffer, rep.ShedBreaker, rep.ShedQueue)
	}
	fmt.Printf("  breaker           %d opens\n", rep.BreakerOpens)
	fmt.Printf("  dead letters      %d recovered, %d expired\n", rep.Recovered, rep.Expired)
	fmt.Printf("  window            p50 %v, p99 %v, %.0f admissions/sec over %d samples\n",
		rep.Window.P50.Round(time.Microsecond), rep.Window.P99.Round(time.Microsecond),
		rep.Window.PerSec, rep.Window.Samples)
	fmt.Printf("  backend           %d admitted, %d rejected, %d conflicts, %d template hits\n",
		st.Admitted, st.Rejected, st.Conflicts, st.TemplateHits)
	if res.LedgerErr == nil {
		fmt.Printf("  ledger ok         true\n")
	}
}
