// Command serve runs the streaming admission front-end in one of three
// modes. By default it drives a synthetic arrival storm through the
// staged server (ingress throttle, per-class dropping buffers, circuit
// breaker, dead-letter retry queue) into a single manager pipeline or a
// federated fleet, printing the exactly-one-outcome ledger. With
// -listen it becomes a real service: an HTTP front door (POST /admit,
// GET /healthz, /readyz, /metricsz) over the same pipeline, with
// graceful drain on SIGINT/SIGTERM and — when -journal names a file
// with previous segments — crash-restart recovery: the chain is
// verified, the torn tail truncated, and the platform plus resident set
// replayed before the listener accepts traffic. With -chaos it executes
// a deterministic fault script against an in-process HTTP door and
// exits nonzero if the ledger breaks or a Critical arrival is shed.
//
// Examples:
//
//	go run ./cmd/serve                          # 100k arrivals, one mesh
//	go run ./cmd/serve -arrivals 2000000        # the EXPERIMENTS.md soak
//	go run ./cmd/serve -meshes 4                # fleet-backed admission
//	go run ./cmd/serve -slo 5ms                 # AIMD adaptive admit rate
//	go run ./cmd/serve -listen :8080 -journal run.jsonl   # network service
//	go run ./cmd/serve -chaos script.txt -journal c.jsonl # chaos harness
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rtsm/internal/chaos"
	"rtsm/internal/churn"
	"rtsm/internal/core"
	"rtsm/internal/front"
	"rtsm/internal/journal"
	"rtsm/internal/manager"
	"rtsm/internal/model"
	"rtsm/internal/stream"
	"rtsm/internal/workload"
)

var (
	arrivals  = flag.Int("arrivals", 100_000, "number of application arrivals to generate (soak and chaos modes)")
	workers   = flag.Int("workers", 4, "admission worker goroutines (split across meshes when federated)")
	queue     = flag.Int("queue", 0, "backend work queue depth (0 = 16x workers)")
	mesh      = flag.Int("mesh", 12, "platform mesh width and height")
	meshes    = flag.Int("meshes", 1, "federate across N meshes behind the fleet router (1 = single pipeline)")
	regions   = flag.Int("regionsize", 3, "commit-path region side length (0 = one global region)")
	seed      = flag.Int64("seed", 123, "platform and router seed")
	batch     = flag.Int("batch", 0, "merged multi-application commits of up to K arrivals (<=1 = per-item)")
	catalogue = flag.Int("catalogue", 6, "distinct application structures in rotation")
	util      = flag.Float64("util", 0.12, "max per-implementation utilisation")
	period    = flag.Int64("period", 40_000, "QoS period in ns")
	priomix   = flag.String("priomix", "60:30:10", "admission classes as bestEffort:standard:critical weights")
	resident  = flag.Int("resident", 0, "admissions kept running at once (0 = 4x workers)")

	ingress    = flag.Int("ingress", 256, "ingress buffer depth (Submit blocks when full)")
	classbuf   = flag.Int("classbuf", 64, "Critical class buffer; Standard gets half, BestEffort a quarter")
	rate       = flag.Int("rate", 0, "throttle dispatch to this many arrivals/sec (0 = unlimited; ignored when -slo is set)")
	dlqCap     = flag.Int("dlq", 1024, "dead-letter queue capacity for capacity-rejected arrivals (0 = off)")
	dlqBelow   = flag.Float64("dlq-below", 0.75, "retry parked arrivals when utilization drops below this")
	dlqRetries = flag.Int("dlq-retries", 3, "backend attempts per arrival before it expires")
	dlqEvery   = flag.Duration("dlq-every", 5*time.Millisecond, "dead-letter retry poll period")

	brkWindow   = flag.Duration("breaker-window", 500*time.Millisecond, "circuit-breaker failure-ratio window")
	brkMin      = flag.Int("breaker-min", 20, "min samples in the window before the breaker can trip")
	brkRatio    = flag.Float64("breaker-ratio", 0.5, "failure ratio that opens the breaker")
	brkLatency  = flag.Duration("breaker-latency", 0, "admission latency counted as a failure (0 = off; -slo sets it too)")
	brkCooldown = flag.Duration("breaker-cooldown", 250*time.Millisecond, "open -> half-open cooldown")
	brkProbes   = flag.Int("breaker-probes", 5, "half-open probe admissions before closing")

	slo          = flag.Duration("slo", 0, "p99 admission-latency SLO: enables the AIMD adaptive admit rate and latency-SLO breaker mode")
	aimdMin      = flag.Float64("aimd-min", 0, "AIMD rate floor in arrivals/sec (0 = default 50)")
	aimdMax      = flag.Float64("aimd-max", 0, "AIMD rate ceiling in arrivals/sec (0 = default 1e6)")
	aimdInterval = flag.Duration("aimd-interval", 0, "AIMD control period (0 = default 20ms)")

	window    = flag.Duration("window", time.Second, "rolling metrics window for p50/p99 and rate")
	journalTo = flag.String("journal", "", "stream the hash-chained admission journal to this file (single-mesh only)")
	syncevery = flag.Int("syncevery", 0, "fsync the journal after every n-th event (0 = on acks only)")

	listen    = flag.String("listen", "", "serve the HTTP front door on this address (e.g. :8080) until SIGINT/SIGTERM")
	chaosPath = flag.String("chaos", "", "execute this chaos script against an in-process HTTP door and exit")

	requireShed = flag.Bool("requireshed", false, "exit nonzero unless the run shed at least one arrival (CI smoke)")
	requireDLQ  = flag.Bool("requiredlq", false, "exit nonzero unless the DLQ recovered at least one arrival (CI smoke)")
)

func main() {
	flag.Parse()
	switch {
	case *chaosPath != "":
		os.Exit(runChaos())
	case *listen != "":
		os.Exit(runListen())
	default:
		os.Exit(runSoak())
	}
}

// serverOptions assembles the stream tuning shared by all three modes.
// -slo wires the latency objective end to end: it enables the AIMD
// controller and, unless -breaker-latency overrides it, arms the
// breaker's latency-SLO mode with the same duration.
func serverOptions() stream.Options {
	brkLat := *brkLatency
	if brkLat == 0 && *slo > 0 {
		brkLat = *slo
	}
	return stream.Options{
		Ingress: *ingress, ClassBuf: *classbuf, Rate: *rate,
		DLQ: *dlqCap, DLQBelow: *dlqBelow, DLQRetries: *dlqRetries, DLQEvery: *dlqEvery,
		Breaker: stream.BreakerConfig{
			Window: *brkWindow, MinSamples: *brkMin, Ratio: *brkRatio,
			Latency: brkLat, Cooldown: *brkCooldown, Probes: *brkProbes,
		},
		AIMD: stream.AIMDConfig{
			SLO: *slo, MinRate: *aimdMin, MaxRate: *aimdMax, Interval: *aimdInterval,
		},
		Window: *window,
	}
}

// runSoak is the original in-process storm: generate, admit, report.
func runSoak() int {
	opts := stream.SoakOptions{
		Arrivals: *arrivals, Mesh: *mesh, RegionSize: *regions, Seed: *seed,
		Meshes: *meshes, Workers: *workers, Queue: *queue, Batch: *batch,
		Catalogue: *catalogue, MaxUtil: *util, PeriodNs: *period,
		PrioMix: *priomix, Resident: *resident,
		Server: serverOptions(),
	}

	var jfile *os.File
	if *journalTo != "" {
		f, err := os.Create(*journalTo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			return 2
		}
		jfile = f
		opts.Journal = journal.NewWriter(f, journal.Options{Syncer: f, SyncEvery: *syncevery})
	}

	res := stream.RunSoak(opts)
	if res.ConfigErr != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", res.ConfigErr)
		return 2
	}
	if opts.Journal != nil {
		if err := opts.Journal.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "serve: journal: %v\n", err)
			return 1
		}
		if err := jfile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "serve: journal: %v\n", err)
			return 1
		}
	}
	fmt.Printf("streaming admission:\n")
	fmt.Printf("  arrivals          %d over %v (%.0f arrivals/sec, %.0f admissions/sec)\n",
		res.Report.Submitted, res.Elapsed.Round(time.Millisecond), res.ArrivalsPerSec(), res.AdmissionsPerSec())
	reportStream(res.Report)
	st := res.Stats
	fmt.Printf("  backend           %d admitted, %d rejected, %d conflicts, %d template hits\n",
		st.Admitted, st.Rejected, st.Conflicts, st.TemplateHits)
	if res.LedgerErr == nil {
		fmt.Printf("  ledger ok         true\n")
	}

	fail := false
	if res.LedgerErr != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", res.LedgerErr)
		fail = true
	}
	if *requireShed && res.Report.Shed() == 0 {
		fmt.Fprintln(os.Stderr, "serve: -requireshed: the run shed nothing")
		fail = true
	}
	if *requireDLQ && res.Report.Recovered == 0 {
		fmt.Fprintln(os.Stderr, "serve: -requiredlq: the DLQ recovered nothing")
		fail = true
	}
	if fail {
		return 1
	}
	return 0
}

// runChaos executes a fault script against an in-process HTTP door (see
// internal/chaos for the script DSL) and gates on the robustness
// invariants: nonzero exit on a broken aggregate ledger or any shed
// Critical arrival.
func runChaos() int {
	f, err := os.Open(*chaosPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: chaos: %v\n", err)
		return 2
	}
	script, err := chaos.ParseScript(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		return 2
	}
	rep, err := chaos.Run(script, chaos.Options{
		Arrivals: *arrivals, Mesh: *mesh, RegionSize: *regions, Seed: *seed,
		Workers: *workers, Queue: *queue, Catalogue: *catalogue,
		MaxUtil: *util, PeriodNs: *period, PrioMix: *priomix, Resident: *resident,
		Server: serverOptions(), JournalPath: *journalTo, SyncEvery: *syncevery,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		return 2
	}
	fmt.Printf("chaos run:\n")
	fmt.Printf("  arrivals          %d over %d incarnation(s)\n", rep.Arrivals, rep.Incarnations)
	fmt.Printf("  steps             %d faults, %d restores, %d spikes, %d drains, %d crashes\n",
		rep.FaultsInjected, rep.Restores, rep.Spikes, rep.Drains, rep.Crashes)
	if rep.Crashes > 0 {
		fmt.Printf("  recovery          %d replay checks passed, %d torn events discarded\n",
			rep.ReplayChecks, rep.TornDiscarded)
	}
	reportStream(rep.Stream)
	fmt.Printf("  door              %d requests, %d admitted, %d busy, %d rejected, %d retries\n",
		rep.Door.Requests, rep.Door.Admitted, rep.Door.Busy, rep.Door.Rejected, rep.Door.Retries)
	fmt.Printf("  ledger ok         %v\n", rep.LedgerOK)

	fail := false
	if !rep.LedgerOK {
		fmt.Fprintln(os.Stderr, "serve: chaos: aggregate ledger mismatch")
		fail = true
	}
	if rep.CriticalShed != 0 {
		fmt.Fprintf(os.Stderr, "serve: chaos: %d Critical arrivals shed\n", rep.CriticalShed)
		fail = true
	}
	if fail {
		return 1
	}
	return 0
}

// runListen serves the HTTP front door until SIGINT/SIGTERM, then
// drains: readiness flips first, in-flight /admit requests finish, the
// stream pipeline shuts down, and the final ledger prints. With
// -journal, existing segments are recovered before the listener binds —
// chain verified, torn tail truncated, platform and residents replayed
// — and journaling resumes in a fresh segment continuing the chain.
func runListen() int {
	if *meshes > 1 {
		fmt.Fprintln(os.Stderr, "serve: -listen is single-mesh (the journal replays one platform)")
		return 2
	}
	plat := workload.SyntheticRegionPlatform(*mesh, *mesh, *seed, *regions)
	epRegs := 1
	if *regions > 0 {
		epRegs = plat.RegionCount()
	}

	var (
		m     *manager.Manager
		jw    *journal.Writer
		jfile *os.File
	)
	if *journalTo != "" {
		segs := journal.SegmentPaths(*journalTo)
		if len(segs) > 0 {
			rec, err := journal.RecoverFiles(segs...)
			if err != nil {
				fmt.Fprintf(os.Stderr, "serve: recover: %v\n", err)
				return 2
			}
			m, err = manager.ReplayEvents(plat, core.Config{}, rec.Events)
			if err != nil {
				fmt.Fprintf(os.Stderr, "serve: replay: %v\n", err)
				return 2
			}
			f, err := os.Create(journal.NextSegmentPath(*journalTo, len(segs)))
			if err != nil {
				fmt.Fprintf(os.Stderr, "serve: %v\n", err)
				return 2
			}
			jw, err = journal.NewResumedWriter(f, rec.Chain, rec.Seq, journal.Options{Syncer: f, SyncEvery: *syncevery})
			if err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "serve: %v\n", err)
				return 2
			}
			jfile = f
			fmt.Printf("recovered %d events (%d residents) from %d segment(s), resuming at seq %d\n",
				len(rec.Events), len(m.Running()), len(segs), rec.Seq)
		} else {
			f, err := os.Create(*journalTo)
			if err != nil {
				fmt.Fprintf(os.Stderr, "serve: %v\n", err)
				return 2
			}
			jfile = f
			jw = journal.NewWriter(f, journal.Options{Syncer: f, SyncEvery: *syncevery})
		}
	}
	if m == nil {
		m = manager.New(plat, core.Config{})
	}
	m.SetMappingReuse(true)
	m.SetRepair(true)
	if jw != nil {
		m.SetJournal(jw)
	}

	q := *queue
	if q < 1 {
		q = 16 * *workers
	}
	pipe := manager.NewPipeline(m, *workers, q)
	sopts := serverOptions()
	sopts.Backend = stream.NewPipelineBackend(m, pipe)
	srv, err := stream.New(sopts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		return 2
	}
	co := churn.Options{Catalogue: *catalogue, MaxUtil: *util, PeriodNs: *period, PrioMix: *priomix}
	door, err := front.Listen(front.Options{
		Server: srv,
		Addr:   *listen,
		Seed:   *seed,
		Decode: func(req *http.Request) (*model.Application, *model.Library, error) {
			var body struct {
				Index int `json:"index"`
			}
			if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
				return nil, nil, fmt.Errorf("bad body: %w", err)
			}
			if body.Index < 0 {
				return nil, nil, fmt.Errorf("negative index %d", body.Index)
			}
			app, lib := co.Arrival(body.Index, epRegs)
			return app, lib, nil
		},
	})
	if err != nil {
		srv.Shutdown()
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		return 2
	}

	// Recycle residents beyond the cap so the mesh keeps admitting, as
	// the soak collector does. Recovered residents join the queue first.
	cap := *resident
	if cap <= 0 {
		cap = 4 * *workers
	}
	var residents []string
	for _, ad := range m.Running() {
		residents = append(residents, ad.App.Name)
	}
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for res := range srv.Results() {
			if res.Verdict != stream.VerdictAdmitted {
				continue
			}
			residents = append(residents, res.App)
			if len(residents) <= cap {
				continue
			}
			name := residents[0]
			residents = residents[1:]
			if err := sopts.Backend.Stop(name); errors.Is(err, manager.ErrRelocating) {
				residents = append(residents, name) // retry later
			}
		}
	}()

	fmt.Printf("listening on %s (mesh %dx%d, %d workers)\n", door.Addr(), *mesh, *mesh, *workers)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("draining...")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := door.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "serve: drain: %v\n", err)
	}
	rep := srv.Shutdown()
	<-collected
	if jw != nil {
		if err := jw.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "serve: journal: %v\n", err)
			return 1
		}
		if err := jfile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "serve: journal: %v\n", err)
			return 1
		}
	}

	ds := door.Stats()
	fmt.Printf("front door:\n")
	fmt.Printf("  requests          %d (%d admitted, %d busy, %d rejected, %d timeout, %d bad, %d retries)\n",
		ds.Requests, ds.Admitted, ds.Busy, ds.Rejected, ds.Timeout, ds.BadRequest, ds.Retries)
	reportStream(rep)
	fmt.Printf("  ledger ok         %v\n", rep.LedgerOK())
	if !rep.LedgerOK() {
		fmt.Fprintln(os.Stderr, "serve: ledger mismatch")
		return 1
	}
	return 0
}

// reportStream prints the stream ledger lines shared by all modes.
func reportStream(rep stream.Report) {
	fmt.Printf("  ledger            %d admitted (%d via DLQ) + %d rejected + %d shed + %d expired = %d\n",
		rep.Admitted, rep.Recovered, rep.Rejected, rep.Shed(), rep.Expired,
		rep.Admitted+rep.Rejected+rep.Shed()+rep.Expired)
	for c := 0; c < model.NumPriorities; c++ {
		if rep.ShedByClass[c] == 0 {
			continue
		}
		fmt.Printf("  shed %-12s %d\n", model.Priority(c), rep.ShedByClass[c])
	}
	if rep.Shed() > 0 {
		fmt.Printf("  shed stages       %d at class buffers, %d at the breaker, %d at the backend queue, %d at deadlines\n",
			rep.ShedBuffer, rep.ShedBreaker, rep.ShedQueue, rep.ShedDeadline)
	}
	fmt.Printf("  breaker           %d opens (now %s)\n", rep.BreakerOpens, rep.BreakerState)
	if rep.RateCuts+rep.RateRaises > 0 {
		fmt.Printf("  aimd              %.0f arrivals/sec now, %d raises, %d cuts\n",
			rep.AdmitRate, rep.RateRaises, rep.RateCuts)
	}
	fmt.Printf("  dead letters      %d recovered, %d expired\n", rep.Recovered, rep.Expired)
	for c := 0; c < model.NumPriorities; c++ {
		if rep.RecoveredByClass[c] == 0 && rep.ExpiredByClass[c] == 0 {
			continue
		}
		fmt.Printf("  dlq %-13s %d recovered, %d expired\n",
			model.Priority(c), rep.RecoveredByClass[c], rep.ExpiredByClass[c])
	}
	fmt.Printf("  window            p50 %v, p99 %v, %.0f admissions/sec over %d samples\n",
		rep.Window.P50.Round(time.Microsecond), rep.Window.P99.Round(time.Microsecond),
		rep.Window.PerSec, rep.Window.Samples)
	fmt.Printf("  service           p50 %v, p99 %v over %d samples\n",
		rep.Service.P50.Round(time.Microsecond), rep.Service.P99.Round(time.Microsecond),
		rep.Service.Samples)
}
