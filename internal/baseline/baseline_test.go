package baseline

import (
	"testing"

	"rtsm/internal/core"
	"rtsm/internal/workload"
)

func TestBinPackHiperlan2(t *testing.T) {
	mode := workload.Hiperlan2Modes[3]
	app := workload.Hiperlan2(mode)
	lib := workload.Hiperlan2Library(mode)
	plat := workload.Hiperlan2Platform()
	res, err := BinPack(lib, core.Config{}, app, plat, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mapping.Adequate(res.Platform) {
		t.Error("bin-pack mapping not adequate")
	}
	// Heterogeneity-blind packing must not beat the informed heuristic.
	m := core.NewMapper(lib)
	heur, err := m.Map(app, plat)
	if err != nil {
		t.Fatal(err)
	}
	if heur.Feasible && res.Feasible && res.Energy.Total() < heur.Energy.Total()-1e-9 {
		t.Errorf("bin packing (%.1f nJ) beat the heuristic (%.1f nJ)",
			res.Energy.Total(), heur.Energy.Total())
	}
}

func TestRandomHiperlan2(t *testing.T) {
	mode := workload.Hiperlan2Modes[0]
	app := workload.Hiperlan2(mode)
	lib := workload.Hiperlan2Library(mode)
	plat := workload.Hiperlan2Platform()
	res, err := Random(lib, core.Config{}, app, plat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mapping.Adequate(res.Platform) {
		t.Error("random mapping not adequate")
	}
	// Determinism under a fixed seed.
	res2, err := Random(lib, core.Config{}, app, plat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy.Total() != res2.Energy.Total() {
		t.Error("random mapper not deterministic under fixed seed")
	}
}

func TestRandomSyntheticMany(t *testing.T) {
	app, lib := workload.Synthetic(workload.SynthOptions{Shape: workload.ShapeChain, Processes: 6, Seed: 11})
	plat := workload.SyntheticPlatform(4, 4, 11)
	for seed := int64(0); seed < 5; seed++ {
		if _, err := Random(lib, core.Config{}, app, plat, seed); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestDesignTimeNeverCheaperThanRunTime(t *testing.T) {
	// E7's claim in miniature: for each actual mode, the run-time mapping
	// is at most as expensive as the frozen worst-case mapping.
	worstMode := workload.Hiperlan2Modes[6] // QAM64
	worstApp := workload.Hiperlan2(worstMode)
	worstLib := workload.Hiperlan2Library(worstMode)
	plat := workload.Hiperlan2Platform()
	for _, mode := range workload.Hiperlan2Modes[:3] {
		app := workload.Hiperlan2(mode)
		lib := workload.Hiperlan2Library(mode)
		static, err := DesignTime(worstLib, lib, core.Config{}, worstApp, app, plat, plat)
		if err != nil {
			t.Fatalf("%s: %v", mode.Name, err)
		}
		dynamic, err := core.NewMapper(lib).Map(app, plat)
		if err != nil {
			t.Fatalf("%s: %v", mode.Name, err)
		}
		if !dynamic.Feasible {
			t.Fatalf("%s: run-time mapping infeasible", mode.Name)
		}
		if dynamic.Energy.Total() > static.Energy.Total()+1e-9 {
			t.Errorf("%s: run-time %.1f nJ > design-time %.1f nJ",
				mode.Name, dynamic.Energy.Total(), static.Energy.Total())
		}
	}
}

func TestBinPackClusterRespectsMontiumOccupancy(t *testing.T) {
	// Clusters of two processes cannot land on a single-kernel Montium.
	mode := workload.Hiperlan2Modes[3]
	app := workload.Hiperlan2(mode)
	lib := workload.Hiperlan2Library(mode)
	plat := workload.Hiperlan2Platform()
	res, err := BinPack(lib, core.Config{}, app, plat, 3)
	if err != nil {
		t.Fatal(err)
	}
	perTile := make(map[string]int)
	for _, p := range app.MappableProcesses() {
		tile := res.Platform.Tile(res.Mapping.Tile[p.ID])
		perTile[tile.Name]++
		if tile.MaxOccupants > 0 && perTile[tile.Name] > tile.MaxOccupants {
			t.Errorf("tile %s over-occupied", tile.Name)
		}
	}
}
