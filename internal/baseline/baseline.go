// Package baseline implements the comparison mappers the experiments pit
// against the paper's heuristic: a vector bin-packing mapper with
// neighbour clustering in the spirit of Moreira, Mol and Bekooij
// (SAC 2007, the paper's [8]), a seeded random adequate mapper, and the
// design-time worst-case flow the paper's introduction argues against.
// All baselines produce their placements only; routing and QoS
// verification go through core.FinishAssignment so every contender is
// judged by identical machinery.
package baseline

import (
	"fmt"
	"math/rand"
	"sort"

	"rtsm/internal/arch"
	"rtsm/internal/core"
	"rtsm/internal/model"
)

// BinPack maps the application in the style of the paper's reference [8]:
// neighbouring processes are first clustered greedily along the heaviest
// channels, then clusters are packed first-fit-decreasing by utilisation
// onto tiles. The method presumes interchangeable processors, so each
// process simply takes the first implementation that fits the candidate
// tile — heterogeneity-blind by design, which is exactly the behaviour
// the paper contrasts its desirability ordering against.
func BinPack(lib *model.Library, cfg core.Config, app *model.Application, plat *arch.Platform, maxClusterSize int) (*core.Result, error) {
	if maxClusterSize < 1 {
		maxClusterSize = 2
	}
	procs := app.MappableProcesses()
	clusterOf := make(map[model.ProcessID]int)
	clusters := make([][]*model.Process, 0, len(procs))
	for _, p := range procs {
		clusterOf[p.ID] = len(clusters)
		clusters = append(clusters, []*model.Process{p})
	}
	// Merge along channels in non-increasing traffic order while both
	// sides stay mappable to a single tile type.
	chans := append([]*model.Channel(nil), app.StreamChannels()...)
	sort.SliceStable(chans, func(i, j int) bool {
		return chans[i].BytesPerPeriod() > chans[j].BytesPerPeriod()
	})
	for _, c := range chans {
		ci, iok := clusterOf[c.Src]
		cj, jok := clusterOf[c.Dst]
		if !iok || !jok || ci == cj {
			continue
		}
		merged := len(clusters[ci]) + len(clusters[cj])
		if merged > maxClusterSize {
			continue
		}
		if commonType(lib, append(append([]*model.Process(nil), clusters[ci]...), clusters[cj]...)) == "" {
			continue
		}
		clusters[ci] = append(clusters[ci], clusters[cj]...)
		for _, p := range clusters[cj] {
			clusterOf[p.ID] = ci
		}
		clusters[cj] = nil
	}
	// First-fit-decreasing by total utilisation demand.
	type packJob struct {
		members []*model.Process
		demand  float64
	}
	var jobs []packJob
	for _, cl := range clusters {
		if len(cl) == 0 {
			continue
		}
		var demand float64
		for _, p := range cl {
			ims := lib.For(p.Name)
			if len(ims) == 0 {
				return nil, fmt.Errorf("baseline: process %q has no implementations", p.Name)
			}
			if cyc, err := ims[0].CyclesPerPeriod(app, p); err == nil {
				demand += float64(cyc)
			}
		}
		jobs = append(jobs, packJob{members: cl, demand: demand})
	}
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].demand > jobs[j].demand })

	mem := make(map[arch.TileID]int64)
	util := make(map[arch.TileID]float64)
	occ := make(map[arch.TileID]int)
	var placement []core.PlacedProcess
	for qi := 0; qi < len(jobs); qi++ {
		job := jobs[qi]
		placed := false
		for _, t := range plat.Tiles {
			if t.Type == arch.TypeSource || t.Type == arch.TypeSink || t.ClockHz <= 0 {
				continue
			}
			ok := true
			var add []core.PlacedProcess
			dMem, dUtil := mem[t.ID], util[t.ID]
			dOcc := occ[t.ID]
			for _, p := range job.members {
				im := lib.ForType(p.Name, t.Type)
				if im == nil {
					ok = false
					break
				}
				cyc, err := im.CyclesPerPeriod(app, p)
				if err != nil {
					ok = false
					break
				}
				u := float64(cyc) / float64(t.CycleBudget(app.QoS.PeriodNs))
				if t.FreeMem()-dMem < im.MemBytes || t.ReservedUtil+dUtil+u > 1.0+1e-9 {
					ok = false
					break
				}
				if t.MaxOccupants > 0 && t.Occupants+dOcc >= t.MaxOccupants {
					ok = false
					break
				}
				dMem += im.MemBytes
				dUtil += u
				dOcc++
				add = append(add, core.PlacedProcess{Process: p.Name, Impl: im, Tile: t.Name})
			}
			if ok {
				mem[t.ID] = dMem
				util[t.ID] = dUtil
				occ[t.ID] = dOcc
				placement = append(placement, add...)
				placed = true
				break
			}
		}
		if !placed {
			// A multi-process cluster that fits no tile (e.g. two kernels
			// on single-kernel Montiums) is split back into singletons,
			// the packer's standard fallback.
			if len(job.members) > 1 {
				for _, p := range job.members {
					jobs = append(jobs, packJob{members: []*model.Process{p}, demand: 0})
				}
				continue
			}
			return nil, fmt.Errorf("baseline: bin packing failed to place process %q", job.members[0].Name)
		}
	}
	return core.FinishAssignment(lib, cfg, app, plat, placement)
}

// commonType returns a tile type for which every listed process has an
// implementation, or "".
func commonType(lib *model.Library, procs []*model.Process) arch.TileType {
	if len(procs) == 0 {
		return ""
	}
	for _, im := range lib.For(procs[0].Name) {
		ok := true
		for _, p := range procs[1:] {
			if lib.ForType(p.Name, im.TileType) == nil {
				ok = false
				break
			}
		}
		if ok {
			return im.TileType
		}
	}
	return ""
}

// Random produces a seeded random adequate placement: every process draws
// a uniformly random implementation and a uniformly random tile of that
// type with room. Restarts draws until a fit is found or attempts run
// out. It is the sanity floor every informed mapper must beat.
func Random(lib *model.Library, cfg core.Config, app *model.Application, plat *arch.Platform, seed int64) (*core.Result, error) {
	rng := rand.New(rand.NewSource(seed))
	const attempts = 64
	var lastErr error
	for a := 0; a < attempts; a++ {
		placement, err := randomPlacement(lib, app, plat, rng)
		if err != nil {
			lastErr = err
			continue
		}
		res, err := core.FinishAssignment(lib, cfg, app, plat, placement)
		if err != nil {
			lastErr = err
			continue
		}
		return res, nil
	}
	return nil, fmt.Errorf("baseline: random mapper found no adherent placement in %d attempts: %w", attempts, lastErr)
}

func randomPlacement(lib *model.Library, app *model.Application, plat *arch.Platform, rng *rand.Rand) ([]core.PlacedProcess, error) {
	mem := make(map[arch.TileID]int64)
	util := make(map[arch.TileID]float64)
	occ := make(map[arch.TileID]int)
	var placement []core.PlacedProcess
	for _, p := range app.MappableProcesses() {
		ims := lib.For(p.Name)
		if len(ims) == 0 {
			return nil, fmt.Errorf("baseline: process %q has no implementations", p.Name)
		}
		im := ims[rng.Intn(len(ims))]
		tiles := plat.TilesOfType(im.TileType)
		if len(tiles) == 0 {
			return nil, fmt.Errorf("baseline: no %s tile for %q", im.TileType, p.Name)
		}
		cyc, err := im.CyclesPerPeriod(app, p)
		if err != nil {
			return nil, err
		}
		// One random probe plus a linear fallback keeps the distribution
		// random but the failure rate low.
		order := rng.Perm(len(tiles))
		var chosen *arch.Tile
		for _, idx := range order {
			t := tiles[idx]
			u := float64(cyc) / float64(t.CycleBudget(app.QoS.PeriodNs))
			if t.FreeMem()-mem[t.ID] < im.MemBytes || t.ReservedUtil+util[t.ID]+u > 1.0+1e-9 {
				continue
			}
			if t.MaxOccupants > 0 && t.Occupants+occ[t.ID] >= t.MaxOccupants {
				continue
			}
			chosen = t
			mem[t.ID] += im.MemBytes
			util[t.ID] += u
			occ[t.ID]++
			break
		}
		if chosen == nil {
			return nil, fmt.Errorf("baseline: no room for %q", p.Name)
		}
		placement = append(placement, core.PlacedProcess{Process: p.Name, Impl: im, Tile: chosen.Name})
	}
	return placement, nil
}

// DesignTime models the flow the paper's introduction argues against: the
// mapping is fixed at design time against the worst-case application
// (e.g. the most demanding HIPERLAN/2 mode) on the platform as the
// designer assumed it (designPlat, typically empty), and reused unchanged
// at run time on the platform as it actually is (runPlat, possibly partly
// occupied by other applications). The returned result is the frozen
// placement re-verified and re-priced against the actual application; an
// error is returned when the frozen placement collides with the run-time
// state — the inflexibility the paper's run-time approach removes.
func DesignTime(worstLib, actualLib *model.Library, cfg core.Config, worstCase, actual *model.Application, designPlat, runPlat *arch.Platform) (*core.Result, error) {
	m := &core.Mapper{Lib: worstLib, Cfg: cfg}
	worst, err := m.Map(worstCase, designPlat)
	if err != nil {
		return nil, fmt.Errorf("baseline: design-time mapping failed: %w", err)
	}
	if !worst.Feasible {
		return nil, fmt.Errorf("baseline: design-time mapping infeasible for worst case %q", worstCase.Name)
	}
	var placement []core.PlacedProcess
	for _, p := range worstCase.MappableProcesses() {
		actualProc := actual.ProcessByName(p.Name)
		if actualProc == nil {
			return nil, fmt.Errorf("baseline: worst-case process %q missing from actual application", p.Name)
		}
		im := worst.Mapping.Impl[p.ID]
		// The implementation library differs per mode (rates depend on
		// b); the frozen decisions are the tile type and the tile.
		actualIm := actualLib.ForType(p.Name, im.TileType)
		if actualIm == nil {
			return nil, fmt.Errorf("baseline: no %s implementation of %q in the actual library", im.TileType, p.Name)
		}
		placement = append(placement, core.PlacedProcess{
			Process: p.Name,
			Impl:    actualIm,
			Tile:    worst.Platform.Tile(worst.Mapping.Tile[p.ID]).Name,
		})
	}
	return core.FinishAssignment(actualLib, cfg, actual, runPlat, placement)
}
