package noc

import (
	"errors"
	"math/rand"
	"testing"

	"rtsm/internal/arch"
)

func grid(t *testing.T, w, h int) *arch.Platform {
	t.Helper()
	p := arch.NewMesh("g", w, h, 1000)
	p.AttachTile(arch.TileSpec{Name: "a", Type: arch.TypeARM, At: arch.Pt(0, 0), NICapBps: 10000})
	p.AttachTile(arch.TileSpec{Name: "b", Type: arch.TypeARM, At: arch.Pt(w-1, h-1), NICapBps: 10000})
	return p
}

func TestShortestAvailableBasics(t *testing.T) {
	p := grid(t, 3, 3)
	from := p.RouterAt(arch.Pt(0, 0)).ID
	to := p.RouterAt(arch.Pt(2, 2)).ID
	path, err := ShortestAvailable(p, from, to, 100)
	if err != nil {
		t.Fatal(err)
	}
	if path.Hops() != 4 {
		t.Errorf("Hops = %d, want 4 (Manhattan distance)", path.Hops())
	}
	if path.Routers[0] != from || path.Routers[len(path.Routers)-1] != to {
		t.Errorf("path endpoints wrong: %v", path.Routers)
	}
	// Consecutive routers must be joined by the listed links.
	for i, lid := range path.Links {
		l := p.Link(lid)
		if l.From != path.Routers[i] || l.To != path.Routers[i+1] {
			t.Errorf("link %d does not connect router %d to %d", lid, path.Routers[i], path.Routers[i+1])
		}
	}
}

func TestShortestAvailableSameRouter(t *testing.T) {
	p := grid(t, 2, 2)
	r := p.RouterAt(arch.Pt(0, 0)).ID
	path, err := ShortestAvailable(p, r, r, 100)
	if err != nil {
		t.Fatal(err)
	}
	if path.Hops() != 0 || len(path.Routers) != 1 {
		t.Errorf("same-router path = %+v", path)
	}
}

func TestShortestAvailableAvoidsFullLinks(t *testing.T) {
	p := grid(t, 3, 1)
	from := p.RouterAt(arch.Pt(0, 0)).ID
	to := p.RouterAt(arch.Pt(2, 0)).ID
	// Saturate the only link out of router (0,0) towards (1,0).
	p.LinkBetween(from, p.RouterAt(arch.Pt(1, 0)).ID).ReservedBps = 950
	if _, err := ShortestAvailable(p, from, to, 100); err == nil {
		t.Fatal("expected no path on a saturated 3×1 line")
	}
	// A smaller demand still fits.
	if _, err := ShortestAvailable(p, from, to, 50); err != nil {
		t.Fatalf("50 B/s should fit: %v", err)
	}
}

func TestShortestAvailableDetours(t *testing.T) {
	// Saturating the direct horizontal corridor forces a detour in a 3×2
	// mesh; the path gets longer but must still be found.
	p := arch.NewMesh("d", 3, 2, 1000)
	from := p.RouterAt(arch.Pt(0, 0)).ID
	mid := p.RouterAt(arch.Pt(1, 0)).ID
	to := p.RouterAt(arch.Pt(2, 0)).ID
	p.LinkBetween(from, mid).ReservedBps = 1000
	path, err := ShortestAvailable(p, from, to, 100)
	if err != nil {
		t.Fatal(err)
	}
	if path.Hops() != 4 {
		t.Errorf("detour hops = %d, want 4", path.Hops())
	}
}

func TestShortestAvailableDeterministic(t *testing.T) {
	p := grid(t, 5, 5)
	from := p.RouterAt(arch.Pt(0, 0)).ID
	to := p.RouterAt(arch.Pt(4, 4)).ID
	first, err := ShortestAvailable(p, from, to, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := ShortestAvailable(p, from, to, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Links) != len(first.Links) {
			t.Fatal("nondeterministic path length")
		}
		for j := range again.Links {
			if again.Links[j] != first.Links[j] {
				t.Fatal("nondeterministic route")
			}
		}
	}
}

func TestXYRoute(t *testing.T) {
	p := grid(t, 4, 3)
	from := p.RouterAt(arch.Pt(0, 2)).ID
	to := p.RouterAt(arch.Pt(3, 0)).ID
	path, err := XY(p, from, to, 10)
	if err != nil {
		t.Fatal(err)
	}
	if path.Hops() != 5 {
		t.Errorf("XY hops = %d, want 5", path.Hops())
	}
	// X must be exhausted before Y changes.
	sawY := false
	for i := 1; i < len(path.Routers); i++ {
		a := p.Routers[path.Routers[i-1]].Pos
		b := p.Routers[path.Routers[i]].Pos
		if a.Y != b.Y {
			sawY = true
		} else if sawY {
			t.Fatal("XY route moved in x after moving in y")
		}
	}
}

func TestXYBlockedFails(t *testing.T) {
	p := grid(t, 3, 3)
	from := p.RouterAt(arch.Pt(0, 0)).ID
	to := p.RouterAt(arch.Pt(2, 0)).ID
	p.LinkBetween(from, p.RouterAt(arch.Pt(1, 0)).ID).ReservedBps = 1000
	_, err := XY(p, from, to, 10)
	var enp ErrNoPath
	if !errors.As(err, &enp) {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
	// Dijkstra routes around the block where XY cannot.
	if _, err := ShortestAvailable(p, from, to, 10); err != nil {
		t.Errorf("adaptive routing should detour: %v", err)
	}
}

func TestReserveRelease(t *testing.T) {
	p := grid(t, 3, 3)
	a := p.TileByName("a")
	b := p.TileByName("b")
	path, err := ShortestAvailable(p, a.Router, b.Router, 200)
	if err != nil {
		t.Fatal(err)
	}
	Reserve(p, path, a.ID, b.ID, 200)
	for _, lid := range path.Links {
		if p.Link(lid).ReservedBps != 200 {
			t.Errorf("link %d not reserved", lid)
		}
	}
	if a.ReservedOutBps != 200 || b.ReservedInBps != 200 {
		t.Error("NI bandwidth not reserved")
	}
	Release(p, path, a.ID, b.ID, 200)
	for _, lid := range path.Links {
		if p.Link(lid).ReservedBps != 0 {
			t.Errorf("link %d not released", lid)
		}
	}
	if a.ReservedOutBps != 0 || b.ReservedInBps != 0 {
		t.Error("NI bandwidth not released")
	}
}

func TestReservePanicsOnOvercommit(t *testing.T) {
	p := grid(t, 2, 1)
	a := p.TileByName("a")
	b := p.TileByName("b")
	path, err := ShortestAvailable(p, a.Router, b.Router, 800)
	if err != nil {
		t.Fatal(err)
	}
	Reserve(p, path, a.ID, b.ID, 800)
	defer func() {
		if recover() == nil {
			t.Error("over-reservation did not panic")
		}
	}()
	Reserve(p, path, a.ID, b.ID, 800)
}

func TestIncrementalRoutingSpreadsLoad(t *testing.T) {
	// Route many identical demands between the same endpoints: once the
	// shortest corridor saturates, later channels must take longer paths
	// rather than fail, until the cut saturates entirely.
	p := arch.NewMesh("s", 3, 3, 1000)
	from := p.RouterAt(arch.Pt(0, 1)).ID
	to := p.RouterAt(arch.Pt(2, 1)).ID
	hops := make([]int, 0, 6)
	for i := 0; i < 6; i++ {
		path, err := ShortestAvailable(p, from, to, 500)
		if err != nil {
			break
		}
		for _, lid := range path.Links {
			p.Link(lid).ReservedBps += 500
		}
		hops = append(hops, path.Hops())
	}
	// 3 disjoint corridors × 2 demands each fit; the 7th would not.
	if len(hops) != 6 {
		t.Fatalf("routed %d demands, want 6 (%v)", len(hops), hops)
	}
	if hops[0] != 2 || hops[5] <= 2 {
		t.Errorf("load did not spread: %v", hops)
	}
}

func TestShortestMatchesManhattanOnEmptyMesh(t *testing.T) {
	// Property: with no reservations, path length equals the Manhattan
	// distance between the routers.
	rng := rand.New(rand.NewSource(3))
	p := arch.NewMesh("m", 6, 5, 1000)
	for trial := 0; trial < 100; trial++ {
		a := arch.Pt(rng.Intn(6), rng.Intn(5))
		b := arch.Pt(rng.Intn(6), rng.Intn(5))
		path, err := ShortestAvailable(p, p.RouterAt(a).ID, p.RouterAt(b).ID, 1)
		if err != nil {
			t.Fatal(err)
		}
		if path.Hops() != a.Manhattan(b) {
			t.Fatalf("hops %d != manhattan %d for %v→%v", path.Hops(), a.Manhattan(b), a, b)
		}
	}
}

func TestPathReservationRoundTripProperty(t *testing.T) {
	// Property: reserve followed by release restores every link exactly,
	// for random endpoint pairs and demands.
	rng := rand.New(rand.NewSource(17))
	p := arch.NewMesh("rt", 5, 4, 1000)
	p.AttachTile(arch.TileSpec{Name: "s", Type: arch.TypeARM, At: arch.Pt(0, 0), NICapBps: 5000})
	p.AttachTile(arch.TileSpec{Name: "d", Type: arch.TypeARM, At: arch.Pt(4, 3), NICapBps: 5000})
	s := p.TileByName("s")
	d := p.TileByName("d")
	for trial := 0; trial < 50; trial++ {
		need := int64(1 + rng.Intn(1000))
		path, err := ShortestAvailable(p, s.Router, d.Router, need)
		if err != nil {
			t.Fatal(err)
		}
		Reserve(p, path, s.ID, d.ID, need)
		Release(p, path, s.ID, d.ID, need)
	}
	for _, l := range p.Links {
		if l.ReservedBps != 0 {
			t.Fatalf("link %d retains %d B/s after round trips", l.ID, l.ReservedBps)
		}
	}
	if s.ReservedOutBps != 0 || d.ReservedInBps != 0 {
		t.Fatal("NI reservations leaked")
	}
}
