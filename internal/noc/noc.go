// Package noc routes communication channels through the platform's
// Network-on-Chip and manages guaranteed-throughput lane reservations.
// It implements the primitives of the paper's step 3 (§3): capacity-aware
// shortest paths that only use links with enough residual throughput, plus
// dimension-ordered XY routing as a comparison policy.
package noc

import (
	"container/heap"
	"fmt"

	"rtsm/internal/arch"
)

// Path is one routed connection: the router sequence from the source
// tile's router to the destination tile's router, and the directed links
// traversed between them. A path within a single router (source and
// destination tiles attached to the same router) has no links.
type Path struct {
	Routers []arch.RouterID
	Links   []arch.LinkID
}

// Hops returns the number of router-to-router links the path crosses.
func (p Path) Hops() int { return len(p.Links) }

// ErrNoPath reports that no route with sufficient residual capacity
// exists; the mapping is inadherent and the mapper must refine.
type ErrNoPath struct {
	From, To arch.RouterID
	NeedBps  int64
}

func (e ErrNoPath) Error() string {
	return fmt.Sprintf("noc: no path from router %d to %d with %d B/s free", e.From, e.To, e.NeedBps)
}

type pqItem struct {
	router arch.RouterID
	dist   int
	seq    int
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].seq < q[j].seq
}
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// ShortestAvailable finds a minimum-hop path from one router to another
// using only links with at least needBps of unreserved capacity. Ties are
// broken deterministically by router index, so repeated runs of the
// mapper route identically.
func ShortestAvailable(p *arch.Platform, from, to arch.RouterID, needBps int64) (Path, error) {
	if from == to {
		return Path{Routers: []arch.RouterID{from}}, nil
	}
	const unseen = int(^uint(0) >> 1)
	dist := make([]int, len(p.Routers))
	prevLink := make([]arch.LinkID, len(p.Routers))
	for i := range dist {
		dist[i] = unseen
		prevLink[i] = -1
	}
	dist[from] = 0
	q := &pq{{router: from}}
	seq := 0
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.router == to {
			break
		}
		if it.dist > dist[it.router] {
			continue
		}
		for _, lid := range p.OutLinks(it.router) {
			l := p.Link(lid)
			if l.FreeBps() < needBps {
				continue
			}
			nd := it.dist + 1
			if nd < dist[l.To] {
				dist[l.To] = nd
				prevLink[l.To] = lid
				seq++
				heap.Push(q, pqItem{router: l.To, dist: nd, seq: seq})
			}
		}
	}
	if prevLink[to] == -1 {
		return Path{}, ErrNoPath{From: from, To: to, NeedBps: needBps}
	}
	var links []arch.LinkID
	for r := to; r != from; {
		lid := prevLink[r]
		links = append(links, lid)
		r = p.Link(lid).From
	}
	// Reverse into forward order and collect the router sequence.
	for i, j := 0, len(links)-1; i < j; i, j = i+1, j-1 {
		links[i], links[j] = links[j], links[i]
	}
	routers := []arch.RouterID{from}
	for _, lid := range links {
		routers = append(routers, p.Link(lid).To)
	}
	return Path{Routers: routers, Links: links}, nil
}

// XY computes the dimension-ordered route (first along x, then along y)
// and fails if any link on it lacks the required residual capacity. XY is
// the fixed-routing baseline the ablation experiments compare against.
func XY(p *arch.Platform, from, to arch.RouterID, needBps int64) (Path, error) {
	cur := p.Routers[from].Pos
	dst := p.Routers[to].Pos
	routers := []arch.RouterID{from}
	var links []arch.LinkID
	step := func(next arch.Point) error {
		a := p.RouterAt(cur).ID
		b := p.RouterAt(next).ID
		l := p.LinkBetween(a, b)
		if l == nil {
			return fmt.Errorf("noc: mesh has no link %v→%v", cur, next)
		}
		if l.FreeBps() < needBps {
			return ErrNoPath{From: from, To: to, NeedBps: needBps}
		}
		links = append(links, l.ID)
		routers = append(routers, b)
		cur = next
		return nil
	}
	for cur.X != dst.X {
		next := cur
		if dst.X > cur.X {
			next.X++
		} else {
			next.X--
		}
		if err := step(next); err != nil {
			return Path{}, err
		}
	}
	for cur.Y != dst.Y {
		next := cur
		if dst.Y > cur.Y {
			next.Y++
		} else {
			next.Y--
		}
		if err := step(next); err != nil {
			return Path{}, err
		}
	}
	return Path{Routers: routers, Links: links}, nil
}

// Reserve commits bandwidth on every link of the path and on the network
// interfaces of the endpoint tiles. It assumes availability was checked
// during path construction; over-reservation indicates a mapper bug and
// panics. Writes go through the platform's copy-on-write barrier, so
// reserving on a CoW working clone faults in only the touched regions.
func Reserve(p *arch.Platform, path Path, srcTile, dstTile arch.TileID, bps int64) {
	for _, lid := range path.Links {
		l := p.WLink(lid)
		if l.FreeBps() < bps {
			panic(fmt.Sprintf("noc: over-reserving link %d", lid))
		}
		l.ReservedBps += bps
	}
	if path.Hops() > 0 {
		p.WTile(srcTile).ReservedOutBps += bps
		p.WTile(dstTile).ReservedInBps += bps
	}
}

// Release returns previously reserved bandwidth.
func Release(p *arch.Platform, path Path, srcTile, dstTile arch.TileID, bps int64) {
	for _, lid := range path.Links {
		p.WLink(lid).ReservedBps -= bps
	}
	if path.Hops() > 0 {
		p.WTile(srcTile).ReservedOutBps -= bps
		p.WTile(dstTile).ReservedInBps -= bps
	}
}
