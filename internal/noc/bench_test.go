package noc

import (
	"testing"

	"rtsm/internal/arch"
)

func BenchmarkShortestAvailable8x8(b *testing.B) {
	p := arch.NewMesh("b", 8, 8, 1000)
	from := p.RouterAt(arch.Pt(0, 0)).ID
	to := p.RouterAt(arch.Pt(7, 7)).ID
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ShortestAvailable(p, from, to, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShortestAvailableCongested(b *testing.B) {
	p := arch.NewMesh("b", 8, 8, 1000)
	// Saturate a central corridor so the search must detour.
	for y := 1; y < 7; y++ {
		a := p.RouterAt(arch.Pt(3, y)).ID
		c := p.RouterAt(arch.Pt(4, y)).ID
		p.LinkBetween(a, c).ReservedBps = 1000
	}
	from := p.RouterAt(arch.Pt(0, 3)).ID
	to := p.RouterAt(arch.Pt(7, 3)).ID
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ShortestAvailable(p, from, to, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXY8x8(b *testing.B) {
	p := arch.NewMesh("b", 8, 8, 1000)
	from := p.RouterAt(arch.Pt(0, 0)).ID
	to := p.RouterAt(arch.Pt(7, 7)).ID
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := XY(p, from, to, 1); err != nil {
			b.Fatal(err)
		}
	}
}
