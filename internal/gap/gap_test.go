package gap

import (
	"errors"
	"testing"

	"rtsm/internal/arch"
	"rtsm/internal/csdf"
	"rtsm/internal/energy"
	"rtsm/internal/model"
	"rtsm/internal/workload"
)

func solver(lib *model.Library) *Solver {
	return &Solver{Lib: lib, Params: energy.DefaultParams()}
}

func TestOptimalHiperlan2(t *testing.T) {
	mode := workload.Hiperlan2Modes[3]
	app := workload.Hiperlan2(mode)
	lib := workload.Hiperlan2Library(mode)
	plat := workload.Hiperlan2Platform()
	asg, err := solver(lib).Optimal(app, plat)
	if err != nil {
		t.Fatal(err)
	}
	// The heavy kernels must land on the Montiums (the ARM versions do
	// not fit the cycle budget at all), the light ones on ARMs.
	for name, wantType := range map[string]arch.TileType{
		"Inv.OFDM": arch.TypeMontium,
		"Rem.":     arch.TypeMontium,
		"Pfx.rem.": arch.TypeARM,
		"Frq.off.": arch.TypeARM,
	} {
		p := app.ProcessByName(name)
		if got := asg.Impl[p.ID].TileType; got != wantType {
			t.Errorf("%s on %s, want %s", name, got, wantType)
		}
	}
	if asg.Energy <= 0 {
		t.Error("non-positive optimal energy")
	}
	if asg.Nodes <= 0 {
		t.Error("no nodes expanded")
	}
}

func TestOptimalIsLowerBoundForHeuristicObjective(t *testing.T) {
	// Property: on small synthetic instances the exact optimum never
	// exceeds the cost of any feasible alternative (here: every single
	// swap of the optimum remains ≥ optimal).
	app, lib := workload.Synthetic(workload.SynthOptions{Shape: workload.ShapeChain, Processes: 4, Seed: 5})
	plat := workload.SyntheticPlatform(3, 3, 5)
	s := solver(lib)
	asg, err := s.Optimal(app, plat)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Evaluate(app, plat, asg.Impl, asg.Tile); got != asg.Energy {
		t.Errorf("Evaluate(optimal) = %v, want %v (objective must round-trip)", got, asg.Energy)
	}
	// Perturb: move each process to every other tile of its type and
	// confirm no cheaper *adherent* evaluation exists.
	for _, p := range app.MappableProcesses() {
		im := asg.Impl[p.ID]
		for _, tile := range plat.TilesOfType(im.TileType) {
			perturbed := make(map[model.ProcessID]arch.TileID, len(asg.Tile))
			for k, v := range asg.Tile {
				perturbed[k] = v
			}
			perturbed[p.ID] = tile.ID
			if !adherent(t, app, plat, asg.Impl, perturbed) {
				continue
			}
			if got := s.Evaluate(app, plat, asg.Impl, perturbed); got < asg.Energy-1e-9 {
				t.Errorf("moving %s to %s yields %v < optimal %v", p.Name, tile.Name, got, asg.Energy)
			}
		}
	}
}

// adherent replays the perturbed assignment's reservations against the
// platform's capacities.
func adherent(t *testing.T, app *model.Application, plat *arch.Platform,
	impl map[model.ProcessID]*model.Implementation, tile map[model.ProcessID]arch.TileID) bool {
	t.Helper()
	mem := make(map[arch.TileID]int64)
	util := make(map[arch.TileID]float64)
	occ := make(map[arch.TileID]int)
	for _, p := range app.MappableProcesses() {
		im := impl[p.ID]
		tid := tile[p.ID]
		cyc, err := im.CyclesPerPeriod(app, p)
		if err != nil {
			return false
		}
		mem[tid] += im.MemBytes
		util[tid] += float64(cyc) / float64(plat.Tile(tid).CycleBudget(app.QoS.PeriodNs))
		occ[tid]++
	}
	for tid, m := range mem {
		tl := plat.Tile(tid)
		if m > tl.MemBytes || util[tid] > 1.0+1e-9 {
			return false
		}
		if tl.MaxOccupants > 0 && occ[tid] > tl.MaxOccupants {
			return false
		}
	}
	return true
}

func TestOptimalRespectsOccupancy(t *testing.T) {
	// Two processes whose only implementations are Montium, one Montium
	// tile that holds a single kernel: no adherent assignment exists.
	app := model.NewApplication("tight", model.QoS{PeriodNs: 4000})
	a := app.AddProcess("a")
	b := app.AddProcess("b")
	app.Connect(a, b, 8, 4)
	lib := model.NewLibrary()
	for _, name := range []string{"a", "b"} {
		lib.Add(&model.Implementation{
			Process: name, TileType: arch.TypeMontium,
			WCET: pat3(), In: inPat(name, 8), Out: outPat(name, 8),
			EnergyPerPeriod: 10, MemBytes: 128,
		})
	}
	plat := arch.NewMesh("m", 2, 1, 1e9)
	plat.AttachTile(arch.TileSpec{Name: "M0", Type: arch.TypeMontium, At: arch.Pt(0, 0),
		ClockHz: 200e6, MemBytes: 1 << 20, MaxOccupants: 1})
	if _, err := solver(lib).Optimal(app, plat); err == nil {
		t.Fatal("expected no adherent assignment")
	}
	// A second Montium makes it solvable.
	plat.AttachTile(arch.TileSpec{Name: "M1", Type: arch.TypeMontium, At: arch.Pt(1, 0),
		ClockHz: 200e6, MemBytes: 1 << 20, MaxOccupants: 1})
	asg, err := solver(lib).Optimal(app, plat)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Tile[a.ID] == asg.Tile[b.ID] {
		t.Error("both processes on one single-kernel Montium")
	}
}

func TestOptimalPrefersSharedTileWhenCommDominates(t *testing.T) {
	// Two chatty processes with implementations on ARM only: co-locating
	// them kills the communication energy and one idle share.
	app := model.NewApplication("chatty", model.QoS{PeriodNs: 4000})
	a := app.AddProcess("a")
	b := app.AddProcess("b")
	app.Connect(a, b, 10000, 4) // enormous traffic
	lib := model.NewLibrary()
	for _, name := range []string{"a", "b"} {
		lib.Add(&model.Implementation{
			Process: name, TileType: arch.TypeARM,
			WCET: pat3(), In: inPat(name, 10000), Out: outPat(name, 10000),
			EnergyPerPeriod: 10, MemBytes: 128,
		})
	}
	plat := arch.NewMesh("m", 2, 1, 1e9)
	plat.AttachTile(arch.TileSpec{Name: "A0", Type: arch.TypeARM, At: arch.Pt(0, 0), ClockHz: 200e6, MemBytes: 1 << 20})
	plat.AttachTile(arch.TileSpec{Name: "A1", Type: arch.TypeARM, At: arch.Pt(1, 0), ClockHz: 200e6, MemBytes: 1 << 20})
	asg, err := solver(lib).Optimal(app, plat)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Tile[a.ID] != asg.Tile[b.ID] {
		t.Error("optimal should co-locate chatty processes")
	}
}

func TestOptimalNodeBudget(t *testing.T) {
	app, lib := workload.Synthetic(workload.SynthOptions{Shape: workload.ShapeChain, Processes: 8, Seed: 3})
	plat := workload.SyntheticPlatform(4, 4, 3)
	s := solver(lib)
	s.MaxNodes = 10 // absurdly small
	_, err := s.Optimal(app, plat)
	if !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

// pat3 and friends build the minimal 3-phase read/compute/write impl
// used by the tiny hand-rolled instances above.
func pat3() csdf.Pattern { return csdf.Vals(1, 10, 1) }

func inPat(name string, tokens int64) map[string]csdf.Pattern {
	if name == "a" {
		return nil
	}
	return map[string]csdf.Pattern{"in": csdf.Vals(tokens, 0, 0)}
}

func outPat(name string, tokens int64) map[string]csdf.Pattern {
	if name == "b" {
		return nil
	}
	return map[string]csdf.Pattern{"out": csdf.Vals(0, 0, tokens)}
}
