// Package gap provides an exact reference solver for the spatial
// assignment problem. The paper (§3) observes that assigning processes to
// a heterogeneous multi-tile platform "even when only considering the
// assignment of processes" is a Generalized Assignment Problem
// (Martello & Toth 1990), which is NP-complete — hence the paper's
// heuristic. On small instances, however, branch-and-bound enumeration is
// affordable and yields the true optimum, giving the experiments a yard-
// stick for heuristic quality (experiment E8).
//
// The objective matches the mapper's energy model exactly: processing
// energy of the chosen implementations, communication energy priced at
// Manhattan distance (the routing-free estimate both sides share), and
// idle energy of powered tiles. Constraints are the platform's: tile
// memory, processing utilisation, and occupancy limits.
package gap

import (
	"fmt"
	"math"

	"rtsm/internal/arch"
	"rtsm/internal/energy"
	"rtsm/internal/model"
)

// Assignment is an exact solver solution.
type Assignment struct {
	Impl map[model.ProcessID]*model.Implementation
	Tile map[model.ProcessID]arch.TileID
	// Energy is the objective value: total estimated energy per period.
	Energy float64
	// Nodes is the number of search nodes expanded.
	Nodes int64
}

// Solver holds the search configuration.
type Solver struct {
	Lib    *model.Library
	Params energy.Params
	// MaxNodes aborts the search when exceeded (0 = 20 million), keeping
	// accidental large instances from hanging the experiments.
	MaxNodes int64
}

// ErrTooLarge reports that the search exceeded its node budget.
var ErrTooLarge = fmt.Errorf("gap: instance exceeds the exact solver's node budget")

type searchCtx struct {
	s     *Solver
	app   *model.Application
	plat  *arch.Platform
	procs []*model.Process
	// pinned tiles participate in communication cost.
	tile map[model.ProcessID]arch.TileID
	impl map[model.ProcessID]*model.Implementation
	// residual capacities, indexed by tile ID
	mem  []int64
	util []float64
	occ  []int
	// minProc[i] is the cheapest processing energy of procs[i:] — the
	// admissible remainder bound.
	minProc []float64
	best    *Assignment
	nodes   int64
	budget  int64
}

// Optimal exhaustively finds the minimum-energy adequate and adherent
// assignment. It returns ErrTooLarge when the node budget is exceeded and
// an error when no adherent assignment exists.
func (s *Solver) Optimal(app *model.Application, plat *arch.Platform) (*Assignment, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	ctx := &searchCtx{
		s:      s,
		app:    app,
		plat:   plat,
		procs:  app.MappableProcesses(),
		tile:   make(map[model.ProcessID]arch.TileID),
		impl:   make(map[model.ProcessID]*model.Implementation),
		mem:    make([]int64, len(plat.Tiles)),
		util:   make([]float64, len(plat.Tiles)),
		occ:    make([]int, len(plat.Tiles)),
		budget: s.MaxNodes,
	}
	if ctx.budget == 0 {
		ctx.budget = 20_000_000
	}
	for i, t := range plat.Tiles {
		ctx.mem[i] = t.FreeMem()
		ctx.util[i] = t.ReservedUtil
		ctx.occ[i] = t.Occupants
	}
	for _, p := range app.Processes {
		if p.PinnedTile != "" && !p.Control {
			t := plat.TileByName(p.PinnedTile)
			if t == nil {
				return nil, fmt.Errorf("gap: unknown pinned tile %q", p.PinnedTile)
			}
			ctx.tile[p.ID] = t.ID
		}
	}
	ctx.minProc = make([]float64, len(ctx.procs)+1)
	for i := len(ctx.procs) - 1; i >= 0; i-- {
		cheapest := math.Inf(1)
		for _, im := range s.Lib.For(ctx.procs[i].Name) {
			if im.EnergyPerPeriod < cheapest {
				cheapest = im.EnergyPerPeriod
			}
		}
		if math.IsInf(cheapest, 1) {
			return nil, fmt.Errorf("gap: process %q has no implementations", ctx.procs[i].Name)
		}
		ctx.minProc[i] = ctx.minProc[i+1] + cheapest
	}
	if err := ctx.dfs(0, 0); err != nil {
		return nil, err
	}
	if ctx.best == nil {
		return nil, fmt.Errorf("gap: no adherent assignment exists for %q on %q", app.Name, plat.Name)
	}
	ctx.best.Nodes = ctx.nodes
	return ctx.best, nil
}

// commDelta prices the communication energy process p adds when placed on
// tile tid: channels to peers whose tiles are already decided, at
// Manhattan distance. Undecided peers contribute when their own turn
// comes, so every channel is counted exactly once. Idle energy is added
// only at leaves; the bound stays admissible because communication and
// idle energies are non-negative.
func (c *searchCtx) commDelta(p *model.Process, tid arch.TileID) float64 {
	var e float64
	for _, ch := range c.app.ChannelsOf(p.ID) {
		peer := ch.Src
		if peer == p.ID {
			peer = ch.Dst
		}
		peerTile, ok := c.tile[peer]
		if !ok {
			continue
		}
		hops := c.plat.Pos(tid).Manhattan(c.plat.Pos(peerTile))
		e += c.s.Params.CommEnergy(ch, hops)
	}
	return e
}

func (c *searchCtx) idleTotal() float64 {
	powered := make(map[arch.TileID]bool)
	for _, p := range c.procs {
		powered[c.tile[p.ID]] = true
	}
	var e float64
	for tid := range powered {
		e += c.s.Params.IdleEnergy(c.plat.Tile(tid))
	}
	return e
}

func (c *searchCtx) dfs(i int, cost float64) error {
	c.nodes++
	if c.nodes > c.budget {
		return ErrTooLarge
	}
	if i == len(c.procs) {
		total := cost + c.idleTotal()
		if c.best == nil || total < c.best.Energy {
			impl := make(map[model.ProcessID]*model.Implementation, len(c.impl))
			tile := make(map[model.ProcessID]arch.TileID, len(c.tile))
			for k, v := range c.impl {
				impl[k] = v
			}
			for k, v := range c.tile {
				tile[k] = v
			}
			c.best = &Assignment{Impl: impl, Tile: tile, Energy: total}
		}
		return nil
	}
	// Admissible bound: decided cost plus the cheapest possible
	// processing energy of the undecided suffix (communication and idle
	// are non-negative).
	if c.best != nil && cost+c.minProc[i] >= c.best.Energy {
		return nil
	}
	p := c.procs[i]
	for _, im := range c.s.Lib.For(p.Name) {
		cyc, err := im.CyclesPerPeriod(c.app, p)
		if err != nil {
			continue
		}
		for _, t := range c.plat.TilesOfType(im.TileType) {
			if t.MaxOccupants > 0 && c.occ[t.ID] >= t.MaxOccupants {
				continue
			}
			if c.mem[t.ID] < im.MemBytes {
				continue
			}
			util := float64(cyc) / float64(t.CycleBudget(c.app.QoS.PeriodNs))
			if c.util[t.ID]+util > 1.0+1e-9 {
				continue
			}
			delta := im.EnergyPerPeriod + c.commDelta(p, t.ID)
			c.tile[p.ID] = t.ID
			c.impl[p.ID] = im
			c.mem[t.ID] -= im.MemBytes
			c.util[t.ID] += util
			c.occ[t.ID]++
			if err := c.dfs(i+1, cost+delta); err != nil {
				return err
			}
			c.occ[t.ID]--
			c.util[t.ID] -= util
			c.mem[t.ID] += im.MemBytes
			delete(c.tile, p.ID)
			delete(c.impl, p.ID)
		}
	}
	return nil
}

// Evaluate prices an arbitrary assignment with the solver's objective
// (Manhattan-estimated communication), so heuristic and exact solutions
// are compared on identical terms.
func (s *Solver) Evaluate(app *model.Application, plat *arch.Platform, impl map[model.ProcessID]*model.Implementation, tile map[model.ProcessID]arch.TileID) float64 {
	asg := energy.Assignment{Impl: impl, Tile: tile}
	return s.Params.Evaluate(app, plat, asg).Total()
}
