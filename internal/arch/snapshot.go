package arch

// This file implements the snapshot/residual view the concurrent admission
// pipeline builds on. An online resource manager wants to run the (slow)
// spatial mapping of an arriving application without holding the platform
// lock; it therefore maps against a Snapshot — a point-in-time view of
// the platform including all reservations — and only re-acquires the lock
// for a short commit phase that re-validates the mapping against the live
// platform (optimistic concurrency). The Version counter lets the commit
// phase detect cheaply whether any admission or departure landed since the
// snapshot was taken.
//
// Snapshots come in two flavours: Platform.Snapshot deep-copies every
// tile and link (the caller owns the copy outright and may mutate it),
// while Platform.SnapshotCoW (cow.go) captures a frozen copy-on-write
// view in O(regions) — the admission hot path's default, shareable
// between any number of concurrent readers.
//
// Platform itself remains lock-free: callers that share a platform between
// goroutines (package manager) serialize Snapshot, Version and all
// reservation mutations behind their own locks. A deep Snapshot, once
// taken, is owned by the goroutine that took it; a CoW snapshot is
// immutable and may be shared.

// Snapshot is a point-in-time view of a platform's full reservation state.
type Snapshot struct {
	// Plat carries the snapshot's reservation state. For a deep snapshot
	// (Platform.Snapshot) it is a private copy the holder may freely
	// mutate; for a copy-on-write snapshot (Platform.SnapshotCoW) it is
	// frozen — derive a Writable snapshot before mutating.
	Plat *Platform
	// Version is the platform's reservation version at the time the
	// snapshot was taken.
	Version uint64
	// RegionVersions are the per-region reservation versions at the time
	// the snapshot was taken, indexed by RegionID. A commit can compare
	// just its footprint's entries against the live platform to detect
	// region-local staleness.
	RegionVersions []uint64
}

// Snapshot returns a deep copy of the platform tagged with its current
// global and per-region reservation versions. Because the copy spans
// every region in one pass, the caller must hold whatever serializes
// mutations of the whole platform — with region locks, all of them.
// SnapshotCoW is the cheaper alternative whose capture coordinates per
// region and needs no caller-held locks at all.
func (p *Platform) Snapshot() *Snapshot {
	return &Snapshot{
		Plat:           p.Clone(),
		Version:        p.version.Load(),
		RegionVersions: p.regionVersionsSnapshot(),
	}
}

// Version returns the platform's reservation version: a counter bumped on
// every committed reservation change (Apply, Remove, ResetReservations).
// The counter is atomic, so reading it needs no lock; the reservation
// state it summarises still does.
func (p *Platform) Version() uint64 { return p.version.Load() }

// BumpVersion records that the platform's reservation state changed and
// returns the new version. Package core calls it when committing or
// releasing a mapping; callers mutating reservations directly should call
// it themselves if they rely on version-based conflict detection.
func (p *Platform) BumpVersion() uint64 {
	return p.version.Add(1)
}

// TileResidual is the uncommitted capacity of one tile.
type TileResidual struct {
	Tile         TileID
	FreeMemBytes int64
	// FreeUtil is the fraction of the processing element's time still
	// unreserved, in [0, 1].
	FreeUtil   float64
	FreeInBps  int64
	FreeOutBps int64
	// FreeSlots is how many more occupants the tile accepts; -1 means
	// unlimited.
	FreeSlots int
}

// LinkResidual is the unreserved capacity of one NoC link.
type LinkResidual struct {
	Link    LinkID
	FreeBps int64
}

// Residual summarises what is left of a platform: the free capacity of
// every tile and link. It is a plain value — comparing the residual before
// and after a rejected admission, or before load and after full churn, is
// how the tests pin down that reservations never leak.
type Residual struct {
	Version uint64
	Tiles   []TileResidual
	Links   []LinkResidual
}

// Residual computes the current residual view. Like Snapshot, it must be
// called with the platform lock held when the platform is shared.
func (p *Platform) Residual() Residual {
	r := Residual{
		Version: p.version.Load(),
		Tiles:   make([]TileResidual, len(p.Tiles)),
		Links:   make([]LinkResidual, len(p.Links)),
	}
	for i, t := range p.Tiles {
		slots := -1
		if t.MaxOccupants > 0 {
			slots = t.MaxOccupants - t.Occupants
		}
		if t.Failed {
			// A failed tile has no usable capacity left, whatever its
			// ledger says; reporting it as exhausted is what makes the
			// repair engine's residual diff blame it and remap away.
			r.Tiles[i] = TileResidual{Tile: t.ID}
			continue
		}
		r.Tiles[i] = TileResidual{
			Tile:         t.ID,
			FreeMemBytes: t.FreeMem(),
			FreeUtil:     1 - t.ReservedUtil,
			FreeInBps:    t.NICapBps - t.ReservedInBps,
			FreeOutBps:   t.NICapBps - t.ReservedOutBps,
			FreeSlots:    slots,
		}
	}
	for i, l := range p.Links {
		r.Links[i] = LinkResidual{Link: l.ID, FreeBps: l.FreeBps()}
	}
	return r
}

// Equal reports whether two residual views describe the same free
// capacity. Versions are ignored: two states reached by different
// admission histories may still be resource-identical.
func (r Residual) Equal(o Residual) bool {
	if len(r.Tiles) != len(o.Tiles) || len(r.Links) != len(o.Links) {
		return false
	}
	for i := range r.Tiles {
		a, b := r.Tiles[i], o.Tiles[i]
		if a.Tile != b.Tile || a.FreeMemBytes != b.FreeMemBytes ||
			a.FreeInBps != b.FreeInBps || a.FreeOutBps != b.FreeOutBps ||
			a.FreeSlots != b.FreeSlots || !utilEqual(a.FreeUtil, b.FreeUtil) {
			return false
		}
	}
	for i := range r.Links {
		if r.Links[i] != o.Links[i] {
			return false
		}
	}
	return true
}

// TileDelta is the change in one tile's free capacity between two residual
// views: positive fields mean capacity appeared (an application left),
// negative fields mean a competing reservation consumed it.
type TileDelta struct {
	Tile         TileID
	FreeMemBytes int64
	FreeUtil     float64
	FreeInBps    int64
	FreeOutBps   int64
	// FreeSlots is the occupancy-slot delta; 0 when either side is
	// unlimited.
	FreeSlots int
}

// Shrunk reports whether the tile lost capacity in any dimension.
func (d TileDelta) Shrunk() bool {
	return d.FreeMemBytes < 0 || d.FreeUtil < -utilCmpEps ||
		d.FreeInBps < 0 || d.FreeOutBps < 0 || d.FreeSlots < 0
}

// LinkDelta is the change in one link's free bandwidth between two
// residual views.
type LinkDelta struct {
	Link    LinkID
	FreeBps int64
}

// ResidualDiff is the per-resource difference between two residual views:
// only tiles and links whose free capacity changed appear. The incremental
// remapping engine uses it to decide whether a stale mapping can be kept
// verbatim (empty diff) and, when not, which resources to blame.
type ResidualDiff struct {
	Tiles []TileDelta
	Links []LinkDelta
}

// Empty reports whether the two residual views were resource-identical.
func (d ResidualDiff) Empty() bool { return len(d.Tiles) == 0 && len(d.Links) == 0 }

// ShrunkTiles returns the IDs of tiles that lost capacity.
func (d ResidualDiff) ShrunkTiles() []TileID {
	var out []TileID
	for _, t := range d.Tiles {
		if t.Shrunk() {
			out = append(out, t.Tile)
		}
	}
	return out
}

// ShrunkLinks returns the IDs of links that lost bandwidth.
func (d ResidualDiff) ShrunkLinks() []LinkID {
	var out []LinkID
	for _, l := range d.Links {
		if l.FreeBps < 0 {
			out = append(out, l.Link)
		}
	}
	return out
}

// Regions returns the regions of p touched by the diff — the owners of
// every tile and link whose free capacity changed — sorted ascending
// without duplicates. The incremental repair engine intersects it with a
// stale mapping's region footprint: a diff confined to foreign regions
// cannot have invalidated the mapping.
func (d ResidualDiff) Regions(p *Platform) []RegionID {
	seen := make(RegionSet)
	for _, t := range d.Tiles {
		seen.Add(p.RegionOfTile(t.Tile))
	}
	for _, l := range d.Links {
		seen.Add(p.RegionOfLink(l.Link))
	}
	return seen.Sorted()
}

// Diff computes o − r per resource: what changed between this residual
// view (the older) and o (the fresher). Tiles and links are matched by
// position, as produced by Platform.Residual on the same platform; views
// of different platforms are not comparable and yield a diff marking
// every resource as changed.
func (r Residual) Diff(o Residual) ResidualDiff {
	var d ResidualDiff
	n := len(r.Tiles)
	if len(o.Tiles) < n {
		n = len(o.Tiles)
	}
	for i := 0; i < n; i++ {
		a, b := r.Tiles[i], o.Tiles[i]
		td := TileDelta{
			Tile:         a.Tile,
			FreeMemBytes: b.FreeMemBytes - a.FreeMemBytes,
			FreeUtil:     b.FreeUtil - a.FreeUtil,
			FreeInBps:    b.FreeInBps - a.FreeInBps,
			FreeOutBps:   b.FreeOutBps - a.FreeOutBps,
		}
		if a.FreeSlots >= 0 && b.FreeSlots >= 0 {
			td.FreeSlots = b.FreeSlots - a.FreeSlots
		}
		if a.Tile != b.Tile || td.FreeMemBytes != 0 || !utilEqual(a.FreeUtil, b.FreeUtil) ||
			td.FreeInBps != 0 || td.FreeOutBps != 0 || td.FreeSlots != 0 {
			d.Tiles = append(d.Tiles, td)
		}
	}
	for i := n; i < len(r.Tiles); i++ {
		d.Tiles = append(d.Tiles, TileDelta{Tile: r.Tiles[i].Tile, FreeMemBytes: -r.Tiles[i].FreeMemBytes})
	}
	for i := n; i < len(o.Tiles); i++ {
		d.Tiles = append(d.Tiles, TileDelta{Tile: o.Tiles[i].Tile, FreeMemBytes: o.Tiles[i].FreeMemBytes})
	}
	nl := len(r.Links)
	if len(o.Links) < nl {
		nl = len(o.Links)
	}
	for i := 0; i < nl; i++ {
		a, b := r.Links[i], o.Links[i]
		if a.Link != b.Link || a.FreeBps != b.FreeBps {
			d.Links = append(d.Links, LinkDelta{Link: a.Link, FreeBps: b.FreeBps - a.FreeBps})
		}
	}
	for i := nl; i < len(r.Links); i++ {
		d.Links = append(d.Links, LinkDelta{Link: r.Links[i].Link, FreeBps: -r.Links[i].FreeBps})
	}
	for i := nl; i < len(o.Links); i++ {
		d.Links = append(d.Links, LinkDelta{Link: o.Links[i].Link, FreeBps: o.Links[i].FreeBps})
	}
	return d
}

// TotalFreeMem sums the free tile-local memory over all tiles.
func (r Residual) TotalFreeMem() int64 {
	var s int64
	for _, t := range r.Tiles {
		s += t.FreeMemBytes
	}
	return s
}

// TotalFreeLinkBps sums the unreserved capacity over all links.
func (r Residual) TotalFreeLinkBps() int64 {
	var s int64
	for _, l := range r.Links {
		s += l.FreeBps
	}
	return s
}

// utilEqual compares utilisation fractions up to the accumulation noise of
// repeated float additions and subtractions.
const utilCmpEps = 1e-9

func utilEqual(a, b float64) bool {
	d := a - b
	return d < utilCmpEps && d > -utilCmpEps
}
