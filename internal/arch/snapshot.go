package arch

// This file implements the snapshot/residual view the concurrent admission
// pipeline builds on. An online resource manager wants to run the (slow)
// spatial mapping of an arriving application without holding the platform
// lock; it therefore maps against a Snapshot — a point-in-time deep copy of
// the platform including all reservations — and only re-acquires the lock
// for a short commit phase that re-validates the mapping against the live
// platform (optimistic concurrency). The Version counter lets the commit
// phase detect cheaply whether any admission or departure landed since the
// snapshot was taken.
//
// Platform itself remains lock-free: callers that share a platform between
// goroutines (package manager) serialize Snapshot, Version and all
// reservation mutations behind their own mutex. A Snapshot, once taken, is
// owned by the goroutine that took it.

// Snapshot is a point-in-time copy of a platform's full reservation state.
type Snapshot struct {
	// Plat is a deep copy of the platform (see Platform.Clone); the mapper
	// may freely mutate it without affecting the live platform.
	Plat *Platform
	// Version is the platform's reservation version at the time the
	// snapshot was taken.
	Version uint64
}

// Snapshot returns a deep copy of the platform tagged with its current
// reservation version. The caller must hold whatever lock serializes
// mutations of this platform.
func (p *Platform) Snapshot() *Snapshot {
	return &Snapshot{Plat: p.Clone(), Version: p.version}
}

// Version returns the platform's reservation version: a counter bumped on
// every committed reservation change (Apply, Remove, ResetReservations).
func (p *Platform) Version() uint64 { return p.version }

// BumpVersion records that the platform's reservation state changed and
// returns the new version. Package core calls it when committing or
// releasing a mapping; callers mutating reservations directly should call
// it themselves if they rely on version-based conflict detection.
func (p *Platform) BumpVersion() uint64 {
	p.version++
	return p.version
}

// TileResidual is the uncommitted capacity of one tile.
type TileResidual struct {
	Tile         TileID
	FreeMemBytes int64
	// FreeUtil is the fraction of the processing element's time still
	// unreserved, in [0, 1].
	FreeUtil   float64
	FreeInBps  int64
	FreeOutBps int64
	// FreeSlots is how many more occupants the tile accepts; -1 means
	// unlimited.
	FreeSlots int
}

// LinkResidual is the unreserved capacity of one NoC link.
type LinkResidual struct {
	Link    LinkID
	FreeBps int64
}

// Residual summarises what is left of a platform: the free capacity of
// every tile and link. It is a plain value — comparing the residual before
// and after a rejected admission, or before load and after full churn, is
// how the tests pin down that reservations never leak.
type Residual struct {
	Version uint64
	Tiles   []TileResidual
	Links   []LinkResidual
}

// Residual computes the current residual view. Like Snapshot, it must be
// called with the platform lock held when the platform is shared.
func (p *Platform) Residual() Residual {
	r := Residual{
		Version: p.version,
		Tiles:   make([]TileResidual, len(p.Tiles)),
		Links:   make([]LinkResidual, len(p.Links)),
	}
	for i, t := range p.Tiles {
		slots := -1
		if t.MaxOccupants > 0 {
			slots = t.MaxOccupants - t.Occupants
		}
		r.Tiles[i] = TileResidual{
			Tile:         t.ID,
			FreeMemBytes: t.FreeMem(),
			FreeUtil:     1 - t.ReservedUtil,
			FreeInBps:    t.NICapBps - t.ReservedInBps,
			FreeOutBps:   t.NICapBps - t.ReservedOutBps,
			FreeSlots:    slots,
		}
	}
	for i, l := range p.Links {
		r.Links[i] = LinkResidual{Link: l.ID, FreeBps: l.FreeBps()}
	}
	return r
}

// Equal reports whether two residual views describe the same free
// capacity. Versions are ignored: two states reached by different
// admission histories may still be resource-identical.
func (r Residual) Equal(o Residual) bool {
	if len(r.Tiles) != len(o.Tiles) || len(r.Links) != len(o.Links) {
		return false
	}
	for i := range r.Tiles {
		a, b := r.Tiles[i], o.Tiles[i]
		if a.Tile != b.Tile || a.FreeMemBytes != b.FreeMemBytes ||
			a.FreeInBps != b.FreeInBps || a.FreeOutBps != b.FreeOutBps ||
			a.FreeSlots != b.FreeSlots || !utilEqual(a.FreeUtil, b.FreeUtil) {
			return false
		}
	}
	for i := range r.Links {
		if r.Links[i] != o.Links[i] {
			return false
		}
	}
	return true
}

// TotalFreeMem sums the free tile-local memory over all tiles.
func (r Residual) TotalFreeMem() int64 {
	var s int64
	for _, t := range r.Tiles {
		s += t.FreeMemBytes
	}
	return s
}

// TotalFreeLinkBps sums the unreserved capacity over all links.
func (r Residual) TotalFreeLinkBps() int64 {
	var s int64
	for _, l := range r.Links {
		s += l.FreeBps
	}
	return s
}

// utilEqual compares utilisation fractions up to the accumulation noise of
// repeated float additions and subtractions.
const utilCmpEps = 1e-9

func utilEqual(a, b float64) bool {
	d := a - b
	return d < utilCmpEps && d > -utilCmpEps
}
