package arch

import "testing"

func snapPlatform() *Platform {
	p := NewMesh("snap", 2, 2, 1000)
	p.AttachTile(TileSpec{Name: "arm0", Type: TypeARM, At: Pt(0, 0), ClockHz: 100_000_000, MemBytes: 4096, NICapBps: 500})
	p.AttachTile(TileSpec{Name: "mont0", Type: TypeMontium, At: Pt(1, 1), ClockHz: 100_000_000, MemBytes: 2048, NICapBps: 500, MaxOccupants: 1})
	return p
}

func TestSnapshotIsolatesMutations(t *testing.T) {
	p := snapPlatform()
	s := p.Snapshot()
	if s.Version != p.Version() {
		t.Fatalf("snapshot version %d, platform %d", s.Version, p.Version())
	}
	// Mutating the snapshot must not touch the live platform.
	s.Plat.Tiles[0].ReservedMem = 1234
	s.Plat.Links[0].ReservedBps = 999
	if p.Tiles[0].ReservedMem != 0 || p.Links[0].ReservedBps != 0 {
		t.Fatal("snapshot mutation leaked into live platform")
	}
	// And vice versa.
	p.Tiles[1].Occupants = 1
	if s.Plat.Tiles[1].Occupants != 0 {
		t.Fatal("live mutation leaked into snapshot")
	}
}

func TestVersionTracksReservationChanges(t *testing.T) {
	p := snapPlatform()
	v0 := p.Version()
	if got := p.BumpVersion(); got != v0+1 {
		t.Fatalf("BumpVersion = %d, want %d", got, v0+1)
	}
	p.ResetReservations()
	if p.Version() != v0+2 {
		t.Fatalf("ResetReservations did not bump version: %d", p.Version())
	}
	// Clone carries the version so a snapshot taken from a clone still
	// compares meaningfully against the original.
	if c := p.Clone(); c.Version() != p.Version() {
		t.Fatal("clone dropped version")
	}
}

func TestResidualReflectsReservations(t *testing.T) {
	p := snapPlatform()
	before := p.Residual()
	if before.Tiles[0].FreeMemBytes != 4096 || before.Tiles[0].FreeSlots != -1 {
		t.Fatalf("fresh residual wrong: %+v", before.Tiles[0])
	}
	if before.Tiles[1].FreeSlots != 1 {
		t.Fatalf("MaxOccupants=1 tile should have 1 free slot: %+v", before.Tiles[1])
	}
	totalMem := before.TotalFreeMem()
	totalBps := before.TotalFreeLinkBps()

	p.Tiles[0].ReservedMem = 1024
	p.Tiles[0].ReservedUtil = 0.25
	p.Tiles[1].Occupants = 1
	p.Links[2].ReservedBps = 400
	after := p.Residual()
	if after.Tiles[0].FreeMemBytes != 3072 || !utilEqual(after.Tiles[0].FreeUtil, 0.75) {
		t.Fatalf("tile residual wrong: %+v", after.Tiles[0])
	}
	if after.Tiles[1].FreeSlots != 0 {
		t.Fatalf("occupied Montium should have 0 free slots: %+v", after.Tiles[1])
	}
	if after.Links[2].FreeBps != 600 {
		t.Fatalf("link residual wrong: %+v", after.Links[2])
	}
	if after.TotalFreeMem() != totalMem-1024 || after.TotalFreeLinkBps() != totalBps-400 {
		t.Fatal("aggregate residuals wrong")
	}
	if before.Equal(after) {
		t.Fatal("Equal missed a reservation difference")
	}

	// Releasing everything restores equality with the fresh residual,
	// regardless of the version counter.
	p.ResetReservations()
	if got := p.Residual(); !got.Equal(before) {
		t.Fatalf("residual not restored after reset: %+v", got)
	}
}

func TestResidualDiffAttributesChanges(t *testing.T) {
	p := snapPlatform()
	before := p.Residual()
	if d := before.Diff(before); !d.Empty() {
		t.Fatalf("self-diff not empty: %+v", d)
	}

	p.Tiles[0].ReservedMem = 1024
	p.Tiles[0].ReservedUtil = 0.25
	p.Tiles[1].Occupants = 1
	p.Links[2].ReservedBps = 400
	after := p.Residual()

	d := before.Diff(after)
	if d.Empty() {
		t.Fatal("diff missed reservations")
	}
	if len(d.Tiles) != 2 || len(d.Links) != 1 {
		t.Fatalf("diff should name exactly the changed resources: %+v", d)
	}
	if d.Tiles[0].Tile != before.Tiles[0].Tile || d.Tiles[0].FreeMemBytes != -1024 || !utilEqual(d.Tiles[0].FreeUtil, -0.25) {
		t.Fatalf("tile 0 delta wrong: %+v", d.Tiles[0])
	}
	if d.Tiles[1].FreeSlots != -1 {
		t.Fatalf("tile 1 slot delta wrong: %+v", d.Tiles[1])
	}
	if d.Links[0].Link != after.Links[2].Link || d.Links[0].FreeBps != -400 {
		t.Fatalf("link delta wrong: %+v", d.Links[0])
	}
	if st := d.ShrunkTiles(); len(st) != 2 {
		t.Fatalf("ShrunkTiles = %v", st)
	}
	if sl := d.ShrunkLinks(); len(sl) != 1 || sl[0] != after.Links[2].Link {
		t.Fatalf("ShrunkLinks = %v", sl)
	}

	// The reverse diff reports capacity appearing, which is not shrinkage.
	rd := after.Diff(before)
	if rd.Empty() || len(rd.ShrunkTiles()) != 0 || len(rd.ShrunkLinks()) != 0 {
		t.Fatalf("reverse diff should grow, not shrink: %+v", rd)
	}
}
