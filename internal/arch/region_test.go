package arch

import (
	"sync"
	"testing"
)

// TestPartitionSingleRegionDefault pins the degenerate case: an
// unpartitioned platform is one region covering the whole mesh, and every
// tile and link belongs to it.
func TestPartitionSingleRegionDefault(t *testing.T) {
	p := NewMesh("m", 4, 3, 1000)
	p.AttachTile(TileSpec{Name: "t", Type: TypeARM, At: Pt(2, 1), ClockHz: 1, MemBytes: 1})
	if got := p.RegionCount(); got != 1 {
		t.Fatalf("unpartitioned RegionCount = %d, want 1", got)
	}
	r := p.Region(0)
	if r.X0 != 0 || r.Y0 != 0 || r.X1 != 3 || r.Y1 != 2 {
		t.Fatalf("single region bounds = %+v, want the whole 4×3 mesh", r)
	}
	if got := p.RegionOfTile(0); got != 0 {
		t.Fatalf("RegionOfTile = %d, want 0", got)
	}
	for _, l := range p.Links {
		if got := p.RegionOfLink(l.ID); got != 0 {
			t.Fatalf("RegionOfLink(%d) = %d, want 0", l.ID, got)
		}
	}
}

// TestPartitionOneByOneMesh checks the smallest platform: a 1×1 mesh
// partitions into exactly one region for every region size.
func TestPartitionOneByOneMesh(t *testing.T) {
	p := NewMesh("tiny", 1, 1, 1000)
	for _, size := range []int{0, 1, 2, 8} {
		if got := p.PartitionRegions(size); got != 1 {
			t.Fatalf("PartitionRegions(%d) on 1×1 mesh = %d regions, want 1", size, got)
		}
		if got := p.RegionOfPoint(Pt(0, 0)); got != 0 {
			t.Fatalf("RegionOfPoint = %d, want 0", got)
		}
	}
}

// TestPartitionLargerThanMesh checks that a region size exceeding both
// mesh dimensions collapses to the single-region degenerate case.
func TestPartitionLargerThanMesh(t *testing.T) {
	p := NewMesh("m", 3, 2, 1000)
	if got := p.PartitionRegions(5); got != 1 {
		t.Fatalf("PartitionRegions(5) on 3×2 mesh = %d regions, want 1", got)
	}
	if p.Region(0).X1 != 2 || p.Region(0).Y1 != 1 {
		t.Fatalf("degenerate region bounds = %+v", p.Region(0))
	}
}

// TestPartitionGeometry checks the 8×8 / size-4 quadrant partition: four
// regions, row-major, with every router owned by the quadrant containing
// it and boundary-crossing links owned by their source router's region.
func TestPartitionGeometry(t *testing.T) {
	p := NewMesh("m", 8, 8, 1000)
	if got := p.PartitionRegions(4); got != 4 {
		t.Fatalf("PartitionRegions(4) on 8×8 = %d regions, want 4", got)
	}
	cases := []struct {
		pt   Point
		want RegionID
	}{
		{Pt(0, 0), 0}, {Pt(3, 3), 0}, {Pt(4, 0), 1}, {Pt(7, 3), 1},
		{Pt(0, 4), 2}, {Pt(3, 7), 2}, {Pt(4, 4), 3}, {Pt(7, 7), 3},
	}
	for _, c := range cases {
		if got := p.RegionOfPoint(c.pt); got != c.want {
			t.Errorf("RegionOfPoint(%v) = %d, want %d", c.pt, got, c.want)
		}
	}
	// A link crossing the vertical boundary from (3,0) to (4,0) belongs
	// to region 0 (its source); the reverse link to region 1.
	a := p.RouterAt(Pt(3, 0)).ID
	b := p.RouterAt(Pt(4, 0)).ID
	east := p.LinkBetween(a, b)
	west := p.LinkBetween(b, a)
	if east == nil || west == nil {
		t.Fatal("expected boundary links in both directions")
	}
	if got := p.RegionOfLink(east.ID); got != 0 {
		t.Errorf("eastward boundary link region = %d, want 0", got)
	}
	if got := p.RegionOfLink(west.ID); got != 1 {
		t.Errorf("westward boundary link region = %d, want 1", got)
	}
	// Clipped partitions: 5×5 with size 3 → 2×2 regions, the right and
	// bottom ones clipped.
	q := NewMesh("m2", 5, 5, 1000)
	if got := q.PartitionRegions(3); got != 4 {
		t.Fatalf("PartitionRegions(3) on 5×5 = %d regions, want 4", got)
	}
	if r := q.Region(3); r.X0 != 3 || r.Y0 != 3 || r.X1 != 4 || r.Y1 != 4 {
		t.Fatalf("clipped region 3 bounds = %+v, want (3,3)-(4,4)", r)
	}
}

// TestRegionVersionsIndependent checks that BumpRegion advances only the
// bumped region's version and that snapshots carry the whole vector.
func TestRegionVersionsIndependent(t *testing.T) {
	p := NewMesh("m", 4, 4, 1000)
	p.PartitionRegions(2)
	p.BumpRegion(1)
	p.BumpRegion(1)
	p.BumpRegion(3)
	want := []uint64{0, 2, 0, 1}
	for r, w := range want {
		if got := p.RegionVersion(RegionID(r)); got != w {
			t.Errorf("RegionVersion(%d) = %d, want %d", r, got, w)
		}
	}
	snap := p.Snapshot()
	for r, w := range want {
		if snap.RegionVersions[r] != w {
			t.Errorf("snapshot RegionVersions[%d] = %d, want %d", r, snap.RegionVersions[r], w)
		}
	}
	// The snapshot's vector is a copy, not an alias.
	p.BumpRegion(0)
	if snap.RegionVersions[0] != 0 {
		t.Error("snapshot region versions aliased the live platform")
	}
	// Clone carries the partition and the version vector.
	c := p.Clone()
	if c.RegionCount() != 4 || c.RegionVersion(1) != 2 {
		t.Errorf("clone partition/versions not carried: count=%d v1=%d", c.RegionCount(), c.RegionVersion(1))
	}
	// ResetReservations touches every region.
	pre := make([]uint64, 4)
	for r := range pre {
		pre[r] = p.RegionVersion(RegionID(r))
	}
	p.ResetReservations()
	for r := 0; r < 4; r++ {
		if now := p.RegionVersion(RegionID(r)); now != pre[r]+1 {
			t.Errorf("ResetReservations bumped region %d to %d, want %d", r, now, pre[r]+1)
		}
	}
}

// TestResidualDiffRegions checks that a diff names exactly the regions of
// the changed resources.
func TestResidualDiffRegions(t *testing.T) {
	p := NewMesh("m", 4, 4, 1000)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			p.AttachTile(TileSpec{Name: Pt(x, y).String(), Type: TypeARM, At: Pt(x, y),
				ClockHz: 1, MemBytes: 100})
		}
	}
	p.PartitionRegions(2)
	before := p.Residual()
	// Consume memory on a region-3 tile and bandwidth on a region-0 link.
	p.TileByName(Pt(3, 3).String()).ReservedMem = 10
	p.Links[0].ReservedBps = 5
	diff := before.Diff(p.Residual())
	regions := diff.Regions(p)
	if len(regions) != 2 || regions[0] != 0 || regions[1] != 3 {
		t.Fatalf("diff regions = %v, want [0 3]", regions)
	}
}

// TestRegionLocksOrdering hammers overlapping footprints from many
// goroutines. Footprints are acquired in canonical ascending order, so
// straddling lock sets must neither deadlock nor race; the shared
// counters would trip -race if mutual exclusion failed.
func TestRegionLocksOrdering(t *testing.T) {
	const regions = 4
	l := NewRegionLocks(regions)
	counters := make([]int, regions)
	// Deliberately unsorted, duplicated, straddling footprints.
	footprints := [][]RegionID{
		{0}, {3, 0}, {1, 2}, {2, 1, 2}, {3}, {0, 1, 2, 3}, {2, 0}, {3, 1},
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				fp := footprints[(w+i)%len(footprints)]
				l.Lock(fp)
				seen := make(map[RegionID]bool)
				for _, r := range fp {
					if !seen[r] {
						seen[r] = true
						counters[r]++
					}
				}
				l.Unlock(fp)
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, c := range counters {
		total += c
	}
	want := 0
	for w := 0; w < 8; w++ {
		for i := 0; i < 500; i++ {
			fp := footprints[(w+i)%len(footprints)]
			seen := make(map[RegionID]bool)
			for _, r := range fp {
				seen[r] = true
			}
			want += len(seen)
		}
	}
	if total != want {
		t.Fatalf("lost increments under contention: got %d, want %d", total, want)
	}
}
