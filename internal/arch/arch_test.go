package arch

import (
	"strings"
	"testing"
	"testing/quick"
)

func mesh3x3(t *testing.T) *Platform {
	t.Helper()
	p := NewMesh("test", 3, 3, 1_000_000_000)
	p.AttachTile(TileSpec{Name: "ARM1", Type: TypeARM, At: Point{2, 1}, ClockHz: 200e6, MemBytes: 64 << 10, NICapBps: 1e9})
	p.AttachTile(TileSpec{Name: "ARM2", Type: TypeARM, At: Point{1, 1}, ClockHz: 200e6, MemBytes: 64 << 10, NICapBps: 1e9})
	p.AttachTile(TileSpec{Name: "M1", Type: TypeMontium, At: Point{0, 0}, ClockHz: 100e6, MemBytes: 16 << 10, NICapBps: 1e9})
	p.AttachTile(TileSpec{Name: "M2", Type: TypeMontium, At: Point{2, 0}, ClockHz: 100e6, MemBytes: 16 << 10, NICapBps: 1e9})
	return p
}

func TestMeshConstruction(t *testing.T) {
	p := NewMesh("m", 3, 2, 100)
	if len(p.Routers) != 6 {
		t.Fatalf("routers = %d, want 6", len(p.Routers))
	}
	// 3×2 mesh: horizontal 2 per row × 2 rows = 4, vertical 3; ×2 directions.
	if len(p.Links) != 14 {
		t.Fatalf("links = %d, want 14", len(p.Links))
	}
	for _, r := range p.Routers {
		if r.LatencyCycles != 4 {
			t.Errorf("router %d latency = %d, want 4 (paper §4.3)", r.ID, r.LatencyCycles)
		}
	}
	if p.RouterAt(Point{2, 1}).Pos != (Point{2, 1}) {
		t.Error("RouterAt returned wrong router")
	}
}

func TestMeshLinkSymmetry(t *testing.T) {
	p := NewMesh("m", 4, 4, 100)
	for _, l := range p.Links {
		back := p.LinkBetween(l.To, l.From)
		if back == nil {
			t.Fatalf("link %d has no reverse", l.ID)
		}
		if back.CapBps != l.CapBps {
			t.Errorf("asymmetric capacity on %d", l.ID)
		}
	}
}

func TestAttachAndLookup(t *testing.T) {
	p := mesh3x3(t)
	if got := p.TileByName("ARM2"); got == nil || got.Type != TypeARM {
		t.Fatalf("TileByName(ARM2) = %v", got)
	}
	if p.TileByName("nope") != nil {
		t.Error("unknown tile should be nil")
	}
	arms := p.TilesOfType(TypeARM)
	if len(arms) != 2 || arms[0].Name != "ARM1" {
		t.Errorf("TilesOfType(ARM) = %v; declaration order must be preserved", arms)
	}
	types := p.TileTypes()
	if len(types) != 2 || types[0] != TypeARM || types[1] != TypeMontium {
		t.Errorf("TileTypes = %v", types)
	}
	at := p.TilesAtRouter(p.RouterAt(Point{0, 0}).ID)
	if len(at) != 1 || p.Tile(at[0]).Name != "M1" {
		t.Errorf("TilesAtRouter(0,0) = %v", at)
	}
}

func TestManhattan(t *testing.T) {
	p := mesh3x3(t)
	a1 := p.TileByName("ARM1").ID // (2,1)
	m1 := p.TileByName("M1").ID   // (0,0)
	if got := p.Manhattan(a1, m1); got != 3 {
		t.Errorf("Manhattan(ARM1,M1) = %d, want 3", got)
	}
	if got := p.Manhattan(a1, a1); got != 0 {
		t.Errorf("self distance = %d", got)
	}
}

func TestManhattanProperties(t *testing.T) {
	// Symmetry and triangle inequality on arbitrary points.
	sym := func(ax, ay, bx, by int8) bool {
		a := Point{int(ax), int(ay)}
		b := Point{int(bx), int(by)}
		return a.Manhattan(b) == b.Manhattan(a)
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Error(err)
	}
	tri := func(ax, ay, bx, by, cx, cy int8) bool {
		a := Point{int(ax), int(ay)}
		b := Point{int(bx), int(by)}
		c := Point{int(cx), int(cy)}
		return a.Manhattan(c) <= a.Manhattan(b)+b.Manhattan(c)
	}
	if err := quick.Check(tri, nil); err != nil {
		t.Error(err)
	}
}

func TestCycleBudget(t *testing.T) {
	p := mesh3x3(t)
	arm := p.TileByName("ARM1") // 200 MHz
	// 4 µs symbol period at 200 MHz = 800 cycles.
	if got := arm.CycleBudget(4000); got != 800 {
		t.Errorf("CycleBudget(4µs) = %d, want 800", got)
	}
}

func TestReservationsAndReset(t *testing.T) {
	p := mesh3x3(t)
	tl := p.TileByName("M1")
	tl.ReservedMem = 1000
	tl.Occupants = 1
	p.Links[0].ReservedBps = 500
	if tl.FreeMem() != (16<<10)-1000 {
		t.Errorf("FreeMem = %d", tl.FreeMem())
	}
	if p.Links[0].FreeBps() != 1_000_000_000-500 {
		t.Errorf("FreeBps = %d", p.Links[0].FreeBps())
	}
	p.ResetReservations()
	if tl.ReservedMem != 0 || tl.Occupants != 0 || p.Links[0].ReservedBps != 0 {
		t.Error("ResetReservations left state behind")
	}
}

func TestCloneIsolation(t *testing.T) {
	p := mesh3x3(t)
	q := p.Clone()
	q.TileByName("ARM1").ReservedMem = 999
	q.Links[3].ReservedBps = 77
	if p.TileByName("ARM1").ReservedMem != 0 {
		t.Error("clone shares tile state")
	}
	if p.Links[3].ReservedBps != 0 {
		t.Error("clone shares link state")
	}
}

func TestLinkAdjacency(t *testing.T) {
	p := NewMesh("m", 3, 3, 100)
	center := p.RouterAt(Point{1, 1}).ID
	if got := len(p.OutLinks(center)); got != 4 {
		t.Errorf("center out-degree = %d, want 4", got)
	}
	corner := p.RouterAt(Point{0, 0}).ID
	if got := len(p.InLinks(corner)); got != 2 {
		t.Errorf("corner in-degree = %d, want 2", got)
	}
	for _, id := range p.OutLinks(center) {
		if p.Link(id).From != center {
			t.Error("OutLinks contains link not leaving the router")
		}
	}
}

func TestPlatformString(t *testing.T) {
	p := mesh3x3(t)
	s := p.String()
	for _, want := range []string{"3×3 mesh", "R[M1]", "R[ARM1]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
}

func TestDuplicateTilePanics(t *testing.T) {
	p := NewMesh("m", 2, 2, 100)
	p.AttachTile(TileSpec{Name: "t", Type: TypeARM, At: Point{0, 0}})
	defer func() {
		if recover() == nil {
			t.Error("duplicate tile name did not panic")
		}
	}()
	p.AttachTile(TileSpec{Name: "t", Type: TypeARM, At: Point{1, 0}})
}
