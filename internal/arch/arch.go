// Package arch models the heterogeneous tiled MPSoC the spatial mapper
// targets: processing tiles of different types, each attached through a
// network interface to a router of a mesh Network-on-Chip whose links
// provide guaranteed-throughput lanes (Hölzenspies et al., DATE 2008, §1.1
// and §4.3).
//
// The package is purely a platform description plus resource accounting.
// Routing algorithms live in package noc; the mapping policy lives in
// package core.
package arch

import "fmt"

// TileType identifies a kind of processing element. The paper's case study
// uses ARM cores and Montium coarse-grain reconfigurable cores, plus an A/D
// converter source and a sink; users may define arbitrary further types.
type TileType string

// Tile types used throughout the reproduction. These are ordinary values
// of TileType, not an exhaustive enumeration.
const (
	TypeARM     TileType = "ARM"
	TypeMontium TileType = "MONTIUM"
	TypeDSP     TileType = "DSP"
	TypeSource  TileType = "SRC"
	TypeSink    TileType = "SINK"
	TypeNone    TileType = "NONE" // filler tile with no processing element
)

// TileID indexes a tile within its Platform.
type TileID int

// RouterID indexes a router within its Platform's NoC.
type RouterID int

// NoTile is returned by lookups that found no tile.
const NoTile TileID = -1

// Point is a router coordinate in the mesh, x growing rightwards and y
// growing downwards (row 0 is the top row, matching Figure 2 of the paper).
type Point struct {
	X, Y int
}

// Pt is shorthand for Point{X: x, Y: y}.
func Pt(x, y int) Point { return Point{X: x, Y: y} }

// Manhattan returns the L1 distance between two points. The spatial
// mapper's step 2 uses it to estimate communication cost before concrete
// routes exist (paper §3, step 2).
func (p Point) Manhattan(q Point) int {
	return abs(p.X-q.X) + abs(p.Y-q.Y)
}

// String renders the point as "(x,y)".
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Tile is one processing element plus its network interface.
type Tile struct {
	ID   TileID
	Name string
	Type TileType
	// Router is the mesh router the tile's network interface attaches to.
	Router RouterID
	// ClockHz is the processing element's clock frequency. Worst-case
	// execution times of implementations are expressed in clock cycles of
	// the tile they run on.
	ClockHz int64
	// MemBytes is the tile-local data memory available to mapped
	// implementations and stream buffers.
	MemBytes int64
	// NICapBps is the aggregate bandwidth of the tile's network interface
	// in each direction.
	NICapBps int64
	// MaxOccupants caps how many processes the tile can serve at once;
	// 0 means unlimited. Coarse-grain reconfigurable tiles like the
	// Montium hold a single kernel configuration, so they use 1 — this is
	// what makes "both MONTIUMs are occupied" (paper §4.4) exclude all
	// further Montium implementations.
	MaxOccupants int

	// Reserved resources. The mapper reserves resources as it commits
	// decisions and releases them when refinement rolls decisions back.
	ReservedMem    int64
	ReservedInBps  int64 // inbound NI bandwidth in use
	ReservedOutBps int64 // outbound NI bandwidth in use
	// ReservedUtil is the fraction of the processing element's time
	// already committed to mapped implementations, in [0, 1]. Expressing
	// the reservation as a fraction (rather than cycles per period) lets
	// applications with different periods share a tile consistently.
	ReservedUtil float64
	// Occupants counts processes currently assigned to the tile.
	Occupants int
	// Failed marks the tile as faulted at run time. A failed tile offers
	// no free capacity (Residual reports it as exhausted and the mapper's
	// step 1 skips it) but keeps its reservation ledger intact, so the
	// residents being evacuated can still release what they hold.
	Failed bool
}

// CycleBudget returns the number of clock cycles available on the tile per
// period of the given duration in nanoseconds.
func (t *Tile) CycleBudget(periodNs int64) int64 {
	return cycleBudget(t.ClockHz, periodNs)
}

func cycleBudget(clockHz, periodNs int64) int64 {
	// cycles = periodNs * ClockHz / 1e9, computed to avoid overflow for
	// realistic clocks (<= ~10 GHz) and periods (<= seconds).
	return periodNs * (clockHz / 1_000_000) / 1_000 // (ns * MHz) / 1000
}

// FreeMem returns the unreserved tile-local memory.
func (t *Tile) FreeMem() int64 { return t.MemBytes - t.ReservedMem }

// Router is one switching element of the mesh NoC.
type Router struct {
	ID  RouterID
	Pos Point
	// LatencyCycles is the worst-case traversal latency of the router.
	// The paper's NoC has buffered inputs with round-robin output
	// arbitration, bounding latency at 4 cycles (§4.3).
	LatencyCycles int64
}

// LinkID indexes a directed link within a Platform.
type LinkID int

// Link is a directed NoC connection between two routers. Bidirectional
// physical links are modelled as two Links. Guaranteed-throughput lanes are
// modelled by capacity reservation: ReservedBps of CapBps is committed to
// already-routed channels.
type Link struct {
	ID          LinkID
	From, To    RouterID
	CapBps      int64
	ReservedBps int64
	// Failed marks the link as faulted at run time. A failed link offers
	// no free capacity — FreeBps reports 0, which keeps it out of every
	// routing and validation path — while ReservedBps stays intact so
	// evacuating residents release exactly what they reserved.
	Failed bool
}

// FreeBps returns the link's unreserved capacity; a failed link has none.
func (l *Link) FreeBps() int64 {
	if l.Failed {
		return 0
	}
	return l.CapBps - l.ReservedBps
}
