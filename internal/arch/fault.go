package arch

import "fmt"

// This file is the runtime fault model. A production deployment of the
// paper's run-time spatial mapper must survive tiles and links dying under
// load: marking a resource failed zeroes its free capacity (so every
// mapping, routing and validation path steers around it) while leaving its
// reservation ledger intact (so the residents being evacuated can still
// release exactly what they reserved). Failure is a region-versioned
// reservation change — in-flight optimistic admissions whose snapshot
// predates the fault re-validate against the failed resource and retry,
// exactly as they would against a competing commit.
//
// All four mutators require the same serialization as any reservation
// write: the resource's region lock when the platform is shared between
// goroutines. They are copy-on-write correct (WTile/WLink fault the region
// in first), so outstanding snapshots keep the pre-fault state.

// FailTile marks a tile failed and records the change in the tile's region
// version and the global version. Idempotent: failing a failed tile
// reports false and bumps nothing. The caller must hold the tile's region
// lock when the platform is shared.
func (p *Platform) FailTile(id TileID) bool {
	t := p.WTile(id)
	if t.Failed {
		return false
	}
	t.Failed = true
	p.BumpRegion(p.RegionOfTile(id))
	p.BumpVersion()
	return true
}

// FailLink marks a link failed, with the same versioning, idempotence and
// locking contract as FailTile.
func (p *Platform) FailLink(id LinkID) bool {
	l := p.WLink(id)
	if l.Failed {
		return false
	}
	l.Failed = true
	p.BumpRegion(p.RegionOfLink(id))
	p.BumpVersion()
	return true
}

// RestoreTile clears a tile's failed flag (a repaired or hot-swapped
// tile rejoining the platform), bumping the same versions as FailTile.
// Idempotent; same locking contract.
func (p *Platform) RestoreTile(id TileID) bool {
	t := p.WTile(id)
	if !t.Failed {
		return false
	}
	t.Failed = false
	p.BumpRegion(p.RegionOfTile(id))
	p.BumpVersion()
	return true
}

// RestoreLink clears a link's failed flag; see RestoreTile.
func (p *Platform) RestoreLink(id LinkID) bool {
	l := p.WLink(id)
	if !l.Failed {
		return false
	}
	l.Failed = false
	p.BumpRegion(p.RegionOfLink(id))
	p.BumpVersion()
	return true
}

// FailedTiles returns the IDs of currently failed tiles, ascending.
func (p *Platform) FailedTiles() []TileID {
	var out []TileID
	for _, t := range p.Tiles {
		if t.Failed {
			out = append(out, t.ID)
		}
	}
	return out
}

// FailedLinks returns the IDs of currently failed links, ascending.
func (p *Platform) FailedLinks() []LinkID {
	var out []LinkID
	for _, l := range p.Links {
		if l.Failed {
			out = append(out, l.ID)
		}
	}
	return out
}

// PlatformsIdentical compares the complete reservation state of two
// platforms struct by struct — every tile field (reservations, occupancy,
// failure flag) and every link field must match exactly, bit for bit for
// the float64 utilisation. Version counters are deliberately not compared:
// two histories that reach the same resource state may disagree on how
// many aborted commits bumped the counters along the way. The crash-replay
// equivalence suite is built on this: a journal replay must land on a
// platform for which PlatformsIdentical returns nil against the live one.
func PlatformsIdentical(a, b *Platform) error {
	if len(a.Tiles) != len(b.Tiles) || len(a.Links) != len(b.Links) {
		return fmt.Errorf("shape differs: %d/%d tiles, %d/%d links",
			len(a.Tiles), len(b.Tiles), len(a.Links), len(b.Links))
	}
	for i := range a.Tiles {
		if *a.Tiles[i] != *b.Tiles[i] {
			return fmt.Errorf("tile %d differs: %+v vs %+v", i, *a.Tiles[i], *b.Tiles[i])
		}
	}
	for i := range a.Links {
		if *a.Links[i] != *b.Links[i] {
			return fmt.Errorf("link %d differs: %+v vs %+v", i, *a.Links[i], *b.Links[i])
		}
	}
	return nil
}
