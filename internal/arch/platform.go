package arch

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Platform is a complete MPSoC description: tiles, routers and links. The
// zero value is unusable; construct platforms with NewMesh and AttachTile,
// or with a workload generator.
type Platform struct {
	Name   string
	Width  int
	Height int
	// NoCClockHz is the clock of the routers; together with the 4-cycle
	// router latency it sets per-hop forwarding delay.
	NoCClockHz int64
	Tiles      []*Tile
	Routers    []*Router
	Links      []*Link

	out    [][]LinkID        // router -> outgoing link IDs
	in     [][]LinkID        // router -> incoming link IDs
	byName map[string]TileID // tile name -> id
	atRtr  map[RouterID][]TileID

	// Immutable static description, indexed by tile/link ID and shared by
	// all clones. The lock-free plan path (core.NewPlan) reads topology
	// and clocks through these instead of the Tiles/Links slices, whose
	// elements copy-on-write faults swap under region locks — a lock-free
	// read of the same element would race.
	tileRouters []RouterID
	tileClocks  []int64
	linkFroms   []RouterID

	// version counts committed reservation changes across the whole
	// platform; see Snapshot. It is atomic so commits holding disjoint
	// region locks can bump it without sharing a lock.
	version atomic.Uint64
	// grid is the region partition (nil = one region covering the mesh);
	// regionVersions holds one reservation version per region, mutated
	// only under the owning region's lock. See region.go.
	grid           *regionGrid
	regionVersions []uint64

	// Copy-on-write state (see cow.go). shared[r] marks region r's tile
	// and link structs as possibly referenced by another platform — the
	// first write must copy the region; it is toggled under the same
	// serialization as the region's reservation state. frozen marks an
	// immutable snapshot base. tilesByRegion/linksByRegion index the
	// resources per region (immutable once the platform is shared) so a
	// fault copies exactly one region. cowFaults, when set, counts faults
	// across the platform and everything derived from it.
	shared        []bool
	frozen        bool
	cowChild      bool
	tilesByRegion [][]TileID
	linksByRegion [][]LinkID
	cowFaults     *atomic.Uint64
}

// NewMesh creates a w×h mesh of routers with bidirectional links of the
// given capacity between horizontal and vertical neighbours. Routers get
// the paper's 4-cycle worst-case latency. No tiles are attached yet.
func NewMesh(name string, w, h int, linkCapBps int64) *Platform {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("arch: invalid mesh dimensions %d×%d", w, h))
	}
	p := &Platform{
		Name:           name,
		Width:          w,
		Height:         h,
		NoCClockHz:     200_000_000,
		byName:         make(map[string]TileID),
		atRtr:          make(map[RouterID][]TileID),
		regionVersions: []uint64{0},
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			id := RouterID(len(p.Routers))
			p.Routers = append(p.Routers, &Router{ID: id, Pos: Point{x, y}, LatencyCycles: 4})
		}
	}
	p.out = make([][]LinkID, len(p.Routers))
	p.in = make([][]LinkID, len(p.Routers))
	link := func(a, b RouterID) {
		id := LinkID(len(p.Links))
		p.Links = append(p.Links, &Link{ID: id, From: a, To: b, CapBps: linkCapBps})
		p.linkFroms = append(p.linkFroms, a)
		p.out[a] = append(p.out[a], id)
		p.in[b] = append(p.in[b], id)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r := p.RouterAt(Point{x, y}).ID
			if x+1 < w {
				r2 := p.RouterAt(Point{x + 1, y}).ID
				link(r, r2)
				link(r2, r)
			}
			if y+1 < h {
				r2 := p.RouterAt(Point{x, y + 1}).ID
				link(r, r2)
				link(r2, r)
			}
		}
	}
	p.ensureCoWState()
	return p
}

// RouterAt returns the router at the given mesh coordinate.
func (p *Platform) RouterAt(pt Point) *Router {
	if pt.X < 0 || pt.X >= p.Width || pt.Y < 0 || pt.Y >= p.Height {
		panic(fmt.Sprintf("arch: router coordinate %v outside %d×%d mesh", pt, p.Width, p.Height))
	}
	return p.Routers[pt.Y*p.Width+pt.X]
}

// TileSpec carries the static parameters of a tile to attach.
type TileSpec struct {
	Name         string
	Type         TileType
	At           Point // router coordinate the tile attaches to
	ClockHz      int64
	MemBytes     int64
	NICapBps     int64
	MaxOccupants int // 0 = unlimited
}

// AttachTile adds a tile to the platform. Tile IDs are assigned in call
// order; the spatial mapper's first-fit packing visits tiles in this order,
// so declaration order encodes the paper's "first tile we come across".
func (p *Platform) AttachTile(s TileSpec) *Tile {
	if s.Name == "" {
		panic("arch: tile must have a name")
	}
	if _, dup := p.byName[s.Name]; dup {
		panic(fmt.Sprintf("arch: duplicate tile name %q", s.Name))
	}
	r := p.RouterAt(s.At)
	t := &Tile{
		ID:           TileID(len(p.Tiles)),
		Name:         s.Name,
		Type:         s.Type,
		Router:       r.ID,
		ClockHz:      s.ClockHz,
		MemBytes:     s.MemBytes,
		NICapBps:     s.NICapBps,
		MaxOccupants: s.MaxOccupants,
	}
	p.Tiles = append(p.Tiles, t)
	p.byName[s.Name] = t.ID
	p.atRtr[r.ID] = append(p.atRtr[r.ID], t.ID)
	p.tileRouters = append(p.tileRouters, r.ID)
	p.tileClocks = append(p.tileClocks, s.ClockHz)
	if reg := p.RegionOfRouter(r.ID); int(reg) < len(p.tilesByRegion) {
		p.tilesByRegion[reg] = append(p.tilesByRegion[reg], t.ID)
	}
	return t
}

// TileCycleBudget returns tile id's cycle budget per period, computed
// from the platform's immutable static description. The lock-free plan
// aggregation (core.NewPlan) uses it so planning never touches the
// tile's reservation struct, whose pointer copy-on-write faults may be
// swapping concurrently.
func (p *Platform) TileCycleBudget(id TileID, periodNs int64) int64 {
	if id < 0 || int(id) >= len(p.tileClocks) {
		panic(fmt.Sprintf("arch: tile id %d out of range", id))
	}
	return cycleBudget(p.tileClocks[id], periodNs)
}

// Tile returns the tile with the given ID.
func (p *Platform) Tile(id TileID) *Tile {
	if id < 0 || int(id) >= len(p.Tiles) {
		panic(fmt.Sprintf("arch: tile id %d out of range", id))
	}
	return p.Tiles[id]
}

// TileByName returns the tile with the given name, or nil.
func (p *Platform) TileByName(name string) *Tile {
	id, ok := p.byName[name]
	if !ok {
		return nil
	}
	return p.Tiles[id]
}

// TilesOfType returns the tiles of the given type in declaration order.
func (p *Platform) TilesOfType(tt TileType) []*Tile {
	var out []*Tile
	for _, t := range p.Tiles {
		if t.Type == tt {
			out = append(out, t)
		}
	}
	return out
}

// TilesAtRouter returns the IDs of tiles attached to a router.
func (p *Platform) TilesAtRouter(r RouterID) []TileID { return p.atRtr[r] }

// TileTypes returns the set of tile types present, sorted for determinism.
func (p *Platform) TileTypes() []TileType {
	seen := make(map[TileType]bool)
	for _, t := range p.Tiles {
		seen[t.Type] = true
	}
	out := make([]TileType, 0, len(seen))
	for tt := range seen {
		out = append(out, tt)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Pos returns the mesh coordinate of the tile's router.
func (p *Platform) Pos(id TileID) Point { return p.Routers[p.Tile(id).Router].Pos }

// Manhattan returns the router-grid Manhattan distance between two tiles.
func (p *Platform) Manhattan(a, b TileID) int {
	return p.Pos(a).Manhattan(p.Pos(b))
}

// OutLinks returns the IDs of links leaving a router.
func (p *Platform) OutLinks(r RouterID) []LinkID { return p.out[r] }

// InLinks returns the IDs of links entering a router.
func (p *Platform) InLinks(r RouterID) []LinkID { return p.in[r] }

// Link returns the link with the given ID.
func (p *Platform) Link(id LinkID) *Link {
	if id < 0 || int(id) >= len(p.Links) {
		panic(fmt.Sprintf("arch: link id %d out of range", id))
	}
	return p.Links[id]
}

// LinkBetween returns the directed link from router a to router b, or nil.
func (p *Platform) LinkBetween(a, b RouterID) *Link {
	for _, id := range p.out[a] {
		if l := p.Links[id]; l.To == b {
			return l
		}
	}
	return nil
}

// ResetReservations clears all resource reservations on tiles and links,
// returning the platform to its pristine state. The mapper calls this
// between independent mapping attempts; multi-application scenarios do not
// call it, so reservations of admitted applications persist. Regions still
// shared with a copy-on-write snapshot are faulted in first, so snapshots
// keep their captured state.
func (p *Platform) ResetReservations() {
	for r := range p.shared {
		if p.shared[r] {
			p.materializeRegion(RegionID(r))
		}
	}
	for _, t := range p.Tiles {
		t.ReservedMem = 0
		t.ReservedInBps = 0
		t.ReservedOutBps = 0
		t.ReservedUtil = 0
		t.Occupants = 0
	}
	for _, l := range p.Links {
		l.ReservedBps = 0
	}
	p.version.Add(1)
	for r := range p.regionVersions {
		p.regionVersions[r]++
	}
}

// Clone returns a deep copy of the platform including reservation state.
// Search procedures clone platforms to evaluate alternatives without
// disturbing committed state. The copy owns all of its structs (nothing
// is shared copy-on-write) and is never frozen, whatever p was; for the
// cheap structure-sharing alternative see CloneCoW.
func (p *Platform) Clone() *Platform {
	q := p.shallowMeta()
	q.regionVersions = p.regionVersionsSnapshot()
	q.version.Store(p.version.Load())
	q.Tiles = make([]*Tile, len(p.Tiles))
	for i, t := range p.Tiles {
		c := *t
		q.Tiles[i] = &c
	}
	q.Links = make([]*Link, len(p.Links))
	for i, l := range p.Links {
		c := *l
		q.Links[i] = &c
	}
	return q
}

// String renders the platform as a coarse ASCII floor plan: one row per
// mesh row, each router shown as R with the names of attached tiles.
func (p *Platform) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d×%d mesh, %d tiles\n", p.Name, p.Width, p.Height, len(p.Tiles))
	colW := 1
	cells := make([]string, len(p.Routers))
	for i, r := range p.Routers {
		names := make([]string, 0, 1)
		for _, tid := range p.atRtr[r.ID] {
			names = append(names, p.Tiles[tid].Name)
		}
		cell := "R"
		if len(names) > 0 {
			cell = "R[" + strings.Join(names, ",") + "]"
		}
		cells[i] = cell
		if len(cell) > colW {
			colW = len(cell)
		}
	}
	for y := 0; y < p.Height; y++ {
		for x := 0; x < p.Width; x++ {
			fmt.Fprintf(&b, "%-*s ", colW, cells[y*p.Width+x])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
