package arch

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
)

// cowTestPlatform builds a partitioned mesh with a few tiles per region,
// ready for snapshot equivalence tests.
func cowTestPlatform(w, h, regionSize int) *Platform {
	p := NewMesh("cow", w, h, 1_000_000)
	p.PartitionRegions(regionSize)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			p.AttachTile(TileSpec{
				Name: Pt(x, y).String(), Type: TypeARM, At: Pt(x, y),
				ClockHz: 100_000_000, MemBytes: 1 << 20, NICapBps: 500_000,
				MaxOccupants: 4,
			})
		}
	}
	return p
}

// mutateRandomly applies a burst of random reservation changes through
// the write barrier, the way commits and mapper steps do.
func mutateRandomly(p *Platform, rng *rand.Rand, n int) {
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			l := p.WLink(LinkID(rng.Intn(len(p.Links))))
			l.ReservedBps += int64(rng.Intn(1000))
		} else {
			t := p.WTile(TileID(rng.Intn(len(p.Tiles))))
			t.ReservedMem += int64(rng.Intn(4096))
			t.ReservedUtil += rng.Float64() * 0.01
			t.ReservedInBps += int64(rng.Intn(100))
			t.ReservedOutBps += int64(rng.Intn(100))
			t.Occupants = rng.Intn(4)
		}
		p.BumpRegion(RegionID(rng.Intn(p.RegionCount())))
		p.BumpVersion()
	}
}

// snapshotsIdentical compares two snapshots bit-for-bit: every tile and
// link struct (via PlatformsIdentical, shared with the crash-replay
// equivalence suite), the global version and the per-region version
// vector.
func snapshotsIdentical(a, b *Snapshot) error {
	if a.Version != b.Version {
		return fmt.Errorf("versions differ: %d vs %d", a.Version, b.Version)
	}
	if !reflect.DeepEqual(a.RegionVersions, b.RegionVersions) {
		return fmt.Errorf("region versions differ: %v vs %v", a.RegionVersions, b.RegionVersions)
	}
	return PlatformsIdentical(a.Plat, b.Plat)
}

// TestCoWSnapshotMatchesDeepCopy is the CoW equivalence property: across
// randomized mutation histories, a copy-on-write snapshot is
// bit-identical to a deep-copy snapshot taken at the same version, and
// stays so while the live platform mutates arbitrarily afterwards —
// including a ResetReservations, the bluntest write there is.
func TestCoWSnapshotMatchesDeepCopy(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			p := cowTestPlatform(6, 6, 2+int(seed%3))
			mutateRandomly(p, rng, 40)

			cow := p.SnapshotCoW(nil)
			deep := p.Snapshot()
			if err := snapshotsIdentical(cow, deep); err != nil {
				t.Fatalf("CoW snapshot differs from deep copy at capture: %v", err)
			}

			// Arbitrary live mutations must leave both snapshots frozen in
			// time and still identical to each other.
			mutateRandomly(p, rng, 60)
			if err := snapshotsIdentical(cow, deep); err != nil {
				t.Fatalf("live mutations leaked into a snapshot: %v", err)
			}
			p.ResetReservations()
			if err := snapshotsIdentical(cow, deep); err != nil {
				t.Fatalf("ResetReservations leaked into a snapshot: %v", err)
			}

			// And the live platform must have actually moved on: the CoW
			// snapshot is a past view, not an alias.
			if p.Residual().Equal(cow.Plat.Residual()) {
				t.Fatal("live platform still equals the snapshot after reset; mutations ineffective")
			}
		})
	}
}

// TestCoWSnapshotSequence pins the multi-snapshot protocol: snapshots
// taken at different points each keep their own point-in-time state.
func TestCoWSnapshotSequence(t *testing.T) {
	p := cowTestPlatform(4, 4, 2)
	s1 := p.SnapshotCoW(nil)
	p.WTile(0).ReservedMem = 111
	p.BumpVersion()
	s2 := p.SnapshotCoW(nil)
	p.WTile(0).ReservedMem = 222
	p.BumpVersion()

	if got := s1.Plat.Tile(0).ReservedMem; got != 0 {
		t.Fatalf("first snapshot sees ReservedMem=%d, want 0", got)
	}
	if got := s2.Plat.Tile(0).ReservedMem; got != 111 {
		t.Fatalf("second snapshot sees ReservedMem=%d, want 111", got)
	}
	if got := p.Tile(0).ReservedMem; got != 222 {
		t.Fatalf("live platform sees ReservedMem=%d, want 222", got)
	}
}

// TestFrozenSnapshotWritePanics: a frozen CoW snapshot is immutable; the
// write barrier refuses instead of corrupting shared state.
func TestFrozenSnapshotWritePanics(t *testing.T) {
	p := cowTestPlatform(4, 4, 2)
	s := p.SnapshotCoW(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("WTile on a frozen snapshot platform did not panic")
		}
	}()
	s.Plat.WTile(0).ReservedMem = 1
}

// TestWritableSnapshotIsolation: a Writable derivative may be mutated
// freely without disturbing the frozen base or the live platform.
func TestWritableSnapshotIsolation(t *testing.T) {
	p := cowTestPlatform(4, 4, 2)
	p.WTile(3).ReservedMem = 77
	base := p.SnapshotCoW(nil)
	w := base.Writable()
	if w == base {
		t.Fatal("Writable of a frozen snapshot must derive a new view")
	}
	w.Plat.WTile(3).ReservedMem = 999
	w.Plat.WLink(0).ReservedBps = 42
	if got := base.Plat.Tile(3).ReservedMem; got != 77 {
		t.Fatalf("writable mutation leaked into frozen base: ReservedMem=%d", got)
	}
	if got := p.Tile(3).ReservedMem; got != 77 {
		t.Fatalf("writable mutation leaked into live platform: ReservedMem=%d", got)
	}
	if got := w.Plat.Tile(3).ReservedMem; got != 999 {
		t.Fatalf("writable view lost its own write: ReservedMem=%d", got)
	}
	// A non-frozen (deep) snapshot is already writable and returned as-is.
	deep := p.Snapshot()
	if deep.Writable() != deep {
		t.Fatal("Writable of a deep snapshot should be the snapshot itself")
	}
}

// TestCoWFaultMeterCountsRegionFaults: the meter counts one fault per
// materialized region across the platform and its derivatives, and
// untouched regions never fault.
func TestCoWFaultMeterCountsRegionFaults(t *testing.T) {
	p := cowTestPlatform(6, 6, 3) // 2x2 regions
	var meter atomic.Uint64
	p.SetCoWFaultMeter(&meter)
	s := p.SnapshotCoW(nil)
	if meter.Load() != 0 {
		t.Fatalf("capture alone faulted %d regions, want 0", meter.Load())
	}
	// Two writes to the same region: one fault.
	p.WTile(0).ReservedMem = 1
	p.WTile(0).ReservedUtil = 0.5
	if got := meter.Load(); got != 1 {
		t.Fatalf("faults after same-region writes = %d, want 1", got)
	}
	// A write through a derived writable view faults on the child too.
	w := s.Writable()
	w.Plat.WTile(0).ReservedMem = 2
	if got := meter.Load(); got != 2 {
		t.Fatalf("faults after child write = %d, want 2", got)
	}
}

// TestCloneIsDeepAndUnshared: Clone of a CoW-involved platform still
// yields a fully private deep copy — mutating it faults nothing and
// affects nobody.
func TestCloneIsDeepAndUnshared(t *testing.T) {
	p := cowTestPlatform(4, 4, 2)
	s := p.SnapshotCoW(nil)
	c := s.Plat.Clone()
	if c.Frozen() {
		t.Fatal("deep clone of a frozen platform must not be frozen")
	}
	c.Tile(0).ReservedMem = 123 // direct write: the clone shares nothing
	if s.Plat.Tile(0).ReservedMem != 0 || p.Tile(0).ReservedMem != 0 {
		t.Fatal("deep clone shares structs with its origin")
	}
}
