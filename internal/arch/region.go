package arch

import (
	"fmt"
	"sort"
	"sync"
)

// This file shards the platform's reservation state by NoC region. The
// online manager's commit phase used to serialize every admission behind
// one platform-wide lock and one global version counter; partitioning the
// mesh into contiguous rectangular regions gives each region its own
// reservation version (here) and its own lock (RegionLocks), so a commit
// only needs to lock and re-validate the regions its reservation plan
// touches. Admissions landing in disjoint regions then commit fully in
// parallel. An unpartitioned platform behaves as one region covering the
// whole mesh — the degenerate case, semantically identical to the
// pre-sharding code.

// RegionID indexes a region within its Platform's partition.
type RegionID int

// Region is one contiguous rectangular block of the mesh: all routers with
// X0 ≤ x ≤ X1 and Y0 ≤ y ≤ Y1, the tiles attached to them, and the links
// whose source router lies inside the rectangle (the canonical link
// assignment: every link belongs to exactly one region, the region of its
// From router).
type Region struct {
	ID RegionID
	// X0, Y0, X1, Y1 are the inclusive router-coordinate bounds.
	X0, Y0, X1, Y1 int
}

// Contains reports whether the router coordinate lies inside the region.
func (r Region) Contains(pt Point) bool {
	return pt.X >= r.X0 && pt.X <= r.X1 && pt.Y >= r.Y0 && pt.Y <= r.Y1
}

// String renders the region's ID and inclusive coordinate bounds.
func (r Region) String() string {
	return fmt.Sprintf("region %d [(%d,%d)-(%d,%d)]", r.ID, r.X0, r.Y0, r.X1, r.Y1)
}

// regionGrid is the partition geometry: square blocks of `size` routers,
// cols×rows of them, the right and bottom blocks clipped by the mesh edge.
// It is immutable once built, so Clone shares it.
type regionGrid struct {
	size int
	cols int
	rows int
}

func (g *regionGrid) count() int { return g.cols * g.rows }

func (g *regionGrid) of(pt Point) RegionID {
	return RegionID((pt.Y/g.size)*g.cols + pt.X/g.size)
}

// PartitionRegions splits the mesh into square regions of the given side
// length (in routers) and resets all per-region versions. size ≤ 0, or a
// size that covers the whole mesh in one block, yields the single-region
// degenerate case. Partitioning must happen before the platform is shared:
// callers like manager.New size their lock set from RegionCount once, and
// repartitioning a live platform would break the region↔lock
// correspondence. Returns the region count.
func (p *Platform) PartitionRegions(size int) int {
	defer p.ensureCoWState()
	if size <= 0 {
		p.grid = nil
		p.regionVersions = []uint64{0}
		return 1
	}
	cols := (p.Width + size - 1) / size
	rows := (p.Height + size - 1) / size
	if cols*rows == 1 {
		p.grid = nil
		p.regionVersions = []uint64{0}
		return 1
	}
	p.grid = &regionGrid{size: size, cols: cols, rows: rows}
	p.regionVersions = make([]uint64, cols*rows)
	return cols * rows
}

// RegionCount returns the number of regions of the current partition; an
// unpartitioned platform counts as one region covering the whole mesh.
func (p *Platform) RegionCount() int {
	if p.grid == nil {
		return 1
	}
	return p.grid.count()
}

// RegionOfPoint returns the region owning the router at the coordinate.
func (p *Platform) RegionOfPoint(pt Point) RegionID {
	if p.grid == nil {
		return 0
	}
	return p.grid.of(pt)
}

// RegionOfRouter returns the region owning a router.
func (p *Platform) RegionOfRouter(r RouterID) RegionID {
	return p.RegionOfPoint(p.Routers[r].Pos)
}

// RegionOfTile returns the region owning a tile: the region of the router
// its network interface attaches to. It reads only the platform's
// immutable static description, so it is safe lock-free even while
// copy-on-write faults swap reservation structs in other goroutines.
func (p *Platform) RegionOfTile(id TileID) RegionID {
	if id < 0 || int(id) >= len(p.tileRouters) {
		panic(fmt.Sprintf("arch: tile id %d out of range", id))
	}
	return p.RegionOfRouter(p.tileRouters[id])
}

// RegionOfLink returns the region owning a link. A link belongs to the
// region of its source router — the canonical assignment that gives
// boundary-crossing links exactly one owner, so a commit plan's region
// footprint is well defined. Like RegionOfTile it reads only immutable
// static data and is safe lock-free.
func (p *Platform) RegionOfLink(id LinkID) RegionID {
	if id < 0 || int(id) >= len(p.linkFroms) {
		panic(fmt.Sprintf("arch: link id %d out of range", id))
	}
	return p.RegionOfRouter(p.linkFroms[id])
}

// Region returns the geometry of one region of the current partition.
func (p *Platform) Region(id RegionID) Region {
	if p.grid == nil {
		if id != 0 {
			panic(fmt.Sprintf("arch: region id %d on unpartitioned platform", id))
		}
		return Region{ID: 0, X0: 0, Y0: 0, X1: p.Width - 1, Y1: p.Height - 1}
	}
	if id < 0 || int(id) >= p.grid.count() {
		panic(fmt.Sprintf("arch: region id %d out of range (have %d)", id, p.grid.count()))
	}
	g := p.grid
	cx, cy := int(id)%g.cols, int(id)/g.cols
	r := Region{ID: id, X0: cx * g.size, Y0: cy * g.size,
		X1: cx*g.size + g.size - 1, Y1: cy*g.size + g.size - 1}
	if r.X1 >= p.Width {
		r.X1 = p.Width - 1
	}
	if r.Y1 >= p.Height {
		r.Y1 = p.Height - 1
	}
	return r
}

// Regions lists the current partition in region-ID order.
func (p *Platform) Regions() []Region {
	out := make([]Region, p.RegionCount())
	for i := range out {
		out[i] = p.Region(RegionID(i))
	}
	return out
}

// RegionVersion returns one region's reservation version: a counter bumped
// on every committed reservation change touching the region. Like all
// reservation state it must be read under the region's lock when the
// platform is shared.
func (p *Platform) RegionVersion(r RegionID) uint64 {
	return p.regionVersions[r]
}

// BumpRegion records a committed reservation change in one region and
// returns the region's new version. Callers must hold the region's lock
// when the platform is shared; package core calls it from Plan.Commit and
// Plan.Release.
func (p *Platform) BumpRegion(r RegionID) uint64 {
	p.regionVersions[r]++
	return p.regionVersions[r]
}

// regionVersionsSnapshot copies the per-region version vector.
func (p *Platform) regionVersionsSnapshot() []uint64 {
	out := make([]uint64, len(p.regionVersions))
	copy(out, p.regionVersions)
	return out
}

// RegionSet accumulates distinct regions while scanning resources and
// hands them back in the canonical footprint representation: ascending,
// no duplicates. Plan footprints, residual-diff attribution and conflict
// reports all build their region lists through it.
type RegionSet map[RegionID]struct{}

// Add records one region.
func (s RegionSet) Add(r RegionID) { s[r] = struct{}{} }

// Sorted returns the accumulated regions ascending.
func (s RegionSet) Sorted() []RegionID {
	out := make([]RegionID, 0, len(s))
	for r := range s {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RegionLocks serializes reservation mutations per region: one mutex per
// region of a platform's partition. Lock acquires a footprint's locks in
// ascending region order — the canonical order every holder uses, which is
// what makes overlapping footprints deadlock-free — and LockAll takes the
// whole set for operations that need a consistent view of the entire
// platform (snapshots, residual reads, invariant checks).
type RegionLocks struct {
	mus []sync.Mutex
}

// NewRegionLocks returns a lock set for a platform partitioned into n
// regions (n < 1 is treated as 1).
func NewRegionLocks(n int) *RegionLocks {
	if n < 1 {
		n = 1
	}
	return &RegionLocks{mus: make([]sync.Mutex, n)}
}

// Count returns the number of region locks.
func (l *RegionLocks) Count() int { return len(l.mus) }

// Lock acquires the locks of the given regions in ascending canonical
// order. The footprint may be unsorted and may contain duplicates; it is
// normalised first. An empty footprint locks nothing.
func (l *RegionLocks) Lock(regions []RegionID) {
	for _, r := range normalizeRegions(regions) {
		l.mus[r].Lock()
	}
}

// Unlock releases the locks of the given regions (any order accepted; the
// set is normalised like Lock's).
func (l *RegionLocks) Unlock(regions []RegionID) {
	norm := normalizeRegions(regions)
	for i := len(norm) - 1; i >= 0; i-- {
		l.mus[norm[i]].Unlock()
	}
}

// LockRegion acquires one region's lock. The copy-on-write snapshot
// capture uses it to visit regions one at a time instead of holding the
// whole set.
func (l *RegionLocks) LockRegion(r RegionID) { l.mus[r].Lock() }

// UnlockRegion releases one region's lock.
func (l *RegionLocks) UnlockRegion(r RegionID) { l.mus[r].Unlock() }

// LockAll acquires every region lock in ascending order.
func (l *RegionLocks) LockAll() {
	for i := range l.mus {
		l.mus[i].Lock()
	}
}

// UnlockAll releases every region lock.
func (l *RegionLocks) UnlockAll() {
	for i := len(l.mus) - 1; i >= 0; i-- {
		l.mus[i].Unlock()
	}
}

// normalizeRegions returns the footprint sorted ascending with duplicates
// removed, leaving the caller's slice untouched. Already-canonical
// footprints (the common case: Plan.Regions is sorted unique) are returned
// as-is without allocating.
func normalizeRegions(regions []RegionID) []RegionID {
	canonical := true
	for i := 1; i < len(regions); i++ {
		if regions[i] <= regions[i-1] {
			canonical = false
			break
		}
	}
	if canonical {
		return regions
	}
	norm := make([]RegionID, len(regions))
	copy(norm, regions)
	sort.Slice(norm, func(i, j int) bool { return norm[i] < norm[j] })
	out := norm[:0]
	for i, r := range norm {
		if i == 0 || r != out[len(out)-1] {
			out = append(out, r)
		}
	}
	return out
}
