package arch

import (
	"testing"
)

// FuzzPartitionRegions drives the partition geometry with arbitrary mesh
// dimensions and region sizes and checks the invariants the sharded
// commit path is built on:
//
//   - the regions tile the mesh: every router lies in exactly one
//     region's rectangle, and that region is RegionOfPoint's answer;
//   - every link has exactly one owning region, the region of its source
//     router, and that region is within range;
//   - region versions are independent: bumping one region's version
//     leaves every other region's version (and nothing else) unchanged.
//
// The mapper, plan footprints and per-region locks all assume these
// properties; a counterexample here would mean two commits could both
// "own" a resource or a staleness probe could miss a change.
func FuzzPartitionRegions(f *testing.F) {
	f.Add(8, 8, 4)
	f.Add(1, 1, 1)
	f.Add(8, 8, 0)   // unpartitioned degenerate case
	f.Add(5, 3, 2)   // clipped right/bottom blocks
	f.Add(6, 6, 9)   // one block covering the whole mesh
	f.Add(12, 2, 5)  // wide and flat
	f.Add(2, 12, -3) // negative size = unpartitioned
	f.Fuzz(func(t *testing.T, w, h, size int) {
		// Clamp to meshes small enough to scan exhaustively; the
		// geometry code has no behaviour that only appears at scale.
		w = 1 + abs(w)%12 // abs is the arch package's own helper
		h = 1 + abs(h)%12
		if size > 16 {
			size %= 17
		}
		p := NewMesh("fuzz", w, h, 1_000_000)
		n := p.PartitionRegions(size)
		if n != p.RegionCount() {
			t.Fatalf("PartitionRegions returned %d, RegionCount says %d", n, p.RegionCount())
		}
		if n < 1 {
			t.Fatalf("region count %d < 1", n)
		}
		regions := p.Regions()
		if len(regions) != n {
			t.Fatalf("Regions() has %d entries, want %d", len(regions), n)
		}

		// Disjoint and covering: every router lies in exactly one
		// region's rectangle, which is the region the platform reports.
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				pt := Pt(x, y)
				owner := p.RegionOfPoint(pt)
				if owner < 0 || int(owner) >= n {
					t.Fatalf("router %v owned by out-of-range region %d (have %d)", pt, owner, n)
				}
				containers := 0
				for _, r := range regions {
					if r.Contains(pt) {
						containers++
						if r.ID != owner {
							t.Fatalf("router %v contained by region %d but owned by %d", pt, r.ID, owner)
						}
					}
				}
				if containers != 1 {
					t.Fatalf("router %v contained by %d regions, want exactly 1", pt, containers)
				}
			}
		}

		// Every link's owner is its source router's region, in range.
		for _, l := range p.Links {
			owner := p.RegionOfLink(l.ID)
			if owner < 0 || int(owner) >= n {
				t.Fatalf("link %d owned by out-of-range region %d", l.ID, owner)
			}
			if want := p.RegionOfRouter(l.From); owner != want {
				t.Fatalf("link %d owned by region %d, want source router's region %d", l.ID, owner, want)
			}
		}

		// Version independence: bumping region r changes r's version by
		// one and nothing else.
		for r := 0; r < n; r++ {
			before := make([]uint64, n)
			for i := 0; i < n; i++ {
				before[i] = p.RegionVersion(RegionID(i))
			}
			p.BumpRegion(RegionID(r))
			for i := 0; i < n; i++ {
				got := p.RegionVersion(RegionID(i))
				want := before[i]
				if i == r {
					want++
				}
				if got != want {
					t.Fatalf("after BumpRegion(%d): region %d version %d, want %d", r, i, got, want)
				}
			}
		}
	})
}
