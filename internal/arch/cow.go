package arch

import "sync/atomic"

// This file is the copy-on-write snapshot engine. The admission pipeline
// used to pay a full deep copy of every tile and link — O(mesh) structs
// and allocations, taken while holding every region lock — for each
// snapshot, and the mapper paid the same again for every refinement
// attempt's working clone. Copy-on-write turns both into O(touched
// regions): platforms can share the immutable per-tile and per-link
// reservation structs and fault in a private copy of a region only when
// something first writes to it.
//
// The sharing protocol is region-granular and lock-compatible with the
// sharded commit path:
//
//   - shared[r] marks that region r's Tile and Link structs may be
//     referenced by another platform; the first write to the region must
//     copy it first (materializeRegion). On a platform shared between
//     goroutines — the manager's live platform — shared[r] is read and
//     cleared only under region r's lock, and set by SnapshotCoW under
//     the same lock, so no extra synchronization is needed.
//   - frozen marks a platform immutable: the base of a snapshot that may
//     be shared by many concurrent readers. Writes to a frozen platform
//     panic; mutators derive a private copy-on-write child first
//     (Snapshot.Writable, CloneCoW).
//
// Writers reach reservation state through WTile/WLink (single-resource
// writes) or MaterializeRegions (bulk, when the footprint is known, as in
// Plan.Commit). Readers keep using Tile/Link/Tiles/Links unchanged: a
// shared struct is immutable until the owner materializes, and
// materializing swaps the pointer in the writer's own slice without
// touching the structs other platforms still reference.

// ensureCoWState allocates the copy-on-write bookkeeping for the current
// partition. It is called from NewMesh and PartitionRegions so every
// platform is CoW-ready before it can be shared between goroutines
// (lazily allocating later would race with concurrent readers of the
// shared-flag slice).
func (p *Platform) ensureCoWState() {
	n := p.RegionCount()
	p.shared = make([]bool, n)
	p.tilesByRegion = make([][]TileID, n)
	p.linksByRegion = make([][]LinkID, n)
	for _, t := range p.Tiles {
		r := p.RegionOfRouter(t.Router)
		p.tilesByRegion[r] = append(p.tilesByRegion[r], t.ID)
	}
	for _, l := range p.Links {
		r := p.RegionOfRouter(l.From)
		p.linksByRegion[r] = append(p.linksByRegion[r], l.ID)
	}
}

// Frozen reports whether the platform is an immutable snapshot base.
// Frozen platforms may be read by many goroutines concurrently; writing
// to one panics. Derive a writable view with Snapshot.Writable or
// CloneCoW.
func (p *Platform) Frozen() bool { return p.frozen }

// CoWClone reports whether the platform is itself a copy-on-write child
// (a mapper working clone or a writable snapshot view). Such platforms
// are goroutine-private by construction, so deriving further
// copy-on-write clones from them is safe and cheap — the mapper's
// working-clone selection relies on this.
func (p *Platform) CoWClone() bool { return p.cowChild }

// SetCoWFaultMeter installs a counter that materializeRegion bumps once
// per faulted region, on this platform and every snapshot or
// copy-on-write clone subsequently derived from it. The online manager
// uses it to expose CoW fault totals in its statistics; pass nil to
// disable. Install the meter before the platform is shared.
func (p *Platform) SetCoWFaultMeter(m *atomic.Uint64) { p.cowFaults = m }

// materializeRegion replaces region r's tile and link structs with
// private copies, detaching them from every platform that shares them.
// The caller must hold whatever serializes writes to region r (the
// region's lock when the platform is shared; nothing when it is
// goroutine-private).
func (p *Platform) materializeRegion(r RegionID) {
	if p.frozen {
		panic("arch: write to frozen snapshot platform; derive a Writable snapshot or CloneCoW first")
	}
	for _, tid := range p.tilesByRegion[r] {
		c := *p.Tiles[tid]
		p.Tiles[tid] = &c
	}
	for _, lid := range p.linksByRegion[r] {
		c := *p.Links[lid]
		p.Links[lid] = &c
	}
	p.shared[r] = false
	if p.cowFaults != nil {
		p.cowFaults.Add(1)
	}
}

// MaterializeRegions faults in every still-shared region of the given
// footprint, so the caller may mutate reservation state inside those
// regions directly. The caller must hold the footprint's region locks
// when the platform is shared; on an unshared platform (a plain deep
// clone) this is a cheap no-op per region.
func (p *Platform) MaterializeRegions(regions []RegionID) {
	for _, r := range regions {
		if int(r) < len(p.shared) && p.shared[r] {
			p.materializeRegion(r)
		}
	}
}

// WTile returns the tile for writing: if the tile's region is shared
// with another platform it is faulted in first, so the returned struct
// is private to p. Use it instead of Tile whenever reservation fields
// will be mutated, and do the subsequent reads of that tile through the
// returned pointer.
func (p *Platform) WTile(id TileID) *Tile {
	if r := p.RegionOfTile(id); int(r) < len(p.shared) && p.shared[r] {
		p.materializeRegion(r)
	}
	return p.Tile(id)
}

// WLink is WTile for links: it faults in the link's region and returns a
// struct private to p.
func (p *Platform) WLink(id LinkID) *Link {
	if r := p.RegionOfLink(id); int(r) < len(p.shared) && p.shared[r] {
		p.materializeRegion(r)
	}
	return p.Link(id)
}

// CloneCoW returns a copy-on-write clone: a platform that shares every
// tile and link struct with p and faults in private copies as it is
// written. Cloning a frozen platform never mutates it, so any number of
// goroutines may CloneCoW the same snapshot base concurrently. Cloning a
// live platform additionally marks every region of p itself shared — p's
// next write per region copies too — and is therefore only safe while p
// is not being written concurrently (goroutine-private platforms).
func (p *Platform) CloneCoW() *Platform {
	q := p.shallowMeta()
	q.cowChild = true
	q.Tiles = make([]*Tile, len(p.Tiles))
	copy(q.Tiles, p.Tiles)
	q.Links = make([]*Link, len(p.Links))
	copy(q.Links, p.Links)
	q.version.Store(p.version.Load())
	q.regionVersions = p.regionVersionsSnapshot()
	q.shared = make([]bool, p.RegionCount())
	for i := range q.shared {
		q.shared[i] = true
	}
	if !p.frozen {
		if len(p.shared) != p.RegionCount() {
			p.ensureCoWState()
		}
		for i := range p.shared {
			p.shared[i] = true
		}
	}
	return q
}

// shallowMeta copies the platform's immutable description — topology,
// lookup tables, partition geometry and the region resource index — into
// a new Platform with no tiles, links or reservation state yet.
func (p *Platform) shallowMeta() *Platform {
	return &Platform{
		Name:          p.Name,
		Width:         p.Width,
		Height:        p.Height,
		NoCClockHz:    p.NoCClockHz,
		Routers:       p.Routers, // immutable after construction
		out:           p.out,
		in:            p.in,
		byName:        p.byName,
		atRtr:         p.atRtr,
		tileRouters:   p.tileRouters,
		tileClocks:    p.tileClocks,
		linkFroms:     p.linkFroms,
		grid:          p.grid, // immutable once partitioned
		tilesByRegion: p.tilesByRegion,
		linksByRegion: p.linksByRegion,
		cowFaults:     p.cowFaults,
	}
}

// SnapshotCoW takes a copy-on-write snapshot of the platform: the
// returned Snapshot's Plat is a frozen platform sharing every tile and
// link struct with p, captured region by region. Unlike the deep-copying
// Snapshot, the caller need not hold all region locks — pass the
// platform's lock set and each region is captured under only its own
// lock (version vector read included), so concurrent commits in other
// regions proceed throughout. The capture is per-region consistent;
// across regions it may interleave with concurrent commits, which the
// commit path's per-region re-validation already tolerates. Pass nil
// locks for a platform not currently shared between goroutines.
//
// After the capture, p's next write to each region faults in a private
// copy (see MaterializeRegions), leaving the snapshot's structs
// untouched — the snapshot stays a stable point-in-time view for as long
// as it is referenced.
func (p *Platform) SnapshotCoW(locks *RegionLocks) *Snapshot {
	if len(p.shared) != p.RegionCount() {
		// Platforms built through NewMesh/PartitionRegions are always
		// CoW-ready; this covers hand-rolled ones, which are by
		// construction not yet shared between goroutines.
		p.ensureCoWState()
	}
	q := p.shallowMeta()
	q.frozen = true
	q.Tiles = make([]*Tile, len(p.Tiles))
	q.Links = make([]*Link, len(p.Links))
	q.shared = make([]bool, p.RegionCount())
	rv := make([]uint64, len(p.regionVersions))
	version := p.version.Load()
	for r := 0; r < p.RegionCount(); r++ {
		if locks != nil {
			locks.LockRegion(RegionID(r))
		}
		for _, tid := range p.tilesByRegion[r] {
			q.Tiles[tid] = p.Tiles[tid]
		}
		for _, lid := range p.linksByRegion[r] {
			q.Links[lid] = p.Links[lid]
		}
		p.shared[r] = true
		q.shared[r] = true
		rv[r] = p.regionVersions[r]
		if locks != nil {
			locks.UnlockRegion(RegionID(r))
		}
	}
	q.version.Store(version)
	q.regionVersions = rv
	return &Snapshot{Plat: q, Version: version, RegionVersions: rv}
}

// Writable returns a snapshot whose platform the caller may mutate: the
// snapshot itself when its platform is already private, or a snapshot
// wrapping a copy-on-write clone of the frozen base otherwise. The
// preemption planner uses it to run hypothetical evictions on a shared
// epoch snapshot without disturbing the other admissions reading it.
func (s *Snapshot) Writable() *Snapshot {
	if !s.Plat.Frozen() {
		return s
	}
	return &Snapshot{
		Plat:           s.Plat.CloneCoW(),
		Version:        s.Version,
		RegionVersions: s.RegionVersions,
	}
}
