// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) plus the extended benchmark suite its conclusions call
// for (§5). Each experiment returns a human-readable report;
// cmd/experiments prints them and the repository-root benchmarks time
// them. The experiment IDs (E1–E11) are indexed in DESIGN.md and the
// measured outcomes are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"rtsm/internal/arch"
	"rtsm/internal/baseline"
	"rtsm/internal/core"
	"rtsm/internal/energy"
	"rtsm/internal/gap"
	"rtsm/internal/manager"
	"rtsm/internal/model"
	"rtsm/internal/sim"
	"rtsm/internal/workload"
)

// DefaultMode is the HIPERLAN/2 mode the worked example runs in when the
// paper does not pin one (the b-dependent rows of Table 1 are shown for
// all modes by Table1).
var DefaultMode = workload.Hiperlan2Modes[3] // QPSK3/4

// MapHiperlan2 runs the paper's worked example once and returns the
// result; every figure/table experiment builds on it.
func MapHiperlan2(mode workload.Hiperlan2Mode, cfg core.Config) (*core.Result, error) {
	app := workload.Hiperlan2(mode)
	lib := workload.Hiperlan2Library(mode)
	plat := workload.Hiperlan2Platform()
	m := &core.Mapper{Lib: lib, Cfg: cfg}
	return m.Map(app, plat)
}

// Fig1 renders the HIPERLAN/2 receiver KPN of the paper's Figure 1.
func Fig1() string {
	app := workload.Hiperlan2(DefaultMode)
	var b strings.Builder
	fmt.Fprintf(&b, "E1 / Figure 1 — decomposition of a HIPERLAN/2 receiver (%s)\n\n", DefaultMode.Name)
	for _, c := range app.Channels {
		src := app.Process(c.Src).Name
		dst := app.Process(c.Dst).Name
		note := ""
		if app.Process(c.Src).Control || app.Process(c.Dst).Control {
			note = "   (control, outside the data stream)"
		}
		fmt.Fprintf(&b, "  %-10s --%3d--> %-10s%s\n", src, c.TokensPerPeriod, dst, note)
	}
	fmt.Fprintf(&b, "\n  one OFDM symbol every %d ns; b = %d for %s\n",
		app.QoS.PeriodNs, DefaultMode.DemapBits, DefaultMode.Name)
	return b.String()
}

// Table1 renders the implementation catalogue of the paper's Table 1.
func Table1(mode workload.Hiperlan2Mode) string {
	lib := workload.Hiperlan2Library(mode)
	var b strings.Builder
	fmt.Fprintf(&b, "E2 / Table 1 — available implementations (mode %s, b=%d)\n\n", mode.Name, mode.DemapBits)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Process\tPE type\tInput\tOutput\tWCET [cc]\tAvg. energy [nJ/symbol]")
	for _, pname := range []string{"Pfx.rem.", "Frq.off.", "Inv.OFDM", "Rem."} {
		for _, im := range lib.For(pname) {
			in := "-"
			if pat, ok := im.In["in"]; ok {
				in = pat.String()
			}
			out := "-"
			if pat, ok := im.Out["out"]; ok {
				out = pat.String()
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%.0f\n",
				pname, im.TileType, in, out, im.WCET.String(), im.EnergyPerPeriod)
		}
	}
	w.Flush()
	return b.String()
}

// Fig2 renders the MPSoC floor plan of the paper's Figure 2.
func Fig2() string {
	plat := workload.Hiperlan2Platform()
	var b strings.Builder
	b.WriteString("E3 / Figure 2 — MPSOC layout (3×3 mesh, tile placement chosen to\nreproduce Table 2 exactly; see EXPERIMENTS.md)\n\n")
	b.WriteString(plat.String())
	return b.String()
}

// Table2 reruns the mapper and renders the step-2 iteration trace in the
// layout of the paper's Table 2.
func Table2() (string, *core.Result, error) {
	res, err := MapHiperlan2(DefaultMode, core.Config{})
	if err != nil {
		return "", nil, err
	}
	var b strings.Builder
	b.WriteString("E4 / Table 2 — processor assignment iterations in step 2\n")
	b.WriteString("(rows beyond the third are the trailing evaluations the paper\nsummarises as \"No further choices\")\n\n")
	b.WriteString(res.Trace.RenderStep2Table([]string{"ARM1", "ARM2", "MONTIUM1", "MONTIUM2"}))
	return b.String(), res, nil
}

// Fig3 renders the final mapped CSDF graph of the paper's Figure 3,
// including the computed buffer capacities B_i.
func Fig3() (string, *core.Result, error) {
	res, err := MapHiperlan2(DefaultMode, core.Config{})
	if err != nil {
		return "", nil, err
	}
	var b strings.Builder
	b.WriteString("E5 / Figure 3 — final CSDF graph of the mapped receiver\n\n")
	b.WriteString(res.Graph.String())
	b.WriteString("\nStream buffers B_i (tokens), charged to the consuming tile:\n")
	app := res.Mapping.App
	for _, c := range app.StreamChannels() {
		fmt.Fprintf(&b, "  B(%s) = %d\n", c.Name, res.Mapping.Buffers[c.ID])
	}
	fmt.Fprintf(&b, "\nVerified: period %.0f ns (required %d), latency %d ns, feasible=%v\n",
		res.Analysis.Period, app.QoS.PeriodNs, res.Analysis.Latency, res.Feasible)
	return b.String(), res, nil
}

// RuntimeReport holds the E6 measurements, the counterpart of the paper's
// §4.5 implementation metrics (<4 ms on a 100 MHz ARM926, 110 kB peak
// data memory, 137 kB code).
type RuntimeReport struct {
	Iterations int
	MeanPerMap time.Duration
	MinPerMap  time.Duration
	MaxPerMap  time.Duration
}

// MapperRuntime times repeated full mapping runs of the worked example.
func MapperRuntime(iterations int) (*RuntimeReport, error) {
	if iterations <= 0 {
		iterations = 100
	}
	app := workload.Hiperlan2(DefaultMode)
	lib := workload.Hiperlan2Library(DefaultMode)
	plat := workload.Hiperlan2Platform()
	m := core.NewMapper(lib)
	rep := &RuntimeReport{Iterations: iterations, MinPerMap: time.Hour}
	var total time.Duration
	for i := 0; i < iterations; i++ {
		start := time.Now()
		res, err := m.Map(app, plat)
		el := time.Since(start)
		if err != nil {
			return nil, err
		}
		if !res.Feasible {
			return nil, fmt.Errorf("experiments: E6 run %d infeasible", i)
		}
		total += el
		if el < rep.MinPerMap {
			rep.MinPerMap = el
		}
		if el > rep.MaxPerMap {
			rep.MaxPerMap = el
		}
	}
	rep.MeanPerMap = total / time.Duration(iterations)
	return rep, nil
}

func (r *RuntimeReport) String() string {
	return fmt.Sprintf(`E6 / §4.5 — mapper cost for the HIPERLAN/2 example
  this implementation (host CPU):  mean %v, min %v, max %v over %d runs
  paper (ARM926 @ 100 MHz):        < 4 ms
  shape check: both are a small constant cost at application start.`,
		r.MeanPerMap, r.MinPerMap, r.MaxPerMap, r.Iterations)
}

// ModeRow is one row of the E7 run-time vs design-time comparison.
type ModeRow struct {
	Mode       string
	RunTime    float64 // nJ/symbol, run-time mapping for the actual mode
	DesignTime float64 // nJ/symbol, frozen worst-case mapping
	SavingPct  float64
}

// RuntimeVsDesignTime quantifies the introduction's motivating claims for
// run-time mapping in three parts: (a) per-mode energy against the frozen
// worst-case mapping on an empty platform, (b) behaviour when another
// application already occupies a tile the frozen mapping assumed free, and
// (c) the resources a worst-case configuration holds reserved compared to
// what the actual mode needs.
func RuntimeVsDesignTime() ([]ModeRow, string, error) {
	worstMode := workload.Hiperlan2Modes[len(workload.Hiperlan2Modes)-1]
	worstApp := workload.Hiperlan2(worstMode)
	worstLib := workload.Hiperlan2Library(worstMode)
	var rows []ModeRow
	for _, mode := range workload.Hiperlan2Modes {
		plat := workload.Hiperlan2Platform()
		app := workload.Hiperlan2(mode)
		lib := workload.Hiperlan2Library(mode)
		dynamic, err := core.NewMapper(lib).Map(app, plat)
		if err != nil {
			return nil, "", fmt.Errorf("E7 %s: %w", mode.Name, err)
		}
		static, err := baseline.DesignTime(worstLib, lib, core.Config{}, worstApp, app, plat, plat)
		if err != nil {
			return nil, "", fmt.Errorf("E7 %s design-time: %w", mode.Name, err)
		}
		row := ModeRow{
			Mode:       mode.Name,
			RunTime:    dynamic.Energy.Total(),
			DesignTime: static.Energy.Total(),
		}
		if row.DesignTime > 0 {
			row.SavingPct = 100 * (row.DesignTime - row.RunTime) / row.DesignTime
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	b.WriteString("E7 — run-time mapping vs frozen design-time worst-case mapping\n\n")
	b.WriteString("(a) energy per mode on an empty platform\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mode\tRun-time [nJ/sym]\tDesign-time [nJ/sym]\tSaving")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f%%\n", r.Mode, r.RunTime, r.DesignTime, r.SavingPct)
	}
	w.Flush()
	b.WriteString("    (parity is the honest result here: on an empty Figure-2 platform\n")
	b.WriteString("    the worst-case placement already coincides with the optimum)\n")

	// (b) Occupancy: a resident kernel holds MONTIUM1. The frozen
	// placement collides; the run-time mapper uses the spare MONTIUM3 a
	// slightly larger platform provides.
	occupied := hiperlan2PlatformWithSpareMontium()
	m1 := occupied.TileByName("MONTIUM1")
	m1.Occupants = 1
	m1.ReservedUtil = 0.5
	mode := workload.Hiperlan2Modes[2]
	app := workload.Hiperlan2(mode)
	lib := workload.Hiperlan2Library(mode)
	b.WriteString("\n(b) MONTIUM1 occupied by a resident application (platform extended\n")
	b.WriteString("    with a spare MONTIUM3):\n")
	if _, err := baseline.DesignTime(worstLib, lib, core.Config{}, worstApp, app,
		hiperlan2PlatformWithSpareMontium(), occupied); err != nil {
		fmt.Fprintf(&b, "    design-time frozen mapping: REJECTED (%v)\n", err)
	} else {
		b.WriteString("    design-time frozen mapping: admitted (unexpected)\n")
	}
	if dyn, err := core.NewMapper(lib).Map(app, occupied); err == nil && dyn.Feasible {
		fmt.Fprintf(&b, "    run-time mapping:           admitted at %.1f nJ/symbol\n", dyn.Energy.Total())
	} else {
		fmt.Fprintf(&b, "    run-time mapping:           infeasible (%v)\n", err)
	}

	// (c) Reservation waste: what a worst-case (QAM64) configuration
	// holds versus what BPSK1/2 actually needs.
	worstRes, err := MapHiperlan2(worstMode, core.Config{})
	if err != nil {
		return nil, "", err
	}
	actualRes, err := MapHiperlan2(workload.Hiperlan2Modes[0], core.Config{})
	if err != nil {
		return nil, "", err
	}
	wBps, wBuf := reservedResources(worstRes)
	aBps, aBuf := reservedResources(actualRes)
	b.WriteString("\n(c) resources held reserved, worst-case configuration vs actual mode\n")
	fmt.Fprintf(&b, "    NoC lane bandwidth: %d MB/s (QAM64 sizing) vs %d MB/s (BPSK1/2 actual)\n",
		wBps/1_000_000, aBps/1_000_000)
	fmt.Fprintf(&b, "    stream buffer memory: %d B vs %d B\n", wBuf, aBuf)
	return rows, b.String(), nil
}

// hiperlan2PlatformWithSpareMontium is the Figure 2 platform plus a third
// Montium on a previously unlabelled tile, for the occupancy scenario.
func hiperlan2PlatformWithSpareMontium() *arch.Platform {
	p := workload.Hiperlan2Platform()
	p.AttachTile(arch.TileSpec{
		Name: "MONTIUM3", Type: arch.TypeMontium, At: arch.Pt(1, 0),
		ClockHz: 200_000_000, MemBytes: 16 << 10, NICapBps: 800_000_000,
		MaxOccupants: 1,
	})
	return p
}

// reservedResources sums the link bandwidth and stream buffer memory a
// mapping holds reserved on its working platform.
func reservedResources(res *core.Result) (bps int64, bufBytes int64) {
	for _, l := range res.Platform.Links {
		bps += l.ReservedBps
	}
	app := res.Mapping.App
	for _, c := range app.StreamChannels() {
		bufBytes += res.Mapping.Buffers[c.ID] * c.TokenBytes
	}
	return bps, bufBytes
}

// QualityRow is one instance of the E8 heuristic-vs-optimal comparison.
type QualityRow struct {
	Seed      int64
	Heuristic float64
	Optimal   float64
	GapPct    float64
}

// Quality compares the heuristic against the exact branch-and-bound
// optimum on small synthetic instances, pricing both with the identical
// Manhattan-estimate objective.
func Quality(instances int) ([]QualityRow, string, error) {
	if instances <= 0 {
		instances = 10
	}
	params := energy.DefaultParams()
	var rows []QualityRow
	for seed := int64(0); len(rows) < instances && seed < int64(4*instances); seed++ {
		app, lib := workload.Synthetic(workload.SynthOptions{
			Shape: workload.ShapeChain, Processes: 5, Seed: seed})
		plat := workload.SyntheticPlatform(3, 3, seed)
		solver := &gap.Solver{Lib: lib, Params: params}
		opt, err := solver.Optimal(app, plat)
		if err != nil {
			// Some seeds draw, say, a Montium-only process onto a
			// Montium-poor platform: no adherent assignment exists for
			// anyone. Skip those; the comparison needs solvable
			// instances.
			continue
		}
		res, err := core.NewMapper(lib).Map(app, plat)
		if err != nil {
			return nil, "", fmt.Errorf("E8 seed %d heuristic: %w", seed, err)
		}
		h := solver.Evaluate(app, plat, res.Mapping.Impl, res.Mapping.Tile)
		row := QualityRow{Seed: seed, Heuristic: h, Optimal: opt.Energy}
		if opt.Energy > 0 {
			row.GapPct = 100 * (h - opt.Energy) / opt.Energy
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	b.WriteString("E8 — heuristic vs exact optimum (5-process chains, 3×3 platforms)\n\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Seed\tHeuristic [nJ]\tOptimal [nJ]\tGap")
	var sum, worst float64
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%.1f%%\n", r.Seed, r.Heuristic, r.Optimal, r.GapPct)
		sum += r.GapPct
		if r.GapPct > worst {
			worst = r.GapPct
		}
	}
	w.Flush()
	fmt.Fprintf(&b, "\nmean gap %.1f%%, worst gap %.1f%% over %d instances\n",
		sum/float64(len(rows)), worst, len(rows))
	return rows, b.String(), nil
}

// ScalingRow is one point of the E9 scalability sweep.
type ScalingRow struct {
	Label     string
	Processes int
	Tiles     int
	MeanTime  time.Duration
	Feasible  bool
}

// Scaling measures mapper wall time against mesh size and process count,
// the run-time budget question behind the paper's "fast and simple
// methods" requirement (§1.3).
func Scaling() ([]ScalingRow, string, error) {
	var rows []ScalingRow
	run := func(label string, procs, w, h int, seed int64) error {
		app, lib := workload.Synthetic(workload.SynthOptions{
			Shape: workload.ShapeChain, Processes: procs, Seed: seed})
		plat := workload.SyntheticPlatform(w, h, seed)
		m := core.NewMapper(lib)
		const reps = 5
		var total time.Duration
		feasible := false
		for i := 0; i < reps; i++ {
			start := time.Now()
			res, err := m.Map(app, plat)
			total += time.Since(start)
			if err != nil {
				return fmt.Errorf("E9 %s: %w", label, err)
			}
			feasible = res.Feasible
		}
		rows = append(rows, ScalingRow{
			Label:     label,
			Processes: procs,
			Tiles:     len(plat.Tiles),
			MeanTime:  total / reps,
			Feasible:  feasible,
		})
		return nil
	}
	for _, mesh := range []int{3, 4, 6, 8, 10, 12} {
		if err := run(fmt.Sprintf("mesh %d×%d, 12 procs", mesh, mesh), 12, mesh, mesh, 77); err != nil {
			return nil, "", err
		}
	}
	for _, procs := range []int{4, 8, 16, 32, 64} {
		if err := run(fmt.Sprintf("6×6 mesh, %d procs", procs), procs, 6, 6, 78); err != nil {
			return nil, "", err
		}
	}
	var b strings.Builder
	b.WriteString("E9 — mapper wall time vs platform and application size\n\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Instance\tProcesses\tTiles\tMean time\tFeasible")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%v\t%v\n", r.Label, r.Processes, r.Tiles, r.MeanTime, r.Feasible)
	}
	w.Flush()
	return rows, b.String(), nil
}

// AblationRow is one configuration of the E10 design-choice study.
type AblationRow struct {
	Name        string
	Feasible    bool
	Energy      float64
	Step2Iter   int
	Refinements int
	// SynthEnergy and SynthFeasible aggregate the configuration over the
	// synthetic instance set (mean energy of feasible runs, count of
	// feasible runs).
	SynthEnergy   float64
	SynthFeasible int
	SynthTotal    int
}

// Ablation evaluates the mapper's design choices one at a time on the
// HIPERLAN/2 case plus the baselines, quantifying what each mechanism
// buys.
func Ablation() ([]AblationRow, string, error) {
	mode := DefaultMode
	app := workload.Hiperlan2(mode)
	lib := workload.Hiperlan2Library(mode)
	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"paper default (desirability + first-improvement + sorted routing)", core.Config{}},
		{"best-improvement step 2", core.Config{Strategy: core.BestImprovement}},
		{"arbitrary step-1 order", core.Config{ArbitraryOrder: true}},
		{"no local search (greedy only)", core.Config{NoStep2: true}},
		{"unsorted channel routing", core.Config{UnsortedChannels: true}},
		{"XY routing", core.Config{Router: core.XYOnly}},
		{"traffic-weighted step-2 cost", core.Config{CommCost: core.TrafficWeighted}},
		{"no refinement loop", core.Config{NoRefinement: true}},
	}
	const synthSeeds = 8
	var rows []AblationRow
	for _, c := range configs {
		plat := workload.Hiperlan2Platform()
		m := &core.Mapper{Lib: lib, Cfg: c.cfg}
		res, err := m.Map(app, plat)
		if err != nil {
			return nil, "", fmt.Errorf("E10 %s: %w", c.name, err)
		}
		row := AblationRow{
			Name:        c.name,
			Feasible:    res.Feasible,
			Energy:      res.Energy.Total(),
			Step2Iter:   len(res.Trace.Step2),
			Refinements: res.Refinements,
		}
		// The HIPERLAN/2 instance is tiny; the synthetic aggregate is
		// where ordering and routing choices separate.
		for seed := int64(0); seed < synthSeeds; seed++ {
			sApp, sLib := workload.Synthetic(workload.SynthOptions{
				Shape: workload.ShapeLayered, Processes: 10, Seed: seed})
			sPlat := workload.SyntheticPlatform(4, 4, seed)
			sm := &core.Mapper{Lib: sLib, Cfg: c.cfg}
			sRes, err := sm.Map(sApp, sPlat)
			row.SynthTotal++
			if err != nil || !sRes.Feasible {
				continue
			}
			row.SynthFeasible++
			row.SynthEnergy += sRes.Energy.Total()
		}
		if row.SynthFeasible > 0 {
			row.SynthEnergy /= float64(row.SynthFeasible)
		}
		rows = append(rows, row)
	}
	// Baselines on the same instances.
	type baselineFn func(lib *model.Library, app *model.Application, plat *arch.Platform) (*core.Result, error)
	baselines := []struct {
		name string
		run  baselineFn
	}{
		{"baseline: bin packing + clustering [8]", func(lib *model.Library, app *model.Application, plat *arch.Platform) (*core.Result, error) {
			return baseline.BinPack(lib, core.Config{}, app, plat, 2)
		}},
		{"baseline: random adequate (seed 1)", func(lib *model.Library, app *model.Application, plat *arch.Platform) (*core.Result, error) {
			return baseline.Random(lib, core.Config{}, app, plat, 1)
		}},
	}
	for _, bl := range baselines {
		row := AblationRow{Name: bl.name}
		if res, err := bl.run(lib, app, workload.Hiperlan2Platform()); err == nil {
			row.Feasible = res.Feasible
			row.Energy = res.Energy.Total()
		}
		for seed := int64(0); seed < synthSeeds; seed++ {
			sApp, sLib := workload.Synthetic(workload.SynthOptions{
				Shape: workload.ShapeLayered, Processes: 10, Seed: seed})
			sPlat := workload.SyntheticPlatform(4, 4, seed)
			row.SynthTotal++
			res, err := bl.run(sLib, sApp, sPlat)
			if err != nil || !res.Feasible {
				continue
			}
			row.SynthFeasible++
			row.SynthEnergy += res.Energy.Total()
		}
		if row.SynthFeasible > 0 {
			row.SynthEnergy /= float64(row.SynthFeasible)
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E10 — ablations and baselines (HIPERLAN/2 %s + %d layered synthetic instances)\n\n",
		mode.Name, rows[0].SynthTotal)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Configuration\tHL2 ok\tHL2 [nJ]\tRefine\tSynth ok\tSynth mean [nJ]")
	for _, r := range rows {
		synth := "-"
		if r.SynthTotal > 0 {
			synth = fmt.Sprintf("%d/%d", r.SynthFeasible, r.SynthTotal)
		}
		fmt.Fprintf(w, "%s\t%v\t%.1f\t%d\t%s\t%.1f\n",
			r.Name, r.Feasible, r.Energy, r.Refinements, synth, r.SynthEnergy)
	}
	w.Flush()
	return rows, b.String(), nil
}

// ValidateAll cross-checks the mapper's feasibility verdicts against the
// discrete-event simulator (E11) on the HIPERLAN/2 modes and a set of
// synthetic instances.
func ValidateAll() (string, error) {
	var b strings.Builder
	b.WriteString("E11 — step-4 verdicts vs discrete-event simulation\n\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Instance\tMapper\tSimulator period [ns]\tAgree")
	agree, total := 0, 0
	check := func(label string, app *model.Application, res *core.Result) error {
		if !res.Feasible {
			fmt.Fprintf(w, "%s\tinfeasible\t-\t-\n", label)
			return nil
		}
		rep, err := sim.Validate(app, res)
		if err != nil {
			return err
		}
		ok := rep.MeetsThroughput
		total++
		if ok {
			agree++
		}
		fmt.Fprintf(w, "%s\tfeasible\t%.0f\t%v\n", label, rep.PeriodNs, ok)
		return nil
	}
	for _, mode := range workload.Hiperlan2Modes {
		res, err := MapHiperlan2(mode, core.Config{})
		if err != nil {
			return "", err
		}
		if err := check("hiperlan2-"+mode.Name, workload.Hiperlan2(mode), res); err != nil {
			return "", err
		}
	}
	for seed := int64(0); seed < 6; seed++ {
		app, lib := workload.Synthetic(workload.SynthOptions{
			Shape: workload.ShapeLayered, Processes: 8, Seed: seed})
		plat := workload.SyntheticPlatform(4, 4, seed)
		res, err := core.NewMapper(lib).Map(app, plat)
		if err != nil {
			return "", err
		}
		if err := check(app.Name, app, res); err != nil {
			return "", err
		}
	}
	w.Flush()
	fmt.Fprintf(&b, "\n%d/%d feasible mappings confirmed by simulation\n", agree, total)
	return b.String(), nil
}

// All runs every experiment and concatenates the reports in ID order.
func All() (string, error) {
	var parts []string
	parts = append(parts, Fig1())
	parts = append(parts, Table1(DefaultMode))
	parts = append(parts, Fig2())
	t2, _, err := Table2()
	if err != nil {
		return "", err
	}
	parts = append(parts, t2)
	f3, _, err := Fig3()
	if err != nil {
		return "", err
	}
	parts = append(parts, f3)
	rt, err := MapperRuntime(50)
	if err != nil {
		return "", err
	}
	parts = append(parts, rt.String())
	_, e7, err := RuntimeVsDesignTime()
	if err != nil {
		return "", err
	}
	parts = append(parts, e7)
	_, e8, err := Quality(10)
	if err != nil {
		return "", err
	}
	parts = append(parts, e8)
	_, e9, err := Scaling()
	if err != nil {
		return "", err
	}
	parts = append(parts, e9)
	_, e10, err := Ablation()
	if err != nil {
		return "", err
	}
	parts = append(parts, e10)
	e11, err := ValidateAll()
	if err != nil {
		return "", err
	}
	parts = append(parts, e11)
	_, e12, err := Admission()
	if err != nil {
		return "", err
	}
	parts = append(parts, e12)
	return strings.Join(parts, "\n"+strings.Repeat("─", 72)+"\n\n"), nil
}

// Names lists the experiment selectors cmd/experiments accepts.
func Names() []string {
	out := []string{"fig1", "table1", "fig2", "table2", "fig3", "runtime",
		"runtime-vs-designtime", "quality", "scaling", "ablation", "validate",
		"admission", "all"}
	sort.Strings(out)
	return out
}

// AdmissionRow is one configuration of the E12 saturation experiment.
type AdmissionRow struct {
	Config   string
	Mesh     int
	Admitted int
	Offered  int
	MeanUtil float64
	Energy   float64
}

// Admission (E12) saturates platforms with a stream of synthetic
// application arrivals through the run-time manager and reports how many
// each mapper configuration admits before the platform rejects further
// load — the multi-application scenario of the paper's introduction, made
// quantitative.
func Admission() ([]AdmissionRow, string, error) {
	const offered = 24
	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"paper default", core.Config{}},
		{"greedy only (no step 2)", core.Config{NoStep2: true}},
		{"traffic-weighted step 2", core.Config{CommCost: core.TrafficWeighted}},
	}
	var rows []AdmissionRow
	for _, mesh := range []int{4, 6} {
		for _, c := range configs {
			mgr := manager.New(workload.SyntheticPlatform(mesh, mesh, 500), c.cfg)
			admitted := 0
			for i := 0; i < offered; i++ {
				app, lib := workload.Synthetic(workload.SynthOptions{
					Shape:     workload.ShapeChain,
					Processes: 3 + i%3,
					Seed:      int64(1000 + i),
					MaxUtil:   0.3,
				})
				app.Name = fmt.Sprintf("arrival-%d", i)
				if _, err := mgr.Start(app, lib); err == nil {
					admitted++
				}
			}
			load := mgr.Load()
			rows = append(rows, AdmissionRow{
				Config:   c.name,
				Mesh:     mesh,
				Admitted: admitted,
				Offered:  offered,
				MeanUtil: load.MeanUtil,
				Energy:   mgr.TotalEnergy(),
			})
		}
	}
	var b strings.Builder
	b.WriteString("E12 — admission under load (sequential arrivals, no departures)\n\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Platform\tConfiguration\tAdmitted\tMean tile util\tTotal energy [nJ/period]")
	for _, r := range rows {
		fmt.Fprintf(w, "%d×%d\t%s\t%d/%d\t%.0f%%\t%.1f\n",
			r.Mesh, r.Mesh, r.Config, r.Admitted, r.Offered, 100*r.MeanUtil, r.Energy)
	}
	w.Flush()
	return rows, b.String(), nil
}
