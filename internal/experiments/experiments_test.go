package experiments

import (
	"strings"
	"testing"
)

func TestFig1ContainsAllEdges(t *testing.T) {
	out := Fig1()
	for _, want := range []string{"A/D", "Pfx.rem.", "Frq.off.", "Inv.OFDM", "Rem.", "Sink", "CTRL", "80", "64", "52"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig1 missing %q", want)
		}
	}
}

func TestTable1ShowsPaperPatterns(t *testing.T) {
	out := Table1(DefaultMode)
	for _, want := range []string{"⟨18^18⟩", "⟨1^64, 170, 1^52⟩", "275", "143", "MONTIUM", "ARM"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}

func TestTable2MatchesPaperCosts(t *testing.T) {
	out, res, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Initial (greedy) assignment", "Improvement, keep", "No improvement, revert"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q", want)
		}
	}
	costs := []float64{11, 11, 9, 7}
	for i, w := range costs {
		if res.Trace.Step2[i].Cost != w {
			t.Errorf("cost[%d] = %v, want %v", i, res.Trace.Step2[i].Cost, w)
		}
	}
}

func TestFig3ReportsBuffers(t *testing.T) {
	out, res, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("worked example infeasible")
	}
	if !strings.Contains(out, "B(A/D→Pfx.rem.)") || !strings.Contains(out, "feasible=true") {
		t.Errorf("Fig3 incomplete:\n%s", out)
	}
}

func TestMapperRuntimeShape(t *testing.T) {
	rep, err := MapperRuntime(5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanPerMap <= 0 || rep.MinPerMap > rep.MaxPerMap {
		t.Errorf("nonsensical runtime report: %+v", rep)
	}
}

func TestRuntimeVsDesignTimeClaims(t *testing.T) {
	rows, out, err := RuntimeVsDesignTime()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7 modes", len(rows))
	}
	for _, r := range rows {
		if r.RunTime > r.DesignTime+1e-9 {
			t.Errorf("%s: run-time (%v) worse than design-time (%v)", r.Mode, r.RunTime, r.DesignTime)
		}
	}
	// The occupancy scenario must show the frozen mapping rejected and
	// the run-time mapping admitted.
	if !strings.Contains(out, "REJECTED") || !strings.Contains(out, "admitted at") {
		t.Errorf("occupancy scenario missing from report:\n%s", out)
	}
}

func TestQualityGapsNonNegative(t *testing.T) {
	if testing.Short() {
		t.Skip("exact solver sweep")
	}
	rows, _, err := Quality(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no solvable instances")
	}
	for _, r := range rows {
		// The heuristic can never beat the optimum under the shared
		// objective (tiny float slack for the -0.0% rendering case).
		if r.GapPct < -1e-6 {
			t.Errorf("seed %d: heuristic below optimum by %v%%", r.Seed, -r.GapPct)
		}
	}
}

func TestAblationDefaultsBeatBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("full ablation sweep")
	}
	rows, _, err := Ablation()
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]AblationRow)
	for _, r := range rows {
		byName[r.Name] = r
	}
	def, ok := byName["paper default (desirability + first-improvement + sorted routing)"]
	if !ok {
		t.Fatal("default row missing")
	}
	for name, r := range byName {
		if !strings.Contains(name, "baseline") || r.SynthFeasible == 0 {
			continue
		}
		if r.SynthEnergy < def.SynthEnergy-1e-9 {
			t.Errorf("%s (%.1f) beat the paper default (%.1f) on synthetics",
				name, r.SynthEnergy, def.SynthEnergy)
		}
	}
	greedy := byName["no local search (greedy only)"]
	if greedy.SynthEnergy <= def.SynthEnergy {
		t.Errorf("local search bought nothing: greedy %.1f vs default %.1f",
			greedy.SynthEnergy, def.SynthEnergy)
	}
}

func TestAdmissionMonotoneInPlatformSize(t *testing.T) {
	if testing.Short() {
		t.Skip("admission sweep")
	}
	rows, _, err := Admission()
	if err != nil {
		t.Fatal(err)
	}
	perMesh := make(map[int]int)
	for _, r := range rows {
		if r.Config == "paper default" {
			perMesh[r.Mesh] = r.Admitted
		}
	}
	if perMesh[6] < perMesh[4] {
		t.Errorf("bigger platform admitted fewer applications: %v", perMesh)
	}
}
