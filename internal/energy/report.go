package energy

import (
	"fmt"
	"sort"
	"strings"

	"rtsm/internal/arch"
	"rtsm/internal/model"
)

// ProcessCost itemises one process's processing energy.
type ProcessCost struct {
	Process string
	Impl    string
	Tile    string
	Energy  float64
}

// ChannelCost itemises one channel's communication energy.
type ChannelCost struct {
	Channel string
	Hops    int
	Bytes   int64
	Energy  float64
}

// TileCost itemises one powered tile's idle energy.
type TileCost struct {
	Tile   string
	Energy float64
}

// Report is the itemised counterpart of Breakdown, for operator-facing
// output: which process, channel and tile costs what per period.
type Report struct {
	Breakdown Breakdown
	Processes []ProcessCost
	Channels  []ChannelCost
	Tiles     []TileCost
}

// Detailed computes the full itemised energy report of an assignment.
// Totals equal Evaluate's Breakdown exactly.
func (p Params) Detailed(app *model.Application, plat *arch.Platform, asg Assignment) *Report {
	r := &Report{}
	powered := make(map[arch.TileID]bool)
	for _, proc := range app.Processes {
		im := asg.Impl[proc.ID]
		tid, ok := asg.Tile[proc.ID]
		if !ok {
			continue
		}
		powered[tid] = true
		if im == nil {
			continue
		}
		r.Processes = append(r.Processes, ProcessCost{
			Process: proc.Name,
			Impl:    im.String(),
			Tile:    plat.Tile(tid).Name,
			Energy:  im.EnergyPerPeriod,
		})
		r.Breakdown.Processing += im.EnergyPerPeriod
	}
	for _, c := range app.StreamChannels() {
		hops, ok := asg.Hops[c.ID]
		if !ok {
			st, sok := asg.Tile[c.Src]
			dt, dok := asg.Tile[c.Dst]
			if !sok || !dok {
				continue
			}
			hops = plat.Manhattan(st, dt)
		}
		e := p.CommEnergy(c, hops)
		r.Channels = append(r.Channels, ChannelCost{
			Channel: c.Name,
			Hops:    hops,
			Bytes:   c.BytesPerPeriod(),
			Energy:  e,
		})
		r.Breakdown.Communication += e
	}
	tiles := make([]arch.TileID, 0, len(powered))
	for tid := range powered {
		tiles = append(tiles, tid)
	}
	sort.Slice(tiles, func(i, j int) bool { return tiles[i] < tiles[j] })
	for _, tid := range tiles {
		e := p.IdleEnergy(plat.Tile(tid))
		r.Tiles = append(r.Tiles, TileCost{Tile: plat.Tile(tid).Name, Energy: e})
		r.Breakdown.Idle += e
	}
	return r
}

// String renders the report as an indented cost sheet.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "energy per period: %s\n", r.Breakdown)
	b.WriteString("  processing:\n")
	for _, pc := range r.Processes {
		fmt.Fprintf(&b, "    %-16s %-24s on %-10s %8.1f nJ\n", pc.Process, pc.Impl, pc.Tile, pc.Energy)
	}
	b.WriteString("  communication:\n")
	for _, cc := range r.Channels {
		fmt.Fprintf(&b, "    %-24s %d hops × %4d B %8.1f nJ\n", cc.Channel, cc.Hops, cc.Bytes, cc.Energy)
	}
	b.WriteString("  idle (powered tiles):\n")
	for _, tc := range r.Tiles {
		fmt.Fprintf(&b, "    %-16s %8.1f nJ\n", tc.Tile, tc.Energy)
	}
	return b.String()
}
