package energy

import (
	"math"
	"strings"
	"testing"

	"rtsm/internal/arch"
	"rtsm/internal/csdf"
	"rtsm/internal/model"
)

func fixture(t *testing.T) (*model.Application, *arch.Platform, *model.Implementation, *model.Implementation) {
	t.Helper()
	app := model.NewApplication("app", model.QoS{PeriodNs: 4000})
	a := app.AddProcess("a")
	b := app.AddProcess("b")
	app.Connect(a, b, 64, 4) // 256 B per period

	plat := arch.NewMesh("p", 3, 1, 1e9)
	plat.AttachTile(arch.TileSpec{Name: "T0", Type: arch.TypeARM, At: arch.Pt(0, 0)})
	plat.AttachTile(arch.TileSpec{Name: "T1", Type: arch.TypeMontium, At: arch.Pt(2, 0)})

	mk := func(name string, tt arch.TileType, e float64) *model.Implementation {
		return &model.Implementation{
			Process: name, TileType: tt, WCET: csdf.Vals(10),
			EnergyPerPeriod: e,
		}
	}
	return app, plat, mk("a", arch.TypeARM, 60), mk("b", arch.TypeMontium, 143)
}

func TestCommEnergy(t *testing.T) {
	app, _, _, _ := fixture(t)
	p := DefaultParams()
	c := app.Channels[0]
	got := p.CommEnergy(c, 2)
	want := 256 * (2*p.NIPerByte + 2*p.HopPerByte)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("CommEnergy = %v, want %v", got, want)
	}
	if p.CommEnergy(c, 0) != 0 {
		t.Error("same-tile communication must be free")
	}
}

func TestCommEnergyMonotoneInHops(t *testing.T) {
	app, _, _, _ := fixture(t)
	p := DefaultParams()
	c := app.Channels[0]
	prev := 0.0
	for hops := 1; hops < 10; hops++ {
		e := p.CommEnergy(c, hops)
		if e <= prev {
			t.Fatalf("CommEnergy not increasing at %d hops", hops)
		}
		prev = e
	}
}

func TestEvaluateBreakdown(t *testing.T) {
	app, plat, imA, imB := fixture(t)
	p := DefaultParams()
	asg := Assignment{
		Impl: map[model.ProcessID]*model.Implementation{0: imA, 1: imB},
		Tile: map[model.ProcessID]arch.TileID{0: 0, 1: 1},
		Hops: map[model.ChannelID]int{0: 2},
	}
	b := p.Evaluate(app, plat, asg)
	if b.Processing != 203 {
		t.Errorf("Processing = %v, want 203", b.Processing)
	}
	wantComm := 256 * (2*p.NIPerByte + 2*p.HopPerByte)
	if math.Abs(b.Communication-wantComm) > 1e-9 {
		t.Errorf("Communication = %v, want %v", b.Communication, wantComm)
	}
	wantIdle := p.IdlePerPeriod[arch.TypeARM] + p.IdlePerPeriod[arch.TypeMontium]
	if math.Abs(b.Idle-wantIdle) > 1e-9 {
		t.Errorf("Idle = %v, want %v", b.Idle, wantIdle)
	}
	if math.Abs(b.Total()-(b.Processing+b.Communication+b.Idle)) > 1e-9 {
		t.Error("Total is not the sum of components")
	}
}

func TestEvaluateFallsBackToManhattan(t *testing.T) {
	app, plat, imA, imB := fixture(t)
	p := DefaultParams()
	asg := Assignment{
		Impl: map[model.ProcessID]*model.Implementation{0: imA, 1: imB},
		Tile: map[model.ProcessID]arch.TileID{0: 0, 1: 1},
		// no Hops: estimate must use Manhattan distance (2).
	}
	b := p.Evaluate(app, plat, asg)
	want := 256 * (2*p.NIPerByte + 2*p.HopPerByte)
	if math.Abs(b.Communication-want) > 1e-9 {
		t.Errorf("Communication = %v, want Manhattan estimate %v", b.Communication, want)
	}
}

func TestEvaluateSharedTileNoIdleDouble(t *testing.T) {
	app, plat, imA, imB := fixture(t)
	p := DefaultParams()
	asg := Assignment{
		Impl: map[model.ProcessID]*model.Implementation{0: imA, 1: imB},
		Tile: map[model.ProcessID]arch.TileID{0: 0, 1: 0}, // both on T0
	}
	b := p.Evaluate(app, plat, asg)
	if b.Communication != 0 {
		t.Errorf("same-tile Communication = %v, want 0", b.Communication)
	}
	if b.Idle != p.IdlePerPeriod[arch.TypeARM] {
		t.Errorf("Idle = %v, want single tile's idle", b.Idle)
	}
}

func TestBreakdownString(t *testing.T) {
	b := Breakdown{Processing: 1, Communication: 2, Idle: 3}
	if got := b.String(); got == "" || b.Total() != 6 {
		t.Errorf("String/Total wrong: %q %v", got, b.Total())
	}
}

func TestDetailedMatchesEvaluate(t *testing.T) {
	app, plat, imA, imB := fixture(t)
	p := DefaultParams()
	asg := Assignment{
		Impl: map[model.ProcessID]*model.Implementation{0: imA, 1: imB},
		Tile: map[model.ProcessID]arch.TileID{0: 0, 1: 1},
		Hops: map[model.ChannelID]int{0: 2},
	}
	rep := p.Detailed(app, plat, asg)
	sum := p.Evaluate(app, plat, asg)
	if math.Abs(rep.Breakdown.Total()-sum.Total()) > 1e-9 {
		t.Errorf("Detailed total %v != Evaluate total %v", rep.Breakdown.Total(), sum.Total())
	}
	if len(rep.Processes) != 2 || len(rep.Channels) != 1 || len(rep.Tiles) != 2 {
		t.Errorf("itemisation wrong: %d procs, %d chans, %d tiles",
			len(rep.Processes), len(rep.Channels), len(rep.Tiles))
	}
	s := rep.String()
	for _, want := range []string{"processing:", "communication:", "idle", "a@ARM"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}
