// Package energy is the cost model shared by the spatial mapper, the
// baselines and the evaluators: processing energy per implementation,
// communication energy per byte and hop, and idle energy for powered
// tiles. The paper's objective is minimal energy for processing plus
// interprocess communication (§1.3); unused parts of the system can be
// turned off (§3, step 2), which the idle term rewards.
package energy

import (
	"fmt"

	"rtsm/internal/arch"
	"rtsm/internal/model"
)

// Params holds the coefficients of the energy model. All energies are in
// nanojoule, normalised per QoS period (per OFDM symbol in the paper's
// case study) so they compose directly with Table 1's numbers.
type Params struct {
	// HopPerByte is the energy to move one byte across one router-to-
	// router link.
	HopPerByte float64
	// NIPerByte is the energy to move one byte through a network
	// interface (paid once entering and once leaving the NoC).
	NIPerByte float64
	// IdlePerPeriod is the energy a powered-on tile consumes per period
	// even when idle, by tile type. Tiles with no processes are switched
	// off and consume nothing.
	IdlePerPeriod map[arch.TileType]float64
}

// DefaultParams returns coefficients calibrated so that communication and
// idle energies are the same order of magnitude as Table 1's processing
// energies (tens to hundreds of nJ per symbol).
func DefaultParams() Params {
	return Params{
		HopPerByte: 0.05,
		NIPerByte:  0.02,
		IdlePerPeriod: map[arch.TileType]float64{
			arch.TypeARM:     8,
			arch.TypeMontium: 3,
			arch.TypeDSP:     5,
		},
	}
}

// Breakdown splits a mapping's energy per QoS period into its components.
type Breakdown struct {
	Processing    float64
	Communication float64
	Idle          float64
}

// Total returns the summed energy per period.
func (b Breakdown) Total() float64 { return b.Processing + b.Communication + b.Idle }

func (b Breakdown) String() string {
	return fmt.Sprintf("total %.1f nJ/period (proc %.1f, comm %.1f, idle %.1f)",
		b.Total(), b.Processing, b.Communication, b.Idle)
}

// CommEnergy returns the energy per period of carrying the channel's
// traffic across the given number of router-to-router hops. Zero hops
// means both endpoints share a tile: the transfer stays in tile-local
// memory and the NoC is not involved.
func (p Params) CommEnergy(c *model.Channel, hops int) float64 {
	if hops <= 0 {
		return 0
	}
	bytes := float64(c.BytesPerPeriod())
	return bytes * (2*p.NIPerByte + p.HopPerByte*float64(hops))
}

// IdleEnergy returns the per-period idle cost of powering the given tile.
func (p Params) IdleEnergy(t *arch.Tile) float64 { return p.IdlePerPeriod[t.Type] }

// Assignment is the minimal view of a mapping the energy model needs:
// which implementation serves each process, on which tile, and how many
// hops each channel crosses. Pinned endpoint processes appear with a nil
// implementation.
type Assignment struct {
	Impl map[model.ProcessID]*model.Implementation
	Tile map[model.ProcessID]arch.TileID
	// Hops holds per-channel hop counts. Channels absent from the map are
	// costed by the Manhattan distance of their endpoint tiles, the
	// mapper's pre-routing estimate.
	Hops map[model.ChannelID]int
}

// Evaluate computes the full energy breakdown of an assignment on a
// platform.
func (p Params) Evaluate(app *model.Application, plat *arch.Platform, asg Assignment) Breakdown {
	var b Breakdown
	powered := make(map[arch.TileID]bool)
	for pid, im := range asg.Impl {
		if im != nil {
			b.Processing += im.EnergyPerPeriod
		}
		if tid, ok := asg.Tile[pid]; ok {
			powered[tid] = true
		}
	}
	for _, c := range app.StreamChannels() {
		hops, ok := asg.Hops[c.ID]
		if !ok {
			st, sok := asg.Tile[c.Src]
			dt, dok := asg.Tile[c.Dst]
			if !sok || !dok {
				continue
			}
			hops = plat.Manhattan(st, dt)
		}
		b.Communication += p.CommEnergy(c, hops)
	}
	for tid := range powered {
		b.Idle += p.IdleEnergy(plat.Tile(tid))
	}
	return b
}
