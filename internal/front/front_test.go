package front

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"rtsm/internal/churn"
	"rtsm/internal/core"
	"rtsm/internal/manager"
	"rtsm/internal/model"
	"rtsm/internal/stream"
	"rtsm/internal/workload"
)

// admitReq is the test wire format: the churn catalogue index.
type admitReq struct {
	Index int `json:"index"`
}

// churnDecoder decodes {"index": n} bodies into deterministic churn
// arrivals — the same decoder shape cmd/serve and the chaos harness use.
func churnDecoder(co churn.Options, endpointRegions int) Decoder {
	return func(r *http.Request) (*model.Application, *model.Library, error) {
		var req admitReq
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return nil, nil, fmt.Errorf("bad body: %w", err)
		}
		if req.Index < 0 {
			return nil, nil, fmt.Errorf("negative index %d", req.Index)
		}
		app, lib := co.Arrival(req.Index, endpointRegions)
		return app, lib, nil
	}
}

func postAdmit(t *testing.T, addr string, idx int) (int, AdmitResponse) {
	t.Helper()
	body, _ := json.Marshal(admitReq{Index: idx})
	resp, err := http.Post("http://"+addr+"/admit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /admit: %v", err)
	}
	defer resp.Body.Close()
	var ar AdmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatalf("decode /admit response: %v", err)
	}
	return resp.StatusCode, ar
}

// drainResults keeps the server's shared results channel flowing; the
// front door's per-request notify channels are independent of it.
func drainResults(srv *stream.Server) chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range srv.Results() {
		}
	}()
	return done
}

// TestFrontEndToEnd drives the full HTTP surface over a real mesh:
// admissions return 200, the health endpoints answer, and the drain
// sequence flips readiness before refusing admissions — with the stream
// ledger exact at the end.
func TestFrontEndToEnd(t *testing.T) {
	plat := workload.SyntheticRegionPlatform(8, 8, 99, 0)
	m := manager.New(plat, core.Config{})
	m.SetMappingReuse(true)
	pipe := manager.NewPipeline(m, 4, 16)
	srv, err := stream.New(stream.Options{Backend: stream.NewPipelineBackend(m, pipe)})
	if err != nil {
		t.Fatal(err)
	}
	collector := drainResults(srv)

	co := churn.Options{Catalogue: 4, MaxUtil: 0.05, PeriodNs: 40_000, PrioMix: "1:1:1"}
	d, err := Listen(Options{Server: srv, Decode: churnDecoder(co, 1), RequestTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 8; i++ {
		status, ar := postAdmit(t, d.Addr(), i)
		if status != http.StatusOK || ar.Verdict != "admitted" {
			t.Fatalf("admit %d: status %d, verdict %q (err %q)", i, status, ar.Verdict, ar.Error)
		}
		if ar.Attempts != 1 {
			t.Fatalf("admit %d took %d attempts on an empty mesh", i, ar.Attempts)
		}
	}

	for _, ep := range []string{"healthz", "readyz"} {
		resp, err := http.Get("http://" + d.Addr() + "/" + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /%s = %d, want 200", ep, resp.StatusCode)
		}
	}
	resp, err := http.Get("http://" + d.Addr() + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	var met Metrics
	if err := json.NewDecoder(resp.Body).Decode(&met); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if met.Door.Admitted != 8 || met.Stream.Admitted != 8 {
		t.Fatalf("metricsz: door admitted %d, stream admitted %d, want 8/8", met.Door.Admitted, met.Stream.Admitted)
	}

	// Drain: readiness flips, then /admit refuses, then the listener is
	// gone — and only after that does the stream server shut down.
	addr := d.Addr()
	if err := d.Drain(t.Context()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/readyz"); err == nil {
		t.Fatal("listener still accepting after drain")
	}
	rep := srv.Shutdown()
	<-collector
	if !rep.LedgerOK() {
		t.Fatalf("ledger broken after drain: %+v", rep)
	}
	if rep.Submitted != 8 || rep.Admitted != 8 {
		t.Fatalf("ledger: submitted %d admitted %d, want 8/8", rep.Submitted, rep.Admitted)
	}
}

// TestFrontDrainRefusesNewAdmits checks the draining 503 path directly:
// a door that began draining answers /admit with 503 and counts it.
func TestFrontDrainRefusesNewAdmits(t *testing.T) {
	srv := newScriptedServer(t, &scriptBackend{})
	collector := drainResults(srv)
	d, err := Listen(Options{Server: srv, Decode: rejectAllDecoder()})
	if err != nil {
		t.Fatal(err)
	}
	// Flip readiness without closing the listener yet: simulate the
	// window a load balancer sees between the flip and the close.
	d.ready.Store(false)
	status, ar := postAdmit(t, d.Addr(), 0)
	if status != http.StatusServiceUnavailable || ar.Error != "draining" {
		t.Fatalf("draining admit: status %d, error %q", status, ar.Error)
	}
	if st := d.Stats(); st.Draining != 1 || st.Busy != 1 {
		t.Fatalf("draining stats: %+v", st)
	}
	if err := d.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()
	<-collector
}

// scriptBackend is a deterministic stream.Backend: the first
// rejectFirst submissions are rejected retryably (capacity), the rest
// admitted; every outcome is delayed by delay.
type scriptBackend struct {
	mu          sync.Mutex
	rejectFirst int
	delay       time.Duration
	subs        int
}

func (b *scriptBackend) outcome(app *model.Application) func() manager.Outcome {
	b.mu.Lock()
	b.subs++
	n := b.subs
	b.mu.Unlock()
	return func() manager.Outcome {
		if b.delay > 0 {
			time.Sleep(b.delay)
		}
		if n <= b.rejectFirst {
			return manager.Outcome{App: app.Name, Err: &manager.RejectionError{
				App: app.Name, Reason: "no feasible mapping at current occupancy", Retryable: true,
			}}
		}
		return manager.Outcome{App: app.Name, Admitted: true}
	}
}

func (b *scriptBackend) Submit(app *model.Application, _ *model.Library) (func() manager.Outcome, error) {
	return b.outcome(app), nil
}

func (b *scriptBackend) TrySubmit(app *model.Application, _ *model.Library) (func() manager.Outcome, bool) {
	return b.outcome(app), true
}

func (b *scriptBackend) Utilization() float64    { return 1.0 }
func (b *scriptBackend) Stop(string) error       { return nil }
func (b *scriptBackend) NoteShed(model.Priority) {}
func (b *scriptBackend) NoteDLQRecovered()       {}
func (b *scriptBackend) NoteDLQExpired()         {}
func (b *scriptBackend) Stats() manager.Stats    { return manager.Stats{} }
func (b *scriptBackend) Close()                  {}

// newScriptedServer builds a stream server without a DLQ (so retryable
// rejections surface immediately as final results the door can retry).
func newScriptedServer(t *testing.T, b stream.Backend) *stream.Server {
	t.Helper()
	srv, err := stream.New(stream.Options{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// rejectAllDecoder builds a minimal Critical arrival for script tests.
func rejectAllDecoder() Decoder {
	var n int
	var mu sync.Mutex
	return func(*http.Request) (*model.Application, *model.Library, error) {
		mu.Lock()
		n++
		i := n
		mu.Unlock()
		app, lib := workload.Synthetic(workload.SynthOptions{Shape: workload.ShapeChain, Processes: 3, MaxUtil: 0.1, PeriodNs: 40_000})
		app.Name = fmt.Sprintf("scripted-%d", i)
		app.QoS.Priority = model.Critical
		return app, lib, nil
	}
}

// TestFrontRetryRecovers pins the bounded-retry path: two retryable
// capacity rejections, then an admission — the door's jittered backoff
// absorbs the transient and answers 200 with three attempts.
func TestFrontRetryRecovers(t *testing.T) {
	b := &scriptBackend{rejectFirst: 2}
	srv := newScriptedServer(t, b)
	collector := drainResults(srv)
	d, err := Listen(Options{Server: srv, Decode: rejectAllDecoder(), Retries: 2, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	status, ar := postAdmit(t, d.Addr(), 0)
	if status != http.StatusOK || ar.Verdict != "admitted" {
		t.Fatalf("retried admit: status %d, verdict %q (err %q)", status, ar.Verdict, ar.Error)
	}
	if ar.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (original + 2 retries)", ar.Attempts)
	}
	if st := d.Stats(); st.Retries != 2 || st.Admitted != 1 {
		t.Fatalf("stats after retry: %+v", st)
	}
	if err := d.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	rep := srv.Shutdown()
	<-collector
	// Three submissions, three outcomes: the retries are real ledger
	// entries, not hidden resubmissions.
	if !rep.LedgerOK() || rep.Submitted != 3 || rep.Admitted != 1 || rep.Rejected != 2 {
		t.Fatalf("ledger after retries: %+v", rep)
	}
}

// TestFrontRetryBudgetExhausted pins the other side: a backend that
// stays out of capacity longer than the budget yields 503 with a
// Retry-After hint after exactly 1 + Retries attempts.
func TestFrontRetryBudgetExhausted(t *testing.T) {
	b := &scriptBackend{rejectFirst: 1 << 30}
	srv := newScriptedServer(t, b)
	collector := drainResults(srv)
	d, err := Listen(Options{Server: srv, Decode: rejectAllDecoder(), Retries: 2, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(admitReq{Index: 0})
	resp, err := http.Post("http://"+d.Addr()+"/admit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (body %s)", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After hint")
	}
	var ar AdmitResponse
	if err := json.Unmarshal(raw, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Attempts != 3 || ar.Verdict != "rejected" {
		t.Fatalf("exhausted budget: attempts %d, verdict %q", ar.Attempts, ar.Verdict)
	}
	if err := d.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	rep := srv.Shutdown()
	<-collector
	if !rep.LedgerOK() || rep.Submitted != 3 || rep.Rejected != 3 {
		t.Fatalf("ledger after exhausted budget: %+v", rep)
	}
}

// TestFrontDeadlinePropagates pins the 504 path: a backend slower than
// the request timeout leaves the client with 504, while the arrival
// still runs to its verdict and the ledger stays exact.
func TestFrontDeadlinePropagates(t *testing.T) {
	b := &scriptBackend{delay: 300 * time.Millisecond}
	srv := newScriptedServer(t, b)
	collector := drainResults(srv)
	d, err := Listen(Options{Server: srv, Decode: rejectAllDecoder(), RequestTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	status, ar := postAdmit(t, d.Addr(), 0)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("slow backend: status %d (err %q), want 504", status, ar.Error)
	}
	if st := d.Stats(); st.Timeout != 1 {
		t.Fatalf("timeout stats: %+v", st)
	}
	if err := d.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	rep := srv.Shutdown()
	<-collector
	// The abandoned arrival still got its single outcome.
	if !rep.LedgerOK() || rep.Submitted != 1 || rep.Admitted != 1 {
		t.Fatalf("ledger after abandoned wait: %+v", rep)
	}
}

// TestFrontBadRequest pins the 400 path: decoder errors never reach the
// pipeline.
func TestFrontBadRequest(t *testing.T) {
	srv := newScriptedServer(t, &scriptBackend{})
	collector := drainResults(srv)
	co := churn.Options{Catalogue: 4, MaxUtil: 0.05, PeriodNs: 40_000}
	d, err := Listen(Options{Server: srv, Decode: churnDecoder(co, 1)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+d.Addr()+"/admit", "application/json", bytes.NewReader([]byte("not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: status %d, want 400", resp.StatusCode)
	}
	status, _ := postAdmit(t, d.Addr(), -1)
	if status != http.StatusBadRequest {
		t.Fatalf("negative index: status %d, want 400", status)
	}
	if err := d.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	rep := srv.Shutdown()
	<-collector
	if rep.Submitted != 0 {
		t.Fatalf("decoder errors reached the pipeline: %+v", rep)
	}
}
