// Package front is the network front door: it exposes a stream.Server
// over HTTP so external producers can drive the run-time spatial mapper
// without linking against it. The door is deliberately transport-only —
// it decodes requests with a caller-supplied Decoder, propagates a
// per-request deadline into the staged pipeline via context, retries
// retryable capacity rejections a bounded number of times with jittered
// backoff, and drains gracefully: readiness flips first, in-flight
// requests finish, and the stream ledger stays exact because every
// submission still yields exactly one outcome.
//
// Endpoints:
//
//	POST /admit    — submit one arrival, wait for its verdict
//	GET  /healthz  — liveness (200 while the process runs)
//	GET  /readyz   — readiness (503 once draining began)
//	GET  /metricsz — JSON: door stats + stream ledger + rolling window
package front

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rtsm/internal/manager"
	"rtsm/internal/model"
	"rtsm/internal/stream"
)

// Decoder turns one /admit request body into an arrival. The door owns
// transport and retry; the caller owns the wire format (cmd/serve and
// the chaos harness both use a churn-catalogue index decoder).
type Decoder func(r *http.Request) (*model.Application, *model.Library, error)

// Options configures a Door. Server and Decode are required; everything
// else has serviceable defaults.
type Options struct {
	// Server is the admission pipeline behind the door.
	Server *stream.Server
	// Decode parses one /admit request into an arrival.
	Decode Decoder
	// Addr is the listen address (default "127.0.0.1:0" — loopback, an
	// ephemeral port, read it back from Door.Addr).
	Addr string
	// RequestTimeout is the per-request deadline applied to every /admit
	// (default 2s). It rides into the pipeline as the arrival's context
	// deadline, so a Standard or BestEffort arrival nobody is waiting
	// for anymore is shed instead of mapped.
	RequestTimeout time.Duration
	// Retries is how many extra submissions a retryable capacity
	// rejection earns before the door reports 503 (default 2). Each
	// retry is a fresh submission with its own ledger outcome.
	Retries int
	// RetryBackoff is the base delay between retries (default 2ms); the
	// actual delay is jittered uniformly in [backoff/2, backoff) per
	// attempt to decorrelate synchronized clients.
	RetryBackoff time.Duration
	// Seed seeds the backoff jitter for deterministic tests (default 1).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Addr == "" {
		o.Addr = "127.0.0.1:0"
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 2 * time.Second
	}
	if o.Retries <= 0 {
		o.Retries = 2
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 2 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Stats is the door's own ledger, disjoint from the stream server's:
// it counts HTTP requests, not arrivals (one request can cost several
// submissions via retries).
type Stats struct {
	// Requests counts /admit requests accepted for decoding.
	Requests uint64
	// Admitted counts /admit requests answered 200.
	Admitted uint64
	// Busy counts 503s: capacity rejections past the retry budget,
	// sheds, expiries, and requests refused while draining.
	Busy uint64
	// Rejected counts 422s — structural rejections no retry can fix.
	Rejected uint64
	// Timeout counts 504s — the request deadline expired first.
	Timeout uint64
	// BadRequest counts 400s from the decoder.
	BadRequest uint64
	// Retries counts extra submissions spent on retryable rejections.
	Retries uint64
	// Draining counts requests refused because readiness already
	// flipped (a subset of Busy).
	Draining uint64
}

// Door is a running HTTP listener over a stream.Server. Construct with
// Listen, stop with Drain.
type Door struct {
	opts Options
	http *http.Server
	ln   net.Listener

	ready    atomic.Bool
	draining atomic.Bool
	done     chan struct{}
	serveErr error

	jmu   sync.Mutex
	jrand *rand.Rand

	requests, admitted, busy, rejected atomic.Uint64
	timeout, badRequest                atomic.Uint64
	retries, draining503               atomic.Uint64
}

// Listen binds the address and starts serving. The returned Door is
// ready (readyz 200) before Listen returns.
func Listen(opts Options) (*Door, error) {
	if opts.Server == nil || opts.Decode == nil {
		return nil, fmt.Errorf("front: Options.Server and Options.Decode are required")
	}
	opts = opts.withDefaults()
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("front: listen %s: %w", opts.Addr, err)
	}
	d := &Door{
		opts:  opts,
		ln:    ln,
		done:  make(chan struct{}),
		jrand: rand.New(rand.NewSource(opts.Seed)),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /admit", d.handleAdmit)
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /readyz", d.handleReadyz)
	mux.HandleFunc("GET /metricsz", d.handleMetricsz)
	d.http = &http.Server{Handler: mux}
	d.ready.Store(true)
	go func() {
		defer close(d.done)
		if err := d.http.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			d.serveErr = err
		}
	}()
	return d, nil
}

// Addr is the bound listen address, e.g. "127.0.0.1:41372".
func (d *Door) Addr() string { return d.ln.Addr().String() }

// Drain shuts the door down gracefully: readiness flips to 503 first
// (load balancers stop routing), then in-flight /admit requests run to
// their verdicts, then the listener closes. The stream server behind
// the door is NOT shut down — that is the caller's next step, in this
// order, so the pipeline still serves the door's in-flight arrivals.
// Ctx bounds the wait; a second Drain is a no-op returning nil.
func (d *Door) Drain(ctx context.Context) error {
	if !d.draining.CompareAndSwap(false, true) {
		return nil
	}
	d.ready.Store(false)
	if err := d.http.Shutdown(ctx); err != nil {
		return fmt.Errorf("front: drain: %w", err)
	}
	<-d.done
	return d.serveErr
}

// Stats snapshots the door's request ledger.
func (d *Door) Stats() Stats {
	return Stats{
		Requests:   d.requests.Load(),
		Admitted:   d.admitted.Load(),
		Busy:       d.busy.Load(),
		Rejected:   d.rejected.Load(),
		Timeout:    d.timeout.Load(),
		BadRequest: d.badRequest.Load(),
		Retries:    d.retries.Load(),
		Draining:   d.draining503.Load(),
	}
}

// AdmitResponse is the /admit response body.
type AdmitResponse struct {
	App       string `json:"app"`
	Class     string `json:"class"`
	Verdict   string `json:"verdict"`
	Recovered bool   `json:"recovered,omitempty"`
	ShedAt    string `json:"shed_at,omitempty"`
	LatencyNs int64  `json:"latency_ns"`
	// Attempts counts backend submissions the door spent on the
	// request: 1 plus any retries.
	Attempts int    `json:"attempts"`
	Error    string `json:"error,omitempty"`
}

// Metrics is the /metricsz response body.
type Metrics struct {
	Door   Stats         `json:"door"`
	Stream stream.Report `json:"stream"`
	// LedgerOK is the stream's exactly-one-outcome identity at snapshot
	// time (mid-run it can be momentarily false while outcomes are in
	// flight; after shutdown it must hold).
	LedgerOK bool `json:"ledger_ok"`
}

func (d *Door) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (d *Door) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if d.ready.Load() {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintln(w, "draining")
}

func (d *Door) handleMetricsz(w http.ResponseWriter, _ *http.Request) {
	rep := d.opts.Server.Report()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(Metrics{Door: d.Stats(), Stream: rep, LedgerOK: rep.LedgerOK()})
}

func (d *Door) handleAdmit(w http.ResponseWriter, r *http.Request) {
	if !d.ready.Load() {
		d.draining503.Add(1)
		d.busy.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, AdmitResponse{Error: "draining"})
		return
	}
	d.requests.Add(1)
	app, lib, err := d.opts.Decode(r)
	if err != nil {
		d.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest, AdmitResponse{Error: err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), d.opts.RequestTimeout)
	defer cancel()

	attempts := 0
	for {
		attempts++
		res, err := d.opts.Server.SubmitWait(ctx, app, lib)
		if err != nil {
			d.respondErr(w, err)
			return
		}
		if d.retryable(res) && attempts <= d.opts.Retries {
			d.retries.Add(1)
			if !d.backoff(ctx) {
				d.timeout.Add(1)
				writeJSON(w, http.StatusGatewayTimeout, AdmitResponse{
					App: res.App, Attempts: attempts, Error: context.DeadlineExceeded.Error(),
				})
				return
			}
			continue
		}
		d.respond(w, res, attempts)
		return
	}
}

// retryable reports whether one more submission could help: a capacity
// rejection or a DLQ expiry on a capacity rejection — transient states
// a recovering mesh clears. Structural rejections and sheds are final
// for this request (the pipeline already chose to drop it).
func (d *Door) retryable(res stream.Result) bool {
	switch res.Verdict {
	case stream.VerdictRejected, stream.VerdictExpired:
		return manager.IsRetryableRejection(res.Outcome.Err)
	}
	return false
}

// backoff sleeps one jittered retry delay; false means the request
// deadline expired first.
func (d *Door) backoff(ctx context.Context) bool {
	base := d.opts.RetryBackoff
	d.jmu.Lock()
	delay := base/2 + time.Duration(d.jrand.Int63n(int64(base/2)+1))
	d.jmu.Unlock()
	select {
	case <-time.After(delay):
		return true
	case <-ctx.Done():
		return false
	}
}

func (d *Door) respond(w http.ResponseWriter, res stream.Result, attempts int) {
	resp := AdmitResponse{
		App:       res.App,
		Class:     res.Class.String(),
		Verdict:   res.Verdict.String(),
		Recovered: res.Recovered,
		LatencyNs: int64(res.Latency),
		Attempts:  attempts,
	}
	status := http.StatusOK
	switch res.Verdict {
	case stream.VerdictAdmitted:
		d.admitted.Add(1)
	case stream.VerdictRejected:
		if res.Outcome.Err != nil {
			resp.Error = res.Outcome.Err.Error()
		}
		if manager.IsRetryableRejection(res.Outcome.Err) {
			// Capacity, retry budget spent: busy, try again later.
			d.busy.Add(1)
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "1")
		} else {
			// Structural: no amount of retrying maps an unmappable spec.
			d.rejected.Add(1)
			status = http.StatusUnprocessableEntity
		}
	case stream.VerdictShed:
		resp.ShedAt = res.ShedAt.String()
		d.busy.Add(1)
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case stream.VerdictExpired:
		if res.Outcome.Err != nil {
			resp.Error = res.Outcome.Err.Error()
		}
		d.busy.Add(1)
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, resp)
}

// respondErr maps SubmitWait errors: an expired request deadline is
// 504, a cancelled client 499-style 503, a closed server 503.
func (d *Door) respondErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		d.timeout.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, AdmitResponse{Error: err.Error()})
	case errors.Is(err, stream.ErrServerClosed):
		d.busy.Add(1)
		d.draining503.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, AdmitResponse{Error: err.Error()})
	default:
		d.busy.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, AdmitResponse{Error: err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
