// Package chaos is the deterministic fault harness for the network
// front door: a seeded script of faults, latency spikes, graceful
// drains and mid-run crashes is executed at exact arrival indices
// against a live HTTP listener, and the run's aggregate ledger is
// checked for the robustness invariants — every arrival ends in exactly
// one outcome, Critical is never shed, and a crash-recovered platform
// is bit-identical to the pre-crash sealed checkpoint.
//
// Scripts are plain text, one step per line:
//
//	# comment
//	@100 failtile 3        fail the 3rd processing tile
//	@150 faillink 5        fail link 5
//	@200 restoretile 3     bring the tile back
//	@220 restorelink 5     bring the link back
//	@300 spike 2ms 50      delay the next 50 backend outcomes by 2ms
//	@400 drain             drain the door + server, rebuild over the same mesh
//	@500 crash             kill -9 simulation: journal replay, then restart
//
// A step at @N is a barrier: every arrival with index < N has received
// its HTTP response before the step runs, and no arrival ≥ N is
// submitted until it finishes. That is what makes a chaos run
// reproducible enough to assert exact invariants on.
package chaos

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Op is one chaos step's operation.
type Op string

// The scriptable operations.
const (
	// OpFailTile fails the Nth processing tile (stream endpoints are
	// never failed — they anchor the synthetic workload).
	OpFailTile Op = "failtile"
	// OpFailLink fails the Nth NoC link.
	OpFailLink Op = "faillink"
	// OpRestoreTile restores the Nth processing tile.
	OpRestoreTile Op = "restoretile"
	// OpRestoreLink restores the Nth NoC link.
	OpRestoreLink Op = "restorelink"
	// OpSpike delays the next N backend outcomes by Dur — an injected
	// latency collapse the breaker and AIMD controller must absorb.
	OpSpike Op = "spike"
	// OpDrain gracefully drains the front door and the stream server
	// (readiness first, in-flight arrivals finish), then rebuilds both
	// over the same mesh. The ledger accumulates across the rebuild.
	OpDrain Op = "drain"
	// OpCrash simulates kill -9: the door drains, the journal seals a
	// checkpoint, a torn phase appends unsealed work, the process state
	// is discarded, and recovery truncates + replays the journal into a
	// pristine platform — which must be bit-identical to the sealed
	// checkpoint — before a new incarnation serves the rest of the run.
	OpCrash Op = "crash"
)

// Step is one scripted action, fired when the arrival stream reaches At.
type Step struct {
	// At is the arrival index this step precedes: all arrivals < At have
	// completed, none ≥ At have been submitted.
	At int
	// Op selects the action.
	Op Op
	// N is the resource ordinal for fault/restore steps and the affected
	// outcome count for spike.
	N int
	// Dur is the injected latency for spike steps.
	Dur time.Duration
}

// Script is a parsed chaos script: steps sorted by arrival index.
type Script struct {
	// Steps fire in order; equal At values fire in file order.
	Steps []Step
}

// Crashes counts the script's crash steps.
func (s Script) Crashes() int { return s.count(OpCrash) }

// Drains counts the script's drain steps.
func (s Script) Drains() int { return s.count(OpDrain) }

func (s Script) count(op Op) int {
	n := 0
	for _, st := range s.Steps {
		if st.Op == op {
			n++
		}
	}
	return n
}

// ParseScript reads the text form. Blank lines and #-comments are
// ignored; anything else must parse, so a typo fails the run instead of
// silently skipping a fault.
func ParseScript(r io.Reader) (Script, error) {
	var sc Script
	scan := bufio.NewScanner(r)
	lineNo := 0
	for scan.Scan() {
		lineNo++
		line := strings.TrimSpace(scan.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		step, err := parseStep(line)
		if err != nil {
			return Script{}, fmt.Errorf("chaos: line %d: %w", lineNo, err)
		}
		sc.Steps = append(sc.Steps, step)
	}
	if err := scan.Err(); err != nil {
		return Script{}, err
	}
	sort.SliceStable(sc.Steps, func(i, j int) bool { return sc.Steps[i].At < sc.Steps[j].At })
	return sc, nil
}

func parseStep(line string) (Step, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "@") {
		return Step{}, fmt.Errorf("want \"@<index> <op> [args]\", got %q", line)
	}
	at, err := strconv.Atoi(fields[0][1:])
	if err != nil || at < 0 {
		return Step{}, fmt.Errorf("bad arrival index %q", fields[0])
	}
	st := Step{At: at, Op: Op(fields[1])}
	args := fields[2:]
	switch st.Op {
	case OpFailTile, OpFailLink, OpRestoreTile, OpRestoreLink:
		if len(args) != 1 {
			return Step{}, fmt.Errorf("%s wants one resource ordinal", st.Op)
		}
		if st.N, err = strconv.Atoi(args[0]); err != nil || st.N < 0 {
			return Step{}, fmt.Errorf("bad resource ordinal %q", args[0])
		}
	case OpSpike:
		if len(args) != 2 {
			return Step{}, fmt.Errorf("spike wants <duration> <count>")
		}
		if st.Dur, err = time.ParseDuration(args[0]); err != nil || st.Dur <= 0 {
			return Step{}, fmt.Errorf("bad spike duration %q", args[0])
		}
		if st.N, err = strconv.Atoi(args[1]); err != nil || st.N <= 0 {
			return Step{}, fmt.Errorf("bad spike count %q", args[1])
		}
	case OpDrain, OpCrash:
		if len(args) != 0 {
			return Step{}, fmt.Errorf("%s takes no arguments", st.Op)
		}
	default:
		return Step{}, fmt.Errorf("unknown op %q", fields[1])
	}
	return st, nil
}
