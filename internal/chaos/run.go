package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"rtsm/internal/arch"
	"rtsm/internal/churn"
	"rtsm/internal/core"
	"rtsm/internal/front"
	"rtsm/internal/journal"
	"rtsm/internal/manager"
	"rtsm/internal/model"
	"rtsm/internal/stream"
	"rtsm/internal/workload"
)

// Options configures a chaos run. The shape mirrors stream.SoakOptions
// — same synthetic mesh, same churn catalogue — but arrivals travel
// over real HTTP through a front.Door, and the script can kill the
// incarnation mid-run.
type Options struct {
	// Arrivals is the total HTTP admission requests across all
	// incarnations (default 2000).
	Arrivals int
	// Mesh, RegionSize and Seed shape the synthetic platform (defaults
	// 8, 3, 1).
	Mesh       int
	RegionSize int
	Seed       int64
	// Workers and Queue size the backend pipeline (defaults 4, 64).
	Workers int
	Queue   int
	// Catalogue, MaxUtil, PeriodNs and PrioMix shape the arrivals as in
	// internal/churn.
	Catalogue int
	MaxUtil   float64
	PeriodNs  int64
	PrioMix   string
	// Resident caps concurrently running admissions; the collector stops
	// the oldest beyond it (default 4× Workers).
	Resident int
	// Clients is the HTTP submission concurrency within a script segment
	// (default 4). Steps are barriers regardless.
	Clients int
	// Server tunes the stream stages (Backend is overridden).
	Server stream.Options
	// RequestTimeout and Retries tune the door (front.Options defaults
	// apply when zero).
	RequestTimeout time.Duration
	Retries        int
	// JournalPath roots the durable journal segments; required when the
	// script contains crash steps, optional otherwise.
	JournalPath string
	// SyncEvery is the journal's periodic-fsync policy.
	SyncEvery int
}

func (o Options) withDefaults() Options {
	if o.Arrivals <= 0 {
		o.Arrivals = 2000
	}
	if o.Mesh <= 0 {
		o.Mesh = 8
	}
	if o.RegionSize == 0 {
		o.RegionSize = 3
	}
	if o.RegionSize < 0 {
		o.RegionSize = 0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers < 1 {
		o.Workers = 4
	}
	if o.Queue < 1 {
		o.Queue = 64
	}
	if o.Catalogue < 1 {
		o.Catalogue = 6
	}
	if o.MaxUtil <= 0 {
		o.MaxUtil = 0.12
	}
	if o.PeriodNs <= 0 {
		o.PeriodNs = 40_000
	}
	if o.Resident <= 0 {
		o.Resident = 4 * o.Workers
	}
	if o.Clients < 1 {
		o.Clients = 4
	}
	return o
}

// Report is a chaos run's aggregate accounting across incarnations.
type Report struct {
	// Arrivals is the HTTP requests actually issued; Incarnations is
	// 1 + the number of crash steps executed.
	Arrivals     int
	Incarnations int
	// Drains, Crashes and Spikes count executed steps; FaultsInjected
	// and Restores count fault-step resource flips that took effect.
	Drains, Crashes, Spikes  int
	FaultsInjected, Restores int
	// Stream is the aggregate ledger: every incarnation's shutdown
	// report summed. The exactly-one-outcome identity is linear, so
	// LedgerOK on the sum checks the whole run.
	Stream stream.Report
	// Door is the aggregate HTTP accounting across incarnations.
	Door front.Stats
	// ReplayChecks counts crash recoveries whose replayed platform was
	// bit-identical to the pre-crash sealed checkpoint; TornDiscarded
	// sums the unsealed events recovery truncated.
	ReplayChecks  int
	TornDiscarded int
	// CriticalShed is the aggregate Critical-class shed count — the
	// harness's protected invariant, 0 on a healthy run.
	CriticalShed uint64
	// LedgerOK is the aggregate exactly-one-outcome identity.
	LedgerOK bool
}

// incarnation is one server lifetime: backend, spike wrapper, stream
// server, door and collector, torn down as a unit on drain or crash.
type incarnation struct {
	backend   stream.Backend
	spike     *spikeBackend
	srv       *stream.Server
	door      *front.Door
	collector chan struct{}
}

// runner carries the state that survives incarnations.
type runner struct {
	o        Options
	co       churn.Options
	pristine *arch.Platform // never-mutated twin for crash replays
	epRegs   int

	m    *manager.Manager
	jw   *journal.Writer
	jf   *os.File
	segs int // journal segments so far (for NextSegmentPath)

	mu        sync.Mutex
	residents []string // collector's recycle queue, survives rebuilds

	rep Report
}

// Run executes a script against a fresh mesh and returns the aggregate
// report. An error means the run could not execute (bad script, journal
// IO, HTTP transport failure) — invariant violations are reported in
// Report, not as errors, so callers can print the full accounting.
func Run(script Script, o Options) (Report, error) {
	o = o.withDefaults()
	for _, st := range script.Steps {
		if st.At > o.Arrivals {
			return Report{}, fmt.Errorf("chaos: step @%d beyond the %d-arrival run", st.At, o.Arrivals)
		}
	}
	if script.Crashes() > 0 && o.JournalPath == "" {
		return Report{}, fmt.Errorf("chaos: crash steps need -journal (JournalPath)")
	}

	plat := workload.SyntheticRegionPlatform(o.Mesh, o.Mesh, o.Seed, o.RegionSize)
	r := &runner{
		o:        o,
		pristine: plat.Clone(),
		epRegs:   1,
		co: churn.Options{
			Catalogue: o.Catalogue, MaxUtil: o.MaxUtil,
			PeriodNs: o.PeriodNs, PrioMix: o.PrioMix,
		},
	}
	if o.RegionSize > 0 {
		r.epRegs = plat.RegionCount()
	}
	if o.JournalPath != "" {
		f, err := os.Create(o.JournalPath)
		if err != nil {
			return Report{}, fmt.Errorf("chaos: journal: %w", err)
		}
		r.jf = f
		r.jw = journal.NewWriter(f, journal.Options{Syncer: f, SyncEvery: o.SyncEvery})
		r.segs = 1
	}
	r.m = manager.New(plat, core.Config{})
	r.m.SetMappingReuse(true)
	r.m.SetRepair(true)
	if r.jw != nil {
		r.m.SetJournal(r.jw)
	}
	r.rep.Incarnations = 1

	inc, err := r.boot()
	if err != nil {
		return r.rep, err
	}

	next := 0
	steps := append([]Step(nil), script.Steps...)
	for len(steps) > 0 {
		st := steps[0]
		steps = steps[1:]
		if err := r.submitRange(inc, next, st.At); err != nil {
			return r.rep, err
		}
		next = maxInt(next, st.At)
		if inc, err = r.execute(inc, st); err != nil {
			return r.rep, err
		}
	}
	if err := r.submitRange(inc, next, o.Arrivals); err != nil {
		return r.rep, err
	}

	r.teardown(inc)
	if r.jw != nil {
		if err := r.jw.Close(); err != nil {
			return r.rep, fmt.Errorf("chaos: journal: %w", err)
		}
		if err := r.jf.Close(); err != nil {
			return r.rep, fmt.Errorf("chaos: journal: %w", err)
		}
	}
	r.rep.CriticalShed = r.rep.Stream.ShedByClass[model.Critical]
	r.rep.LedgerOK = r.rep.Stream.LedgerOK()
	return r.rep, nil
}

// boot builds one incarnation over the current manager: pipeline,
// spike wrapper, stream server, door and collector.
func (r *runner) boot() (*incarnation, error) {
	pipe := manager.NewPipeline(r.m, r.o.Workers, r.o.Queue)
	spike := &spikeBackend{inner: stream.NewPipelineBackend(r.m, pipe)}
	sopts := r.o.Server
	sopts.Backend = spike
	srv, err := stream.New(sopts)
	if err != nil {
		return nil, err
	}
	door, err := front.Listen(front.Options{
		Server:         srv,
		Decode:         r.decoder(),
		RequestTimeout: r.o.RequestTimeout,
		Retries:        r.o.Retries,
		Seed:           r.o.Seed,
	})
	if err != nil {
		srv.Shutdown()
		return nil, err
	}
	inc := &incarnation{backend: spike.inner, spike: spike, srv: srv, door: door, collector: make(chan struct{})}
	go r.collect(inc)
	return inc, nil
}

// collect recycles residents beyond the cap, exactly as the soak
// collector does, but against a queue that survives rebuilds.
func (r *runner) collect(inc *incarnation) {
	defer close(inc.collector)
	for res := range inc.srv.Results() {
		if res.Verdict != stream.VerdictAdmitted {
			continue
		}
		r.mu.Lock()
		r.residents = append(r.residents, res.App)
		var stopName string
		if len(r.residents) > r.o.Resident {
			stopName = r.residents[0]
			r.residents = r.residents[1:]
		}
		r.mu.Unlock()
		if stopName == "" {
			continue
		}
		err := inc.backend.Stop(stopName)
		if errors.Is(err, manager.ErrRelocating) {
			r.mu.Lock()
			r.residents = append(r.residents, stopName) // retry later
			r.mu.Unlock()
		}
	}
}

// decoder maps {"index": n} bodies to the deterministic churn arrival
// with that index.
func (r *runner) decoder() front.Decoder {
	return func(req *http.Request) (*model.Application, *model.Library, error) {
		var body struct {
			Index int `json:"index"`
		}
		if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
			return nil, nil, fmt.Errorf("bad body: %w", err)
		}
		if body.Index < 0 {
			return nil, nil, fmt.Errorf("negative index %d", body.Index)
		}
		app, lib := r.co.Arrival(body.Index, r.epRegs)
		return app, lib, nil
	}
}

// submitRange issues arrivals [lo, hi) over HTTP with Clients-way
// concurrency, returning once every response has arrived (the step
// barrier).
func (r *runner) submitRange(inc *incarnation, lo, hi int) error {
	if hi <= lo {
		return nil
	}
	client := &http.Client{}
	url := "http://" + inc.door.Addr() + "/admit"
	idx := make(chan int)
	errc := make(chan error, r.o.Clients)
	var wg sync.WaitGroup
	for w := 0; w < r.o.Clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				body, _ := json.Marshal(struct {
					Index int `json:"index"`
				}{i})
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					select {
					case errc <- fmt.Errorf("chaos: POST /admit %d: %w", i, err):
					default:
					}
					continue
				}
				resp.Body.Close()
			}
		}()
	}
	for i := lo; i < hi; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	r.rep.Arrivals += hi - lo
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

// execute runs one step, possibly replacing the incarnation.
func (r *runner) execute(inc *incarnation, st Step) (*incarnation, error) {
	switch st.Op {
	case OpFailTile, OpRestoreTile:
		tiles := procTiles(r.m.Platform())
		if len(tiles) == 0 {
			return inc, fmt.Errorf("chaos: no processing tiles to fail")
		}
		id := tiles[st.N%len(tiles)]
		if st.Op == OpFailTile {
			if rep := r.m.FailTile(id); rep.Failed {
				r.rep.FaultsInjected++
			}
		} else if r.m.RestoreTile(id) {
			r.rep.Restores++
		}
	case OpFailLink, OpRestoreLink:
		links := r.m.Platform().Links
		if len(links) == 0 {
			return inc, fmt.Errorf("chaos: no links to fail")
		}
		id := links[st.N%len(links)].ID
		if st.Op == OpFailLink {
			if rep := r.m.FailLink(id); rep.Failed {
				r.rep.FaultsInjected++
			}
		} else if r.m.RestoreLink(id) {
			r.rep.Restores++
		}
	case OpSpike:
		inc.spike.arm(st.Dur, st.N)
		r.rep.Spikes++
	case OpDrain:
		r.teardown(inc)
		r.rep.Drains++
		return r.boot()
	case OpCrash:
		return r.crash(inc)
	}
	return inc, nil
}

// teardown drains one incarnation gracefully — door first (readiness
// flips, in-flight HTTP finishes), then the stream server — and folds
// its ledger into the aggregate.
func (r *runner) teardown(inc *incarnation) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = inc.door.Drain(ctx)
	rep := inc.srv.Shutdown()
	<-inc.collector
	addReport(&r.rep.Stream, rep)
	addStats(&r.rep.Door, inc.door.Stats())
}

// crash is the kill -9 simulation: quiesce, seal a durable checkpoint,
// commit torn work past the seal, discard the live state, recover from
// the journal and verify the replay bit-for-bit, then serve the rest of
// the run from the recovered manager.
func (r *runner) crash(inc *incarnation) (*incarnation, error) {
	// Quiesce: the door and server drain so no pipeline work races the
	// checkpoint. This models the load balancer pulling the instance
	// before the machine dies; the torn phase below is the work that
	// slipped in after the last seal.
	r.teardown(inc)
	r.rep.Crashes++

	// Seal the durable checkpoint and capture it bit-for-bit.
	r.jw.Flush()
	if err := r.jw.Err(); err != nil {
		return nil, fmt.Errorf("chaos: journal at crash: %w", err)
	}
	sealed := r.m.Platform().Clone()
	sealedNames := runningNames(r.m)

	// Torn phase: admissions committed and synced but never sealed —
	// exactly what a crash strands past the last seal.
	torn := 0
	for i := 0; i < 20 && torn < 3; i++ {
		// Churn arrivals from an index range no HTTP arrival uses, so the
		// torn residents' names never collide with recovered ones.
		app, lib := r.co.Arrival(r.o.Arrivals+r.rep.Crashes*100+i, r.epRegs)
		app.Name = fmt.Sprintf("torn-%d-%s", r.rep.Crashes, app.Name)
		if out := r.m.Admit(app, lib); out.Admitted {
			torn++
		}
	}
	r.jw.Sync()
	if err := r.jw.Err(); err != nil {
		return nil, fmt.Errorf("chaos: journal at crash: %w", err)
	}
	// The crash: the writer is abandoned (never Closed — no final seal)
	// and every live structure is dropped. Only the files survive.
	if err := r.jf.Close(); err != nil {
		return nil, fmt.Errorf("chaos: journal at crash: %w", err)
	}
	r.jw, r.jf, r.m = nil, nil, nil

	// Recovery: truncate the torn tail, verify the chain, replay into a
	// pristine platform and check it equals the sealed checkpoint.
	paths := journal.SegmentPaths(r.o.JournalPath)
	rec, err := journal.RecoverFiles(paths...)
	if err != nil {
		return nil, fmt.Errorf("chaos: recover: %w", err)
	}
	r.rep.TornDiscarded += torn
	replayBase := r.pristine.Clone()
	rm, err := manager.ReplayEvents(replayBase, core.Config{}, rec.Events)
	if err != nil {
		return nil, fmt.Errorf("chaos: replay: %w", err)
	}
	if err := arch.PlatformsIdentical(sealed, replayBase); err != nil {
		return nil, fmt.Errorf("chaos: replayed platform differs from sealed checkpoint: %w", err)
	}
	got, want := runningNames(rm), sealedNames
	if fmt.Sprint(got) != fmt.Sprint(want) {
		return nil, fmt.Errorf("chaos: replayed resident set differs:\n got %v\nwant %v", got, want)
	}
	if err := rm.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("chaos: replayed manager invariants: %w", err)
	}
	r.rep.ReplayChecks++

	// Restart: resume journaling in a fresh segment continuing the
	// verified chain, and serve from the recovered manager.
	next := journal.NextSegmentPath(r.o.JournalPath, r.segs)
	f, err := os.Create(next)
	if err != nil {
		return nil, fmt.Errorf("chaos: restart journal: %w", err)
	}
	jw, err := journal.NewResumedWriter(f, rec.Chain, rec.Seq, journal.Options{Syncer: f, SyncEvery: r.o.SyncEvery})
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("chaos: restart journal: %w", err)
	}
	r.jf, r.jw, r.segs = f, jw, r.segs+1
	rm.SetMappingReuse(true)
	rm.SetRepair(true)
	rm.SetJournal(jw)
	r.m = rm
	r.mu.Lock()
	r.residents = runningNames(rm) // the recovered resident set is the recycle queue now
	r.mu.Unlock()
	r.rep.Incarnations++
	return r.boot()
}

// spikeBackend wraps a stream.Backend and injects latency into the next
// armed number of outcome waits — a deterministic stand-in for a mesh
// whose mapping rounds suddenly slowed down.
type spikeBackend struct {
	inner stream.Backend
	mu    sync.Mutex
	delay time.Duration
	left  int
}

func (b *spikeBackend) arm(d time.Duration, n int) {
	b.mu.Lock()
	b.delay, b.left = d, n
	b.mu.Unlock()
}

func (b *spikeBackend) take() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.left <= 0 {
		return 0
	}
	b.left--
	return b.delay
}

func (b *spikeBackend) wrap(wait func() manager.Outcome) func() manager.Outcome {
	d := b.take()
	if d <= 0 {
		return wait
	}
	return func() manager.Outcome {
		out := wait()
		time.Sleep(d)
		return out
	}
}

// Submit implements stream.Backend.
func (b *spikeBackend) Submit(app *model.Application, lib *model.Library) (func() manager.Outcome, error) {
	wait, err := b.inner.Submit(app, lib)
	if err != nil {
		return nil, err
	}
	return b.wrap(wait), nil
}

// TrySubmit implements stream.Backend.
func (b *spikeBackend) TrySubmit(app *model.Application, lib *model.Library) (func() manager.Outcome, bool) {
	wait, ok := b.inner.TrySubmit(app, lib)
	if !ok {
		return nil, false
	}
	return b.wrap(wait), true
}

// Utilization implements stream.Backend.
func (b *spikeBackend) Utilization() float64 { return b.inner.Utilization() }

// Stop implements stream.Backend.
func (b *spikeBackend) Stop(name string) error { return b.inner.Stop(name) }

// NoteShed implements stream.Backend.
func (b *spikeBackend) NoteShed(p model.Priority) { b.inner.NoteShed(p) }

// NoteDLQRecovered implements stream.Backend.
func (b *spikeBackend) NoteDLQRecovered() { b.inner.NoteDLQRecovered() }

// NoteDLQExpired implements stream.Backend.
func (b *spikeBackend) NoteDLQExpired() { b.inner.NoteDLQExpired() }

// Stats implements stream.Backend.
func (b *spikeBackend) Stats() manager.Stats { return b.inner.Stats() }

// Close implements stream.Backend.
func (b *spikeBackend) Close() { b.inner.Close() }

// procTiles lists the failable processing tiles (endpoints anchor the
// workload and are never failed).
func procTiles(plat *arch.Platform) []arch.TileID {
	var ids []arch.TileID
	for _, t := range plat.Tiles {
		switch t.Type {
		case arch.TypeSource, arch.TypeSink, arch.TypeNone:
			continue
		}
		ids = append(ids, t.ID)
	}
	return ids
}

// runningNames is the manager's resident set, sorted.
func runningNames(m *manager.Manager) []string {
	var names []string
	for _, ad := range m.Running() {
		names = append(names, ad.App.Name)
	}
	sort.Strings(names)
	return names
}

// addReport folds one incarnation's ledger into the aggregate. Counter
// fields sum; point-in-time fields (breaker state, DLQ depth, admit
// rate, window) keep the latest incarnation's values.
func addReport(dst *stream.Report, r stream.Report) {
	dst.Submitted += r.Submitted
	dst.Admitted += r.Admitted
	dst.Recovered += r.Recovered
	dst.Rejected += r.Rejected
	dst.Expired += r.Expired
	for c := range dst.ShedByClass {
		dst.ShedByClass[c] += r.ShedByClass[c]
		dst.RecoveredByClass[c] += r.RecoveredByClass[c]
		dst.ExpiredByClass[c] += r.ExpiredByClass[c]
	}
	dst.ShedBuffer += r.ShedBuffer
	dst.ShedBreaker += r.ShedBreaker
	dst.ShedQueue += r.ShedQueue
	dst.ShedDeadline += r.ShedDeadline
	dst.BreakerOpens += r.BreakerOpens
	dst.RateCuts += r.RateCuts
	dst.RateRaises += r.RateRaises
	dst.BreakerState = r.BreakerState
	dst.DLQDepth = r.DLQDepth
	dst.DLQDepthByClass = r.DLQDepthByClass
	dst.AdmitRate = r.AdmitRate
	dst.Window = r.Window
	dst.Service = r.Service
}

// addStats folds one incarnation's door accounting into the aggregate.
func addStats(dst *front.Stats, s front.Stats) {
	dst.Requests += s.Requests
	dst.Admitted += s.Admitted
	dst.Busy += s.Busy
	dst.Rejected += s.Rejected
	dst.Timeout += s.Timeout
	dst.BadRequest += s.BadRequest
	dst.Retries += s.Retries
	dst.Draining += s.Draining
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
