package chaos

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rtsm/internal/stream"
)

// TestParseScript pins the DSL: good lines parse into sorted steps, bad
// lines fail loudly.
func TestParseScript(t *testing.T) {
	src := `
# warmup, then trouble
@200 spike 2ms 50
@100 failtile 3
@150 faillink 5
@250 restoretile 3
@300 drain
@400 crash
`
	sc, err := ParseScript(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Steps) != 6 {
		t.Fatalf("parsed %d steps, want 6", len(sc.Steps))
	}
	for i := 1; i < len(sc.Steps); i++ {
		if sc.Steps[i].At < sc.Steps[i-1].At {
			t.Fatalf("steps not sorted: %+v", sc.Steps)
		}
	}
	if sc.Crashes() != 1 || sc.Drains() != 1 {
		t.Fatalf("crashes %d, drains %d, want 1/1", sc.Crashes(), sc.Drains())
	}
	if sc.Steps[2].Op != OpSpike || sc.Steps[2].Dur != 2*time.Millisecond || sc.Steps[2].N != 50 {
		t.Fatalf("spike step parsed wrong: %+v", sc.Steps[2])
	}

	for _, bad := range []string{
		"100 failtile 3",      // missing @
		"@-5 failtile 1",      // negative index
		"@10 explode",         // unknown op
		"@10 failtile",        // missing ordinal
		"@10 spike 2ms",       // missing count
		"@10 spike banana 50", // bad duration
		"@10 drain now",       // extra args
	} {
		if _, err := ParseScript(strings.NewReader(bad)); err == nil {
			t.Fatalf("accepted bad line %q", bad)
		}
	}
}

// TestChaosSoak is the harness's own invariant check, run with -race in
// CI: a seeded script injects tile and link faults, a latency spike, a
// graceful drain and a mid-run crash (with journal replay verified
// bit-for-bit inside Run) against the live HTTP door — and the
// aggregate ledger must still balance exactly, with Critical never
// shed.
func TestChaosSoak(t *testing.T) {
	script, err := ParseScript(strings.NewReader(`
@100 failtile 3
@150 faillink 7
@200 spike 1ms 40
@250 restoretile 3
@300 drain
@350 crash
@450 restorelink 7
`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(script, Options{
		Arrivals:    600,
		Mesh:        8,
		Seed:        42,
		Workers:     4,
		MaxUtil:     0.12,
		PrioMix:     "60:30:10",
		JournalPath: filepath.Join(t.TempDir(), "chaos.jsonl"),
		Server: stream.Options{
			DLQ: 256, DLQBelow: 0.8, DLQEvery: time.Millisecond,
			AIMD: stream.AIMDConfig{SLO: 20 * time.Millisecond, Interval: 5 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.LedgerOK {
		t.Fatalf("aggregate ledger broken: %+v", rep.Stream)
	}
	if rep.CriticalShed != 0 {
		t.Fatalf("chaos shed %d Critical arrivals", rep.CriticalShed)
	}
	if rep.Arrivals != 600 {
		t.Fatalf("issued %d arrivals, want 600", rep.Arrivals)
	}
	if rep.Incarnations != 2 || rep.Crashes != 1 || rep.ReplayChecks != 1 {
		t.Fatalf("incarnations %d, crashes %d, replay checks %d, want 2/1/1",
			rep.Incarnations, rep.Crashes, rep.ReplayChecks)
	}
	if rep.Drains != 1 || rep.Spikes != 1 {
		t.Fatalf("drains %d, spikes %d, want 1/1", rep.Drains, rep.Spikes)
	}
	if rep.FaultsInjected == 0 {
		t.Fatal("no fault took effect; script ordinals broken")
	}
	if rep.Stream.Admitted == 0 || rep.Door.Requests == 0 {
		t.Fatalf("run admitted nothing: %+v / %+v", rep.Stream, rep.Door)
	}
	t.Logf("chaos soak: %+v", rep)
}

// TestChaosRejectsBadConfig pins the guard rails: crash steps without a
// journal and steps beyond the run must refuse to start.
func TestChaosRejectsBadConfig(t *testing.T) {
	crash := Script{Steps: []Step{{At: 10, Op: OpCrash}}}
	if _, err := Run(crash, Options{Arrivals: 100}); err == nil {
		t.Fatal("crash without a journal started")
	}
	late := Script{Steps: []Step{{At: 1000, Op: OpDrain}}}
	if _, err := Run(late, Options{Arrivals: 100}); err == nil {
		t.Fatal("step beyond the run started")
	}
}
