package journal_test

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"rtsm/internal/arch"
	"rtsm/internal/journal"
)

// TestSealedPrefixStopsAtTornTail pins the truncation point: the prefix
// ends on the last seal, excluding unsealed events and a line the crash
// cut mid-write.
func TestSealedPrefixStopsAtTornTail(t *testing.T) {
	p := testPlatform()
	rng := rand.New(rand.NewSource(7))
	events := randomEvents(rng, p, 40)
	data := buildJournal(t, events, 16, false) // seals at 16 and 32, 8-event tail

	prefix, err := journal.SealedPrefix(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if prefix <= 0 || prefix >= int64(len(data)) {
		t.Fatalf("prefix = %d of %d bytes, want a strict sealed prefix", prefix, len(data))
	}
	sealed, tail, err := journal.Verify(bytes.NewReader(data[:prefix]))
	if err != nil {
		t.Fatalf("truncated journal does not verify: %v", err)
	}
	if tail != 0 || len(sealed) != 32 {
		t.Fatalf("truncated journal: %d sealed, %d tail, want 32/0", len(sealed), tail)
	}

	// A torn final line (crash mid-write) must not extend the prefix.
	cut := data[:len(data)-3]
	p2, err := journal.SealedPrefix(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if p2 != prefix {
		t.Fatalf("torn line moved the prefix: %d != %d", p2, prefix)
	}
}

// TestRecoverFilesAndResume is the full crash-restart journal story:
// crash with a torn tail, truncate + verify with RecoverFiles, resume
// into a new segment with NewResumedWriter, and confirm the combined
// log verifies end to end and replays to the same platform state as a
// direct application of the sealed events.
func TestRecoverFilesAndResume(t *testing.T) {
	p := testPlatform()
	rng := rand.New(rand.NewSource(11))
	events := randomEvents(rng, p, 40)
	base := filepath.Join(t.TempDir(), "journal.jsonl")

	// Incarnation 1: 40 events, seals at 16/32, crash with 8 unsealed.
	f, err := os.Create(base)
	if err != nil {
		t.Fatal(err)
	}
	w := journal.NewWriter(f, journal.Options{BatchSize: 16})
	for _, e := range events {
		w.Append(e)
	}
	w.Sync() // bytes down, tail unsealed — then the process dies
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := journal.RecoverFiles(journal.SegmentPaths(base)...)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(rec.Events) != 32 || rec.Seq != 32 {
		t.Fatalf("recovered %d events, seq %d, want 32/32", len(rec.Events), rec.Seq)
	}
	if rec.Chain == "" {
		t.Fatal("recovered chain hash is empty")
	}
	if fi, _ := os.Stat(base); fi == nil || fi.Size() == 0 {
		t.Fatal("recovery destroyed the base segment")
	}

	// Incarnation 2: resume into a fresh segment continuing the chain.
	segs := journal.SegmentPaths(base)
	next := journal.NextSegmentPath(base, len(segs))
	f2, err := os.Create(next)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := journal.NewResumedWriter(f2, rec.Chain, rec.Seq, journal.Options{BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	more := randomEvents(rand.New(rand.NewSource(13)), p, 20)
	var seqs []uint64
	for _, e := range more {
		seqs = append(seqs, w2.Append(e))
	}
	if seqs[0] != rec.Seq+1 {
		t.Fatalf("resumed writer started at seq %d, want %d", seqs[0], rec.Seq+1)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}

	// The two segments verify as one chained log...
	paths := journal.SegmentPaths(base)
	if len(paths) != 2 {
		t.Fatalf("SegmentPaths found %d segments, want 2", len(paths))
	}
	rec2, err := journal.RecoverFiles(paths...)
	if err != nil {
		t.Fatalf("recover across segments: %v", err)
	}
	if len(rec2.Events) != 52 || rec2.Seq != 52 {
		t.Fatalf("combined recovery: %d events, seq %d, want 52/52", len(rec2.Events), rec2.Seq)
	}
	// ...and VerifyChain agrees (RecoverFiles is not weaker than it).
	r1, err := os.Open(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()
	r2, err := os.Open(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	chained, tail, err := journal.VerifyChain(r1, r2)
	if err != nil {
		t.Fatalf("verify chain: %v", err)
	}
	if tail != 0 || len(chained) != 52 {
		t.Fatalf("chain: %d events, %d tail, want 52/0", len(chained), tail)
	}

	// Replaying the recovered stream matches direct application.
	direct := p.Clone()
	applyEvents(direct, append(append([]journal.Event{}, events[:32]...), more...))
	replayed := p.Clone()
	applyEvents(replayed, rec2.Events)
	if err := arch.PlatformsIdentical(direct, replayed); err != nil {
		t.Fatalf("recovered replay diverged: %v", err)
	}
}

// TestRecoverFilesIdempotent pins the double-crash case: recovering an
// already-truncated journal changes nothing.
func TestRecoverFilesIdempotent(t *testing.T) {
	p := testPlatform()
	events := randomEvents(rand.New(rand.NewSource(17)), p, 40)
	base := filepath.Join(t.TempDir(), "journal.jsonl")
	f, err := os.Create(base)
	if err != nil {
		t.Fatal(err)
	}
	w := journal.NewWriter(f, journal.Options{BatchSize: 16})
	for _, e := range events {
		w.Append(e)
	}
	w.Sync()
	f.Close()

	first, err := journal.RecoverFiles(base)
	if err != nil {
		t.Fatal(err)
	}
	size1, _ := os.Stat(base)
	second, err := journal.RecoverFiles(base)
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	size2, _ := os.Stat(base)
	if size1.Size() != size2.Size() || first.Chain != second.Chain || first.Seq != second.Seq {
		t.Fatalf("recovery not idempotent: %d/%d bytes, chains %.12s/%.12s", size1.Size(), size2.Size(), first.Chain, second.Chain)
	}
}
