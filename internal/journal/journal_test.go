package journal_test

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"rtsm/internal/arch"
	"rtsm/internal/core"
	"rtsm/internal/journal"
)

// testPlatform builds a small mesh with one tile per router, enough to
// exercise delta replay across several regions.
func testPlatform() *arch.Platform {
	p := arch.NewMesh("journal-test", 4, 4, 2_000_000_000)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			p.AttachTile(arch.TileSpec{
				Name:     fmt.Sprintf("t%d_%d", x, y),
				Type:     arch.TypeARM,
				At:       arch.Pt(x, y),
				ClockHz:  200_000_000,
				MemBytes: 1 << 20,
				NICapBps: 1_000_000_000,
			})
		}
	}
	p.PartitionRegions(2)
	return p
}

// randomEvents generates a deterministic mixed event stream: admissions
// with random reservation deltas, departures of random still-resident
// apps (releasing exactly what they reserved), and fault/restore flips.
func randomEvents(rng *rand.Rand, p *arch.Platform, n int) []journal.Event {
	type resident struct {
		name  string
		tiles []journal.TileDelta
		links []journal.LinkDelta
	}
	var residents []resident
	var out []journal.Event
	failedTiles := map[arch.TileID]bool{}
	for i := 0; i < n; i++ {
		switch r := rng.Intn(10); {
		case r < 5 || len(residents) == 0 && r < 8:
			name := fmt.Sprintf("app%d", i)
			nt := 1 + rng.Intn(3)
			tiles := make([]journal.TileDelta, 0, nt)
			seen := map[arch.TileID]bool{}
			for j := 0; j < nt; j++ {
				tid := arch.TileID(rng.Intn(len(p.Tiles)))
				if seen[tid] {
					continue
				}
				seen[tid] = true
				tiles = append(tiles, journal.TileDelta{
					Tile:      tid,
					MemBytes:  int64(rng.Intn(4096)),
					UtilBits:  math.Float64bits(rng.Float64() * 0.01),
					Occupants: 1,
					InBps:     int64(rng.Intn(1000)),
					OutBps:    int64(rng.Intn(1000)),
				})
			}
			links := []journal.LinkDelta{{
				Link: arch.LinkID(rng.Intn(len(p.Links))),
				Bps:  int64(rng.Intn(10000)),
			}}
			residents = append(residents, resident{name, tiles, links})
			out = append(out, journal.Event{Type: journal.EvAdmit, App: name,
				Priority: rng.Intn(3), Tiles: tiles, Links: links})
		case r < 8 && len(residents) > 0:
			k := rng.Intn(len(residents))
			v := residents[k]
			residents = append(residents[:k], residents[k+1:]...)
			out = append(out, journal.Event{Type: journal.EvDepart, App: v.name,
				Tiles: v.tiles, Links: v.links})
		default:
			tid := arch.TileID(rng.Intn(len(p.Tiles)))
			if failedTiles[tid] {
				delete(failedTiles, tid)
				out = append(out, journal.Event{Type: journal.EvRestoreTile, Tile: tid})
			} else {
				failedTiles[tid] = true
				out = append(out, journal.Event{Type: journal.EvFailTile, Tile: tid})
			}
		}
	}
	return out
}

// applyEvents replays a verified event stream onto a fresh platform, the
// minimal replay loop (manager.Replay layers resident bookkeeping on the
// same arithmetic).
func applyEvents(p *arch.Platform, events []journal.Event) {
	for i := range events {
		e := &events[i]
		switch e.Type {
		case journal.EvAdmit, journal.EvRelocate:
			ts, ls := e.Reservations()
			core.NewDeltaPlan(p, e.App, ts, ls).Commit(p)
		case journal.EvDepart, journal.EvPreemptRelease, journal.EvFaultRelease:
			ts, ls := e.Reservations()
			core.NewDeltaPlan(p, e.App, ts, ls).Release(p)
		case journal.EvFailTile:
			p.FailTile(e.Tile)
		case journal.EvRestoreTile:
			p.RestoreTile(e.Tile)
		case journal.EvFailLink:
			p.FailLink(e.Link)
		case journal.EvRestoreLink:
			p.RestoreLink(e.Link)
		}
	}
}

// buildJournal writes the events through a Writer, optionally leaving
// the last batch unsealed (crash simulation: no Close).
func buildJournal(t testing.TB, events []journal.Event, batch int, sealAll bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := journal.NewWriter(&buf, journal.Options{BatchSize: batch})
	for _, e := range events {
		w.Append(e)
	}
	if sealAll {
		if err := w.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	} else {
		// Crash simulation: drain the IO queue but never seal, leaving
		// events past the last batch-size seal as a torn tail.
		w.Sync()
	}
	return buf.Bytes()
}

// TestJournalRoundTrip is the straight-line case: everything sealed,
// everything verifies, replay matches a direct application of the same
// deltas.
func TestJournalRoundTrip(t *testing.T) {
	p := testPlatform()
	rng := rand.New(rand.NewSource(1))
	events := randomEvents(rng, p, 200)
	data := buildJournal(t, events, 16, true)

	got, tail, err := journal.Verify(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if tail != 0 {
		t.Fatalf("tail = %d after Close, want 0", tail)
	}
	if len(got) != len(events) {
		t.Fatalf("verified %d events, wrote %d", len(got), len(events))
	}
	direct := p.Clone()
	applyEvents(direct, events)
	replayed := p.Clone()
	applyEvents(replayed, got)
	if err := arch.PlatformsIdentical(direct, replayed); err != nil {
		t.Fatalf("replay diverged from direct application: %v", err)
	}
}

// TestJournalTornTail pins the crash semantics: events appended after
// the last seal verify as tail, not as sealed state.
func TestJournalTornTail(t *testing.T) {
	p := testPlatform()
	rng := rand.New(rand.NewSource(2))
	events := randomEvents(rng, p, 50)
	data := buildJournal(t, events, 16, false)
	sealed, tail, err := journal.Verify(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if want := len(events) % 16; tail != want {
		t.Fatalf("tail = %d, want %d", tail, want)
	}
	if len(sealed)+tail != len(events) {
		t.Fatalf("sealed %d + tail %d != written %d", len(sealed), tail, len(events))
	}
}

// sealedLength returns the byte length of the sealed region: everything
// up to and including the last seal line.
func sealedLength(data []byte) int {
	end := 0
	for i := 0; i < len(data); {
		j := bytes.IndexByte(data[i:], '\n')
		if j < 0 {
			break
		}
		line := data[i : i+j]
		if bytes.Contains(line, []byte(`"seal"`)) {
			end = i + j + 1
		}
		i += j + 1
	}
	return end
}

// FuzzJournalChain is the ledger-integrity property suite:
//
//  1. any line-boundary prefix of a journal verifies (earlier seals stand
//     on their own; later events count as torn tail),
//  2. any single flipped byte inside the sealed region is detected,
//  3. replaying the verified events is deterministic: two replays land on
//     bit-for-bit identical platforms.
func FuzzJournalChain(f *testing.F) {
	f.Add(int64(1), uint8(40), uint8(8), uint16(100))
	f.Add(int64(7), uint8(3), uint8(1), uint16(0))
	f.Add(int64(42), uint8(200), uint8(64), uint16(9999))
	f.Fuzz(func(t *testing.T, seed int64, n uint8, batch uint8, flip uint16) {
		if n == 0 {
			n = 1
		}
		p := testPlatform()
		rng := rand.New(rand.NewSource(seed))
		events := randomEvents(rng, p, int(n))
		data := buildJournal(t, events, int(batch), true)

		sealed, tail, err := journal.Verify(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("pristine journal failed verification: %v", err)
		}
		if tail != 0 || len(sealed) != len(events) {
			t.Fatalf("pristine journal: %d sealed + %d tail, wrote %d",
				len(sealed), tail, len(events))
		}

		// Property 1: every line-boundary prefix verifies.
		lines := strings.SplitAfter(string(data), "\n")
		prefix := ""
		for _, line := range lines {
			prefix += line
			s, tl, err := journal.Verify(strings.NewReader(prefix))
			if err != nil {
				t.Fatalf("prefix of %d bytes failed verification: %v", len(prefix), err)
			}
			if len(s)+tl > len(events) {
				t.Fatalf("prefix yielded %d events + %d tail, more than the %d written",
					len(s), tl, len(events))
			}
		}

		// Property 2: a flipped byte inside the sealed region is detected.
		if end := sealedLength(data); end > 0 {
			pos := int(flip) % end
			mut := append([]byte(nil), data...)
			mut[pos] ^= 0xff
			if _, _, err := journal.Verify(bytes.NewReader(mut)); err == nil {
				t.Fatalf("flipped byte at %d of %d went undetected", pos, end)
			}
		}

		// Property 3: replay is deterministic.
		a, b := p.Clone(), p.Clone()
		applyEvents(a, sealed)
		applyEvents(b, sealed)
		if err := arch.PlatformsIdentical(a, b); err != nil {
			t.Fatalf("two replays of the same journal diverged: %v", err)
		}
	})
}

// pageCache models the OS page cache in front of stable storage: Write
// lands in volatile memory, Sync marks everything written so far
// durable, and Durable is what survives a simulated power loss.
type pageCache struct {
	mu         sync.Mutex
	buf        bytes.Buffer
	durableLen int
	syncs      int
}

func (c *pageCache) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.Write(p)
}

func (c *pageCache) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.durableLen = c.buf.Len()
	c.syncs++
	return nil
}

// Durable returns the bytes that survived the crash: only what a Sync
// call made stable.
func (c *pageCache) Durable() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.buf.Bytes()[:c.durableLen]...)
}

func (c *pageCache) Syncs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.syncs
}

// TestSyncWithoutSyncerIsNotDurable is the bug the Syncer hook fixes,
// kept as the control: Sync acks once bytes reach the wrapped io.Writer,
// so with a page cache in between, a crash after Sync still loses every
// acknowledged event.
func TestSyncWithoutSyncerIsNotDurable(t *testing.T) {
	p := testPlatform()
	rng := rand.New(rand.NewSource(7))
	events := randomEvents(rng, p, 10)
	cache := &pageCache{}
	w := journal.NewWriter(cache, journal.Options{BatchSize: 4}) // no Syncer
	for _, e := range events {
		w.Append(e)
	}
	w.Sync() // acked — but only into the page cache
	if got := len(cache.Durable()); got != 0 {
		t.Fatalf("durable bytes without a Syncer = %d, want 0 (nothing ever fsynced)", got)
	}
}

// TestSyncInvokesSyncerBeforeAck pins the durability fix: with a Syncer
// configured, Sync fsyncs before acknowledging, so a crash immediately
// after Sync returns loses no acknowledged event.
func TestSyncInvokesSyncerBeforeAck(t *testing.T) {
	p := testPlatform()
	rng := rand.New(rand.NewSource(8))
	events := randomEvents(rng, p, 10)
	cache := &pageCache{}
	w := journal.NewWriter(cache, journal.Options{BatchSize: 4, Syncer: cache})
	for _, e := range events {
		w.Append(e)
	}
	w.Sync()
	// Crash now: only the durable bytes survive.
	sealed, tail, err := journal.Verify(bytes.NewReader(cache.Durable()))
	if err != nil {
		t.Fatalf("verify durable bytes: %v", err)
	}
	if len(sealed)+tail != len(events) {
		t.Fatalf("durable storage holds %d sealed + %d tail events, want all %d acknowledged",
			len(sealed), tail, len(events))
	}
	if cache.Syncs() == 0 {
		t.Fatal("Sync acked without invoking the Syncer")
	}
}

// TestSetSyncEveryPeriodicFsync pins the periodic policy: with
// SyncEvery configured, events become durable without any explicit Sync
// call, bounding the page-cache exposure window.
func TestSetSyncEveryPeriodicFsync(t *testing.T) {
	p := testPlatform()
	rng := rand.New(rand.NewSource(9))
	events := randomEvents(rng, p, 20)
	cache := &pageCache{}
	w := journal.NewWriter(cache, journal.Options{BatchSize: 64, Syncer: cache, SyncEvery: 5})
	for _, e := range events {
		w.Append(e)
	}
	// The fsyncs run on the writer goroutine; wait for the policy to
	// land at least one durable batch without ever calling Sync.
	deadline := time.Now().Add(5 * time.Second)
	for cache.Syncs() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if cache.Syncs() == 0 {
		t.Fatal("SyncEvery never fsynced")
	}
	if len(cache.Durable()) == 0 {
		t.Fatal("periodic fsync marked nothing durable")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got, want := len(cache.Durable()), cache.buf.Len(); got != want {
		t.Fatalf("close left %d of %d bytes undurable", want-got, want)
	}
}

// TestRotateChainsSegments pins the rotation contract: Rotate seals the
// old segment, the new segment opens with a snapshot head seeded by the
// previous seal, VerifyChain accepts the pair (and replays it exactly
// like the unrotated stream), and any cross-segment tampering —
// flipped bytes, reordered or substituted segments — is detected.
func TestRotateChainsSegments(t *testing.T) {
	p := testPlatform()
	rng := rand.New(rand.NewSource(10))
	events := randomEvents(rng, p, 120)

	var seg1, seg2 bytes.Buffer
	w := journal.NewWriter(&seg1, journal.Options{BatchSize: 16})
	for _, e := range events[:70] {
		w.Append(e)
	}
	if err := w.Rotate(&seg2, nil); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	for _, e := range events[70:] {
		w.Append(e)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	got, tail, err := journal.VerifyChain(bytes.NewReader(seg1.Bytes()), bytes.NewReader(seg2.Bytes()))
	if err != nil {
		t.Fatalf("verify chain: %v", err)
	}
	if tail != 0 || len(got) != len(events) {
		t.Fatalf("chain verified %d events + %d tail, want %d + 0", len(got), tail, len(events))
	}
	// The rotated pair must replay bit-for-bit like the one-segment log.
	direct := p.Clone()
	applyEvents(direct, events)
	replayed := p.Clone()
	applyEvents(replayed, got)
	if err := arch.PlatformsIdentical(direct, replayed); err != nil {
		t.Fatalf("rotated replay diverged: %v", err)
	}
	// A later segment still verifies standalone against its declared seed.
	if _, _, err := journal.Verify(bytes.NewReader(seg2.Bytes())); err != nil {
		t.Fatalf("standalone verify of rotated segment: %v", err)
	}
	// Segment order is pinned by the seed chain.
	if _, _, err := journal.VerifyChain(bytes.NewReader(seg2.Bytes()), bytes.NewReader(seg1.Bytes())); err == nil {
		t.Fatal("reordered segments verified")
	}
	// A flipped byte inside either sealed region breaks the chain.
	for i, seg := range [][]byte{seg1.Bytes(), seg2.Bytes()} {
		bad := append([]byte(nil), seg...)
		limit := sealedLength(bad)
		flip := limit / 2
		bad[flip] ^= 0x40
		segments := [][]byte{seg1.Bytes(), seg2.Bytes()}
		segments[i] = bad
		if _, _, err := journal.VerifyChain(bytes.NewReader(segments[0]), bytes.NewReader(segments[1])); err == nil {
			t.Fatalf("flipped byte %d in segment %d went undetected", flip, i)
		}
	}
}
