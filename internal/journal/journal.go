// Package journal is the durable admission ledger: an append-only,
// hash-chained event log of everything that changes the platform's
// reservation state — admissions, departures, preemption releases,
// relocations, evictions, faults and restores. A manager wired to a
// journal can crash at any instant and be rebuilt bit-for-bit by
// replaying the sealed prefix into a fresh platform (manager.Replay).
//
// Integrity layout, following the classic audit-log construction:
// every event is serialized to one JSON line carrying the sha256 of its
// canonical payload; events are grouped into batches, and each batch is
// sealed by a line carrying the Merkle root of the batch's record hashes
// plus a chain hash sha256(prevChain ‖ root). Any flipped byte inside the
// sealed region breaks either a record hash, the Merkle root, or the
// chain; any sealed prefix of the file verifies on its own, so a torn
// tail (the crash case: events appended but never sealed) is detected and
// discarded rather than trusted.
//
// Writes stay off the admission hot path: Append serializes, hashes and
// stamps sequence numbers synchronously (cheap, and the caller holds its
// commit locks anyway, which is what makes journal order equal commit
// order), while the encoded lines are handed to a dedicated writer
// goroutine that batches them to the underlying io.Writer.
package journal

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"rtsm/internal/arch"
	"rtsm/internal/core"
)

// EventType discriminates journal events.
type EventType string

// Event types. Reservation-bearing events (Admit and Relocate carry the
// new reservations; Depart, PreemptRelease and FaultRelease carry the
// released ones) record per-resource deltas; fault events name one
// resource.
const (
	// EvAdmit: an admission committed its reservations.
	EvAdmit EventType = "admit"
	// EvDepart: a resident stopped and released its reservations.
	EvDepart EventType = "depart"
	// EvPreemptRelease: the preemption planner released a victim's
	// reservations to make room for a higher-priority arrival.
	EvPreemptRelease EventType = "preempt-release"
	// EvFaultRelease: the evacuation path released a resident's
	// reservations because a resource it occupied failed.
	EvFaultRelease EventType = "fault-release"
	// EvRelocate: a released victim re-committed on its new placement.
	EvRelocate EventType = "relocate"
	// EvEvict: a released victim could not be re-placed; it holds nothing
	// and is gone. No reservation delta (the release was journaled).
	EvEvict EventType = "evict"
	// EvFailTile / EvFailLink: a resource failed at run time.
	EvFailTile EventType = "fail-tile"
	EvFailLink EventType = "fail-link"
	// EvRestoreTile / EvRestoreLink: a failed resource rejoined.
	EvRestoreTile EventType = "restore-tile"
	EvRestoreLink EventType = "restore-link"
)

// TileDelta is one tile's aggregated reservation change. Util is carried
// as math.Float64bits of the plan's aggregated utilisation delta, so the
// JSON round-trip is exact and replay reproduces the live platform's
// float arithmetic bit for bit.
type TileDelta struct {
	Tile      arch.TileID `json:"tile"`
	MemBytes  int64       `json:"mem,omitempty"`
	UtilBits  uint64      `json:"util,omitempty"`
	Occupants int         `json:"occ,omitempty"`
	InBps     int64       `json:"in,omitempty"`
	OutBps    int64       `json:"out,omitempty"`
}

// LinkDelta is one link's aggregated bandwidth change.
type LinkDelta struct {
	Link arch.LinkID `json:"link"`
	Bps  int64       `json:"bps"`
}

// Event is one journal record. Seq is assigned by the writer at Append
// time and is strictly increasing; it doubles as the replay order.
type Event struct {
	Seq  uint64    `json:"seq"`
	Type EventType `json:"type"`
	// App names the application for reservation-bearing events.
	App string `json:"app,omitempty"`
	// Priority is the application's QoS priority (admissions and
	// relocations), so replay can rebuild the resident set's classes.
	Priority int `json:"prio,omitempty"`
	// Tile / Link name the failed or restored resource for fault events.
	Tile arch.TileID `json:"ftile,omitempty"`
	Link arch.LinkID `json:"flink,omitempty"`
	// Tiles and Links are the reservation deltas, sorted by resource ID.
	Tiles []TileDelta `json:"tiles,omitempty"`
	Links []LinkDelta `json:"links,omitempty"`
}

// FromDeltas converts a core plan's exported deltas to journal form.
func FromDeltas(tiles []core.TileReservation, links []core.LinkReservation) ([]TileDelta, []LinkDelta) {
	ts := make([]TileDelta, len(tiles))
	for i, t := range tiles {
		ts[i] = TileDelta{
			Tile:      t.Tile,
			MemBytes:  t.MemBytes,
			UtilBits:  math.Float64bits(t.Util),
			Occupants: t.Occupants,
			InBps:     t.InBps,
			OutBps:    t.OutBps,
		}
	}
	ls := make([]LinkDelta, len(links))
	for i, l := range links {
		ls[i] = LinkDelta{Link: l.Link, Bps: l.Bps}
	}
	return ts, ls
}

// Reservations converts the event's deltas back to core plan form.
func (e *Event) Reservations() ([]core.TileReservation, []core.LinkReservation) {
	ts := make([]core.TileReservation, len(e.Tiles))
	for i, t := range e.Tiles {
		ts[i] = core.TileReservation{
			Tile:      t.Tile,
			MemBytes:  t.MemBytes,
			Util:      math.Float64frombits(t.UtilBits),
			Occupants: t.Occupants,
			InBps:     t.InBps,
			OutBps:    t.OutBps,
		}
	}
	ls := make([]core.LinkReservation, len(e.Links))
	for i, l := range e.Links {
		ls[i] = core.LinkReservation{Link: l.Link, Bps: l.Bps}
	}
	return ts, ls
}

// record is one serialized journal line: an event line (Event set), a
// batch seal (Seal set), or a segment-head snapshot (Snap set, written
// by Rotate as the first line of a new segment). Event stays a raw
// message so the hash covers the exact bytes on the wire: hashing a
// decoded-and-re-marshaled event would let any tampering that survives
// the decoder slip through — json.Unmarshal matches object keys
// case-insensitively, so a single case-flipped bit in a key name
// decodes to the identical event.
type record struct {
	Event json.RawMessage `json:"event,omitempty"`
	// Hash is the hex sha256 of the event's JSON payload bytes.
	Hash string    `json:"hash,omitempty"`
	Seal *seal     `json:"seal,omitempty"`
	Snap *snapshot `json:"snap,omitempty"`
}

// snapshot is the head record of a rotated segment: the chain seed it
// continues from (the previous segment's final seal) and the last
// sequence number assigned before the rotation. It is not hashed — its
// integrity comes from the seed itself: any tampering breaks continuity
// with the previous segment's verified chain (VerifyChain pins it), and
// the events it introduces are sealed under that seed.
type snapshot struct {
	Seed string `json:"seed"`
	Seq  uint64 `json:"seq"`
}

// seal closes one batch: N events since the previous seal, their Merkle
// root, the previous chain hash and the new chain hash
// sha256(prev ‖ root).
type seal struct {
	N     int    `json:"n"`
	Root  string `json:"root"`
	Prev  string `json:"prev"`
	Chain string `json:"chain"`
}

// genesis is the chain hash before the first seal.
var genesis = hex.EncodeToString(make([]byte, sha256.Size))

// eventHash hashes an event's JSON payload bytes exactly as written.
func eventHash(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// merkleRoot folds the record hashes into a binary Merkle root. Odd
// levels promote the last node unchanged (Bitcoin-style duplication
// admits a forged batch from a duplicated leaf; promotion does not). An
// empty batch has the zero root.
func merkleRoot(hashes []string) (string, error) {
	if len(hashes) == 0 {
		return genesis, nil
	}
	level := make([][]byte, len(hashes))
	for i, h := range hashes {
		b, err := hex.DecodeString(h)
		if err != nil || len(b) != sha256.Size {
			return "", fmt.Errorf("journal: malformed record hash %q", h)
		}
		level[i] = b
	}
	buf := make([]byte, 0, 2*sha256.Size)
	for len(level) > 1 {
		next := make([][]byte, 0, (len(level)+1)/2)
		for i := 0; i+1 < len(level); i += 2 {
			buf = append(append(buf[:0], level[i]...), level[i+1]...)
			sum := sha256.Sum256(buf)
			h := make([]byte, sha256.Size)
			copy(h, sum[:])
			next = append(next, h)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return hex.EncodeToString(level[0]), nil
}

// chainHash advances the chain over one batch root.
func chainHash(prev, root string) string {
	sum := sha256.Sum256([]byte(prev + root))
	return hex.EncodeToString(sum[:])
}

// Options tunes a Writer.
type Options struct {
	// BatchSize seals a batch after this many events (≤0 selects 64).
	BatchSize int
	// Syncer, when non-nil, is invoked after every flush that precedes
	// an acknowledgement (Sync, Flush, Close) and by the SetSyncEvery
	// periodic policy, pushing the flushed bytes to stable storage.
	// Without it, an ack only means the bytes reached the wrapped
	// io.Writer — for an *os.File that is the OS page cache, which a
	// power loss discards.
	Syncer Syncer
	// SyncEvery fsyncs after every n-th appended event even without an
	// explicit Sync call (0 = only on acks). Ignored without a Syncer.
	SyncEvery int
}

// Syncer pushes previously written bytes to stable storage. *os.File
// satisfies it; the fake syncers in the crash tests model a volatile
// page cache in front of a durable store.
type Syncer interface {
	Sync() error
}

// wmsg is one unit of work for the writer goroutine: an encoded line to
// write, an ack to close once everything queued before it has been
// flushed (and fsynced, when a Syncer is configured), a swap to a new
// segment's writer, or a combination.
type wmsg struct {
	line []byte
	ack  chan struct{}
	swap *segment
}

// segment is a rotation target: the new output writer and its syncer.
type segment struct {
	w    io.Writer
	sync Syncer
}

// Writer is the journaling sink. Append is safe for concurrent use; the
// IO runs on a dedicated goroutine so callers never block on the
// underlying writer (beyond queue backpressure). Close seals the final
// batch and flushes.
type Writer struct {
	mu      sync.Mutex
	seq     uint64
	pending []string // record hashes of the unsealed batch
	prev    string   // chain hash after the last seal
	batch   int
	msgs    chan wmsg
	done    chan struct{}
	closed  bool

	// syncEvery is the periodic-fsync policy: the writer goroutine
	// invokes the segment's Syncer after every n-th event line (0 = only
	// on acks). Atomic so SetSyncEvery works mid-stream.
	syncEvery atomic.Int64

	errMu sync.Mutex
	err   error
}

// NewWriter starts a journal writer over w. The caller keeps ownership
// of w and closes it after Writer.Close returns.
func NewWriter(w io.Writer, opts Options) *Writer {
	batch := opts.BatchSize
	if batch <= 0 {
		batch = 64
	}
	jw := &Writer{
		prev:  genesis,
		batch: batch,
		msgs:  make(chan wmsg, 1024),
		done:  make(chan struct{}),
	}
	jw.syncEvery.Store(int64(opts.SyncEvery))
	go jw.run(w, opts.Syncer)
	return jw
}

// SetSyncEvery adjusts the periodic-fsync policy: the current segment's
// Syncer runs after every n-th appended event, bounding how many events
// a crash between explicit Syncs can lose to the page cache (n ≤ 0
// fsyncs only when an ack — Sync, Flush, Close, Rotate — demands it).
// No-op without a Syncer.
func (w *Writer) SetSyncEvery(n int) {
	if n < 0 {
		n = 0
	}
	w.syncEvery.Store(int64(n))
}

// run is the writer goroutine: it drains encoded lines into a buffered
// writer, flushing when the queue goes idle or an ack is requested, and
// fsyncing through the segment's Syncer before any ack is released —
// that ordering is what lets Sync be a durability point rather than
// just a flush.
func (w *Writer) run(out io.Writer, sync Syncer) {
	defer close(w.done)
	bw := bufio.NewWriter(out)
	var sinceSync int64
	fsync := func() {
		if sync == nil {
			return
		}
		if err := sync.Sync(); err != nil {
			w.setErr(err)
		}
		sinceSync = 0
	}
	for m := range w.msgs {
		if m.swap != nil {
			// Rotation: the old segment is complete (its final seal is
			// already queued ahead of the swap), so flush and fsync it
			// before a single byte lands in the new one.
			if err := bw.Flush(); err != nil {
				w.setErr(err)
			}
			fsync()
			bw = bufio.NewWriter(m.swap.w)
			sync = m.swap.sync
			sinceSync = 0
		}
		if len(m.line) > 0 {
			if _, err := bw.Write(m.line); err != nil {
				w.setErr(err)
			}
			sinceSync++
		}
		if m.ack != nil || len(w.msgs) == 0 {
			if err := bw.Flush(); err != nil {
				w.setErr(err)
			}
		}
		if m.ack != nil {
			// An ack is a durability promise when a Syncer is configured:
			// fsync before releasing the waiter.
			fsync()
			close(m.ack)
		} else if n := w.syncEvery.Load(); n > 0 && sinceSync >= n {
			if err := bw.Flush(); err != nil {
				w.setErr(err)
			}
			fsync()
		}
	}
	if err := bw.Flush(); err != nil {
		w.setErr(err)
	}
	fsync()
}

func (w *Writer) setErr(err error) {
	w.errMu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.errMu.Unlock()
}

// Err returns the first error the writer hit, if any.
func (w *Writer) Err() error {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return w.err
}

// Append stamps the event with the next sequence number, hashes it, and
// queues it for the writer goroutine, returning the assigned sequence
// (0 after Close). Callers emitting reservation events do so while
// holding the commit's region locks, which makes journal order equal
// commit order per region — the property bit-for-bit replay depends on.
func (w *Writer) Append(e Event) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0
	}
	w.seq++
	e.Seq = w.seq
	payload, err := json.Marshal(&e)
	if err != nil {
		w.setErr(err)
		return e.Seq
	}
	hash := eventHash(payload)
	line, err := json.Marshal(record{Event: payload, Hash: hash})
	if err != nil {
		w.setErr(err)
		return e.Seq
	}
	w.msgs <- wmsg{line: append(line, '\n')}
	w.pending = append(w.pending, hash)
	if len(w.pending) >= w.batch {
		w.sealLocked()
	}
	return e.Seq
}

// sealLocked closes the current batch under w.mu.
func (w *Writer) sealLocked() {
	if len(w.pending) == 0 {
		return
	}
	root, err := merkleRoot(w.pending)
	if err != nil {
		w.setErr(err)
		return
	}
	s := seal{N: len(w.pending), Root: root, Prev: w.prev, Chain: chainHash(w.prev, root)}
	line, err := json.Marshal(record{Seal: &s})
	if err != nil {
		w.setErr(err)
		return
	}
	w.msgs <- wmsg{line: append(line, '\n')}
	w.prev = s.Chain
	w.pending = w.pending[:0]
}

// Flush seals the current batch (if any events are pending), so
// everything appended so far joins the verifiable prefix, and waits for
// the writer goroutine to push it to the underlying writer.
func (w *Writer) Flush() {
	ack := make(chan struct{})
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.sealLocked()
	w.msgs <- wmsg{ack: ack}
	w.mu.Unlock()
	<-ack
}

// Sync waits for every line queued so far to reach the underlying
// writer — and, when a Syncer is configured, stable storage: the writer
// goroutine invokes it after the flush and before the ack, so a crash
// (or power loss) after Sync returns cannot lose an acknowledged event.
// Without a Syncer the ack only covers the wrapped io.Writer, which for
// a file means the OS page cache. Sync does NOT seal the pending batch;
// the crash-simulation tests use it to materialize exactly the torn-tail
// state a real crash leaves: events on disk past the last seal,
// unprotected by the chain.
func (w *Writer) Sync() {
	ack := make(chan struct{})
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.msgs <- wmsg{ack: ack}
	w.mu.Unlock()
	<-ack
}

// Rotate seals the chain and starts a new segment: the pending batch is
// sealed into the current output, which is flushed and fsynced, and all
// subsequent lines go to next — whose first record is a snapshot head
// carrying the chain seed (the previous segment's final seal) and the
// last assigned sequence number. sync is the new segment's Syncer (nil
// = none). A rotated-away segment always ends on a seal, so replay cost
// per segment stays bounded: verify and replay the segments in order
// with VerifyChain / manager.ReplaySegments. Rotate returns once the
// old segment is durably complete; it is an error after Close.
func (w *Writer) Rotate(next io.Writer, sync Syncer) error {
	ack := make(chan struct{})
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return fmt.Errorf("journal: rotate after close")
	}
	w.sealLocked()
	head, err := json.Marshal(record{Snap: &snapshot{Seed: w.prev, Seq: w.seq}})
	if err != nil {
		w.mu.Unlock()
		w.setErr(err)
		return err
	}
	// Queue the swap and the new segment's head atomically with respect
	// to Append (both under w.mu), so no event line can slip between the
	// swap and the head record. The ack rides on the head line: when it
	// closes, the old segment is flushed+fsynced and the head is down.
	w.msgs <- wmsg{swap: &segment{w: next, sync: sync}, line: append(head, '\n'), ack: ack}
	w.mu.Unlock()
	<-ack
	return w.Err()
}

// Close seals the final batch, stops the writer goroutine and waits for
// the last bytes to flush. Append after Close is a silent no-op.
func (w *Writer) Close() error {
	w.mu.Lock()
	if !w.closed {
		w.sealLocked()
		w.closed = true
		close(w.msgs)
	}
	w.mu.Unlock()
	<-w.done
	return w.Err()
}

// Verify reads a journal stream and returns the events of every sealed
// batch, in order. The returned tail count is how many trailing events
// were appended after the last seal (a crash mid-batch); they are
// authentic-looking but unprotected, so replay must ignore them. Any
// corruption inside the sealed region — a flipped byte in an event
// payload, a wrong record hash, a broken Merkle root or chain hash, a
// seal counting the wrong number of events — is an error.
//
// A rotated segment (one starting with a snapshot head record) verifies
// standalone against its self-declared seed; use VerifyChain to pin the
// seed against the preceding segment's actual seal.
func Verify(r io.Reader) ([]Event, int, error) {
	events, tail, _, _, _, err := verifySegment(r, "", 0)
	return events, tail, err
}

// VerifyChain verifies a rotated sequence of journal segments as one
// log: each segment after the first must open with a snapshot head
// whose seed equals the previous segment's final chain hash and whose
// sequence equals the previous segment's last event — so removing,
// reordering or truncating whole segments is as detectable as flipping
// a byte inside one. A non-final segment with unsealed trailing events
// is an error (Rotate always seals before switching, so such a tail
// means the file lost bytes). The first segment must be a full history:
// it either has no snapshot head or declares the genesis seed, so a
// mid-chain segment offered alone (or with its predecessors missing) is
// rejected rather than silently replaying half the log. The returned
// events span all segments in order; the tail count is the final
// segment's.
func VerifyChain(segments ...io.Reader) ([]Event, int, error) {
	if len(segments) == 0 {
		return nil, 0, fmt.Errorf("journal: no segments")
	}
	var all []Event
	wantSeed := ""
	var wantSeq uint64
	for i, r := range segments {
		events, tail, head, endChain, endSeq, err := verifySegment(r, wantSeed, wantSeq)
		if err != nil {
			return nil, 0, fmt.Errorf("journal: segment %d: %w", i, err)
		}
		if i == 0 && head != nil && head.Seed != genesis {
			return nil, 0, fmt.Errorf("journal: segment 0: starts mid-chain (snapshot seed %.12s…, seq %d); earlier segments are missing", head.Seed, head.Seq)
		}
		if i > 0 && head == nil {
			return nil, 0, fmt.Errorf("journal: segment %d: not a rotated segment (no snapshot head)", i)
		}
		all = append(all, events...)
		if i == len(segments)-1 {
			return all, tail, nil
		}
		if tail > 0 {
			return nil, 0, fmt.Errorf("journal: segment %d: %d unsealed events before a rotation (segment truncated)", i, tail)
		}
		wantSeed, wantSeq = endChain, endSeq
	}
	return all, 0, nil // unreachable: the loop returns on the final segment
}

// verifySegment verifies one segment. wantSeed/wantSeq, when wantSeed is
// non-empty, pin the snapshot head (chain continuity across a rotation);
// empty wantSeed accepts either a genesis segment or a self-declared
// head. It returns the sealed events, the unsealed tail count, the head
// (nil for a genesis segment), and the chain hash and sequence number
// the segment ends on.
func verifySegment(r io.Reader, wantSeed string, wantSeq uint64) (
	sealed []Event, tail int, head *snapshot, endChain string, endSeq uint64, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var pendingEvents []Event
	var pendingHashes []string
	prev := genesis
	lineNo := 0
	sawRecord := false
	var lastSeq uint64
	fail := func(e error) ([]Event, int, *snapshot, string, uint64, error) {
		return nil, 0, nil, "", 0, e
	}
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			return fail(fmt.Errorf("journal: line %d: %w", lineNo, err))
		}
		switch {
		case rec.Snap != nil:
			if sawRecord {
				return fail(fmt.Errorf("journal: line %d: snapshot record not at segment head", lineNo))
			}
			if wantSeed != "" && (rec.Snap.Seed != wantSeed || rec.Snap.Seq != wantSeq) {
				return fail(fmt.Errorf("journal: line %d: rotation head (seed %s, seq %d) does not continue the previous segment (seal %s, seq %d)",
					lineNo, rec.Snap.Seed, rec.Snap.Seq, wantSeed, wantSeq))
			}
			head = rec.Snap
			prev = head.Seed
			lastSeq = head.Seq
			sawRecord = true
		case len(rec.Event) > 0:
			if hash := eventHash(rec.Event); hash != rec.Hash {
				return fail(fmt.Errorf("journal: line %d: record hash mismatch (event tampered)", lineNo))
			}
			var e Event
			if err := json.Unmarshal(rec.Event, &e); err != nil {
				return fail(fmt.Errorf("journal: line %d: %w", lineNo, err))
			}
			if e.Seq <= lastSeq {
				return fail(fmt.Errorf("journal: line %d: sequence %d not increasing (last %d)",
					lineNo, e.Seq, lastSeq))
			}
			lastSeq = e.Seq
			pendingEvents = append(pendingEvents, e)
			pendingHashes = append(pendingHashes, rec.Hash)
		case rec.Seal != nil:
			s := rec.Seal
			if s.N != len(pendingEvents) {
				return fail(fmt.Errorf("journal: line %d: seal counts %d events, batch has %d",
					lineNo, s.N, len(pendingEvents)))
			}
			if s.Prev != prev {
				return fail(fmt.Errorf("journal: line %d: chain broken (prev %s, expected %s)",
					lineNo, s.Prev, prev))
			}
			root, err := merkleRoot(pendingHashes)
			if err != nil {
				return fail(fmt.Errorf("journal: line %d: %w", lineNo, err))
			}
			if root != s.Root {
				return fail(fmt.Errorf("journal: line %d: merkle root mismatch", lineNo))
			}
			if chain := chainHash(s.Prev, s.Root); chain != s.Chain {
				return fail(fmt.Errorf("journal: line %d: chain hash mismatch", lineNo))
			}
			prev = s.Chain
			sealed = append(sealed, pendingEvents...)
			pendingEvents = pendingEvents[:0]
			pendingHashes = pendingHashes[:0]
		default:
			return fail(fmt.Errorf("journal: line %d: neither event, seal nor snapshot", lineNo))
		}
		sawRecord = true
	}
	if err := sc.Err(); err != nil {
		return fail(err)
	}
	if wantSeed != "" && head == nil && sawRecord {
		return fail(fmt.Errorf("journal: expected a rotation head continuing seal %s, found none", wantSeed))
	}
	return sealed, len(pendingEvents), head, prev, lastSeq, nil
}
