package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Recovered is the restartable state a verified journal yields: the
// sealed events to replay, the size of the discarded torn tail, and the
// chain position (final chain hash + last sealed sequence) a resumed
// writer must continue from so the next segment joins the verified log.
type Recovered struct {
	// Events is every sealed event across all segments, in order.
	Events []Event
	// Tail counts the final segment's unsealed trailing events — the
	// authentic-looking but unprotected lines a crash left, which replay
	// must ignore and recovery truncates.
	Tail int
	// Chain is the chain hash after the last seal: the seed for the next
	// segment's snapshot head.
	Chain string
	// Seq is the last sealed event's sequence number (a resumed writer
	// continues from Seq+1).
	Seq uint64
}

// Recover verifies a rotated sequence of journal segments exactly as
// VerifyChain does, but additionally returns the chain position needed
// to resume journaling after a crash: where VerifyChain answers "is
// this log intact", Recover answers "and where does the next segment
// start". The final segment may carry a torn tail (reported, not
// replayed); a non-final one may not.
func Recover(segments ...io.Reader) (Recovered, error) {
	if len(segments) == 0 {
		return Recovered{}, fmt.Errorf("journal: no segments")
	}
	var rec Recovered
	wantSeed := ""
	var wantSeq uint64
	for i, r := range segments {
		events, tail, head, endChain, endSeq, err := verifySegment(r, wantSeed, wantSeq)
		if err != nil {
			return Recovered{}, fmt.Errorf("journal: segment %d: %w", i, err)
		}
		if i == 0 && head != nil && head.Seed != genesis {
			return Recovered{}, fmt.Errorf("journal: segment 0: starts mid-chain (snapshot seed %.12s…, seq %d); earlier segments are missing", head.Seed, head.Seq)
		}
		if i > 0 && head == nil {
			return Recovered{}, fmt.Errorf("journal: segment %d: not a rotated segment (no snapshot head)", i)
		}
		rec.Events = append(rec.Events, events...)
		if i == len(segments)-1 {
			rec.Tail = tail
			rec.Chain = endChain
			switch {
			case len(rec.Events) > 0:
				rec.Seq = rec.Events[len(rec.Events)-1].Seq
			case head != nil:
				rec.Seq = head.Seq
			}
			return rec, nil
		}
		if tail > 0 {
			return Recovered{}, fmt.Errorf("journal: segment %d: %d unsealed events before a rotation (segment truncated)", i, tail)
		}
		wantSeed, wantSeq = endChain, endSeq
	}
	return rec, nil // unreachable: the loop returns on the final segment
}

// SealedPrefix scans one segment and returns the byte offset just past
// the last seal (or past the snapshot head, when nothing is sealed
// yet): truncating the file to this offset discards exactly the torn
// tail a crash left while keeping every chain-protected byte. The scan
// is purely structural — it stops at the first torn or non-JSON line —
// so run Verify (or Recover) on the truncated file afterwards; a
// corrupted sealed region still fails there.
func SealedPrefix(r io.Reader) (int64, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var off, sealed int64
	for {
		line, err := br.ReadBytes('\n')
		if len(line) > 0 {
			if line[len(line)-1] != '\n' {
				// Torn final line: the crash cut a write mid-line. Nothing
				// at or past it can be part of the sealed prefix.
				break
			}
			trimmed := bytes.TrimSpace(line)
			if len(trimmed) > 0 {
				var rec record
				if json.Unmarshal(trimmed, &rec) != nil {
					break
				}
				off += int64(len(line))
				if rec.Seal != nil || rec.Snap != nil {
					sealed = off
				}
				continue
			}
			off += int64(len(line))
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
	}
	return sealed, nil
}

// NewResumedWriter starts a journal writer that continues a recovered
// chain in a fresh segment: the first record written is a snapshot head
// declaring the seed (the recovered final chain hash) and the last
// sealed sequence number, exactly as Rotate would have written it — so
// VerifyChain over the old segments plus the new one still verifies end
// to end. chain may be empty to start a genesis log (equivalent to
// NewWriter plus a redundant head). The caller keeps ownership of w.
func NewResumedWriter(w io.Writer, chain string, seq uint64, opts Options) (*Writer, error) {
	if chain == "" {
		chain = genesis
	}
	head, err := json.Marshal(record{Snap: &snapshot{Seed: chain, Seq: seq}})
	if err != nil {
		return nil, err
	}
	batch := opts.BatchSize
	if batch <= 0 {
		batch = 64
	}
	jw := &Writer{
		prev:  chain,
		seq:   seq,
		batch: batch,
		msgs:  make(chan wmsg, 1024),
		done:  make(chan struct{}),
	}
	jw.syncEvery.Store(int64(opts.SyncEvery))
	go jw.run(w, opts.Syncer)
	jw.msgs <- wmsg{line: append(head, '\n')}
	return jw, nil
}

// SegmentPaths lists the on-disk segments of a journal rooted at base,
// oldest first: base itself, then the restart segments base.r1, base.r2,
// … that successive crash recoveries opened. The list stops at the
// first gap; a missing base returns nil.
func SegmentPaths(base string) []string {
	var paths []string
	if _, err := os.Stat(base); err != nil {
		return nil
	}
	paths = append(paths, base)
	for i := 1; ; i++ {
		p := fmt.Sprintf("%s.r%d", base, i)
		if _, err := os.Stat(p); err != nil {
			break
		}
		paths = append(paths, p)
	}
	return paths
}

// NextSegmentPath names the restart segment a recovery should open
// after the given existing segments: base.r1 after just base, base.r2
// after that, and so on.
func NextSegmentPath(base string, existing int) string {
	return fmt.Sprintf("%s.r%d", base, existing)
}

// RecoverFiles is crash recovery over on-disk segments: the final
// segment is truncated in place to its sealed prefix (discarding the
// torn tail), then the whole chain is verified and the restartable
// state returned. After it succeeds, resume journaling with
// NewResumedWriter into NextSegmentPath and replay Recovered.Events
// into a pristine platform (manager.ReplayEvents) before serving.
func RecoverFiles(paths ...string) (Recovered, error) {
	if len(paths) == 0 {
		return Recovered{}, fmt.Errorf("journal: no segment files")
	}
	last := paths[len(paths)-1]
	f, err := os.Open(last)
	if err != nil {
		return Recovered{}, fmt.Errorf("journal: recover: %w", err)
	}
	prefix, err := SealedPrefix(f)
	f.Close()
	if err != nil {
		return Recovered{}, fmt.Errorf("journal: recover %s: %w", last, err)
	}
	if fi, err := os.Stat(last); err == nil && prefix < fi.Size() {
		if err := os.Truncate(last, prefix); err != nil {
			return Recovered{}, fmt.Errorf("journal: recover %s: %w", last, err)
		}
	}
	files := make([]io.Reader, 0, len(paths))
	defer func() {
		for _, r := range files {
			r.(*os.File).Close()
		}
	}()
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return Recovered{}, fmt.Errorf("journal: recover: %w", err)
		}
		files = append(files, f)
	}
	rec, err := Recover(files...)
	if err != nil {
		return Recovered{}, err
	}
	// The truncation already removed the tail; a nonzero count here
	// would mean SealedPrefix and verifySegment disagree on structure.
	if rec.Tail != 0 {
		return Recovered{}, fmt.Errorf("journal: recover %s: %d unsealed events survived truncation", last, rec.Tail)
	}
	return rec, nil
}
