package workload

import (
	"testing"

	"rtsm/internal/arch"
)

// TestFigure2LayoutDerivation re-derives the tile placement used by
// Hiperlan2Platform, making the EXPERIMENTS.md claim reproducible inside
// the repository: with A/D and Sink fixed at the figure's left-column
// positions, exactly three placements of the four processing tiles make
// the paper's Table 2 cost sequence (11, 11, 9, 7) come out, and the
// platform uses one of them.
func TestFigure2LayoutDerivation(t *testing.T) {
	var cells []arch.Point
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			cells = append(cells, arch.Pt(x, y))
		}
	}
	ad := arch.Pt(0, 2)
	sink := arch.Pt(0, 1)
	// Cost of the receiver chain A/D → Pfx → Frq → iOFDM → Rem → Sink
	// under a placement, as the plain sum of Manhattan distances.
	cost := func(pfx, frq, io, rem arch.Point) int {
		return ad.Manhattan(pfx) + pfx.Manhattan(frq) + frq.Manhattan(io) +
			io.Manhattan(rem) + rem.Manhattan(sink)
	}
	type layout struct{ a1, a2, m1, m2 arch.Point }
	var solutions []layout
	used := func(p arch.Point, taken ...arch.Point) bool {
		if p == ad || p == sink {
			return true
		}
		for _, q := range taken {
			if p == q {
				return true
			}
		}
		return false
	}
	for _, a1 := range cells {
		if used(a1) {
			continue
		}
		for _, a2 := range cells {
			if used(a2, a1) {
				continue
			}
			for _, m1 := range cells {
				if used(m1, a1, a2) {
					continue
				}
				for _, m2 := range cells {
					if used(m2, a1, a2, m1) {
						continue
					}
					// Table 2's four configurations: initial greedy
					// (Pfx@ARM1, Frq@ARM2, iOFDM@M1, Rem@M2), the
					// rejected ARM swap, the kept Montium swap, and the
					// kept ARM swap.
					if cost(a1, a2, m1, m2) == 11 &&
						cost(a2, a1, m1, m2) == 11 &&
						cost(a1, a2, m2, m1) == 9 &&
						cost(a2, a1, m2, m1) == 7 {
						solutions = append(solutions, layout{a1, a2, m1, m2})
					}
				}
			}
		}
	}
	if len(solutions) != 3 {
		t.Fatalf("found %d layouts matching Table 2, want 3 (see EXPERIMENTS.md §E3)", len(solutions))
	}
	// The platform must use one of them.
	p := Hiperlan2Platform()
	got := layout{
		a1: p.Pos(p.TileByName("ARM1").ID),
		a2: p.Pos(p.TileByName("ARM2").ID),
		m1: p.Pos(p.TileByName("MONTIUM1").ID),
		m2: p.Pos(p.TileByName("MONTIUM2").ID),
	}
	if p.Pos(p.TileByName("A/D").ID) != ad || p.Pos(p.TileByName("Sink").ID) != sink {
		t.Fatal("A/D or Sink moved off the figure's positions")
	}
	for _, s := range solutions {
		if s == got {
			return
		}
	}
	t.Fatalf("platform layout %+v is not among the Table 2-consistent solutions %+v", got, solutions)
}
