package workload

import (
	"fmt"
	"math/rand"

	"rtsm/internal/arch"
	"rtsm/internal/csdf"
	"rtsm/internal/model"
)

// Shape selects the topology of a synthetic streaming application. The
// paper's §5 calls for "synthetic cases based on the class of applications
// that can reasonably be expected for MPSOCs": linear DSP pipelines,
// fork-join parallel stages, and irregular layered task graphs.
type Shape string

const (
	// ShapeChain is a linear pipeline src → p1 → … → pn → sink, the shape
	// of baseband receivers like the HIPERLAN/2 case.
	ShapeChain Shape = "chain"
	// ShapeForkJoin is src → split → k parallel branches → join → sink,
	// the shape of block-parallel codecs.
	ShapeForkJoin Shape = "forkjoin"
	// ShapeLayered is a random DAG organised in layers with every node
	// connected forward, the irregular case.
	ShapeLayered Shape = "layered"
)

// SynthOptions parameterises the generator. Identical options produce the
// identical application and library: everything derives from Seed.
type SynthOptions struct {
	Shape     Shape
	Processes int // number of mappable processes (≥1)
	Seed      int64
	PeriodNs  int64 // 0 = the HIPERLAN/2 symbol period
	// MaxUtil bounds each generated implementation's utilisation of a
	// 200 MHz tile (0 = 0.35), keeping instances feasible by
	// construction.
	MaxUtil float64
	// SrcTile and SinkTile name the tiles the application's stream
	// endpoints are pinned to (empty = "SRC0" / "SINK0", the endpoints
	// SyntheticPlatform provides). Region-sharded scenarios pin arrivals
	// to the per-region endpoints of SyntheticRegionPlatform instead, so
	// admissions land in disjoint mesh regions.
	SrcTile  string
	SinkTile string
	// Priority tags the generated application's admission QoS class
	// (app.QoS.Priority). It changes nothing about the generated
	// structure — the mapper is priority-blind — only how the manager
	// queues the arrival and whether it may preempt when the mesh is
	// full. Zero is BestEffort, the pre-priority behaviour.
	Priority model.Priority
}

// synthTypes is the tile-type pool synthetic implementations draw from.
var synthTypes = []arch.TileType{arch.TypeARM, arch.TypeMontium, arch.TypeDSP}

// Synthetic generates a random streaming application plus a matching
// implementation library. The application's source and sink are pinned to
// the tiles named "SRC0" and "SINK0", which SyntheticPlatform provides.
func Synthetic(opts SynthOptions) (*model.Application, *model.Library) {
	if opts.Processes < 1 {
		panic("workload: synthetic application needs at least one process")
	}
	if opts.PeriodNs == 0 {
		opts.PeriodNs = Hiperlan2SymbolPeriodNs
	}
	if opts.MaxUtil == 0 {
		opts.MaxUtil = 0.35
	}
	if opts.Shape == "" {
		opts.Shape = ShapeChain
	}
	if opts.SrcTile == "" {
		opts.SrcTile = "SRC0"
	}
	if opts.SinkTile == "" {
		opts.SinkTile = "SINK0"
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	app := model.NewApplication(
		fmt.Sprintf("synthetic-%s-%d-seed%d", opts.Shape, opts.Processes, opts.Seed),
		model.QoS{PeriodNs: opts.PeriodNs, Priority: opts.Priority})
	src := app.AddPinnedProcess("src", opts.SrcTile)
	sink := app.AddPinnedProcess("sink", opts.SinkTile)
	procs := make([]*model.Process, opts.Processes)
	for i := range procs {
		procs[i] = app.AddProcess(fmt.Sprintf("p%d", i))
	}
	tokens := func() int64 { return int64(16 + rng.Intn(113)) }

	type port struct{ in, out int }
	ports := make(map[model.ProcessID]*port)
	connect := func(a, b *model.Process) {
		pa := ports[a.ID]
		if pa == nil {
			pa = &port{}
			ports[a.ID] = pa
		}
		pb := ports[b.ID]
		if pb == nil {
			pb = &port{}
			ports[b.ID] = pb
		}
		app.ConnectPorts(a, fmt.Sprintf("out%d", pa.out), b, fmt.Sprintf("in%d", pb.in), tokens(), 4)
		pa.out++
		pb.in++
	}

	switch opts.Shape {
	case ShapeForkJoin:
		n := opts.Processes
		if n < 3 {
			// Too small to fork: fall back to a chain.
			chainUp(connect, src, sink, procs)
			break
		}
		split := procs[0]
		join := procs[n-1]
		connect(src, split)
		for _, p := range procs[1 : n-1] {
			connect(split, p)
			connect(p, join)
		}
		connect(join, sink)
	case ShapeLayered:
		n := opts.Processes
		if n < 3 {
			chainUp(connect, src, sink, procs)
			break
		}
		// Partition processes into layers of random width 1..3.
		var layers [][]*model.Process
		for i := 0; i < n; {
			w := 1 + rng.Intn(3)
			if i+w > n {
				w = n - i
			}
			layers = append(layers, procs[i:i+w])
			i += w
		}
		for _, p := range layers[0] {
			connect(src, p)
		}
		for li := 1; li < len(layers); li++ {
			prev, cur := layers[li-1], layers[li]
			// Every node gets at least one forward edge in and out.
			for _, p := range cur {
				connect(prev[rng.Intn(len(prev))], p)
			}
			for _, q := range prev {
				if ports[q.ID].out == 0 {
					connect(q, cur[rng.Intn(len(cur))])
				}
			}
		}
		for _, p := range layers[len(layers)-1] {
			connect(p, sink)
		}
		// Drain any interior node that still lacks an outgoing edge.
		for _, p := range procs {
			if ports[p.ID].out == 0 {
				connect(p, sink)
			}
		}
	default: // ShapeChain
		chainUp(connect, src, sink, procs)
	}

	lib := model.NewLibrary()
	for _, p := range procs {
		addSyntheticImpls(lib, app, p, rng, opts)
	}
	return app, lib
}

func chainUp(connect func(a, b *model.Process), src, sink *model.Process, procs []*model.Process) {
	prev := src
	for _, p := range procs {
		connect(prev, p)
		prev = p
	}
	connect(prev, sink)
}

// addSyntheticImpls gives the process one implementation per tile type in
// a random non-empty subset of the pool. Phase structure is
// read-inputs / compute / write-outputs; rates match the process's
// channels exactly (each channel transfers its full token count in its
// dedicated phase), so every process fires once per period.
func addSyntheticImpls(lib *model.Library, app *model.Application, p *model.Process, rng *rand.Rand, opts SynthOptions) {
	var ins, outs []*model.Channel
	for _, c := range app.ChannelsOf(p.ID) {
		if c.Dst == p.ID {
			ins = append(ins, c)
		} else {
			outs = append(outs, c)
		}
	}
	phases := len(ins) + 1 + len(outs)

	// Cycle budget at the 200 MHz reference clock.
	budget := opts.PeriodNs * 200 / 1000
	maxCycles := int64(float64(budget) * opts.MaxUtil)
	if maxCycles < int64(phases)+1 {
		maxCycles = int64(phases) + 1
	}
	baseCompute := int64(phases) + rng.Int63n(maxCycles-int64(phases))

	n := 1 + rng.Intn(len(synthTypes))
	order := rng.Perm(len(synthTypes))
	for k := 0; k < n; k++ {
		tt := synthTypes[order[k]]
		// Type efficiency: the Montium is fastest and cheapest, the ARM
		// slowest and most energy-hungry, mirroring Table 1's spread.
		var speed, joule float64
		switch tt {
		case arch.TypeMontium:
			speed, joule = 0.5, 1.0
		case arch.TypeDSP:
			speed, joule = 0.75, 1.6
		default:
			speed, joule = 1.0, 2.2
		}
		compute := int64(float64(baseCompute)*speed) + 1
		if compute > maxCycles {
			compute = maxCycles
		}
		wcet := make(csdf.Pattern, phases)
		in := make(map[string]csdf.Pattern, len(ins))
		out := make(map[string]csdf.Pattern, len(outs))
		for i, c := range ins {
			wcet[i] = 1 + c.TokensPerPeriod/8
			pat := make(csdf.Pattern, phases)
			pat[i] = c.TokensPerPeriod
			in[c.DstPort] = pat
		}
		wcet[len(ins)] = compute
		for j, c := range outs {
			idx := len(ins) + 1 + j
			wcet[idx] = 1 + c.TokensPerPeriod/8
			pat := make(csdf.Pattern, phases)
			pat[idx] = c.TokensPerPeriod
			out[c.SrcPort] = pat
		}
		lib.Add(&model.Implementation{
			Process:         p.Name,
			TileType:        tt,
			WCET:            wcet,
			In:              in,
			Out:             out,
			EnergyPerPeriod: float64(compute) * joule * 0.5,
			MemBytes:        1024 + rng.Int63n(4096),
		})
	}
}

// SyntheticPlatform builds a w×h mesh with one processing tile per router
// (types cycling through a seeded shuffle of ARM, Montium and DSP), plus
// the pinned stream endpoints SRC0 (bottom-left router) and SINK0
// (top-right router). Montium tiles hold one kernel at a time.
func SyntheticPlatform(w, h int, seed int64) *arch.Platform {
	p := SyntheticPlatformWithoutEndpoints(w, h, seed)
	p.AttachTile(arch.TileSpec{
		Name: "SRC0", Type: arch.TypeSource, At: arch.Pt(0, h-1),
		ClockHz: 200_000_000, MemBytes: 64 << 10, NICapBps: 800_000_000,
	})
	p.AttachTile(arch.TileSpec{
		Name: "SINK0", Type: arch.TypeSink, At: arch.Pt(w-1, 0),
		ClockHz: 200_000_000, MemBytes: 64 << 10, NICapBps: 800_000_000,
	})
	return p
}

// SyntheticRegionPlatform builds the same mesh as SyntheticPlatform but
// partitioned into square regions of the given side length, with one
// stream-source and one stream-sink tile per region: "SRC<r>" at the
// region's bottom-left router and "SINK<r>" at its top-right. An
// application pinned to region r's endpoints (SynthOptions.SrcTile /
// SinkTile) keeps its whole reservation footprint inside that region —
// minimal routes between two routers of a rectangle stay inside it — so
// arrivals pinned to different regions commit against disjoint region
// locks. regionSize ≤ 0 or covering the whole mesh yields the
// single-region platform (endpoints then match SyntheticPlatform's
// SRC0/SINK0 placement).
func SyntheticRegionPlatform(w, h int, seed int64, regionSize int) *arch.Platform {
	p := SyntheticPlatformWithoutEndpoints(w, h, seed)
	p.PartitionRegions(regionSize)
	for _, reg := range p.Regions() {
		p.AttachTile(arch.TileSpec{
			Name: fmt.Sprintf("SRC%d", reg.ID), Type: arch.TypeSource, At: arch.Pt(reg.X0, reg.Y1),
			ClockHz: 200_000_000, MemBytes: 64 << 10, NICapBps: 800_000_000,
		})
		p.AttachTile(arch.TileSpec{
			Name: fmt.Sprintf("SINK%d", reg.ID), Type: arch.TypeSink, At: arch.Pt(reg.X1, reg.Y0),
			ClockHz: 200_000_000, MemBytes: 64 << 10, NICapBps: 800_000_000,
		})
	}
	return p
}

// SyntheticPlatformWithoutEndpoints is SyntheticPlatform minus the
// SRC0/SINK0 tiles, for callers that attach their own stream endpoints.
// The processing-tile layout is identical for identical seeds.
func SyntheticPlatformWithoutEndpoints(w, h int, seed int64) *arch.Platform {
	rng := rand.New(rand.NewSource(seed))
	p := arch.NewMesh(fmt.Sprintf("synthetic-%dx%d-seed%d", w, h, seed), w, h, 800_000_000)
	i := 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			tt := synthTypes[rng.Intn(len(synthTypes))]
			spec := arch.TileSpec{
				Name:     fmt.Sprintf("%s%d", tt, i),
				Type:     tt,
				At:       arch.Pt(x, y),
				ClockHz:  200_000_000,
				NICapBps: 800_000_000,
			}
			switch tt {
			case arch.TypeMontium:
				spec.MemBytes = 16 << 10
				spec.MaxOccupants = 1
			case arch.TypeDSP:
				spec.MemBytes = 32 << 10
			default:
				spec.MemBytes = 64 << 10
			}
			p.AttachTile(spec)
			i++
		}
	}
	return p
}
