package workload

import (
	"bytes"
	"testing"

	"rtsm/internal/arch"
)

func TestHiperlan2Application(t *testing.T) {
	app := Hiperlan2(Hiperlan2Modes[0])
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(app.MappableProcesses()); got != 4 {
		t.Errorf("mappable processes = %d, want 4", got)
	}
	// Figure 1 edge token counts.
	want := map[string]int64{
		"A/D→Pfx.rem.":      80,
		"Pfx.rem.→Frq.off.": 64,
		"Frq.off.→Inv.OFDM": 64,
		"Inv.OFDM→Rem.":     52,
		"Rem.→Sink":         2, // BPSK1/2: b = 2
	}
	stream := app.StreamChannels()
	if len(stream) != 5 {
		t.Fatalf("stream channels = %d, want 5", len(stream))
	}
	for _, c := range stream {
		if c.TokensPerPeriod != want[c.Name] {
			t.Errorf("%s carries %d tokens, want %d", c.Name, c.TokensPerPeriod, want[c.Name])
		}
	}
	if app.QoS.PeriodNs != 4000 {
		t.Errorf("period = %d ns, want 4000 (one symbol per 4 µs)", app.QoS.PeriodNs)
	}
}

func TestHiperlan2ModesSpanPaperRange(t *testing.T) {
	if len(Hiperlan2Modes) != 7 {
		t.Fatalf("modes = %d, want 7 (the standard defines seven)", len(Hiperlan2Modes))
	}
	if Hiperlan2Modes[0].DemapBits != 2 {
		t.Errorf("minimum b = %d, want 2 (BPSK)", Hiperlan2Modes[0].DemapBits)
	}
	if Hiperlan2Modes[6].DemapBits != 64 {
		t.Errorf("maximum b = %d, want 64 (QAM64)", Hiperlan2Modes[6].DemapBits)
	}
}

func TestHiperlan2LibraryMatchesTable1(t *testing.T) {
	lib := Hiperlan2Library(Hiperlan2Modes[3])
	// Every process has exactly an ARM and a Montium implementation.
	for _, proc := range []string{"Pfx.rem.", "Frq.off.", "Inv.OFDM", "Rem."} {
		ims := lib.For(proc)
		if len(ims) != 2 {
			t.Fatalf("%s has %d implementations, want 2", proc, len(ims))
		}
		if lib.ForType(proc, arch.TypeARM) == nil || lib.ForType(proc, arch.TypeMontium) == nil {
			t.Errorf("%s missing a tile type", proc)
		}
	}
	// Table 1 energies.
	wantE := map[string][2]float64{
		"Pfx.rem.": {60, 32}, "Frq.off.": {62, 33},
		"Inv.OFDM": {275, 143}, "Rem.": {140, 76},
	}
	for proc, w := range wantE {
		if got := lib.ForType(proc, arch.TypeARM).EnergyPerPeriod; got != w[0] {
			t.Errorf("%s ARM energy = %v, want %v", proc, got, w[0])
		}
		if got := lib.ForType(proc, arch.TypeMontium).EnergyPerPeriod; got != w[1] {
			t.Errorf("%s Montium energy = %v, want %v", proc, got, w[1])
		}
	}
	// Table 1 WCET shapes: the Montium inverse OFDM is ⟨1^64, 170, 1^52⟩.
	ofdm := lib.ForType("Inv.OFDM", arch.TypeMontium)
	if got := ofdm.WCET.String(); got != "⟨1^64, 170, 1^52⟩" {
		t.Errorf("Inv.OFDM Montium WCET = %s", got)
	}
	if got := ofdm.WCET.Sum(); got != 286 {
		t.Errorf("Inv.OFDM Montium cycles = %d, want 286", got)
	}
	// The ARM prefix removal reads 80 and writes 64 tokens per cycle.
	pfx := lib.ForType("Pfx.rem.", arch.TypeARM)
	if got := pfx.In["in"].Sum(); got != 80 {
		t.Errorf("Pfx ARM consumes %d per cycle, want 80", got)
	}
	if got := pfx.Out["out"].Sum(); got != 64 {
		t.Errorf("Pfx ARM produces %d per cycle, want 64", got)
	}
	// Mode dependence: the Montium remainder's compute phase is 73−b.
	for _, mode := range Hiperlan2Modes {
		rem := Hiperlan2Library(mode).ForType("Rem.", arch.TypeMontium)
		if err := rem.Validate(); err != nil {
			t.Errorf("%s: %v", mode.Name, err)
		}
		if got := rem.WCET[52]; got != 73-mode.DemapBits {
			t.Errorf("%s: compute phase = %d, want %d", mode.Name, got, 73-mode.DemapBits)
		}
	}
}

func TestHiperlan2PlatformMatchesFigure2(t *testing.T) {
	p := Hiperlan2Platform()
	if p.Width != 3 || p.Height != 3 {
		t.Fatalf("mesh = %d×%d, want 3×3", p.Width, p.Height)
	}
	for _, name := range []string{"ARM1", "ARM2", "MONTIUM1", "MONTIUM2", "A/D", "Sink"} {
		if p.TileByName(name) == nil {
			t.Errorf("missing tile %q", name)
		}
	}
	// Montiums hold one kernel at a time.
	for _, m := range p.TilesOfType(arch.TypeMontium) {
		if m.MaxOccupants != 1 {
			t.Errorf("%s MaxOccupants = %d, want 1", m.Name, m.MaxOccupants)
		}
	}
	// Declaration order drives first-fit: ARMs before Montiums, 1 before 2.
	names := []string{p.Tiles[0].Name, p.Tiles[1].Name, p.Tiles[2].Name, p.Tiles[3].Name}
	want := []string{"ARM1", "ARM2", "MONTIUM1", "MONTIUM2"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("tile order %v, want %v", names, want)
		}
	}
}

func TestSyntheticShapes(t *testing.T) {
	for _, shape := range []Shape{ShapeChain, ShapeForkJoin, ShapeLayered} {
		app, lib := Synthetic(SynthOptions{Shape: shape, Processes: 8, Seed: 42})
		if err := app.Validate(); err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		if got := len(app.MappableProcesses()); got != 8 {
			t.Errorf("%s: mappable = %d, want 8", shape, got)
		}
		for _, p := range app.MappableProcesses() {
			ims := lib.For(p.Name)
			if len(ims) == 0 {
				t.Errorf("%s: %s has no implementations", shape, p.Name)
			}
			for _, im := range ims {
				if err := im.Validate(); err != nil {
					t.Errorf("%s: %v", shape, err)
				}
				if _, err := im.CyclesPerPeriod(app, p); err != nil {
					t.Errorf("%s: %s: %v", shape, im, err)
				}
			}
		}
		// Every interior process must have at least one input and one
		// output so the stream flows end to end.
		for _, p := range app.MappableProcesses() {
			var in, out int
			for _, c := range app.ChannelsOf(p.ID) {
				if c.Dst == p.ID {
					in++
				} else {
					out++
				}
			}
			if in == 0 || out == 0 {
				t.Errorf("%s: %s has in=%d out=%d", shape, p.Name, in, out)
			}
		}
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	a1, l1 := Synthetic(SynthOptions{Shape: ShapeLayered, Processes: 10, Seed: 7})
	a2, l2 := Synthetic(SynthOptions{Shape: ShapeLayered, Processes: 10, Seed: 7})
	if len(a1.Channels) != len(a2.Channels) {
		t.Fatal("same seed, different channel count")
	}
	for i := range a1.Channels {
		if a1.Channels[i].TokensPerPeriod != a2.Channels[i].TokensPerPeriod {
			t.Fatal("same seed, different token counts")
		}
	}
	for _, p := range a1.MappableProcesses() {
		if len(l1.For(p.Name)) != len(l2.For(p.Name)) {
			t.Fatal("same seed, different library")
		}
	}
	a3, _ := Synthetic(SynthOptions{Shape: ShapeLayered, Processes: 10, Seed: 8})
	same := true
	for i := range a1.Channels {
		if i >= len(a3.Channels) || a1.Channels[i].TokensPerPeriod != a3.Channels[i].TokensPerPeriod {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical token streams")
	}
}

func TestSyntheticPlatform(t *testing.T) {
	p := SyntheticPlatform(4, 3, 1)
	if got := len(p.Tiles); got != 14 { // 12 processing + SRC0 + SINK0
		t.Fatalf("tiles = %d, want 14", got)
	}
	if p.TileByName("SRC0") == nil || p.TileByName("SINK0") == nil {
		t.Fatal("missing pinned endpoints")
	}
	for _, tile := range p.Tiles {
		if tile.Type == arch.TypeMontium && tile.MaxOccupants != 1 {
			t.Errorf("%s: Montium must hold one kernel", tile.Name)
		}
	}
}

func TestSyntheticUtilisationBounded(t *testing.T) {
	// Property: generated implementations stay below the configured
	// utilisation bound on the 200 MHz reference tile, so instances are
	// feasible by construction.
	app, lib := Synthetic(SynthOptions{Shape: ShapeChain, Processes: 12, Seed: 99, MaxUtil: 0.3})
	budget := app.QoS.PeriodNs * 200 / 1000
	for _, p := range app.MappableProcesses() {
		for _, im := range lib.For(p.Name) {
			cyc, err := im.CyclesPerPeriod(app, p)
			if err != nil {
				t.Fatal(err)
			}
			util := float64(cyc) / float64(budget)
			if util > 0.5 { // compute bound 0.3 plus I/O phases
				t.Errorf("%s: utilisation %.2f too high", im, util)
			}
		}
	}
}

func TestBundleRoundTrip(t *testing.T) {
	mode := Hiperlan2Modes[2]
	app := Hiperlan2(mode)
	lib := Hiperlan2Library(mode)
	plat := Hiperlan2Platform()
	var buf bytes.Buffer
	if err := NewBundle(app, lib, plat).Write(&buf); err != nil {
		t.Fatal(err)
	}
	app2, lib2, plat2, err := ReadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if app2.Name != app.Name || len(app2.Channels) != len(app.Channels) {
		t.Error("application lost in round trip")
	}
	for _, p := range app.MappableProcesses() {
		if len(lib2.For(p.Name)) != len(lib.For(p.Name)) {
			t.Errorf("library entries for %q lost", p.Name)
		}
	}
	if len(plat2.Tiles) != len(plat.Tiles) || plat2.Width != plat.Width {
		t.Error("platform lost in round trip")
	}
	if plat2.TileByName("MONTIUM1").MaxOccupants != 1 {
		t.Error("occupancy limit lost in round trip")
	}
}

func TestSpecOfRejectsBadBuild(t *testing.T) {
	s := PlatformSpec{Name: "bad", Width: 0, Height: 2, LinkCapBps: 1}
	if _, err := s.Build(); err == nil {
		t.Error("zero-width platform accepted")
	}
	s = PlatformSpec{Name: "bad2", Width: 2, Height: 2, LinkCapBps: 1,
		Tiles: []arch.TileSpec{{Name: "t", Type: arch.TypeARM, At: arch.Pt(5, 5)}}}
	if _, err := s.Build(); err == nil {
		t.Error("out-of-mesh tile accepted")
	}
}
