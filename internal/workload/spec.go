package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"rtsm/internal/arch"
	"rtsm/internal/model"
)

// PlatformSpec is the JSON-serialisable description of an MPSoC.
type PlatformSpec struct {
	Name       string          `json:"name"`
	Width      int             `json:"width"`
	Height     int             `json:"height"`
	LinkCapBps int64           `json:"linkCapBps"`
	NoCClockHz int64           `json:"nocClockHz,omitempty"`
	Tiles      []arch.TileSpec `json:"tiles"`
}

// Build instantiates the platform.
func (s *PlatformSpec) Build() (*arch.Platform, error) {
	if s.Width <= 0 || s.Height <= 0 {
		return nil, fmt.Errorf("workload: platform %q has invalid dimensions %d×%d", s.Name, s.Width, s.Height)
	}
	p := arch.NewMesh(s.Name, s.Width, s.Height, s.LinkCapBps)
	if s.NoCClockHz > 0 {
		p.NoCClockHz = s.NoCClockHz
	}
	for _, ts := range s.Tiles {
		if ts.At.X < 0 || ts.At.X >= s.Width || ts.At.Y < 0 || ts.At.Y >= s.Height {
			return nil, fmt.Errorf("workload: tile %q at %v outside the %d×%d mesh", ts.Name, ts.At, s.Width, s.Height)
		}
		p.AttachTile(ts)
	}
	return p, nil
}

// SpecOf extracts the serialisable description from a platform.
func SpecOf(p *arch.Platform) PlatformSpec {
	s := PlatformSpec{
		Name:       p.Name,
		Width:      p.Width,
		Height:     p.Height,
		NoCClockHz: p.NoCClockHz,
	}
	if len(p.Links) > 0 {
		s.LinkCapBps = p.Links[0].CapBps
	}
	for _, t := range p.Tiles {
		s.Tiles = append(s.Tiles, arch.TileSpec{
			Name:         t.Name,
			Type:         t.Type,
			At:           p.Routers[t.Router].Pos,
			ClockHz:      t.ClockHz,
			MemBytes:     t.MemBytes,
			NICapBps:     t.NICapBps,
			MaxOccupants: t.MaxOccupants,
		})
	}
	return s
}

// Bundle packages everything one mapping run needs, for file-based use by
// cmd/spatialmap and cmd/benchgen.
type Bundle struct {
	Application     *model.Application      `json:"application"`
	Implementations []*model.Implementation `json:"implementations"`
	Platform        PlatformSpec            `json:"platform"`
}

// NewBundle assembles a bundle from in-memory objects.
func NewBundle(app *model.Application, lib *model.Library, plat *arch.Platform) *Bundle {
	b := &Bundle{Application: app, Platform: SpecOf(plat)}
	seen := make(map[*model.Implementation]bool)
	for _, p := range app.Processes {
		for _, im := range lib.For(p.Name) {
			if !seen[im] {
				seen[im] = true
				b.Implementations = append(b.Implementations, im)
			}
		}
	}
	return b
}

// Write serialises the bundle as indented JSON.
func (b *Bundle) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBundle parses and validates a bundle, returning ready-to-map
// objects.
func ReadBundle(r io.Reader) (*model.Application, *model.Library, *arch.Platform, error) {
	var b Bundle
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, nil, nil, fmt.Errorf("workload: parsing bundle: %w", err)
	}
	if b.Application == nil {
		return nil, nil, nil, fmt.Errorf("workload: bundle has no application")
	}
	if err := b.Application.Rebind(); err != nil {
		return nil, nil, nil, err
	}
	lib := model.NewLibrary()
	for _, im := range b.Implementations {
		if err := im.Validate(); err != nil {
			return nil, nil, nil, err
		}
		lib.Add(im)
	}
	plat, err := b.Platform.Build()
	if err != nil {
		return nil, nil, nil, err
	}
	return b.Application, lib, plat, nil
}
