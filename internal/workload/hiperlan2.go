// Package workload provides the applications and platforms the
// experiments run on: the paper's HIPERLAN/2 receiver case study (§4) and
// synthetic benchmark generators answering the paper's call for benchmark
// suites (§5).
package workload

import (
	"fmt"

	"rtsm/internal/arch"
	"rtsm/internal/csdf"
	"rtsm/internal/model"
)

// Hiperlan2Mode is one of the seven demapping modes of the HIPERLAN/2
// standard (paper §4.1). DemapBits is the paper's parameter b: the output
// token count of the Remainder process per OFDM symbol, between 2 (BPSK)
// and 64 (QAM64).
type Hiperlan2Mode struct {
	Name      string
	DemapBits int64
}

// Hiperlan2Modes lists the seven standard modes in increasing output rate.
var Hiperlan2Modes = []Hiperlan2Mode{
	{Name: "BPSK1/2", DemapBits: 2},
	{Name: "BPSK3/4", DemapBits: 4},
	{Name: "QPSK1/2", DemapBits: 8},
	{Name: "QPSK3/4", DemapBits: 16},
	{Name: "16QAM9/16", DemapBits: 24},
	{Name: "16QAM3/4", DemapBits: 48},
	{Name: "64QAM3/4", DemapBits: 64},
}

// Hiperlan2SymbolPeriodNs is the OFDM symbol period: "One OFDM symbol is
// fed into the application once every 4µs" (§4.1).
const Hiperlan2SymbolPeriodNs = 4000

// Hiperlan2 builds the receiver application of the paper's Figure 1 for
// the given mode: the A/D source, the four data processes (prefix removal,
// frequency-offset correction, inverse OFDM, and the grouped remainder),
// the sink, and the control process. Edge token counts are the figure's
// per-symbol sample counts; tokens are 32-bit complex samples (4 bytes).
func Hiperlan2(mode Hiperlan2Mode) *model.Application {
	app := model.NewApplication(fmt.Sprintf("hiperlan2-%s", mode.Name),
		model.QoS{PeriodNs: Hiperlan2SymbolPeriodNs})
	ad := app.AddPinnedProcess("A/D", "A/D")
	pfx := app.AddProcess("Pfx.rem.")
	frq := app.AddProcess("Frq.off.")
	ofdm := app.AddProcess("Inv.OFDM")
	rem := app.AddProcess("Rem.")
	sink := app.AddPinnedProcess("Sink", "Sink")
	ctrl := app.AddControlProcess("CTRL")

	app.Connect(ad, pfx, 80, 4)
	app.Connect(pfx, frq, 64, 4)
	app.Connect(frq, ofdm, 64, 4)
	app.Connect(ofdm, rem, 52, 4)
	app.Connect(rem, sink, mode.DemapBits, 4)
	// The control part selects the demapping type at frame starts; it is
	// excluded from the data-stream mapping (§4.1).
	app.ConnectPorts(ctrl, "out", rem, "mode", 1, 1)
	return app
}

// Hiperlan2Library builds the implementation catalogue of the paper's
// Table 1 for the given mode. The CSDF phase patterns follow the table
// with two normalisations recorded in EXPERIMENTS.md: the ARM inverse
// OFDM's output is 52 tokens (the KPN edge count; the table prints 64),
// and the Montium remainder's idle input phases are spelled out so all
// port patterns have the actor's 53+b phases.
func Hiperlan2Library(mode Hiperlan2Mode) *model.Library {
	b := mode.DemapBits
	lib := model.NewLibrary()

	// Prefix removal: 80 samples in, 64 out (cyclic prefix dropped).
	lib.Add(&model.Implementation{
		Process: "Pfx.rem.", TileType: arch.TypeARM,
		WCET:            csdf.Rep(18, 18),
		In:              map[string]csdf.Pattern{"in": csdf.Cat(csdf.Rep(8, 2), csdf.Vals(8, 0).Times(8))},
		Out:             map[string]csdf.Pattern{"out": csdf.Cat(csdf.Rep(0, 2), csdf.Vals(0, 8).Times(8))},
		EnergyPerPeriod: 60, MemBytes: 4096,
	})
	lib.Add(&model.Implementation{
		Process: "Pfx.rem.", TileType: arch.TypeMontium,
		WCET:            csdf.Rep(1, 81),
		In:              map[string]csdf.Pattern{"in": csdf.Cat(csdf.Rep(1, 80), csdf.Vals(0))},
		Out:             map[string]csdf.Pattern{"out": csdf.Cat(csdf.Rep(0, 17), csdf.Rep(1, 64))},
		EnergyPerPeriod: 32, MemBytes: 2048,
	})

	// Frequency-offset correction: 64 in, 64 out; the ARM implementation
	// works in blocks of 8 (8 firings per symbol).
	lib.Add(&model.Implementation{
		Process: "Frq.off.", TileType: arch.TypeARM,
		WCET:            csdf.Vals(18, 32, 18),
		In:              map[string]csdf.Pattern{"in": csdf.Vals(8, 0, 0)},
		Out:             map[string]csdf.Pattern{"out": csdf.Vals(0, 0, 8)},
		EnergyPerPeriod: 62, MemBytes: 4096,
	})
	lib.Add(&model.Implementation{
		Process: "Frq.off.", TileType: arch.TypeMontium,
		WCET:            csdf.Rep(1, 66),
		In:              map[string]csdf.Pattern{"in": csdf.Cat(csdf.Rep(1, 64), csdf.Rep(0, 2))},
		Out:             map[string]csdf.Pattern{"out": csdf.Cat(csdf.Rep(0, 2), csdf.Rep(1, 64))},
		EnergyPerPeriod: 33, MemBytes: 2048,
	})

	// Inverse OFDM: 64 in, 52 data carriers out.
	lib.Add(&model.Implementation{
		Process: "Inv.OFDM", TileType: arch.TypeARM,
		WCET:            csdf.Vals(66, 4250, 54),
		In:              map[string]csdf.Pattern{"in": csdf.Vals(64, 0, 0)},
		Out:             map[string]csdf.Pattern{"out": csdf.Vals(0, 0, 52)},
		EnergyPerPeriod: 275, MemBytes: 8192,
	})
	lib.Add(&model.Implementation{
		Process: "Inv.OFDM", TileType: arch.TypeMontium,
		WCET:            csdf.Cat(csdf.Rep(1, 64), csdf.Vals(170), csdf.Rep(1, 52)),
		In:              map[string]csdf.Pattern{"in": csdf.Cat(csdf.Rep(1, 64), csdf.Rep(0, 53))},
		Out:             map[string]csdf.Pattern{"out": csdf.Cat(csdf.Rep(0, 65), csdf.Rep(1, 52))},
		EnergyPerPeriod: 143, MemBytes: 4096,
	})

	// Remainder (equalisation + phase-offset correction + demapping):
	// 52 in, b out depending on the demapping mode.
	lib.Add(&model.Implementation{
		Process: "Rem.", TileType: arch.TypeARM,
		WCET:            csdf.Vals(54, 2250, b+2),
		In:              map[string]csdf.Pattern{"in": csdf.Vals(52, 0, 0)},
		Out:             map[string]csdf.Pattern{"out": csdf.Vals(0, 0, b)},
		EnergyPerPeriod: 140, MemBytes: 8192,
	})
	lib.Add(&model.Implementation{
		Process: "Rem.", TileType: arch.TypeMontium,
		WCET:            csdf.Cat(csdf.Rep(1, 52), csdf.Vals(73-b), csdf.Rep(1, int(b))),
		In:              map[string]csdf.Pattern{"in": csdf.Cat(csdf.Rep(1, 52), csdf.Rep(0, int(b)+1))},
		Out:             map[string]csdf.Pattern{"out": csdf.Cat(csdf.Rep(0, 53), csdf.Rep(1, int(b)))},
		EnergyPerPeriod: 76, MemBytes: 4096,
	})
	return lib
}

// Hiperlan2Platform builds the hypothetical MPSoC of the paper's Figure 2:
// a 3×3 router mesh carrying two ARMs, two Montiums, the A/D converter and
// the Sink (three further tiles are of types irrelevant to the example and
// are omitted). Coordinates are chosen so that step 2 of the mapper
// reproduces Table 2's cost sequence 11 → 11 → 9 → 7 exactly; the OCR of
// Figure 2 does not pin tile-to-router attachment, see EXPERIMENTS.md.
//
// Tiles are declared in the order ARM1, ARM2, MONTIUM1, MONTIUM2, matching
// the first-fit visit order of the paper's worked example.
func Hiperlan2Platform() *arch.Platform {
	p := arch.NewMesh("hiperlan2-mpsoc", 3, 3, 800_000_000)
	arm := func(name string, at arch.Point) {
		p.AttachTile(arch.TileSpec{
			Name: name, Type: arch.TypeARM, At: at,
			ClockHz: 200_000_000, MemBytes: 64 << 10, NICapBps: 800_000_000,
		})
	}
	montium := func(name string, at arch.Point) {
		p.AttachTile(arch.TileSpec{
			Name: name, Type: arch.TypeMontium, At: at,
			ClockHz: 200_000_000, MemBytes: 16 << 10, NICapBps: 800_000_000,
			MaxOccupants: 1, // one kernel configuration at a time
		})
	}
	arm("ARM1", arch.Pt(2, 1))
	arm("ARM2", arch.Pt(1, 1))
	montium("MONTIUM1", arch.Pt(0, 0))
	montium("MONTIUM2", arch.Pt(2, 0))
	p.AttachTile(arch.TileSpec{
		Name: "A/D", Type: arch.TypeSource, At: arch.Pt(0, 2),
		ClockHz: 200_000_000, MemBytes: 64 << 10, NICapBps: 800_000_000,
	})
	p.AttachTile(arch.TileSpec{
		Name: "Sink", Type: arch.TypeSink, At: arch.Pt(0, 1),
		ClockHz: 200_000_000, MemBytes: 64 << 10, NICapBps: 800_000_000,
	})
	return p
}
