package workload

import "rtsm/internal/arch"

// MeshSpec describes one mesh of a synthetic fleet: its dimensions, the
// seed that shuffles its tile types, and its region partition (≤ 0 =
// unpartitioned, one global region lock).
type MeshSpec struct {
	// W and H are the mesh dimensions in routers.
	W, H int
	// Seed drives the per-mesh tile-type shuffle; distinct seeds give
	// heterogeneous tile mixes.
	Seed int64
	// RegionSize is the side length of the square region partition
	// (see SyntheticRegionPlatform); ≤ 0 leaves the mesh one region.
	RegionSize int
}

// SyntheticFleetPlatforms builds one independent platform per spec, for
// multi-mesh federation scenarios. Meshes may be heterogeneous in size,
// tile mix and region partition; each platform carries its own pinned
// stream endpoints (SRC0/SINK0 at minimum, per-region pairs when
// partitioned), so the same endpoint-pinned applications admit on any
// member.
func SyntheticFleetPlatforms(specs []MeshSpec) []*arch.Platform {
	plats := make([]*arch.Platform, len(specs))
	for i, s := range specs {
		if s.RegionSize > 0 {
			plats[i] = SyntheticRegionPlatform(s.W, s.H, s.Seed, s.RegionSize)
		} else {
			plats[i] = SyntheticPlatform(s.W, s.H, s.Seed)
		}
	}
	return plats
}
