package churn

import (
	"testing"
)

// TestChurnSmokeSmall runs a small contended churn end to end — the
// scenario loop cmd/churn drives — and checks the things the driver
// checks: arrivals were admitted, the ledger invariants held throughout,
// and after full churn the reservation ledger returned exactly to
// pristine. The CI test step runs this under -race, which is the point:
// four admission workers hammer the platform lock while the collector
// stops residents.
func TestChurnSmokeSmall(t *testing.T) {
	opts := Defaults()
	opts.Apps = 40
	opts.Mesh = 6
	opts.Catalogue = 8
	r := Run(opts)
	if r.LedgerErr != nil {
		t.Fatalf("ledger invariant violated: %v", r.LedgerErr)
	}
	if r.Stats.Admitted == 0 {
		t.Fatal("churn admitted nothing; workload broken")
	}
	if !r.Clean {
		t.Fatalf("ledger not pristine after full churn: %d tiles, %d links drifted",
			len(r.Drift.Tiles), len(r.Drift.Links))
	}
}

// TestChurnRepairOffStillClean pins the fallback path: with the repair
// engine disabled every retry re-maps from scratch and the ledger still
// churns clean.
func TestChurnRepairOffStillClean(t *testing.T) {
	opts := Defaults()
	opts.Apps = 40
	opts.Mesh = 6
	opts.Catalogue = 8
	opts.Repair = false
	r := Run(opts)
	if r.LedgerErr != nil {
		t.Fatalf("ledger invariant violated: %v", r.LedgerErr)
	}
	if !r.Clean {
		t.Fatal("ledger not pristine with repair off")
	}
	if r.Stats.RepairAttempts != 0 {
		t.Fatalf("repair disabled but attempted %d times", r.Stats.RepairAttempts)
	}
}

// TestChurnShardedRegionsClean runs the churn scenario with the commit
// path sharded into four mesh regions and arrivals pinned round-robin to
// per-region stream endpoints. The CI test step runs this under -race:
// disjoint-region admissions commit concurrently under different locks,
// and the ledger must still return exactly to pristine.
func TestChurnShardedRegionsClean(t *testing.T) {
	opts := Defaults()
	opts.Apps = 80
	opts.Mesh = 8
	opts.Catalogue = 8
	opts.RegionSize = 4
	r := Run(opts)
	if r.Regions != 4 {
		t.Fatalf("scenario ran with %d regions, want 4", r.Regions)
	}
	if r.LedgerErr != nil {
		t.Fatalf("ledger invariant violated: %v", r.LedgerErr)
	}
	if r.Stats.Admitted == 0 {
		t.Fatal("sharded churn admitted nothing; workload broken")
	}
	if !r.Clean {
		t.Fatalf("ledger not pristine after sharded churn: %d tiles, %d links drifted",
			len(r.Drift.Tiles), len(r.Drift.Links))
	}
}

// TestChurnShardedGlobalLockAblation pins the ablation configuration the
// benchmarks compare against: the identical region-pinned workload with
// the platform departitioned, so every commit serializes behind one lock.
func TestChurnShardedGlobalLockAblation(t *testing.T) {
	opts := Defaults()
	opts.Apps = 40
	opts.Mesh = 8
	opts.Catalogue = 8
	opts.RegionSize = 4
	opts.GlobalLock = true
	r := Run(opts)
	if r.Regions != 1 {
		t.Fatalf("global-lock ablation ran with %d regions, want 1", r.Regions)
	}
	if r.LedgerErr != nil || !r.Clean {
		t.Fatalf("global-lock ablation not clean: err=%v clean=%v", r.LedgerErr, r.Clean)
	}
	if r.Stats.Admitted == 0 {
		t.Fatal("ablation admitted nothing; workload broken")
	}
}

// TestChurnRepairResolvesMajorityOfRetries is the acceptance bar of the
// incremental remapping engine: under a contended 4-worker churn, at
// least half of the commit-conflict retries and stale-template
// instantiations resolve via core.Repair — the stale mapping is refitted
// and committed — without a full four-step remap. The scenario keeps
// eight applications resident on an 8×8 mesh with a 16-structure
// catalogue, enough load that template placements go stale continuously
// while the platform retains room to repair into.
func TestChurnRepairResolvesMajorityOfRetries(t *testing.T) {
	opts := Defaults()
	opts.Apps = 200
	opts.Mesh = 8
	opts.Catalogue = 16
	opts.Resident = 8
	r := Run(opts)
	if r.LedgerErr != nil {
		t.Fatalf("ledger invariant violated: %v", r.LedgerErr)
	}
	if !r.Clean {
		t.Fatal("ledger not pristine after churn with repair enabled")
	}
	st := r.Stats
	rate, ok := st.RepairRate()
	if !ok {
		t.Fatalf("scenario produced no conflict retries or stale templates (conflicts=%d, templates=%d); not contended",
			st.ConflictRetries, st.StaleTemplates)
	}
	if st.StaleTemplates == 0 {
		t.Fatal("scenario produced no stale templates; reuse path not exercised")
	}
	t.Logf("repair rate %.1f%%: %d of %d retry/stale rounds (%d conflict retries, %d stale templates, %d full remaps)",
		100*rate, st.RepairedConflicts+st.RepairedTemplates, st.ConflictRetries+st.StaleTemplates,
		st.ConflictRetries, st.StaleTemplates, st.FullRemaps)
	if rate < 0.5 {
		t.Fatalf("repair resolved only %.1f%% of retry/stale rounds, want >= 50%%", 100*rate)
	}
}
