package churn

import (
	"math/rand"
	"time"

	"rtsm/internal/arch"
	"rtsm/internal/manager"
)

// faultTarget is one failable processing tile and the manager that owns
// it (fleet scenarios spread targets across every member mesh).
type faultTarget struct {
	m    *manager.Manager
	tile arch.TileID
}

// faultInjector drives Options.FaultRate: a deterministic accumulator
// fires a tile fault every 1/rate arrivals, aimed at a pseudo-random
// processing tile. At most one tile is failed at a time — the previous
// failure is restored before the next one lands, modelling a repair
// crew that swaps one field-replaceable unit at a time — and restoreAll
// returns the mesh to full capacity before the scenario's final
// pristine check. A nil injector is inert, so the scenario loop calls
// it unconditionally.
type faultInjector struct {
	rate    float64
	acc     float64
	rng     *rand.Rand
	targets []faultTarget
	failed  []faultTarget

	injected     int
	recoverTotal time.Duration
	recoverMax   time.Duration
}

// newFaultInjector builds the injector over every processing tile of
// the given platforms (stream endpoints and filler tiles are spared:
// failing an arrival's pinned SRC/SINK would measure workload
// starvation, not recovery). Returns nil when the rate is zero or no
// tile qualifies.
func newFaultInjector(rate float64, seed int64, plats []*arch.Platform, mgrs []*manager.Manager) *faultInjector {
	if rate <= 0 {
		return nil
	}
	fi := &faultInjector{rate: rate, rng: rand.New(rand.NewSource(seed ^ 0xfa117))}
	for i, p := range plats {
		for _, t := range p.Tiles {
			switch t.Type {
			case arch.TypeSource, arch.TypeSink, arch.TypeNone:
				continue
			}
			fi.targets = append(fi.targets, faultTarget{mgrs[i], t.ID})
		}
	}
	if len(fi.targets) == 0 {
		return nil
	}
	return fi
}

// step advances the accumulator by one arrival and injects the faults
// it earns.
func (fi *faultInjector) step() {
	if fi == nil {
		return
	}
	fi.acc += fi.rate
	for fi.acc >= 1 {
		fi.acc--
		fi.injectOne()
	}
}

// injectOne restores the oldest outstanding failure, then fails a fresh
// pseudo-random target and books its recovery report.
func (fi *faultInjector) injectOne() {
	if len(fi.failed) > 0 {
		t := fi.failed[0]
		fi.failed = fi.failed[1:]
		t.m.RestoreTile(t.tile)
	}
	// A handful of redraws covers the (rare) case of drawing the tile
	// that is still failed; giving up after that keeps the loop bounded.
	for attempt := 0; attempt < 8; attempt++ {
		t := fi.targets[fi.rng.Intn(len(fi.targets))]
		rep := t.m.FailTile(t.tile)
		if !rep.Failed {
			continue
		}
		fi.failed = append(fi.failed, t)
		fi.injected++
		fi.recoverTotal += rep.Recover
		if rep.Recover > fi.recoverMax {
			fi.recoverMax = rep.Recover
		}
		return
	}
}

// restoreAll returns every still-failed tile to service.
func (fi *faultInjector) restoreAll() {
	if fi == nil {
		return
	}
	for _, t := range fi.failed {
		t.m.RestoreTile(t.tile)
	}
	fi.failed = nil
}

// record copies the injector's aggregates into the result.
func (fi *faultInjector) record(r *Result) {
	if fi == nil {
		return
	}
	r.FaultRecoverTotal = fi.recoverTotal
	r.FaultRecoverMax = fi.recoverMax
}
