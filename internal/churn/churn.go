// Package churn drives the concurrent admission pipeline with an online
// workload: applications from a recurring catalogue arrive through a
// bounded work queue, run for a while and leave, while N workers map
// arrivals in parallel against platform snapshots. The cmd/churn driver
// and the repair acceptance tests share this scenario loop; it reports
// admission statistics and verifies the reservation ledger is exactly
// clean after full churn.
package churn

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"rtsm/internal/arch"
	"rtsm/internal/core"
	"rtsm/internal/fleet"
	"rtsm/internal/journal"
	"rtsm/internal/manager"
	"rtsm/internal/model"
	"rtsm/internal/workload"
)

// Options parameterises one churn scenario. The zero value is not
// runnable; use Defaults (or the cmd/churn flags) as a starting point.
type Options struct {
	// Workers is the number of admission worker goroutines; Queue the
	// work-queue depth (0 = same as workers).
	Workers int
	Queue   int
	// Apps is the number of application arrivals.
	Apps int
	// Mesh is the platform's width and height; Seed feeds the platform
	// generator.
	Mesh int
	Seed int64
	// Meshes federates the scenario across this many independent meshes
	// behind a fleet placement router (see internal/fleet): each mesh is
	// a separate Mesh×Mesh platform with its own manager, region locks
	// and pipeline (Workers and Queue are split evenly, at least one
	// each), arrivals are routed by sampled load scoring, and capacity
	// rejections spill to sibling meshes before the final verdict.
	// 0 or 1 keeps the single-manager pipeline — the pre-fleet path.
	Meshes int
	// Rebalance starts the fleet's background rebalancer with this
	// period, draining best-effort residents from hot meshes to cold
	// ones while the churn runs. 0 leaves it off. Only meaningful with
	// Meshes > 1.
	Rebalance time.Duration
	// Catalogue is the number of distinct application structures in
	// rotation; MaxUtil and PeriodNs shape them.
	Catalogue int
	MaxUtil   float64
	PeriodNs  int64
	// Resident is how many applications are kept running at once
	// (0 = 2x workers).
	Resident int
	// RegionSize shards the platform's commit path: the mesh is
	// partitioned into square regions of this side length, each with its
	// own reservation version and lock, and arrivals are pinned
	// round-robin to per-region stream endpoints so admissions landing
	// in different regions commit against disjoint locks. 0 keeps the
	// single-region platform with the global SRC0/SINK0 endpoints — the
	// pre-sharding behaviour.
	RegionSize int
	// GlobalLock departitions the platform after layout: the workload
	// keeps RegionSize's per-region stream endpoints and round-robin
	// pinning, but every commit goes through one global region lock.
	// This isolates what lock sharding itself buys — same arrivals, same
	// platform geometry, different lock granularity.
	GlobalLock bool
	// Reuse enables mapping-template reuse; Repair the incremental
	// remapping engine; Retries bounds re-mapping rounds per arrival.
	Reuse   bool
	Repair  bool
	Retries int
	// CoW selects copy-on-write snapshots: the admission path captures
	// O(regions) pointer views instead of deep-copying the mesh, and the
	// live platform faults regions in as commits write. Off restores the
	// pre-CoW per-admission deep copy (the snapshot ablation).
	CoW bool
	// Epoch lets concurrent admissions share one frozen base snapshot
	// per pipeline epoch (only meaningful with CoW on).
	Epoch bool
	// Batch lets a pipeline worker drain up to this many queued arrivals
	// into one batched admission round: one shared base snapshot,
	// speculative mapping per arrival, and a single multi-application
	// commit of the arrivals whose plans land in disjoint regions
	// (overlaps fall back to per-item commits; the effective drain size
	// adapts to the observed conflict rate). ≤ 1 keeps the per-item
	// pipeline. Negative is a configuration error.
	Batch int
	// PrioMix assigns admission classes to arrivals as
	// "bestEffort:standard:critical" integer weights, e.g. "70:20:10".
	// Arrival i's class is drawn deterministically from the weights by
	// arrival index, so identical options produce the identical
	// priority-tagged stream. Empty keeps every arrival BestEffort (the
	// pre-priority behaviour).
	PrioMix string
	// Preempt enables the manager's preemption planner: full-mesh
	// arrivals above BestEffort displace lower-class residents,
	// relocating them when possible. Only meaningful with a PrioMix that
	// produces more than one class.
	Preempt bool
	// FaultRate injects run-time tile faults at this expected rate per
	// arrival (e.g. 0.01 fails one pseudo-random processing tile per
	// hundred arrivals): the tile's residents are evacuated and
	// relocated or dropped while the churn keeps running, and every
	// failed tile is restored before the final pristine check. 0 = off.
	FaultRate float64
	// FaultBias is the RegionBias applied to fault-evacuation
	// relocations: positive values steer refits away from crowded
	// regions, biasing evacuees toward hot-spare capacity. 0 keeps the
	// mapper's configured pricing.
	FaultBias float64
	// Journal streams the manager's hash-chained admission journal to
	// this writer (see internal/journal); nil leaves journaling off.
	// Single-mesh scenarios only — a fleet would interleave the member
	// meshes' chains into one unverifiable stream (Result.ConfigErr).
	Journal io.Writer
	// ErrWriter receives stop errors during the run; nil discards them.
	ErrWriter io.Writer
}

// Defaults mirrors the cmd/churn defaults: a moderate 4-worker scenario.
func Defaults() Options {
	return Options{
		Workers:   4,
		Apps:      400,
		Mesh:      8,
		Seed:      123,
		Catalogue: 64,
		MaxUtil:   0.15,
		PeriodNs:  40_000,
		Reuse:     true,
		Repair:    true,
		Preempt:   true,
		CoW:       true,
		Epoch:     true,
		Retries:   manager.DefaultMaxRetries,
	}
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.Queue <= 0 {
		o.Queue = o.Workers
		if o.Batch > 1 {
			// Batches only form when the queue can hold them; give each
			// worker a full drain's worth of slots by default.
			o.Queue = o.Workers * o.Batch
		}
	}
	if o.Resident <= 0 {
		o.Resident = 2 * o.Workers
	}
	if o.Catalogue < 1 {
		o.Catalogue = 1
	}
	return o
}

// ParsePrioMix parses "bestEffort:standard:critical" integer weights
// (e.g. "70:20:10"; missing trailing fields default to 0). An empty
// string is the all-BestEffort mix.
func ParsePrioMix(s string) ([model.NumPriorities]int, error) {
	var w [model.NumPriorities]int
	if s == "" {
		w[model.BestEffort] = 1
		return w, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) > model.NumPriorities {
		return w, fmt.Errorf("churn: priority mix %q has %d fields, max %d", s, len(parts), model.NumPriorities)
	}
	total := 0
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return w, fmt.Errorf("churn: priority mix %q: field %d is not a non-negative integer", s, i)
		}
		w[i] = n
		total += n
	}
	if total == 0 {
		return w, fmt.Errorf("churn: priority mix %q has zero total weight", s)
	}
	return w, nil
}

// classOf deterministically assigns arrival i a class by spreading the
// weights over a repeating cycle of weight-sum slots.
func classOf(i int, w [model.NumPriorities]int) model.Priority {
	total := 0
	for _, n := range w {
		total += n
	}
	slot := i % total
	for c, n := range w {
		if slot < n {
			return model.Priority(c)
		}
		slot -= n
	}
	return model.BestEffort
}

// Arrival builds the i-th arrival of the scenario: application structures
// rotate through the catalogue, names stay unique, and with a PrioMix
// the admission class rotates through the configured weights (the name
// carries the class for debuggability). endpointRegions is the number of
// per-region stream-endpoint pairs the scenario's platform carries (its
// RegionCount as laid out by SyntheticRegionPlatform, before any
// GlobalLock departition); with more than one, arrivals are pinned
// round-robin to SRC<r>/SINK<r>, so consecutive arrivals land in
// different regions.
func (o Options) Arrival(i, endpointRegions int) (*model.Application, *model.Library) {
	w, err := ParsePrioMix(o.PrioMix)
	if err != nil {
		// Fall back to the all-BestEffort mix; Run rejects the invalid
		// string up front (Result.ConfigErr), so this is only reachable
		// by calling Arrival directly.
		w, _ = ParsePrioMix("")
	}
	return o.arrival(i, endpointRegions, w)
}

// arrival is Arrival with the priority weights already parsed, so the
// scenario loop parses the mix once per run instead of once per arrival.
func (o Options) arrival(i, endpointRegions int, w [model.NumPriorities]int) (*model.Application, *model.Library) {
	s := i % o.Catalogue
	opts := workload.SynthOptions{
		Shape:     workload.ShapeChain,
		Processes: 3 + s%3,
		Seed:      int64(s),
		MaxUtil:   o.MaxUtil,
		PeriodNs:  o.PeriodNs,
	}
	if endpointRegions > 1 {
		r := i % endpointRegions
		opts.SrcTile = fmt.Sprintf("SRC%d", r)
		opts.SinkTile = fmt.Sprintf("SINK%d", r)
	}
	name := fmt.Sprintf("app-%d", i)
	if o.PrioMix != "" {
		opts.Priority = classOf(i, w)
		name = fmt.Sprintf("app-%d-%s", i, opts.Priority)
	}
	app, lib := workload.Synthetic(opts)
	app.Name = name
	return app, lib
}

// Result is the outcome of one churn run.
type Result struct {
	// Stats is the manager's counters — summed across meshes for fleet
	// runs (PerMesh holds the unsummed members).
	Stats   manager.Stats
	Elapsed time.Duration
	// Regions is the platform's region count: 1 for the global
	// single-lock commit path, more when the scenario sharded it. Fleet
	// runs report the sum over all member meshes.
	Regions int
	// PerMesh holds each member mesh's own counters for fleet runs
	// (len == Options.Meshes); nil for single-manager runs.
	PerMesh []manager.Stats
	// Fleet holds the placement router's counters (spills, overflow
	// rejects, relocations) for fleet runs; zero otherwise.
	Fleet fleet.Stats
	// Clean reports that the ledger returned exactly to pristine after
	// full churn; Drift details the difference when it did not.
	Clean bool
	Drift arch.ResidualDiff
	// FaultRecoverTotal and FaultRecoverMax aggregate the per-fault
	// time-to-recover of the FaultRate injections (fault counts live in
	// Stats: FaultsInjected, FaultRelocated, FaultDropped, Restores).
	FaultRecoverTotal time.Duration
	FaultRecoverMax   time.Duration
	// JournalErr is non-nil when the journal writer reported a failure
	// during the run or on close.
	JournalErr error
	// LedgerErr is non-nil when CheckInvariants failed during teardown.
	LedgerErr error
	// ConfigErr is non-nil when the options were unusable (e.g. an
	// invalid PrioMix); nothing ran in that case.
	ConfigErr error
}

// AdmissionsPerSec is the run's admission throughput.
func (r Result) AdmissionsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Stats.Admitted) / r.Elapsed.Seconds()
}

// MeanFaultRecover is the average per-fault time-to-recover, zero when
// no fault was injected.
func (r Result) MeanFaultRecover() time.Duration {
	if r.Stats.FaultsInjected == 0 {
		return 0
	}
	return r.FaultRecoverTotal / time.Duration(r.Stats.FaultsInjected)
}

// Run pushes Apps arrivals through a pipeline with the configured worker
// count, keeping up to Resident applications running at once, then stops
// everything and checks the ledger.
func Run(o Options) Result {
	o = o.withDefaults()
	weights, werr := ParsePrioMix(o.PrioMix)
	if werr != nil {
		return Result{ConfigErr: werr}
	}
	if o.Batch < 0 {
		return Result{ConfigErr: fmt.Errorf("churn: batch size %d is negative", o.Batch)}
	}
	if o.Meshes > 1 {
		if o.Journal != nil {
			return Result{ConfigErr: fmt.Errorf("churn: journaling is per-manager; a fleet run would interleave %d hash chains", o.Meshes)}
		}
		return runFleet(o, weights)
	}
	var plat *arch.Platform
	endpointRegions := 1
	if o.RegionSize > 0 {
		plat = workload.SyntheticRegionPlatform(o.Mesh, o.Mesh, o.Seed, o.RegionSize)
		// The endpoint layout follows the sharded geometry even when
		// GlobalLock then collapses the partition: same workload, one
		// lock — that difference is exactly what the ablation measures.
		endpointRegions = plat.RegionCount()
		if o.GlobalLock {
			plat.PartitionRegions(0)
		}
	} else {
		plat = workload.SyntheticPlatform(o.Mesh, o.Mesh, o.Seed)
	}
	pristine := plat.Residual()
	m := manager.New(plat, core.Config{})
	m.SetMappingReuse(o.Reuse)
	m.SetRepair(o.Repair)
	m.SetPreemption(o.Preempt)
	m.SetCoWSnapshots(o.CoW)
	m.SetEpochSnapshots(o.Epoch)
	m.SetMaxRetries(o.Retries)
	m.SetFaultBias(o.FaultBias)
	var jw *journal.Writer
	if o.Journal != nil {
		jw = journal.NewWriter(o.Journal, journal.Options{})
		m.SetJournal(jw)
	}
	faults := newFaultInjector(o.FaultRate, o.Seed, []*arch.Platform{plat}, []*manager.Manager{m})
	pipe := manager.NewPipeline(m, o.Workers, o.Queue)
	if o.Batch > 1 {
		pipe.SetBatch(o.Batch)
	}

	stopErr := func(name string, err error) {
		if o.ErrWriter != nil {
			fmt.Fprintf(o.ErrWriter, "churn: stop %s: %v\n", name, err)
		}
	}
	start := time.Now()
	pending := make(chan (<-chan manager.Outcome), o.Resident)
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		var residents []string
		// stop departs one resident. A victim mid-relocation cannot be
		// stopped yet — requeue it so it departs (or turns out evicted)
		// on a later attempt instead of leaking as an immortal resident.
		stop := func(name string) {
			err := m.Stop(name)
			switch {
			case err == nil:
			case errors.Is(err, manager.ErrRelocating):
				residents = append(residents, name)
			default:
				// Typically "not running": the resident was preempted
				// and evicted; its reservations are already released.
				stopErr(name, err)
			}
		}
		for ch := range pending {
			out := <-ch
			if !out.Admitted {
				continue
			}
			residents = append(residents, out.App)
			if len(residents) > o.Resident {
				oldest := residents[0]
				residents = residents[1:]
				stop(oldest)
			}
		}
		for len(residents) > 0 {
			name := residents[0]
			residents = residents[1:]
			stop(name)
		}
	}()
	for i := 0; i < o.Apps; i++ {
		ch, err := pipe.Submit(o.arrival(i, endpointRegions, weights))
		if err != nil {
			stopErr(fmt.Sprintf("submit app-%d", i), err)
			break
		}
		pending <- ch
		faults.step()
	}
	close(pending)
	pipe.Close()
	<-collectorDone
	// Full capacity must be back before the pristine check: a
	// still-failed tile reads as exhausted in the residual.
	faults.restoreAll()
	elapsed := time.Since(start)

	r := Result{Stats: m.Stats(), Elapsed: elapsed, Regions: plat.RegionCount()}
	faults.record(&r)
	if jw != nil {
		if err := jw.Close(); err != nil {
			r.JournalErr = err
		}
	}
	if err := m.CheckInvariants(); err != nil {
		r.LedgerErr = err
		return r
	}
	final := m.Residual()
	r.Clean = final.Equal(pristine)
	if !r.Clean {
		r.Drift = pristine.Diff(final)
	}
	return r
}

// runFleet is Run's federated variant: the same arrival stream and
// resident cap, but admissions go through a fleet of Meshes independent
// platforms behind the placement router. Workers and queue slots are
// split evenly across the member pipelines, so a fleet run spends the
// same worker budget as the single-mesh run it is compared against.
func runFleet(o Options, weights [model.NumPriorities]int) Result {
	perWorkers := o.Workers / o.Meshes
	if perWorkers < 1 {
		perWorkers = 1
	}
	perQueue := o.Queue / o.Meshes
	if perQueue < 1 {
		perQueue = 1
	}
	specs := make([]workload.MeshSpec, o.Meshes)
	for i := range specs {
		// Distinct seeds give each mesh its own tile-type shuffle: the
		// fleet is homogeneous in geometry but heterogeneous in layout.
		specs[i] = workload.MeshSpec{
			W: o.Mesh, H: o.Mesh,
			Seed:       o.Seed + int64(i)*101,
			RegionSize: o.RegionSize,
		}
	}
	plats := workload.SyntheticFleetPlatforms(specs)
	endpointRegions := 1
	if o.RegionSize > 0 {
		// Same geometry on every mesh, so the endpoint layout — and the
		// round-robin pinning derived from it — is fleet-wide: a spilled
		// arrival finds its SRC<r>/SINK<r> pair on any sibling.
		endpointRegions = plats[0].RegionCount()
		if o.GlobalLock {
			for _, p := range plats {
				p.PartitionRegions(0)
			}
		}
	}
	pristine := make([]arch.Residual, len(plats))
	cfgs := make([]fleet.MeshConfig, len(plats))
	mgrs := make([]*manager.Manager, len(plats))
	for i, plat := range plats {
		pristine[i] = plat.Residual()
		m := manager.New(plat, core.Config{})
		m.SetMappingReuse(o.Reuse)
		m.SetRepair(o.Repair)
		m.SetPreemption(o.Preempt)
		m.SetCoWSnapshots(o.CoW)
		m.SetEpochSnapshots(o.Epoch)
		m.SetMaxRetries(o.Retries)
		m.SetFaultBias(o.FaultBias)
		mgrs[i] = m
		cfgs[i] = fleet.MeshConfig{
			Manager: m,
			Workers: perWorkers,
			Queue:   perQueue,
			Batch:   o.Batch,
		}
	}
	f, err := fleet.New(fleet.Config{Seed: o.Seed}, cfgs...)
	if err != nil {
		return Result{ConfigErr: err}
	}
	if o.Rebalance > 0 {
		f.StartRebalancer(o.Rebalance)
	}
	faults := newFaultInjector(o.FaultRate, o.Seed, plats, mgrs)

	stopErr := func(name string, err error) {
		if o.ErrWriter != nil {
			fmt.Fprintf(o.ErrWriter, "churn: stop %s: %v\n", name, err)
		}
	}
	start := time.Now()
	pending := make(chan (<-chan fleet.Outcome), o.Resident)
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		var residents []string
		// stop departs one resident through the fleet, which finds the
		// mesh it lives on. Mid-relocation residents are requeued exactly
		// as in the single-mesh run.
		stop := func(name string) {
			err := f.Stop(name)
			switch {
			case err == nil:
			case errors.Is(err, manager.ErrRelocating):
				residents = append(residents, name)
			default:
				stopErr(name, err)
			}
		}
		for ch := range pending {
			out := <-ch
			if !out.Admitted {
				continue
			}
			residents = append(residents, out.App)
			if len(residents) > o.Resident {
				oldest := residents[0]
				residents = residents[1:]
				stop(oldest)
			}
		}
		for len(residents) > 0 {
			name := residents[0]
			residents = residents[1:]
			stop(name)
		}
	}()
	for i := 0; i < o.Apps; i++ {
		ch, err := f.Submit(o.arrival(i, endpointRegions, weights))
		if err != nil {
			stopErr(fmt.Sprintf("submit app-%d", i), err)
			break
		}
		pending <- ch
		faults.step()
	}
	close(pending)
	f.Close()
	<-collectorDone
	faults.restoreAll()
	elapsed := time.Since(start)

	r := Result{Elapsed: elapsed, Fleet: f.Stats()}
	faults.record(&r)
	for i := 0; i < f.Meshes(); i++ {
		st := f.Manager(i).Stats()
		r.PerMesh = append(r.PerMesh, st)
		r.Stats.Add(st)
		r.Regions += plats[i].RegionCount()
	}
	for i := 0; i < f.Meshes(); i++ {
		if err := f.Manager(i).CheckInvariants(); err != nil {
			r.LedgerErr = fmt.Errorf("mesh %d: %w", i, err)
			return r
		}
	}
	r.Clean = true
	for i, plat := range plats {
		final := plat.Residual()
		if !final.Equal(pristine[i]) {
			r.Clean = false
			r.Drift = pristine[i].Diff(final)
			break
		}
	}
	return r
}
