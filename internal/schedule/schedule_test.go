package schedule

import (
	"strings"
	"testing"

	"rtsm/internal/arch"
	"rtsm/internal/core"
	"rtsm/internal/csdf"
	"rtsm/internal/model"
	"rtsm/internal/workload"
)

func TestScheduleHiperlan2Trivial(t *testing.T) {
	// One process per tile: no orders needed, period unchanged.
	mode := workload.Hiperlan2Modes[3]
	app := workload.Hiperlan2(mode)
	lib := workload.Hiperlan2Library(mode)
	plat := workload.Hiperlan2Platform()
	res, err := core.NewMapper(lib).Map(app, plat)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Build(app, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Tiles) != 0 {
		t.Errorf("unexpected multi-actor tiles: %v", sched.Tiles)
	}
	if !sched.Feasible || sched.PeriodNs > 4000 {
		t.Errorf("trivial schedule infeasible: period %.0f", sched.PeriodNs)
	}
}

func TestScheduleCoLocatedProcesses(t *testing.T) {
	// A chain mapped onto a tiny platform co-locates processes; the SAS
	// must order them stream-wise, and verification with the order
	// enforced must still meet the period (the processes are light).
	app, lib := workload.Synthetic(workload.SynthOptions{
		Shape: workload.ShapeChain, Processes: 6, Seed: 21, MaxUtil: 0.12})
	plat := workload.SyntheticPlatform(2, 2, 21)
	res, err := core.NewMapper(lib).Map(app, plat)
	if err != nil {
		t.Skipf("instance unmappable: %v", err)
	}
	if !res.Feasible {
		t.Skip("spatial mapping infeasible")
	}
	sched, err := Build(app, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Tiles) == 0 {
		t.Skip("no co-location on this seed")
	}
	// Each schedule lists its actors in stream order: a producer that
	// shares a tile with its consumer must appear first.
	for _, ts := range sched.Tiles {
		pos := make(map[string]int)
		for i, e := range ts.Entries {
			pos[e.Actor] = i
			if e.Firings <= 0 {
				t.Errorf("%s: non-positive firing count", ts.Tile)
			}
		}
		for _, c := range app.StreamChannels() {
			src := app.Process(c.Src).Name
			dst := app.Process(c.Dst).Name
			si, sok := pos[src]
			di, dok := pos[dst]
			if sok && dok && si > di {
				t.Errorf("%s: consumer %s scheduled before producer %s", ts.Tile, dst, src)
			}
		}
	}
	// Strict SAS can legitimately be slower than the unordered analysis:
	// when a tile hosts actors from distant pipeline stages, the cyclic
	// order serialises a full stream round trip per iteration. The
	// verdict must reflect the enforced order, and the measured period
	// can only be at or above the unordered one.
	if sched.PeriodNs < res.Analysis.Period*0.98 {
		t.Errorf("ordered period %.0f below unordered %.0f", sched.PeriodNs, res.Analysis.Period)
	}
	if sched.Feasible && sched.PeriodNs > float64(app.QoS.PeriodNs) {
		t.Errorf("feasible verdict contradicts period %.0f", sched.PeriodNs)
	}
}

func TestScheduleAdjacentCoLocationFeasible(t *testing.T) {
	// Two adjacent pipeline stages sharing a tile: the SAS [a×1, b×1] is
	// the natural order and must sustain the period (their combined
	// utilisation is low and no round trip separates them).
	app := model.NewApplication("adj", model.QoS{PeriodNs: 10_000})
	src := app.AddPinnedProcess("src", "SRC")
	a := app.AddProcess("a")
	b := app.AddProcess("b")
	sink := app.AddPinnedProcess("sink", "SINK")
	app.Connect(src, a, 16, 4)
	app.Connect(a, b, 16, 4)
	app.Connect(b, sink, 16, 4)
	lib := model.NewLibrary()
	for _, name := range []string{"a", "b"} {
		lib.Add(&model.Implementation{
			Process: name, TileType: arch.TypeDSP,
			WCET:            csdf.Vals(2, 200, 2),
			In:              map[string]csdf.Pattern{"in": csdf.Vals(16, 0, 0)},
			Out:             map[string]csdf.Pattern{"out": csdf.Vals(0, 0, 16)},
			EnergyPerPeriod: 40, MemBytes: 1024,
		})
	}
	plat := arch.NewMesh("adjplat", 2, 2, 800_000_000)
	plat.AttachTile(arch.TileSpec{Name: "DSP0", Type: arch.TypeDSP, At: arch.Pt(1, 0),
		ClockHz: 200e6, MemBytes: 32 << 10, NICapBps: 800e6})
	plat.AttachTile(arch.TileSpec{Name: "SRC", Type: arch.TypeSource, At: arch.Pt(0, 0),
		ClockHz: 200e6, MemBytes: 8 << 10, NICapBps: 800e6})
	plat.AttachTile(arch.TileSpec{Name: "SINK", Type: arch.TypeSink, At: arch.Pt(0, 1),
		ClockHz: 200e6, MemBytes: 8 << 10, NICapBps: 800e6})

	res, err := core.NewMapper(lib).Map(app, plat)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("spatial mapping infeasible: %v", res.Trace.Notes)
	}
	sched, err := Build(app, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Tiles) != 1 {
		t.Fatalf("expected one shared tile, got %v", sched.Tiles)
	}
	entries := sched.Tiles[0].Entries
	if len(entries) != 2 || entries[0].Actor != "a" || entries[1].Actor != "b" {
		t.Errorf("order = %v, want a before b", entries)
	}
	if !sched.Feasible {
		t.Errorf("adjacent SAS infeasible: period %.0f > %d", sched.PeriodNs, app.QoS.PeriodNs)
	}
}

func TestScheduleString(t *testing.T) {
	s := &Schedule{
		PeriodNs: 4000,
		Feasible: true,
		Tiles: []TileSchedule{{
			Tile:    "DSP0",
			Entries: []Entry{{Actor: "a", Firings: 1}, {Actor: "b", Firings: 8}},
		}},
	}
	out := s.String()
	for _, want := range []string{"period 4000", "DSP0", "a×1", "b×8"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
}

func TestScheduleRejectsIncompleteResult(t *testing.T) {
	app := workload.Hiperlan2(workload.Hiperlan2Modes[0])
	if _, err := Build(app, &core.Result{}); err == nil {
		t.Error("expected error for result without mapped graph")
	}
}
