// Package schedule derives per-tile static-order (temporal) schedules for
// a spatial mapping. The paper deliberately separates spatial from
// temporal mapping ("By separating the spatial and temporal mappings, we
// have achieved promising results", §2, citing L. Smit et al., SoC 2005);
// this package is the temporal half: given the spatial mapper's output,
// it fixes the firing order of the actors sharing each tile and verifies
// that the ordered system still meets the throughput constraint.
//
// The generated schedules are single-appearance schedules (SAS): each
// tile fires its actors in stream topological order, each actor
// completing all of its per-iteration firings before the next actor
// starts. SAS minimises context switches (one reconfiguration per actor
// per iteration — attractive for coarse-grain reconfigurable tiles) at
// the price of larger buffers; the verification re-sizes buffers under
// the enforced order, so the verdict accounts for that.
package schedule

import (
	"fmt"
	"strings"

	"rtsm/internal/arch"
	"rtsm/internal/core"
	"rtsm/internal/csdf"
	"rtsm/internal/model"
)

// Entry is one actor's slot in a tile's static order.
type Entry struct {
	Actor   string
	Firings int64 // consecutive firings per graph iteration
}

// TileSchedule is the firing order of one tile that hosts two or more
// actors. Tiles with a single actor need no schedule.
type TileSchedule struct {
	Tile    string
	Entries []Entry
}

func (ts TileSchedule) String() string {
	parts := make([]string, len(ts.Entries))
	for i, e := range ts.Entries {
		parts[i] = fmt.Sprintf("%s×%d", e.Actor, e.Firings)
	}
	return fmt.Sprintf("%s: [%s]", ts.Tile, strings.Join(parts, " "))
}

// Schedule is the complete temporal mapping of one application.
type Schedule struct {
	Tiles []TileSchedule
	// PeriodNs is the steady-state period measured with the orders
	// enforced and buffers re-sized accordingly.
	PeriodNs float64
	// Buffers are the stream buffer capacities required under the static
	// order; SAS usually needs more than the unordered analysis.
	Buffers map[model.ChannelID]int64
	// Feasible reports whether the ordered system meets the period.
	Feasible bool
}

func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "static-order schedule: period %.0f ns, feasible=%v\n", s.PeriodNs, s.Feasible)
	for _, ts := range s.Tiles {
		fmt.Fprintf(&b, "  %s\n", ts)
	}
	return b.String()
}

// Build derives and verifies the static-order schedules for a mapping
// produced by the spatial mapper.
func Build(app *model.Application, res *core.Result) (*Schedule, error) {
	if res.Mapped == nil {
		return nil, fmt.Errorf("schedule: result has no mapped graph")
	}
	mg := res.Mapped
	rv, err := csdf.Repetition(mg.Graph)
	if err != nil {
		return nil, err
	}
	topo, err := topoOrder(app)
	if err != nil {
		return nil, err
	}

	// Collect per-tile actor lists in stream topological order.
	byTile := make(map[arch.TileID][]model.ProcessID)
	for _, pid := range topo {
		aid, ok := mg.ProcActor[pid]
		if !ok {
			continue
		}
		tid := mg.ActorTile[aid]
		if tid == arch.NoTile {
			continue
		}
		byTile[tid] = append(byTile[tid], pid)
	}

	out := &Schedule{Buffers: make(map[model.ChannelID]int64)}
	var orders [][]csdf.ActorID
	for _, t := range res.Platform.Tiles { // deterministic order
		procs := byTile[t.ID]
		if len(procs) < 2 {
			continue
		}
		ts := TileSchedule{Tile: t.Name}
		var seq []csdf.ActorID
		for _, pid := range procs {
			aid := mg.ProcActor[pid]
			fires := rv.Firings(mg.Graph, aid)
			ts.Entries = append(ts.Entries, Entry{Actor: app.Process(pid).Name, Firings: fires})
			for k := int64(0); k < fires; k++ {
				seq = append(seq, aid)
			}
		}
		out.Tiles = append(out.Tiles, ts)
		orders = append(orders, seq)
	}

	// Verify under the enforced orders, re-sizing buffers: SAS batches
	// whole iterations, so consumer-side buffers typically grow.
	buf, err := csdf.BufferSizes(mg.Graph, csdf.BufferOptions{
		TargetPeriod: float64(app.QoS.PeriodNs),
		Exec: csdf.ExecOptions{
			WarmupIterations:  4,
			MeasureIterations: 8,
			Observe:           mg.Sink,
			Source:            mg.Source,
			StaticOrders:      orders,
		},
	})
	if err != nil {
		return nil, err
	}
	out.PeriodNs = buf.Exec.Period
	out.Feasible = buf.Met
	for cid, edge := range mg.StreamEdge {
		if cap, ok := buf.Capacities[edge]; ok {
			out.Buffers[cid] = cap
		} else {
			out.Buffers[cid] = mg.Graph.Channel(edge).Capacity
		}
	}
	return out, nil
}

// topoOrder sorts the data processes along the stream's channels
// (Kahn's algorithm; ties resolved by declaration order for determinism).
func topoOrder(app *model.Application) ([]model.ProcessID, error) {
	var procs []*model.Process
	for _, p := range app.Processes {
		if !p.Control {
			procs = append(procs, p)
		}
	}
	indeg := make(map[model.ProcessID]int, len(procs))
	for _, c := range app.StreamChannels() {
		indeg[c.Dst]++
	}
	emitted := make(map[model.ProcessID]bool, len(procs))
	var order []model.ProcessID
	for len(order) < len(procs) {
		progressed := false
		for _, p := range procs {
			if emitted[p.ID] || indeg[p.ID] != 0 {
				continue
			}
			order = append(order, p.ID)
			emitted[p.ID] = true
			for _, c := range app.StreamChannels() {
				if c.Src == p.ID {
					indeg[c.Dst]--
				}
			}
			progressed = true
		}
		if !progressed {
			return nil, fmt.Errorf("schedule: application %q has a channel cycle", app.Name)
		}
	}
	return order, nil
}
