package sim

import (
	"testing"

	"rtsm/internal/core"
	"rtsm/internal/workload"
)

func TestValidateHiperlan2(t *testing.T) {
	for _, mode := range workload.Hiperlan2Modes {
		app := workload.Hiperlan2(mode)
		lib := workload.Hiperlan2Library(mode)
		plat := workload.Hiperlan2Platform()
		res, err := core.NewMapper(lib).Map(app, plat)
		if err != nil {
			t.Fatalf("%s: %v", mode.Name, err)
		}
		if !res.Feasible {
			t.Fatalf("%s: mapper infeasible", mode.Name)
		}
		rep, err := Validate(app, res)
		if err != nil {
			t.Fatalf("%s: %v", mode.Name, err)
		}
		// One process per tile in this case study, so the simulator must
		// agree with step 4 exactly.
		if !rep.MeetsThroughput {
			t.Errorf("%s: %s", mode.Name, rep)
		}
		if rep.Deadlocked {
			t.Errorf("%s: simulation deadlocked", mode.Name)
		}
	}
}

func TestValidateAgreesWithStep4WhenExclusive(t *testing.T) {
	mode := workload.Hiperlan2Modes[3]
	app := workload.Hiperlan2(mode)
	lib := workload.Hiperlan2Library(mode)
	plat := workload.Hiperlan2Platform()
	res, err := core.NewMapper(lib).Map(app, plat)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Validate(app, res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeriodNs != res.Analysis.Period {
		t.Errorf("simulator period %.0f differs from step 4's %.0f despite exclusive tiles",
			rep.PeriodNs, res.Analysis.Period)
	}
	// Tile utilisation must be sane: positive for mapped tiles, and the
	// A/D tile is saturated by the once-per-period source firing.
	for _, name := range []string{"ARM1", "ARM2", "MONTIUM1", "MONTIUM2"} {
		u := rep.TileUtilisation[name]
		if u <= 0 || u > 1.001 {
			t.Errorf("tile %s utilisation %v out of range", name, u)
		}
	}
}

func TestValidateSyntheticCoLocation(t *testing.T) {
	// A synthetic case on a tiny platform forces co-location; the
	// simulator must still complete and produce a verdict (agreement
	// with step 4 is measured, not assumed — see experiment E11).
	app, lib := workload.Synthetic(workload.SynthOptions{Shape: workload.ShapeChain, Processes: 6, Seed: 21, MaxUtil: 0.2})
	plat := workload.SyntheticPlatform(2, 2, 21)
	res, err := core.NewMapper(lib).Map(app, plat)
	if err != nil {
		t.Skipf("instance unmappable: %v", err)
	}
	if !res.Feasible {
		t.Skip("instance infeasible; co-location verdicts need a feasible base")
	}
	rep, err := Validate(app, res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeriodNs <= 0 {
		t.Error("no period measured")
	}
	// Co-location can only slow things down relative to step 4's
	// contention-free analysis, up to the ~2% averaging noise of the
	// finite measurement window (warmup backlog drains into it).
	if rep.PeriodNs < res.Analysis.Period*0.98 {
		t.Errorf("simulator (%.0f) faster than contention-free analysis (%.0f)",
			rep.PeriodNs, res.Analysis.Period)
	}
}

func TestValidateRejectsIncompleteResult(t *testing.T) {
	if _, err := Validate(workload.Hiperlan2(workload.Hiperlan2Modes[0]), &core.Result{}); err == nil {
		t.Error("expected error for result without mapped graph")
	}
}
