// Package sim validates spatial mappings by discrete-event simulation: it
// re-executes the mapped application's CSDF graph with processor sharing
// made explicit — actors placed on the same tile cannot fire concurrently.
// The mapper's step 4 admits co-location by a utilisation-sum argument
// (Σ util ≤ 1), which is necessary but ignores interleaving; the
// simulator measures what actually happens, so experiment E11 can
// cross-check every feasibility verdict independently.
//
// NoC contention needs no equivalent treatment: the platform reserves
// guaranteed-throughput lanes per channel (paper §1.1, §4.3), so channels
// do not interfere by construction and the per-channel router actors of
// the mapped graph already carry the worst-case per-hop latency.
package sim

import (
	"fmt"

	"rtsm/internal/arch"
	"rtsm/internal/core"
	"rtsm/internal/csdf"
	"rtsm/internal/model"
)

// Report is the outcome of one validation run.
type Report struct {
	// PeriodNs is the steady-state period measured with tile exclusivity
	// enforced.
	PeriodNs float64
	// LatencyNs is the measured end-to-end latency.
	LatencyNs int64
	// RequiredNs echoes the application's period constraint.
	RequiredNs int64
	// MeetsThroughput is PeriodNs ≤ RequiredNs.
	MeetsThroughput bool
	// Deadlocked reports a simulation deadlock (a mapper bug or an
	// undersized buffer).
	Deadlocked bool
	// TileUtilisation is the measured busy fraction per tile name.
	TileUtilisation map[string]float64
}

func (r *Report) String() string {
	verdict := "MEETS"
	if !r.MeetsThroughput {
		verdict = "MISSES"
	}
	return fmt.Sprintf("sim: period %.0f ns (%s %d ns), latency %d ns",
		r.PeriodNs, verdict, r.RequiredNs, r.LatencyNs)
}

// Validate re-executes the mapping's CSDF graph with actors grouped into
// mutual exclusion sets per tile and reports the measured timing.
func Validate(app *model.Application, res *core.Result) (*Report, error) {
	if res.Mapped == nil || res.Graph == nil {
		return nil, fmt.Errorf("sim: result has no mapped graph (mapping attempt aborted before step 4)")
	}
	mg := res.Mapped
	groups := make(map[arch.TileID][]csdf.ActorID)
	for actor, tile := range mg.ActorTile {
		if tile == arch.NoTile {
			continue
		}
		groups[tile] = append(groups[tile], actor)
	}
	var exclusive [][]csdf.ActorID
	for _, tile := range res.Platform.Tiles { // deterministic order
		members := groups[tile.ID]
		if len(members) > 1 {
			// Sort members for reproducible arbitration.
			for i := 1; i < len(members); i++ {
				for j := i; j > 0 && members[j] < members[j-1]; j-- {
					members[j], members[j-1] = members[j-1], members[j]
				}
			}
			exclusive = append(exclusive, members)
		}
	}
	exec, err := res.Graph.Execute(csdf.ExecOptions{
		WarmupIterations:  4,
		MeasureIterations: 8,
		Observe:           mg.Sink,
		Source:            mg.Source,
		ExclusiveGroups:   exclusive,
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		PeriodNs:        exec.Period,
		LatencyNs:       exec.Latency,
		RequiredNs:      app.QoS.PeriodNs,
		Deadlocked:      exec.Deadlocked,
		TileUtilisation: make(map[string]float64),
	}
	rep.MeetsThroughput = !exec.Deadlocked && exec.Period <= float64(app.QoS.PeriodNs)
	for actor, tile := range mg.ActorTile {
		if tile == arch.NoTile {
			continue
		}
		rep.TileUtilisation[res.Platform.Tile(tile).Name] += exec.Utilisation(actor)
	}
	return rep, nil
}
