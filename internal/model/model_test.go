package model

import (
	"encoding/json"
	"strings"
	"testing"

	"rtsm/internal/arch"
	"rtsm/internal/csdf"
)

func chainApp(t *testing.T) *Application {
	t.Helper()
	app := NewApplication("chain", QoS{PeriodNs: 4000})
	src := app.AddPinnedProcess("src", "AD")
	a := app.AddProcess("a")
	b := app.AddProcess("b")
	snk := app.AddPinnedProcess("snk", "Sink")
	ctrl := app.AddControlProcess("ctrl")
	app.Connect(src, a, 80, 4)
	app.Connect(a, b, 64, 4)
	app.Connect(b, snk, 52, 4)
	app.ConnectPorts(ctrl, "out", b, "mode", 1, 1)
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	return app
}

func TestApplicationQueries(t *testing.T) {
	app := chainApp(t)
	if got := app.MappableProcesses(); len(got) != 2 || got[0].Name != "a" {
		t.Errorf("MappableProcesses = %v", got)
	}
	// The control channel is excluded from the stream.
	if got := app.StreamChannels(); len(got) != 3 {
		t.Errorf("StreamChannels = %d, want 3", len(got))
	}
	b := app.ProcessByName("b")
	if got := app.ChannelsOf(b.ID); len(got) != 2 {
		t.Errorf("ChannelsOf(b) = %d, want 2", len(got))
	}
	if app.ProcessByName("zzz") != nil {
		t.Error("unknown process should be nil")
	}
}

func TestChannelTraffic(t *testing.T) {
	app := chainApp(t)
	c := app.Channels[0]
	if got := c.BytesPerPeriod(); got != 320 {
		t.Errorf("BytesPerPeriod = %d, want 320", got)
	}
}

func TestValidateRejections(t *testing.T) {
	app := NewApplication("bad", QoS{PeriodNs: 0})
	app.AddProcess("p")
	if err := app.Validate(); err == nil || !strings.Contains(err.Error(), "period") {
		t.Errorf("missing-period error, got %v", err)
	}

	app2 := NewApplication("bad2", QoS{PeriodNs: 100})
	p := app2.AddProcess("p")
	q := app2.AddProcess("q")
	ch := app2.Connect(p, q, 1, 1)
	ch.TokensPerPeriod = 0
	if err := app2.Validate(); err == nil {
		t.Error("zero-token channel accepted")
	}
	ch.TokensPerPeriod = 1
	ch.Dst = p.ID
	ch.Src = p.ID
	if err := app2.Validate(); err == nil {
		t.Error("self-loop accepted")
	}
}

func TestDuplicateProcessPanics(t *testing.T) {
	app := NewApplication("dup", QoS{PeriodNs: 1})
	app.AddProcess("p")
	defer func() {
		if recover() == nil {
			t.Error("duplicate process did not panic")
		}
	}()
	app.AddProcess("p")
}

func testImpl() *Implementation {
	return &Implementation{
		Process:         "a",
		TileType:        arch.TypeARM,
		WCET:            csdf.Vals(18, 32, 18),
		In:              map[string]csdf.Pattern{"in": csdf.Vals(8, 0, 0)},
		Out:             map[string]csdf.Pattern{"out": csdf.Vals(0, 0, 8)},
		EnergyPerPeriod: 62,
		MemBytes:        1024,
	}
}

func TestImplementationValidate(t *testing.T) {
	im := testImpl()
	if err := im.Validate(); err != nil {
		t.Fatal(err)
	}
	im.In["in"] = csdf.Vals(8) // wrong phase count
	if err := im.Validate(); err == nil {
		t.Error("phase mismatch accepted")
	}
}

func TestCyclesPerPeriod(t *testing.T) {
	app := chainApp(t)
	a := app.ProcessByName("a")
	im := testImpl()
	// Channel src→a carries 80 tokens/period; port "in" consumes 8 per
	// cycle ⇒ 10 cycles/period × 68 cycles each = 680.
	got, err := im.CyclesPerPeriod(app, a)
	if err != nil {
		t.Fatal(err)
	}
	if got != 680 {
		t.Errorf("CyclesPerPeriod = %d, want 680", got)
	}
}

func TestCyclesPerPeriodInconsistent(t *testing.T) {
	app := NewApplication("x", QoS{PeriodNs: 100})
	p := app.AddProcess("a")
	q := app.AddProcess("b")
	app.Connect(p, q, 7, 1) // 7 tokens per period
	im := testImpl()        // consumes 8 per cycle: 7 % 8 != 0
	im.Process = "b"
	if _, err := im.CyclesPerPeriod(app, q); err == nil {
		t.Error("inconsistent rate accepted")
	}
}

func TestLibrary(t *testing.T) {
	lib := NewLibrary()
	im1 := testImpl()
	im2 := testImpl()
	im2.TileType = arch.TypeMontium
	lib.Add(im1).Add(im2)
	if got := lib.For("a"); len(got) != 2 || got[0] != im1 {
		t.Errorf("For(a) = %v", got)
	}
	if got := lib.ForType("a", arch.TypeMontium); got != im2 {
		t.Errorf("ForType = %v", got)
	}
	if lib.ForType("a", "DSP") != nil {
		t.Error("unknown type should be nil")
	}
	if lib.Processes() != 1 {
		t.Errorf("Processes = %d", lib.Processes())
	}
}

func TestLibraryAddPanicsOnBadImpl(t *testing.T) {
	lib := NewLibrary()
	bad := testImpl()
	bad.WCET = nil
	defer func() {
		if recover() == nil {
			t.Error("bad implementation did not panic")
		}
	}()
	lib.Add(bad)
}

func TestApplicationJSONRoundTrip(t *testing.T) {
	app := chainApp(t)
	data, err := json.Marshal(app)
	if err != nil {
		t.Fatal(err)
	}
	var back Application
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Rebind(); err != nil {
		t.Fatal(err)
	}
	if back.Name != app.Name || len(back.Processes) != len(app.Processes) || len(back.Channels) != len(app.Channels) {
		t.Errorf("round trip lost structure: %+v", back)
	}
	if back.ProcessByName("b") == nil {
		t.Error("Rebind did not restore name index")
	}
	if back.QoS != app.QoS {
		t.Errorf("QoS mismatch: %v vs %v", back.QoS, app.QoS)
	}
}
