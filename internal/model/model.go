// Package model describes streaming applications the way the spatial
// mapper consumes them: a Kahn Process Network of processes and channels,
// the application-level QoS constraints (together the paper's Application
// Level Specification, §4.1), and the library of concrete implementations
// available per process and tile type (§4.2, Table 1).
package model

import (
	"fmt"

	"rtsm/internal/arch"
	"rtsm/internal/csdf"
)

// ProcessID indexes a process within its Application.
type ProcessID int

// ChannelID indexes a channel within its Application.
type ChannelID int

// Process is one node of the KPN.
type Process struct {
	ID   ProcessID `json:"-"`
	Name string    `json:"name"`
	// PinnedTile names the tile the process must occupy, for fixed
	// endpoints such as the A/D converter and the Sink in the paper's
	// case study. Pinned processes need no implementation; the mapper
	// treats them as pre-placed.
	PinnedTile string `json:"pinnedTile,omitempty"`
	// Control marks processes outside the data stream, like the paper's
	// CTRL process: they participate in the KPN but are excluded from the
	// spatial mapping of the stream (paper §4.1).
	Control bool `json:"control,omitempty"`
}

// Channel is a KPN edge: a typed stream between two processes.
type Channel struct {
	ID   ChannelID `json:"-"`
	Name string    `json:"name"`
	Src  ProcessID `json:"src"`
	Dst  ProcessID `json:"dst"`
	// TokensPerPeriod is the number of tokens crossing the channel during
	// one QoS period (for HIPERLAN/2: per OFDM symbol; the edge labels of
	// the paper's Figure 1).
	TokensPerPeriod int64 `json:"tokensPerPeriod"`
	// TokenBytes is the size of one token in bytes (4 for the paper's
	// 32-bit complex samples).
	TokenBytes int64 `json:"tokenBytes"`
	// SrcPort and DstPort name the implementation ports this channel
	// binds to; implementations publish rate patterns per port name.
	SrcPort string `json:"srcPort"`
	DstPort string `json:"dstPort"`
}

// BytesPerPeriod returns the channel's traffic volume per QoS period.
func (c *Channel) BytesPerPeriod() int64 { return c.TokensPerPeriod * c.TokenBytes }

// Priority is an application's admission QoS class. It does not change
// how the application is mapped — the four-step mapper is priority-blind —
// but it orders the manager's admission queue and decides who may preempt
// whom when the platform is full: an arrival of class p may displace
// running applications of strictly lower class. The zero value is
// BestEffort, so untagged specs keep the pre-priority behaviour.
type Priority int

const (
	// BestEffort is the default class: admitted when resources allow,
	// first to be preempted when a higher class needs the platform.
	BestEffort Priority = iota
	// Standard is the middle class for ordinary interactive workloads.
	Standard
	// Critical is the latency-critical class (e.g. a live baseband
	// receiver): it jumps the admission queue and may preempt lower
	// classes when the mesh is full.
	Critical
)

// NumPriorities is the number of admission classes, for per-class arrays.
const NumPriorities = int(Critical) + 1

// String names the class for reports.
func (p Priority) String() string {
	switch p {
	case BestEffort:
		return "best-effort"
	case Standard:
		return "standard"
	case Critical:
		return "critical"
	}
	return fmt.Sprintf("priority-%d", int(p))
}

// QoS holds the application's constraints (paper §1.3: throughput
// requirements and latency bounds).
type QoS struct {
	// PeriodNs is the required steady-state period: the application must
	// complete one iteration (e.g. one OFDM symbol) every PeriodNs.
	PeriodNs int64 `json:"periodNs"`
	// LatencyNs bounds the end-to-end latency of one iteration; zero
	// means unconstrained.
	LatencyNs int64 `json:"latencyNs,omitempty"`
	// Priority is the admission class; it never influences the mapping
	// itself, only queue order and preemption (see manager).
	Priority Priority `json:"priority,omitempty"`
}

// Application is a complete ALS: the KPN plus QoS constraints.
type Application struct {
	Name      string     `json:"name"`
	Processes []*Process `json:"processes"`
	Channels  []*Channel `json:"channels"`
	QoS       QoS        `json:"qos"`

	byName map[string]ProcessID
}

// NewApplication returns an empty application with the given QoS.
func NewApplication(name string, qos QoS) *Application {
	return &Application{Name: name, QoS: qos, byName: make(map[string]ProcessID)}
}

// AddProcess appends a process and returns it. Declaration order matters:
// the mapper breaks desirability ties in declaration order, which encodes
// the paper's tie-breaking in the worked example.
func (a *Application) AddProcess(name string) *Process {
	return a.addProcess(&Process{Name: name})
}

// AddPinnedProcess appends a process fixed to the named tile.
func (a *Application) AddPinnedProcess(name, tile string) *Process {
	return a.addProcess(&Process{Name: name, PinnedTile: tile})
}

// AddControlProcess appends a control process excluded from the stream
// mapping.
func (a *Application) AddControlProcess(name string) *Process {
	return a.addProcess(&Process{Name: name, Control: true})
}

func (a *Application) addProcess(p *Process) *Process {
	if a.byName == nil {
		a.byName = make(map[string]ProcessID)
	}
	if _, dup := a.byName[p.Name]; dup {
		panic(fmt.Sprintf("model: duplicate process %q", p.Name))
	}
	p.ID = ProcessID(len(a.Processes))
	a.Processes = append(a.Processes, p)
	a.byName[p.Name] = p.ID
	return p
}

// Connect adds a channel between two processes using the default port
// names "out" and "in".
func (a *Application) Connect(src, dst *Process, tokensPerPeriod, tokenBytes int64) *Channel {
	return a.ConnectPorts(src, "out", dst, "in", tokensPerPeriod, tokenBytes)
}

// ConnectPorts adds a channel binding the named source and destination
// ports.
func (a *Application) ConnectPorts(src *Process, srcPort string, dst *Process, dstPort string, tokensPerPeriod, tokenBytes int64) *Channel {
	c := &Channel{
		ID:              ChannelID(len(a.Channels)),
		Name:            fmt.Sprintf("%s→%s", src.Name, dst.Name),
		Src:             src.ID,
		Dst:             dst.ID,
		TokensPerPeriod: tokensPerPeriod,
		TokenBytes:      tokenBytes,
		SrcPort:         srcPort,
		DstPort:         dstPort,
	}
	a.Channels = append(a.Channels, c)
	return c
}

// Process returns the process with the given ID.
func (a *Application) Process(id ProcessID) *Process { return a.Processes[id] }

// ProcessByName returns the named process, or nil.
func (a *Application) ProcessByName(name string) *Process {
	id, ok := a.byName[name]
	if !ok {
		return nil
	}
	return a.Processes[id]
}

// Channel returns the channel with the given ID.
func (a *Application) Channel(id ChannelID) *Channel { return a.Channels[id] }

// MappableProcesses returns the processes the spatial mapper must place:
// neither pinned nor control processes.
func (a *Application) MappableProcesses() []*Process {
	var out []*Process
	for _, p := range a.Processes {
		if p.PinnedTile == "" && !p.Control {
			out = append(out, p)
		}
	}
	return out
}

// StreamChannels returns the channels belonging to the data stream: both
// endpoints are non-control processes.
func (a *Application) StreamChannels() []*Channel {
	var out []*Channel
	for _, c := range a.Channels {
		if a.Processes[c.Src].Control || a.Processes[c.Dst].Control {
			continue
		}
		out = append(out, c)
	}
	return out
}

// ChannelsOf returns the stream channels incident to process p.
func (a *Application) ChannelsOf(p ProcessID) []*Channel {
	var out []*Channel
	for _, c := range a.StreamChannels() {
		if c.Src == p || c.Dst == p {
			out = append(out, c)
		}
	}
	return out
}

// Validate checks referential integrity and QoS sanity.
func (a *Application) Validate() error {
	if a.QoS.PeriodNs <= 0 {
		return fmt.Errorf("model: application %q has no period constraint", a.Name)
	}
	if a.QoS.LatencyNs < 0 {
		return fmt.Errorf("model: application %q has negative latency bound", a.Name)
	}
	if len(a.Processes) == 0 {
		return fmt.Errorf("model: application %q has no processes", a.Name)
	}
	for _, c := range a.Channels {
		if int(c.Src) >= len(a.Processes) || int(c.Dst) >= len(a.Processes) || c.Src < 0 || c.Dst < 0 {
			return fmt.Errorf("model: channel %q references unknown process", c.Name)
		}
		if c.Src == c.Dst {
			return fmt.Errorf("model: channel %q is a self-loop", c.Name)
		}
		if c.TokensPerPeriod <= 0 {
			return fmt.Errorf("model: channel %q transfers no tokens", c.Name)
		}
		if c.TokenBytes <= 0 {
			return fmt.Errorf("model: channel %q has no token size", c.Name)
		}
	}
	return nil
}

// Rebind restores internal indices after JSON decoding.
func (a *Application) Rebind() error {
	a.byName = make(map[string]ProcessID, len(a.Processes))
	for i, p := range a.Processes {
		p.ID = ProcessID(i)
		if _, dup := a.byName[p.Name]; dup {
			return fmt.Errorf("model: duplicate process %q", p.Name)
		}
		a.byName[p.Name] = p.ID
	}
	for i, c := range a.Channels {
		c.ID = ChannelID(i)
	}
	return a.Validate()
}

// Implementation is one concrete realisation of a process for one tile
// type, specified as a CSDF actor with per-port rate patterns (the rows of
// the paper's Table 1).
type Implementation struct {
	// Process names the KPN process this implements.
	Process string `json:"process"`
	// TileType is the processing-element type the implementation runs on.
	TileType arch.TileType `json:"tileType"`
	// WCET holds per-phase worst-case execution times in clock cycles of
	// the target tile.
	WCET csdf.Pattern `json:"wcet"`
	// In and Out map port names to per-phase consumption and production
	// patterns; lengths must equal len(WCET).
	In  map[string]csdf.Pattern `json:"in,omitempty"`
	Out map[string]csdf.Pattern `json:"out,omitempty"`
	// EnergyPerPeriod is the average energy in nJ the implementation
	// spends per QoS period (Table 1's "Avg. energy [nJ/symbol]").
	EnergyPerPeriod float64 `json:"energyPerPeriod"`
	// MemBytes is the tile-local memory footprint (code + state, without
	// stream buffers).
	MemBytes int64 `json:"memBytes"`
}

// Phases returns the implementation's CSDF phase count.
func (im *Implementation) Phases() int { return len(im.WCET) }

// String identifies the implementation for traces and errors.
func (im *Implementation) String() string {
	return fmt.Sprintf("%s@%s", im.Process, im.TileType)
}

// Validate checks pattern shape consistency.
func (im *Implementation) Validate() error {
	if len(im.WCET) == 0 {
		return fmt.Errorf("model: implementation %s has no phases", im)
	}
	for port, p := range im.In {
		if len(p) != len(im.WCET) {
			return fmt.Errorf("model: implementation %s: input port %q has %d phases, WCET has %d",
				im, port, len(p), len(im.WCET))
		}
	}
	for port, p := range im.Out {
		if len(p) != len(im.WCET) {
			return fmt.Errorf("model: implementation %s: output port %q has %d phases, WCET has %d",
				im, port, len(p), len(im.WCET))
		}
	}
	return nil
}

// CyclesPerPeriod returns the processing cycles the implementation needs
// per QoS period when serving channel traffic of the given application:
// the firings per period (channel tokens divided by the port's rate sum)
// times the cycles per full phase cycle. An error is reported when no
// attached stream channel binds to a known port or when channel rates are
// inconsistent with the patterns.
func (im *Implementation) CyclesPerPeriod(app *Application, p *Process) (int64, error) {
	cycles := im.WCET.Sum()
	for _, c := range app.ChannelsOf(p.ID) {
		var pat csdf.Pattern
		switch {
		case c.Dst == p.ID:
			pat = im.In[c.DstPort]
		case c.Src == p.ID:
			pat = im.Out[c.SrcPort]
		}
		if pat == nil {
			continue
		}
		sum := pat.Sum()
		if sum == 0 {
			return 0, fmt.Errorf("model: %s: port bound to channel %q never transfers", im, c.Name)
		}
		if c.TokensPerPeriod%sum != 0 {
			return 0, fmt.Errorf("model: %s: channel %q carries %d tokens/period, not a multiple of the pattern total %d",
				im, c.Name, c.TokensPerPeriod, sum)
		}
		return cycles * (c.TokensPerPeriod / sum), nil
	}
	return 0, fmt.Errorf("model: %s: no stream channel binds to any of its ports", im)
}

// Library is the run-time catalogue of available implementations, indexed
// by process name.
type Library struct {
	impls map[string][]*Implementation
}

// NewLibrary returns an empty library.
func NewLibrary() *Library { return &Library{impls: make(map[string][]*Implementation)} }

// Add registers an implementation. It panics on shape errors so that
// malformed libraries fail loudly at construction.
func (l *Library) Add(im *Implementation) *Library {
	if err := im.Validate(); err != nil {
		panic(err)
	}
	l.impls[im.Process] = append(l.impls[im.Process], im)
	return l
}

// For returns the implementations of the named process, in registration
// order.
func (l *Library) For(process string) []*Implementation { return l.impls[process] }

// ForType returns the implementation of the named process for the given
// tile type, or nil.
func (l *Library) ForType(process string, tt arch.TileType) *Implementation {
	for _, im := range l.impls[process] {
		if im.TileType == tt {
			return im
		}
	}
	return nil
}

// Processes returns the number of distinct processes with implementations.
func (l *Library) Processes() int { return len(l.impls) }
