package core

import (
	"fmt"
	"math"
	"strings"

	"rtsm/internal/arch"
)

// Trace records every decision of a mapping attempt. The experiment
// harness renders Trace.Step2 as the paper's Table 2.
type Trace struct {
	Step1 []Step1Record
	Step2 []Step2Record
	Step3 []Step3Record
	Notes []string
}

// Step1Record documents one implementation choice.
type Step1Record struct {
	Process string
	// Desirability is the cost gap between the cheapest and second
	// cheapest option at decision time; +Inf means the process had a
	// single remaining option (the paper's "chosen per default").
	Desirability float64
	Impl         string
	Tile         string
}

// String renders the record as one line of the step-1 trace table.
func (r Step1Record) String() string {
	d := "forced"
	if !math.IsInf(r.Desirability, 1) {
		d = fmt.Sprintf("%.1f", r.Desirability)
	}
	return fmt.Sprintf("%-12s desirability=%-7s → %s on %s", r.Process, d, r.Impl, r.Tile)
}

// MoveKind distinguishes step-2 neighbourhood moves.
type MoveKind int

const (
	// Initial is the pseudo-record holding step 1's greedy assignment.
	Initial MoveKind = iota
	// Move relocates a process to a free tile of the same type.
	Move
	// Swap exchanges the tiles of two processes of the same tile type.
	Swap
)

// String names the move kind as it appears in the step-2 trace.
func (k MoveKind) String() string {
	switch k {
	case Initial:
		return "initial"
	case Move:
		return "move"
	case Swap:
		return "swap"
	}
	return "?"
}

// Step2Record documents one step-2 iteration: a candidate reassignment,
// the resulting cost, and the verdict, mirroring a row of the paper's
// Table 2.
type Step2Record struct {
	Iteration int
	Kind      MoveKind
	// ProcA moves (to TileB) or swaps with ProcB.
	ProcA, ProcB string
	TileA, TileB string
	// Assignment snapshots tile name → process name as evaluated.
	Assignment map[string]string
	Cost       float64
	Accepted   bool
	Remark     string
}

// String renders the record as one line of the step-2 (Table 2) trace.
func (r Step2Record) String() string {
	return fmt.Sprintf("iter %d: %-7s %-24s cost=%-6.1f %s",
		r.Iteration, r.Kind, r.describeMove(), r.Cost, r.Remark)
}

func (r Step2Record) describeMove() string {
	switch r.Kind {
	case Initial:
		return "(greedy assignment)"
	case Move:
		return fmt.Sprintf("%s: %s→%s", r.ProcA, r.TileA, r.TileB)
	case Swap:
		return fmt.Sprintf("%s↔%s", r.ProcA, r.ProcB)
	}
	return ""
}

// Step3Record documents one routed channel.
type Step3Record struct {
	Channel string
	Bps     int64
	Hops    int
	Routers []arch.RouterID
}

// String renders the record as one line of the step-3 routing trace.
func (r Step3Record) String() string {
	return fmt.Sprintf("%-24s %8d B/s  %d hops via %v", r.Channel, r.Bps, r.Hops, r.Routers)
}

// RenderStep2Table renders the step-2 trace in the layout of the paper's
// Table 2: one column per tile, one row per iteration, with cost and
// remark. Tile columns appear in the given order.
func (t *Trace) RenderStep2Table(tileOrder []string) string {
	var b strings.Builder
	b.WriteString("Iter")
	for _, tile := range tileOrder {
		fmt.Fprintf(&b, "\t%s", tile)
	}
	b.WriteString("\tCost\tRemark\n")
	for _, r := range t.Step2 {
		iter := "-"
		if r.Kind != Initial {
			iter = fmt.Sprintf("%d", r.Iteration)
		}
		b.WriteString(iter)
		for _, tile := range tileOrder {
			proc := r.Assignment[tile]
			if proc == "" {
				proc = "·"
			}
			fmt.Fprintf(&b, "\t%s", proc)
		}
		fmt.Fprintf(&b, "\t%.0f\t%s\n", r.Cost, r.Remark)
	}
	return b.String()
}
