package core

import (
	"sort"

	"rtsm/internal/arch"
)

// This file exports a Plan's aggregated reservation deltas and rebuilds a
// Plan from them. The durable admission journal records what each commit
// changed — per-tile and per-link deltas, not the mapping that produced
// them — so crash recovery can replay the exact reservation arithmetic
// without the original workload objects. Util is the one float64 in the
// ledger: replay applies the same aggregated per-plan value in a single
// addition, which together with journal order matching commit order makes
// the replayed platform bit-for-bit identical to the live one.

// TileReservation is the aggregated delta one plan applies to one tile.
type TileReservation struct {
	Tile      arch.TileID
	MemBytes  int64
	Util      float64
	Occupants int
	InBps     int64
	OutBps    int64
}

// LinkReservation is the aggregated delta one plan applies to one link.
type LinkReservation struct {
	Link arch.LinkID
	Bps  int64
}

// Deltas returns the plan's aggregated per-tile and per-link reservation
// deltas, sorted by resource ID. Together with the application name they
// are sufficient to reconstruct the plan with NewDeltaPlan.
func (p *Plan) Deltas() ([]TileReservation, []LinkReservation) {
	tiles := make([]TileReservation, 0, len(p.pl.tiles))
	for tid, d := range p.pl.tiles {
		tiles = append(tiles, TileReservation{
			Tile:      tid,
			MemBytes:  d.mem,
			Util:      d.util,
			Occupants: d.occupants,
			InBps:     d.inBps,
			OutBps:    d.outBps,
		})
	}
	sort.Slice(tiles, func(i, j int) bool { return tiles[i].Tile < tiles[j].Tile })
	links := make([]LinkReservation, 0, len(p.pl.links))
	for lid, bps := range p.pl.links {
		links = append(links, LinkReservation{Link: lid, Bps: bps})
	}
	sort.Slice(links, func(i, j int) bool { return links[i].Link < links[j].Link })
	return tiles, links
}

// NewDeltaPlan rebuilds a Plan from journaled reservation deltas. The
// result commits and releases exactly like the original plan — same
// aggregated values, same region footprint — but carries no mapping, so
// it cannot be repaired or relocated; it exists for replay and for
// releasing residents whose Result did not survive a crash.
func NewDeltaPlan(plat *arch.Platform, appName string,
	tiles []TileReservation, links []LinkReservation) *Plan {
	pl := &commitPlan{
		appName: appName,
		tiles:   make(map[arch.TileID]*tileDelta, len(tiles)),
		links:   make(map[arch.LinkID]int64, len(links)),
		arena:   make([]tileDelta, 0, len(tiles)),
	}
	for _, tr := range tiles {
		d := pl.tile(tr.Tile)
		d.mem += tr.MemBytes
		d.util += tr.Util
		d.occupants += tr.Occupants
		d.inBps += tr.InBps
		d.outBps += tr.OutBps
	}
	for _, lr := range links {
		pl.links[lr.Link] += lr.Bps
	}
	pl.regions = pl.footprint(plat)
	return &Plan{pl: pl}
}
