package core

import (
	"fmt"

	"rtsm/internal/arch"
	"rtsm/internal/model"
)

// This file is the commit phase of the admission pipeline: a mapping is
// computed against a snapshot of the platform (Mapper.Map never mutates
// its argument), and committing it to the live platform must re-validate
// adequacy and adherence because competing admissions may have landed
// since the snapshot was taken. Apply therefore works in two phases: it
// first aggregates every reservation the mapping needs into a plan, checks
// the whole plan against the live residual state, and only then mutates —
// so a conflicting admission yields an error and an untouched platform,
// never a partial or over-committed reservation.

// ConflictError reports that a mapping could not be committed because the
// platform no longer has the resources the mapping relies on — i.e. a
// competing reservation landed between snapshot and commit. The admission
// pipeline retries on it with a fresh snapshot.
type ConflictError struct {
	App    string
	Detail string
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("core: cannot commit %q: %s", e.App, e.Detail)
}

// tileDelta aggregates what a mapping adds to one tile.
type tileDelta struct {
	mem       int64
	util      float64
	occupants int
	inBps     int64
	outBps    int64
}

// commitPlan is the full set of reservations one mapping makes, aggregated
// per tile and per link so it can be validated against residual capacity
// in one pass and applied atomically.
type commitPlan struct {
	app   *model.Application
	tiles map[arch.TileID]*tileDelta
	links map[arch.LinkID]int64
}

func (pl *commitPlan) tile(id arch.TileID) *tileDelta {
	d := pl.tiles[id]
	if d == nil {
		d = &tileDelta{}
		pl.tiles[id] = d
	}
	return d
}

// planReservations computes the commit plan of a mapping result. In strict
// mode an incomplete mapping (a mappable process without implementation or
// tile) is an error; lenient mode skips such processes, matching Remove's
// tolerance for partially built mappings.
func planReservations(plat *arch.Platform, res *Result, strict bool) (*commitPlan, error) {
	mp := res.Mapping
	app := mp.App
	pl := &commitPlan{
		app:   app,
		tiles: make(map[arch.TileID]*tileDelta),
		links: make(map[arch.LinkID]int64),
	}
	for _, p := range app.MappableProcesses() {
		im := mp.Impl[p.ID]
		tid, ok := mp.Tile[p.ID]
		if im == nil || !ok {
			if strict {
				return nil, fmt.Errorf("core: mapping incomplete for process %q", p.Name)
			}
			continue
		}
		cyc, err := im.CyclesPerPeriod(app, p)
		if err != nil {
			if strict {
				return nil, err
			}
			continue
		}
		d := pl.tile(tid)
		d.mem += im.MemBytes
		d.util += utilisation(plat.Tile(tid), cyc, app.QoS.PeriodNs)
		d.occupants++
	}
	for _, c := range app.StreamChannels() {
		path, ok := mp.Route[c.ID]
		if !ok {
			continue
		}
		bps := channelBps(c, app.QoS.PeriodNs)
		for _, lid := range path.Links {
			pl.links[lid] += bps
		}
		if path.Hops() > 0 {
			pl.tile(mp.Tile[c.Src]).outBps += bps
			pl.tile(mp.Tile[c.Dst]).inBps += bps
		}
		if buf := mp.Buffers[c.ID]; buf > 0 {
			pl.tile(mp.Tile[c.Dst]).mem += buf * c.TokenBytes
		}
	}
	return pl, nil
}

// validate checks the whole plan against the platform's live residual
// capacity, returning a ConflictError naming the first exhausted resource.
func (pl *commitPlan) validate(plat *arch.Platform) error {
	conflict := func(format string, args ...any) error {
		return &ConflictError{App: pl.app.Name, Detail: fmt.Sprintf(format, args...)}
	}
	for tid, d := range pl.tiles {
		t := plat.Tile(tid)
		if t.ReservedMem+d.mem > t.MemBytes {
			return conflict("tile %q memory exhausted (%d of %d bytes free, need %d)",
				t.Name, t.FreeMem(), t.MemBytes, d.mem)
		}
		if t.ReservedUtil+d.util > 1.0+utilEps {
			return conflict("tile %q over-committed (util %.3f + %.3f > 1)",
				t.Name, t.ReservedUtil, d.util)
		}
		if t.MaxOccupants > 0 && t.Occupants+d.occupants > t.MaxOccupants {
			return conflict("tile %q occupied (%d of max %d)", t.Name, t.Occupants, t.MaxOccupants)
		}
		if t.NICapBps > 0 && (t.ReservedInBps+d.inBps > t.NICapBps || t.ReservedOutBps+d.outBps > t.NICapBps) {
			return conflict("tile %q network interface saturated", t.Name)
		}
	}
	for lid, bps := range pl.links {
		l := plat.Link(lid)
		if l.ReservedBps+bps > l.CapBps {
			return conflict("link %d capacity exhausted (%d of %d bps free, need %d)",
				lid, l.FreeBps(), l.CapBps, bps)
		}
	}
	return nil
}

// commit applies the plan. sign is +1 to reserve, -1 to release.
func (pl *commitPlan) commit(plat *arch.Platform, sign int64) {
	for tid, d := range pl.tiles {
		t := plat.Tile(tid)
		t.ReservedMem += sign * d.mem
		t.ReservedUtil += float64(sign) * d.util
		t.Occupants += int(sign) * d.occupants
		t.ReservedInBps += sign * d.inBps
		t.ReservedOutBps += sign * d.outBps
	}
	for lid, bps := range pl.links {
		plat.Link(lid).ReservedBps += sign * bps
	}
	plat.BumpVersion()
}

// Validate checks whether a mapping computed against a (possibly stale)
// snapshot can still be committed to the platform, without mutating
// anything. A nil error means Apply would succeed on the platform as it
// is now.
func Validate(plat *arch.Platform, res *Result) error {
	pl, err := planReservations(plat, res, true)
	if err != nil {
		return err
	}
	return pl.validate(plat)
}

// Apply commits a mapping's resource reservations to a platform: tile
// memory (implementation plus stream buffers), processing utilisation,
// network-interface bandwidth and link lanes. Use it to admit an
// application in multi-application scenarios; Remove undoes it.
//
// Apply is transactional: the whole mapping is validated against the
// platform's residual capacity first, and on any failure — including a
// *ConflictError when a competing admission claimed the resources since
// the mapping's snapshot was taken — the platform is left untouched.
func Apply(plat *arch.Platform, res *Result) error {
	pl, err := planReservations(plat, res, true)
	if err != nil {
		return err
	}
	if err := pl.validate(plat); err != nil {
		return err
	}
	pl.commit(plat, +1)
	return nil
}

// Remove releases a previously applied mapping's reservations.
func Remove(plat *arch.Platform, res *Result) {
	pl, err := planReservations(plat, res, false)
	if err != nil {
		return // lenient planning never errors; keep the compiler honest
	}
	pl.commit(plat, -1)
}
