package core

import (
	"fmt"
	"sort"

	"rtsm/internal/arch"
)

// This file is the commit phase of the admission pipeline: a mapping is
// computed against a snapshot of the platform (Mapper.Map never mutates
// its argument), and committing it to the live platform must re-validate
// adequacy and adherence because competing admissions may have landed
// since the snapshot was taken. Apply therefore works in two phases: it
// first aggregates every reservation the mapping needs into a plan, checks
// the whole plan against the live residual state, and only then mutates —
// so a conflicting admission yields an error and an untouched platform,
// never a partial or over-committed reservation.

// ResourceKind names the capacity dimension a validation failure exhausted.
type ResourceKind int

const (
	// ResTileMem: tile-local memory (implementation images plus stream
	// buffers charged to the consumer's tile).
	ResTileMem ResourceKind = iota
	// ResTileUtil: processing-element utilisation.
	ResTileUtil
	// ResTileOccupancy: the tile's occupant-slot limit.
	ResTileOccupancy
	// ResTileNI: the tile's network-interface bandwidth (in or out).
	ResTileNI
	// ResLink: guaranteed-throughput bandwidth of one NoC link.
	ResLink
	// ResTileFailed: the tile is marked failed at run time; no plan may
	// add reservations to it whatever its ledger says.
	ResTileFailed
	// ResLinkFailed: the link is marked failed at run time.
	ResLinkFailed
)

// String names the capacity dimension for human-readable reports.
func (k ResourceKind) String() string {
	switch k {
	case ResTileMem:
		return "tile-memory"
	case ResTileUtil:
		return "tile-utilisation"
	case ResTileOccupancy:
		return "tile-occupancy"
	case ResTileNI:
		return "tile-ni"
	case ResLink:
		return "link"
	case ResTileFailed:
		return "tile-failed"
	case ResLinkFailed:
		return "link-failed"
	}
	return "?"
}

// ValidationError is one resource conflict found while validating a
// mapping against a platform's residual capacity: which resource, on which
// tile or link, and how far short it falls. Need is what the mapping adds,
// Avail what the platform still has free — bytes for ResTileMem,
// a utilisation fraction for ResTileUtil, occupant slots for
// ResTileOccupancy, and bits per second for ResTileNI and ResLink.
type ValidationError struct {
	Kind ResourceKind
	// Tile is the conflicted tile for the tile kinds, arch.NoTile for
	// ResLink.
	Tile arch.TileID
	// TileName mirrors Tile for human-readable reports.
	TileName string
	// Link is the conflicted link for ResLink, -1 otherwise.
	Link  arch.LinkID
	Need  float64
	Avail float64
	// Region is the mesh region owning the conflicted tile or link, so
	// the manager's repair/retry and template selection can stay
	// region-local. Zero on an unpartitioned platform.
	Region arch.RegionID
}

// Error renders the violation with its resource, shortfall and tile or
// link identity.
func (e ValidationError) Error() string {
	switch e.Kind {
	case ResLink:
		return fmt.Sprintf("link %d capacity exhausted (%.0f of needed %.0f bps free)", e.Link, e.Avail, e.Need)
	case ResTileFailed:
		return fmt.Sprintf("tile %q has failed", e.TileName)
	case ResLinkFailed:
		return fmt.Sprintf("link %d has failed", e.Link)
	case ResTileUtil:
		return fmt.Sprintf("tile %q over-committed (util need %.3f, free %.3f)", e.TileName, e.Need, e.Avail)
	case ResTileOccupancy:
		return fmt.Sprintf("tile %q occupied (need %.0f slots, %.0f free)", e.TileName, e.Need, e.Avail)
	case ResTileNI:
		return fmt.Sprintf("tile %q network interface saturated (need %.0f bps, %.0f free)", e.TileName, e.Need, e.Avail)
	default:
		return fmt.Sprintf("tile %q memory exhausted (need %.0f bytes, %.0f free)", e.TileName, e.Need, e.Avail)
	}
}

// ConflictError reports that a mapping could not be committed because the
// platform no longer has the resources the mapping relies on — i.e. a
// competing reservation landed between snapshot and commit. The admission
// pipeline retries on it with a fresh snapshot; the incremental repair
// engine reads Violations to keep everything that still fits.
type ConflictError struct {
	App string
	// Violations attributes the conflict per resource: every exhausted
	// tile dimension and link, not just the first one found.
	Violations []ValidationError
	// Regions lists the regions owning the conflicted resources, sorted
	// ascending without duplicates. A retry that repairs region-locally
	// knows from this which part of the mesh to re-examine.
	Regions []arch.RegionID
}

// Error summarises the first violation and how many more there are.
func (e *ConflictError) Error() string {
	detail := "no violations recorded"
	if len(e.Violations) > 0 {
		detail = e.Violations[0].Error()
		if n := len(e.Violations) - 1; n > 0 {
			detail = fmt.Sprintf("%s (and %d more)", detail, n)
		}
	}
	return fmt.Sprintf("core: cannot commit %q: %s", e.App, detail)
}

// tileDelta aggregates what a mapping adds to one tile.
type tileDelta struct {
	mem       int64
	util      float64
	occupants int
	inBps     int64
	outBps    int64
}

// commitPlan is the full set of reservations one mapping makes, aggregated
// per tile and per link so it can be validated against residual capacity
// in one pass and applied atomically.
type commitPlan struct {
	// appName identifies the application the plan reserves for. Only the
	// name is kept (not the model.Application) so replay can rebuild
	// plans from journaled deltas without the original workload objects.
	appName string
	tiles   map[arch.TileID]*tileDelta
	links   map[arch.LinkID]int64
	// arena backs the tileDelta values in one allocation; tile() hands
	// out pointers into it while capacity lasts. Entries are never
	// re-derived from the slice, so a fallback heap allocation past the
	// pre-sized capacity is harmless.
	arena []tileDelta
	// regions is the plan's region footprint: the owners of every tile
	// and link the plan touches, ascending without duplicates. Validation
	// and commit only read and mutate state inside these regions, so they
	// are exactly the locks a sharded commit must hold.
	regions []arch.RegionID
}

// footprint computes the plan's region footprint on the given platform.
// It reads only static topology (tile→router attachment, link endpoints,
// the partition geometry), so it is safe to call without any region lock.
func (pl *commitPlan) footprint(plat *arch.Platform) []arch.RegionID {
	seen := make(arch.RegionSet)
	for tid := range pl.tiles {
		seen.Add(plat.RegionOfTile(tid))
	}
	for lid := range pl.links {
		seen.Add(plat.RegionOfLink(lid))
	}
	return seen.Sorted()
}

func (pl *commitPlan) tile(id arch.TileID) *tileDelta {
	d := pl.tiles[id]
	if d == nil {
		if len(pl.arena) < cap(pl.arena) {
			pl.arena = pl.arena[:len(pl.arena)+1]
			d = &pl.arena[len(pl.arena)-1]
		} else {
			d = &tileDelta{}
		}
		pl.tiles[id] = d
	}
	return d
}

// planReservations computes the commit plan of a mapping result. In strict
// mode an incomplete mapping (a mappable process without implementation or
// tile) is an error; lenient mode skips such processes, matching Remove's
// tolerance for partially built mappings.
func planReservations(plat *arch.Platform, res *Result, strict bool) (*commitPlan, error) {
	mp := res.Mapping
	app := mp.App
	// Size the aggregation maps from the mapping itself: one tile entry
	// per placed process at most, a handful of links per routed channel.
	// Pre-sizing keeps the per-admission allocation count flat — this
	// plan is rebuilt on every validate/commit round of the hot path.
	chans := app.StreamChannels()
	pl := &commitPlan{
		appName: app.Name,
		tiles:   make(map[arch.TileID]*tileDelta, len(mp.Tile)),
		links:   make(map[arch.LinkID]int64, 4*len(chans)),
		arena:   make([]tileDelta, 0, len(mp.Tile)),
	}
	for _, p := range app.MappableProcesses() {
		im := mp.Impl[p.ID]
		tid, ok := mp.Tile[p.ID]
		if im == nil || !ok {
			if strict {
				return nil, fmt.Errorf("core: mapping incomplete for process %q", p.Name)
			}
			continue
		}
		cyc, err := im.CyclesPerPeriod(app, p)
		if err != nil {
			if strict {
				return nil, err
			}
			continue
		}
		d := pl.tile(tid)
		d.mem += im.MemBytes
		// The static cycle budget, not the tile struct: planning runs
		// lock-free, and the struct pointer may be mid-swap by a
		// copy-on-write fault in another goroutine.
		d.util += utilisationOf(plat.TileCycleBudget(tid, app.QoS.PeriodNs), cyc)
		d.occupants++
	}
	for _, c := range chans {
		path, ok := mp.Route[c.ID]
		if !ok {
			continue
		}
		bps := channelBps(c, app.QoS.PeriodNs)
		for _, lid := range path.Links {
			pl.links[lid] += bps
		}
		if path.Hops() > 0 {
			pl.tile(mp.Tile[c.Src]).outBps += bps
			pl.tile(mp.Tile[c.Dst]).inBps += bps
		}
		if buf := mp.Buffers[c.ID]; buf > 0 {
			pl.tile(mp.Tile[c.Dst]).mem += buf * c.TokenBytes
		}
	}
	pl.regions = pl.footprint(plat)
	return pl, nil
}

// violations checks the whole plan against the platform's live residual
// capacity and attributes every conflict to the resource it exhausts. Only
// the resources the plan touches are visited — this runs inside the
// manager's serialized commit section — sorted by ID so the report is
// deterministic.
func (pl *commitPlan) violations(plat *arch.Platform) []ValidationError {
	var out []ValidationError
	tileIDs := make([]arch.TileID, 0, len(pl.tiles))
	for tid := range pl.tiles {
		tileIDs = append(tileIDs, tid)
	}
	sort.Slice(tileIDs, func(i, j int) bool { return tileIDs[i] < tileIDs[j] })
	for _, tid := range tileIDs {
		t := plat.Tile(tid)
		d := pl.tiles[tid]
		if t.Failed {
			out = append(out, ValidationError{Kind: ResTileFailed, Tile: t.ID, TileName: t.Name, Link: -1,
				Need: float64(d.occupants)})
			continue
		}
		if t.ReservedMem+d.mem > t.MemBytes {
			out = append(out, ValidationError{Kind: ResTileMem, Tile: t.ID, TileName: t.Name, Link: -1,
				Need: float64(d.mem), Avail: float64(t.FreeMem())})
		}
		if t.ReservedUtil+d.util > 1.0+utilEps {
			out = append(out, ValidationError{Kind: ResTileUtil, Tile: t.ID, TileName: t.Name, Link: -1,
				Need: d.util, Avail: 1.0 - t.ReservedUtil})
		}
		if t.MaxOccupants > 0 && t.Occupants+d.occupants > t.MaxOccupants {
			out = append(out, ValidationError{Kind: ResTileOccupancy, Tile: t.ID, TileName: t.Name, Link: -1,
				Need: float64(d.occupants), Avail: float64(t.MaxOccupants - t.Occupants)})
		}
		if t.NICapBps > 0 && (t.ReservedInBps+d.inBps > t.NICapBps || t.ReservedOutBps+d.outBps > t.NICapBps) {
			need, avail := d.inBps, t.NICapBps-t.ReservedInBps
			if t.ReservedOutBps+d.outBps > t.NICapBps {
				need, avail = d.outBps, t.NICapBps-t.ReservedOutBps
			}
			out = append(out, ValidationError{Kind: ResTileNI, Tile: t.ID, TileName: t.Name, Link: -1,
				Need: float64(need), Avail: float64(avail)})
		}
	}
	linkIDs := make([]arch.LinkID, 0, len(pl.links))
	for lid := range pl.links {
		linkIDs = append(linkIDs, lid)
	}
	sort.Slice(linkIDs, func(i, j int) bool { return linkIDs[i] < linkIDs[j] })
	for _, lid := range linkIDs {
		l := plat.Link(lid)
		bps := pl.links[lid]
		if l.Failed {
			out = append(out, ValidationError{Kind: ResLinkFailed, Tile: arch.NoTile, Link: lid,
				Need: float64(bps)})
			continue
		}
		if l.ReservedBps+bps > l.CapBps {
			out = append(out, ValidationError{Kind: ResLink, Tile: arch.NoTile, Link: lid,
				Need: float64(bps), Avail: float64(l.FreeBps())})
		}
	}
	for i := range out {
		// Link violations carry Tile == arch.NoTile; attribute them via the
		// link. ResLinkFailed included — the run-time FailLink path is the
		// only producer and routing it through RegionOfTile(NoTile) panics.
		if out[i].Link >= 0 {
			out[i].Region = plat.RegionOfLink(out[i].Link)
		} else {
			out[i].Region = plat.RegionOfTile(out[i].Tile)
		}
	}
	return out
}

// conflictRegions collects the distinct regions of a violation list,
// ascending.
func conflictRegions(vs []ValidationError) []arch.RegionID {
	seen := make(arch.RegionSet, len(vs))
	for _, v := range vs {
		seen.Add(v.Region)
	}
	return seen.Sorted()
}

// validate checks the whole plan against the platform's live residual
// capacity, returning a ConflictError attributing every exhausted resource.
func (pl *commitPlan) validate(plat *arch.Platform) error {
	if vs := pl.violations(plat); len(vs) > 0 {
		return &ConflictError{App: pl.appName, Violations: vs, Regions: conflictRegions(vs)}
	}
	return nil
}

// commit applies the plan. sign is +1 to reserve, -1 to release. Besides
// the global version it bumps the version of every region in the plan's
// footprint — the caller holds exactly those region locks, which is also
// what makes the copy-on-write fault-in safe: regions still shared with a
// snapshot are copied before the first mutation, so snapshots keep their
// captured state while the live platform moves on.
func (pl *commitPlan) commit(plat *arch.Platform, sign int64) {
	plat.MaterializeRegions(pl.regions)
	for tid, d := range pl.tiles {
		t := plat.Tile(tid)
		t.ReservedMem += sign * d.mem
		t.ReservedUtil += float64(sign) * d.util
		t.Occupants += int(sign) * d.occupants
		t.ReservedInBps += sign * d.inBps
		t.ReservedOutBps += sign * d.outBps
	}
	for lid, bps := range pl.links {
		plat.Link(lid).ReservedBps += sign * bps
	}
	for _, r := range pl.regions {
		plat.BumpRegion(r)
	}
	plat.BumpVersion()
}

// Validate checks whether a mapping computed against a (possibly stale)
// snapshot can still be committed to the platform, without mutating
// anything. A nil error means Apply would succeed on the platform as it
// is now.
func Validate(plat *arch.Platform, res *Result) error {
	pl, err := planReservations(plat, res, true)
	if err != nil {
		return err
	}
	return pl.validate(plat)
}

// Conflicts returns the per-resource violations committing res to plat
// would hit — empty when Apply would succeed. It is Validate with the
// attribution exposed; the repair engine diffs a stale mapping against the
// fresh platform with it.
func Conflicts(plat *arch.Platform, res *Result) ([]ValidationError, error) {
	pl, err := planReservations(plat, res, true)
	if err != nil {
		return nil, err
	}
	return pl.violations(plat), nil
}

// Apply commits a mapping's resource reservations to a platform: tile
// memory (implementation plus stream buffers), processing utilisation,
// network-interface bandwidth and link lanes. Use it to admit an
// application in multi-application scenarios; Remove undoes it.
//
// Apply is transactional: the whole mapping is validated against the
// platform's residual capacity first, and on any failure — including a
// *ConflictError when a competing admission claimed the resources since
// the mapping's snapshot was taken — the platform is left untouched.
//
// Apply assumes the caller serializes all access to plat (one lock for
// the whole platform). Sharded callers that only hold the locks of the
// regions a mapping touches use NewPlan instead, which separates the
// lock-free planning from the locked validate-and-commit.
func Apply(plat *arch.Platform, res *Result) error {
	pl, err := NewPlan(plat, res)
	if err != nil {
		return err
	}
	if err := pl.Validate(plat); err != nil {
		return err
	}
	pl.Commit(plat)
	return nil
}

// Remove releases a previously applied mapping's reservations. Like
// Apply it assumes whole-platform serialization; sharded callers use
// NewRemovalPlan and Plan.Release under the footprint's region locks.
func Remove(plat *arch.Platform, res *Result) {
	pl, err := NewRemovalPlan(plat, res)
	if err != nil {
		return // lenient planning never errors; keep the compiler honest
	}
	pl.Release(plat)
}

// Plan is the aggregated reservation set of one mapping, ready to be
// validated and committed under the region locks of its footprint. It is
// the unit of the sharded commit path: NewPlan aggregates and computes
// the footprint without any lock (it reads only the mapping and static
// platform topology), the caller then takes the footprint's region locks
// in canonical order (arch.RegionLocks.Lock) and runs Validate/Commit,
// which touch reservation state only inside those regions.
type Plan struct {
	pl *commitPlan
}

// NewPlan aggregates the reservations res makes into a Plan, strictly: an
// incomplete mapping is an error. No reservation state is read, so no
// lock is needed.
func NewPlan(plat *arch.Platform, res *Result) (*Plan, error) {
	pl, err := planReservations(plat, res, true)
	if err != nil {
		return nil, err
	}
	return &Plan{pl: pl}, nil
}

// NewRemovalPlan aggregates the reservations res holds for release,
// leniently: processes a partially built mapping never placed are
// skipped, matching Remove's tolerance.
func NewRemovalPlan(plat *arch.Platform, res *Result) (*Plan, error) {
	pl, err := planReservations(plat, res, false)
	if err != nil {
		return nil, err
	}
	return &Plan{pl: pl}, nil
}

// App returns the name of the application the plan reserves for.
func (p *Plan) App() string { return p.pl.appName }

// Regions returns the plan's region footprint, ascending without
// duplicates: exactly the region locks Validate, Commit and Release need.
// The returned slice is owned by the plan; do not modify it.
func (p *Plan) Regions() []arch.RegionID { return p.pl.regions }

// Overlaps reports whether the plan's footprint shares at least one
// region with the given ascending region list. The preemption planner
// uses it to select victims whose reservations actually sit where a
// failing admission ran out of resources (ConflictError.Regions). An
// empty argument overlaps nothing.
func (p *Plan) Overlaps(regions []arch.RegionID) bool {
	return !regionsDisjoint(p.pl.regions, regions)
}

// UsesTile reports whether the plan holds reservations on the tile. The
// fault evacuation uses it to find the residents a failed tile carried.
func (p *Plan) UsesTile(id arch.TileID) bool {
	_, ok := p.pl.tiles[id]
	return ok
}

// UsesLink reports whether the plan holds reservations on the link.
func (p *Plan) UsesLink(id arch.LinkID) bool {
	_, ok := p.pl.links[id]
	return ok
}

// Violations checks the plan against the platform's live residual
// capacity and attributes every conflict. The caller must hold the
// footprint's region locks.
func (p *Plan) Violations(plat *arch.Platform) []ValidationError {
	return p.pl.violations(plat)
}

// Validate is Violations wrapped into the error Apply would return: nil,
// or a *ConflictError naming the exhausted resources and their regions.
func (p *Plan) Validate(plat *arch.Platform) error {
	return p.pl.validate(plat)
}

// Commit reserves the plan on the platform and bumps the versions of the
// footprint's regions plus the global version. The caller must hold the
// footprint's region locks and have seen Validate succeed under them.
func (p *Plan) Commit(plat *arch.Platform) {
	p.pl.commit(plat, +1)
}

// Release subtracts the plan's reservations, undoing Commit. The caller
// must hold the footprint's region locks.
func (p *Plan) Release(plat *arch.Platform) {
	p.pl.commit(plat, -1)
}
