package core

import (
	"testing"

	"rtsm/internal/arch"
	"rtsm/internal/csdf"
	"rtsm/internal/model"
)

// lineFixture builds src → a → sink on a 3×1 mesh where DSP tiles can be
// arranged to exercise specific step-2/step-3 paths.
func lineApp(t *testing.T, tokens int64) (*model.Application, *model.Library) {
	t.Helper()
	app := model.NewApplication("line", model.QoS{PeriodNs: 4000})
	src := app.AddPinnedProcess("src", "SRC")
	a := app.AddProcess("a")
	b := app.AddProcess("b")
	sink := app.AddPinnedProcess("sink", "SINK")
	app.Connect(src, a, tokens, 4)
	app.Connect(a, b, tokens, 4)
	app.Connect(b, sink, tokens, 4)
	lib := model.NewLibrary()
	for _, name := range []string{"a", "b"} {
		lib.Add(&model.Implementation{
			Process: name, TileType: arch.TypeDSP,
			WCET:            csdf.Vals(2, 480, 2), // util 0.6 at 200 MHz / 4 µs
			In:              map[string]csdf.Pattern{"in": csdf.Vals(tokens, 0, 0)},
			Out:             map[string]csdf.Pattern{"out": csdf.Vals(0, 0, tokens)},
			EnergyPerPeriod: 40, MemBytes: 1024,
		})
	}
	return app, lib
}

func TestStep2MoveToFreeTileAccepted(t *testing.T) {
	app, lib := lineApp(t, 16)
	// Declaration order: DSP_far first (first-fit lands a there), then
	// DSP_near, then DSP_at_src. Utilisation 0.6 forbids co-location, so
	// b takes DSP_near; the improving move for a is the free DSP_at_src.
	plat := arch.NewMesh("moveplat", 3, 1, 800_000_000)
	plat.AttachTile(arch.TileSpec{Name: "DSP_far", Type: arch.TypeDSP, At: arch.Pt(2, 0),
		ClockHz: 200e6, MemBytes: 32 << 10, NICapBps: 800e6})
	plat.AttachTile(arch.TileSpec{Name: "DSP_near", Type: arch.TypeDSP, At: arch.Pt(1, 0),
		ClockHz: 200e6, MemBytes: 32 << 10, NICapBps: 800e6})
	plat.AttachTile(arch.TileSpec{Name: "DSP_at_src", Type: arch.TypeDSP, At: arch.Pt(0, 0),
		ClockHz: 200e6, MemBytes: 32 << 10, NICapBps: 800e6})
	plat.AttachTile(arch.TileSpec{Name: "SRC", Type: arch.TypeSource, At: arch.Pt(0, 0),
		ClockHz: 200e6, MemBytes: 8 << 10, NICapBps: 800e6})
	plat.AttachTile(arch.TileSpec{Name: "SINK", Type: arch.TypeSink, At: arch.Pt(0, 0),
		ClockHz: 200e6, MemBytes: 8 << 10, NICapBps: 800e6})

	res, err := NewMapper(lib).Map(app, plat)
	if err != nil {
		t.Fatal(err)
	}
	sawMove := false
	for _, r := range res.Trace.Step2 {
		if r.Kind == Move && r.Accepted {
			sawMove = true
		}
	}
	if !sawMove {
		t.Errorf("no accepted move in trace: %v", res.Trace.Step2)
	}
	// a ends at the source router (the accepted move); b cannot join it
	// (utilisation 0.6 each forbids co-location) and settles adjacent.
	a := app.ProcessByName("a")
	if pos := res.Platform.Pos(res.Mapping.Tile[a.ID]); pos != arch.Pt(0, 0) {
		t.Errorf("a ended at %v, want the source router", pos)
	}
	b := app.ProcessByName("b")
	if pos := res.Platform.Pos(res.Mapping.Tile[b.ID]); pos != arch.Pt(1, 0) {
		t.Errorf("b ended at %v, want adjacent to the chain", pos)
	}
}

func TestRouteFailureReportedWhenLinksTooSmall(t *testing.T) {
	app, lib := lineApp(t, 16)
	// 16 tokens × 4 B / 4 µs = 16 MB/s per channel; links carry only
	// 1 MB/s, so no channel can ever be routed. The result must be
	// infeasible with a route-failure note, not an error.
	plat := arch.NewMesh("narrow", 3, 1, 1_000_000)
	plat.AttachTile(arch.TileSpec{Name: "DSP0", Type: arch.TypeDSP, At: arch.Pt(1, 0),
		ClockHz: 200e6, MemBytes: 32 << 10})
	plat.AttachTile(arch.TileSpec{Name: "DSP1", Type: arch.TypeDSP, At: arch.Pt(2, 0),
		ClockHz: 200e6, MemBytes: 32 << 10})
	plat.AttachTile(arch.TileSpec{Name: "SRC", Type: arch.TypeSource, At: arch.Pt(0, 0),
		ClockHz: 200e6, MemBytes: 8 << 10})
	plat.AttachTile(arch.TileSpec{Name: "SINK", Type: arch.TypeSink, At: arch.Pt(0, 0),
		ClockHz: 200e6, MemBytes: 8 << 10})
	res, err := NewMapper(lib).Map(app, plat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("unroutable application reported feasible")
	}
}

func TestThroughputInfeasibleStreamRate(t *testing.T) {
	// 400 tokens per 4 µs period: each router actor needs 400 × 20 ns =
	// 8 µs per period, so no placement can meet the period once the
	// stream crosses the NoC. The refinement loop must terminate and
	// report infeasibility with a throughput note.
	app, lib := lineApp(t, 400)
	plat := arch.NewMesh("hot", 3, 1, 800_000_000)
	plat.AttachTile(arch.TileSpec{Name: "DSP0", Type: arch.TypeDSP, At: arch.Pt(1, 0),
		ClockHz: 200e6, MemBytes: 64 << 10})
	plat.AttachTile(arch.TileSpec{Name: "DSP1", Type: arch.TypeDSP, At: arch.Pt(2, 0),
		ClockHz: 200e6, MemBytes: 64 << 10})
	plat.AttachTile(arch.TileSpec{Name: "SRC", Type: arch.TypeSource, At: arch.Pt(0, 0),
		ClockHz: 200e6, MemBytes: 64 << 10})
	plat.AttachTile(arch.TileSpec{Name: "SINK", Type: arch.TypeSink, At: arch.Pt(0, 0),
		ClockHz: 200e6, MemBytes: 64 << 10})
	res, err := NewMapper(lib).Map(app, plat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatalf("stream beyond NoC forwarding rate reported feasible (period %.0f)", res.Analysis.Period)
	}
	// The refinement loop churns through displacements before giving up;
	// whichever attempt is returned, any measured period must violate the
	// constraint.
	if res.Analysis != nil && res.Analysis.Period <= float64(app.QoS.PeriodNs) {
		t.Errorf("infeasible verdict but period %.0f meets the constraint", res.Analysis.Period)
	}
}

func TestStep1FeedbackDeadEndWithoutAlternative(t *testing.T) {
	// Two Montium-only processes, one single-kernel Montium: the starved
	// process's occupant has no alternative type, so step-1 feedback is a
	// dead end and the mapper reports the last attempt infeasible.
	app := model.NewApplication("dead", model.QoS{PeriodNs: 4000})
	src := app.AddPinnedProcess("src", "SRC")
	a := app.AddProcess("a")
	b := app.AddProcess("b")
	sink := app.AddPinnedProcess("sink", "SINK")
	app.Connect(src, a, 8, 4)
	app.Connect(a, b, 8, 4)
	app.Connect(b, sink, 8, 4)
	lib := model.NewLibrary()
	for _, name := range []string{"a", "b"} {
		lib.Add(&model.Implementation{
			Process: name, TileType: arch.TypeMontium,
			WCET:            csdf.Vals(1, 10, 1),
			In:              map[string]csdf.Pattern{"in": csdf.Vals(8, 0, 0)},
			Out:             map[string]csdf.Pattern{"out": csdf.Vals(0, 0, 8)},
			EnergyPerPeriod: 10, MemBytes: 128,
		})
	}
	plat := arch.NewMesh("one-mont", 2, 1, 800_000_000)
	plat.AttachTile(arch.TileSpec{Name: "M0", Type: arch.TypeMontium, At: arch.Pt(1, 0),
		ClockHz: 200e6, MemBytes: 16 << 10, MaxOccupants: 1})
	plat.AttachTile(arch.TileSpec{Name: "SRC", Type: arch.TypeSource, At: arch.Pt(0, 0),
		ClockHz: 200e6, MemBytes: 8 << 10})
	plat.AttachTile(arch.TileSpec{Name: "SINK", Type: arch.TypeSink, At: arch.Pt(0, 0),
		ClockHz: 200e6, MemBytes: 8 << 10})
	res, err := NewMapper(lib).Map(app, plat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("two kernels on one single-kernel Montium reported feasible")
	}
}

func TestCommEstimateInStep1PrefersCloseTile(t *testing.T) {
	// With the communication look-ahead on, a slightly more expensive
	// implementation on a tile adjacent to the source beats a cheaper one
	// three hops away.
	app := model.NewApplication("est", model.QoS{PeriodNs: 4000})
	src := app.AddPinnedProcess("src", "SRC")
	a := app.AddProcess("a")
	sink := app.AddPinnedProcess("sink", "SINK")
	app.Connect(src, a, 100, 4) // heavy input traffic
	app.Connect(a, sink, 1, 4)
	lib := model.NewLibrary()
	lib.Add(&model.Implementation{
		Process: "a", TileType: arch.TypeDSP, // declared first: cheaper
		WCET:            csdf.Vals(1, 10, 1),
		In:              map[string]csdf.Pattern{"in": csdf.Vals(100, 0, 0)},
		Out:             map[string]csdf.Pattern{"out": csdf.Vals(0, 0, 1)},
		EnergyPerPeriod: 10, MemBytes: 128,
	})
	lib.Add(&model.Implementation{
		Process: "a", TileType: arch.TypeARM,
		WCET:            csdf.Vals(1, 10, 1),
		In:              map[string]csdf.Pattern{"in": csdf.Vals(100, 0, 0)},
		Out:             map[string]csdf.Pattern{"out": csdf.Vals(0, 0, 1)},
		EnergyPerPeriod: 14, MemBytes: 128,
	})
	plat := arch.NewMesh("estplat", 4, 1, 800_000_000)
	plat.AttachTile(arch.TileSpec{Name: "DSP0", Type: arch.TypeDSP, At: arch.Pt(3, 0),
		ClockHz: 200e6, MemBytes: 32 << 10})
	plat.AttachTile(arch.TileSpec{Name: "ARM0", Type: arch.TypeARM, At: arch.Pt(0, 0),
		ClockHz: 200e6, MemBytes: 64 << 10})
	plat.AttachTile(arch.TileSpec{Name: "SRC", Type: arch.TypeSource, At: arch.Pt(0, 0),
		ClockHz: 200e6, MemBytes: 8 << 10})
	plat.AttachTile(arch.TileSpec{Name: "SINK", Type: arch.TypeSink, At: arch.Pt(0, 0),
		ClockHz: 200e6, MemBytes: 8 << 10})

	plain, err := (&Mapper{Lib: lib, Cfg: Config{NoStep2: true}}).Map(app, plat)
	if err != nil {
		t.Fatal(err)
	}
	aware, err := (&Mapper{Lib: lib, Cfg: Config{NoStep2: true, CommEstimateInStep1: true}}).Map(app, plat)
	if err != nil {
		t.Fatal(err)
	}
	p := app.ProcessByName("a")
	if got := plain.Mapping.Impl[p.ID].TileType; got != arch.TypeDSP {
		t.Errorf("without look-ahead: a on %s, want the cheap DSP", got)
	}
	if got := aware.Mapping.Impl[p.ID].TileType; got != arch.TypeARM {
		t.Errorf("with look-ahead: a on %s, want the adjacent ARM", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	if c.maxStep2() != 10000 || c.maxRefinements() != 8 {
		t.Errorf("defaults wrong: %d, %d", c.maxStep2(), c.maxRefinements())
	}
	c = Config{MaxStep2Iterations: 3, MaxRefinements: 2}
	if c.maxStep2() != 3 || c.maxRefinements() != 2 {
		t.Errorf("overrides ignored: %d, %d", c.maxStep2(), c.maxRefinements())
	}
	params := c.energyParams()
	if params.HopPerByte <= 0 {
		t.Error("default energy params missing")
	}
}

func TestAdherentDetectsOvercommit(t *testing.T) {
	res := mapHiperlan2(t, Config{})
	work := res.Platform
	if !res.Mapping.Adherent(work) {
		t.Fatal("baseline not adherent")
	}
	tile := work.TileByName("ARM1")
	tile.ReservedUtil = 1.5
	if res.Mapping.Adherent(work) {
		t.Error("utilisation overcommit undetected")
	}
	tile.ReservedUtil = 0.5
	work.Links[0].ReservedBps = work.Links[0].CapBps + 1
	if res.Mapping.Adherent(work) {
		t.Error("link overcommit undetected")
	}
	work.Links[0].ReservedBps = 0
	tile.ReservedInBps = tile.NICapBps + 1
	if res.Mapping.Adherent(work) {
		t.Error("NI overcommit undetected")
	}
}
