// Package core implements the paper's contribution: the run-time spatial
// mapper of Hölzenspies, Hurink, Kuper and Smit (DATE 2008). Given a
// streaming application (a KPN with QoS constraints), a library of
// implementations, and the current state of a heterogeneous tiled MPSoC,
// it produces a feasible, low-energy spatial mapping in four hierarchical
// steps with iterative refinement (paper §3):
//
//  1. assign an implementation (and thereby a tile type) to every process,
//     ordered by desirability, with first-fit packing onto concrete tiles;
//  2. improve the process-to-tile assignment by local search over moves
//     and swaps within a tile type, scored by Manhattan-distance
//     communication cost;
//  3. assign channels to NoC paths in order of non-increasing throughput,
//     reserving guaranteed-throughput lanes incrementally;
//  4. verify the QoS constraints on the CSDF graph of the mapped
//     application (throughput, latency, buffer capacities) and feed
//     violations back to earlier steps.
package core

import (
	"fmt"

	"rtsm/internal/arch"
	"rtsm/internal/csdf"
	"rtsm/internal/energy"
	"rtsm/internal/model"
	"rtsm/internal/noc"
)

// Strategy selects how step 2 walks the local-search neighbourhood.
type Strategy int

const (
	// FirstImprovement scans processes in declaration order, evaluating
	// each process's best reassignment and accepting the first strict
	// improvement. This is the behaviour that reproduces the paper's
	// Table 2 iteration-by-iteration.
	FirstImprovement Strategy = iota
	// BestImprovement evaluates every process's best reassignment each
	// iteration and applies the globally best improving one.
	BestImprovement
)

// CommCostModel selects the communication cost step 2 minimises.
type CommCostModel int

const (
	// HopSum scores an assignment by the plain sum of Manhattan distances
	// over all stream channels, the metric of the paper's Table 2.
	HopSum CommCostModel = iota
	// TrafficWeighted scores by estimated energy: per-channel traffic ×
	// distance × hop energy, plus idle energy of powered tiles. This is
	// the metric a production mapper minimises.
	TrafficWeighted
)

// RouterPolicy selects the step-3 routing algorithm.
type RouterPolicy int

const (
	// Adaptive uses capacity-aware shortest paths (the paper's step 3).
	Adaptive RouterPolicy = iota
	// XYOnly uses dimension-ordered routing; it fails rather than detour.
	XYOnly
)

// Config tunes the mapper. The zero value reproduces the paper's
// behaviour; the ablation fields exist for the E10 experiments.
type Config struct {
	// Energy parameterises all energy estimates. Zero value selects
	// energy.DefaultParams.
	Energy *energy.Params
	// Strategy and CommCost control step 2.
	Strategy Strategy
	CommCost CommCostModel
	// MinGain is the minimum cost improvement for step 2 to keep going;
	// the paper names this threshold as one of the stop criteria.
	MinGain float64
	// MaxStep2Iterations bounds step-2 candidate evaluations (0 = 10000).
	MaxStep2Iterations int
	// MaxRefinements bounds the step-4 feedback loop (0 = 8).
	MaxRefinements int
	// MaxRepairRounds bounds Repair's refinement loop (0 = 3). Repair is
	// the cheap path: it either succeeds within a few rounds — little
	// changed, little to re-decide — or should hand off to the full map
	// instead of burning a full refinement budget first.
	MaxRepairRounds int
	// ArbitraryOrder disables desirability ordering in step 1, taking
	// processes in declaration order instead (ablation).
	ArbitraryOrder bool
	// UnsortedChannels disables the non-increasing-throughput sort in
	// step 3 (ablation).
	UnsortedChannels bool
	// NoStep2 skips local search entirely, keeping step 1's greedy
	// first-fit placement (ablation: "greedy-only").
	NoStep2 bool
	// NoRefinement disables the step-4 feedback loop (ablation).
	NoRefinement bool
	// Router selects the step-3 routing algorithm.
	Router RouterPolicy
	// CommEstimateInStep1 adds a Manhattan-distance communication
	// estimate to step 1's implementation costs. The paper's worked
	// example costs step 1 by processing energy alone, so this defaults
	// to off.
	CommEstimateInStep1 bool
	// BufferOptions tunes the step-4 buffer sizing.
	TightenBuffers bool
	// RegionBias, when positive, makes placement region-aware on a
	// partitioned platform: step 1's first-fit prefers tiles in mesh
	// regions the mapping already occupies (pinned endpoints and earlier
	// placements) and charges RegionBias cost units for opening a new
	// region, and step 2 charges each move RegionBias per region its
	// reassignment adds to the mapping's region span. A narrower span
	// means the admission's reservation plan touches fewer region locks,
	// so concurrent commits overlap less. The weight is in the same
	// (mixed) units as the step costs it perturbs — energy in step 1,
	// communication cost in step 2; values around 1–4 bias ties and small
	// gaps without overriding clear wins. 0 (the default) keeps the
	// region-oblivious paper behaviour; unpartitioned platforms are
	// unaffected either way.
	RegionBias float64
}

func (c Config) energyParams() energy.Params {
	if c.Energy != nil {
		return *c.Energy
	}
	return energy.DefaultParams()
}

func (c Config) maxStep2() int {
	if c.MaxStep2Iterations > 0 {
		return c.MaxStep2Iterations
	}
	return 10000
}

func (c Config) maxRefinements() int {
	if c.MaxRefinements > 0 {
		return c.MaxRefinements
	}
	return 8
}

func (c Config) maxRepairRounds() int {
	if c.MaxRepairRounds > 0 {
		return c.MaxRepairRounds
	}
	return 3
}

// Mapper binds a configuration and an implementation library.
type Mapper struct {
	Lib *model.Library
	Cfg Config
}

// NewMapper returns a mapper over the given library with the paper's
// default configuration.
func NewMapper(lib *model.Library) *Mapper { return &Mapper{Lib: lib} }

// Mapping is a complete spatial mapping: implementation choice, tile
// assignment, channel routes and stream buffer sizes.
type Mapping struct {
	App *model.Application
	// Impl holds the chosen implementation per mappable process; pinned
	// processes map to nil.
	Impl map[model.ProcessID]*model.Implementation
	// Tile holds the tile of every non-control process, pinned included.
	Tile map[model.ProcessID]arch.TileID
	// Route holds the NoC path of every stream channel whose endpoints
	// sit on different tiles.
	Route map[model.ChannelID]noc.Path
	// Buffers holds the stream buffer capacity per channel in tokens,
	// computed by step 4.
	Buffers map[model.ChannelID]int64
}

// Result is the outcome of one Map call.
type Result struct {
	Mapping *Mapping
	// Feasible reports whether step 4 verified all QoS constraints.
	Feasible bool
	// Energy is the estimated energy per QoS period of the mapping.
	Energy energy.Breakdown
	// Graph is the CSDF graph of the mapped application (the paper's
	// Figure 3), with router actors inserted per hop and buffer
	// capacities installed.
	Graph *csdf.Graph
	// Mapped relates Graph back to the mapping: actor-to-tile placement
	// and the channel-to-edge correspondence. The validation simulator
	// consumes it.
	Mapped *MappedGraph
	// Analysis is the step-4 self-timed verification run on Graph.
	Analysis *csdf.ExecResult
	// Trace records every decision for inspection; Table 2 of the paper
	// is Trace.Step2.
	Trace *Trace
	// Refinements counts completed feedback iterations.
	Refinements int
	// Platform is the mapper's working copy of the platform with this
	// mapping's reservations applied. The caller's platform is never
	// mutated by Map; use Apply to commit the mapping to it.
	Platform *arch.Platform
	// BaseResidual is the residual state of the platform the mapping was
	// computed against, before this mapping's own reservations. Repair
	// diffs it against the live residual to detect that nothing changed.
	BaseResidual arch.Residual
	// Repaired marks a result produced by Repair rather than a full
	// four-step map; Pinned counts the process placements it preserved
	// from the stale mapping (zero for full maps).
	Repaired bool
	Pinned   int
}

// Map runs the four-step algorithm with iterative refinement and returns
// the best feasible mapping found, or, if none is feasible within the
// refinement budget, the last attempt with Feasible=false. The caller's
// platform is not mutated; existing reservations on it are honoured.
func (m *Mapper) Map(app *model.Application, plat *arch.Platform) (*Result, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if err := m.checkAdequacyPossible(app, plat); err != nil {
		return nil, err
	}
	tabu := newTabu()
	var best, last *Result
	refinements := 0
	for round := 0; round <= m.Cfg.maxRefinements(); round++ {
		res, fb, err := m.attempt(app, plat, tabu, nil)
		if err != nil {
			if best != nil {
				break
			}
			return nil, err
		}
		res.Refinements = refinements
		last = res
		if res.Feasible && (best == nil || res.Energy.Total() < best.Energy.Total()) {
			best = res
		}
		if fb == nil || m.Cfg.NoRefinement {
			break
		}
		if !tabu.apply(fb) {
			break // feedback already known: no new information, stop
		}
		refinements++
	}
	if best != nil {
		best.Refinements = refinements
		best.BaseResidual = plat.Residual()
		return best, nil
	}
	if last == nil {
		return nil, fmt.Errorf("core: no mapping attempt completed for %q", app.Name)
	}
	last.BaseResidual = plat.Residual()
	return last, nil
}

// checkAdequacyPossible verifies that every mappable process has at least
// one implementation whose tile type exists on the platform — the paper's
// precondition for an adequate mapping.
func (m *Mapper) checkAdequacyPossible(app *model.Application, plat *arch.Platform) error {
	for _, p := range app.MappableProcesses() {
		ims := m.Lib.For(p.Name)
		if len(ims) == 0 {
			return fmt.Errorf("core: process %q has no implementations", p.Name)
		}
		ok := false
		for _, im := range ims {
			if len(plat.TilesOfType(im.TileType)) > 0 {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("core: no tile on %q can run any implementation of %q", plat.Name, p.Name)
		}
	}
	for _, p := range app.Processes {
		if p.PinnedTile != "" && plat.TileByName(p.PinnedTile) == nil {
			return fmt.Errorf("core: process %q pinned to unknown tile %q", p.Name, p.PinnedTile)
		}
	}
	return nil
}

// workClone returns the private platform an attempt speculatively
// reserves on. Mapping against a frozen copy-on-write snapshot — the
// admission hot path — or against a goroutine-private CoW child — the
// preemption planner's writable probe — gets a CoW child that faults in
// only the regions the attempt actually writes, instead of deep-copying
// the whole mesh per refinement round; any other input keeps the
// classic deep copy, so a caller's own platform is never silently
// marked shared.
func workClone(plat *arch.Platform) *arch.Platform {
	if plat.Frozen() || plat.CoWClone() {
		return plat.CloneCoW()
	}
	return plat.Clone()
}

// attempt runs steps 1–4 once on a private clone of the platform. A
// non-nil seed pre-installs salvaged decisions from a stale mapping: its
// placements are reserved up front and locked against steps 1 and 2, its
// routes are reserved and skipped by step 3, so only what the seed leaves
// open is re-decided (the incremental repair path).
func (m *Mapper) attempt(app *model.Application, plat *arch.Platform, tabu *tabu, seed *seedMapping) (*Result, *feedback, error) {
	work := workClone(plat)
	trace := &Trace{}
	mapping := &Mapping{
		App:     app,
		Impl:    make(map[model.ProcessID]*model.Implementation),
		Tile:    make(map[model.ProcessID]arch.TileID),
		Route:   make(map[model.ChannelID]noc.Path),
		Buffers: make(map[model.ChannelID]int64),
	}
	// Pinned endpoints are pre-placed.
	for _, p := range app.Processes {
		if p.Control {
			continue
		}
		if p.PinnedTile != "" {
			mapping.Tile[p.ID] = work.TileByName(p.PinnedTile).ID
			mapping.Impl[p.ID] = nil
		}
	}
	if err := seed.install(app, work, mapping); err != nil {
		return nil, nil, err
	}

	if fb := m.step1(app, work, mapping, tabu, trace); fb != nil {
		return m.infeasibleResult(app, work, mapping, trace), fb, nil
	}
	if !m.Cfg.NoStep2 {
		m.step2(app, work, mapping, seed.lockedSet(), trace)
	}
	if fb := m.step3(app, work, mapping, trace); fb != nil {
		return m.infeasibleResult(app, work, mapping, trace), fb, nil
	}
	res, fb := m.step4(app, work, mapping, trace)
	return res, fb, nil
}

func (m *Mapper) infeasibleResult(app *model.Application, work *arch.Platform, mapping *Mapping, trace *Trace) *Result {
	params := m.Cfg.energyParams()
	return &Result{
		Mapping:  mapping,
		Feasible: false,
		Energy:   params.Evaluate(app, work, AssignmentView(mapping)),
		Trace:    trace,
		Platform: work,
	}
}

// AssignmentView projects a mapping into the energy model's assignment
// form (implementation, tile and hop count per entity), for callers that
// want itemised energy reports.
func AssignmentView(mp *Mapping) energy.Assignment {
	hops := make(map[model.ChannelID]int, len(mp.Route))
	for cid, path := range mp.Route {
		hops[cid] = path.Hops()
	}
	return energy.Assignment{Impl: mp.Impl, Tile: mp.Tile, Hops: hops}
}

const utilEps = 1e-9

func utilisation(t *arch.Tile, cyclesPerPeriod, periodNs int64) float64 {
	return utilisationOf(t.CycleBudget(periodNs), cyclesPerPeriod)
}

func utilisationOf(budget, cyclesPerPeriod int64) float64 {
	if budget <= 0 {
		return 2 // a tile with no clock can host nothing
	}
	return float64(cyclesPerPeriod) / float64(budget)
}

// channelBps returns the guaranteed throughput a channel needs.
func channelBps(c *model.Channel, periodNs int64) int64 {
	// bytes per period → bytes per second, rounded up.
	return (c.BytesPerPeriod()*1_000_000_000 + periodNs - 1) / periodNs
}

// Adequate reports whether every mapped process runs an implementation
// matching its tile's type (paper §3).
func (mp *Mapping) Adequate(plat *arch.Platform) bool {
	for pid, im := range mp.Impl {
		if im == nil {
			continue
		}
		tid, ok := mp.Tile[pid]
		if !ok || plat.Tile(tid).Type != im.TileType {
			return false
		}
	}
	return true
}

// Adherent reports whether the mapping is adequate and no tile or link is
// overcommitted on the given platform (paper §3). It checks the
// reservation state, so call it on the Result's working platform.
func (mp *Mapping) Adherent(plat *arch.Platform) bool {
	if !mp.Adequate(plat) {
		return false
	}
	for _, t := range plat.Tiles {
		if t.ReservedMem > t.MemBytes || t.ReservedUtil > 1.0+utilEps {
			return false
		}
		if t.NICapBps > 0 && (t.ReservedInBps > t.NICapBps || t.ReservedOutBps > t.NICapBps) {
			return false
		}
	}
	for _, l := range plat.Links {
		if l.ReservedBps > l.CapBps {
			return false
		}
	}
	return true
}
