package core

import (
	"testing"

	"rtsm/internal/arch"
	"rtsm/internal/csdf"
	"rtsm/internal/model"
)

// biasApp builds src → a → sink with a single ARM implementation for a,
// so the only placement freedom is which ARM tile hosts it.
func biasApp() (*model.Application, *model.Library) {
	app := model.NewApplication("bias-line", model.QoS{PeriodNs: 4000})
	src := app.AddPinnedProcess("src", "SRC")
	a := app.AddProcess("a")
	sink := app.AddPinnedProcess("sink", "SINK")
	app.Connect(src, a, 16, 4)
	app.Connect(a, sink, 16, 4)
	lib := model.NewLibrary()
	lib.Add(&model.Implementation{
		Process: "a", TileType: arch.TypeARM,
		WCET:            csdf.Vals(2, 480, 2),
		In:              map[string]csdf.Pattern{"in": csdf.Vals(16, 0, 0)},
		Out:             map[string]csdf.Pattern{"out": csdf.Vals(0, 0, 16)},
		EnergyPerPeriod: 40, MemBytes: 1024,
	})
	return app, lib
}

// tileSpan returns the set of regions the mapping's tiles occupy.
func tileSpan(res *Result) map[arch.RegionID]struct{} {
	span := make(map[arch.RegionID]struct{})
	for _, tid := range res.Mapping.Tile {
		span[res.Platform.RegionOfTile(tid)] = struct{}{}
	}
	return span
}

// TestRegionBiasNarrowsFootprint pins the step-1 half of region-aware
// placement: with both endpoints pinned in region 0 and ARM tiles in
// both regions, the unbiased first-fit follows declaration order onto
// the out-of-region tile (footprint spans two regions), while the biased
// mapper scans regions the mapping already occupies first and keeps the
// whole footprint inside region 0. NoStep2 isolates first-fit from the
// local search, which could otherwise also pull the process home.
func TestRegionBiasNarrowsFootprint(t *testing.T) {
	build := func() *arch.Platform {
		plat := arch.NewMesh("biasplat", 4, 2, 800_000_000)
		plat.PartitionRegions(2)
		// Declaration order puts the out-of-region ARM first so plain
		// first-fit provably lands there.
		plat.AttachTile(arch.TileSpec{Name: "ARM_far", Type: arch.TypeARM, At: arch.Pt(2, 0),
			ClockHz: 200e6, MemBytes: 32 << 10, NICapBps: 800e6})
		plat.AttachTile(arch.TileSpec{Name: "ARM_near", Type: arch.TypeARM, At: arch.Pt(0, 0),
			ClockHz: 200e6, MemBytes: 32 << 10, NICapBps: 800e6})
		plat.AttachTile(arch.TileSpec{Name: "SRC", Type: arch.TypeSource, At: arch.Pt(0, 1),
			ClockHz: 200e6, MemBytes: 8 << 10, NICapBps: 800e6})
		plat.AttachTile(arch.TileSpec{Name: "SINK", Type: arch.TypeSink, At: arch.Pt(1, 1),
			ClockHz: 200e6, MemBytes: 8 << 10, NICapBps: 800e6})
		return plat
	}
	app, lib := biasApp()
	aID := app.ProcessByName("a").ID

	unbiased := NewMapper(lib)
	unbiased.Cfg = Config{NoStep2: true}
	res, err := unbiased.Map(app, build())
	if err != nil || !res.Feasible {
		t.Fatalf("unbiased map failed: %v", err)
	}
	if got := res.Platform.Tile(res.Mapping.Tile[aID]).Name; got != "ARM_far" {
		t.Fatalf("unbiased first-fit placed a on %s, want ARM_far (declaration order)", got)
	}
	if span := tileSpan(res); len(span) != 2 {
		t.Fatalf("unbiased footprint spans %d regions, want 2", len(span))
	}

	biased := NewMapper(lib)
	biased.Cfg = Config{NoStep2: true, RegionBias: 1}
	res, err = biased.Map(app, build())
	if err != nil || !res.Feasible {
		t.Fatalf("biased map failed: %v", err)
	}
	if got := res.Platform.Tile(res.Mapping.Tile[aID]).Name; got != "ARM_near" {
		t.Fatalf("biased first-fit placed a on %s, want ARM_near (in-region)", got)
	}
	if span := tileSpan(res); len(span) != 1 {
		t.Fatalf("biased footprint spans %d regions, want 1", len(span))
	}
}

// TestRegionBiasBlocksCrossRegionMove pins the step-2 half: the local
// search sees a relocation that halves the chain's hop count but opens a
// second region. Unbiased it takes the move; with the region penalty
// priced above the communication saving it stays home, trading a little
// energy for a one-region lock footprint.
func TestRegionBiasBlocksCrossRegionMove(t *testing.T) {
	build := func() *arch.Platform {
		plat := arch.NewMesh("biasmove", 4, 2, 800_000_000)
		plat.PartitionRegions(2)
		// ARM_in is declared first so step 1 starts the process there in
		// both runs; ARM_out is 2 hops closer to the endpoints in total
		// but sits across the region boundary.
		plat.AttachTile(arch.TileSpec{Name: "ARM_in", Type: arch.TypeARM, At: arch.Pt(0, 0),
			ClockHz: 200e6, MemBytes: 32 << 10, NICapBps: 800e6})
		plat.AttachTile(arch.TileSpec{Name: "ARM_out", Type: arch.TypeARM, At: arch.Pt(2, 1),
			ClockHz: 200e6, MemBytes: 32 << 10, NICapBps: 800e6})
		plat.AttachTile(arch.TileSpec{Name: "SRC", Type: arch.TypeSource, At: arch.Pt(1, 1),
			ClockHz: 200e6, MemBytes: 8 << 10, NICapBps: 800e6})
		plat.AttachTile(arch.TileSpec{Name: "SINK", Type: arch.TypeSink, At: arch.Pt(1, 1),
			ClockHz: 200e6, MemBytes: 8 << 10, NICapBps: 800e6})
		return plat
	}
	app, lib := biasApp()
	aID := app.ProcessByName("a").ID

	unbiased := NewMapper(lib)
	res, err := unbiased.Map(app, build())
	if err != nil || !res.Feasible {
		t.Fatalf("unbiased map failed: %v", err)
	}
	if got := res.Platform.Tile(res.Mapping.Tile[aID]).Name; got != "ARM_out" {
		t.Fatalf("unbiased step 2 left a on %s, want the hop-cheaper ARM_out", got)
	}

	biased := NewMapper(lib)
	biased.Cfg = Config{RegionBias: 1e6}
	res, err = biased.Map(app, build())
	if err != nil || !res.Feasible {
		t.Fatalf("biased map failed: %v", err)
	}
	if got := res.Platform.Tile(res.Mapping.Tile[aID]).Name; got != "ARM_in" {
		t.Fatalf("biased step 2 moved a to %s, want it held on ARM_in", got)
	}
	if span := tileSpan(res); len(span) != 1 {
		t.Fatalf("biased footprint spans %d regions, want 1", len(span))
	}
}

// TestRegionBiasZeroIsPaperBehaviour guards the default: bias off on a
// partitioned platform must reproduce the region-oblivious placement
// bit-for-bit, so the paper-fidelity traces stay valid.
func TestRegionBiasZeroIsPaperBehaviour(t *testing.T) {
	build := func(partition bool) *arch.Platform {
		plat := arch.NewMesh("biaszero", 4, 2, 800_000_000)
		if partition {
			plat.PartitionRegions(2)
		}
		plat.AttachTile(arch.TileSpec{Name: "ARM_far", Type: arch.TypeARM, At: arch.Pt(2, 0),
			ClockHz: 200e6, MemBytes: 32 << 10, NICapBps: 800e6})
		plat.AttachTile(arch.TileSpec{Name: "ARM_near", Type: arch.TypeARM, At: arch.Pt(0, 0),
			ClockHz: 200e6, MemBytes: 32 << 10, NICapBps: 800e6})
		plat.AttachTile(arch.TileSpec{Name: "SRC", Type: arch.TypeSource, At: arch.Pt(0, 1),
			ClockHz: 200e6, MemBytes: 8 << 10, NICapBps: 800e6})
		plat.AttachTile(arch.TileSpec{Name: "SINK", Type: arch.TypeSink, At: arch.Pt(1, 1),
			ClockHz: 200e6, MemBytes: 8 << 10, NICapBps: 800e6})
		return plat
	}
	app, lib := biasApp()
	aID := app.ProcessByName("a").ID
	for _, partition := range []bool{false, true} {
		res, err := NewMapper(lib).Map(app, build(partition))
		if err != nil || !res.Feasible {
			t.Fatalf("map failed (partition=%v): %v", partition, err)
		}
		want := res.Platform.Tile(res.Mapping.Tile[aID]).Name
		if partition && want == "" {
			t.Fatal("unreachable")
		}
		if !partition {
			continue
		}
		// Partitioned, bias zero: same tile as the unpartitioned run.
		base, err := NewMapper(lib).Map(app, build(false))
		if err != nil {
			t.Fatal(err)
		}
		if got := base.Platform.Tile(base.Mapping.Tile[aID]).Name; got != want {
			t.Fatalf("bias-off placement differs with partitioning: %s vs %s", want, got)
		}
	}
}
