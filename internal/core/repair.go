package core

import (
	"fmt"

	"rtsm/internal/arch"
	"rtsm/internal/model"
	"rtsm/internal/noc"
)

// This file is the incremental remapping engine. A mapping computed
// against a stale snapshot — a commit that lost an optimistic-concurrency
// race, or a remembered template instantiated on a loaded platform — is
// usually almost right: a competing admission consumed capacity on a few
// tiles or links, and every other decision still holds. The paper's step-4
// feedback loop already embodies the idea that a failed mapping should be
// refined rather than discarded (§3); Repair extends it across commits. It
// diffs the stale result against the fresh residual state, pins every
// process and channel whose tile, NI bandwidth and route still fit, and
// re-enters steps 1–4 with only the conflicting processes unassigned.
// Repair failures degrade gracefully: feedback naming a pinned process
// releases it, so the repair converges toward a full remap as rounds pass,
// and the caller falls back to Map when nothing is salvageable at all.

// seedMapping carries the salvaged part of a stale mapping into an
// attempt: placements to install verbatim and routes to keep reserved.
// A nil seed seeds nothing (the full-map path).
type seedMapping struct {
	impl   map[model.ProcessID]*model.Implementation
	tile   map[model.ProcessID]arch.TileID
	routes map[model.ChannelID]noc.Path
}

// lockedSet returns the processes step 2 must not relocate.
func (s *seedMapping) lockedSet() map[model.ProcessID]bool {
	if s == nil {
		return nil
	}
	locked := make(map[model.ProcessID]bool, len(s.impl))
	for pid := range s.impl {
		locked[pid] = true
	}
	return locked
}

// unpin releases one process from the seed: its placement is forgotten and
// every kept route touching it is dropped, so the next attempt re-decides
// them. Reports whether anything was released.
func (s *seedMapping) unpin(app *model.Application, pid model.ProcessID) bool {
	if s == nil {
		return false
	}
	if _, ok := s.impl[pid]; !ok {
		return false
	}
	delete(s.impl, pid)
	delete(s.tile, pid)
	for _, c := range app.ChannelsOf(pid) {
		delete(s.routes, c.ID)
	}
	return true
}

// install reserves the seed's placements and routes on the working
// platform and records them in the mapping, the repair counterpart of
// step 1's packing and step 3's lane reservation.
func (s *seedMapping) install(app *model.Application, work *arch.Platform, mp *Mapping) error {
	if s == nil {
		return nil
	}
	for pid, im := range s.impl {
		p := app.Process(pid)
		tid := s.tile[pid]
		t := work.WTile(tid)
		cyc, err := im.CyclesPerPeriod(app, p)
		if err != nil {
			return fmt.Errorf("core: seeded implementation of %q no longer matches: %w", p.Name, err)
		}
		t.ReservedMem += im.MemBytes
		t.ReservedUtil += utilisation(t, cyc, app.QoS.PeriodNs)
		t.Occupants++
		mp.Impl[pid] = im
		mp.Tile[pid] = tid
	}
	for cid, path := range s.routes {
		c := app.Channel(cid)
		src, okS := mp.Tile[c.Src]
		dst, okD := mp.Tile[c.Dst]
		if !okS || !okD {
			return fmt.Errorf("core: seeded route of %q has an unplaced endpoint", c.Name)
		}
		if path.Hops() > 0 {
			noc.Reserve(work, path, src, dst, channelBps(c, app.QoS.PeriodNs))
		}
		mp.Route[cid] = path
	}
	return nil
}

// regionsDisjoint reports whether two ascending region lists share no
// element.
func regionsDisjoint(a, b []arch.RegionID) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return false
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return true
}

// tileBudget tracks the free capacity left on one conflicted tile while
// salvage greedily decides which of its occupants to keep.
type tileBudget struct {
	mem   int64
	util  float64
	slots int // -1 = unlimited
	inBps int64
	out   int64
}

func budgetFor(t *arch.Tile) *tileBudget {
	if t.Failed {
		// The ledger still shows free capacity, but a failed tile keeps
		// nothing: every occupant must be re-placed elsewhere.
		return &tileBudget{}
	}
	b := &tileBudget{
		mem:   t.FreeMem(),
		util:  1.0 - t.ReservedUtil,
		slots: -1,
	}
	if t.MaxOccupants > 0 {
		b.slots = t.MaxOccupants - t.Occupants
	}
	if t.NICapBps > 0 {
		b.inBps = t.NICapBps - t.ReservedInBps
		b.out = t.NICapBps - t.ReservedOutBps
	}
	return b
}

// salvage decides what of a stale mapping survives the fresh platform
// state. Processes on unconflicted tiles are pinned wholesale — the
// per-tile validation already proved the tile absorbs everything the
// mapping puts there, stream buffers included. On a conflicted tile the
// occupants are kept greedily, in declaration order, while they fit the
// tile's fresh residual capacity; the rest are released for re-placement.
// Routes survive when both endpoints kept their tiles and no link of the
// path is conflicted; dropped routes with kept endpoints are re-routed by
// step 3 around the congestion.
func salvage(fresh *arch.Platform, res *Result, violations []ValidationError) (*seedMapping, error) {
	mp := res.Mapping
	app := mp.App
	badTile := make(map[arch.TileID]bool)
	badNI := make(map[arch.TileID]bool)
	badLink := make(map[arch.LinkID]bool)
	for _, v := range violations {
		switch v.Kind {
		case ResLink, ResLinkFailed:
			badLink[v.Link] = true
		case ResTileNI:
			badNI[v.Tile] = true
			badTile[v.Tile] = true
		default:
			badTile[v.Tile] = true
		}
	}
	// An exhausted network interface can only be relieved by moving this
	// application's processes off the tile. A tile hosting none of them —
	// a pinned source or sink — carries an irreducible NI demand:
	// re-placement cannot repair it, so hand the round to the full mapper
	// (whose step 3 rejects it promptly with the honest reason).
	for tid := range badNI {
		relievable := false
		for _, p := range app.MappableProcesses() {
			if t, ok := mp.Tile[p.ID]; ok && t == tid {
				relievable = true
				break
			}
		}
		if !relievable {
			return nil, fmt.Errorf("core: network interface of pinned tile %q exhausted; not repairable by re-placement",
				fresh.Tile(tid).Name)
		}
	}
	seed := &seedMapping{
		impl:   make(map[model.ProcessID]*model.Implementation),
		tile:   make(map[model.ProcessID]arch.TileID),
		routes: make(map[model.ChannelID]noc.Path),
	}
	budgets := make(map[arch.TileID]*tileBudget)
	for _, p := range app.MappableProcesses() {
		im := mp.Impl[p.ID]
		tid, ok := mp.Tile[p.ID]
		if im == nil || !ok {
			continue
		}
		if !badTile[tid] {
			seed.impl[p.ID] = im
			seed.tile[p.ID] = tid
			continue
		}
		t := fresh.Tile(tid)
		b := budgets[tid]
		if b == nil {
			b = budgetFor(t)
			budgets[tid] = b
		}
		cyc, err := im.CyclesPerPeriod(app, p)
		if err != nil {
			continue
		}
		util := utilisation(t, cyc, app.QoS.PeriodNs)
		// Budget the stale mapping's stream buffers for the process's
		// incoming channels alongside the implementation image: step 4
		// re-sizes and charges them to the consumer's tile, and a kept
		// placement that cannot afford its buffers would only bounce
		// back as buffer-overflow feedback a full attempt later. The
		// accounting mirrors planReservations (commit.go), the source of
		// truth for what Apply will eventually demand per resource.
		mem := im.MemBytes
		var inBps, outBps int64
		for _, c := range app.ChannelsOf(p.ID) {
			if c.Dst == p.ID {
				mem += mp.Buffers[c.ID] * c.TokenBytes
			}
			if t.NICapBps > 0 && mp.Tile[c.Src] != mp.Tile[c.Dst] {
				// Same-tile channels never touch the NI, matching the
				// hops-0 exemption in planReservations.
				bps := channelBps(c, app.QoS.PeriodNs)
				if c.Dst == p.ID {
					inBps += bps
				} else {
					outBps += bps
				}
			}
		}
		if mem > b.mem || b.util-util < -utilEps || b.slots == 0 ||
			(t.NICapBps > 0 && (inBps > b.inBps || outBps > b.out)) {
			continue // does not fit what is left: release for re-placement
		}
		b.mem -= mem
		b.util -= util
		if b.slots > 0 {
			b.slots--
		}
		b.inBps -= inBps
		b.out -= outBps
		seed.impl[p.ID] = im
		seed.tile[p.ID] = tid
	}
	for _, c := range app.StreamChannels() {
		path, ok := mp.Route[c.ID]
		if !ok {
			continue
		}
		if app.Process(c.Src).PinnedTile == "" && seed.impl[c.Src] == nil {
			continue
		}
		if app.Process(c.Dst).PinnedTile == "" && seed.impl[c.Dst] == nil {
			continue
		}
		// Routes terminating on an NI-exhausted tile are dropped even when
		// the endpoint is pinned there: step 3 re-routes them through its
		// NI check, so the shortfall surfaces as honest feedback instead
		// of an install that re-demands the exhausted bandwidth.
		if badNI[mp.Tile[c.Src]] || badNI[mp.Tile[c.Dst]] {
			continue
		}
		crossesBadLink := false
		for _, lid := range path.Links {
			if badLink[lid] {
				crossesBadLink = true
				break
			}
		}
		if crossesBadLink {
			continue
		}
		seed.routes[c.ID] = path
	}
	return seed, nil
}

// Repair refits a stale mapping result to a fresh platform snapshot. When
// the platform's residual state is unchanged since the mapping was
// computed, the result is returned as-is; otherwise the conflicting
// placements and routes are released and steps 1–4 re-run with everything
// else pinned. The returned result reports Repaired=true and the number of
// placements preserved in Pinned. A non-nil error — including when the
// whole mapping conflicts and nothing can be pinned — means the caller
// should fall back to a full Map; like Map, an unrepairable QoS violation
// surfaces as Feasible=false, not as an error.
func (m *Mapper) Repair(res *Result, snap *arch.Snapshot) (*Result, error) {
	if res == nil || res.Mapping == nil {
		return nil, fmt.Errorf("core: nothing to repair")
	}
	app := res.Mapping.App
	// One plan serves both the region shortcut and the conflict
	// attribution below; planning errors only matter once the shortcuts
	// have not already proven the stale mapping still commits.
	plan, planErr := NewPlan(snap.Plat, res)
	if len(res.BaseResidual.Tiles) > 0 {
		diff := res.BaseResidual.Diff(snap.Plat.Residual())
		if diff.Empty() {
			// Resource-identical platform: the stale mapping still commits.
			return res, nil
		}
		// Region-aware shortcut: when everything that changed lies in
		// regions the mapping never touches, no resource of the mapping's
		// reservation plan moved, so it still commits verbatim — no need
		// to re-validate the full plan.
		if planErr == nil && snap.Plat.RegionCount() > 1 &&
			regionsDisjoint(diff.Regions(snap.Plat), plan.Regions()) {
			return res, nil
		}
	}
	if planErr != nil {
		return nil, planErr
	}
	violations := plan.Violations(snap.Plat)
	if len(violations) == 0 {
		return res, nil
	}
	if err := m.checkAdequacyPossible(app, snap.Plat); err != nil {
		return nil, err
	}
	seed, err := salvage(snap.Plat, res, violations)
	if err != nil {
		return nil, err
	}
	if len(seed.impl) == 0 && len(seed.routes) == 0 {
		return nil, fmt.Errorf("core: mapping of %q conflicts everywhere, nothing to salvage", app.Name)
	}

	tabu := newTabu()
	var best, last *Result
	refinements := 0
	for round := 0; round <= m.Cfg.maxRepairRounds(); round++ {
		pinned := len(seed.impl)
		attempt, fb, err := m.attempt(app, snap.Plat, tabu, seed)
		if err != nil {
			if best != nil {
				break
			}
			return nil, err
		}
		attempt.Refinements = refinements
		attempt.Repaired = true
		attempt.Pinned = pinned
		last = attempt
		if attempt.Feasible && (best == nil || attempt.Energy.Total() < best.Energy.Total()) {
			best = attempt
		}
		if fb == nil || m.Cfg.NoRefinement {
			break
		}
		// Graceful degradation: feedback naming a pinned process releases
		// it, so constraints the salvage missed still get repaired, and
		// with everything released a repair round is a full remap.
		released := seed.unpin(app, fb.process)
		if !tabu.apply(fb) && !released {
			break // nothing new to try
		}
		refinements++
	}
	if best != nil {
		best.BaseResidual = snap.Plat.Residual()
		return best, nil
	}
	if last == nil {
		return nil, fmt.Errorf("core: no repair attempt completed for %q", app.Name)
	}
	last.BaseResidual = snap.Plat.Residual()
	return last, nil
}

// HypotheticalEviction releases the victims' reservations on a snapshot's
// working platform, producing the post-eviction residual a preemption
// planner speculatively maps a high-priority arrival against. Only the
// snapshot's private platform is mutated — the live platform is untouched
// and no lock is needed — so the caller can probe "would the arrival fit
// if these victims left?" as cheaply as any other speculative mapping.
// The snapshot must be writable: pass a deep snapshot or derive one from
// a frozen copy-on-write snapshot with Snapshot.Writable first (mutating
// a frozen epoch snapshot shared with other admissions panics).
func HypotheticalEviction(snap *arch.Snapshot, victims ...*Result) {
	for _, v := range victims {
		Remove(snap.Plat, v)
	}
}

// Relocate is the preemption planner's relocation entry point: it refits a
// preempted victim's mapping to the post-eviction snapshot — the platform
// after the victim's own reservations were released and the high-priority
// arrival committed — so the victim keeps running on whatever capacity is
// left instead of being killed. Unlike the admission path's use of Repair,
// Relocate never falls back to a full remap: a victim either moves cheaply
// (most placements kept, only the overlap with the new arrival re-placed)
// or is evicted by the caller. Both a repair error and an infeasible
// refit therefore surface as a non-nil error meaning "evict".
func (m *Mapper) Relocate(res *Result, snap *arch.Snapshot) (*Result, error) {
	rep, err := m.Repair(res, snap)
	if err != nil {
		return nil, err
	}
	if !rep.Feasible {
		return nil, fmt.Errorf("core: relocation of %q infeasible on the post-eviction residual",
			res.Mapping.App.Name)
	}
	return rep, nil
}
