package core

import (
	"math"
	"strings"
	"testing"

	"rtsm/internal/workload"
)

// mapHiperlan2 runs the paper's worked example (§4) end to end.
func mapHiperlan2(t *testing.T, cfg Config) *Result {
	t.Helper()
	mode := workload.Hiperlan2Modes[3] // QPSK3/4, b=16
	app := workload.Hiperlan2(mode)
	lib := workload.Hiperlan2Library(mode)
	plat := workload.Hiperlan2Platform()
	m := &Mapper{Lib: lib, Cfg: cfg}
	res, err := m.Map(app, plat)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	return res
}

func TestHiperlan2Step1MatchesPaper(t *testing.T) {
	res := mapHiperlan2(t, Config{})
	s1 := res.Trace.Step1
	if len(s1) != 4 {
		t.Fatalf("step 1 assigned %d processes, want 4", len(s1))
	}
	// §4.4: "the 'Inverse OFDM' process is the most desirable. Thus, it
	// is assigned to its preferred tile type, being a MONTIUM. Likewise,
	// the 'Remainder' process is assigned a MONTIUM. ... both remaining
	// processes only have ARM implementations and are thus chosen per
	// default."
	wantOrder := []struct{ proc, tile string }{
		{"Inv.OFDM", "MONTIUM1"},
		{"Rem.", "MONTIUM2"},
		{"Pfx.rem.", "ARM1"},
		{"Frq.off.", "ARM2"},
	}
	for i, w := range wantOrder {
		if s1[i].Process != w.proc || s1[i].Tile != w.tile {
			t.Errorf("step1[%d] = %s on %s, want %s on %s",
				i, s1[i].Process, s1[i].Tile, w.proc, w.tile)
		}
	}
	for _, r := range s1 {
		if !math.IsInf(r.Desirability, 1) {
			t.Errorf("%s: desirability %v, want forced (+Inf): ARM cannot sustain the heavy kernels and the Montiums hold one kernel each",
				r.Process, r.Desirability)
		}
	}
}

func TestHiperlan2Step2ReproducesTable2(t *testing.T) {
	res := mapHiperlan2(t, Config{})
	s2 := res.Trace.Step2
	if len(s2) < 4 {
		t.Fatalf("step 2 trace too short: %d records", len(s2))
	}
	// Table 2's cost column: initial 11; swap ARMs 11 (reject); swap
	// Montiums 9 (keep); swap ARMs 7 (keep).
	wantCost := []float64{11, 11, 9, 7}
	wantAccept := []bool{false, false, true, true} // initial record is not a move
	for i, w := range wantCost {
		if s2[i].Cost != w {
			t.Errorf("step2[%d].Cost = %v, want %v", i, s2[i].Cost, w)
		}
		if i > 0 && s2[i].Accepted != wantAccept[i] {
			t.Errorf("step2[%d].Accepted = %v, want %v", i, s2[i].Accepted, wantAccept[i])
		}
	}
	// Row 1 swaps the ARM processes, row 2 the Montium processes, row 3
	// the ARM processes again.
	if s2[1].Kind != Swap || s2[1].ProcA != "Pfx.rem." || s2[1].ProcB != "Frq.off." {
		t.Errorf("iteration 1 = %v %s/%s, want ARM swap", s2[1].Kind, s2[1].ProcA, s2[1].ProcB)
	}
	if s2[2].Kind != Swap || s2[2].ProcA != "Inv.OFDM" || s2[2].ProcB != "Rem." {
		t.Errorf("iteration 2 = %v %s/%s, want Montium swap", s2[2].Kind, s2[2].ProcA, s2[2].ProcB)
	}
	if s2[3].Kind != Swap || s2[3].ProcA != "Pfx.rem." || s2[3].ProcB != "Frq.off." {
		t.Errorf("iteration 3 = %v %s/%s, want ARM swap", s2[3].Kind, s2[3].ProcA, s2[3].ProcB)
	}
	// Final assignment per Table 2's last kept row.
	app := res.Mapping.App
	want := map[string]string{
		"Frq.off.": "ARM1", "Pfx.rem.": "ARM2",
		"Rem.": "MONTIUM1", "Inv.OFDM": "MONTIUM2",
	}
	for name, tile := range want {
		p := app.ProcessByName(name)
		got := res.Platform.Tile(res.Mapping.Tile[p.ID]).Name
		if got != tile {
			t.Errorf("%s mapped to %s, want %s", name, got, tile)
		}
	}
}

func TestHiperlan2Feasible(t *testing.T) {
	res := mapHiperlan2(t, Config{})
	if !res.Feasible {
		t.Fatalf("mapping infeasible; notes: %v", res.Trace.Notes)
	}
	if res.Analysis.Period > float64(workload.Hiperlan2SymbolPeriodNs) {
		t.Errorf("period %.0f ns exceeds the 4 µs symbol period", res.Analysis.Period)
	}
	if !res.Mapping.Adequate(res.Platform) {
		t.Error("mapping not adequate")
	}
	if !res.Mapping.Adherent(res.Platform) {
		t.Error("mapping not adherent")
	}
	// Processing energy is the sum of the chosen Table 1 rows:
	// 32 + 33 + 143 + 76 (all Montium-preferred kernels end on their
	// preferred type except the two forced ARM kernels at 60 + 62).
	if got, want := res.Energy.Processing, 60.0+62+143+76; got != want {
		t.Errorf("processing energy = %v, want %v", got, want)
	}
}

func TestHiperlan2BuffersComputedAndCharged(t *testing.T) {
	res := mapHiperlan2(t, Config{})
	app := res.Mapping.App
	for _, c := range app.StreamChannels() {
		if res.Mapping.Buffers[c.ID] <= 0 {
			t.Errorf("channel %q has no buffer", c.Name)
		}
	}
	// Buffers land in the consuming tiles' memory reservations.
	pfx := app.ProcessByName("Pfx.rem.")
	tile := res.Platform.Tile(res.Mapping.Tile[pfx.ID])
	im := res.Mapping.Impl[pfx.ID]
	if tile.ReservedMem <= im.MemBytes {
		t.Errorf("tile %q reserved %d B, want implementation (%d B) plus stream buffer",
			tile.Name, tile.ReservedMem, im.MemBytes)
	}
}

func TestHiperlan2RoutesAllChannels(t *testing.T) {
	res := mapHiperlan2(t, Config{})
	app := res.Mapping.App
	for _, c := range app.StreamChannels() {
		path, ok := res.Mapping.Route[c.ID]
		if !ok {
			t.Errorf("channel %q unrouted", c.Name)
			continue
		}
		// Endpoints sit on distinct tiles here, so every channel crosses
		// the NoC.
		if path.Hops() == 0 {
			t.Errorf("channel %q has a zero-hop route", c.Name)
		}
	}
	// Step 3 routes in non-increasing throughput order: first routed
	// channel is A/D→Pfx (80 tokens/symbol).
	if len(res.Trace.Step3) == 0 || res.Trace.Step3[0].Channel != "A/D→Pfx.rem." {
		t.Errorf("heaviest channel not routed first: %+v", res.Trace.Step3)
	}
}

func TestHiperlan2AllModesFeasible(t *testing.T) {
	for _, mode := range workload.Hiperlan2Modes {
		app := workload.Hiperlan2(mode)
		lib := workload.Hiperlan2Library(mode)
		plat := workload.Hiperlan2Platform()
		m := NewMapper(lib)
		res, err := m.Map(app, plat)
		if err != nil {
			t.Fatalf("%s: %v", mode.Name, err)
		}
		if !res.Feasible {
			t.Errorf("%s: infeasible; notes %v", mode.Name, res.Trace.Notes)
		}
	}
}

func TestHiperlan2CallerPlatformUntouched(t *testing.T) {
	mode := workload.Hiperlan2Modes[0]
	app := workload.Hiperlan2(mode)
	lib := workload.Hiperlan2Library(mode)
	plat := workload.Hiperlan2Platform()
	m := NewMapper(lib)
	if _, err := m.Map(app, plat); err != nil {
		t.Fatal(err)
	}
	for _, tile := range plat.Tiles {
		if tile.ReservedMem != 0 || tile.ReservedUtil != 0 || tile.Occupants != 0 {
			t.Errorf("tile %q mutated by Map", tile.Name)
		}
	}
	for _, l := range plat.Links {
		if l.ReservedBps != 0 {
			t.Errorf("link %d mutated by Map", l.ID)
		}
	}
}

func TestHiperlan2ApplyRemove(t *testing.T) {
	mode := workload.Hiperlan2Modes[2]
	app := workload.Hiperlan2(mode)
	lib := workload.Hiperlan2Library(mode)
	plat := workload.Hiperlan2Platform()
	m := NewMapper(lib)
	res, err := m.Map(app, plat)
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(plat, res); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	occupied := 0
	for _, tile := range plat.Tiles {
		if tile.Occupants > 0 {
			occupied++
		}
	}
	if occupied != 4 {
		t.Errorf("%d tiles occupied after Apply, want 4", occupied)
	}
	Remove(plat, res)
	for _, tile := range plat.Tiles {
		if tile.ReservedMem != 0 || tile.Occupants != 0 || tile.ReservedUtil > 1e-12 {
			t.Errorf("tile %q not clean after Remove: mem=%d occ=%d util=%g",
				tile.Name, tile.ReservedMem, tile.Occupants, tile.ReservedUtil)
		}
	}
	for _, l := range plat.Links {
		if l.ReservedBps != 0 {
			t.Errorf("link %d not released", l.ID)
		}
	}
}

func TestHiperlan2RenderTable2(t *testing.T) {
	res := mapHiperlan2(t, Config{})
	table := res.Trace.RenderStep2Table([]string{"ARM1", "ARM2", "MONTIUM1", "MONTIUM2"})
	if table == "" {
		t.Fatal("empty table")
	}
	// The header and the paper's initial row must be present.
	for _, want := range []string{"ARM1", "Initial (greedy) assignment", "No improvement, revert"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}
