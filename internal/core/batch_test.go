package core

import (
	"fmt"
	"math/rand"
	"testing"

	"rtsm/internal/arch"
	"rtsm/internal/workload"
)

// disjointResults maps one region-pinned chain per quadrant of a sharded
// platform and returns the mappings whose plans have pairwise-disjoint
// footprints (greedily skipping any that spill into an already-claimed
// region — routing near region borders may cross them).
func disjointResults(t *testing.T, plat *arch.Platform, seed int64) []*Result {
	t.Helper()
	var out []*Result
	claimed := make(arch.RegionSet)
	for r := 0; r < plat.RegionCount(); r++ {
		// The mapper optimizes globally and may scatter compute tiles
		// outside the pinned quadrant; retry a few seeds until this
		// region's mapping stays clear of the regions claimed so far.
		for k := int64(0); k < 8; k++ {
			res := mapOnto(t, plat, seed+int64(r)*8+k, fmt.Sprintf("SRC%d", r), fmt.Sprintf("SINK%d", r))
			plan, err := NewPlan(plat, res)
			if err != nil {
				t.Fatalf("plan for region %d: %v", r, err)
			}
			if plan.Overlaps(claimed.Sorted()) {
				continue
			}
			out = append(out, res)
			for _, fr := range plan.Regions() {
				claimed.Add(fr)
			}
			break
		}
	}
	if len(out) < 2 {
		t.Fatalf("fixture produced %d disjoint mappings, need at least 2", len(out))
	}
	return out
}

// plansFor rebuilds the reservation plans of the given mappings against
// one platform, as independent admissions would.
func plansFor(t *testing.T, plat *arch.Platform, results []*Result) []*Plan {
	t.Helper()
	plans := make([]*Plan, len(results))
	for i, res := range results {
		p, err := NewPlan(plat, res)
		if err != nil {
			t.Fatal(err)
		}
		plans[i] = p
	}
	return plans
}

// TestMergePlansRefusesOverlap pins the merge rule: two plans pinned to
// the same quadrant overlap and cannot share a batch.
func TestMergePlansRefusesOverlap(t *testing.T) {
	plat := workload.SyntheticRegionPlatform(8, 8, 123, 4)
	a := mapOnto(t, plat, 1, "SRC0", "SINK0")
	b := mapOnto(t, plat, 2, "SRC0", "SINK0")
	pa, err := NewPlan(plat, a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := NewPlan(plat, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergePlans(pa, pb); err == nil {
		t.Fatal("MergePlans accepted two plans pinned to the same region")
	}
	if _, err := MergePlans(pa); err != nil {
		t.Fatalf("single-plan merge failed: %v", err)
	}
}

// TestBatchCommitMatchesSequential is the batched-commit equivalence
// property: committing N disjoint plans through one BatchPlan leaves the
// platform bit-identical — residual capacity, global version and every
// per-region version — to committing the same plans one at a time, in
// any order. Randomized over seeds and over the sequential order, so the
// disjointness argument ("order cannot matter") is actually exercised.
func TestBatchCommitMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		plat := workload.SyntheticRegionPlatform(8, 8, 123, 4)
		seq := workload.SyntheticRegionPlatform(8, 8, 123, 4)
		results := disjointResults(t, plat, seed*100)
		plans := plansFor(t, plat, results)
		seqPlans := plansFor(t, seq, results)

		batch, err := MergePlans(plans...)
		if err != nil {
			t.Fatalf("seed %d: merge: %v", seed, err)
		}
		if err := batch.Validate(plat); err != nil {
			t.Fatalf("seed %d: batch validate on fresh platform: %v", seed, err)
		}
		batch.Commit(plat)

		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(seqPlans), func(i, j int) {
			seqPlans[i], seqPlans[j] = seqPlans[j], seqPlans[i]
		})
		for _, p := range seqPlans {
			if err := p.Validate(seq); err != nil {
				t.Fatalf("seed %d: sequential validate: %v", seed, err)
			}
			p.Commit(seq)
		}

		if !plat.Residual().Equal(seq.Residual()) {
			t.Fatalf("seed %d: batched and sequential residuals differ", seed)
		}
		if plat.Version() != seq.Version() {
			t.Fatalf("seed %d: global version differs: batch %d, sequential %d",
				seed, plat.Version(), seq.Version())
		}
		for r := 0; r < plat.RegionCount(); r++ {
			if plat.RegionVersion(arch.RegionID(r)) != seq.RegionVersion(arch.RegionID(r)) {
				t.Fatalf("seed %d: region %d version differs", seed, r)
			}
		}

		// Release undoes the batch exactly.
		batch.Release(plat)
		pristine := workload.SyntheticRegionPlatform(8, 8, 123, 4)
		if !plat.Residual().Equal(pristine.Residual()) {
			t.Fatalf("seed %d: batch release did not restore the pristine residual", seed)
		}
	}
}

// TestBatchValidateAttributesAllViolations checks that a batch whose
// members no longer fit reports every failing member (with its index),
// not just the first, and that Violating agrees with Validate.
func TestBatchValidateAttributesAllViolations(t *testing.T) {
	plat := workload.SyntheticRegionPlatform(8, 8, 123, 4)
	plans := plansFor(t, plat, disjointResults(t, plat, 7))
	batch, err := MergePlans(plans...)
	if err != nil {
		t.Fatal(err)
	}
	// Occupy every member's resources so every member violates.
	for _, p := range plans {
		p.Commit(plat)
		p.Commit(plat) // double-commit guarantees exhaustion for util/NI dimensions
	}
	verr := batch.Validate(plat)
	if verr == nil {
		t.Fatal("batch validated against an exhausted platform")
	}
	be, ok := verr.(*BatchConflictError)
	if !ok {
		t.Fatalf("want *BatchConflictError, got %T: %v", verr, verr)
	}
	if len(be.Indices) != len(plans) || len(be.Errs) != len(plans) {
		t.Fatalf("want %d failing members, got indices %v", len(plans), be.Indices)
	}
	viol := batch.Violating(plat)
	if len(viol) != len(be.Indices) {
		t.Fatalf("Violating (%v) disagrees with Validate (%v)", viol, be.Indices)
	}
	for i := range viol {
		if viol[i] != be.Indices[i] {
			t.Fatalf("Violating (%v) disagrees with Validate (%v)", viol, be.Indices)
		}
	}
	if be.Error() == "" {
		t.Fatal("empty error string")
	}
}
