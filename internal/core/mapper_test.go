package core

import (
	"fmt"
	"testing"

	"rtsm/internal/arch"
	"rtsm/internal/csdf"
	"rtsm/internal/model"
	"rtsm/internal/workload"
)

// tinyFixture builds a 2-process chain with a fast/expensive ARM and a
// slow/cheap DSP implementation per process, on a 2×2 platform with one
// tile of each type plus pinned endpoints.
func tinyFixture(t *testing.T) (*model.Application, *model.Library, *arch.Platform) {
	t.Helper()
	app := model.NewApplication("tiny", model.QoS{PeriodNs: 4000})
	src := app.AddPinnedProcess("src", "SRC")
	a := app.AddProcess("a")
	b := app.AddProcess("b")
	sink := app.AddPinnedProcess("sink", "SINK")
	app.Connect(src, a, 16, 4)
	app.Connect(a, b, 16, 4)
	app.Connect(b, sink, 16, 4)

	lib := model.NewLibrary()
	for _, name := range []string{"a", "b"} {
		lib.Add(&model.Implementation{
			Process: name, TileType: arch.TypeARM,
			WCET:            csdf.Vals(2, 100, 2),
			In:              map[string]csdf.Pattern{"in": csdf.Vals(16, 0, 0)},
			Out:             map[string]csdf.Pattern{"out": csdf.Vals(0, 0, 16)},
			EnergyPerPeriod: 100, MemBytes: 1024,
		})
		lib.Add(&model.Implementation{
			Process: name, TileType: arch.TypeDSP,
			WCET:            csdf.Vals(4, 300, 4),
			In:              map[string]csdf.Pattern{"in": csdf.Vals(16, 0, 0)},
			Out:             map[string]csdf.Pattern{"out": csdf.Vals(0, 0, 16)},
			EnergyPerPeriod: 40, MemBytes: 1024,
		})
	}

	plat := arch.NewMesh("tinyplat", 2, 2, 800_000_000)
	plat.AttachTile(arch.TileSpec{Name: "ARM0", Type: arch.TypeARM, At: arch.Pt(1, 0),
		ClockHz: 200e6, MemBytes: 64 << 10, NICapBps: 800e6})
	plat.AttachTile(arch.TileSpec{Name: "DSP0", Type: arch.TypeDSP, At: arch.Pt(1, 1),
		ClockHz: 200e6, MemBytes: 32 << 10, NICapBps: 800e6})
	plat.AttachTile(arch.TileSpec{Name: "SRC", Type: arch.TypeSource, At: arch.Pt(0, 0),
		ClockHz: 200e6, MemBytes: 64 << 10, NICapBps: 800e6})
	plat.AttachTile(arch.TileSpec{Name: "SINK", Type: arch.TypeSink, At: arch.Pt(0, 1),
		ClockHz: 200e6, MemBytes: 64 << 10, NICapBps: 800e6})
	return app, lib, plat
}

func TestMapPicksCheapImplementations(t *testing.T) {
	app, lib, plat := tinyFixture(t)
	res, err := NewMapper(lib).Map(app, plat)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("infeasible: %v", res.Trace.Notes)
	}
	// Both processes fit on the cheap DSP (40 nJ vs 100 nJ on ARM);
	// utilisation 308/800 ×2 ≤ 1 allows co-location.
	for _, name := range []string{"a", "b"} {
		p := app.ProcessByName(name)
		if got := res.Mapping.Impl[p.ID].TileType; got != arch.TypeDSP {
			t.Errorf("%s on %s, want DSP (cheaper)", name, got)
		}
	}
}

func TestMapErrorsWithoutImplementations(t *testing.T) {
	app, _, plat := tinyFixture(t)
	empty := model.NewLibrary()
	if _, err := NewMapper(empty).Map(app, plat); err == nil {
		t.Error("expected error for empty library")
	}
}

func TestMapErrorsWithoutMatchingTileType(t *testing.T) {
	app, _, plat := tinyFixture(t)
	lib := model.NewLibrary()
	lib.Add(&model.Implementation{
		Process: "a", TileType: arch.TypeMontium, // no Montium on tinyplat
		WCET:            csdf.Vals(1, 1, 1),
		In:              map[string]csdf.Pattern{"in": csdf.Vals(16, 0, 0)},
		Out:             map[string]csdf.Pattern{"out": csdf.Vals(0, 0, 16)},
		EnergyPerPeriod: 1, MemBytes: 1,
	})
	if _, err := NewMapper(lib).Map(app, plat); err == nil {
		t.Error("expected adequacy error")
	}
}

func TestMapErrorsOnUnknownPinnedTile(t *testing.T) {
	app, lib, plat := tinyFixture(t)
	app2 := model.NewApplication("bad", app.QoS)
	app2.AddPinnedProcess("src", "NOSUCH")
	p := app2.AddProcess("a")
	app2.Connect(app2.ProcessByName("src"), p, 16, 4)
	if _, err := NewMapper(lib).Map(app2, plat); err == nil {
		t.Error("expected pinned-tile error")
	}
	_ = plat
}

// bufferTrapFixture shrinks the DSP tile's memory so the cheap DSP
// implementations fit but their stream buffers do not. Step 1 prefers the
// DSP on energy; step 4's buffer reservation fails; the feedback loop must
// displace a process. The paper's §4.4 describes exactly this iterate-on-
// buffer-overflow behaviour.
func bufferTrapFixture(t *testing.T) (*model.Application, *model.Library, *arch.Platform) {
	t.Helper()
	app, lib, plat := tinyFixture(t)
	// Implementations occupy 1024 B each; both on DSP0 leaves zero bytes
	// for the buffers step 4 wants to charge.
	plat.TileByName("DSP0").MemBytes = 2048
	return app, lib, plat
}

func TestRefinementEscapesBufferTrap(t *testing.T) {
	app, lib, plat := bufferTrapFixture(t)
	res, err := NewMapper(lib).Map(app, plat)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("refinement failed to escape the buffer trap: %v", res.Trace.Notes)
	}
	if res.Refinements == 0 {
		t.Error("expected at least one refinement round")
	}
	// At least one process must have left the memory-starved DSP.
	onDSP := 0
	for _, name := range []string{"a", "b"} {
		p := app.ProcessByName(name)
		if res.Platform.Tile(res.Mapping.Tile[p.ID]).Name == "DSP0" {
			onDSP++
		}
	}
	if onDSP == 2 {
		t.Error("both processes still on the memory-starved tile")
	}
}

func TestNoRefinementAblationStopsEarly(t *testing.T) {
	app, lib, plat := bufferTrapFixture(t)
	m := &Mapper{Lib: lib, Cfg: Config{NoRefinement: true}}
	res, err := m.Map(app, plat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Error("without refinement the first (infeasible) attempt must be returned")
	}
}

func TestStrategiesReachSameCostOnHiperlan2(t *testing.T) {
	first := mapHiperlan2(t, Config{Strategy: FirstImprovement})
	best := mapHiperlan2(t, Config{Strategy: BestImprovement})
	f := first.Trace.Step2[len(first.Trace.Step2)-1]
	b := best.Trace.Step2[len(best.Trace.Step2)-1]
	_ = f
	_ = b
	// Both strategies must find the cost-7 optimum of this tiny instance.
	if first.Energy.Total() != best.Energy.Total() {
		t.Errorf("first-improvement %.1f vs best-improvement %.1f",
			first.Energy.Total(), best.Energy.Total())
	}
}

func TestBestImprovementAcceptsMontiumSwapFirst(t *testing.T) {
	// Under best-improvement the first applied move is the Montium swap
	// (Δ −2), not the ARM swap the paper's table evaluates first — the
	// documented divergence between Table 2 and the literal "best
	// reassignment" reading (see EXPERIMENTS.md).
	res := mapHiperlan2(t, Config{Strategy: BestImprovement})
	s2 := res.Trace.Step2
	if len(s2) < 2 {
		t.Fatal("trace too short")
	}
	if s2[1].ProcA != "Inv.OFDM" || !s2[1].Accepted {
		t.Errorf("first best-improvement move = %+v, want accepted Montium swap", s2[1])
	}
}

func TestGreedyOnlyAblation(t *testing.T) {
	res := mapHiperlan2(t, Config{NoStep2: true})
	if len(res.Trace.Step2) != 0 {
		t.Error("NoStep2 still ran local search")
	}
	// The greedy assignment routes and verifies fine here, it is just
	// more expensive in communication.
	full := mapHiperlan2(t, Config{})
	if res.Feasible && full.Feasible && res.Energy.Communication < full.Energy.Communication {
		t.Errorf("greedy comm %.1f beat refined comm %.1f",
			res.Energy.Communication, full.Energy.Communication)
	}
}

func TestTrafficWeightedCostModel(t *testing.T) {
	res := mapHiperlan2(t, Config{CommCost: TrafficWeighted})
	if !res.Feasible {
		t.Fatalf("infeasible: %v", res.Trace.Notes)
	}
	// The weighted model measures cost in nJ, not hops.
	if res.Trace.Step2[0].Cost == 11 {
		t.Error("traffic-weighted cost should not equal the hop count")
	}
}

func TestXYRouterPolicy(t *testing.T) {
	res := mapHiperlan2(t, Config{Router: XYOnly})
	if !res.Feasible {
		t.Fatalf("XY routing infeasible on the uncongested case: %v", res.Trace.Notes)
	}
}

func TestSyntheticChainsMapFeasibly(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		app, lib := workload.Synthetic(workload.SynthOptions{
			Shape: workload.ShapeChain, Processes: 8, Seed: seed})
		plat := workload.SyntheticPlatform(4, 4, seed)
		res, err := NewMapper(lib).Map(app, plat)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Feasible {
			t.Errorf("seed %d infeasible: %v", seed, res.Trace.Notes)
		}
		if !res.Mapping.Adherent(res.Platform) {
			t.Errorf("seed %d not adherent", seed)
		}
	}
}

func TestSyntheticShapesMapFeasibly(t *testing.T) {
	for _, shape := range []workload.Shape{workload.ShapeForkJoin, workload.ShapeLayered} {
		for seed := int64(0); seed < 4; seed++ {
			app, lib := workload.Synthetic(workload.SynthOptions{
				Shape: shape, Processes: 6, Seed: seed})
			plat := workload.SyntheticPlatform(4, 4, seed+100)
			res, err := NewMapper(lib).Map(app, plat)
			if err != nil {
				t.Fatalf("%s seed %d: %v", shape, seed, err)
			}
			if !res.Feasible {
				t.Errorf("%s seed %d infeasible: %v", shape, seed, res.Trace.Notes)
			}
		}
	}
}

func TestMultiApplicationAdmission(t *testing.T) {
	// Admit HIPERLAN/2 twice... the second copy must fail (both Montiums
	// taken and the heavy kernels have no ARM headroom), demonstrating
	// run-time admission against current — not worst-case — state.
	mode := workload.Hiperlan2Modes[0]
	plat := workload.Hiperlan2Platform()
	app1 := workload.Hiperlan2(mode)
	lib := workload.Hiperlan2Library(mode)
	m := NewMapper(lib)
	res1, err := m.Map(app1, plat)
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(plat, res1); err != nil {
		t.Fatal(err)
	}
	app2 := workload.Hiperlan2(mode)
	app2.Name = "hiperlan2-second"
	res2, err := m.Map(app2, plat)
	if err == nil && res2.Feasible {
		t.Error("second receiver admitted onto exhausted Montiums")
	}
	// After removing the first, the second fits.
	Remove(plat, res1)
	res3, err := m.Map(app2, plat)
	if err != nil {
		t.Fatal(err)
	}
	if !res3.Feasible {
		t.Errorf("after release the receiver must fit again: %v", res3.Trace.Notes)
	}
}

func TestFinishAssignmentMatchesMapperOnSamePlacement(t *testing.T) {
	res := mapHiperlan2(t, Config{})
	app := res.Mapping.App
	var placement []PlacedProcess
	for _, p := range app.MappableProcesses() {
		placement = append(placement, PlacedProcess{
			Process: p.Name,
			Impl:    res.Mapping.Impl[p.ID],
			Tile:    res.Platform.Tile(res.Mapping.Tile[p.ID]).Name,
		})
	}
	lib := workload.Hiperlan2Library(workload.Hiperlan2Modes[3])
	fin, err := FinishAssignment(lib, Config{}, app, workload.Hiperlan2Platform(), placement)
	if err != nil {
		t.Fatal(err)
	}
	if !fin.Feasible {
		t.Fatalf("finished assignment infeasible: %v", fin.Trace.Notes)
	}
	if fin.Energy.Total() != res.Energy.Total() {
		t.Errorf("energy %.2f differs from mapper's %.2f", fin.Energy.Total(), res.Energy.Total())
	}
}

func TestFinishAssignmentRejectsInadequate(t *testing.T) {
	app, lib, plat := tinyFixture(t)
	armImpl := lib.ForType("a", arch.TypeARM)
	_, err := FinishAssignment(lib, Config{}, app, plat, []PlacedProcess{
		{Process: "a", Impl: armImpl, Tile: "DSP0"}, // ARM impl on DSP tile
		{Process: "b", Impl: lib.ForType("b", arch.TypeDSP), Tile: "DSP0"},
	})
	if err == nil {
		t.Error("inadequate placement accepted")
	}
}

func TestFinishAssignmentRejectsIncomplete(t *testing.T) {
	app, lib, plat := tinyFixture(t)
	_, err := FinishAssignment(lib, Config{}, app, plat, []PlacedProcess{
		{Process: "a", Impl: lib.ForType("a", arch.TypeDSP), Tile: "DSP0"},
	})
	if err == nil {
		t.Error("incomplete placement accepted")
	}
}

func TestMapDeterministic(t *testing.T) {
	// The mapper must be bit-for-bit reproducible: same trace, same
	// energy, same routes on every run.
	var sigs []string
	for i := 0; i < 5; i++ {
		res := mapHiperlan2(t, Config{})
		sig := fmt.Sprintf("%v|%v|%d", res.Energy, res.Analysis.Period, len(res.Trace.Step2))
		for _, r := range res.Trace.Step3 {
			sig += fmt.Sprintf("|%v", r.Routers)
		}
		sigs = append(sigs, sig)
	}
	for _, s := range sigs[1:] {
		if s != sigs[0] {
			t.Fatalf("nondeterministic mapping:\n%s\nvs\n%s", sigs[0], s)
		}
	}
}
