package core

import (
	"fmt"

	"rtsm/internal/arch"
	"rtsm/internal/csdf"
	"rtsm/internal/model"
)

// MappedGraph is the CSDF graph of a mapped application (the paper's
// Figure 3): one actor per data process, plus one router actor per hop of
// every routed channel, with the bookkeeping needed to relate graph
// entities back to the mapping.
type MappedGraph struct {
	Graph *csdf.Graph
	// ActorTile gives the tile hosting each actor; router actors map to
	// arch.NoTile.
	ActorTile map[csdf.ActorID]arch.TileID
	// ProcActor maps data processes to their actor.
	ProcActor map[model.ProcessID]csdf.ActorID
	// StreamEdge maps each stream channel to its consumer-side CSDF
	// channel, the edge whose capacity is the stream buffer B_i that
	// step 4 sizes and charges to the consumer's tile.
	StreamEdge map[model.ChannelID]csdf.ChannelID
	// Source and Sink delimit latency measurements.
	Source, Sink csdf.ActorID
}

// routerFIFOTokens is the fixed depth of the per-hop channels between
// router actors, matching the "4" edge annotations in the paper's
// Figure 3 (buffered router inputs).
const routerFIFOTokens = 4

// BuildMappedGraph constructs the CSDF graph of a mapped application. The
// time unit is nanoseconds: implementation WCETs are converted from clock
// cycles at their tile's clock, and each router contributes its 4-cycle
// worst-case latency at the NoC clock (paper §4.3). Throughput across a
// lane is guaranteed by the bandwidth reservation made in step 3, so
// router actors model latency, not serialisation at the reserved rate.
func BuildMappedGraph(app *model.Application, plat *arch.Platform, mp *Mapping) (*MappedGraph, error) {
	g := csdf.NewGraph(app.Name + "-mapped")
	out := &MappedGraph{
		Graph:      g,
		ActorTile:  make(map[csdf.ActorID]arch.TileID),
		ProcActor:  make(map[model.ProcessID]csdf.ActorID),
		StreamEdge: make(map[model.ChannelID]csdf.ChannelID),
		Source:     -1,
		Sink:       -1,
	}
	streamIn := make(map[model.ProcessID]int)
	streamOut := make(map[model.ProcessID]int)
	for _, c := range app.StreamChannels() {
		streamOut[c.Src]++
		streamIn[c.Dst]++
	}
	// One actor per data process.
	for _, p := range app.Processes {
		if p.Control {
			continue
		}
		var aid csdf.ActorID
		switch {
		case p.PinnedTile != "":
			// Pinned endpoints pace the stream: one firing per QoS
			// period for sources; sinks drain at negligible cost.
			if streamIn[p.ID] == 0 {
				aid = g.AddActor(p.Name, csdf.Vals(app.QoS.PeriodNs))
			} else {
				aid = g.AddActor(p.Name, csdf.Vals(1))
			}
			out.ActorTile[aid] = plat.TileByName(p.PinnedTile).ID
		default:
			im := mp.Impl[p.ID]
			tid, ok := mp.Tile[p.ID]
			if im == nil || !ok {
				return nil, fmt.Errorf("core: process %q is unmapped", p.Name)
			}
			clock := plat.Tile(tid).ClockHz
			if clock <= 0 {
				return nil, fmt.Errorf("core: tile %q has no clock", plat.Tile(tid).Name)
			}
			aid = g.AddActor(p.Name, im.WCET.ScaleDiv(1_000_000_000, clock))
			out.ActorTile[aid] = tid
		}
		out.ProcActor[p.ID] = aid
		if streamIn[p.ID] == 0 && out.Source < 0 {
			out.Source = aid
		}
		if streamOut[p.ID] == 0 {
			out.Sink = aid // last such wins: the stream's end
		}
	}

	routerWCET := routerHopNs(plat)
	for _, c := range app.StreamChannels() {
		srcActor := out.ProcActor[c.Src]
		dstActor := out.ProcActor[c.Dst]
		prod, err := ratePattern(app, mp, c, c.Src, true, g.Actor(srcActor).Phases())
		if err != nil {
			return nil, err
		}
		cons, err := ratePattern(app, mp, c, c.Dst, false, g.Actor(dstActor).Phases())
		if err != nil {
			return nil, err
		}
		path := mp.Route[c.ID]
		hops := path.Hops()
		if hops == 0 {
			// Same tile or same router: a single buffered edge.
			out.StreamEdge[c.ID] = g.Connect(srcActor, dstActor, prod, cons, 0)
			continue
		}
		// One router actor per link traversed, each forwarding token by
		// token with the router's worst-case latency.
		prev := srcActor
		prevPat := prod
		for h := 0; h < hops; h++ {
			r := g.AddActor(fmt.Sprintf("R(%s#%d)", c.Name, h), csdf.Vals(routerWCET))
			out.ActorTile[r] = arch.NoTile
			edge := g.Connect(prev, r, prevPat, csdf.Vals(1), 0)
			if h == 0 {
				// The producer-side buffer belongs to the implementation
				// (its output FIFO). It is double-buffered: it holds two
				// full production bursts so the producer can fill burst
				// k+1 while the NoC drains burst k; a single burst would
				// throttle every producer to burst time plus drain time.
				g.Channel(edge).Capacity = maxInt64(routerFIFOTokens, 2*prevPat.Max())
			} else {
				g.Channel(edge).Capacity = routerFIFOTokens
			}
			prev = csdf.ActorID(r)
			prevPat = csdf.Vals(1)
		}
		// The consumer-side edge carries the sized stream buffer B_i.
		out.StreamEdge[c.ID] = g.Connect(prev, dstActor, prevPat, cons, 0)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: mapped graph invalid: %w", err)
	}
	return out, nil
}

// routerHopNs is the per-token forwarding latency of one router in ns.
func routerHopNs(plat *arch.Platform) int64 {
	clock := plat.NoCClockHz
	if clock <= 0 {
		clock = 200_000_000
	}
	var lat int64 = 4
	if len(plat.Routers) > 0 {
		lat = plat.Routers[0].LatencyCycles
	}
	return (lat*1_000_000_000 + clock - 1) / clock
}

// ratePattern resolves the CSDF rate pattern a process contributes to a
// channel end: pinned endpoints transfer the whole per-period token count
// in their single phase; mapped processes use their implementation's port
// patterns.
func ratePattern(app *model.Application, mp *Mapping, c *model.Channel, pid model.ProcessID, producing bool, phases int) (csdf.Pattern, error) {
	p := app.Process(pid)
	if p.PinnedTile != "" {
		pat := make(csdf.Pattern, phases)
		pat[phases-1] = c.TokensPerPeriod
		return pat, nil
	}
	im := mp.Impl[pid]
	var pat csdf.Pattern
	if producing {
		pat = im.Out[c.SrcPort]
	} else {
		pat = im.In[c.DstPort]
	}
	if pat == nil {
		side := "input"
		port := c.DstPort
		if producing {
			side = "output"
			port = c.SrcPort
		}
		return nil, fmt.Errorf("core: implementation %s has no %s port %q for channel %q", im, side, port, c.Name)
	}
	return pat, nil
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// step4 checks the application constraints on the mapped CSDF graph
// (paper §3, step 4): it computes the stream buffer capacities with the
// dataflow analysis, verifies the throughput and latency constraints, and
// verifies the buffers fit the consuming tiles' memories. On violation it
// produces feedback identifying the decision to revisit.
func (m *Mapper) step4(app *model.Application, work *arch.Platform, mp *Mapping, tr *Trace) (*Result, *feedback) {
	mg, err := BuildMappedGraph(app, work, mp)
	if err != nil {
		tr.Notes = append(tr.Notes, "step 4: "+err.Error())
		res := m.infeasibleResult(app, work, mp, tr)
		return res, nil
	}
	exec := csdf.ExecOptions{
		WarmupIterations:  4,
		MeasureIterations: 8,
		Observe:           mg.Sink,
		Source:            mg.Source,
	}
	buf, err := csdf.BufferSizes(mg.Graph, csdf.BufferOptions{
		TargetPeriod: float64(app.QoS.PeriodNs),
		Tighten:      m.Cfg.TightenBuffers,
		Exec:         exec,
	})
	if err != nil {
		tr.Notes = append(tr.Notes, "step 4: "+err.Error())
		res := m.infeasibleResult(app, work, mp, tr)
		return res, m.throughputFeedback(app, work, mp, mg, nil)
	}
	for cid, edge := range mg.StreamEdge {
		if cap, ok := buf.Capacities[edge]; ok {
			mp.Buffers[cid] = cap
			mg.Graph.Channel(edge).Capacity = cap
		}
	}

	res := &Result{
		Mapping:  mp,
		Graph:    mg.Graph,
		Mapped:   mg,
		Analysis: buf.Exec,
		Trace:    tr,
		Platform: work,
	}
	params := m.Cfg.energyParams()
	res.Energy = params.Evaluate(app, work, AssignmentView(mp))

	if !buf.Met {
		tr.Notes = append(tr.Notes, fmt.Sprintf("step 4: period %.0f ns exceeds required %d ns", buf.Exec.Period, app.QoS.PeriodNs))
		return res, m.throughputFeedback(app, work, mp, mg, buf.Exec)
	}
	if app.QoS.LatencyNs > 0 && buf.Exec.Latency > app.QoS.LatencyNs {
		tr.Notes = append(tr.Notes, fmt.Sprintf("step 4: latency %d ns exceeds bound %d ns", buf.Exec.Latency, app.QoS.LatencyNs))
		return res, m.latencyFeedback(app, mp)
	}
	if fb := m.reserveBuffers(app, work, mp); fb != nil {
		tr.Notes = append(tr.Notes, "step 4: "+fb.detail)
		return res, fb
	}
	res.Feasible = true
	return res, nil
}

// throughputFeedback picks the bottleneck: the busiest mapped actor. If it
// is a process actor, its implementation choice is banned so step 1 tries
// another tile type; if only routers are busy, the consumer of the slowest
// route is displaced instead.
func (m *Mapper) throughputFeedback(app *model.Application, work *arch.Platform, mp *Mapping, mg *MappedGraph, exec *csdf.ExecResult) *feedback {
	var bottleneck *model.Process
	var worst float64
	if exec != nil {
		for _, p := range app.MappableProcesses() {
			aid, ok := mg.ProcActor[p.ID]
			if !ok {
				continue
			}
			if u := exec.Utilisation(aid); u > worst {
				worst = u
				bottleneck = p
			}
		}
	}
	if bottleneck == nil {
		// No execution data: displace the process with the largest
		// per-period cycle demand, the likeliest culprit.
		var worstCyc int64 = -1
		for _, p := range app.MappableProcesses() {
			im := mp.Impl[p.ID]
			if im == nil {
				continue
			}
			if cyc, err := im.CyclesPerPeriod(app, p); err == nil && cyc > worstCyc {
				worstCyc = cyc
				bottleneck = p
			}
		}
	}
	if bottleneck == nil {
		return nil
	}
	im := mp.Impl[bottleneck.ID]
	if len(m.Lib.For(bottleneck.Name)) > 1 {
		return &feedback{
			kind:        fbThroughput,
			process:     bottleneck.ID,
			banImplType: im.TileType,
			detail:      fmt.Sprintf("process %q on %s is the throughput bottleneck", bottleneck.Name, im.TileType),
		}
	}
	return &feedback{
		kind:       fbThroughput,
		process:    bottleneck.ID,
		banTile:    mp.Tile[bottleneck.ID],
		useBanTile: true,
		detail:     fmt.Sprintf("process %q is the throughput bottleneck; displacing it", bottleneck.Name),
	}
}

// latencyFeedback displaces the endpoint of the longest route.
func (m *Mapper) latencyFeedback(app *model.Application, mp *Mapping) *feedback {
	var worst *model.Channel
	hops := -1
	for _, c := range app.StreamChannels() {
		if path, ok := mp.Route[c.ID]; ok && path.Hops() > hops {
			hops = path.Hops()
			worst = c
		}
	}
	if worst == nil {
		return nil
	}
	pid := worst.Src
	if isPinned(app, pid) {
		pid = worst.Dst
	}
	if isPinned(app, pid) {
		return nil
	}
	return &feedback{
		kind:       fbLatency,
		process:    pid,
		banTile:    mp.Tile[pid],
		useBanTile: true,
		detail:     fmt.Sprintf("channel %q contributes %d hops to the latency", worst.Name, hops),
	}
}

// reserveBuffers charges each stream buffer to the consuming tile's
// memory (paper §4.4: "an attempt should be made to allocate the
// additional required buffer size on the tiles the consuming actor is
// mapped onto").
func (m *Mapper) reserveBuffers(app *model.Application, work *arch.Platform, mp *Mapping) *feedback {
	for _, c := range app.StreamChannels() {
		buf, ok := mp.Buffers[c.ID]
		if !ok || buf == 0 {
			continue
		}
		tid, ok := mp.Tile[c.Dst]
		if !ok {
			continue
		}
		t := work.Tile(tid)
		need := buf * c.TokenBytes
		if t.MemBytes > 0 && t.FreeMem() < need {
			pid := c.Dst
			if isPinned(app, pid) {
				pid = c.Src
				if isPinned(app, pid) {
					return &feedback{
						kind:    fbBufferOverflow,
						process: c.Dst,
						detail:  fmt.Sprintf("buffer of %q (%d B) exceeds pinned tile %q", c.Name, need, t.Name),
					}
				}
			}
			return &feedback{
				kind:       fbBufferOverflow,
				process:    pid,
				banTile:    mp.Tile[pid],
				useBanTile: true,
				detail:     fmt.Sprintf("buffer of %q (%d B) does not fit tile %q", c.Name, need, t.Name),
			}
		}
		if t.MemBytes > 0 {
			work.WTile(tid).ReservedMem += need
		}
	}
	return nil
}
