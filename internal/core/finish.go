package core

import (
	"fmt"

	"rtsm/internal/arch"
	"rtsm/internal/model"
	"rtsm/internal/noc"
)

// PlacedProcess is one externally decided placement: which implementation
// serves a process and on which tile it runs.
type PlacedProcess struct {
	Process string
	Impl    *model.Implementation
	Tile    string
}

// FinishAssignment completes an externally produced process placement into
// a full, verified spatial mapping: it reserves tile resources, routes the
// channels (step 3) and verifies the QoS constraints (step 4), without any
// refinement. Baseline mappers and exact solvers use it so that their
// placements are judged by exactly the same routing and verification
// machinery as the paper's heuristic.
//
// The caller's platform is not mutated. An error is returned when the
// placement is not adherent (a tile cannot host its processes) or names
// unknown entities; QoS violations are reported via Result.Feasible, not
// as errors.
func FinishAssignment(lib *model.Library, cfg Config, app *model.Application, plat *arch.Platform, placement []PlacedProcess) (*Result, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	m := &Mapper{Lib: lib, Cfg: cfg}
	work := plat.Clone()
	trace := &Trace{}
	mp := &Mapping{
		App:     app,
		Impl:    make(map[model.ProcessID]*model.Implementation),
		Tile:    make(map[model.ProcessID]arch.TileID),
		Route:   make(map[model.ChannelID]noc.Path),
		Buffers: make(map[model.ChannelID]int64),
	}
	for _, p := range app.Processes {
		if p.Control {
			continue
		}
		if p.PinnedTile != "" {
			t := work.TileByName(p.PinnedTile)
			if t == nil {
				return nil, fmt.Errorf("core: process %q pinned to unknown tile %q", p.Name, p.PinnedTile)
			}
			mp.Tile[p.ID] = t.ID
			mp.Impl[p.ID] = nil
		}
	}
	placed := make(map[string]bool, len(placement))
	for _, pl := range placement {
		p := app.ProcessByName(pl.Process)
		if p == nil {
			return nil, fmt.Errorf("core: placement names unknown process %q", pl.Process)
		}
		if p.PinnedTile != "" || p.Control {
			return nil, fmt.Errorf("core: process %q is not mappable", pl.Process)
		}
		t := work.TileByName(pl.Tile)
		if t == nil {
			return nil, fmt.Errorf("core: placement names unknown tile %q", pl.Tile)
		}
		if pl.Impl == nil {
			return nil, fmt.Errorf("core: placement of %q has no implementation", pl.Process)
		}
		if pl.Impl.TileType != t.Type {
			return nil, fmt.Errorf("core: placement of %q is inadequate: %s on %s tile %q",
				pl.Process, pl.Impl, t.Type, t.Name)
		}
		cyc, err := pl.Impl.CyclesPerPeriod(app, p)
		if err != nil {
			return nil, err
		}
		util := utilisation(t, cyc, app.QoS.PeriodNs)
		if !canHost(t, pl.Impl.MemBytes, util) {
			return nil, fmt.Errorf("core: placement not adherent: tile %q cannot host %s", t.Name, pl.Impl)
		}
		wt := work.WTile(t.ID)
		wt.ReservedMem += pl.Impl.MemBytes
		wt.ReservedUtil += util
		wt.Occupants++
		mp.Impl[p.ID] = pl.Impl
		mp.Tile[p.ID] = t.ID
		placed[pl.Process] = true
	}
	for _, p := range app.MappableProcesses() {
		if !placed[p.Name] {
			return nil, fmt.Errorf("core: placement is missing process %q", p.Name)
		}
	}
	if fb := m.step3(app, work, mp, trace); fb != nil {
		res := m.infeasibleResult(app, work, mp, trace)
		trace.Notes = append(trace.Notes, fb.String())
		res.BaseResidual = plat.Residual()
		return res, nil
	}
	res, _ := m.step4(app, work, mp, trace)
	res.BaseResidual = plat.Residual()
	return res, nil
}
