package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"rtsm/internal/arch"
	"rtsm/internal/workload"
)

// mapOnto maps a region-pinned synthetic chain onto the platform and
// returns the result, skipping the test when the mapper finds no feasible
// placement (the fixtures are sized so it always does).
func mapOnto(t *testing.T, plat *arch.Platform, seed int64, src, sink string) *Result {
	t.Helper()
	app, lib := workload.Synthetic(workload.SynthOptions{
		Shape: workload.ShapeChain, Processes: 3, Seed: seed,
		MaxUtil: 0.15, PeriodNs: 40_000, SrcTile: src, SinkTile: sink,
	})
	app.Name = fmt.Sprintf("plan-%s-%d", src, seed)
	m := &Mapper{Lib: lib}
	res, err := m.Map(app, plat)
	if err != nil {
		t.Fatalf("map: %v", err)
	}
	if !res.Feasible {
		t.Fatalf("fixture mapping infeasible (src=%s sink=%s)", src, sink)
	}
	return res
}

// TestPlanFootprintRegionLocal checks that a mapping pinned inside one
// quadrant yields a plan whose footprint is a subset of the platform's
// regions containing that quadrant, and that commit bumps exactly the
// footprint's region versions.
func TestPlanFootprintRegionLocal(t *testing.T) {
	plat := workload.SyntheticRegionPlatform(8, 8, 123, 4)
	res := mapOnto(t, plat, 1, "SRC0", "SINK0")
	plan, err := NewPlan(plat, res)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	fp := plan.Regions()
	if len(fp) == 0 {
		t.Fatal("empty footprint for a mapping with reservations")
	}
	for i := 1; i < len(fp); i++ {
		if fp[i] <= fp[i-1] {
			t.Fatalf("footprint not ascending unique: %v", fp)
		}
	}
	before := make([]uint64, plat.RegionCount())
	for r := range before {
		before[r] = plat.RegionVersion(arch.RegionID(r))
	}
	if err := plan.Validate(plat); err != nil {
		t.Fatalf("validate on fresh platform: %v", err)
	}
	plan.Commit(plat)
	inFp := make(map[arch.RegionID]bool)
	for _, r := range fp {
		inFp[r] = true
	}
	for r := 0; r < plat.RegionCount(); r++ {
		now := plat.RegionVersion(arch.RegionID(r))
		if inFp[arch.RegionID(r)] && now != before[r]+1 {
			t.Errorf("footprint region %d version %d, want %d", r, now, before[r]+1)
		}
		if !inFp[arch.RegionID(r)] && now != before[r] {
			t.Errorf("foreign region %d version moved: %d -> %d", r, before[r], now)
		}
	}
	plan.Release(plat)
	if err := plan.Validate(plat); err != nil {
		t.Fatalf("validate after release: %v", err)
	}
}

// TestPlanFootprintSpansAllRegions pins the stream endpoints in opposite
// corner quadrants, so the route alone must cross every quadrant boundary
// on its row/column; the footprint contains more than one region and
// commit still only bumps footprint regions.
func TestPlanFootprintSpansAllRegions(t *testing.T) {
	plat := workload.SyntheticRegionPlatform(8, 8, 123, 4)
	// SRC0 sits in quadrant 0, SINK3 in quadrant 3: any route between
	// them leaves the source quadrant.
	res := mapOnto(t, plat, 2, "SRC0", "SINK3")
	plan, err := NewPlan(plat, res)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	if len(plan.Regions()) < 2 {
		t.Fatalf("corner-to-corner mapping footprint = %v, want ≥ 2 regions", plan.Regions())
	}
	if err := Apply(plat, res); err != nil {
		t.Fatalf("apply: %v", err)
	}
	Remove(plat, res)
}

// TestConflictErrorReportsRegions exhausts one tile and checks the
// resulting ConflictError attributes the violation to the tile's region.
func TestConflictErrorReportsRegions(t *testing.T) {
	plat := workload.SyntheticRegionPlatform(8, 8, 123, 4)
	res := mapOnto(t, plat, 3, "SRC2", "SINK2")
	// Exhaust the memory of every tile the mapping uses.
	var usedRegions []arch.RegionID
	for _, tid := range res.Mapping.Tile {
		tl := plat.Tile(tid)
		tl.ReservedMem = tl.MemBytes
		usedRegions = append(usedRegions, plat.RegionOfTile(tid))
	}
	err := Apply(plat, res)
	var conflict *ConflictError
	if !errors.As(err, &conflict) {
		t.Fatalf("want *ConflictError, got %v", err)
	}
	if len(conflict.Regions) == 0 {
		t.Fatal("conflict reports no regions")
	}
	want := make(map[arch.RegionID]bool)
	for _, r := range usedRegions {
		want[r] = true
	}
	for _, r := range conflict.Regions {
		if !want[r] {
			t.Errorf("conflict names region %d which holds no conflicted tile", r)
		}
	}
	for _, v := range conflict.Violations {
		if v.Kind != ResLink && v.Region != plat.RegionOfTile(v.Tile) {
			t.Errorf("violation on tile %d carries region %d, want %d",
				v.Tile, v.Region, plat.RegionOfTile(v.Tile))
		}
	}
}

// TestDisjointRegionCommitsRunConcurrently proves the sharded commit
// path's concurrency claim deterministically: one goroutine takes its
// plan's region locks and parks inside the commit section; a second
// goroutine with a disjoint footprint must still be able to validate,
// commit and release. Under the old global lock the second commit would
// block until the first unlocked — here it completes while the first
// section is still held open.
func TestDisjointRegionCommitsRunConcurrently(t *testing.T) {
	plat := workload.SyntheticRegionPlatform(8, 8, 123, 4)
	locks := arch.NewRegionLocks(plat.RegionCount())

	planFor := func(seed int64, src, sink string) *Plan {
		res := mapOnto(t, plat, seed, src, sink)
		plan, err := NewPlan(plat, res)
		if err != nil {
			t.Fatalf("plan: %v", err)
		}
		return plan
	}
	// Region-local endpoint pairs in opposite quadrants; pick a seed pair
	// whose footprints actually come out disjoint (placement is
	// first-fit, so a mapping may spill into a neighbour quadrant).
	var a, b *Plan
	for seed := int64(0); seed < 8; seed++ {
		a = planFor(seed, "SRC0", "SINK0")
		b = planFor(seed+100, "SRC3", "SINK3")
		if regionsDisjoint(a.Regions(), b.Regions()) {
			break
		}
		a, b = nil, nil
	}
	if a == nil {
		t.Skip("no disjoint fixture pair found; placement spilled across quadrants for all seeds")
	}

	holdOpen := make(chan struct{})
	aHolding := make(chan struct{})
	aDone := make(chan struct{})
	go func() {
		defer close(aDone)
		locks.Lock(a.Regions())
		defer locks.Unlock(a.Regions())
		if err := a.Validate(plat); err != nil {
			t.Error(err)
			return
		}
		a.Commit(plat)
		close(aHolding)
		<-holdOpen // park inside the commit section, locks held
		a.Release(plat)
	}()
	<-aHolding

	bDone := make(chan struct{})
	go func() {
		defer close(bDone)
		locks.Lock(b.Regions())
		defer locks.Unlock(b.Regions())
		if err := b.Validate(plat); err != nil {
			t.Error(err)
			return
		}
		b.Commit(plat)
		b.Release(plat)
	}()
	select {
	case <-bDone:
		// b committed while a's commit section was still open: the two
		// sections ran concurrently.
	case <-time.After(10 * time.Second):
		t.Fatal("disjoint-region commit blocked behind a held commit section")
	}
	close(holdOpen)
	<-aDone
}

// TestRepairRegionShortcut checks the region-aware early-out: a change
// confined to a foreign region leaves a stale mapping committable
// verbatim, so Repair returns it unmodified.
func TestRepairRegionShortcut(t *testing.T) {
	plat := workload.SyntheticRegionPlatform(8, 8, 123, 4)
	res := mapOnto(t, plat, 4, "SRC0", "SINK0")
	// Perturb a region-3 tile only (no tile of the mapping lives there:
	// the footprint is confined to quadrant 0's side of the mesh).
	plan, err := NewPlan(plat, res)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	for _, r := range plan.Regions() {
		if r == 3 {
			t.Skip("fixture mapping unexpectedly reaches region 3; shortcut not testable with this seed")
		}
	}
	victim := plat.RouterAt(arch.Pt(7, 7))
	for _, tid := range plat.TilesAtRouter(victim.ID) {
		plat.Tile(tid).ReservedMem = plat.Tile(tid).MemBytes
	}
	plat.BumpRegion(3)
	plat.BumpVersion()
	snap := plat.Snapshot()
	m := &Mapper{Lib: nil}
	rep, err := m.Repair(res, snap)
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if rep != res {
		t.Fatal("foreign-region change should return the stale mapping verbatim")
	}
}
