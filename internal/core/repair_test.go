package core

import (
	"testing"

	"rtsm/internal/workload"
)

// TestRepairReturnsValidMappingVerbatim pins the fast path: when the
// platform is resource-identical to the state the mapping was computed
// against, Repair hands the stale result back unchanged.
func TestRepairReturnsValidMappingVerbatim(t *testing.T) {
	plat := workload.SyntheticPlatform(4, 4, 7)
	app, lib := workload.Synthetic(workload.SynthOptions{
		Shape: workload.ShapeChain, Processes: 4, Seed: 1, MaxUtil: 0.3,
	})
	m := NewMapper(lib)
	res, err := m.Map(app, plat)
	if err != nil || !res.Feasible {
		t.Fatalf("map failed: %v", err)
	}
	rep, err := m.Repair(res, plat.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if rep != res {
		t.Fatal("Repair should return an unconflicted mapping verbatim")
	}
}

// TestRepairSalvagesAfterConflict drives the paper's feedback idea across
// commits: a mapping invalidated by a competing admission is repaired by
// re-placing only the conflicting processes, the rest stays pinned, and
// the repaired mapping commits.
func TestRepairSalvagesAfterConflict(t *testing.T) {
	plat := workload.SyntheticPlatform(4, 4, 7)
	app, lib := workload.Synthetic(workload.SynthOptions{
		Shape: workload.ShapeChain, Processes: 5, Seed: 3, MaxUtil: 0.3,
	})
	m := NewMapper(lib)
	stale, err := m.Map(app, plat)
	if err != nil || !stale.Feasible {
		t.Fatalf("map failed: %v", err)
	}
	// A competing admission saturates exactly one tile the mapping uses;
	// every other placement still fits.
	victim := stale.Mapping.Tile[app.MappableProcesses()[0].ID]
	vt := plat.Tile(victim)
	vt.ReservedUtil = 1.0
	vt.ReservedMem = vt.MemBytes
	plat.BumpVersion()
	if err := Validate(plat, stale); err == nil {
		t.Fatal("stale mapping should conflict on the saturated tile")
	}

	rep, err := m.Repair(stale, plat.Snapshot())
	if err != nil {
		t.Fatalf("repair failed outright: %v", err)
	}
	if !rep.Feasible {
		t.Fatalf("repair infeasible: %v", rep.Trace.Notes)
	}
	if !rep.Repaired {
		t.Fatal("result not marked repaired")
	}
	if rep.Pinned == 0 {
		t.Fatal("repair pinned nothing; that is a full remap")
	}
	if err := Apply(plat, rep); err != nil {
		t.Fatalf("repaired mapping does not commit: %v", err)
	}
	// Nothing may remain on the saturated tile, and the pinned processes
	// kept their stale placement.
	kept := 0
	for pid, tid := range rep.Mapping.Tile {
		if tid == victim {
			t.Fatalf("process %d still on saturated tile %d", pid, victim)
		}
		if stale.Mapping.Tile[pid] == tid {
			kept++
		}
	}
	if kept < rep.Pinned {
		t.Fatalf("only %d placements match the stale mapping, Pinned claims %d", kept, rep.Pinned)
	}
}

// TestRepairNeverProducesInvalidMapping is the safety property the
// admission pipeline relies on: whatever Repair returns as feasible must
// pass Validate — and therefore Apply — on the platform it was repaired
// against. Exercised over many random stale-mapping/competitor pairs.
func TestRepairNeverProducesInvalidMapping(t *testing.T) {
	pristine := workload.SyntheticPlatform(4, 4, 7)
	engaged, feasible := 0, 0
	for seed := int64(0); seed < 24; seed++ {
		app, lib := workload.Synthetic(workload.SynthOptions{
			Shape:     workload.ShapeChain,
			Processes: 3 + int(seed)%4,
			Seed:      seed,
			MaxUtil:   0.35,
		})
		m := NewMapper(lib)
		stale, err := m.Map(app, pristine)
		if err != nil || !stale.Feasible {
			continue
		}
		// Load the platform with competitors so the stale mapping's
		// resources are partly gone.
		live := pristine.Clone()
		for j := int64(1); j <= 3; j++ {
			capp, clib := workload.Synthetic(workload.SynthOptions{
				Shape:     workload.ShapeChain,
				Processes: 3 + int(seed+j)%4,
				Seed:      seed + 100*j,
				MaxUtil:   0.35,
			})
			capp.Name = "competitor"
			if cres, err := NewMapper(clib).Map(capp, live); err == nil && cres.Feasible {
				if err := Apply(live, cres); err != nil {
					t.Fatalf("seed %d: competitor apply: %v", seed, err)
				}
			}
		}
		if err := Validate(live, stale); err == nil {
			continue // no conflict to repair this round
		}
		engaged++
		snap := live.Snapshot()
		rep, err := m.Repair(stale, snap)
		if err != nil {
			continue // nothing salvageable: caller would full-remap
		}
		if !rep.Feasible {
			continue
		}
		feasible++
		if err := Validate(snap.Plat, rep); err != nil {
			t.Fatalf("seed %d: Repair produced a mapping Validate rejects: %v", seed, err)
		}
		if err := Apply(live, rep); err != nil {
			t.Fatalf("seed %d: repaired mapping does not commit: %v", seed, err)
		}
	}
	if engaged == 0 {
		t.Fatal("property test never constructed a conflict; workload too loose")
	}
	if feasible == 0 {
		t.Fatal("repair never produced a feasible mapping; repair path effectively dead")
	}
}

// TestRepairRefusesExhaustedPinnedNI: an exhausted network interface on
// a tile hosting only pinned processes (the shared SRC0 source) cannot be
// relieved by re-placing anything — the application's demand on it is
// fixed. Repair must refuse outright so the manager degrades to the full
// mapper (whose step 3 rejects promptly with the honest reason), instead
// of returning a "feasible" mapping that re-demands the exhausted
// bandwidth and conflicts on every commit.
func TestRepairRefusesExhaustedPinnedNI(t *testing.T) {
	plat := workload.SyntheticPlatform(4, 4, 7)
	app, lib := workload.Synthetic(workload.SynthOptions{
		Shape: workload.ShapeChain, Processes: 4, Seed: 1, MaxUtil: 0.3,
	})
	m := NewMapper(lib)
	stale, err := m.Map(app, plat)
	if err != nil || !stale.Feasible {
		t.Fatalf("map failed: %v", err)
	}
	// The mapped chain delivers into SINK0 over a multi-hop route, so the
	// mapping demands inbound NI bandwidth on the pinned sink tile.
	sink := plat.TileByName("SINK0")
	sink.ReservedInBps = sink.NICapBps
	plat.BumpVersion()
	if err := Validate(plat, stale); err == nil {
		t.Fatal("stale mapping should conflict on the saturated sink NI")
	}
	rep, err := m.Repair(stale, plat.Snapshot())
	if err == nil {
		t.Fatalf("Repair should refuse an irreducible NI conflict, returned feasible=%v", rep.Feasible)
	}
}

// TestRepairDegradesToFullRemap: when every placement conflicts, Repair
// refuses (nothing to salvage) so the caller can run the full mapper.
func TestRepairDegradesToFullRemap(t *testing.T) {
	plat := workload.Hiperlan2Platform()
	mode := workload.Hiperlan2Modes[0]
	lib := workload.Hiperlan2Library(mode)
	app := workload.Hiperlan2(mode)
	m := NewMapper(lib)
	res, err := m.Map(app, plat)
	if err != nil || !res.Feasible {
		t.Fatalf("map failed: %v", err)
	}
	// Saturate every tile and link the mapping uses.
	for _, tile := range plat.Tiles {
		tile.ReservedUtil = 1.0
		tile.ReservedMem = tile.MemBytes
		if tile.MaxOccupants > 0 {
			tile.Occupants = tile.MaxOccupants
		}
	}
	for _, l := range plat.Links {
		l.ReservedBps = l.CapBps
	}
	plat.BumpVersion()
	if _, err := m.Repair(res, plat.Snapshot()); err == nil {
		t.Fatal("Repair should refuse when nothing is salvageable")
	}
}
