package core

import (
	"errors"
	"testing"

	"rtsm/internal/arch"
	"rtsm/internal/workload"
)

// TestApplyRemoveRoundTrip pins the ledger property Stop relies on: after
// Apply then Remove the platform's residual capacity is exactly what it
// was, and the version advanced once per committed change.
func TestApplyRemoveRoundTrip(t *testing.T) {
	plat := workload.Hiperlan2Platform()
	mode := workload.Hiperlan2Modes[0]
	app := workload.Hiperlan2(mode)
	lib := workload.Hiperlan2Library(mode)

	before := plat.Residual()
	v0 := plat.Version()
	res, err := NewMapper(lib).Map(app, plat)
	if err != nil || !res.Feasible {
		t.Fatalf("map failed: %v", err)
	}
	if plat.Version() != v0 {
		t.Fatal("Map mutated the caller's platform version")
	}
	if err := Apply(plat, res); err != nil {
		t.Fatal(err)
	}
	if plat.Version() != v0+1 {
		t.Fatalf("Apply should bump version once: %d -> %d", v0, plat.Version())
	}
	if plat.Residual().Equal(before) {
		t.Fatal("Apply reserved nothing")
	}
	Remove(plat, res)
	if got := plat.Residual(); !got.Equal(before) {
		t.Fatalf("residual not restored after Remove:\nbefore %+v\nafter  %+v", before, got)
	}
	if plat.Version() != v0+2 {
		t.Fatalf("Remove should bump version: %d", plat.Version())
	}
}

// TestApplyDetectsStaleSnapshot is the commit-time half of optimistic
// concurrency: a mapping computed on a snapshot must fail validation —
// with a ConflictError and zero mutation — when a competing admission
// claimed the resources first.
func TestApplyDetectsStaleSnapshot(t *testing.T) {
	plat := workload.Hiperlan2Platform()
	mode := workload.Hiperlan2Modes[0]
	lib := workload.Hiperlan2Library(mode)

	// Two admissions compute their mappings against the same pristine
	// snapshot; the HIPERLAN/2 platform has exactly one set of Montium
	// tiles, so both mappings claim the same single-occupancy tiles.
	snap := plat.Snapshot()
	first := workload.Hiperlan2(mode)
	second := workload.Hiperlan2(mode)
	second.Name = "rx-late"
	resFirst, err := NewMapper(lib).Map(first, snap.Plat)
	if err != nil || !resFirst.Feasible {
		t.Fatalf("first map failed: %v", err)
	}
	resSecond, err := NewMapper(lib).Map(second, snap.Plat)
	if err != nil || !resSecond.Feasible {
		t.Fatalf("second map failed: %v", err)
	}

	if err := Apply(plat, resFirst); err != nil {
		t.Fatal(err)
	}
	mid := plat.Residual()
	if err := Validate(plat, resSecond); err == nil {
		t.Fatal("Validate accepted a conflicting mapping")
	}
	err = Apply(plat, resSecond)
	var conflict *ConflictError
	if !errors.As(err, &conflict) {
		t.Fatalf("Apply = %v, want *ConflictError", err)
	}
	if conflict.App != "rx-late" {
		t.Errorf("conflict names %q, want rx-late", conflict.App)
	}
	// The conflict is attributed per resource, not as an opaque string:
	// every violation names the exhausted tile or link and how far the
	// mapping falls short.
	if len(conflict.Violations) == 0 {
		t.Fatal("ConflictError carries no violations")
	}
	for _, v := range conflict.Violations {
		if v.Kind == ResLink {
			if v.Link < 0 || int(v.Link) >= len(plat.Links) {
				t.Errorf("link violation names no link: %+v", v)
			}
			continue
		}
		if v.Tile < 0 || int(v.Tile) >= len(plat.Tiles) || plat.Tile(v.Tile).Name != v.TileName {
			t.Errorf("tile violation names no tile: %+v", v)
		}
		if v.Need <= v.Avail {
			t.Errorf("violation %v not short on capacity: need %.3f avail %.3f", v.Kind, v.Need, v.Avail)
		}
	}
	// Conflicts is Validate with the attribution exposed.
	vs, cErr := Conflicts(plat, resSecond)
	if cErr != nil || len(vs) != len(conflict.Violations) {
		t.Fatalf("Conflicts = %v, %v; want the same %d violations", vs, cErr, len(conflict.Violations))
	}
	if got := plat.Residual(); !got.Equal(mid) {
		t.Fatalf("failed Apply mutated the platform:\nbefore %+v\nafter  %+v", mid, got)
	}
	// The losing admission remains committable once the winner leaves.
	Remove(plat, resFirst)
	if err := Apply(plat, resSecond); err != nil {
		t.Fatalf("second admission should commit after release: %v", err)
	}
}

// TestViolationsAttributeFailedLink pins the run-time fault path: a plan
// holding bandwidth on a link that has since failed must report a
// ResLinkFailed violation attributed through the link's region — not
// panic trying to resolve arch.NoTile. This is the exact shape Repair
// sees when FailLink evacuates a resident whose routes crossed the link.
func TestViolationsAttributeFailedLink(t *testing.T) {
	plat := workload.SyntheticPlatform(4, 4, 7)
	app, lib := workload.Synthetic(workload.SynthOptions{
		Shape:     workload.ShapeChain,
		Processes: 4,
		Seed:      3,
		MaxUtil:   0.3,
	})
	res, err := NewMapper(lib).Map(app, plat)
	if err != nil || !res.Feasible {
		t.Fatalf("map failed: %v", err)
	}
	plan, err := NewPlan(plat, res)
	if err != nil {
		t.Fatal(err)
	}
	var failed arch.LinkID = -1
	for _, l := range plat.Links {
		if plan.UsesLink(l.ID) {
			failed = l.ID
			break
		}
	}
	if failed < 0 {
		t.Skip("mapping reserved no link bandwidth")
	}
	plat.FailLink(failed)
	vs := plan.Violations(plat)
	found := false
	for _, v := range vs {
		if v.Kind != ResLinkFailed {
			continue
		}
		found = true
		if v.Link != failed || v.Tile != arch.NoTile {
			t.Fatalf("failed-link violation misattributed: %+v", v)
		}
		if v.Region != plat.RegionOfLink(failed) {
			t.Fatalf("violation region %d, want %d", v.Region, plat.RegionOfLink(failed))
		}
	}
	if !found {
		t.Fatalf("no ResLinkFailed violation for link %d in %+v", failed, vs)
	}
}

// TestValidateMatchesApply checks Validate is a faithful dry run: wherever
// it says yes, Apply succeeds; wherever it says no, Apply fails the same
// way and changes nothing.
func TestValidateMatchesApply(t *testing.T) {
	plat := workload.SyntheticPlatform(4, 4, 7)
	for seed := int64(0); seed < 12; seed++ {
		app, lib := workload.Synthetic(workload.SynthOptions{
			Shape:     workload.ShapeChain,
			Processes: 3 + int(seed)%4,
			Seed:      seed,
			MaxUtil:   0.4,
		})
		res, err := NewMapper(lib).Map(app, plat)
		if err != nil || !res.Feasible {
			continue
		}
		before := plat.Residual()
		vErr := Validate(plat, res)
		aErr := Apply(plat, res)
		if (vErr == nil) != (aErr == nil) {
			t.Fatalf("seed %d: Validate=%v but Apply=%v", seed, vErr, aErr)
		}
		if aErr != nil && !plat.Residual().Equal(before) {
			t.Fatalf("seed %d: failed Apply mutated platform", seed)
		}
	}
}
