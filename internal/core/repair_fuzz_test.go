package core

import (
	"fmt"
	"testing"

	"rtsm/internal/workload"
)

// FuzzRepair throws randomized staleness at the incremental remapping
// engine and checks its core contract: whatever Repair returns as
// feasible must actually commit against the snapshot it was repaired to
// (Validate reports no violation), and the act of repairing must not
// consume any of the snapshot's resources — Repair plans on clones, the
// snapshot platform is an input, not a scratchpad.
//
// The scenario mirrors the admission pipeline's race: a mapping is
// computed against an empty platform, competing applications then claim
// resources, and the now-stale mapping is refit to a snapshot of the
// loaded platform. The fuzzer controls the mesh geometry, the stale
// mapping's structure and how much competition lands in between.
func FuzzRepair(f *testing.F) {
	f.Add(int64(1), 6, 3, 2, false)
	f.Add(int64(123), 8, 5, 6, true)
	f.Add(int64(7), 4, 3, 0, false) // nothing changed: verbatim return path
	f.Add(int64(42), 6, 4, 9, true) // heavy competition: repair may refuse
	f.Fuzz(func(t *testing.T, seed int64, mesh, procs, competitors int, regioned bool) {
		mesh = 4 + abs(mesh)%5   // 4..8
		procs = 2 + abs(procs)%4 // 2..5
		competitors = abs(competitors) % 10
		var plat = workload.SyntheticPlatform(mesh, mesh, seed)
		if regioned {
			plat = workload.SyntheticRegionPlatform(mesh, mesh, seed, (mesh+1)/2)
		}
		src, sink := "SRC0", "SINK0"

		app, lib := workload.Synthetic(workload.SynthOptions{
			Shape: workload.ShapeChain, Processes: procs, Seed: seed,
			MaxUtil: 0.2, PeriodNs: 40_000, SrcTile: src, SinkTile: sink,
		})
		app.Name = "stale"
		m := &Mapper{Lib: lib}
		res, err := m.Map(app, plat)
		if err != nil || !res.Feasible {
			t.Skip("fixture not mappable with this geometry")
		}

		// Competing admissions claim resources after the stale mapping's
		// snapshot; each one actually commits, so the staleness is real.
		for i := 0; i < competitors; i++ {
			capp, clib := workload.Synthetic(workload.SynthOptions{
				Shape: workload.ShapeChain, Processes: 2 + i%3, Seed: seed + int64(i) + 1,
				MaxUtil: 0.2, PeriodNs: 40_000, SrcTile: src, SinkTile: sink,
			})
			capp.Name = fmt.Sprintf("competitor-%d", i)
			cm := &Mapper{Lib: clib}
			cres, cerr := cm.Map(capp, plat)
			if cerr != nil || !cres.Feasible {
				continue
			}
			if Apply(plat, cres) != nil {
				continue // lost the hypothetical race; platform unchanged
			}
		}

		snap := plat.Snapshot()
		before := snap.Plat.Residual()
		rep, err := m.Repair(res, snap)
		if after := snap.Plat.Residual(); !after.Equal(before) {
			t.Fatal("Repair mutated the snapshot's residual state")
		}
		if err != nil {
			return // repair refused: the caller falls back to a full map
		}
		if !rep.Feasible {
			return // honest infeasible verdict, like Map's
		}
		// The contract: a feasible repaired mapping commits against the
		// snapshot it was repaired to.
		if verr := Validate(snap.Plat, rep); verr != nil {
			t.Fatalf("repaired mapping does not validate against its snapshot: %v", verr)
		}
	})
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
