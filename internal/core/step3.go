package core

import (
	"fmt"
	"sort"

	"rtsm/internal/arch"
	"rtsm/internal/model"
	"rtsm/internal/noc"
)

// step3 assigns channels to NoC paths (paper §3, step 3): channels are
// sorted by non-increasing throughput so heavily demanding channels get
// first pick, then each channel is routed over a capacity-aware shortest
// path considering the loads of previously mapped channels, and its
// guaranteed-throughput lane is reserved incrementally.
func (m *Mapper) step3(app *model.Application, work *arch.Platform, mp *Mapping, tr *Trace) *feedback {
	type job struct {
		c   *model.Channel
		bps int64
	}
	var jobs []job
	for _, c := range app.StreamChannels() {
		if _, routed := mp.Route[c.ID]; routed {
			// Salvaged by the repair path: the route is already reserved
			// on the working platform.
			continue
		}
		if _, ok := mp.Tile[c.Src]; !ok {
			continue
		}
		if _, ok := mp.Tile[c.Dst]; !ok {
			continue
		}
		jobs = append(jobs, job{c: c, bps: channelBps(c, app.QoS.PeriodNs)})
	}
	if !m.Cfg.UnsortedChannels {
		sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].bps > jobs[j].bps })
	}
	for _, j := range jobs {
		st := mp.Tile[j.c.Src]
		dt := mp.Tile[j.c.Dst]
		if st == dt {
			// Same tile: the stream stays in local memory, no NoC lane.
			mp.Route[j.c.ID] = noc.Path{}
			continue
		}
		srcTile := work.Tile(st)
		dstTile := work.Tile(dt)
		if srcTile.NICapBps > 0 && srcTile.NICapBps-srcTile.ReservedOutBps < j.bps {
			return m.routeFeedback(app, mp, j.c, fmt.Sprintf("NI of %q out of outbound bandwidth", srcTile.Name))
		}
		if dstTile.NICapBps > 0 && dstTile.NICapBps-dstTile.ReservedInBps < j.bps {
			return m.routeFeedback(app, mp, j.c, fmt.Sprintf("NI of %q out of inbound bandwidth", dstTile.Name))
		}
		var (
			path noc.Path
			err  error
		)
		switch m.Cfg.Router {
		case XYOnly:
			path, err = noc.XY(work, srcTile.Router, dstTile.Router, j.bps)
		default:
			path, err = noc.ShortestAvailable(work, srcTile.Router, dstTile.Router, j.bps)
		}
		if err != nil {
			return m.routeFeedback(app, mp, j.c, err.Error())
		}
		noc.Reserve(work, path, st, dt, j.bps)
		mp.Route[j.c.ID] = path
		tr.Step3 = append(tr.Step3, Step3Record{
			Channel: j.c.Name,
			Bps:     j.bps,
			Hops:    path.Hops(),
			Routers: path.Routers,
		})
	}
	return nil
}

// routeFeedback builds the step-3 failure feedback: ban the channel's
// mappable endpoint (preferring the source) from its current tile so the
// next attempt places it elsewhere and the channel gets a different
// corridor.
func (m *Mapper) routeFeedback(app *model.Application, mp *Mapping, c *model.Channel, detail string) *feedback {
	pick := func(pid model.ProcessID) *feedback {
		return &feedback{
			kind:       fbRouteFailure,
			process:    pid,
			banTile:    mp.Tile[pid],
			useBanTile: true,
			detail:     fmt.Sprintf("channel %q unroutable: %s", c.Name, detail),
		}
	}
	if !isPinned(app, c.Src) {
		return pick(c.Src)
	}
	if !isPinned(app, c.Dst) {
		return pick(c.Dst)
	}
	// Both endpoints pinned: no placement change can help.
	return &feedback{
		kind:    fbRouteFailure,
		process: c.Src,
		detail:  fmt.Sprintf("channel %q between pinned tiles unroutable: %s", c.Name, detail),
	}
}

func isPinned(app *model.Application, pid model.ProcessID) bool {
	return app.Process(pid).PinnedTile != ""
}
