package core

import (
	"fmt"
	"testing"

	"rtsm/internal/arch"
	"rtsm/internal/workload"
)

// FuzzPlanReservations throws randomized mappings at the commit-plan
// aggregation (planReservations, the source of truth for what a mapping
// reserves) and checks its double-entry bookkeeping:
//
//   - committing the plan changes the platform's residual by exactly the
//     per-resource sums recomputed independently from the mapping —
//     implementation memory plus stream buffers, utilisation, occupancy,
//     NI bandwidth and link lanes;
//   - every resource the commit changed lies inside the plan's region
//     footprint (the locks a sharded commit holds are sufficient), and
//     the footprint never names a region the mapping touches no resource
//     in (the locks are also necessary);
//   - releasing the plan restores the residual bit-for-bit.
func FuzzPlanReservations(f *testing.F) {
	f.Add(int64(1), 6, 3, 0, true)
	f.Add(int64(123), 8, 5, 4, true)
	f.Add(int64(7), 4, 2, 2, false) // single region: degenerate footprint
	f.Add(int64(42), 6, 4, 7, true) // loaded platform: nonzero base state
	f.Fuzz(func(t *testing.T, seed int64, mesh, procs, competitors int, regioned bool) {
		mesh = 4 + abs(mesh)%5   // 4..8
		procs = 2 + abs(procs)%4 // 2..5
		competitors = abs(competitors) % 8
		plat := workload.SyntheticPlatform(mesh, mesh, seed)
		if regioned {
			plat = workload.SyntheticRegionPlatform(mesh, mesh, seed, (mesh+1)/2)
		}
		// Vary the base residual: competing admissions stay committed, so
		// the plan under test aggregates against a loaded ledger.
		for i := 0; i < competitors; i++ {
			capp, clib := workload.Synthetic(workload.SynthOptions{
				Shape: workload.ShapeChain, Processes: 2 + i%3, Seed: seed + int64(i) + 1,
				MaxUtil: 0.15, PeriodNs: 40_000, SrcTile: "SRC0", SinkTile: "SINK0",
			})
			capp.Name = fmt.Sprintf("competitor-%d", i)
			cres, cerr := (&Mapper{Lib: clib}).Map(capp, plat)
			if cerr != nil || !cres.Feasible {
				continue
			}
			_ = Apply(plat, cres)
		}

		app, lib := workload.Synthetic(workload.SynthOptions{
			Shape: workload.ShapeChain, Processes: procs, Seed: seed,
			MaxUtil: 0.2, PeriodNs: 40_000, SrcTile: "SRC0", SinkTile: "SINK0",
		})
		app.Name = "plan-fuzz"
		res, err := (&Mapper{Lib: lib}).Map(app, plat)
		if err != nil || !res.Feasible {
			t.Skip("fixture not mappable with this geometry")
		}
		plan, err := NewPlan(plat, res)
		if err != nil {
			t.Fatalf("NewPlan on a feasible mapping: %v", err)
		}

		footprint := plan.Regions()
		for i := 1; i < len(footprint); i++ {
			if footprint[i] <= footprint[i-1] {
				t.Fatalf("footprint not ascending unique: %v", footprint)
			}
		}
		inFootprint := make(map[arch.RegionID]bool, len(footprint))
		for _, r := range footprint {
			inFootprint[r] = true
		}

		// The independent oracle: re-derive every reservation straight
		// from the mapping, without the plan's aggregation.
		mp := res.Mapping
		type tileSum struct {
			mem, in, out int64
			util         float64
			occ          int
		}
		tiles := make(map[arch.TileID]*tileSum)
		at := func(tid arch.TileID) *tileSum {
			s := tiles[tid]
			if s == nil {
				s = &tileSum{}
				tiles[tid] = s
			}
			return s
		}
		links := make(map[arch.LinkID]int64)
		for _, p := range app.MappableProcesses() {
			im := mp.Impl[p.ID]
			tid, ok := mp.Tile[p.ID]
			if im == nil || !ok {
				continue
			}
			cyc, cerr := im.CyclesPerPeriod(app, p)
			if cerr != nil {
				continue
			}
			s := at(tid)
			s.mem += im.MemBytes
			s.util += utilisationOf(plat.TileCycleBudget(tid, app.QoS.PeriodNs), cyc)
			s.occ++
		}
		for _, c := range app.StreamChannels() {
			path, ok := mp.Route[c.ID]
			if !ok {
				continue
			}
			bps := channelBps(c, app.QoS.PeriodNs)
			for _, lid := range path.Links {
				links[lid] += bps
			}
			if path.Hops() > 0 {
				at(mp.Tile[c.Src]).out += bps
				at(mp.Tile[c.Dst]).in += bps
			}
			if buf := mp.Buffers[c.ID]; buf > 0 {
				at(mp.Tile[c.Dst]).mem += buf * c.TokenBytes
			}
		}

		before := plat.Residual()
		plan.Commit(plat)
		after := plat.Residual()
		diff := before.Diff(after)

		// Sufficiency: nothing outside the footprint changed.
		for _, r := range diff.Regions(plat) {
			if !inFootprint[r] {
				t.Fatalf("commit changed region %d outside footprint %v", r, footprint)
			}
		}
		// Necessity: every footprint region owns a reserved resource.
		touched := make(map[arch.RegionID]bool)
		for tid := range tiles {
			touched[plat.RegionOfTile(tid)] = true
		}
		for lid := range links {
			touched[plat.RegionOfLink(lid)] = true
		}
		for _, r := range footprint {
			if !touched[r] {
				t.Fatalf("footprint names region %d but the mapping reserves nothing there", r)
			}
		}

		// The plan's committed deltas equal the oracle's sums.
		const utilTol = 1e-6
		for i := range before.Tiles {
			b, a := before.Tiles[i], after.Tiles[i]
			want := tiles[b.Tile]
			if want == nil {
				want = &tileSum{}
			}
			if b.FreeMemBytes-a.FreeMemBytes != want.mem {
				t.Fatalf("tile %d memory delta %d, oracle %d", b.Tile, b.FreeMemBytes-a.FreeMemBytes, want.mem)
			}
			if d := (b.FreeUtil - a.FreeUtil) - want.util; d > utilTol || d < -utilTol {
				t.Fatalf("tile %d util delta %v, oracle %v", b.Tile, b.FreeUtil-a.FreeUtil, want.util)
			}
			if b.FreeInBps-a.FreeInBps != want.in || b.FreeOutBps-a.FreeOutBps != want.out {
				t.Fatalf("tile %d NI delta in=%d out=%d, oracle in=%d out=%d",
					b.Tile, b.FreeInBps-a.FreeInBps, b.FreeOutBps-a.FreeOutBps, want.in, want.out)
			}
			if b.FreeSlots >= 0 && a.FreeSlots >= 0 && b.FreeSlots-a.FreeSlots != want.occ {
				t.Fatalf("tile %d slot delta %d, oracle %d", b.Tile, b.FreeSlots-a.FreeSlots, want.occ)
			}
		}
		for i := range before.Links {
			b, a := before.Links[i], after.Links[i]
			if b.FreeBps-a.FreeBps != links[b.Link] {
				t.Fatalf("link %d delta %d, oracle %d", b.Link, b.FreeBps-a.FreeBps, links[b.Link])
			}
		}

		// Release is the exact inverse.
		plan.Release(plat)
		if got := plat.Residual(); !got.Equal(before) {
			t.Fatal("release did not restore the residual bit-for-bit")
		}
	})
}
