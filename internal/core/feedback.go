package core

import (
	"fmt"

	"rtsm/internal/arch"
	"rtsm/internal/model"
)

// feedbackKind classifies why an attempt failed, which determines the
// constraint the refinement loop adds before retrying (paper §3, step 4:
// "feedback should be given to earlier steps to try and improve upon those
// characteristics of the mapping that violate the constraint(s)").
type feedbackKind int

const (
	// fbNoImplementation: step 1 ran out of options for a process.
	fbNoImplementation feedbackKind = iota
	// fbNoTile: step 1 found no tile with room for the chosen
	// implementation.
	fbNoTile
	// fbRouteFailure: step 3 could not route a channel.
	fbRouteFailure
	// fbThroughput: step 4 measured a period above the requirement.
	fbThroughput
	// fbLatency: step 4 measured latency above the bound.
	fbLatency
	// fbBufferOverflow: step 4's buffers do not fit the consumer's tile.
	fbBufferOverflow
)

func (k feedbackKind) String() string {
	switch k {
	case fbNoImplementation:
		return "no-implementation"
	case fbNoTile:
		return "no-tile"
	case fbRouteFailure:
		return "route-failure"
	case fbThroughput:
		return "throughput-violation"
	case fbLatency:
		return "latency-violation"
	case fbBufferOverflow:
		return "buffer-overflow"
	}
	return "?"
}

// feedback names the violated constraint and the decision to revisit.
type feedback struct {
	kind    feedbackKind
	process model.ProcessID
	// banImplType bans (process, tile type): the process must choose an
	// implementation for a different tile type next attempt.
	banImplType arch.TileType
	// banTile bans (process, tile): the process must be placed elsewhere.
	banTile    arch.TileID
	useBanTile bool
	detail     string
}

func (f *feedback) String() string {
	return fmt.Sprintf("%s: %s", f.kind, f.detail)
}

type implBan struct {
	process model.ProcessID
	tt      arch.TileType
}

type tileBan struct {
	process model.ProcessID
	tile    arch.TileID
}

// tabu accumulates the constraints produced by feedback across refinement
// rounds. "Decisions made in previous steps are considered fixed in later
// steps" within an attempt; between attempts, tabu constraints are what
// carries the lesson forward.
type tabu struct {
	impl  map[implBan]bool
	tiles map[tileBan]bool
	log   []string
}

func newTabu() *tabu {
	return &tabu{impl: make(map[implBan]bool), tiles: make(map[tileBan]bool)}
}

// apply adds the feedback's constraint and reports whether it is new;
// repeating a known constraint means another round cannot produce a
// different outcome.
func (t *tabu) apply(f *feedback) bool {
	switch {
	case f.useBanTile:
		b := tileBan{process: f.process, tile: f.banTile}
		if t.tiles[b] {
			return false
		}
		t.tiles[b] = true
	case f.banImplType != "":
		b := implBan{process: f.process, tt: f.banImplType}
		if t.impl[b] {
			return false
		}
		t.impl[b] = true
	default:
		return false
	}
	t.log = append(t.log, f.String())
	return true
}

func (t *tabu) bansImpl(p model.ProcessID, tt arch.TileType) bool {
	return t.impl[implBan{process: p, tt: tt}]
}

func (t *tabu) bansTile(p model.ProcessID, tile arch.TileID) bool {
	return t.tiles[tileBan{process: p, tile: tile}]
}
