package core

import (
	"fmt"

	"rtsm/internal/arch"
	"rtsm/internal/model"
)

// step2 improves the concrete tile assignment by local search (paper §3,
// step 2): every candidate either moves a process to the best available
// tile of the same type or swaps it with another process on the same tile
// type, so adequacy holds by construction. Candidates are scored by the
// communication cost model — by default the plain sum of Manhattan
// distances over all stream channels, the metric of the paper's Table 2,
// which also embodies the "bonus for proximity to the process's
// neighbours": closer neighbours mean lower cost.
// locked processes (seeded by the repair path) keep their tiles: they are
// neither moved nor offered as swap partners, but their channels still
// price into the cost every candidate is scored by.
func (m *Mapper) step2(app *model.Application, work *arch.Platform, mp *Mapping, locked map[model.ProcessID]bool, tr *Trace) {
	s := &searchState{m: m, app: app, work: work, mp: mp, locked: locked}
	s.init()
	tr.Step2 = append(tr.Step2, Step2Record{
		Kind:       Initial,
		Assignment: s.snapshot(),
		Cost:       s.cost,
		Remark:     "Initial (greedy) assignment",
	})
	switch m.Cfg.Strategy {
	case BestImprovement:
		s.runBestImprovement(tr)
	default:
		s.runFirstImprovement(tr)
	}
}

// searchState carries the mutable view of the assignment during step 2.
type searchState struct {
	m    *Mapper
	app  *model.Application
	work *arch.Platform
	mp   *Mapping

	procs  []*model.Process         // mappable processes in declaration order
	chans  []*model.Channel         // stream channels
	locked map[model.ProcessID]bool // processes step 2 must not relocate
	// weight[i] multiplies the Manhattan distance of chans[i]; 1 under
	// HopSum, traffic × hop energy under TrafficWeighted.
	weight []float64
	cost   float64
	// regionOcc counts mapping occupants (pinned endpoints included) per
	// mesh region, maintained only when Config.RegionBias is active on a
	// partitioned platform; nil otherwise. Moves that open a region pay
	// RegionBias, moves that close one earn it back — swaps leave the
	// occupied-region set untouched and price to zero.
	regionOcc map[arch.RegionID]int
}

func (s *searchState) init() {
	s.procs = s.app.MappableProcesses()
	s.chans = s.app.StreamChannels()
	s.weight = make([]float64, len(s.chans))
	params := s.m.Cfg.energyParams()
	for i, c := range s.chans {
		switch s.m.Cfg.CommCost {
		case TrafficWeighted:
			s.weight[i] = float64(c.BytesPerPeriod()) * params.HopPerByte
		default:
			s.weight[i] = 1
		}
	}
	if s.m.Cfg.RegionBias > 0 && s.work.RegionCount() > 1 {
		s.regionOcc = make(map[arch.RegionID]int, 4)
		for _, tid := range s.mp.Tile {
			s.regionOcc[s.work.RegionOfTile(tid)]++
		}
	}
	s.cost = s.totalCost()
}

// totalCost recomputes the full cost of the current assignment:
// weighted channel distances, plus the idle energy of powered tiles under
// the traffic-weighted model.
func (s *searchState) totalCost() float64 {
	var total float64
	for i, c := range s.chans {
		total += s.weight[i] * float64(s.channelDist(c, nil))
	}
	if s.m.Cfg.CommCost == TrafficWeighted {
		params := s.m.Cfg.energyParams()
		powered := make(map[arch.TileID]bool)
		for _, p := range s.procs {
			powered[s.mp.Tile[p.ID]] = true
		}
		for tid := range powered {
			total += params.IdleEnergy(s.work.Tile(tid))
		}
	}
	return total
}

// channelDist returns the Manhattan distance of a channel under the
// current assignment, with an optional override of tile positions (used
// to evaluate candidates without mutating state). Channels with an
// unplaced endpoint contribute nothing.
func (s *searchState) channelDist(c *model.Channel, override map[model.ProcessID]arch.TileID) int {
	src, ok := s.tileOf(c.Src, override)
	if !ok {
		return 0
	}
	dst, ok := s.tileOf(c.Dst, override)
	if !ok {
		return 0
	}
	return s.work.Manhattan(src, dst)
}

func (s *searchState) tileOf(p model.ProcessID, override map[model.ProcessID]arch.TileID) (arch.TileID, bool) {
	if override != nil {
		if t, ok := override[p]; ok {
			return t, true
		}
	}
	t, ok := s.mp.Tile[p]
	return t, ok
}

// candidate is one evaluated reassignment.
type candidate struct {
	kind  MoveKind
	p     *model.Process
	q     *model.Process // swap partner, nil for moves
	to    arch.TileID    // move target
	delta float64        // cost change (negative improves)
}

// deltaFor evaluates the cost change of a candidate by re-pricing only the
// channels incident to the affected processes.
func (s *searchState) deltaFor(override map[model.ProcessID]arch.TileID, affected map[model.ProcessID]bool) float64 {
	var delta float64
	for i, c := range s.chans {
		if !affected[c.Src] && !affected[c.Dst] {
			continue
		}
		delta += s.weight[i] * float64(s.channelDist(c, override)-s.channelDist(c, nil))
	}
	if s.m.Cfg.CommCost == TrafficWeighted {
		delta += s.idleDelta(override)
	}
	delta += s.regionDelta(override)
	return delta
}

// regionDelta prices the change in the mapping's occupied-region span a
// candidate causes: +RegionBias per region opened, -RegionBias per region
// vacated. Zero when the bias is inactive, and zero for swaps (the set of
// occupied tiles is unchanged).
func (s *searchState) regionDelta(override map[model.ProcessID]arch.TileID) float64 {
	if s.regionOcc == nil {
		return 0
	}
	var change map[arch.RegionID]int
	for pid, to := range override {
		from, ok := s.mp.Tile[pid]
		if !ok {
			continue
		}
		fr, tr := s.work.RegionOfTile(from), s.work.RegionOfTile(to)
		if fr == tr {
			continue
		}
		if change == nil {
			change = make(map[arch.RegionID]int, 2)
		}
		change[fr]--
		change[tr]++
	}
	var delta float64
	for r, d := range change {
		occ := s.regionOcc[r]
		switch {
		case occ == 0 && occ+d > 0:
			delta += s.m.Cfg.RegionBias
		case occ > 0 && occ+d == 0:
			delta -= s.m.Cfg.RegionBias
		}
	}
	return delta
}

// idleDelta prices tiles powered on or off by the candidate (the paper's
// "being able to turn off parts of the system that are not being used").
// It compares the full before/after occupancy of the mappable processes,
// so swaps — which leave both tiles powered — price to zero.
func (s *searchState) idleDelta(override map[model.ProcessID]arch.TileID) float64 {
	params := s.m.Cfg.energyParams()
	before := make(map[arch.TileID]int)
	after := make(map[arch.TileID]int)
	for _, p := range s.procs {
		cur := s.mp.Tile[p.ID]
		before[cur]++
		next, _ := s.tileOf(p.ID, override)
		after[next]++
	}
	var delta float64
	for tid := range before {
		if after[tid] == 0 {
			delta -= params.IdleEnergy(s.work.Tile(tid))
		}
	}
	for tid := range after {
		if before[tid] == 0 {
			delta += params.IdleEnergy(s.work.Tile(tid))
		}
	}
	return delta
}

// bestCandidateFor returns the lowest-delta reassignment of process p —
// "we try to remove it from the tile it is mapped onto and to map it onto
// the best available tile of the same type. Alternatively, we try to swap
// the process with another process mapped to the same tile type." Swap
// partners are restricted to later-declared processes so each unordered
// pair is evaluated once per pass. Returns nil if p has no candidates.
func (s *searchState) bestCandidateFor(pi int) *candidate {
	p := s.procs[pi]
	if s.locked[p.ID] {
		return nil
	}
	cur := s.mp.Tile[p.ID]
	im := s.mp.Impl[p.ID]
	curTile := s.work.Tile(cur)
	var best *candidate

	consider := func(c candidate) {
		if best == nil || c.delta < best.delta {
			cc := c
			best = &cc
		}
	}

	// Moves to free capacity on tiles of the same type.
	cyc, err := im.CyclesPerPeriod(s.app, p)
	if err != nil {
		return nil
	}
	for _, t := range s.work.TilesOfType(im.TileType) {
		if t.ID == cur {
			continue
		}
		tUtil := utilisation(t, cyc, s.app.QoS.PeriodNs)
		if !canHost(t, im.MemBytes, tUtil) || !hasLocalNICapacity(s.app, t, p) {
			continue
		}
		override := map[model.ProcessID]arch.TileID{p.ID: t.ID}
		delta := s.deltaFor(override, map[model.ProcessID]bool{p.ID: true})
		consider(candidate{kind: Move, p: p, to: t.ID, delta: delta})
	}

	// Swaps with later-declared processes on the same tile type.
	for qi := pi + 1; qi < len(s.procs); qi++ {
		q := s.procs[qi]
		if s.locked[q.ID] {
			continue
		}
		qTile := s.mp.Tile[q.ID]
		if qTile == cur {
			continue
		}
		qIm := s.mp.Impl[q.ID]
		if s.work.Tile(qTile).Type != curTile.Type || qIm.TileType != im.TileType {
			continue
		}
		if !s.swapFits(p, im, cur, q, qIm, qTile) {
			continue
		}
		override := map[model.ProcessID]arch.TileID{p.ID: qTile, q.ID: cur}
		delta := s.deltaFor(override, map[model.ProcessID]bool{p.ID: true, q.ID: true})
		consider(candidate{kind: Swap, p: p, q: q, to: qTile, delta: delta})
	}
	return best
}

// swapFits checks that each tile can absorb the other process after the
// swap (memory and utilisation with both old reservations removed).
func (s *searchState) swapFits(p *model.Process, pIm *model.Implementation, pTile arch.TileID,
	q *model.Process, qIm *model.Implementation, qTile arch.TileID) bool {
	pc, err := pIm.CyclesPerPeriod(s.app, p)
	if err != nil {
		return false
	}
	qc, err := qIm.CyclesPerPeriod(s.app, q)
	if err != nil {
		return false
	}
	tp := s.work.Tile(pTile)
	tq := s.work.Tile(qTile)
	pUtilAtQ := utilisation(tq, pc, s.app.QoS.PeriodNs)
	qUtilAtP := utilisation(tp, qc, s.app.QoS.PeriodNs)
	pUtilAtP := utilisation(tp, pc, s.app.QoS.PeriodNs)
	qUtilAtQ := utilisation(tq, qc, s.app.QoS.PeriodNs)
	memOKp := tp.ReservedMem-pIm.MemBytes+qIm.MemBytes <= tp.MemBytes
	memOKq := tq.ReservedMem-qIm.MemBytes+pIm.MemBytes <= tq.MemBytes
	utilOKp := tp.ReservedUtil-pUtilAtP+qUtilAtP <= 1.0+utilEps
	utilOKq := tq.ReservedUtil-qUtilAtQ+pUtilAtQ <= 1.0+utilEps
	return memOKp && memOKq && utilOKp && utilOKq
}

// applyCandidate commits a candidate to the mapping and the platform's
// reservation state.
func (s *searchState) applyCandidate(c *candidate) {
	relocate := func(p *model.Process, to arch.TileID) {
		im := s.mp.Impl[p.ID]
		from := s.work.WTile(s.mp.Tile[p.ID])
		dst := s.work.WTile(to)
		cyc, _ := im.CyclesPerPeriod(s.app, p)
		from.ReservedMem -= im.MemBytes
		from.ReservedUtil -= utilisation(from, cyc, s.app.QoS.PeriodNs)
		from.Occupants--
		dst.ReservedMem += im.MemBytes
		dst.ReservedUtil += utilisation(dst, cyc, s.app.QoS.PeriodNs)
		dst.Occupants++
		if s.regionOcc != nil {
			s.regionOcc[s.work.RegionOfTile(s.mp.Tile[p.ID])]--
			s.regionOcc[s.work.RegionOfTile(to)]++
		}
		s.mp.Tile[p.ID] = to
	}
	switch c.kind {
	case Move:
		relocate(c.p, c.to)
	case Swap:
		pTile := s.mp.Tile[c.p.ID]
		qTile := s.mp.Tile[c.q.ID]
		relocate(c.p, qTile)
		relocate(c.q, pTile)
	}
	s.cost += c.delta
}

// snapshot renders tile name → process names for trace records.
func (s *searchState) snapshot() map[string]string {
	out := make(map[string]string)
	for _, p := range s.procs {
		name := s.work.Tile(s.mp.Tile[p.ID]).Name
		if out[name] != "" {
			out[name] += "+" + p.Name
		} else {
			out[name] = p.Name
		}
	}
	return out
}

// snapshotWith renders the assignment as it would look after a candidate.
func (s *searchState) snapshotWith(c *candidate) map[string]string {
	override := map[model.ProcessID]arch.TileID{}
	switch c.kind {
	case Move:
		override[c.p.ID] = c.to
	case Swap:
		override[c.p.ID] = s.mp.Tile[c.q.ID]
		override[c.q.ID] = s.mp.Tile[c.p.ID]
	}
	out := make(map[string]string)
	for _, p := range s.procs {
		t, _ := s.tileOf(p.ID, override)
		name := s.work.Tile(t).Name
		if out[name] != "" {
			out[name] += "+" + p.Name
		} else {
			out[name] = p.Name
		}
	}
	return out
}

func (s *searchState) record(tr *Trace, iter int, c *candidate, accepted bool) {
	remark := "No improvement, revert"
	if accepted {
		remark = "Improvement, keep"
	}
	rec := Step2Record{
		Iteration:  iter,
		Kind:       c.kind,
		ProcA:      c.p.Name,
		TileA:      s.work.Tile(s.mp.Tile[c.p.ID]).Name,
		Assignment: s.snapshotWith(c),
		Cost:       s.cost + c.delta,
		Accepted:   accepted,
		Remark:     remark,
	}
	if c.q != nil {
		rec.ProcB = c.q.Name
		rec.TileB = s.work.Tile(s.mp.Tile[c.q.ID]).Name
	} else {
		rec.TileB = s.work.Tile(c.to).Name
	}
	tr.Step2 = append(tr.Step2, rec)
}

// runFirstImprovement scans processes in declaration order; each process
// contributes its best reassignment as one evaluated iteration, and the
// first strict improvement is applied, restarting the scan. This is the
// discipline under which the paper's Table 2 unfolds row by row.
func (s *searchState) runFirstImprovement(tr *Trace) {
	iter := 0
	maxIter := s.m.Cfg.maxStep2()
	for {
		improved := false
		for pi := range s.procs {
			c := s.bestCandidateFor(pi)
			if c == nil {
				continue
			}
			iter++
			if iter > maxIter {
				tr.Notes = append(tr.Notes, fmt.Sprintf("step 2 stopped at iteration cap %d", maxIter))
				return
			}
			accept := c.delta < -s.m.Cfg.MinGain
			s.record(tr, iter, c, accept)
			if accept {
				s.applyCandidate(c)
				improved = true
				break // restart the scan from the first process
			}
		}
		if !improved {
			tr.Notes = append(tr.Notes, "No further choices")
			return
		}
	}
}

// runBestImprovement applies the globally best improving candidate each
// iteration — the literal reading of "only the best reassignment is
// actually performed every iteration".
func (s *searchState) runBestImprovement(tr *Trace) {
	iter := 0
	maxIter := s.m.Cfg.maxStep2()
	for {
		var best *candidate
		for pi := range s.procs {
			if c := s.bestCandidateFor(pi); c != nil && (best == nil || c.delta < best.delta) {
				best = c
			}
		}
		if best == nil {
			tr.Notes = append(tr.Notes, "No further choices")
			return
		}
		iter++
		if iter > maxIter {
			tr.Notes = append(tr.Notes, fmt.Sprintf("step 2 stopped at iteration cap %d", maxIter))
			return
		}
		accept := best.delta < -s.m.Cfg.MinGain
		s.record(tr, iter, best, accept)
		if !accept {
			return // the best candidate does not improve: local optimum
		}
		s.applyCandidate(best)
	}
}
