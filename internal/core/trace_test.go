package core

import (
	"math"
	"strings"
	"testing"

	"rtsm/internal/arch"
	"rtsm/internal/model"
	"rtsm/internal/workload"
)

func TestStep1RecordString(t *testing.T) {
	forced := Step1Record{Process: "Inv.OFDM", Desirability: math.Inf(1), Impl: "Inv.OFDM@MONTIUM", Tile: "MONTIUM1"}
	if s := forced.String(); !strings.Contains(s, "forced") {
		t.Errorf("forced record renders as %q", s)
	}
	scored := Step1Record{Process: "Pfx.rem.", Desirability: 28, Impl: "Pfx.rem.@ARM", Tile: "ARM1"}
	if s := scored.String(); !strings.Contains(s, "28.0") {
		t.Errorf("scored record renders as %q", s)
	}
}

func TestStep2RecordString(t *testing.T) {
	swap := Step2Record{Iteration: 2, Kind: Swap, ProcA: "a", ProcB: "b", Cost: 9, Remark: "Improvement, keep"}
	if s := swap.String(); !strings.Contains(s, "a↔b") || !strings.Contains(s, "9.0") {
		t.Errorf("swap renders as %q", s)
	}
	move := Step2Record{Iteration: 1, Kind: Move, ProcA: "a", TileA: "T0", TileB: "T1", Cost: 5}
	if s := move.String(); !strings.Contains(s, "a: T0→T1") {
		t.Errorf("move renders as %q", s)
	}
	init := Step2Record{Kind: Initial, Cost: 11}
	if s := init.String(); !strings.Contains(s, "greedy") {
		t.Errorf("initial renders as %q", s)
	}
}

func TestMoveKindString(t *testing.T) {
	for kind, want := range map[MoveKind]string{Initial: "initial", Move: "move", Swap: "swap", MoveKind(99): "?"} {
		if got := kind.String(); got != want {
			t.Errorf("%d renders as %q, want %q", kind, got, want)
		}
	}
}

func TestRenderStep2TableColumns(t *testing.T) {
	tr := &Trace{Step2: []Step2Record{
		{Kind: Initial, Cost: 11, Remark: "Initial (greedy) assignment",
			Assignment: map[string]string{"T0": "a", "T1": "b"}},
		{Iteration: 1, Kind: Swap, ProcA: "a", ProcB: "b", Cost: 9, Remark: "Improvement, keep",
			Assignment: map[string]string{"T0": "b", "T1": "a"}},
	}}
	out := tr.RenderStep2Table([]string{"T0", "T1", "T2"})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines, want 3:\n%s", len(lines), out)
	}
	// Empty columns render as the placeholder dot.
	if !strings.Contains(lines[1], "·") {
		t.Errorf("missing placeholder in %q", lines[1])
	}
	if !strings.HasPrefix(lines[1], "-") {
		t.Errorf("initial row should have no iteration number: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "1") {
		t.Errorf("iteration row mislabelled: %q", lines[2])
	}
}

func TestFeedbackKindStrings(t *testing.T) {
	kinds := []feedbackKind{fbNoImplementation, fbNoTile, fbRouteFailure, fbThroughput, fbLatency, fbBufferOverflow, feedbackKind(42)}
	want := []string{"no-implementation", "no-tile", "route-failure", "throughput-violation", "latency-violation", "buffer-overflow", "?"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("kind %d renders as %q, want %q", i, k.String(), want[i])
		}
	}
}

func TestTabuDeduplicates(t *testing.T) {
	tb := newTabu()
	fb := &feedback{kind: fbThroughput, process: 1, banImplType: "ARM", detail: "x"}
	if !tb.apply(fb) {
		t.Fatal("first application rejected")
	}
	if tb.apply(fb) {
		t.Error("duplicate constraint accepted: refinement would loop")
	}
	if !tb.bansImpl(1, "ARM") {
		t.Error("constraint not queryable")
	}
	if tb.bansImpl(2, "ARM") || tb.bansImpl(1, "DSP") {
		t.Error("constraint leaks to other processes/types")
	}

	tile := &feedback{kind: fbRouteFailure, process: 3, banTile: 7, useBanTile: true, detail: "y"}
	if !tb.apply(tile) {
		t.Fatal("tile ban rejected")
	}
	if !tb.bansTile(3, 7) || tb.bansTile(3, 8) {
		t.Error("tile ban wrong")
	}
	// Feedback without any actionable constraint is a dead end.
	if tb.apply(&feedback{kind: fbNoImplementation, process: 4, detail: "z"}) {
		t.Error("unactionable feedback accepted")
	}
}

func TestLatencyBoundInfeasible(t *testing.T) {
	// The HIPERLAN/2 pipeline's end-to-end latency is several symbol
	// periods; a 1 ns bound is unachievable and must be reported as
	// infeasible with a latency note, after the refinement loop exhausts
	// its displacement options.
	mode := workload.Hiperlan2Modes[3]
	app := workload.Hiperlan2(mode)
	app.QoS.LatencyNs = 1
	lib := workload.Hiperlan2Library(mode)
	plat := workload.Hiperlan2Platform()
	res, err := NewMapper(lib).Map(app, plat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("1 ns latency bound reported feasible")
	}
	found := false
	for _, n := range res.Trace.Notes {
		if strings.Contains(n, "latency") {
			found = true
		}
	}
	if !found {
		t.Errorf("no latency note in %v", res.Trace.Notes)
	}
}

func TestLatencyBoundGenerous(t *testing.T) {
	mode := workload.Hiperlan2Modes[3]
	app := workload.Hiperlan2(mode)
	app.QoS.LatencyNs = 1_000_000 // 1 ms, far above the ~10 µs pipeline
	lib := workload.Hiperlan2Library(mode)
	plat := workload.Hiperlan2Platform()
	res, err := NewMapper(lib).Map(app, plat)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("generous latency bound infeasible: %v", res.Trace.Notes)
	}
	if res.Analysis.Latency <= 0 || res.Analysis.Latency > app.QoS.LatencyNs {
		t.Errorf("latency %d outside (0, %d]", res.Analysis.Latency, app.QoS.LatencyNs)
	}
}

func TestAdequateDetectsMismatch(t *testing.T) {
	res := mapHiperlan2(t, Config{})
	app := res.Mapping.App
	pfx := app.ProcessByName("Pfx.rem.")
	// Corrupt the mapping: claim the ARM implementation runs on a
	// Montium tile.
	mont := res.Platform.TileByName("MONTIUM1")
	broken := &Mapping{
		App:  app,
		Impl: map[model.ProcessID]*model.Implementation{pfx.ID: res.Mapping.Impl[pfx.ID]},
		Tile: map[model.ProcessID]arch.TileID{pfx.ID: mont.ID},
	}
	if broken.Adequate(res.Platform) {
		t.Error("inadequate mapping reported adequate")
	}
}
