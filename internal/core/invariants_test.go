package core

import (
	"testing"

	"rtsm/internal/arch"
	"rtsm/internal/workload"
)

// TestMappingInvariants sweeps synthetic instances of all shapes and
// checks the structural invariants every returned mapping must satisfy,
// feasible or not. This is the mapper's contract with its callers.
func TestMappingInvariants(t *testing.T) {
	shapes := []workload.Shape{workload.ShapeChain, workload.ShapeForkJoin, workload.ShapeLayered}
	checked := 0
	for _, shape := range shapes {
		for seed := int64(0); seed < 10; seed++ {
			app, lib := workload.Synthetic(workload.SynthOptions{
				Shape: shape, Processes: 7, Seed: seed})
			plat := workload.SyntheticPlatform(4, 3, seed*13)
			res, err := NewMapper(lib).Map(app, plat)
			if err != nil {
				continue // instance/platform mismatch: nothing to check
			}
			checked++
			name := app.Name

			// 1. Adequacy: implementation type matches tile type.
			if !res.Mapping.Adequate(res.Platform) {
				t.Errorf("%s: mapping not adequate", name)
			}
			// 2. Completeness when feasible: every mappable process has
			// an implementation and a tile; every stream channel a route
			// entry and a buffer.
			if res.Feasible {
				for _, p := range app.MappableProcesses() {
					if res.Mapping.Impl[p.ID] == nil {
						t.Errorf("%s: %s has no implementation", name, p.Name)
					}
					if _, ok := res.Mapping.Tile[p.ID]; !ok {
						t.Errorf("%s: %s has no tile", name, p.Name)
					}
				}
				for _, c := range app.StreamChannels() {
					if _, ok := res.Mapping.Route[c.ID]; !ok {
						t.Errorf("%s: channel %s unrouted", name, c.Name)
					}
					if res.Mapping.Buffers[c.ID] <= 0 {
						t.Errorf("%s: channel %s has no buffer", name, c.Name)
					}
				}
				// 3. Adherence on the working platform.
				if !res.Mapping.Adherent(res.Platform) {
					t.Errorf("%s: mapping not adherent", name)
				}
				// 4. The verified period honours the QoS constraint.
				if res.Analysis.Period > float64(app.QoS.PeriodNs) {
					t.Errorf("%s: feasible but period %.0f > %d", name, res.Analysis.Period, app.QoS.PeriodNs)
				}
			}
			// 5. Routes are contiguous and respect the mesh.
			for cid, path := range res.Mapping.Route {
				for i, lid := range path.Links {
					l := res.Platform.Link(lid)
					if l.From != path.Routers[i] || l.To != path.Routers[i+1] {
						t.Errorf("%s: channel %d has a discontiguous route", name, cid)
					}
				}
				c := app.Channel(cid)
				if st, ok := res.Mapping.Tile[c.Src]; ok && path.Hops() > 0 {
					if res.Platform.Tile(st).Router != path.Routers[0] {
						t.Errorf("%s: channel %d route does not start at the source tile", name, cid)
					}
				}
			}
			// 6. The caller's platform is untouched.
			for _, tile := range plat.Tiles {
				if tile.ReservedMem != 0 || tile.Occupants != 0 || tile.ReservedUtil != 0 {
					t.Fatalf("%s: caller platform mutated", name)
				}
			}
			// 7. Energy components are non-negative and total consistently.
			e := res.Energy
			if e.Processing < 0 || e.Communication < 0 || e.Idle < 0 {
				t.Errorf("%s: negative energy component %+v", name, e)
			}
			// 8. Occupancy limits hold even on infeasible attempts.
			occ := make(map[arch.TileID]int)
			for _, p := range app.MappableProcesses() {
				if tid, ok := res.Mapping.Tile[p.ID]; ok {
					occ[tid]++
				}
			}
			for tid, n := range occ {
				tile := res.Platform.Tile(tid)
				if tile.MaxOccupants > 0 && n > tile.MaxOccupants {
					t.Errorf("%s: tile %s holds %d processes (max %d)", name, tile.Name, n, tile.MaxOccupants)
				}
			}
		}
	}
	if checked < 15 {
		t.Fatalf("only %d instances were checkable; sweep too weak", checked)
	}
}

// TestApplyMatchesWorkingPlatform verifies that committing a mapping to a
// fresh platform reproduces exactly the reservations the mapper computed
// on its working copy — the property multi-application admission depends
// on.
func TestApplyMatchesWorkingPlatform(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		app, lib := workload.Synthetic(workload.SynthOptions{
			Shape: workload.ShapeLayered, Processes: 8, Seed: seed})
		plat := workload.SyntheticPlatform(4, 4, seed)
		res, err := NewMapper(lib).Map(app, plat)
		if err != nil || !res.Feasible {
			continue
		}
		fresh := plat.Clone()
		if err := Apply(fresh, res); err != nil {
			t.Fatalf("seed %d: Apply: %v", seed, err)
		}
		for i, tile := range fresh.Tiles {
			want := res.Platform.Tiles[i]
			if tile.ReservedMem != want.ReservedMem {
				t.Errorf("seed %d: tile %s mem %d != working %d", seed, tile.Name, tile.ReservedMem, want.ReservedMem)
			}
			if tile.Occupants != want.Occupants {
				t.Errorf("seed %d: tile %s occupants %d != working %d", seed, tile.Name, tile.Occupants, want.Occupants)
			}
			if diff := tile.ReservedUtil - want.ReservedUtil; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("seed %d: tile %s util %v != working %v", seed, tile.Name, tile.ReservedUtil, want.ReservedUtil)
			}
		}
		for i, l := range fresh.Links {
			if l.ReservedBps != res.Platform.Links[i].ReservedBps {
				t.Errorf("seed %d: link %d bps %d != working %d", seed, l.ID, l.ReservedBps, res.Platform.Links[i].ReservedBps)
			}
		}
	}
}

// TestBestResultKept: when several refinement rounds produce feasible
// mappings, the cheapest one is returned.
func TestBestResultKept(t *testing.T) {
	app, lib, plat := bufferTrapFixture(t)
	res, err := NewMapper(lib).Map(app, plat)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("trap fixture should end feasible")
	}
	// Rerun with refinement disabled from the escaped configuration: the
	// returned energy must not beat the refined one by more than float
	// noise, since Map keeps the best feasible attempt.
	direct, err := (&Mapper{Lib: lib, Cfg: Config{NoRefinement: true}}).Map(app, plat)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Feasible && direct.Energy.Total() < res.Energy.Total()-1e-9 {
		t.Errorf("refined result (%v) worse than unrefined (%v)", res.Energy.Total(), direct.Energy.Total())
	}
}
