package core

import (
	"fmt"

	"rtsm/internal/arch"
)

// Batched commit: the admission pipeline drains several queued arrivals
// per epoch, maps them speculatively against one shared base snapshot and
// wants to commit all of them in a single pass under one lock
// acquisition. That is sound exactly when the plans' region footprints
// are pairwise disjoint: every tile and link belongs to exactly one
// region, so disjoint region footprints mean disjoint resource sets —
// the plans cannot consume each other's capacity, each one's validation
// is independent of the others, and applying them in any order yields
// the same ledger as applying them one at a time. BatchPlan packages
// that argument: Add refuses an overlapping plan, so holding a BatchPlan
// is holding the proof that its members are mergeable.

// BatchPlan is a set of reservation plans with pairwise-disjoint region
// footprints, committable as one multi-application transaction under the
// union of their region locks. Build one with MergePlans (or
// incrementally with Add), then take the union footprint's locks
// (Regions) and run Validate/Commit — or validate members individually
// via Violating and commit the surviving subset plan by plan, which is
// ledger-identical because the members touch disjoint resources.
type BatchPlan struct {
	plans   []*Plan
	regions []arch.RegionID // union footprint, ascending unique
}

// MergePlans merges plans whose region footprints are pairwise disjoint
// into a single BatchPlan. It returns an error naming the first plan
// whose footprint overlaps the union of those before it; the manager's
// batched admission path uses Add directly so an overlapping plan can
// fall back to a per-item commit instead of failing the whole batch.
func MergePlans(plans ...*Plan) (*BatchPlan, error) {
	b := &BatchPlan{}
	for _, p := range plans {
		if err := b.Add(p); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// Add merges one more plan into the batch, refusing it (with no change
// to the batch) when its footprint overlaps a member's.
func (b *BatchPlan) Add(p *Plan) error {
	if p.Overlaps(b.regions) {
		return fmt.Errorf("core: plan %q overlaps the batch footprint", p.App())
	}
	b.plans = append(b.plans, p)
	b.regions = mergeDisjointRegions(b.regions, p.Regions())
	return nil
}

// Len returns the number of member plans.
func (b *BatchPlan) Len() int { return len(b.plans) }

// Plans returns the member plans in Add order. The slice is owned by the
// batch; do not modify it.
func (b *BatchPlan) Plans() []*Plan { return b.plans }

// Regions returns the union region footprint of all members, ascending
// without duplicates: exactly the locks a batched Validate/Commit needs.
// The returned slice is owned by the batch; do not modify it.
func (b *BatchPlan) Regions() []arch.RegionID { return b.regions }

// Violating validates every member plan against the platform's live
// residual capacity and returns the indices (in Add order) of those that
// no longer fit. Because member footprints are disjoint the checks are
// independent: a member missing from the result can be committed even
// when others violate. The caller must hold the union footprint's region
// locks.
func (b *BatchPlan) Violating(plat *arch.Platform) []int {
	var out []int
	for i, p := range b.plans {
		if len(p.pl.violations(plat)) > 0 {
			out = append(out, i)
		}
	}
	return out
}

// BatchConflictError reports which members of a batch failed validation,
// pairing each failing member's index (in Add order) with its per-plan
// ConflictError.
type BatchConflictError struct {
	// Indices are the failing members' positions, ascending.
	Indices []int
	// Errs holds the per-member conflict reports, parallel to Indices.
	Errs []*ConflictError
}

// Error summarises how many members failed and the first member's report.
func (e *BatchConflictError) Error() string {
	if len(e.Errs) == 0 {
		return "core: batch conflict with no members recorded"
	}
	return fmt.Sprintf("core: %d of batch failed validation: %s", len(e.Indices), e.Errs[0].Error())
}

// Validate checks every member against the platform and returns nil when
// the whole batch can commit, or a *BatchConflictError listing every
// failing member. The caller must hold the union footprint's region
// locks.
func (b *BatchPlan) Validate(plat *arch.Platform) error {
	var be *BatchConflictError
	for i, p := range b.plans {
		if vs := p.pl.violations(plat); len(vs) > 0 {
			if be == nil {
				be = &BatchConflictError{}
			}
			be.Indices = append(be.Indices, i)
			be.Errs = append(be.Errs, &ConflictError{
				App: p.App(), Violations: vs, Regions: conflictRegions(vs)})
		}
	}
	if be != nil {
		return be
	}
	return nil
}

// Commit applies every member plan in Add order. The caller must hold
// the union footprint's region locks and have seen Validate succeed
// under them. Because members touch disjoint resources, the resulting
// ledger is bit-identical to committing the same plans sequentially,
// each under its own locks (the property batch_test.go pins).
func (b *BatchPlan) Commit(plat *arch.Platform) {
	for _, p := range b.plans {
		p.pl.commit(plat, +1)
	}
}

// Release subtracts every member plan's reservations, undoing Commit.
// The caller must hold the union footprint's region locks.
func (b *BatchPlan) Release(plat *arch.Platform) {
	for _, p := range b.plans {
		p.pl.commit(plat, -1)
	}
}

// mergeDisjointRegions merges two ascending unique region lists known to
// share no element into one ascending unique list.
func mergeDisjointRegions(a, b []arch.RegionID) []arch.RegionID {
	out := make([]arch.RegionID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
