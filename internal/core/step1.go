package core

import (
	"fmt"
	"math"

	"rtsm/internal/arch"
	"rtsm/internal/model"
)

// option is one viable (implementation, first-fit tile) pair for a process
// during step 1.
type option struct {
	im   *model.Implementation
	tile *arch.Tile
	util float64
	cost float64
}

// step1 assigns an implementation — and thereby a tile type — to every
// mappable process (paper §3, step 1). Processes are picked iteratively by
// desirability: the cost gap between their cheapest and second cheapest
// viable option. A process whose last alternative disappeared is forced
// (desirability +Inf), matching the paper's "chosen per default". The
// chosen implementation is packed first-fit onto a concrete tile so that
// an adhering assignment is known to exist after this step.
func (m *Mapper) step1(app *model.Application, work *arch.Platform, mp *Mapping, tb *tabu, tr *Trace) *feedback {
	// Processes already carrying an implementation were seeded by the
	// repair path; their placement is settled and step 1 leaves it alone.
	var unassigned []*model.Process
	for _, p := range app.MappableProcesses() {
		if mp.Impl[p.ID] == nil {
			unassigned = append(unassigned, p)
		}
	}

	for len(unassigned) > 0 {
		type scored struct {
			idx          int // index into unassigned
			desirability float64
			best         option
		}
		var pick *scored
		for i, p := range unassigned {
			opts, fb := m.viableOptions(app, work, mp, p, tb)
			if fb != nil {
				return fb
			}
			s := scored{idx: i, best: opts[0]}
			if len(opts) == 1 {
				s.desirability = math.Inf(1)
			} else {
				s.desirability = opts[1].cost - opts[0].cost
			}
			if m.Cfg.ArbitraryOrder {
				// Ablation: take processes in declaration order, ignoring
				// desirability entirely.
				pick = &s
				break
			}
			if pick == nil || s.desirability > pick.desirability {
				s := s
				pick = &s
			}
		}
		p := unassigned[pick.idx]
		opt := pick.best
		// Write through the CoW barrier: on a copy-on-write working
		// platform the tile's region is faulted in first, so the shared
		// snapshot structs the option was scored against stay untouched.
		wt := work.WTile(opt.tile.ID)
		wt.ReservedMem += opt.im.MemBytes
		wt.ReservedUtil += opt.util
		wt.Occupants++
		mp.Impl[p.ID] = opt.im
		mp.Tile[p.ID] = opt.tile.ID
		tr.Step1 = append(tr.Step1, Step1Record{
			Process:      p.Name,
			Desirability: pick.desirability,
			Impl:         opt.im.String(),
			Tile:         opt.tile.Name,
		})
		unassigned = append(unassigned[:pick.idx], unassigned[pick.idx+1:]...)
	}
	return nil
}

// viableOptions returns the process's options sorted by cost (cheapest
// first; ties by library registration order). Options are filtered the way
// the paper prescribes: only implementations that currently fit on at
// least one tile keep the eventual mapping adherent.
func (m *Mapper) viableOptions(app *model.Application, work *arch.Platform, mp *Mapping, p *model.Process, tb *tabu) ([]option, *feedback) {
	used := m.usedRegions(work, mp)
	var opts []option
	for _, im := range m.Lib.For(p.Name) {
		if tb.bansImpl(p.ID, im.TileType) {
			continue
		}
		cyc, err := im.CyclesPerPeriod(app, p)
		if err != nil {
			// The implementation does not match the application's channel
			// structure; it is not an option for this app.
			continue
		}
		tile, util := m.firstFit(app, work, p, im, cyc, tb, used)
		if tile == nil {
			continue
		}
		cost := im.EnergyPerPeriod
		if m.Cfg.CommEstimateInStep1 {
			cost += m.commEstimate(app, work, mp, p, tile)
		}
		if used != nil {
			if _, in := used[work.RegionOfTile(tile.ID)]; !in {
				// Opening a region the mapping does not occupy yet widens
				// the eventual plan's lock footprint; price it so an
				// in-region option of comparable energy wins.
				cost += m.Cfg.RegionBias
			}
		}
		opts = append(opts, option{im: im, tile: tile, util: util, cost: cost})
	}
	if len(opts) == 0 {
		return nil, m.step1Feedback(app, work, mp, p, tb)
	}
	// Insertion sort by cost keeps registration order on ties and avoids
	// pulling in sort for a handful of options.
	for i := 1; i < len(opts); i++ {
		for j := i; j > 0 && opts[j].cost < opts[j-1].cost; j-- {
			opts[j], opts[j-1] = opts[j-1], opts[j]
		}
	}
	return opts, nil
}

// step1Feedback is produced when a process runs out of options mid-step-1.
// The paper lists feedback from the earlier steps as future work ("When
// earlier steps fail to find a solution, feedback information should be
// produced with which a new attempt can be made", §5); this implements it:
// find a tile type the starved process could use, pick an already-assigned
// occupant of that type that has an alternative tile type, and ban the
// occupant's choice so the next attempt frees a slot.
func (m *Mapper) step1Feedback(app *model.Application, work *arch.Platform, mp *Mapping, p *model.Process, tb *tabu) *feedback {
	for _, im := range m.Lib.For(p.Name) {
		if tb.bansImpl(p.ID, im.TileType) {
			continue
		}
		for _, q := range app.MappableProcesses() {
			qIm := mp.Impl[q.ID]
			if qIm == nil || qIm.TileType != im.TileType || tb.bansImpl(q.ID, qIm.TileType) {
				continue
			}
			// The displaced process needs somewhere else to go.
			hasAlternative := false
			for _, alt := range m.Lib.For(q.Name) {
				if alt.TileType != qIm.TileType && !tb.bansImpl(q.ID, alt.TileType) &&
					len(work.TilesOfType(alt.TileType)) > 0 {
					hasAlternative = true
					break
				}
			}
			if !hasAlternative {
				continue
			}
			return &feedback{
				kind:        fbNoImplementation,
				process:     q.ID,
				banImplType: qIm.TileType,
				detail: fmt.Sprintf("process %q starved of %s tiles; displacing %q",
					p.Name, im.TileType, q.Name),
			}
		}
	}
	return &feedback{
		kind:    fbNoImplementation,
		process: p.ID,
		detail:  fmt.Sprintf("process %q has no viable implementation left", p.Name),
	}
}

// usedRegions returns the set of mesh regions the mapping occupies so far
// (pinned endpoints and earlier step-1 placements), or nil when the
// region bias is off or the platform is a single region — the signal that
// region-aware placement is inactive.
func (m *Mapper) usedRegions(work *arch.Platform, mp *Mapping) map[arch.RegionID]struct{} {
	if m.Cfg.RegionBias <= 0 || work.RegionCount() <= 1 {
		return nil
	}
	used := make(map[arch.RegionID]struct{}, 4)
	for _, tid := range mp.Tile {
		used[work.RegionOfTile(tid)] = struct{}{}
	}
	return used
}

// firstFit returns the first tile (in platform declaration order: "the
// first tile we come across", §3 step 1) that can host the implementation,
// or nil. With the region bias active (used non-nil) the scan runs in two
// passes — tiles inside regions the mapping already occupies first, the
// rest of the mesh second — so a spec whose footprint can stay inside the
// regions of its pinned endpoints does, and the plan's lock-union width
// shrinks.
func (m *Mapper) firstFit(app *model.Application, work *arch.Platform, p *model.Process, im *model.Implementation, cyclesPerPeriod int64, tb *tabu, used map[arch.RegionID]struct{}) (*arch.Tile, float64) {
	fits := func(t *arch.Tile) (float64, bool) {
		if tb.bansTile(p.ID, t.ID) {
			return 0, false
		}
		util := utilisation(t, cyclesPerPeriod, app.QoS.PeriodNs)
		return util, canHost(t, im.MemBytes, util) && hasLocalNICapacity(app, t, p)
	}
	if used != nil {
		for _, t := range work.TilesOfType(im.TileType) {
			if _, in := used[work.RegionOfTile(t.ID)]; !in {
				continue
			}
			if util, ok := fits(t); ok {
				return t, util
			}
		}
	}
	for _, t := range work.TilesOfType(im.TileType) {
		if used != nil {
			if _, in := used[work.RegionOfTile(t.ID)]; in {
				continue // already scanned in the in-region pass
			}
		}
		if util, ok := fits(t); ok {
			return t, util
		}
	}
	return nil, 0
}

func canHost(t *arch.Tile, memBytes int64, util float64) bool {
	if t.Failed {
		return false
	}
	if t.MaxOccupants > 0 && t.Occupants >= t.MaxOccupants {
		return false
	}
	return t.FreeMem() >= memBytes && t.ReservedUtil+util <= 1.0+utilEps
}

// hasLocalNICapacity conservatively checks that the tile's network
// interface could carry all of the process's stream traffic, the "at
// least, locally" communication-resource check of step 2's tile filter.
// Channels whose peer ends up on the same tile will not actually use the
// NI, so this filter is conservative, never optimistic.
func hasLocalNICapacity(app *model.Application, t *arch.Tile, p *model.Process) bool {
	if t.NICapBps <= 0 {
		return true // NI unconstrained
	}
	var inBps, outBps int64
	for _, c := range app.ChannelsOf(p.ID) {
		bps := channelBps(c, app.QoS.PeriodNs)
		if c.Dst == p.ID {
			inBps += bps
		} else {
			outBps += bps
		}
	}
	return t.ReservedInBps+inBps <= t.NICapBps && t.ReservedOutBps+outBps <= t.NICapBps
}

// commEstimate prices the process's channels to already-placed neighbours
// (pinned endpoints and processes assigned in earlier step-1 iterations)
// by Manhattan distance, the optional step-1 look-ahead.
func (m *Mapper) commEstimate(app *model.Application, work *arch.Platform, mp *Mapping, p *model.Process, t *arch.Tile) float64 {
	params := m.Cfg.energyParams()
	var e float64
	for _, c := range app.ChannelsOf(p.ID) {
		peer := c.Src
		if peer == p.ID {
			peer = c.Dst
		}
		if peerTile, ok := mp.Tile[peer]; ok {
			hops := work.Pos(t.ID).Manhattan(work.Pos(peerTile))
			e += params.CommEnergy(c, hops)
		}
	}
	return e
}
