package fleet

import (
	"errors"
	"fmt"
	"testing"

	"rtsm/internal/arch"
	"rtsm/internal/core"
	"rtsm/internal/csdf"
	"rtsm/internal/manager"
	"rtsm/internal/model"
	"rtsm/internal/workload"
)

// slotPlatform builds a k×1 mesh with exactly k ARM tiles plus pinned
// stream endpoints. Each test application reserves 0.6 of one ARM tile,
// so a slotPlatform(k) mesh admits exactly k of them — saturation is a
// constructed fact, not a tuned coincidence.
func slotPlatform(k int) *arch.Platform {
	plat := arch.NewMesh(fmt.Sprintf("slots-%d", k), k, 1, 800_000_000)
	for i := 0; i < k; i++ {
		plat.AttachTile(arch.TileSpec{Name: fmt.Sprintf("ARM%d", i), Type: arch.TypeARM,
			At: arch.Pt(i, 0), ClockHz: 200e6, MemBytes: 32 << 10})
	}
	plat.AttachTile(arch.TileSpec{Name: "SRC", Type: arch.TypeSource, At: arch.Pt(0, 0),
		ClockHz: 200e6, MemBytes: 8 << 10})
	plat.AttachTile(arch.TileSpec{Name: "SINK", Type: arch.TypeSink, At: arch.Pt(0, 0),
		ClockHz: 200e6, MemBytes: 8 << 10})
	return plat
}

// slotApp is src → a → sink with one ARM implementation at utilisation
// 0.6 (480 of an 800-cycle budget), so no two share a tile.
func slotApp(name string, prio model.Priority) (*model.Application, *model.Library) {
	app := model.NewApplication(name, model.QoS{PeriodNs: 4000, Priority: prio})
	src := app.AddPinnedProcess("src", "SRC")
	a := app.AddProcess("a")
	sink := app.AddPinnedProcess("sink", "SINK")
	app.Connect(src, a, 16, 4)
	app.Connect(a, sink, 16, 4)
	lib := model.NewLibrary()
	lib.Add(&model.Implementation{
		Process: "a", TileType: arch.TypeARM,
		WCET:            csdf.Vals(2, 480, 2),
		In:              map[string]csdf.Pattern{"in": csdf.Vals(16, 0, 0)},
		Out:             map[string]csdf.Pattern{"out": csdf.Vals(0, 0, 16)},
		EnergyPerPeriod: 40, MemBytes: 1024,
	})
	return app, lib
}

// slotFleet builds a fleet of meshes with the given slot counts.
func slotFleet(t *testing.T, cfg Config, slots ...int) *Fleet {
	t.Helper()
	mcs := make([]MeshConfig, len(slots))
	for i, k := range slots {
		mcs[i] = MeshConfig{Manager: manager.New(slotPlatform(k), core.Config{}), Workers: 1}
	}
	f, err := New(cfg, mcs...)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// checkLedgers verifies every mesh's reservation ledger.
func checkLedgers(t *testing.T, f *Fleet) {
	t.Helper()
	for i := 0; i < f.Meshes(); i++ {
		if err := f.Manager(i).CheckInvariants(); err != nil {
			t.Errorf("mesh %d ledger: %v", i, err)
		}
	}
}

// TestSingleMeshDegradesToPlainManager pins the degenerate case: a fleet
// of one mesh behaves exactly like its manager — same admissions, same
// rejection error type, never a spill — so wrapping a deployment in a
// fleet costs nothing until a second mesh exists.
func TestSingleMeshDegradesToPlainManager(t *testing.T) {
	f := slotFleet(t, Config{}, 2)
	defer f.Close()

	for i := 0; i < 2; i++ {
		app, lib := slotApp(fmt.Sprintf("app-%d", i), model.BestEffort)
		out := f.Admit(app, lib)
		if !out.Admitted || out.Mesh != 0 || out.Spills != 0 {
			t.Fatalf("admission %d: admitted=%v mesh=%d spills=%d, want clean mesh-0 admission (%v)",
				i, out.Admitted, out.Mesh, out.Spills, out.Err)
		}
	}
	app, lib := slotApp("app-overflow", model.BestEffort)
	out := f.Admit(app, lib)
	if out.Admitted {
		t.Fatal("third 0.6-utilisation app fit a two-slot mesh")
	}
	if out.Spills != 0 {
		t.Fatalf("single-mesh fleet spilled %d times; there are no siblings", out.Spills)
	}
	var rej *manager.RejectionError
	if !errors.As(out.Err, &rej) {
		t.Fatalf("fleet rejection is %T, want *manager.RejectionError as from a plain manager", out.Err)
	}
	if f.MeshOf("app-overflow") != -1 {
		t.Error("rejected app still has a placement")
	}
	if err := f.Stop("app-0"); err != nil {
		t.Fatal(err)
	}
	app, lib = slotApp("app-after", model.BestEffort)
	if out := f.Admit(app, lib); !out.Admitted {
		t.Fatalf("freed slot not reusable: %v", out.Err)
	}
	checkLedgers(t, f)
}

// TestSpillToSibling pins the overflow path: when the routed mesh is
// full and a sibling has room, the arrival lands on the sibling with
// exactly one spill recorded, and the placement follows it.
func TestSpillToSibling(t *testing.T) {
	f := slotFleet(t, Config{Seed: 1}, 1, 1)
	defer f.Close()

	// Two slots fleet-wide: both admissions land, wherever routed (the
	// second spills if routed onto the first's mesh).
	for i := 0; i < 2; i++ {
		app, lib := slotApp(fmt.Sprintf("app-%d", i), model.BestEffort)
		if out := f.Admit(app, lib); !out.Admitted {
			t.Fatalf("admission %d failed with a free mesh available: %v", i, out.Err)
		}
	}
	m0 := f.Manager(0).LoadEstimate().Running()
	m1 := f.Manager(1).LoadEstimate().Running()
	if m0 != 1 || m1 != 1 {
		t.Fatalf("residents split %d/%d, want 1/1 (spill should find the free mesh)", m0, m1)
	}
	if a, b := f.MeshOf("app-0"), f.MeshOf("app-1"); a == b || a < 0 || b < 0 {
		t.Fatalf("placements %d/%d, want distinct meshes", a, b)
	}
	checkLedgers(t, f)
}

// TestSaturatedFleetRejectsExactlyOnce pins exactly-one-outcome under
// total saturation: the arrival tries the routed mesh, spills across
// every sibling, and the caller sees one final rejection — not one per
// mesh, not zero.
func TestSaturatedFleetRejectsExactlyOnce(t *testing.T) {
	const meshes = 3
	f := slotFleet(t, Config{Seed: 2}, 1, 1, 1)
	defer f.Close()

	for i := 0; i < meshes; i++ {
		app, lib := slotApp(fmt.Sprintf("fill-%d", i), model.BestEffort)
		if out := f.Admit(app, lib); !out.Admitted {
			t.Fatalf("fill %d failed: %v", i, out.Err)
		}
	}
	before := f.Stats()
	app, lib := slotApp("overflow", model.BestEffort)
	ch, err := f.Submit(app, lib)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := <-ch
	if !ok {
		t.Fatal("outcome channel closed without a verdict")
	}
	if out.Admitted {
		t.Fatal("admitted into a fully saturated fleet")
	}
	if out.Spills != meshes-1 {
		t.Fatalf("Spills = %d, want %d (every sibling tried once)", out.Spills, meshes-1)
	}
	if !manager.IsRetryableRejection(out.Err) {
		t.Fatalf("saturation rejection not retryable: %v", out.Err)
	}
	select {
	case extra, open := <-ch:
		if open {
			t.Fatalf("second outcome delivered: %+v", extra)
		}
	default: // exactly one buffered outcome — nothing further
	}
	st := f.Stats()
	if got := st.OverflowRejects - before.OverflowRejects; got != 1 {
		t.Fatalf("OverflowRejects = %d, want 1", got)
	}
	if got := st.Spills - before.Spills; got != uint64(meshes-1) {
		t.Fatalf("Stats.Spills = %d, want %d", got, meshes-1)
	}
	if f.MeshOf("overflow") != -1 {
		t.Error("rejected arrival left a placement behind")
	}
	// A duplicate of a resident is refused at the door, without burning
	// mesh work.
	dup, dupLib := slotApp("fill-0", model.BestEffort)
	if _, err := f.Submit(dup, dupLib); err == nil {
		t.Fatal("duplicate resident name accepted")
	}
	checkLedgers(t, f)
}

// TestStructuralRejectionDoesNotSpill pins the other half of the spill
// signal: an application that is broken everywhere (pinned to a tile no
// mesh has) is rejected by the routed mesh alone.
func TestStructuralRejectionDoesNotSpill(t *testing.T) {
	f := slotFleet(t, Config{Seed: 3}, 2, 2)
	defer f.Close()
	app := model.NewApplication("broken", model.QoS{PeriodNs: 4000})
	src := app.AddPinnedProcess("src", "NO_SUCH_TILE")
	a := app.AddProcess("a")
	sink := app.AddPinnedProcess("sink", "SINK")
	app.Connect(src, a, 16, 4)
	app.Connect(a, sink, 16, 4)
	_, lib := slotApp("donor", model.BestEffort)
	out := f.Admit(app, lib)
	if out.Admitted {
		t.Fatal("admitted an app pinned to a nonexistent tile")
	}
	if out.Spills != 0 {
		t.Fatalf("structural rejection spilled %d times, want 0", out.Spills)
	}
	if st := f.Stats(); st.Spills != 0 {
		t.Fatalf("Stats.Spills = %d, want 0", st.Spills)
	}
}

// TestHeterogeneousMeshSizes runs a fleet whose meshes differ in size:
// five slots split 1/4. All five arrivals must land (spill covers
// routing misses), both meshes must end up populated, and utilization
// must read full on both.
func TestHeterogeneousMeshSizes(t *testing.T) {
	f := slotFleet(t, Config{Seed: 4}, 1, 4)
	defer f.Close()
	for i := 0; i < 5; i++ {
		app, lib := slotApp(fmt.Sprintf("app-%d", i), model.BestEffort)
		if out := f.Admit(app, lib); !out.Admitted {
			t.Fatalf("admission %d failed with capacity left: %v", i, out.Err)
		}
	}
	if got := f.Manager(0).LoadEstimate().Running(); got != 1 {
		t.Errorf("small mesh runs %d, want exactly its 1 slot", got)
	}
	if got := f.Manager(1).LoadEstimate().Running(); got != 4 {
		t.Errorf("large mesh runs %d, want exactly its 4 slots", got)
	}
	for i := 0; i < f.Meshes(); i++ {
		if u := f.Manager(i).LoadEstimate().Utilization(); u < 0.5 {
			t.Errorf("mesh %d utilization %v, want saturated (≥0.5)", i, u)
		}
	}
	checkLedgers(t, f)
}

// TestRouterPrefersColdMesh pins the load-aware half of routing without
// relying on sampling luck: with Sample covering every mesh, arrivals
// must go to the emptier mesh first.
func TestRouterPrefersColdMesh(t *testing.T) {
	f := slotFleet(t, Config{Seed: 5, Sample: 2}, 2, 2)
	defer f.Close()
	for i := 0; i < 4; i++ {
		app, lib := slotApp(fmt.Sprintf("app-%d", i), model.BestEffort)
		out := f.Admit(app, lib)
		if !out.Admitted {
			t.Fatalf("admission %d failed: %v", i, out.Err)
		}
		if out.Spills != 0 {
			t.Fatalf("admission %d spilled; full-sample routing should never need to", i)
		}
	}
	if m0, m1 := f.Manager(0).LoadEstimate().Running(), f.Manager(1).LoadEstimate().Running(); m0 != 2 || m1 != 2 {
		t.Fatalf("full-sample routing split %d/%d, want 2/2", m0, m1)
	}
}

// TestRebalanceMovesBestEffortOnly pins the relocation flow: after the
// fleet empties one mesh, a rebalance round moves best-effort residents
// from the hot mesh to the cold one — and leaves Standard residents
// alone, whatever the imbalance.
func TestRebalanceMovesBestEffortOnly(t *testing.T) {
	f := slotFleet(t, Config{Seed: 6, Sample: 2, RebalanceGap: 0.05, RebalanceMoves: 8}, 4, 4)
	defer f.Close()
	// Fill both meshes, then stop everything on mesh 1 to create the
	// imbalance.
	var onHot []string
	for i := 0; i < 8; i++ {
		prio := model.BestEffort
		if i%2 == 1 {
			prio = model.Standard
		}
		app, lib := slotApp(fmt.Sprintf("app-%d", i), prio)
		out := f.Admit(app, lib)
		if !out.Admitted {
			t.Fatalf("admission %d failed: %v", i, out.Err)
		}
	}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("app-%d", i)
		if f.MeshOf(name) == 1 {
			if err := f.Stop(name); err != nil {
				t.Fatal(err)
			}
		} else {
			onHot = append(onHot, name)
		}
	}
	if len(onHot) == 0 {
		t.Fatal("setup failed: mesh 0 empty")
	}
	moved := f.RebalanceOnce()
	if moved == 0 {
		t.Fatal("rebalance moved nothing across a maximal utilization gap")
	}
	st := f.Stats()
	if st.Relocations != uint64(moved) {
		t.Fatalf("Stats.Relocations = %d, want %d", st.Relocations, moved)
	}
	for _, name := range onHot {
		mesh := f.MeshOf(name)
		if mesh == -1 {
			t.Fatalf("%s lost during rebalance", name)
		}
		// Standard residents must not have moved.
		if f.Manager(mesh).Running() != nil {
			for _, ad := range f.Manager(mesh).Running() {
				if ad.App.Name == name && ad.Priority == model.Standard && mesh != 0 {
					t.Fatalf("standard resident %s was relocated to mesh %d", name, mesh)
				}
			}
		}
	}
	// Every resident is on exactly one mesh: fleet-wide running count
	// equals the placement count.
	total := int64(0)
	for i := 0; i < f.Meshes(); i++ {
		total += f.Manager(i).LoadEstimate().Running()
	}
	if total != int64(len(onHot)) {
		t.Fatalf("fleet-wide residents = %d, want %d", total, len(onHot))
	}
	checkLedgers(t, f)
}

// TestRouteDoesNotAllocate pins the router's hot path: picking a target
// mesh must not touch the heap (the index scratch for distinct-candidate
// sampling lives on the stack for fleets up to 16 meshes), so per-arrival
// routing adds no GC pressure however fast admissions arrive.
func TestRouteDoesNotAllocate(t *testing.T) {
	f := slotFleet(t, Config{Seed: 8, Sample: 2}, 1, 1, 1, 1)
	defer f.Close()
	app, _ := slotApp("probe", model.BestEffort)
	allocs := testing.AllocsPerRun(200, func() {
		if f.route(app) == nil {
			t.Error("route returned nil")
		}
	})
	if allocs != 0 {
		t.Fatalf("route allocates %.1f objects per arrival, want 0", allocs)
	}
}

// TestMeshEvictionFreesNameAfterReconcile pins the placement lifecycle
// around a mesh-local eviction: when a mesh's own preemption planner
// evicts a best-effort resident (no fleet involvement), the stale
// placement blocks the name only until the next reconciliation sweep,
// after which MeshOf reads -1 and the name is submittable again.
func TestMeshEvictionFreesNameAfterReconcile(t *testing.T) {
	f := slotFleet(t, Config{}, 1)
	defer f.Close()
	victim, vlib := slotApp("victim", model.BestEffort)
	if out := f.Admit(victim, vlib); !out.Admitted {
		t.Fatalf("victim admission failed: %v", out.Err)
	}
	crit, clib := slotApp("crit", model.Critical)
	out := f.Admit(crit, clib)
	if !out.Admitted {
		t.Fatalf("critical arrival not admitted by preemption: %v", out.Err)
	}
	if len(out.Preempted) == 0 {
		t.Fatal("critical admission preempted nobody; fixture broken")
	}
	if st := f.Manager(0).Stats(); st.Evictions == 0 {
		t.Fatalf("victim was relocated (%d), not evicted; the one-slot fixture broke", st.Relocations)
	}
	// Until a sweep runs the fleet still believes the victim is resident:
	// MeshOf reports the stale mesh and the name stays blocked (the
	// documented staleness window).
	if got := f.MeshOf("victim"); got != 0 {
		t.Fatalf("pre-sweep MeshOf = %d, want stale 0", got)
	}
	dup, dupLib := slotApp("victim", model.BestEffort)
	if _, err := f.Submit(dup, dupLib); err == nil {
		t.Fatal("evicted name accepted pre-sweep; duplicate detection broken")
	}
	// One rebalance round reconciles the eviction even on a 1-mesh fleet.
	f.RebalanceOnce()
	if got := f.MeshOf("victim"); got != -1 {
		t.Fatalf("post-sweep MeshOf = %d, want -1", got)
	}
	if got := f.Stats().MeshEvictions; got != 1 {
		t.Fatalf("Stats.MeshEvictions = %d, want 1", got)
	}
	// The name is free again: the resubmission reaches the mesh (a
	// capacity rejection, not a refusal at the door)...
	re, reLib := slotApp("victim", model.BestEffort)
	out = f.Admit(re, reLib)
	if out.Admitted {
		t.Fatal("resubmitted victim fit a slot occupied by the critical app")
	}
	if !manager.IsRetryableRejection(out.Err) {
		t.Fatalf("resubmission refused at the door: %v", out.Err)
	}
	// ...and admitted for real once the slot frees up.
	if err := f.Stop("crit"); err != nil {
		t.Fatal(err)
	}
	re, reLib = slotApp("victim", model.BestEffort)
	if out := f.Admit(re, reLib); !out.Admitted {
		t.Fatalf("resubmission after the slot freed: %v", out.Err)
	}
	checkLedgers(t, f)
}

// TestFleetWithSyntheticPlatforms smoke-tests the fleet over the real
// synthetic workload generator and heterogeneous region-partitioned
// meshes (the shape cmd/churn -meshes drives), pipelined rather than
// synchronous.
func TestFleetWithSyntheticPlatforms(t *testing.T) {
	plats := workload.SyntheticFleetPlatforms([]workload.MeshSpec{
		{W: 4, H: 4, Seed: 11, RegionSize: 2},
		{W: 8, H: 8, Seed: 12, RegionSize: 4},
	})
	f, err := New(Config{Seed: 7},
		MeshConfig{Manager: manager.New(plats[0], core.Config{}), Workers: 2, Queue: 4},
		MeshConfig{Manager: manager.New(plats[1], core.Config{}), Workers: 2, Queue: 4, Batch: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	type pend struct {
		name string
		ch   <-chan Outcome
	}
	var pending []pend
	for i := 0; i < 24; i++ {
		app, lib := workload.Synthetic(workload.SynthOptions{
			Shape: workload.ShapeChain, Processes: 3, Seed: int64(i % 8),
			MaxUtil: 0.2, PeriodNs: 40_000,
		})
		app.Name = fmt.Sprintf("syn-%d", i)
		ch, err := f.Submit(app, lib)
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, pend{app.Name, ch})
	}
	admitted := 0
	for _, p := range pending {
		out := <-p.ch
		if out.Admitted {
			admitted++
			if err := f.Stop(p.name); err != nil {
				t.Fatalf("stop %s: %v", p.name, err)
			}
		}
	}
	if admitted == 0 {
		t.Fatal("nothing admitted")
	}
	for i := 0; i < f.Meshes(); i++ {
		if got := f.Manager(i).LoadEstimate().Running(); got != 0 {
			t.Errorf("mesh %d still runs %d after full stop", i, got)
		}
	}
	checkLedgers(t, f)
}
