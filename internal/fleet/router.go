package fleet

import (
	"sort"

	"rtsm/internal/model"
)

// MeshStat is the router's per-mesh scoring input, sampled lock-free
// from the mesh's manager.LoadEstimate at routing time.
type MeshStat struct {
	// Mesh is the mesh's index in the fleet's construction order.
	Mesh int
	// Running is the mesh's resident-application count.
	Running int64
	// Utilization is the fraction of the mesh's processing capacity its
	// residents reserve, in [0,1].
	Utilization float64
	// EnergyMilli is the summed per-period mapped energy of the mesh's
	// residents, in thousandths of the mapper's energy unit.
	EnergyMilli int64
	// CapacityMilli is the mesh's static processing capacity in
	// milli-tiles (1000 per processing tile), so policies can
	// distinguish a half-full large mesh from a half-full small one.
	CapacityMilli int64
	// InFlight is the number of admissions handed to this mesh whose
	// outcome is still pending — queued behind its bounded pipeline,
	// being mapped, or spilling through it. Workers is the mesh
	// pipeline's worker count; InFlight/Workers is the queue-pressure
	// signal that keeps the router from blocking on one busy pipeline
	// while siblings sit idle.
	InFlight int64
	Workers  int
}

// Policy scores one candidate mesh for one arrival; the router picks the
// lowest score among its sampled candidates and the spill path visits
// siblings in ascending score order. Policies must be pure functions of
// their inputs — they run on the submit hot path with no locks held.
type Policy func(s MeshStat, app *model.Application) float64

// DefaultPolicy balances on utilization headroom with two refinements.
// Energy breaks ties between equally-utilized meshes (cheaper residents
// first, a proxy for how much repair work a conflict would trigger). The
// arrival's QoS class shifts the utilization curve: a Critical arrival
// pays a steep penalty for nearly-full meshes — landing it where
// admission would need preemption helps nobody — while a BestEffort
// arrival scores meshes almost linearly, soaking up whatever headroom is
// left. Capacity normalization is already inside Utilization, so
// heterogeneous mesh sizes need no special casing here.
func DefaultPolicy(s MeshStat, app *model.Application) float64 {
	u := s.Utilization
	score := u
	if s.Workers > 0 {
		// Queue pressure: every pending admission per worker counts like
		// 20 utilization points, so a backed-up pipeline sheds arrivals
		// to idle siblings long before its bounded queue would block the
		// submitter.
		score += 0.2 * float64(s.InFlight) / float64(s.Workers)
	}
	if app.QoS.Priority >= model.Critical && u > 0.7 {
		// Past ~70% the preemption probability climbs; make hot meshes
		// effectively invisible to critical arrivals when any alternative
		// exists.
		score += 4 * (u - 0.7)
	}
	if s.CapacityMilli > 0 {
		// Energy tiebreak, scaled to stay well below one utilization
		// percentage point.
		score += float64(s.EnergyMilli) / float64(s.CapacityMilli) * 1e-3
	}
	return score
}

// stat samples one mesh's load estimate.
func (f *Fleet) stat(ms *mesh) MeshStat {
	return MeshStat{
		Mesh:          ms.id,
		Running:       ms.load.Running(),
		Utilization:   ms.load.Utilization(),
		EnergyMilli:   ms.load.EnergyMilli(),
		CapacityMilli: ms.load.CapacityMilli(),
		InFlight:      ms.inFlight.Load(),
		Workers:       ms.workers,
	}
}

// splitmix64 is the router's lock-free pseudo-random step: one atomic
// add plus a few multiplies, no shared state beyond the counter.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// route picks the arrival's target mesh: sample cfg.Sample distinct
// meshes (power-of-d-choices; d=2 by default), score each with the
// policy, take the best. With one mesh there is nothing to choose; with
// sample ≥ len(meshes) every mesh is scored. Per arrival: O(sample)
// policy evaluations plus an O(n) index fill on a stack scratch —
// lock-free and allocation-free for fleets up to the scratch size.
func (f *Fleet) route(app *model.Application) *mesh {
	n := len(f.meshes)
	if n == 1 {
		if f.meshes[0].failed.Load() {
			return nil
		}
		return f.meshes[0]
	}
	sample := f.cfg.Sample
	if sample > n {
		sample = n
	}
	var best *mesh
	bestScore := 0.0
	if sample == n {
		for _, ms := range f.meshes {
			if ms.failed.Load() {
				continue
			}
			if s := f.cfg.Policy(f.stat(ms), app); best == nil || s < bestScore {
				best, bestScore = ms, s
			}
		}
		return best
	}
	// Distinct-candidate sampling via a Fisher–Yates prefix. The index
	// scratch is a fixed-size array so typical fleets (n ≤ 16) keep the
	// admission hot path allocation-free (pinned by
	// TestRouteDoesNotAllocate); larger fleets pay one heap slice, and
	// only until they exceed the scratch.
	r := splitmix64(f.rngState.Add(0x9e3779b97f4a7c15))
	var scratch [16]int
	idx := scratch[:]
	if n > len(scratch) {
		idx = make([]int, n)
	} else {
		idx = idx[:n]
	}
	for i := range idx {
		idx[i] = i
	}
	for k := 0; k < sample; k++ {
		j := k + int(r%uint64(n-k))
		r = splitmix64(r)
		idx[k], idx[j] = idx[j], idx[k]
		ms := f.meshes[idx[k]]
		if ms.failed.Load() {
			continue
		}
		if s := f.cfg.Policy(f.stat(ms), app); best == nil || s < bestScore {
			best, bestScore = ms, s
		}
	}
	if best == nil {
		// Every sampled candidate was out of service: fall back to a full
		// scan so a fleet with any live mesh never refuses an arrival at
		// the routing stage.
		for _, ms := range f.meshes {
			if ms.failed.Load() {
				continue
			}
			if s := f.cfg.Policy(f.stat(ms), app); best == nil || s < bestScore {
				best, bestScore = ms, s
			}
		}
	}
	return best
}

// spillOrder returns every mesh except the one already tried, sorted by
// ascending policy score — the overflow path's visiting order. Runs off
// the hot path (only after a capacity rejection), so it scores all
// siblings rather than sampling.
func (f *Fleet) spillOrder(app *model.Application, tried int) []*mesh {
	type scored struct {
		ms    *mesh
		score float64
	}
	out := make([]scored, 0, len(f.meshes)-1)
	for _, ms := range f.meshes {
		if ms.id == tried || ms.failed.Load() {
			continue
		}
		out = append(out, scored{ms, f.cfg.Policy(f.stat(ms), app)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score < out[j].score
		}
		return out[i].ms.id < out[j].ms.id
	})
	meshes := make([]*mesh, len(out))
	for i, s := range out {
		meshes[i] = s.ms
	}
	return meshes
}
