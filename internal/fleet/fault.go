package fleet

import (
	"errors"
	"time"

	"rtsm/internal/manager"
)

// Fleet-level fault propagation: a mesh that loses its control processor
// (or enough of its fabric that keeping it in rotation is pointless) is
// taken out of service as a unit. FailMesh flips the mesh's failed flag —
// the placement router and the cross-mesh spill path skip it from that
// instant, and the rebalancer neither feeds nor drains it — and then
// drains every resident to the surviving meshes through the same
// stop-and-readmit protocol the rebalancer uses, so each resident is
// reserved on at most one mesh at every instant of the failover.

// MeshFaultReport summarises one mesh failure and its drain.
type MeshFaultReport struct {
	// Failed is false when nothing changed: the mesh was already failed
	// or the index is unknown.
	Failed bool
	// Residents is how many applications lived on the mesh at the fault.
	// Drained of them were re-admitted on surviving siblings; the rest
	// were not kept by this drain (every survivor refused, or a
	// concurrent stop/relocation owned the resident).
	Residents int
	Drained   int
	// Recover is the wall time from the fault to the last resident's
	// outcome — the fleet's time-to-recover for this mesh.
	Recover time.Duration
}

// Dropped is the residents the drain did not keep running anywhere.
func (r MeshFaultReport) Dropped() int { return r.Residents - r.Drained }

// FailMesh takes mesh id out of service and drains its residents to the
// surviving meshes, best policy score first. New arrivals stop routing
// or spilling to the mesh immediately; its pipeline keeps draining
// already-queued work (those admissions still land on the failed mesh —
// a real failover would fence the queue too, but the fleet cannot
// retract work the mesh's workers already hold). Safe for concurrent
// use with Submit, Stop and the rebalancer.
func (f *Fleet) FailMesh(id int) MeshFaultReport {
	if id < 0 || id >= len(f.meshes) {
		return MeshFaultReport{}
	}
	ms := f.meshes[id]
	if !ms.failed.CompareAndSwap(false, true) {
		return MeshFaultReport{}
	}
	start := time.Now()
	rep := MeshFaultReport{Failed: true}
	for _, ad := range ms.m.Running() {
		rep.Residents++
		if f.drainResident(ad.App.Name, ms) {
			rep.Drained++
		}
	}
	rep.Recover = time.Since(start)
	return rep
}

// RestoreMesh returns a failed mesh to service, reporting whether
// anything changed. Its manager kept running throughout (the failure is
// a routing-level verdict), so restored capacity is admissible on the
// next arrival.
func (f *Fleet) RestoreMesh(id int) bool {
	if id < 0 || id >= len(f.meshes) {
		return false
	}
	return f.meshes[id].failed.CompareAndSwap(true, false)
}

// drainResident moves one resident off a failed mesh: claim its
// placement, stop it on the failed mesh, and re-admit it on the
// surviving meshes in ascending policy-score order. It mirrors the
// rebalancer's relocate, with two differences: the target list is every
// survivor (a failover wants the resident anywhere alive, not just on
// the single coldest mesh), and there is no failback — the origin is
// dead, so when every survivor refuses, the resident is dropped and
// counted rather than re-admitted onto the failed mesh.
func (f *Fleet) drainResident(name string, from *mesh) bool {
	v, ok := f.placements.Load(name)
	if !ok {
		return false
	}
	pl := v.(*placement)
	if !pl.state.CompareAndSwap(placeResident, placeRelocating) {
		return false // a concurrent stop or relocation owns the verdict
	}
	if pl.mesh.Load() != int32(from.id) {
		// Moved elsewhere since we listed it — it already survived.
		pl.state.Store(placeResident)
		return false
	}
	ad, okAd := func() (*admissionRef, bool) {
		for _, a := range from.m.Running() {
			if a.App.Name == name {
				return &admissionRef{app: a.App, lib: a.Library()}, true
			}
		}
		return nil, false
	}()
	if !okAd {
		if from.m.StateOf(name) == manager.AppUnknown {
			f.placements.Delete(name)
			f.stats.meshEvictions.Add(1)
			return false
		}
		// Mid-preemption on the failed mesh: its planner resolves the
		// claim; the reconciliation sweep retires the entry if it ends in
		// eviction.
		pl.state.Store(placeResident)
		return false
	}
	if err := from.m.Stop(name); err != nil {
		if errors.Is(err, manager.ErrRelocating) {
			pl.state.Store(placeResident)
			return false
		}
		f.placements.Delete(name)
		f.stats.meshEvictions.Add(1)
		return false
	}
	// The resident holds no reservations anywhere; the relocating entry
	// keeps its name claimed while the survivors are probed.
	for _, sib := range f.spillOrder(ad.app, from.id) {
		if out := sib.m.Admit(ad.app, ad.lib); out.Admitted {
			pl.mesh.Store(int32(sib.id))
			pl.state.Store(placeResident)
			f.stats.drained.Add(1)
			return true
		} else if !manager.IsRetryableRejection(out.Err) {
			break // structural: every survivor would refuse identically
		}
	}
	// Every survivor refused: the resident is gone.
	f.placements.Delete(name)
	f.stats.drainDrops.Add(1)
	return false
}
