// Package fleet federates N independent manager.Manager instances — one
// per NoC mesh — behind a single admission front door. The paper's
// run-time spatial mapper manages one mesh; a deployment that must serve
// "as fast as the hardware allows" scales horizontally instead, and the
// fleet is that horizontal layer: a placement router scores sibling
// meshes per arrival (utilization-, energy- and QoS-class-aware, sampled
// power-of-two-choices so routing stays O(1)), cross-mesh overflow spills
// capacity rejections to the next-best sibling before finally rejecting,
// and a background rebalancer drains best-effort residents from hot
// meshes to cold ones.
//
// Each mesh keeps its own region locks, epochs, template pools and
// batching; the fleet adds no shared mutable state on the admission hot
// path — the router reads per-mesh atomic load estimates
// (manager.LoadEstimate) and the only cross-mesh structure is a
// sync.Map of name→placement used for duplicate detection and the
// exactly-one-mesh residency invariant.
package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"rtsm/internal/manager"
	"rtsm/internal/model"
)

// MeshConfig describes one member mesh: its manager (already constructed
// over its own platform, possibly heterogeneous in size and region
// partition) and the pipeline in front of it.
type MeshConfig struct {
	// Manager owns the mesh. Required.
	Manager *manager.Manager
	// Workers is the mesh pipeline's worker count (min 1).
	Workers int
	// Queue is the mesh pipeline's queue depth (min 1).
	Queue int
	// Batch enables the mesh pipeline's batched admission path with the
	// given drain size (≤ 1 = per-item admission).
	Batch int
}

// Config tunes the fleet's router.
type Config struct {
	// Policy scores candidate meshes per arrival; nil selects
	// DefaultPolicy.
	Policy Policy
	// Sample is how many distinct meshes the router scores per arrival
	// (power-of-d-choices); 0 selects 2, the classic power-of-two. Values
	// ≥ the mesh count score every mesh.
	Sample int
	// Seed perturbs the router's sampling sequence so distinct fleets
	// don't sample in lockstep.
	Seed int64
	// SpillMargin gates the overflow path: a capacity-rejected arrival
	// only spills to siblings whose policy score is at least this much
	// better than the rejecting mesh's. 0 spills to every sibling (a
	// uniformly saturated fleet still probes each member before the
	// final rejection); positive values skip siblings that are just as
	// hot — on a fleet near uniform saturation most spill attempts are
	// doomed full mapping rounds, and the margin converts them into
	// immediate rejections.
	SpillMargin float64
	// RebalanceGap overrides DefaultRebalanceGap: the hottest-to-coldest
	// utilization spread below which rebalance rounds do nothing.
	RebalanceGap float64
	// RebalanceMoves overrides DefaultRebalanceMoves: how many residents
	// one rebalance round may move.
	RebalanceMoves int
}

// Outcome is a manager outcome annotated with the fleet's routing: which
// mesh ultimately served (or last refused) the arrival and how many
// cross-mesh spill attempts it took to get there.
type Outcome struct {
	manager.Outcome
	// Mesh is the index (into the fleet's construction order) of the
	// mesh that admitted the application, or the last mesh tried when
	// rejected.
	Mesh int
	// Spills counts cross-mesh overflow attempts: 0 when the routed mesh
	// answered, n when the arrival was re-tried on n siblings after a
	// retryable rejection.
	Spills int
}

// placement tracks which mesh an application lives on. It is the fleet's
// only cross-mesh mutable state: LoadOrStore on the name gives duplicate
// detection, and the state machine (pending → resident → relocating →
// resident, or → stopped) makes residency transfers race-free — exactly
// one of Stop and the rebalancer can claim a resident at a time, so an
// application is reserved on at most one mesh at every instant.
type placement struct {
	mesh  atomic.Int32
	state atomic.Int32
}

// placement states.
const (
	placePending    = int32(iota) // submitted, outcome not yet delivered
	placeResident                 // admitted; mesh index is authoritative
	placeRelocating               // claimed by the rebalancer
	placeStopped                  // claimed by Stop; entry about to vanish
)

// mesh is one member: the manager plus its pipeline and cached load
// pointer.
type mesh struct {
	id   int
	m    *manager.Manager
	pipe *manager.Pipeline
	load *manager.LoadEstimate
	// workers is the pipeline's worker count, for queue-pressure
	// normalization in MeshStat.
	workers int
	// inFlight counts admissions handed to this mesh whose outcome has
	// not yet been delivered — queued, mapping, or spilling through it.
	// The router reads it so backpressure on one mesh's bounded pipeline
	// queue diverts arrivals to idle siblings instead of blocking the
	// submitter.
	inFlight atomic.Int64
	// failed marks the mesh out of service (FailMesh): the router and
	// the spill path skip it and the rebalancer neither feeds nor drains
	// it — FailMesh's own drain owns moving its residents out.
	failed atomic.Bool
}

// Fleet is the multi-mesh federation. Construct with New, admit with
// Submit (pipelined) or Admit (synchronous), stop residents with Stop,
// rebalance with RebalanceOnce or StartRebalancer, and shut down with
// Close.
type Fleet struct {
	cfg    Config
	meshes []*mesh

	// placements maps application name → *placement for every
	// application currently submitted or resident anywhere in the fleet.
	placements sync.Map

	// rngState drives the lock-free sampling sequence (splitmix64).
	rngState atomic.Uint64

	// shepherds tracks the per-arrival goroutines that watch mesh
	// outcomes and run the spill path; Close waits for them.
	shepherds sync.WaitGroup

	closed atomic.Bool

	rebalanceMu   sync.Mutex
	rebalanceStop chan struct{}
	rebalanceDone chan struct{}

	stats fleetCounters
}

// fleetCounters aggregates fleet-level events (mesh-level stats live in
// each manager). All atomic: bumped from shepherds and the rebalancer.
type fleetCounters struct {
	submitted       atomic.Uint64
	spills          atomic.Uint64
	spillAdmits     atomic.Uint64
	overflowRejects atomic.Uint64
	relocations     atomic.Uint64
	relocFailbacks  atomic.Uint64
	relocDrops      atomic.Uint64
	meshEvictions   atomic.Uint64
	drained         atomic.Uint64
	drainDrops      atomic.Uint64
}

// Stats is a point-in-time snapshot of the fleet's routing counters.
type Stats struct {
	// Submitted counts arrivals accepted by Submit (duplicates and
	// post-Close submissions excluded).
	Submitted uint64
	// Spills counts cross-mesh overflow attempts (one per sibling tried).
	Spills uint64
	// SpillAdmits counts arrivals admitted by a sibling after their
	// routed mesh refused.
	SpillAdmits uint64
	// OverflowRejects counts arrivals rejected after every eligible mesh
	// refused.
	OverflowRejects uint64
	// Relocations counts residents moved hot→cold by the rebalancer.
	Relocations uint64
	// RelocFailbacks counts relocation attempts that failed on the cold
	// mesh and re-admitted the resident on its origin.
	RelocFailbacks uint64
	// RelocDrops counts residents lost because both the target and the
	// origin refused re-admission (the mesh filled up mid-move).
	RelocDrops uint64
	// MeshEvictions counts placements retired because a mesh's own
	// preemption planner evicted the resident (discovered by the
	// reconciliation sweep or by a rebalance move racing the eviction).
	MeshEvictions uint64
	// Drained counts residents a FailMesh drain re-admitted on a
	// surviving sibling; DrainDrops counts those every survivor refused.
	Drained    uint64
	DrainDrops uint64
}

// Stats snapshots the fleet's routing counters.
func (f *Fleet) Stats() Stats {
	return Stats{
		Submitted:       f.stats.submitted.Load(),
		Spills:          f.stats.spills.Load(),
		SpillAdmits:     f.stats.spillAdmits.Load(),
		OverflowRejects: f.stats.overflowRejects.Load(),
		Relocations:     f.stats.relocations.Load(),
		RelocFailbacks:  f.stats.relocFailbacks.Load(),
		RelocDrops:      f.stats.relocDrops.Load(),
		MeshEvictions:   f.stats.meshEvictions.Load(),
		Drained:         f.stats.drained.Load(),
		DrainDrops:      f.stats.drainDrops.Load(),
	}
}

// New builds a fleet over the given meshes. Each mesh gets its own
// pipeline sized per its MeshConfig; the managers are owned by the fleet
// from here on (Close shuts their pipelines down). At least one mesh is
// required.
func New(cfg Config, meshes ...MeshConfig) (*Fleet, error) {
	if len(meshes) == 0 {
		return nil, fmt.Errorf("fleet: at least one mesh is required")
	}
	if cfg.Policy == nil {
		cfg.Policy = DefaultPolicy
	}
	if cfg.Sample <= 0 {
		cfg.Sample = 2
	}
	f := &Fleet{cfg: cfg}
	f.rngState.Store(uint64(cfg.Seed)*0x9e3779b97f4a7c15 + 1)
	for i, mc := range meshes {
		if mc.Manager == nil {
			return nil, fmt.Errorf("fleet: mesh %d has no manager", i)
		}
		workers := mc.Workers
		if workers < 1 {
			workers = 1
		}
		queue := mc.Queue
		if queue < 1 {
			queue = workers
		}
		pipe := manager.NewPipeline(mc.Manager, workers, queue)
		if mc.Batch > 1 {
			pipe.SetBatch(mc.Batch)
		}
		f.meshes = append(f.meshes, &mesh{
			id:      i,
			m:       mc.Manager,
			pipe:    pipe,
			load:    mc.Manager.LoadEstimate(),
			workers: workers,
		})
	}
	return f, nil
}

// Meshes returns the number of member meshes.
func (f *Fleet) Meshes() int { return len(f.meshes) }

// Manager returns mesh i's manager, for per-mesh reporting.
func (f *Fleet) Manager(i int) *manager.Manager { return f.meshes[i].m }

// errOutcome delivers a fleet-level rejection without involving any mesh.
func errOutcome(app *model.Application, meshID int, err error) Outcome {
	return Outcome{
		Outcome: manager.Outcome{App: app.Name, Err: err,
			Priority: app.QoS.Priority},
		Mesh: meshID,
	}
}

// Submit routes the application to the best-scoring sampled mesh and
// enqueues it there, returning a channel that delivers exactly one fleet
// Outcome. On a retryable (capacity) rejection the arrival spills to the
// remaining meshes in score order — synchronously, one at a time — before
// the final rejection is delivered; structural rejections are final
// immediately. Duplicate names anywhere in the fleet are refused without
// touching a mesh.
func (f *Fleet) Submit(app *model.Application, lib *model.Library) (<-chan Outcome, error) {
	if f.closed.Load() {
		return nil, fmt.Errorf("fleet: closed")
	}
	pl := &placement{}
	if _, dup := f.placements.LoadOrStore(app.Name, pl); dup {
		return nil, fmt.Errorf("fleet: application %q already submitted", app.Name)
	}
	target := f.route(app)
	if target == nil {
		f.placements.Delete(app.Name)
		return nil, fmt.Errorf("fleet: no mesh in service")
	}
	pl.mesh.Store(int32(target.id))
	target.inFlight.Add(1)
	ch, err := target.pipe.Submit(app, lib)
	if err != nil {
		target.inFlight.Add(-1)
		f.placements.Delete(app.Name)
		return nil, err
	}
	f.stats.submitted.Add(1)
	done := make(chan Outcome, 1)
	f.shepherds.Add(1)
	go f.shepherd(app, lib, pl, target, ch, done)
	return done, nil
}

// TrySubmit is Submit without the blocking: it reports false — shedding
// the arrival — when the routed mesh's bounded queue is full, the name
// is a duplicate, no mesh is in service or the fleet closed. A
// full-queue refusal is counted as shed in the routed mesh's manager
// stats (see manager.Pipeline.TrySubmit); the arrival does not probe
// siblings, because under saturation every extra probe is another
// blocked submitter — the streaming front-end's shed-or-DLQ machinery
// owns the retry policy instead.
func (f *Fleet) TrySubmit(app *model.Application, lib *model.Library) (<-chan Outcome, bool) {
	if f.closed.Load() {
		return nil, false
	}
	pl := &placement{}
	if _, dup := f.placements.LoadOrStore(app.Name, pl); dup {
		return nil, false
	}
	target := f.route(app)
	if target == nil {
		f.placements.Delete(app.Name)
		return nil, false
	}
	pl.mesh.Store(int32(target.id))
	target.inFlight.Add(1)
	ch, ok := target.pipe.TrySubmit(app, lib)
	if !ok {
		target.inFlight.Add(-1)
		f.placements.Delete(app.Name)
		return nil, false
	}
	f.stats.submitted.Add(1)
	done := make(chan Outcome, 1)
	f.shepherds.Add(1)
	go f.shepherd(app, lib, pl, target, ch, done)
	return done, true
}

// Utilization is the mean reserved-capacity estimate across in-service
// meshes, in [0, 1] — the fleet-level signal the streaming front-end's
// dead-letter queue gates retries on. With every mesh failed it reports
// 1 (saturated), so nothing retries into a dead fleet.
func (f *Fleet) Utilization() float64 {
	var sum float64
	n := 0
	for _, ms := range f.meshes {
		if ms.failed.Load() {
			continue
		}
		sum += ms.load.Utilization()
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// NoteShed records an arrival dropped before any mesh was involved — a
// streaming front-end stage shed it (full class buffer, open breaker).
// It lands in mesh 0's manager stats: per-mesh attribution would be
// fiction for a drop that never routed, and fleet reports aggregate the
// member stats anyway, so the fleet-wide ledger stays whole.
func (f *Fleet) NoteShed(p model.Priority) { f.meshes[0].m.NoteShed(p) }

// NoteDLQRecovered records a dead-letter retry admitted somewhere in
// the fleet; accounted like NoteShed.
func (f *Fleet) NoteDLQRecovered() { f.meshes[0].m.NoteDLQRecovered() }

// NoteDLQExpired records a dead-letter entry dropped for good;
// accounted like NoteShed.
func (f *Fleet) NoteDLQExpired() { f.meshes[0].m.NoteDLQExpired() }

// Admit is the synchronous form of Submit: route, admit (spilling as
// needed) and return the single fleet outcome.
func (f *Fleet) Admit(app *model.Application, lib *model.Library) Outcome {
	ch, err := f.Submit(app, lib)
	if err != nil {
		return errOutcome(app, -1, err)
	}
	return <-ch
}

// shepherd watches the routed mesh's outcome and runs the overflow path:
// at most one final Outcome lands on done no matter how many meshes were
// tried. It owns the placement entry until the outcome is delivered.
func (f *Fleet) shepherd(app *model.Application, lib *model.Library,
	pl *placement, routed *mesh, ch <-chan manager.Outcome, done chan<- Outcome) {
	defer f.shepherds.Done()
	out := <-ch
	routed.inFlight.Add(-1)
	if out.Admitted {
		pl.state.Store(placeResident)
		done <- Outcome{Outcome: out, Mesh: routed.id}
		return
	}
	if !manager.IsRetryableRejection(out.Err) {
		// Structural: every mesh would refuse identically. Reject once.
		f.placements.Delete(app.Name)
		done <- Outcome{Outcome: out, Mesh: routed.id}
		return
	}
	// Capacity rejection: overflow to the remaining meshes, best score
	// first. Spill admissions run synchronously on the shepherd — the
	// arrival already lost its fast path, so the extra latency buys the
	// certainty that the outcome channel sees exactly one final verdict.
	spills := 0
	last := out
	lastMesh := routed.id
	refScore := f.cfg.Policy(f.stat(routed), app)
	for _, sib := range f.spillOrder(app, routed.id) {
		if m := f.cfg.SpillMargin; m > 0 &&
			f.cfg.Policy(f.stat(sib), app) >= refScore-m {
			// No meaningful headroom over the mesh that just refused:
			// trying would burn a mapping round to learn the same answer.
			continue
		}
		spills++
		f.stats.spills.Add(1)
		sib.inFlight.Add(1)
		o := sib.m.Admit(app, lib)
		sib.inFlight.Add(-1)
		last, lastMesh = o, sib.id
		if o.Admitted {
			pl.mesh.Store(int32(sib.id))
			pl.state.Store(placeResident)
			f.stats.spillAdmits.Add(1)
			done <- Outcome{Outcome: o, Mesh: sib.id, Spills: spills}
			return
		}
		if !manager.IsRetryableRejection(o.Err) {
			break
		}
	}
	f.stats.overflowRejects.Add(1)
	f.placements.Delete(app.Name)
	done <- Outcome{Outcome: last, Mesh: lastMesh, Spills: spills}
}

// Stop removes a resident application from whichever mesh it lives on.
// It returns manager.ErrRelocating (wrapped) while the rebalancer holds
// the resident mid-move; callers retry, exactly as with a single
// manager's preemption-claimed admissions.
func (f *Fleet) Stop(name string) error {
	v, ok := f.placements.Load(name)
	if !ok {
		return fmt.Errorf("fleet: application %q is not running", name)
	}
	pl := v.(*placement)
	if !pl.state.CompareAndSwap(placeResident, placeStopped) {
		switch pl.state.Load() {
		case placePending:
			return fmt.Errorf("fleet: application %q is still being admitted", name)
		case placeRelocating:
			return fmt.Errorf("fleet: application %q is %w", name, manager.ErrRelocating)
		default:
			return fmt.Errorf("fleet: application %q is not running", name)
		}
	}
	err := f.meshes[pl.mesh.Load()].m.Stop(name)
	if errors.Is(err, manager.ErrRelocating) {
		// The mesh's own preemption planner holds the resident: it will
		// either return to the running set (relocated) or be evicted.
		// Either way the app may still be resident right now, so the
		// placement must survive — forgetting it here would free the name
		// for resubmission while the original still holds reservations,
		// breaking the exactly-one-mesh invariant. Hand the claim back and
		// let the caller retry, exactly as with a single manager.
		pl.state.Store(placeResident)
		return err
	}
	// Success, or the mesh no longer knows the name (evicted between our
	// claim and the mesh Stop): in both cases the app holds no
	// reservations on its placement mesh, so the entry can go.
	f.placements.Delete(name)
	return err
}

// MeshOf reports which mesh the named application currently resides on
// (-1 when it is not resident anywhere). One staleness window exists: a
// resident evicted by its mesh's own preemption planner keeps its
// placement — and so reads as resident here — until the next
// reconciliation sweep (every RebalanceOnce round) or a Stop call
// observes the eviction and retires the entry.
func (f *Fleet) MeshOf(name string) int {
	v, ok := f.placements.Load(name)
	if !ok {
		return -1
	}
	pl := v.(*placement)
	if pl.state.Load() != placeResident && pl.state.Load() != placeRelocating {
		return -1
	}
	return int(pl.mesh.Load())
}

// Close stops the rebalancer, closes every mesh pipeline (draining queued
// admissions), and waits for in-flight shepherds to deliver their
// outcomes. Residents keep their reservations; stop them individually
// first if a clean ledger matters.
func (f *Fleet) Close() {
	if !f.closed.CompareAndSwap(false, true) {
		return
	}
	f.StopRebalancer()
	for _, ms := range f.meshes {
		ms.pipe.Close()
	}
	f.shepherds.Wait()
}
