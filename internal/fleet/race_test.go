package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"rtsm/internal/core"
	"rtsm/internal/manager"
	"rtsm/internal/model"
	"rtsm/internal/workload"
)

// TestRelocationNeverDoubleBooks is the -race stress for the residency
// invariant: two rebalancer goroutines and a stop/re-admit churn
// goroutine hammer a two-mesh fleet concurrently. A double-booking —
// one application reserved on two meshes at once — can only arise from
// a broken relocation claim, and it necessarily leaves an orphan: the
// fleet's placement knows one mesh, so the copy on the other mesh can
// never be stopped. The verdict is therefore deterministic end-state:
// after draining every resident through Fleet.Stop, every mesh ledger
// and every load estimate must read exactly zero. (A live cross-mesh
// scan cannot check this invariant — two sequential mesh scans straddle
// legitimate moves — which is why the check is structured this way.)
func TestRelocationNeverDoubleBooks(t *testing.T) {
	f := slotFleet(t, Config{Seed: 42, Sample: 2, RebalanceGap: 0.01, RebalanceMoves: 4}, 6, 6)
	defer f.Close()

	// Residents that rebalance rounds will shuttle.
	const residents = 5
	for i := 0; i < residents; i++ {
		app, lib := slotApp(fmt.Sprintf("res-%d", i), model.BestEffort)
		if out := f.Admit(app, lib); !out.Admitted {
			t.Fatalf("resident %d failed: %v", i, out.Err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Rebalancers: concurrent rounds must not trample each other's
	// claims (the placement CAS is what -race and the end-state check
	// exercise here).
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					f.RebalanceOnce()
				}
			}
		}()
	}
	// Churn: stops race the relocation claims; every legal answer is
	// success, ErrRelocating (claimed mid-move, retry), or not-running
	// (just stopped by a prior round and not yet re-admitted).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("res-%d", round%residents)
			err := f.Stop(name)
			switch {
			case err == nil:
				app, lib := slotApp(name, model.BestEffort)
				if out := f.Admit(app, lib); !out.Admitted {
					// Saturation mid-shuffle is legal; retried next pass.
					continue
				}
			case errors.Is(err, manager.ErrRelocating):
				// Claimed by a rebalance round: retry next pass.
			default:
				// Not running right now: a previous churn pass stopped it.
			}
		}
	}()

	for i := 0; i < 400; i++ {
		f.RebalanceOnce()
	}
	close(stop)
	wg.Wait()
	f.StopRebalancer()

	if st := f.Stats(); st.RelocDrops != 0 {
		// With 5 residents over 12 slots a relocation target can only
		// refuse if load accounting broke.
		t.Fatalf("rebalancer dropped %d residents on a half-empty fleet", st.RelocDrops)
	}
	// The load estimates must agree with the managers' ledgers.
	for i := 0; i < f.Meshes(); i++ {
		le := f.Manager(i).LoadEstimate()
		if got, want := le.Running(), int64(len(f.Manager(i).Running())); got != want {
			t.Errorf("mesh %d load estimate says %d running, ledger says %d", i, got, want)
		}
	}
	// Drain every surviving resident through the fleet; ErrRelocating
	// cannot persist once the rebalancers are quiet.
	for i := 0; i < residents; i++ {
		name := fmt.Sprintf("res-%d", i)
		if f.MeshOf(name) == -1 {
			continue // stopped by the churn goroutine and not re-admitted
		}
		if err := f.Stop(name); err != nil {
			t.Errorf("drain %s: %v", name, err)
		}
	}
	// Exactly-one-mesh residency, checked deterministically: if any app
	// was ever double-booked, its orphan copy is still reserved on some
	// mesh now — the fleet-level Stop cannot reach it.
	for i := 0; i < f.Meshes(); i++ {
		if left := f.Manager(i).Running(); len(left) != 0 {
			t.Errorf("mesh %d holds %d orphaned residents after full drain: %v",
				i, len(left), left[0].App.Name)
		}
		le := f.Manager(i).LoadEstimate()
		if le.Running() != 0 || le.UtilMilli() != 0 {
			t.Errorf("mesh %d load estimate not zero after drain: %d running, %d util",
				i, le.Running(), le.UtilMilli())
		}
	}
	checkLedgers(t, f)
}

// TestStopRacingMeshPreemptionNeverForgetsResidents is the -race stress
// for Fleet.Stop against a mesh's own preemption planner. While critical
// arrivals preempt best-effort residents (claiming them mesh-locally, so
// Stop answers ErrRelocating mid-claim), a churn goroutine hammers
// Fleet.Stop across the background set. The contract under fire: a Stop
// that returns ErrRelocating must leave the placement intact — the
// victim may be relocated back into the running set, and a fleet that
// forgot it would both misreport MeshOf and free the name for a
// duplicate residency. Verdict is deterministic end-state: every
// resident the meshes report must still be reachable through the fleet,
// and a full fleet-level drain must leave the ledger pristine.
func TestStopRacingMeshPreemptionNeverForgetsResidents(t *testing.T) {
	plat := workload.SyntheticPlatform(6, 6, 11)
	pristine := plat.Residual()
	m := manager.New(plat, core.Config{})
	// Several workers: the hammer goroutines' re-admissions must not
	// serialize behind the critical admissions, or no Stop ever lands
	// inside a preemption window.
	f, err := New(Config{Seed: 9}, MeshConfig{Manager: m, Workers: 4, Queue: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Small best-effort background: cheap to preempt, and scattered slack
	// keeps relocation (not just eviction) in play — the dangerous case is
	// precisely a victim that returns to the running set after Stop saw
	// ErrRelocating.
	mkBG := func(i int) (*model.Application, *model.Library) {
		app, lib := workload.Synthetic(workload.SynthOptions{
			Shape: workload.ShapeChain, Processes: 3, Seed: int64(i % 7),
			MaxUtil: 0.12, PeriodNs: 400_000,
		})
		app.Name = fmt.Sprintf("bg-%d", i)
		return app, lib
	}
	var bg []string
	for i := 0; i < 400; i++ {
		app, lib := mkBG(i)
		if out := f.Admit(app, lib); !out.Admitted {
			break
		}
		bg = append(bg, app.Name)
	}
	if len(bg) == 0 {
		t.Fatal("background never saturated the mesh")
	}

	stop := make(chan struct{})
	var relocObserved atomic.Uint64
	var wg sync.WaitGroup
	// Three hammers with interleaved strides: at any instant some are in
	// Stop while others are re-admitting, so Stops keep landing while a
	// critical admission holds victims claimed.
	for h := 0; h < 3; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			for i := h; ; i += 3 {
				select {
				case <-stop:
					return
				default:
				}
				idx := i % len(bg)
				err := f.Stop(bg[idx])
				switch {
				case err == nil:
					// Re-admit so the mesh stays saturated; saturation
					// rejections mid-storm are legal.
					app, lib := mkBG(idx)
					f.Admit(app, lib)
				case errors.Is(err, manager.ErrRelocating):
					relocObserved.Add(1)
				default:
					// Not running right now: stopped or evicted earlier,
					// or mid-re-admission by a sibling hammer.
				}
			}
		}(h)
	}

	// Overlapping critical arrivals keep preemption windows open across
	// the storm rather than one at a time.
	var crit []<-chan Outcome
	for i := 0; i < 16; i++ {
		app, lib := workload.Synthetic(workload.SynthOptions{
			Shape: workload.ShapeChain, Processes: 3 + i%2, Seed: int64(i),
			MaxUtil: 0.30, PeriodNs: 400_000, Priority: model.Critical,
		})
		app.Name = fmt.Sprintf("crit-%d", i)
		ch, err := f.Submit(app, lib)
		if err != nil {
			t.Fatal(err)
		}
		crit = append(crit, ch)
	}
	for _, ch := range crit {
		<-ch
	}
	close(stop)
	wg.Wait()

	if st := m.Stats(); st.Preemptions == 0 {
		t.Fatal("storm produced no preemption; the stress exercised nothing")
	}
	// Reconcile mesh-local evictions, then: the fleet must still know
	// every resident the mesh reports...
	f.RebalanceOnce()
	for _, ad := range m.Running() {
		if got := f.MeshOf(ad.App.Name); got != 0 {
			t.Errorf("resident %s forgotten by the fleet (MeshOf = %d)", ad.App.Name, got)
		}
	}
	// ...and a fleet-level drain must reach all of them.
	for _, ad := range m.Running() {
		if err := f.Stop(ad.App.Name); err != nil {
			t.Errorf("drain %s: %v", ad.App.Name, err)
		}
	}
	if left := m.Running(); len(left) != 0 {
		t.Fatalf("%d orphaned residents after full fleet drain: %s",
			len(left), left[0].App.Name)
	}
	if final := m.Residual(); !final.Equal(pristine) {
		d := pristine.Diff(final)
		t.Fatalf("ledger not pristine after drain: %d tiles, %d links drifted",
			len(d.Tiles), len(d.Links))
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	t.Logf("Stop observed ErrRelocating %d times; victims: %d preempted (%d relocated, %d evicted); mesh evictions reconciled: %d",
		relocObserved.Load(), m.Stats().Preemptions, m.Stats().Relocations,
		m.Stats().Evictions, f.Stats().MeshEvictions)
}
