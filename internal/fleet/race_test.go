package fleet

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"rtsm/internal/manager"
	"rtsm/internal/model"
)

// TestRelocationNeverDoubleBooks is the -race stress for the residency
// invariant: two rebalancer goroutines and a stop/re-admit churn
// goroutine hammer a two-mesh fleet concurrently. A double-booking —
// one application reserved on two meshes at once — can only arise from
// a broken relocation claim, and it necessarily leaves an orphan: the
// fleet's placement knows one mesh, so the copy on the other mesh can
// never be stopped. The verdict is therefore deterministic end-state:
// after draining every resident through Fleet.Stop, every mesh ledger
// and every load estimate must read exactly zero. (A live cross-mesh
// scan cannot check this invariant — two sequential mesh scans straddle
// legitimate moves — which is why the check is structured this way.)
func TestRelocationNeverDoubleBooks(t *testing.T) {
	f := slotFleet(t, Config{Seed: 42, Sample: 2, RebalanceGap: 0.01, RebalanceMoves: 4}, 6, 6)
	defer f.Close()

	// Residents that rebalance rounds will shuttle.
	const residents = 5
	for i := 0; i < residents; i++ {
		app, lib := slotApp(fmt.Sprintf("res-%d", i), model.BestEffort)
		if out := f.Admit(app, lib); !out.Admitted {
			t.Fatalf("resident %d failed: %v", i, out.Err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Rebalancers: concurrent rounds must not trample each other's
	// claims (the placement CAS is what -race and the end-state check
	// exercise here).
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					f.RebalanceOnce()
				}
			}
		}()
	}
	// Churn: stops race the relocation claims; every legal answer is
	// success, ErrRelocating (claimed mid-move, retry), or not-running
	// (just stopped by a prior round and not yet re-admitted).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("res-%d", round%residents)
			err := f.Stop(name)
			switch {
			case err == nil:
				app, lib := slotApp(name, model.BestEffort)
				if out := f.Admit(app, lib); !out.Admitted {
					// Saturation mid-shuffle is legal; retried next pass.
					continue
				}
			case errors.Is(err, manager.ErrRelocating):
				// Claimed by a rebalance round: retry next pass.
			default:
				// Not running right now: a previous churn pass stopped it.
			}
		}
	}()

	for i := 0; i < 400; i++ {
		f.RebalanceOnce()
	}
	close(stop)
	wg.Wait()
	f.StopRebalancer()

	if st := f.Stats(); st.RelocDrops != 0 {
		// With 5 residents over 12 slots a relocation target can only
		// refuse if load accounting broke.
		t.Fatalf("rebalancer dropped %d residents on a half-empty fleet", st.RelocDrops)
	}
	// The load estimates must agree with the managers' ledgers.
	for i := 0; i < f.Meshes(); i++ {
		le := f.Manager(i).LoadEstimate()
		if got, want := le.Running(), int64(len(f.Manager(i).Running())); got != want {
			t.Errorf("mesh %d load estimate says %d running, ledger says %d", i, got, want)
		}
	}
	// Drain every surviving resident through the fleet; ErrRelocating
	// cannot persist once the rebalancers are quiet.
	for i := 0; i < residents; i++ {
		name := fmt.Sprintf("res-%d", i)
		if f.MeshOf(name) == -1 {
			continue // stopped by the churn goroutine and not re-admitted
		}
		if err := f.Stop(name); err != nil {
			t.Errorf("drain %s: %v", name, err)
		}
	}
	// Exactly-one-mesh residency, checked deterministically: if any app
	// was ever double-booked, its orphan copy is still reserved on some
	// mesh now — the fleet-level Stop cannot reach it.
	for i := 0; i < f.Meshes(); i++ {
		if left := f.Manager(i).Running(); len(left) != 0 {
			t.Errorf("mesh %d holds %d orphaned residents after full drain: %v",
				i, len(left), left[0].App.Name)
		}
		le := f.Manager(i).LoadEstimate()
		if le.Running() != 0 || le.UtilMilli() != 0 {
			t.Errorf("mesh %d load estimate not zero after drain: %d running, %d util",
				i, le.Running(), le.UtilMilli())
		}
	}
	checkLedgers(t, f)
}
