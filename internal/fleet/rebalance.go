package fleet

import (
	"errors"
	"time"

	"rtsm/internal/manager"
	"rtsm/internal/model"
)

// DefaultRebalanceGap is the utilization spread (hottest minus coldest
// mesh) below which RebalanceOnce leaves the fleet alone: relocation
// costs a stop, a re-map and a commit per resident, so small imbalances
// are cheaper to leave than to fix.
const DefaultRebalanceGap = 0.15

// DefaultRebalanceMoves bounds how many residents one RebalanceOnce round
// moves. Rounds are cheap and the load estimate updates as each move
// commits, so small rounds converge without overshooting.
const DefaultRebalanceMoves = 2

// rebalanceGap returns the configured or default utilization spread
// threshold.
func (f *Fleet) rebalanceGap() float64 {
	if f.cfg.RebalanceGap > 0 {
		return f.cfg.RebalanceGap
	}
	return DefaultRebalanceGap
}

// rebalanceMoves returns the configured or default per-round move budget.
func (f *Fleet) rebalanceMoves() int {
	if f.cfg.RebalanceMoves > 0 {
		return f.cfg.RebalanceMoves
	}
	return DefaultRebalanceMoves
}

// RebalanceOnce runs one hot→cold relocation round and reports how many
// residents it moved. It finds the most- and least-utilized meshes; when
// their spread exceeds the rebalance gap it claims up to the move budget
// of best-effort residents on the hot mesh (never Standard or Critical —
// their placements are contracts, and moving them would trade a paying
// tenant's latency for a housekeeping win) and moves each one:
// stop on the hot mesh, admit on the cold one, fall back to re-admitting
// on the origin if the cold mesh refuses. The placement state machine
// (resident → relocating → resident) makes each move atomic against Stop
// and against concurrent rounds: a resident is reserved on at most one
// mesh at every instant, and anyone racing a move observes ErrRelocating
// rather than a half-moved application.
func (f *Fleet) RebalanceOnce() int {
	f.reconcile()
	if len(f.meshes) < 2 {
		return 0
	}
	var hot, cold *mesh
	var hotU, coldU float64
	for _, ms := range f.meshes {
		if ms.failed.Load() {
			continue // FailMesh's drain owns the failed mesh's residents
		}
		u := ms.load.Utilization()
		if hot == nil || u > hotU {
			hot, hotU = ms, u
		}
		if cold == nil || u < coldU {
			cold, coldU = ms, u
		}
	}
	if hot == cold || hotU-coldU < f.rebalanceGap() {
		return 0
	}
	moved := 0
	for _, ad := range hot.m.Running() {
		if moved >= f.rebalanceMoves() {
			break
		}
		if ad.Priority != model.BestEffort {
			continue
		}
		if f.relocate(ad.App.Name, hot, cold) {
			moved++
		}
	}
	return moved
}

// reconcile retires placements whose resident is no longer known to its
// placement mesh: the mesh's own preemption planner evicted it (victims
// that no relocation could refit vanish mesh-locally, without the fleet
// in the loop). Without this sweep an evicted best-effort resident would
// read as resident in MeshOf forever and its name would stay blocked
// from resubmission. Runs at the top of every RebalanceOnce round.
//
// The claim protocol makes the sweep safe against concurrent moves and
// stops: an entry is only deleted after winning the resident→stopped CAS
// and re-confirming, under that claim, that the mesh still does not know
// the name. The pre-CAS StateOf check could race a full relocation cycle
// (claim → move to a sibling → release), so the post-CAS recheck reads
// the possibly-updated mesh index and restores the claim when the
// resident turns out to be alive elsewhere.
func (f *Fleet) reconcile() {
	f.placements.Range(func(k, v any) bool {
		name := k.(string)
		pl := v.(*placement)
		if pl.state.Load() != placeResident {
			return true
		}
		if f.meshes[pl.mesh.Load()].m.StateOf(name) != manager.AppUnknown {
			return true
		}
		if !pl.state.CompareAndSwap(placeResident, placeStopped) {
			return true // claimed by Stop or a move; they own the verdict now
		}
		if f.meshes[pl.mesh.Load()].m.StateOf(name) != manager.AppUnknown {
			pl.state.Store(placeResident)
			return true
		}
		f.placements.Delete(name)
		f.stats.meshEvictions.Add(1)
		return true
	})
}

// relocate moves one resident from hot to cold, reporting success. On
// any pre-move race (resident stopped, already relocating, claimed by
// the hot mesh's preemption planner) it backs off without touching the
// resident.
func (f *Fleet) relocate(name string, hot, cold *mesh) bool {
	v, ok := f.placements.Load(name)
	if !ok {
		return false
	}
	pl := v.(*placement)
	if !pl.state.CompareAndSwap(placeResident, placeRelocating) {
		return false
	}
	if pl.mesh.Load() != int32(hot.id) {
		// The resident moved (or spilled) elsewhere since we listed it.
		pl.state.Store(placeResident)
		return false
	}
	ad, okAd := func() (*admissionRef, bool) {
		for _, a := range hot.m.Running() {
			if a.App.Name == name {
				return &admissionRef{app: a.App, lib: a.Library()}, true
			}
		}
		return nil, false
	}()
	if !okAd {
		// Not in the running set. Under our claim nothing else can move or
		// re-admit it, so StateOf is authoritative: unknown means the mesh
		// evicted it — retire the stale placement so the name frees up.
		if hot.m.StateOf(name) == manager.AppUnknown {
			f.placements.Delete(name)
			f.stats.meshEvictions.Add(1)
			return false
		}
		// Mid-preemption on the hot mesh: it may yet come back. Not ours
		// to move this round.
		pl.state.Store(placeResident)
		return false
	}
	if err := hot.m.Stop(name); err != nil {
		if errors.Is(err, manager.ErrRelocating) {
			// Claimed by the hot mesh's preemption planner: back off and
			// let it resolve (the reconciliation sweep retires the entry
			// if the victim ends up evicted).
			pl.state.Store(placeResident)
			return false
		}
		// Not running on the hot mesh anymore: evicted between our listing
		// and the Stop. Retire the stale placement under our claim.
		f.placements.Delete(name)
		f.stats.meshEvictions.Add(1)
		return false
	}
	// From here the resident holds no reservations anywhere; the
	// placement entry (state relocating) keeps its name claimed so no
	// duplicate submission can sneak in.
	if out := cold.m.Admit(ad.app, ad.lib); out.Admitted {
		pl.mesh.Store(int32(cold.id))
		pl.state.Store(placeResident)
		f.stats.relocations.Add(1)
		return true
	}
	// Cold mesh refused (it filled up since we sampled): put the
	// resident back where it was.
	if out := hot.m.Admit(ad.app, ad.lib); out.Admitted {
		pl.state.Store(placeResident)
		f.stats.relocFailbacks.Add(1)
		return false
	}
	// Both refused: the resident is gone. Count it — a silent drop would
	// read as "still running" forever.
	f.placements.Delete(name)
	f.stats.relocDrops.Add(1)
	return false
}

// admissionRef carries what a relocation needs from the origin mesh's
// admission record before Stop invalidates it.
type admissionRef struct {
	app *model.Application
	lib *model.Library
}

// StartRebalancer runs RebalanceOnce every interval until StopRebalancer
// or Close. A second call while one is running is a no-op.
func (f *Fleet) StartRebalancer(interval time.Duration) {
	if interval <= 0 {
		return
	}
	f.rebalanceMu.Lock()
	defer f.rebalanceMu.Unlock()
	if f.rebalanceStop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	f.rebalanceStop, f.rebalanceDone = stop, done
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				f.RebalanceOnce()
			}
		}
	}()
}

// StopRebalancer halts the background rebalancer and waits for the
// in-flight round, if any, to finish. Safe to call when none is running.
func (f *Fleet) StopRebalancer() {
	f.rebalanceMu.Lock()
	stop, done := f.rebalanceStop, f.rebalanceDone
	f.rebalanceStop, f.rebalanceDone = nil, nil
	f.rebalanceMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
