package csdf

import (
	"math/rand"
	"testing"
)

func TestBufferSizesSimpleChain(t *testing.T) {
	// fast → slow: small buffers suffice because the consumer is the
	// bottleneck either way.
	g := NewGraph("chain")
	a := g.AddActor("a", Vals(1))
	b := g.AddActor("b", Vals(10))
	ch := g.Connect(a, b, Vals(1), Vals(1), 0)
	res, err := BufferSizes(g, BufferOptions{TargetPeriod: 10, Tighten: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("target not met: period %v", res.Exec.Period)
	}
	if res.Capacities[ch] < 1 || res.Capacities[ch] > 3 {
		t.Errorf("capacity = %d, want small (1..3)", res.Capacities[ch])
	}
	_ = a
	_ = b
}

func TestBufferSizesSingleBufferOverlaps(t *testing.T) {
	// Under consume-at-start semantics a unit-rate producer/consumer pair
	// overlaps already at capacity 1: the consumer frees the slot the
	// moment it starts. Sizing must not inflate the buffer.
	g := NewGraph("overlap")
	a := g.AddActor("a", Vals(10))
	b := g.AddActor("b", Vals(10))
	ch := g.Connect(a, b, Vals(1), Vals(1), 0)
	res, err := BufferSizes(g, BufferOptions{TargetPeriod: 10, Tighten: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("target not met: period %v", res.Exec.Period)
	}
	if res.Capacities[ch] != 1 {
		t.Errorf("capacity = %d, want 1", res.Capacities[ch])
	}
}

func TestBufferSizesGrowthBeyondLowerBound(t *testing.T) {
	// a produces bursts of 2 every 10 units; b drains one token per 5
	// units. At the lower-bound capacity (2) a cannot start its next
	// firing until b has drained the whole previous burst, so the
	// iteration period is 20. Capacity 4 lets a work ahead and reach the
	// rate-optimal period 10. The search must discover that growth.
	g := NewGraph("burst2")
	a := g.AddActor("a", Vals(10))
	b := g.AddActor("b", Vals(5))
	ch := g.Connect(a, b, Vals(2), Vals(1), 0)
	res, err := BufferSizes(g, BufferOptions{TargetPeriod: 10, Tighten: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("target not met: period %v", res.Exec.Period)
	}
	if res.Capacities[ch] < 3 {
		t.Errorf("capacity = %d, want > lower bound 2", res.Capacities[ch])
	}
}

func TestBufferSizesComputationBound(t *testing.T) {
	// An actor slower than the target period can never meet it; the
	// search must terminate and report Met=false rather than grow forever.
	g := NewGraph("slow")
	a := g.AddActor("a", Vals(1))
	b := g.AddActor("b", Vals(100))
	g.Connect(a, b, Vals(1), Vals(1), 0)
	res, err := BufferSizes(g, BufferOptions{TargetPeriod: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Error("computation-bound graph reported as meeting target")
	}
}

func TestBufferSizesRespectsFixedCapacity(t *testing.T) {
	// A pre-bounded channel is a hard constraint: it keeps its capacity.
	g := NewGraph("fixed")
	a := g.AddActor("a", Vals(10))
	b := g.AddActor("b", Vals(10))
	c := g.AddActor("c", Vals(10))
	fixed := g.Connect(a, b, Vals(1), Vals(1), 0)
	free := g.Connect(b, c, Vals(1), Vals(1), 0)
	g.Channel(fixed).Capacity = 1
	res, err := BufferSizes(g, BufferOptions{TargetPeriod: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, sized := res.Capacities[fixed]; sized {
		t.Error("fixed channel was resized")
	}
	if res.Capacities[free] == 0 {
		t.Error("free channel was not sized")
	}
	if !res.Met {
		t.Errorf("period %v, want <= 20", res.Exec.Period)
	}
}

func TestBufferSizesMultirate(t *testing.T) {
	// Producer emits bursts of 80, consumer drains 8 at a time: capacity
	// must hold at least one burst.
	g := NewGraph("burst")
	a := g.AddActor("a", Vals(100))
	b := g.AddActor("b", Vals(9))
	ch := g.Connect(a, b, Vals(80), Vals(8), 0)
	res, err := BufferSizes(g, BufferOptions{TargetPeriod: 101, Tighten: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("target not met: period %v (deadlock=%v)", res.Exec.Period, res.Exec.Deadlocked)
	}
	if res.Capacities[ch] < 80 {
		t.Errorf("capacity = %d, want >= 80 (one burst)", res.Capacities[ch])
	}
}

func TestBufferSizesStructuralDeadlock(t *testing.T) {
	// A token-free cycle deadlocks regardless of buffering: hard error.
	g := NewGraph("dl")
	a := g.AddActor("a", Vals(1))
	b := g.AddActor("b", Vals(1))
	g.Connect(a, b, Vals(1), Vals(1), 0)
	g.Connect(b, a, Vals(1), Vals(1), 0)
	if _, err := BufferSizes(g, BufferOptions{TargetPeriod: 10}); err == nil {
		t.Error("structural deadlock not reported")
	}
}

func TestBufferSizesDoNotMutateInput(t *testing.T) {
	g := NewGraph("mut")
	a := g.AddActor("a", Vals(1))
	b := g.AddActor("b", Vals(1))
	ch := g.Connect(a, b, Vals(1), Vals(1), 0)
	if _, err := BufferSizes(g, BufferOptions{TargetPeriod: 2}); err != nil {
		t.Fatal(err)
	}
	if g.Channel(ch).Capacity != 0 {
		t.Error("input graph capacity mutated")
	}
}

func TestBufferSizesSufficiencyProperty(t *testing.T) {
	// Property: on random chains, installing the computed capacities into
	// the graph yields an execution that meets the target whenever the
	// sizing claimed Met.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(4)
		g := NewGraph("prop")
		ids := make([]ActorID, n)
		var slowest int64
		for i := range ids {
			w := int64(1 + rng.Intn(15))
			if w > slowest {
				slowest = w
			}
			ids[i] = g.AddActor("x", Vals(w))
		}
		var chans []ChannelID
		for i := 0; i+1 < n; i++ {
			chans = append(chans, g.Connect(ids[i], ids[i+1], Vals(1), Vals(1), 0))
		}
		target := float64(slowest) * 1.5
		res, err := BufferSizes(g, BufferOptions{TargetPeriod: target, Tighten: trial%2 == 0})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Met {
			t.Fatalf("trial %d: unit-rate chain must always meet 1.5× slowest; period %v", trial, res.Exec.Period)
		}
		for _, cid := range chans {
			g.Channel(cid).Capacity = res.Capacities[cid]
		}
		check, err := g.Execute(ExecOptions{WarmupIterations: 4, MeasureIterations: 8, Observe: -1, Source: -1})
		if err != nil {
			t.Fatal(err)
		}
		if check.Deadlocked || check.Period > target {
			t.Fatalf("trial %d: capacities insufficient: period %v > %v", trial, check.Period, target)
		}
	}
}
