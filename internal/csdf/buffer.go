package csdf

import (
	"fmt"
	"sort"
)

// BufferOptions configures buffer-capacity computation.
type BufferOptions struct {
	// TargetPeriod is the required steady-state time per graph iteration.
	// Zero asks only for deadlock freedom with the smallest buffers found.
	TargetPeriod float64
	// MaxRounds bounds the grow loop (0 means a generous default).
	MaxRounds int
	// Tighten enables the shrink pass that walks capacities back down per
	// channel after the target is met, trading analysis time for smaller
	// buffers.
	Tighten bool
	// Exec configures the self-timed runs used as the feasibility oracle.
	Exec ExecOptions
}

// BufferResult is the outcome of BufferSizes.
type BufferResult struct {
	// Capacities holds the computed capacity of every channel that was
	// not already bounded in the input graph.
	Capacities map[ChannelID]int64
	// Exec is the execution result with the final capacities installed.
	Exec *ExecResult
	// Met reports whether the target period was achieved. When false the
	// graph is computation-bound: growing buffers further cannot help, and
	// the mapping is infeasible at this throughput.
	Met bool
}

// BufferSizes computes channel capacities under which the graph sustains
// the target period, in the spirit of Wiggers, Bekooij and Smit (DAC 2007),
// which the paper's step 4 references for its buffer-capacity analysis.
//
// This implementation is a simulation-guided conservative search rather
// than the closed-form linear bounds of the cited work: capacities start at
// per-channel lower bounds, self-timed execution identifies the channel
// whose back-pressure blocks progress most, that channel grows, and the
// loop repeats until the target period holds. An optional tightening pass
// then shrinks each capacity to the smallest value that still meets the
// target. The result is therefore sufficient (safe) but not always the
// theoretical minimum; the substitution is recorded in DESIGN.md.
//
// Channels already bounded in the input graph keep their capacity and are
// treated as hard constraints.
func BufferSizes(g *Graph, opts BufferOptions) (*BufferResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 256
	}
	work := cloneForBuffers(g)
	free := make([]ChannelID, 0, len(g.Channels)) // channels we may size
	for _, c := range g.Channels {
		if c.Capacity == 0 {
			free = append(free, c.ID)
			work.Channels[c.ID].Capacity = lowerBound(c)
		}
	}

	meets := func(r *ExecResult) bool {
		if r.Deadlocked {
			return false
		}
		if opts.TargetPeriod <= 0 {
			return true
		}
		return r.Period <= opts.TargetPeriod
	}

	var last *ExecResult
	bestPeriod := -1.0
	sinceImprove := 0
	for round := 0; ; round++ {
		r, err := work.Execute(opts.Exec)
		if err != nil {
			return nil, err
		}
		last = r
		if meets(r) {
			break
		}
		if round >= opts.MaxRounds {
			break
		}
		// Growing buffers monotonically improves the period; if several
		// consecutive growths changed nothing, the graph is
		// computation-bound and further growth is pointless.
		if !r.Deadlocked {
			if bestPeriod < 0 || r.Period < bestPeriod {
				bestPeriod = r.Period
				sinceImprove = 0
			} else {
				sinceImprove++
				if sinceImprove >= 8 {
					break
				}
			}
		}
		grow := pickGrowth(r, free)
		if grow < 0 {
			// No sizable channel is exerting back-pressure: the graph is
			// computation-bound (or deadlocked structurally); growing
			// buffers cannot help.
			break
		}
		work.Channels[grow].Capacity += growthStep(g.Channels[grow], work.Channels[grow].Capacity)
	}

	if last.Deadlocked && noFullBlocks(last, free) {
		return nil, fmt.Errorf("csdf: graph %q deadlocks regardless of buffer sizes: %s", g.Name, last.DeadlockReport)
	}

	if opts.Tighten && meets(last) {
		last = tighten(work, free, opts, meets, last)
	}

	out := &BufferResult{Capacities: make(map[ChannelID]int64, len(free)), Exec: last, Met: meets(last)}
	for _, cid := range free {
		out.Capacities[cid] = work.Channels[cid].Capacity
	}
	return out, nil
}

// lowerBound is the smallest capacity under which both endpoints of the
// channel can complete at least their largest single phase.
func lowerBound(c *Channel) int64 {
	lb := c.Prod.Max()
	if m := c.Cons.Max(); m > lb {
		lb = m
	}
	if c.Initial > lb {
		lb = c.Initial
	}
	if lb == 0 {
		lb = 1
	}
	return lb
}

// growthStep doubles the capacity (at least one largest burst), so the
// grow loop converges in logarithmically many oracle runs; the tighten
// pass walks the overshoot back down.
func growthStep(c *Channel, cur int64) int64 {
	s := c.Prod.Max()
	if m := c.Cons.Max(); m > s {
		s = m
	}
	if cur > s {
		s = cur
	}
	if s <= 0 {
		s = 1
	}
	return s
}

func pickGrowth(r *ExecResult, free []ChannelID) ChannelID {
	best := ChannelID(-1)
	var bestBlocks int64
	for _, cid := range free {
		if b := r.FullBlocks[cid]; b > bestBlocks {
			best, bestBlocks = cid, b
		}
	}
	return best
}

func noFullBlocks(r *ExecResult, free []ChannelID) bool {
	for _, cid := range free {
		if r.FullBlocks[cid] > 0 {
			return false
		}
	}
	return true
}

// tighten shrinks each sizable channel to the smallest capacity that keeps
// the oracle satisfied, visiting the largest capacities first.
func tighten(work *Graph, free []ChannelID, opts BufferOptions, meets func(*ExecResult) bool, last *ExecResult) *ExecResult {
	order := append([]ChannelID(nil), free...)
	sort.Slice(order, func(i, j int) bool {
		ci, cj := work.Channels[order[i]].Capacity, work.Channels[order[j]].Capacity
		if ci != cj {
			return ci > cj
		}
		return order[i] < order[j]
	})
	for _, cid := range order {
		lo := lowerBound(work.Channels[cid])
		hi := work.Channels[cid].Capacity
		for lo < hi {
			mid := lo + (hi-lo)/2
			work.Channels[cid].Capacity = mid
			r, err := work.Execute(opts.Exec)
			if err == nil && meets(r) {
				hi = mid
				last = r
			} else {
				lo = mid + 1
			}
		}
		work.Channels[cid].Capacity = hi
	}
	// Re-run once so the returned ExecResult reflects the final state.
	if r, err := work.Execute(opts.Exec); err == nil {
		last = r
	}
	return last
}

// cloneForBuffers copies the graph with fresh Channel structs so capacity
// edits do not leak into the caller's graph. Actors are shared (immutable
// during analysis).
func cloneForBuffers(g *Graph) *Graph {
	q := &Graph{Name: g.Name, Actors: g.Actors, in: g.in, out: g.out}
	q.Channels = make([]*Channel, len(g.Channels))
	for i, c := range g.Channels {
		cc := *c
		q.Channels[i] = &cc
	}
	return q
}
