package csdf

import (
	"fmt"
	"strings"
)

// ActorID indexes an actor within its Graph.
type ActorID int

// ChannelID indexes a channel within its Graph.
type ChannelID int

// Actor is one CSDF actor. Its phase count is len(WCET); the rate patterns
// of all channels attached to the actor must have exactly that length.
type Actor struct {
	ID   ActorID
	Name string
	// WCET holds the worst-case execution time of each phase, in the time
	// unit of the graph (the mapper uses nanoseconds).
	WCET Pattern
}

// Phases returns the number of phases in the actor's cycle.
func (a *Actor) Phases() int { return len(a.WCET) }

// Channel is a FIFO connection between two actors.
type Channel struct {
	ID  ChannelID
	Src ActorID
	Dst ActorID
	// Prod[k] tokens are appended when the source actor completes its
	// phase k; Cons[k] tokens are removed when the destination actor
	// starts its phase k.
	Prod Pattern
	Cons Pattern
	// Initial tokens are present before execution starts.
	Initial int64
	// Capacity bounds the channel; 0 means unbounded. A bounded channel
	// exerts back-pressure: the source cannot start a phase unless the
	// tokens it will produce fit.
	Capacity int64
}

// Graph is a CSDF graph under construction or analysis. Use AddActor and
// Connect to build it, then Validate before running analyses.
type Graph struct {
	Name     string
	Actors   []*Actor
	Channels []*Channel

	in  [][]ChannelID // actor -> incoming channels
	out [][]ChannelID // actor -> outgoing channels
}

// NewGraph returns an empty named graph.
func NewGraph(name string) *Graph { return &Graph{Name: name} }

// AddActor appends an actor with the given per-phase WCET pattern and
// returns its ID.
func (g *Graph) AddActor(name string, wcet Pattern) ActorID {
	id := ActorID(len(g.Actors))
	g.Actors = append(g.Actors, &Actor{ID: id, Name: name, WCET: wcet})
	g.in = append(g.in, nil)
	g.out = append(g.out, nil)
	return id
}

// Connect adds a channel from src to dst with the given production and
// consumption patterns and initial token count, and returns its ID.
func (g *Graph) Connect(src, dst ActorID, prod, cons Pattern, initial int64) ChannelID {
	id := ChannelID(len(g.Channels))
	g.Channels = append(g.Channels, &Channel{
		ID: id, Src: src, Dst: dst, Prod: prod, Cons: cons, Initial: initial,
	})
	g.out[src] = append(g.out[src], id)
	g.in[dst] = append(g.in[dst], id)
	return id
}

// Actor returns the actor with the given ID.
func (g *Graph) Actor(id ActorID) *Actor { return g.Actors[id] }

// Channel returns the channel with the given ID.
func (g *Graph) Channel(id ChannelID) *Channel { return g.Channels[id] }

// In returns the IDs of channels entering actor a.
func (g *Graph) In(a ActorID) []ChannelID { return g.in[a] }

// Out returns the IDs of channels leaving actor a.
func (g *Graph) Out(a ActorID) []ChannelID { return g.out[a] }

// ActorByName returns the first actor with the given name, or nil.
func (g *Graph) ActorByName(name string) *Actor {
	for _, a := range g.Actors {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Validate checks structural sanity: every actor has at least one phase,
// all rates are non-negative, and every channel's rate patterns match the
// phase counts of its endpoints.
func (g *Graph) Validate() error {
	for _, a := range g.Actors {
		if a.Phases() == 0 {
			return fmt.Errorf("csdf: actor %q has no phases", a.Name)
		}
		for _, w := range a.WCET {
			if w < 0 {
				return fmt.Errorf("csdf: actor %q has negative WCET", a.Name)
			}
		}
	}
	for _, c := range g.Channels {
		src, dst := g.Actors[c.Src], g.Actors[c.Dst]
		if len(c.Prod) != src.Phases() {
			return fmt.Errorf("csdf: channel %d: production pattern has %d phases, source %q has %d",
				c.ID, len(c.Prod), src.Name, src.Phases())
		}
		if len(c.Cons) != dst.Phases() {
			return fmt.Errorf("csdf: channel %d: consumption pattern has %d phases, destination %q has %d",
				c.ID, len(c.Cons), dst.Name, dst.Phases())
		}
		for _, v := range c.Prod {
			if v < 0 {
				return fmt.Errorf("csdf: channel %d has negative production rate", c.ID)
			}
		}
		for _, v := range c.Cons {
			if v < 0 {
				return fmt.Errorf("csdf: channel %d has negative consumption rate", c.ID)
			}
		}
		if c.Prod.Sum() == 0 && c.Cons.Sum() == 0 {
			return fmt.Errorf("csdf: channel %d transfers no tokens", c.ID)
		}
		if c.Initial < 0 {
			return fmt.Errorf("csdf: channel %d has negative initial tokens", c.ID)
		}
		if c.Capacity < 0 {
			return fmt.Errorf("csdf: channel %d has negative capacity", c.ID)
		}
	}
	return nil
}

// String renders the graph topology for debugging and for regenerating the
// paper's Figure 3.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CSDF %q: %d actors, %d channels\n", g.Name, len(g.Actors), len(g.Channels))
	for _, a := range g.Actors {
		fmt.Fprintf(&b, "  actor %-14s wcet=%s\n", a.Name, a.WCET)
	}
	for _, c := range g.Channels {
		cap := "∞"
		if c.Capacity > 0 {
			cap = fmt.Sprintf("%d", c.Capacity)
		}
		fmt.Fprintf(&b, "  %s -%s/%s-> %s (init=%d, cap=%s)\n",
			g.Actors[c.Src].Name, c.Prod, c.Cons, g.Actors[c.Dst].Name, c.Initial, cap)
	}
	return b.String()
}
