package csdf

import (
	"container/heap"
	"fmt"
	"strings"
)

// ExecOptions configures self-timed execution.
type ExecOptions struct {
	// WarmupIterations are executed before measurement starts, letting the
	// self-timed schedule settle into its periodic regime.
	WarmupIterations int
	// MeasureIterations is the number of graph iterations the period is
	// averaged over.
	MeasureIterations int
	// Observe selects the actor whose completed iterations delimit the
	// measurement. Negative selects the default: the first actor with no
	// outgoing channels, or actor 0 if every actor has successors.
	Observe ActorID
	// Source overrides the actor whose firing starts define the beginning
	// of an iteration for latency accounting. Negative selects the first
	// actor with no incoming channels.
	Source ActorID
	// MaxEvents bounds the number of firing completions before execution
	// aborts (0 means a generous default). It guards against runaway
	// execution of inconsistent graphs.
	MaxEvents int
	// ExclusiveGroups lists sets of actors that cannot fire concurrently,
	// e.g. the actors mapped onto one processing tile. Within a group,
	// firings serialise; among ready members, the least-fired goes first
	// (round-robin fairness).
	ExclusiveGroups [][]ActorID
	// StaticOrders prescribes, per processor, a cyclic firing sequence:
	// entry k of the sequence is the only actor of that group allowed to
	// start the group's k-th firing (modulo the sequence length). This is
	// the static-order (temporal) schedule of Smit et al. (SoC 2005),
	// which the paper's spatial mapping is explicitly separated from.
	// Actors in a sequence are implicitly mutually exclusive. An actor
	// may appear in at most one sequence and must not additionally appear
	// in ExclusiveGroups.
	StaticOrders [][]ActorID
}

// DefaultExecOptions returns the options used when zero-valued fields are
// passed to Execute.
func DefaultExecOptions() ExecOptions {
	return ExecOptions{WarmupIterations: 4, MeasureIterations: 8, Observe: -1, Source: -1}
}

// ExecResult reports the outcome of self-timed execution.
type ExecResult struct {
	// Period is the steady-state time per graph iteration, averaged over
	// the measured iterations, in the graph's time unit.
	Period float64
	// Latency is the largest observed span from the source actor starting
	// an iteration's first firing to the observed actor completing that
	// iteration's last firing.
	Latency int64
	// Deadlocked reports that execution stopped with work remaining but no
	// actor able to fire.
	Deadlocked bool
	// DeadlockReport describes the blocked state when Deadlocked is true.
	DeadlockReport string
	// EmptyBlocks counts, per channel, firing attempts vetoed by a lack of
	// tokens; FullBlocks counts vetoes by a lack of space. Buffer sizing
	// uses FullBlocks to pick the channel to grow.
	EmptyBlocks map[ChannelID]int64
	FullBlocks  map[ChannelID]int64
	// Iterations is the number of complete iterations the observed actor
	// finished.
	Iterations int
	// Time is the simulated time at which execution stopped.
	Time int64
	// BusyTime[a] is the total time actor a spent firing; together with
	// Time it yields per-actor utilisation.
	BusyTime []int64
}

// Utilisation returns actor a's busy fraction over the whole run, in
// [0, 1]. It identifies throughput bottlenecks for refinement feedback.
func (r *ExecResult) Utilisation(a ActorID) float64 {
	if r.Time == 0 {
		return 0
	}
	return float64(r.BusyTime[a]) / float64(r.Time)
}

type execEvent struct {
	time  int64
	seq   int // tie-break for determinism
	actor ActorID
}

type eventHeap []execEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(execEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Execute runs the graph self-timed: every actor fires as soon as its
// current phase's input tokens are available, the space its production
// needs is free on all bounded output channels, and the actor itself is
// idle (no auto-concurrency). Tokens are consumed when a phase starts and
// produced when it completes, the conservative CSDF firing rule.
//
// Execution stops when the observed actor completes the requested warmup
// plus measurement iterations, on deadlock, or at the event bound.
func (g *Graph) Execute(opts ExecOptions) (*ExecResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	rv, err := Repetition(g)
	if err != nil {
		return nil, err
	}
	if opts.WarmupIterations == 0 && opts.MeasureIterations == 0 &&
		opts.Observe == 0 && opts.Source == 0 && opts.MaxEvents == 0 {
		groups := opts.ExclusiveGroups
		orders := opts.StaticOrders
		opts = DefaultExecOptions()
		opts.ExclusiveGroups = groups
		opts.StaticOrders = orders
	}
	if opts.WarmupIterations <= 0 && opts.MeasureIterations <= 0 {
		d := DefaultExecOptions()
		opts.WarmupIterations, opts.MeasureIterations = d.WarmupIterations, d.MeasureIterations
	}
	if opts.MeasureIterations <= 0 {
		opts.MeasureIterations = 1
	}
	if opts.MaxEvents <= 0 {
		opts.MaxEvents = 20_000_000
	}
	observe := opts.Observe
	if observe < 0 {
		observe = 0
		for _, a := range g.Actors {
			if len(g.out[a.ID]) == 0 {
				observe = a.ID
				break
			}
		}
	}
	source := opts.Source
	if source < 0 {
		source = 0
		for _, a := range g.Actors {
			if len(g.in[a.ID]) == 0 {
				source = a.ID
				break
			}
		}
	}

	n := len(g.Actors)
	totalIters := int64(opts.WarmupIterations + opts.MeasureIterations)
	firingCap := make([]int64, n) // stop actors that ran far enough ahead
	perIter := make([]int64, n)
	for i := range g.Actors {
		perIter[i] = rv.Firings(g, ActorID(i))
		firingCap[i] = (totalIters + 1) * perIter[i]
	}

	tokens := make([]int64, len(g.Channels))
	pending := make([]int64, len(g.Channels)) // space reserved by in-flight firings
	for i, c := range g.Channels {
		tokens[i] = c.Initial
	}
	fired := make([]int64, n)     // started firings
	done := make([]int64, n)      // completed firings
	busyUntil := make([]int64, n) // next time the actor is idle
	busyTime := make([]int64, n)
	groupOf := make([]int, n)
	for i := range groupOf {
		groupOf[i] = -1
	}
	for gi, group := range opts.ExclusiveGroups {
		for _, a := range group {
			groupOf[a] = gi
		}
	}
	groupActive := make([]int, len(opts.ExclusiveGroups))
	seqGroupOf := make([]int, n)
	for i := range seqGroupOf {
		seqGroupOf[i] = -1
	}
	for si, seq := range opts.StaticOrders {
		for _, a := range seq {
			seqGroupOf[a] = si
		}
	}
	seqPos := make([]int64, len(opts.StaticOrders))
	seqBusy := make([]int, len(opts.StaticOrders))
	res := &ExecResult{
		EmptyBlocks: make(map[ChannelID]int64),
		FullBlocks:  make(map[ChannelID]int64),
	}

	// Iteration bookkeeping for period and latency.
	iterDone := make([]int64, 0, totalIters)     // completion time of observed actor's iterations
	iterSrcStart := make([]int64, 0, totalIters) // start time of source's first firing per iteration

	var h eventHeap
	seq := 0
	now := int64(0)
	events := 0

	canFire := func(a ActorID) bool {
		if fired[a] >= firingCap[a] || busyUntil[a] > now {
			return false
		}
		if gi := groupOf[a]; gi >= 0 && groupActive[gi] > 0 {
			return false
		}
		if si := seqGroupOf[a]; si >= 0 {
			seq := opts.StaticOrders[si]
			if seqBusy[si] > 0 || seq[seqPos[si]%int64(len(seq))] != a {
				return false
			}
		}
		phase := fired[a] % int64(g.Actors[a].Phases())
		for _, cid := range g.in[a] {
			c := g.Channels[cid]
			if tokens[cid] < c.Cons.At(phase) {
				res.EmptyBlocks[cid]++
				return false
			}
		}
		for _, cid := range g.out[a] {
			c := g.Channels[cid]
			if c.Capacity > 0 && tokens[cid]+pending[cid]+c.Prod.At(phase) > c.Capacity {
				res.FullBlocks[cid]++
				return false
			}
		}
		return true
	}
	start := func(a ActorID) {
		phase := fired[a] % int64(g.Actors[a].Phases())
		if a == source && fired[a]%perIter[a] == 0 {
			iterSrcStart = append(iterSrcStart, now)
		}
		for _, cid := range g.in[a] {
			tokens[cid] -= g.Channels[cid].Cons.At(phase)
		}
		for _, cid := range g.out[a] {
			pending[cid] += g.Channels[cid].Prod.At(phase)
		}
		w := g.Actors[a].WCET.At(phase)
		fired[a]++
		busyUntil[a] = now + w
		busyTime[a] += w
		if gi := groupOf[a]; gi >= 0 {
			groupActive[gi]++
		}
		if si := seqGroupOf[a]; si >= 0 {
			seqBusy[si]++
			seqPos[si]++
		}
		heap.Push(&h, execEvent{time: now + w, seq: seq, actor: a})
		seq++
	}
	finish := func(a ActorID) {
		phase := done[a] % int64(g.Actors[a].Phases())
		for _, cid := range g.out[a] {
			p := g.Channels[cid].Prod.At(phase)
			pending[cid] -= p
			tokens[cid] += p
		}
		done[a]++
		if gi := groupOf[a]; gi >= 0 {
			groupActive[gi]--
		}
		if si := seqGroupOf[a]; si >= 0 {
			seqBusy[si]--
		}
		if a == observe && done[a]%perIter[a] == 0 {
			iterDone = append(iterDone, now)
		}
	}

	for {
		// Start every actor that can fire; consuming tokens can free
		// bounded-channel space, so iterate to a fixpoint. Within an
		// exclusive group, the ready member with the fewest started
		// firings goes first (round-robin fairness): a fixed scan order
		// would let one member monopolise the group.
		for {
			progressed := false
			for a := 0; a < n; a++ {
				if groupOf[a] >= 0 {
					continue
				}
				for canFire(ActorID(a)) {
					start(ActorID(a))
					progressed = true
				}
			}
			for gi, group := range opts.ExclusiveGroups {
				if groupActive[gi] > 0 {
					continue
				}
				best := ActorID(-1)
				for _, a := range group {
					if canFire(a) && (best < 0 || fired[a] < fired[best]) {
						best = a
					}
				}
				if best >= 0 {
					start(best)
					progressed = true
				}
			}
			if !progressed {
				break
			}
		}
		if int64(len(iterDone)) >= totalIters {
			break
		}
		if h.Len() == 0 {
			res.Deadlocked = true
			res.DeadlockReport = g.deadlockReport(fired, done, tokens, firingCap)
			break
		}
		ev := heap.Pop(&h).(execEvent)
		now = ev.time
		finish(ev.actor)
		// Drain all completions at the same instant before restarting.
		for h.Len() > 0 && h[0].time == now {
			ev = heap.Pop(&h).(execEvent)
			finish(ev.actor)
		}
		events++
		if events > opts.MaxEvents {
			return nil, fmt.Errorf("csdf: execution of %q exceeded %d events; graph may not settle", g.Name, opts.MaxEvents)
		}
	}

	res.Iterations = len(iterDone)
	res.Time = now
	res.BusyTime = busyTime
	if len(iterDone) > opts.WarmupIterations {
		m := len(iterDone) - 1
		w := opts.WarmupIterations
		if w >= m {
			w = 0
		}
		res.Period = float64(iterDone[m]-iterDone[w]) / float64(m-w)
	}
	for i := 0; i < len(iterDone) && i < len(iterSrcStart); i++ {
		if lat := iterDone[i] - iterSrcStart[i]; lat > res.Latency {
			res.Latency = lat
		}
	}
	return res, nil
}

func (g *Graph) deadlockReport(fired, done, tokens, cap []int64) string {
	var b strings.Builder
	b.WriteString("deadlock: ")
	for a, actor := range g.Actors {
		if fired[a] >= cap[a] {
			continue
		}
		phase := fired[a] % int64(actor.Phases())
		var why []string
		for _, cid := range g.in[a] {
			c := g.Channels[cid]
			if need := c.Cons.At(phase); tokens[cid] < need {
				why = append(why, fmt.Sprintf("needs %d tokens on %s→%s (has %d)",
					need, g.Actors[c.Src].Name, actor.Name, tokens[cid]))
			}
		}
		for _, cid := range g.out[a] {
			c := g.Channels[cid]
			if c.Capacity > 0 && tokens[cid]+c.Prod.At(phase) > c.Capacity {
				why = append(why, fmt.Sprintf("needs %d space on %s→%s (cap %d, %d full)",
					c.Prod.At(phase), actor.Name, g.Actors[c.Dst].Name, c.Capacity, tokens[cid]))
			}
		}
		if len(why) > 0 {
			fmt.Fprintf(&b, "%s blocked (%s); ", actor.Name, strings.Join(why, ", "))
		}
	}
	return b.String()
}
