package csdf

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz syntax. Router actors (names starting
// with "R(") are drawn as small circles like the paper's Figure 3; other
// actors as boxes annotated with their WCET pattern. Edges carry the
// production/consumption patterns, initial tokens and capacities.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [fontsize=10];\n", g.Name)
	for _, a := range g.Actors {
		if strings.HasPrefix(a.Name, "R(") {
			fmt.Fprintf(&b, "  a%d [label=\"R\\n%s\", shape=circle];\n", a.ID, a.WCET)
		} else {
			fmt.Fprintf(&b, "  a%d [label=\"%s\\n%s\", shape=box];\n", a.ID, escape(a.Name), a.WCET)
		}
	}
	for _, c := range g.Channels {
		var attrs []string
		label := fmt.Sprintf("%s/%s", c.Prod, c.Cons)
		if c.Capacity > 0 {
			label += fmt.Sprintf("\\ncap=%d", c.Capacity)
		}
		attrs = append(attrs, fmt.Sprintf("label=\"%s\"", label))
		if c.Initial > 0 {
			attrs = append(attrs, fmt.Sprintf("taillabel=\"•%d\"", c.Initial))
		}
		fmt.Fprintf(&b, "  a%d -> a%d [%s];\n", c.Src, c.Dst, strings.Join(attrs, ", "))
	}
	b.WriteString("}\n")
	return b.String()
}

func escape(s string) string {
	return strings.NewReplacer(`"`, `\"`, `\`, `\\`).Replace(s)
}
