package csdf

import (
	"strings"
	"testing"
)

// pipeline builds a simple SDF chain a -> b -> c with unit rates.
func pipeline(t *testing.T) (*Graph, ActorID, ActorID, ActorID) {
	t.Helper()
	g := NewGraph("pipeline")
	a := g.AddActor("a", Vals(10))
	b := g.AddActor("b", Vals(20))
	c := g.AddActor("c", Vals(5))
	g.Connect(a, b, Vals(1), Vals(1), 0)
	g.Connect(b, c, Vals(1), Vals(1), 0)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g, a, b, c
}

func TestGraphTopology(t *testing.T) {
	g, a, b, c := pipeline(t)
	if got := g.Out(a); len(got) != 1 || g.Channel(got[0]).Dst != b {
		t.Errorf("Out(a) = %v", got)
	}
	if got := g.In(c); len(got) != 1 || g.Channel(got[0]).Src != b {
		t.Errorf("In(c) = %v", got)
	}
	if g.ActorByName("b").ID != b {
		t.Error("ActorByName(b) wrong")
	}
	if g.ActorByName("zzz") != nil {
		t.Error("ActorByName of unknown name should be nil")
	}
}

func TestValidateRejectsRateMismatch(t *testing.T) {
	g := NewGraph("bad")
	a := g.AddActor("a", Vals(1, 1)) // two phases
	b := g.AddActor("b", Vals(1))
	g.Connect(a, b, Vals(1), Vals(1), 0) // prod pattern too short for a
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "production pattern") {
		t.Errorf("Validate = %v, want production pattern mismatch", err)
	}
}

func TestValidateRejectsNegative(t *testing.T) {
	g := NewGraph("bad")
	a := g.AddActor("a", Vals(1))
	b := g.AddActor("b", Vals(1))
	ch := g.Connect(a, b, Vals(1), Vals(1), 0)
	g.Channel(ch).Initial = -1
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted negative initial tokens")
	}
	g.Channel(ch).Initial = 0
	g.Channel(ch).Capacity = -2
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted negative capacity")
	}
}

func TestValidateRejectsEmptyActor(t *testing.T) {
	g := NewGraph("bad")
	g.AddActor("a", Pattern{})
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted actor without phases")
	}
}

func TestValidateRejectsZeroRateChannel(t *testing.T) {
	g := NewGraph("bad")
	a := g.AddActor("a", Vals(1))
	b := g.AddActor("b", Vals(1))
	g.Connect(a, b, Vals(0), Vals(0), 0)
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted channel that never transfers tokens")
	}
}

func TestGraphString(t *testing.T) {
	g, _, _, _ := pipeline(t)
	s := g.String()
	for _, want := range []string{"pipeline", "actor a", "a -⟨1⟩/⟨1⟩-> b", "cap=∞"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestDOTExport(t *testing.T) {
	g := NewGraph("dot")
	a := g.AddActor("A/D", Vals(4000))
	r := g.AddActor("R(x#0)", Vals(20))
	b := g.AddActor("Pfx", Rep(18, 18))
	g.Connect(a, r, Vals(80), Vals(1), 0)
	ch := g.Connect(r, b, Vals(1), Cat(Rep(8, 2), Vals(8, 0).Times(8)), 2)
	g.Channel(ch).Capacity = 8
	dot := g.DOT()
	for _, want := range []string{
		"digraph \"dot\"",
		"shape=circle", // router actor
		"shape=box",    // process actor
		"cap=8",
		"taillabel=\"•2\"", // initial tokens
		"a0 -> a1",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}
