package csdf

import (
	"fmt"
	"math/big"
)

// RepetitionVector holds, for each actor, the number of complete phase
// cycles it executes per graph iteration. Firings per iteration is
// Cycles[a] × Phases(a).
type RepetitionVector struct {
	// Cycles[a] is the cycle count of actor a in one graph iteration.
	Cycles []int64
}

// Firings returns the number of firings of actor a per graph iteration.
func (rv *RepetitionVector) Firings(g *Graph, a ActorID) int64 {
	return rv.Cycles[a] * int64(g.Actors[a].Phases())
}

// Repetition computes the repetition vector of the graph by solving the
// balance equations
//
//	Cycles[src] × Sum(Prod) = Cycles[dst] × Sum(Cons)
//
// for every channel. It returns an error if the graph is inconsistent (no
// non-trivial solution exists) or if some connected component contains an
// actor that never produces or consumes tokens on a channel.
func Repetition(g *Graph) (*RepetitionVector, error) {
	n := len(g.Actors)
	if n == 0 {
		return &RepetitionVector{}, nil
	}
	rat := make([]*big.Rat, n) // nil = unvisited
	// Breadth-first propagation of rational cycle counts per weakly
	// connected component, then scaling to the smallest integer vector.
	for start := 0; start < n; start++ {
		if rat[start] != nil {
			continue
		}
		rat[start] = big.NewRat(1, 1)
		queue := []ActorID{ActorID(start)}
		for len(queue) > 0 {
			a := queue[0]
			queue = queue[1:]
			visit := func(c *Channel) error {
				ps, cs := c.Prod.Sum(), c.Cons.Sum()
				if ps == 0 || cs == 0 {
					return fmt.Errorf("csdf: channel %d (%s→%s) has a zero total rate; graph cannot iterate",
						c.ID, g.Actors[c.Src].Name, g.Actors[c.Dst].Name)
				}
				var from, to ActorID
				var num, den int64
				if c.Src == a {
					from, to = c.Src, c.Dst
					num, den = ps, cs // cycles[dst] = cycles[src] * ps/cs
				} else {
					from, to = c.Dst, c.Src
					num, den = cs, ps
				}
				want := new(big.Rat).Mul(rat[from], big.NewRat(num, den))
				if rat[to] == nil {
					rat[to] = want
					queue = append(queue, to)
				} else if rat[to].Cmp(want) != 0 {
					return fmt.Errorf("csdf: inconsistent rates at channel %d (%s→%s): graph has no repetition vector",
						c.ID, g.Actors[c.Src].Name, g.Actors[c.Dst].Name)
				}
				return nil
			}
			for _, cid := range g.out[a] {
				if err := visit(g.Channels[cid]); err != nil {
					return nil, err
				}
			}
			for _, cid := range g.in[a] {
				if err := visit(g.Channels[cid]); err != nil {
					return nil, err
				}
			}
		}
	}
	// Scale to the least common denominator, then divide by the overall
	// GCD so the vector is the canonical smallest one.
	lcm := big.NewInt(1)
	for _, r := range rat {
		lcm = lcmInt(lcm, r.Denom())
	}
	ints := make([]*big.Int, n)
	gcd := new(big.Int)
	for i, r := range rat {
		v := new(big.Int).Mul(r.Num(), new(big.Int).Div(lcm, r.Denom()))
		ints[i] = v
		if i == 0 {
			gcd.Set(v)
		} else {
			gcd.GCD(nil, nil, gcd, v)
		}
	}
	out := make([]int64, n)
	for i, v := range ints {
		q := new(big.Int).Div(v, gcd)
		if !q.IsInt64() || q.Int64() <= 0 {
			return nil, fmt.Errorf("csdf: repetition count of actor %q out of range", g.Actors[i].Name)
		}
		out[i] = q.Int64()
	}
	// Verify every channel balances over one iteration; propagation
	// guarantees this for trees, verification covers cycles.
	for _, c := range g.Channels {
		if out[c.Src]*c.Prod.Sum() != out[c.Dst]*c.Cons.Sum() {
			return nil, fmt.Errorf("csdf: channel %d (%s→%s) does not balance",
				c.ID, g.Actors[c.Src].Name, g.Actors[c.Dst].Name)
		}
	}
	return &RepetitionVector{Cycles: out}, nil
}

func lcmInt(a, b *big.Int) *big.Int {
	g := new(big.Int).GCD(nil, nil, a, b)
	out := new(big.Int).Div(a, g)
	return out.Mul(out, b)
}
