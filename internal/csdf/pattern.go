// Package csdf implements cyclo-static dataflow (CSDF) graphs and the
// analyses the spatial mapper needs: repetition vectors, self-timed
// execution, throughput (iteration period), latency, and buffer-capacity
// computation.
//
// CSDF (Bilsen et al., IEEE TSP 1996) generalises synchronous dataflow:
// every actor cycles through a fixed sequence of phases, and its
// worst-case execution time and the token counts it produces and consumes
// may differ per phase. The paper (Hölzenspies et al., DATE 2008, §1.2 and
// §4.2) specifies every implementation of a process as a CSDF actor and
// verifies QoS constraints on the CSDF graph of the mapped application.
package csdf

import (
	"fmt"
	"strings"
)

// Pattern is a cyclo-static per-phase sequence of values: token rates on a
// channel end, or worst-case execution times of an actor. Index i holds the
// value for phase i; the pattern repeats cyclically.
//
// The paper's ⟨x^n, y^m⟩ notation denotes n phases of value x followed by m
// phases of value y; build such patterns with Rep, Vals and Cat, e.g. the
// Montium inverse-OFDM WCET ⟨1^64, 170, 1^52⟩ is
// Cat(Rep(1, 64), Vals(170), Rep(1, 52)).
type Pattern []int64

// Vals returns a pattern listing each phase value explicitly.
func Vals(vs ...int64) Pattern { return Pattern(vs) }

// Rep returns a pattern of n phases, each with value v (the paper's x^n).
func Rep(v int64, n int) Pattern {
	if n < 0 {
		panic("csdf: negative repetition")
	}
	p := make(Pattern, n)
	for i := range p {
		p[i] = v
	}
	return p
}

// Cat concatenates patterns into one.
func Cat(ps ...Pattern) Pattern {
	var n int
	for _, p := range ps {
		n += len(p)
	}
	out := make(Pattern, 0, n)
	for _, p := range ps {
		out = append(out, p...)
	}
	return out
}

// Times returns the pattern repeated n times (the paper's ⟨a,b⟩^n groups).
func (p Pattern) Times(n int) Pattern {
	if n < 0 {
		panic("csdf: negative repetition")
	}
	out := make(Pattern, 0, len(p)*n)
	for i := 0; i < n; i++ {
		out = append(out, p...)
	}
	return out
}

// Sum returns the total over one full cycle of the pattern.
func (p Pattern) Sum() int64 {
	var s int64
	for _, v := range p {
		s += v
	}
	return s
}

// Max returns the largest phase value, or 0 for an empty pattern.
func (p Pattern) Max() int64 {
	var m int64
	for _, v := range p {
		if v > m {
			m = v
		}
	}
	return m
}

// At returns the value for firing number i (zero-based), cycling through
// the pattern.
func (p Pattern) At(i int64) int64 {
	if len(p) == 0 {
		return 0
	}
	return p[int(i%int64(len(p)))]
}

// Scale returns a copy of the pattern with every value multiplied by k.
// It converts, for example, cycle counts into nanoseconds.
func (p Pattern) Scale(k int64) Pattern {
	out := make(Pattern, len(p))
	for i, v := range p {
		out[i] = v * k
	}
	return out
}

// ScaleDiv returns a copy with every value multiplied by num and divided by
// den, rounding up. Rounding up keeps worst-case execution times
// conservative when converting between clock domains.
func (p Pattern) ScaleDiv(num, den int64) Pattern {
	if den <= 0 {
		panic("csdf: non-positive denominator")
	}
	out := make(Pattern, len(p))
	for i, v := range p {
		out[i] = (v*num + den - 1) / den
	}
	return out
}

// String renders the pattern in the paper's run-length notation, e.g.
// ⟨1^64, 170, 1^52⟩.
func (p Pattern) String() string {
	if len(p) == 0 {
		return "⟨⟩"
	}
	var b strings.Builder
	b.WriteString("⟨")
	for i := 0; i < len(p); {
		j := i
		for j < len(p) && p[j] == p[i] {
			j++
		}
		if i > 0 {
			b.WriteString(", ")
		}
		if j-i == 1 {
			fmt.Fprintf(&b, "%d", p[i])
		} else {
			fmt.Fprintf(&b, "%d^%d", p[i], j-i)
		}
		i = j
	}
	b.WriteString("⟩")
	return b.String()
}
