package csdf

import (
	"math/rand"
	"strings"
	"testing"
)

func TestRepetitionSDFChain(t *testing.T) {
	// a produces 2/firing, b consumes 3/firing: q = (3, 2).
	g := NewGraph("chain")
	a := g.AddActor("a", Vals(1))
	b := g.AddActor("b", Vals(1))
	g.Connect(a, b, Vals(2), Vals(3), 0)
	rv, err := Repetition(g)
	if err != nil {
		t.Fatal(err)
	}
	if rv.Cycles[a] != 3 || rv.Cycles[b] != 2 {
		t.Errorf("Cycles = %v, want [3 2]", rv.Cycles)
	}
}

func TestRepetitionCSDFPhases(t *testing.T) {
	// a has 2 phases producing ⟨1,3⟩ (4 per cycle); b has 1 phase
	// consuming 2: q = (1, 2); firings: a 2, b 2.
	g := NewGraph("csdf")
	a := g.AddActor("a", Vals(1, 1))
	b := g.AddActor("b", Vals(1))
	g.Connect(a, b, Vals(1, 3), Vals(2), 0)
	rv, err := Repetition(g)
	if err != nil {
		t.Fatal(err)
	}
	if rv.Cycles[a] != 1 || rv.Cycles[b] != 2 {
		t.Errorf("Cycles = %v, want [1 2]", rv.Cycles)
	}
	if got := rv.Firings(g, a); got != 2 {
		t.Errorf("Firings(a) = %d, want 2", got)
	}
}

func TestRepetitionHiperlanShape(t *testing.T) {
	// The paper's HIPERLAN/2 pipeline on ARM implementations: prefix
	// removal fires once per symbol (80 in), frequency-offset correction
	// 8 times (8 in each), inverse OFDM once (64 in).
	g := NewGraph("hl2")
	src := g.AddActor("ad", Vals(4000))
	pfx := g.AddActor("pfx", Cat(Rep(18, 18)))
	frq := g.AddActor("frq", Vals(18, 32, 18))
	ofdm := g.AddActor("iofdm", Vals(66, 4250, 54))
	g.Connect(src, pfx, Vals(80), Cat(Rep(8, 2), Vals(8, 0).Times(8)), 0)
	g.Connect(pfx, frq, Cat(Rep(0, 2), Vals(0, 8).Times(8)), Vals(8, 0, 0), 0)
	g.Connect(frq, ofdm, Vals(0, 0, 8), Vals(64, 0, 0), 0)
	rv, err := Repetition(g)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 1, 8, 1}
	for i, w := range want {
		if rv.Cycles[i] != w {
			t.Errorf("Cycles[%d] = %d, want %d", i, rv.Cycles[i], w)
		}
	}
}

func TestRepetitionInconsistent(t *testing.T) {
	// Triangle with incompatible rates has no repetition vector.
	g := NewGraph("tri")
	a := g.AddActor("a", Vals(1))
	b := g.AddActor("b", Vals(1))
	c := g.AddActor("c", Vals(1))
	g.Connect(a, b, Vals(1), Vals(1), 0)
	g.Connect(b, c, Vals(1), Vals(1), 0)
	g.Connect(a, c, Vals(2), Vals(1), 0) // forces q_c = 2·q_a, conflicts
	if _, err := Repetition(g); err == nil || !strings.Contains(err.Error(), "inconsistent") {
		t.Errorf("Repetition = %v, want inconsistency error", err)
	}
}

func TestRepetitionDisconnected(t *testing.T) {
	g := NewGraph("two")
	a := g.AddActor("a", Vals(1))
	b := g.AddActor("b", Vals(1))
	c := g.AddActor("c", Vals(1))
	d := g.AddActor("d", Vals(1))
	g.Connect(a, b, Vals(2), Vals(1), 0)
	g.Connect(c, d, Vals(1), Vals(5), 0)
	rv, err := Repetition(g)
	if err != nil {
		t.Fatal(err)
	}
	// Components scale independently, then the global GCD normalises.
	if rv.Cycles[a]*2 != rv.Cycles[b] {
		t.Errorf("component 1 unbalanced: %v", rv.Cycles)
	}
	if rv.Cycles[c] != rv.Cycles[d]*5 {
		t.Errorf("component 2 unbalanced: %v", rv.Cycles)
	}
}

func TestRepetitionBalanceProperty(t *testing.T) {
	// Property: on random consistent chains the returned vector balances
	// every channel.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		g := NewGraph("rand")
		ids := make([]ActorID, n)
		for i := range ids {
			ids[i] = g.AddActor("x", Vals(int64(1+rng.Intn(9))))
		}
		for i := 0; i+1 < n; i++ {
			g.Connect(ids[i], ids[i+1],
				Vals(int64(1+rng.Intn(9))), Vals(int64(1+rng.Intn(9))), 0)
		}
		rv, err := Repetition(g)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, c := range g.Channels {
			if rv.Cycles[c.Src]*c.Prod.Sum() != rv.Cycles[c.Dst]*c.Cons.Sum() {
				t.Fatalf("trial %d: channel %d unbalanced", trial, c.ID)
			}
		}
		// Canonical form: the component-wise GCD is 1.
		gcd := rv.Cycles[0]
		for _, q := range rv.Cycles[1:] {
			for q != 0 {
				gcd, q = q, gcd%q
			}
		}
		if gcd != 1 {
			t.Fatalf("trial %d: vector %v not canonical", trial, rv.Cycles)
		}
	}
}

func TestRepetitionEmptyGraph(t *testing.T) {
	rv, err := Repetition(NewGraph("empty"))
	if err != nil || len(rv.Cycles) != 0 {
		t.Errorf("Repetition(empty) = %v, %v", rv, err)
	}
}

func TestRepetitionScaleInvariance(t *testing.T) {
	// Property: multiplying all rates of a channel by a constant leaves
	// the repetition vector unchanged (the balance equations are
	// homogeneous).
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 100; trial++ {
		p := int64(1 + rng.Intn(9))
		c := int64(1 + rng.Intn(9))
		k := int64(2 + rng.Intn(5))
		g1 := NewGraph("base")
		a1 := g1.AddActor("a", Vals(1))
		b1 := g1.AddActor("b", Vals(1))
		g1.Connect(a1, b1, Vals(p), Vals(c), 0)
		g2 := NewGraph("scaled")
		a2 := g2.AddActor("a", Vals(1))
		b2 := g2.AddActor("b", Vals(1))
		g2.Connect(a2, b2, Vals(p*k), Vals(c*k), 0)
		r1, err := Repetition(g1)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Repetition(g2)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Cycles[0] != r2.Cycles[0] || r1.Cycles[1] != r2.Cycles[1] {
			t.Fatalf("scale changed repetition: %v vs %v (p=%d c=%d k=%d)", r1.Cycles, r2.Cycles, p, c, k)
		}
	}
}
