package csdf

import "testing"

// hl2LikeGraph approximates the mapped HIPERLAN/2 receiver: multi-phase
// actors with realistic phase counts and a paced source.
func hl2LikeGraph() *Graph {
	g := NewGraph("bench")
	src := g.AddActor("src", Vals(4000))
	pfx := g.AddActor("pfx", Rep(90, 18))
	frq := g.AddActor("frq", Vals(90, 160, 90))
	ofdm := g.AddActor("ofdm", Cat(Rep(5, 64), Vals(850), Rep(5, 52)))
	sink := g.AddActor("sink", Vals(1))
	c1 := g.Connect(src, pfx, Vals(80), Cat(Rep(8, 2), Vals(8, 0).Times(8)), 0)
	c2 := g.Connect(pfx, frq, Cat(Rep(0, 2), Vals(0, 8).Times(8)), Vals(8, 0, 0), 0)
	c3 := g.Connect(frq, ofdm, Vals(0, 0, 8), Cat(Rep(1, 64), Rep(0, 53)), 0)
	c4 := g.Connect(ofdm, sink, Cat(Rep(0, 65), Rep(1, 52)), Vals(52), 0)
	for _, c := range []ChannelID{c1, c2, c3, c4} {
		g.Channel(c).Capacity = 160
	}
	return g
}

func BenchmarkRepetitionVector(b *testing.B) {
	g := hl2LikeGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Repetition(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelfTimedExecution(b *testing.B) {
	g := hl2LikeGraph()
	opts := ExecOptions{WarmupIterations: 4, MeasureIterations: 8, Observe: -1, Source: -1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := g.Execute(opts)
		if err != nil || r.Deadlocked {
			b.Fatalf("execution failed: %v", err)
		}
	}
}

func BenchmarkBufferSizing(b *testing.B) {
	base := hl2LikeGraph()
	// Unbind the capacities so the sizing has work to do.
	for _, c := range base.Channels {
		c.Capacity = 0
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := BufferSizes(base, BufferOptions{TargetPeriod: 4000})
		if err != nil || !res.Met {
			b.Fatalf("sizing failed: %v", err)
		}
	}
}

func BenchmarkPatternOps(b *testing.B) {
	p := Cat(Rep(1, 64), Vals(170), Rep(1, 52))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Sum()
		_ = p.Max()
		_ = p.At(int64(i))
		_ = p.ScaleDiv(5, 1)
	}
}
