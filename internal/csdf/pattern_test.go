package csdf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPatternBuilders(t *testing.T) {
	p := Cat(Rep(8, 2), Vals(8, 0).Times(8))
	if got, want := len(p), 18; got != want {
		t.Fatalf("len = %d, want %d", got, want)
	}
	if got, want := p.Sum(), int64(80); got != want {
		t.Errorf("Sum = %d, want %d", got, want)
	}
	if got, want := p.Max(), int64(8); got != want {
		t.Errorf("Max = %d, want %d", got, want)
	}
	for i, want := range []int64{8, 8, 8, 0, 8, 0} {
		if got := p.At(int64(i)); got != want {
			t.Errorf("At(%d) = %d, want %d", i, got, want)
		}
	}
	// Cyclic access wraps around the 18-phase cycle.
	if got, want := p.At(18), p.At(0); got != want {
		t.Errorf("At(18) = %d, want %d", got, want)
	}
}

func TestPatternString(t *testing.T) {
	cases := []struct {
		p    Pattern
		want string
	}{
		{Pattern{}, "⟨⟩"},
		{Vals(18, 32, 18), "⟨18, 32, 18⟩"},
		{Rep(18, 18), "⟨18^18⟩"},
		{Cat(Rep(1, 64), Vals(170), Rep(1, 52)), "⟨1^64, 170, 1^52⟩"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("String(%v) = %s, want %s", []int64(c.p), got, c.want)
		}
	}
}

func TestPatternScale(t *testing.T) {
	p := Vals(1, 2, 3)
	if got := p.Scale(10); got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Errorf("Scale(10) = %v", got)
	}
	// ScaleDiv rounds up: 3 cycles at num=10/den=3 → ceil(30/3)=10.
	q := Vals(1).ScaleDiv(10, 3)
	if q[0] != 4 { // ceil(10/3)
		t.Errorf("ScaleDiv = %v, want [4]", q)
	}
	// Scaling must not mutate the receiver.
	if p[0] != 1 {
		t.Error("Scale mutated receiver")
	}
}

func TestPatternScaleDivConservative(t *testing.T) {
	// Property: ScaleDiv never rounds below the exact quotient.
	f := func(v uint16, num, den uint8) bool {
		if den == 0 {
			return true
		}
		p := Vals(int64(v)).ScaleDiv(int64(num), int64(den))
		exact := float64(v) * float64(num) / float64(den)
		return float64(p[0]) >= exact
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPatternTimesZero(t *testing.T) {
	if got := Vals(1, 2).Times(0); len(got) != 0 {
		t.Errorf("Times(0) = %v, want empty", got)
	}
}

func TestPatternSumMatchesAtWalk(t *testing.T) {
	// Property: walking one full cycle with At sums to Sum.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(20)
		p := make(Pattern, n)
		for i := range p {
			p[i] = int64(rng.Intn(100))
		}
		var s int64
		for i := int64(0); i < int64(n); i++ {
			s += p.At(i)
		}
		if s != p.Sum() {
			t.Fatalf("walk sum %d != Sum %d for %v", s, p.Sum(), p)
		}
	}
}
