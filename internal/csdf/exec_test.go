package csdf

import (
	"math/rand"
	"strings"
	"testing"
)

func mustExec(t *testing.T, g *Graph, opts ExecOptions) *ExecResult {
	t.Helper()
	r, err := g.Execute(opts)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return r
}

func TestExecutePipelinePeriod(t *testing.T) {
	// Unit-rate chain: the steady-state period equals the slowest actor.
	g, _, _, _ := pipeline(t)
	r := mustExec(t, g, ExecOptions{WarmupIterations: 8, MeasureIterations: 16, Observe: -1, Source: -1})
	if r.Deadlocked {
		t.Fatalf("deadlocked: %s", r.DeadlockReport)
	}
	if r.Period != 20 {
		t.Errorf("Period = %v, want 20 (slowest actor)", r.Period)
	}
}

func TestExecuteLatencyPipeline(t *testing.T) {
	g, _, _, _ := pipeline(t)
	r := mustExec(t, g, ExecOptions{WarmupIterations: 2, MeasureIterations: 4, Observe: -1, Source: -1})
	// End-to-end latency is at least the sum of one firing of each actor
	// (10+20+5) and bounded by a few periods in steady state.
	if r.Latency < 35 {
		t.Errorf("Latency = %d, want >= 35", r.Latency)
	}
}

func TestExecuteMultiratePeriod(t *testing.T) {
	// a (wcet 7) fires 3× per iteration, b (wcet 10) fires 2×: the
	// bottleneck is a with 21 time units of work per iteration vs b's 20.
	g := NewGraph("multirate")
	a := g.AddActor("a", Vals(7))
	b := g.AddActor("b", Vals(10))
	g.Connect(a, b, Vals(2), Vals(3), 0)
	r := mustExec(t, g, ExecOptions{WarmupIterations: 8, MeasureIterations: 16, Observe: b, Source: a})
	if r.Period != 21 {
		t.Errorf("Period = %v, want 21", r.Period)
	}
}

func TestExecuteBoundedChannelBackPressure(t *testing.T) {
	// With capacity 1 between a fast producer and a slow consumer, the
	// producer is throttled to the consumer's pace.
	g := NewGraph("bp")
	a := g.AddActor("fast", Vals(1))
	b := g.AddActor("slow", Vals(50))
	ch := g.Connect(a, b, Vals(1), Vals(1), 0)
	g.Channel(ch).Capacity = 1
	r := mustExec(t, g, ExecOptions{WarmupIterations: 4, MeasureIterations: 8, Observe: b, Source: a})
	if r.Deadlocked {
		t.Fatalf("deadlocked: %s", r.DeadlockReport)
	}
	if r.Period != 50 {
		t.Errorf("Period = %v, want 50", r.Period)
	}
	if r.FullBlocks[ch] == 0 {
		t.Error("expected full-channel blocking to be recorded")
	}
}

func TestExecuteDeadlockDetected(t *testing.T) {
	// Two actors in a cycle with no initial tokens deadlock immediately.
	g := NewGraph("dl")
	a := g.AddActor("a", Vals(1))
	b := g.AddActor("b", Vals(1))
	g.Connect(a, b, Vals(1), Vals(1), 0)
	g.Connect(b, a, Vals(1), Vals(1), 0)
	r := mustExec(t, g, ExecOptions{WarmupIterations: 1, MeasureIterations: 1, Observe: a, Source: a})
	if !r.Deadlocked {
		t.Fatal("expected deadlock")
	}
	if !strings.Contains(r.DeadlockReport, "blocked") {
		t.Errorf("DeadlockReport = %q", r.DeadlockReport)
	}
}

func TestExecuteCycleWithInitialTokens(t *testing.T) {
	// The same cycle with one initial token rotates forever; period is the
	// sum of both WCETs because the single token serialises the actors.
	g := NewGraph("ring")
	a := g.AddActor("a", Vals(3))
	b := g.AddActor("b", Vals(4))
	g.Connect(a, b, Vals(1), Vals(1), 0)
	g.Connect(b, a, Vals(1), Vals(1), 1)
	r := mustExec(t, g, ExecOptions{WarmupIterations: 4, MeasureIterations: 8, Observe: a, Source: a})
	if r.Deadlocked {
		t.Fatalf("deadlocked: %s", r.DeadlockReport)
	}
	if r.Period != 7 {
		t.Errorf("Period = %v, want 7", r.Period)
	}
}

func TestExecutePhasedActor(t *testing.T) {
	// An actor whose cycle is read(2) / compute(10) / write(1) pipelined
	// against a 1-token-per-5 source; throughput limited by the 13-unit
	// actor cycle (3 phases serialised on one actor).
	g := NewGraph("phases")
	src := g.AddActor("src", Vals(5))
	w := g.AddActor("worker", Vals(2, 10, 1))
	g.Connect(src, w, Vals(1), Vals(1, 0, 0), 0)
	r := mustExec(t, g, ExecOptions{WarmupIterations: 4, MeasureIterations: 8, Observe: w, Source: src})
	if r.Period != 13 {
		t.Errorf("Period = %v, want 13", r.Period)
	}
}

func TestExecuteUtilisation(t *testing.T) {
	g, a, b, _ := pipeline(t)
	r := mustExec(t, g, ExecOptions{WarmupIterations: 8, MeasureIterations: 16, Observe: -1, Source: -1})
	// b (wcet 20) is the bottleneck: near 100% busy; a (wcet 10) near 50%.
	if u := r.Utilisation(b); u < 0.8 {
		t.Errorf("Utilisation(b) = %v, want >= 0.8", u)
	}
	if ua, ub := r.Utilisation(a), r.Utilisation(b); ua >= ub {
		t.Errorf("Utilisation(a)=%v should be below Utilisation(b)=%v", ua, ub)
	}
}

func TestExecuteObserveDefaultsToSink(t *testing.T) {
	g, _, _, _ := pipeline(t)
	r := mustExec(t, g, ExecOptions{WarmupIterations: 2, MeasureIterations: 2, Observe: -1, Source: -1})
	if r.Iterations != 4 {
		t.Errorf("Iterations = %d, want 4", r.Iterations)
	}
}

func TestExecuteInvalidGraph(t *testing.T) {
	g := NewGraph("bad")
	g.AddActor("a", Pattern{})
	if _, err := g.Execute(ExecOptions{}); err == nil {
		t.Error("Execute accepted invalid graph")
	}
}

func TestExecuteMoreBufferNeverSlower(t *testing.T) {
	// Property: on random bounded chains, doubling every capacity never
	// increases the steady-state period (monotonicity of self-timed
	// execution in buffer space).
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(5)
		mk := func(mult int64) *Graph {
			g := NewGraph("mono")
			r := rand.New(rand.NewSource(int64(trial)*977 + 13)) // same WCETs per variant
			ids := make([]ActorID, n)
			for i := range ids {
				ids[i] = g.AddActor("x", Vals(int64(1+r.Intn(20))))
			}
			for i := 0; i+1 < n; i++ {
				ch := g.Connect(ids[i], ids[i+1], Vals(1), Vals(1), 0)
				g.Channel(ch).Capacity = 2 * mult
			}
			return g
		}
		small, err := mk(1).Execute(ExecOptions{WarmupIterations: 4, MeasureIterations: 8, Observe: -1, Source: -1})
		if err != nil {
			t.Fatal(err)
		}
		big, err := mk(4).Execute(ExecOptions{WarmupIterations: 4, MeasureIterations: 8, Observe: -1, Source: -1})
		if err != nil {
			t.Fatal(err)
		}
		if big.Period > small.Period+1e-9 {
			t.Fatalf("trial %d: bigger buffers slower: %v > %v", trial, big.Period, small.Period)
		}
	}
}

func TestExecuteExclusiveGroups(t *testing.T) {
	// Two independent workers fed by one source. Unconstrained they run
	// in parallel (period 10); sharing a tile they serialise (period 20).
	build := func() *Graph {
		g := NewGraph("excl")
		src := g.AddActor("src", Vals(1))
		w1 := g.AddActor("w1", Vals(10))
		w2 := g.AddActor("w2", Vals(10))
		join := g.AddActor("join", Vals(1))
		g.Connect(src, w1, Vals(1), Vals(1), 0)
		g.Connect(src, w2, Vals(1), Vals(1), 0)
		g.Connect(w1, join, Vals(1), Vals(1), 0)
		g.Connect(w2, join, Vals(1), Vals(1), 0)
		return g
	}
	par, err := build().Execute(ExecOptions{WarmupIterations: 4, MeasureIterations: 8, Observe: 3, Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	ser, err := build().Execute(ExecOptions{
		WarmupIterations: 4, MeasureIterations: 8, Observe: 3, Source: 0,
		ExclusiveGroups: [][]ActorID{{1, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if par.Period != 10 {
		t.Errorf("parallel period = %v, want 10", par.Period)
	}
	if ser.Period != 20 {
		t.Errorf("serialised period = %v, want 20", ser.Period)
	}
}

func TestExecuteExclusiveGroupSingleton(t *testing.T) {
	// A group of one changes nothing: actors never overlap themselves.
	g, _, _, _ := pipeline(t)
	free := mustExec(t, g, ExecOptions{WarmupIterations: 4, MeasureIterations: 8, Observe: -1, Source: -1})
	boxed, err := g.Execute(ExecOptions{
		WarmupIterations: 4, MeasureIterations: 8, Observe: -1, Source: -1,
		ExclusiveGroups: [][]ActorID{{0}, {1}, {2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if free.Period != boxed.Period {
		t.Errorf("singleton groups changed period: %v vs %v", free.Period, boxed.Period)
	}
}

func TestExecuteStaticOrderEnforced(t *testing.T) {
	// Two independent workers fed by one source, joined at the end. A
	// static order [w1, w2] serialises them exactly like an exclusive
	// group (period 20), and the order constrains who goes first.
	build := func() *Graph {
		g := NewGraph("so")
		src := g.AddActor("src", Vals(1))
		w1 := g.AddActor("w1", Vals(10))
		w2 := g.AddActor("w2", Vals(10))
		join := g.AddActor("join", Vals(1))
		g.Connect(src, w1, Vals(1), Vals(1), 0)
		g.Connect(src, w2, Vals(1), Vals(1), 0)
		g.Connect(w1, join, Vals(1), Vals(1), 0)
		g.Connect(w2, join, Vals(1), Vals(1), 0)
		return g
	}
	r, err := build().Execute(ExecOptions{
		WarmupIterations: 4, MeasureIterations: 8, Observe: 3, Source: 0,
		StaticOrders: [][]ActorID{{1, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Period != 20 {
		t.Errorf("static-order period = %v, want 20", r.Period)
	}
	if r.Deadlocked {
		t.Fatalf("deadlocked: %s", r.DeadlockReport)
	}
}

func TestExecuteStaticOrderBadOrderDeadlocks(t *testing.T) {
	// Forcing the consumer before the producer on a shared processor
	// deadlocks immediately: the consumer waits for tokens only the
	// producer can make, and the order forbids the producer from going.
	g := NewGraph("bad-order")
	a := g.AddActor("producer", Vals(5))
	b := g.AddActor("consumer", Vals(5))
	g.Connect(a, b, Vals(1), Vals(1), 0)
	r, err := g.Execute(ExecOptions{
		WarmupIterations: 1, MeasureIterations: 1, Observe: b, Source: a,
		StaticOrders: [][]ActorID{{b, a}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Deadlocked {
		t.Error("consumer-first static order should deadlock")
	}
}

func TestExecuteStaticOrderRuns(t *testing.T) {
	// Producer-first order on a shared processor pipelines fine.
	g := NewGraph("good-order")
	a := g.AddActor("producer", Vals(5))
	b := g.AddActor("consumer", Vals(5))
	g.Connect(a, b, Vals(1), Vals(1), 0)
	r, err := g.Execute(ExecOptions{
		WarmupIterations: 4, MeasureIterations: 8, Observe: b, Source: a,
		StaticOrders: [][]ActorID{{a, b}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Deadlocked || r.Period != 10 {
		t.Errorf("period = %v (deadlock=%v), want 10", r.Period, r.Deadlocked)
	}
}
