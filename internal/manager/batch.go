package manager

import (
	"time"

	"rtsm/internal/arch"
	"rtsm/internal/core"
	"rtsm/internal/journal"
)

// Batched admission: the amortization layer over the whole pipeline
// stack. Per-item admission pays, for every arrival, a region-lock
// round-trip with a live validation inside it and two bookkeeping
// sections — and, at high worker counts, the conflict retries of racing
// the other workers. A draining worker instead pulls up to K queued
// arrivals (size-or-latency trigger, prioQueue.popBatch), resolves each
// to a speculative reservation plan, and merges the arrivals whose
// plans land in pairwise-disjoint mesh regions (core.BatchPlan) into a
// single multi-application commit under the union of their region
// locks.
//
// The speculative phase is deliberately lock-free AND validation-free:
// core.NewPlan reads only the platform's immutable topology, so
// resolving an arrival to a plan touches no shared mutable state at
// all. Each merged member is validated exactly once, inside the union
// lock, immediately before the commit — the only place a validation
// verdict cannot go stale. Per-item admission validates in one lock
// session and commits in the same session; the batch does the same
// work per member but pays the lock acquisition, the epoch bookkeeping
// and the stats section once per round instead of once per arrival.
// That is the entire win, and it is why the batch takes NO base
// snapshot on the warm path: a snapshot would buy an early (hence
// perishable) validation verdict at the cost of copy-on-write faults
// on every subsequent live commit — measurably more than it saves.
//
// Cold structures (no template pool yet) still run the full four-step
// map inside the batch, and only they pay for a snapshot: the mapper
// reads the whole platform, which must not race concurrent commits, so
// the batch lazily captures a base view and stacks the plans it has
// already adopted onto it (so a cold map cannot double-book an earlier
// member's tiles). A warm batch never reaches that code.
//
// Arrivals that cannot join the merged commit — footprint overlap
// inside the batch, a failed commit-time validation — are first retried
// as spill commits (their speculative plan committed per-item,
// recycling the planning work) and only then fall back to the unchanged
// per-item path, which owns retries, repair and preemption; the batch
// layer never re-implements policy. The pipeline adapts K to the
// observed fallback rate (Pipeline.adaptBatch), so a conflict-heavy
// workload degrades gracefully toward per-item behaviour while a
// region-spread workload keeps the full amortization.

// batchItem carries one drained job through the batched admission round.
type batchItem struct {
	j   *job
	out Outcome
	res *core.Result
	// plan is the speculative reservation plan (not yet validated — the
	// commit phase validates under the relevant locks); nil routes the
	// item to the per-item fallback.
	plan *core.Plan
	// fp is the template-cache fingerprint ("" when reuse is off or
	// fingerprinting failed); fromTemplate marks res as a pool template
	// (already cached — skip the re-insert) rather than a fresh mapping.
	fp           string
	fromTemplate bool
	fallback     bool
	committed    bool
}

// admitBatch runs a drained batch of jobs through the batched admission
// path and delivers every job's Outcome on its done channel. now is the
// queue clock's drain time, for wait accounting. It returns how many
// jobs fell back to the per-item path, the signal the pipeline's
// adaptive drain size feeds on.
func (m *Manager) admitBatch(jobs []*job, now time.Time) (fallbacks int) {
	items := make([]*batchItem, 0, len(jobs))

	// Name registration for the whole batch in one bookkeeping section;
	// duplicates are rejected immediately, exactly as per-item admit
	// would reject them.
	m.mu.Lock()
	tc := m.templates
	for _, j := range jobs {
		it := &batchItem{j: j, out: Outcome{
			App:      j.req.App.Name,
			Wait:     now.Sub(j.enqueued),
			Priority: clampPriority(j.req.App.QoS.Priority),
		}}
		if !m.registerPendingLocked(j.req.App.Name, &it.out) {
			j.done <- it.out
			continue
		}
		items = append(items, it)
	}
	m.mu.Unlock()
	if len(items) == 0 {
		return 0
	}

	// The lazily captured base view for cold full maps; nil until the
	// first arrival without a template pool. ensureWork stacks every
	// already-adopted plan onto it so the mapper sees the batch's own
	// claims; newly adopted plans after that are stacked as they arrive.
	var work *arch.Snapshot
	var adopted []*core.Plan
	ensureWork := func() *arch.Snapshot {
		if work == nil {
			work = m.baseSnapshot().Writable()
			for _, p := range adopted {
				p.Commit(work.Plat)
			}
		}
		return work
	}

	// Speculative phase, lock-free: each arrival resolves to a plan
	// without touching shared mutable state. Template selection is
	// merge-aware: mappings computed at different occupancies route
	// across very different region sets, so a variant may sprawl over
	// regions earlier batch members already claimed. The first variant
	// disjoint from the batch footprint joins the merged commit; when
	// every variant overlaps, the first one is kept as a spill
	// candidate. Validation happens later, under the locks the commit
	// itself holds.
	batch := &core.BatchPlan{}
	merged := make([]*batchItem, 0, len(items))
	for _, it := range items {
		app, lib := it.j.req.App, it.j.req.Lib
		mapStart := time.Now()
		joined := false
		hadPool := false
		if tc != nil {
			if f, err := Fingerprint(app, lib); err == nil {
				it.fp = f
				pool, start := tc.get(f)
				hadPool = len(pool) > 0
				for k := 0; k < len(pool); k++ {
					tpl := pool[(start+k)%len(pool)]
					plan, perr := core.NewPlan(m.plat, tpl)
					if perr != nil {
						continue
					}
					if plan.Overlaps(batch.Regions()) {
						if it.plan == nil {
							it.res, it.plan, it.fromTemplate = tpl, plan, true
						}
						continue
					}
					if batch.Add(plan) == nil {
						it.res, it.plan, it.fromTemplate = tpl, plan, true
						joined = true
						break
					}
				}
			}
		}
		if it.plan == nil && !hadPool {
			// Full four-step maps run inside the batch only for COLD
			// structures (no template pool yet) — the cold batch still
			// merges. A warm-but-stale pool instead falls back to the
			// per-item path, whose stale-template repair is cheaper than
			// a scratch map; keeping multi-millisecond maps out of a warm
			// drain also keeps the speculation window short, which is
			// what holds the whole batch's commit-time conflict rate
			// down.
			w := ensureWork()
			mapper := &core.Mapper{Lib: lib, Cfg: m.cfg}
			res, mapErr := mapper.Map(app, w.Plat)
			if mapErr == nil && res.Feasible {
				if plan, perr := core.NewPlan(m.plat, res); perr == nil {
					it.res, it.plan = res, plan
					joined = batch.Add(plan) == nil
				}
			}
			// Structural errors and infeasible-against-the-stack verdicts
			// keep plan nil: the per-item fallback owns staleness
			// retries, preemption and the rejection report.
		}
		if it.plan != nil {
			adopted = append(adopted, it.plan)
			if work != nil {
				// A base view exists (some earlier arrival was cold):
				// keep it current so later cold maps see this plan too.
				it.plan.Commit(work.Plat)
			}
		}
		it.out.Map += time.Since(mapStart)
		// Greedy merge in drain (priority) order: an arrival whose
		// footprint overlaps an earlier batch member cannot share the
		// multi-application commit — the union-lock commit assumes
		// pairwise-disjoint members.
		if !joined {
			it.fallback = true
			continue
		}
		merged = append(merged, it)
	}

	// Merged commit: one lock acquisition over the union footprint, one
	// validation per member inside it — the single authoritative check,
	// taken at the only moment it cannot go stale. The member plans
	// touch pairwise-disjoint resources, so their validations are
	// independent: members that fail drop out to the per-item path and
	// the survivors still commit in this round.
	if len(merged) >= 2 {
		commitStart := time.Now()
		union := batch.Regions()
		m.locks.Lock(union)
		kept := &core.BatchPlan{}
		var committed []*batchItem
		for _, it := range merged {
			if it.plan.Validate(m.plat) != nil {
				it.fallback = true
				continue
			}
			// Re-merging the survivors cannot fail: they are a subset
			// of a set already proven pairwise disjoint.
			if kept.Add(it.plan) == nil {
				committed = append(committed, it)
			} else {
				it.fallback = true
			}
		}
		kept.Commit(m.plat)
		// Journal the members in Add order — the order kept.Commit just
		// applied them in — inside the union lock, so per-region journal
		// order matches the merged commit's arithmetic order.
		for _, it := range committed {
			m.journalPlan(journal.EvAdmit, it.j.req.App.Name, it.out.Priority, it.plan)
		}
		m.locks.Unlock(union)
		commitElapsed := time.Since(commitStart)

		if len(committed) > 0 {
			// The commit section ran once for the whole merged set;
			// attribute an even share to each member so latency stats
			// stay comparable with the per-item path.
			share := commitElapsed / time.Duration(len(committed))
			m.mu.Lock()
			if len(committed) >= 2 {
				m.stats.Batches++
			}
			for _, it := range committed {
				it.committed = true
				it.out.Attempts = 1
				it.out.Commit += share
				m.seq++
				ad := &Admission{App: it.j.req.App, Result: it.res, Seq: m.seq,
					Priority: it.out.Priority, lib: it.j.req.Lib}
				m.running[it.j.req.App.Name] = ad
				m.stats.BatchedAdmissions++
				if it.fromTemplate {
					m.stats.TemplateHits++
				}
				m.finishLocked(&it.out, ad, nil)
			}
			m.mu.Unlock()
			for _, it := range committed {
				if tc != nil && it.fp != "" && !it.fromTemplate {
					tc.put(it.fp, it.res)
				}
				it.j.done <- it.out
			}
		}
	} else {
		// A batch that merged fewer than two plans has nothing to
		// amortize; route everything through the per-item path.
		for _, it := range merged {
			it.fallback = true
		}
	}

	// Spill commits next: an arrival that could not join the merged
	// commit — footprint overlap inside the batch, or a failed merged
	// validation — still has its speculative plan, which remains a
	// perfectly good per-item commit candidate. One lock round-trip over
	// its own footprint with a validation inside replaces a full re-map.
	// Only spills that lose that validation — to a cross-worker race or
	// to the batch member they overlap — pay for the complete per-item
	// path; their pending entry is still registered (the fallback
	// releases it via finishLocked), so no competing Submit can steal
	// the name and every drained job ends in exactly one outcome —
	// never both, never neither.
	spills := 0
	for _, it := range items {
		if it.committed || !it.fallback {
			continue
		}
		if it.plan != nil && m.spillCommit(it, tc) {
			spills++
			continue
		}
		fallbacks++
		if it.plan != nil && !it.fromTemplate {
			// A freshly computed mapping that lost its live validation is
			// multi-millisecond work worth recycling: seed the per-item
			// path's conflict-repair machinery with it instead of mapping
			// from scratch. The speculative round counts as the first
			// attempt. Template candidates are NOT seeded — re-probing
			// the pool under live locks (admitRegistered's fast path) is
			// microseconds, repair is not.
			it.out.Attempts = 1
			it.j.done <- m.admitFrom(it.j.req.App, it.j.req.Lib, it.out, it.res)
			continue
		}
		it.j.done <- m.admitRegistered(it.j.req.App, it.j.req.Lib, it.out)
	}
	if spills > 0 || fallbacks > 0 {
		m.mu.Lock()
		m.stats.BatchSpills += uint64(spills)
		m.stats.BatchFallbacks += uint64(fallbacks)
		m.mu.Unlock()
	}
	return fallbacks
}

// spillCommit tries to commit a batch member's speculative plan through
// the ordinary per-item commit protocol: validate under the plan's own
// region locks and commit on success. It reports false — with no state
// changed and no outcome delivered — when the plan no longer fits the
// live platform, leaving the full per-item path to decide the arrival.
func (m *Manager) spillCommit(it *batchItem, tc *templateCache) bool {
	commitStart := time.Now()
	footprint := it.plan.Regions()
	m.locks.Lock(footprint)
	if it.plan.Validate(m.plat) != nil {
		m.locks.Unlock(footprint)
		return false
	}
	it.plan.Commit(m.plat)
	m.journalPlan(journal.EvAdmit, it.j.req.App.Name, it.out.Priority, it.plan)
	m.locks.Unlock(footprint)
	it.committed = true
	it.out.Attempts = 1
	it.out.Commit += time.Since(commitStart)
	m.mu.Lock()
	m.seq++
	ad := &Admission{App: it.j.req.App, Result: it.res, Seq: m.seq,
		Priority: it.out.Priority, lib: it.j.req.Lib}
	m.running[it.j.req.App.Name] = ad
	if it.fromTemplate {
		m.stats.TemplateHits++
	}
	m.finishLocked(&it.out, ad, nil)
	m.mu.Unlock()
	if tc != nil && it.fp != "" && !it.fromTemplate {
		tc.put(it.fp, it.res)
	}
	it.j.done <- it.out
	return true
}
