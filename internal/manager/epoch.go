package manager

import "rtsm/internal/arch"

// Epoch snapshots: the admission pipeline's snapshot acquisition. With
// copy-on-write snapshots (arch.Platform.SnapshotCoW) a capture is
// already O(regions) instead of O(mesh); epoch sharing removes even that
// from the common case. Concurrent admissions inside one pipeline
// "epoch" map against a single frozen base snapshot instead of each
// taking their own — safe because the snapshot is immutable (every
// mapper works on a copy-on-write child) and because commit-time
// validation against the per-region versions catches whatever staleness
// the sharing introduces, exactly as it catches races between fresh
// snapshots. The epoch rolls when the live platform has moved more than
// epochLag commits past the base; retries always capture fresh state
// (and publish it as the new epoch), since re-deciding against the very
// snapshot that just lost a race would be wasted work.

// DefaultEpochLag is how many committed reservation changes an epoch
// snapshot may trail the live platform by before a new admission rolls
// the epoch instead of sharing it. The default of 0 shares only while
// nothing has committed since the capture — sharing with zero added
// staleness, a pure win whenever several admissions start inside one
// commit window. Raising it trades staleness (absorbed by validation
// plus incremental repair, but not for free) for fewer captures, which
// pays off once capture contention matters — many workers on many
// cores — and costs extra repair rounds on a saturated single core.
const DefaultEpochLag = 0

// snapshotMode reads the snapshot configuration consistently.
func (m *Manager) snapshotMode() (cow, epoch bool, lag uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cow, m.epochShare, m.epochLag
}

// captureSnapshot takes a fresh snapshot in the given mode: a frozen
// copy-on-write capture coordinating per region, or the classic deep
// copy under all region locks.
func (m *Manager) captureSnapshot(cow bool) *arch.Snapshot {
	if cow {
		return m.plat.SnapshotCoW(m.locks)
	}
	m.locks.LockAll()
	defer m.locks.UnlockAll()
	return m.plat.Snapshot()
}

// countSnapshot records a base-snapshot capture (or an epoch share) in
// the statistics.
func (m *Manager) countSnapshot(shared bool) {
	m.mu.Lock()
	if shared {
		m.stats.SnapshotsShared++
	} else {
		m.stats.Snapshots++
	}
	m.mu.Unlock()
}

// baseSnapshot returns the snapshot a new admission starts mapping
// against: the current epoch's shared base when it is still within the
// staleness budget, a freshly captured one (which becomes the new epoch)
// otherwise.
func (m *Manager) baseSnapshot() *arch.Snapshot {
	cow, epoch, lag := m.snapshotMode()
	if !cow || !epoch {
		s := m.captureSnapshot(cow)
		m.countSnapshot(false)
		return s
	}
	m.epochMu.Lock()
	defer m.epochMu.Unlock()
	// The staleness guard compares unsigned versions: live must be at
	// least the snapshot's before subtracting, or a snapshot from ahead
	// of the live counter (conceivable after a future reset/rollback
	// path) would underflow to a huge distance. Today that underflow
	// happens to fail the ≤ lag test — the safe direction — but only by
	// accident; the explicit ordering check keeps it safe on purpose and
	// rolls the epoch whenever the version history is not comparable.
	live := m.plat.Version()
	if s := m.epochSnap; s != nil &&
		len(s.RegionVersions) == m.plat.RegionCount() &&
		live >= s.Version && live-s.Version <= lag {
		m.countSnapshot(true)
		return s
	}
	s := m.captureSnapshot(true)
	m.epochSnap = s
	m.countSnapshot(false)
	return s
}

// freshSnapshot captures the platform's current state for a retry round
// — a commit conflict, a stale infeasible verdict or a stale template
// pool — and, under epoch sharing, publishes it as the new epoch so
// admissions arriving next share the freshest view.
func (m *Manager) freshSnapshot() *arch.Snapshot {
	cow, epoch, _ := m.snapshotMode()
	s := m.captureSnapshot(cow)
	m.countSnapshot(false)
	if cow && epoch {
		m.epochMu.Lock()
		if m.epochSnap == nil || m.epochSnap.Version < s.Version {
			m.epochSnap = s
		}
		m.epochMu.Unlock()
	}
	return s
}
