package manager

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rtsm/internal/model"
)

// Request is one admission to run through a Pipeline.
type Request struct {
	App *model.Application
	Lib *model.Library
}

type job struct {
	req  Request
	prio model.Priority
	// enqueued is stamped by the queue itself (prioQueue.enqueueLocked)
	// with the queue's own clock, so wait accounting and aging promotion
	// read the same time source.
	enqueued time.Time
	done     chan Outcome
}

// Pipeline is a bounded admission work queue in front of a Manager: up to
// `depth` requests wait in the queue and `workers` goroutines run the
// speculative mapping phase concurrently. Submit blocks when the queue is
// full, giving callers natural backpressure; TrySubmit sheds load instead.
//
// The queue is priority-aware: requests are classed by their
// application's QoS priority (model.Priority, tagged on the spec) into
// per-class FIFOs, and workers serve the highest class first. Aging keeps
// this starvation-free — a request promotes by one class per SetAging
// interval spent queued, so under a continuous high-priority stream a
// best-effort request still reaches the top class after a bounded wait
// and is then served before any later arrival. With every request
// untagged (BestEffort, the zero value) the queue degenerates to the
// plain FIFO of the pre-priority pipeline.
//
// With SetBatch, workers drain up to K queued requests per round instead
// of one and run them through the manager's batched admission path: one
// shared base snapshot, speculative mapping per request, and a single
// multi-application commit of the requests whose reservation plans land
// in disjoint mesh regions (see Manager stats Batches/BatchedAdmissions/
// BatchFallbacks). K adapts to the observed merge-conflict rate.
//
// Departures need no queue — call Manager.Stop directly, it only takes
// the short commit lock.
type Pipeline struct {
	m *Manager
	q *prioQueue

	// closing serializes Close itself (idempotence); it is NOT held
	// across queue operations. Submitters never take it: close detection
	// lives in the queue, so a Submit blocked on a full queue wakes and
	// returns the close error the moment Close lands, instead of
	// stalling Close behind a reader lock held across the blocking push
	// (the pipeline-shutdown stall this layout fixes).
	closing sync.Mutex
	closed  bool
	wg      sync.WaitGroup

	// batchMax is the configured drain ceiling (≤ 1 = batching off);
	// batchCur is the adaptive current K shared by all workers, halved
	// when a batch sees merge or validation fallbacks and grown by one
	// per fully merged batch.
	batchMax    atomic.Int32
	batchCur    atomic.Int32
	batchLinger atomic.Int64 // nanoseconds popBatch waits for a batch to fill
}

// DefaultBatchLinger is how long a draining worker waits for a batch to
// fill once the queue runs dry — the latency half of the batcher's
// size-or-latency trigger. See Pipeline.SetBatchLinger.
const DefaultBatchLinger = 200 * time.Microsecond

// NewPipeline starts a pipeline with the given number of admission
// workers and queue slots. workers < 1 is treated as 1; depth < 1 keeps a
// single queue slot (every Submit hands off almost directly to a worker).
// Aging defaults to DefaultAging; tune it with SetAging. Batching is off
// until SetBatch.
func NewPipeline(m *Manager, workers, depth int) *Pipeline {
	if workers < 1 {
		workers = 1
	}
	p := &Pipeline{m: m, q: newPrioQueue(depth, DefaultAging)}
	p.batchLinger.Store(int64(DefaultBatchLinger))
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// SetAging adjusts the queue time that promotes a waiting request by one
// priority class (d ≤ 0 disables aging: strict class order, best-effort
// requests may starve).
func (p *Pipeline) SetAging(d time.Duration) { p.q.setAging(d) }

// SetBatch sets the maximum number of queued requests a worker drains
// into one batched admission round (k ≤ 1 disables batching, the
// default). The effective drain size starts at k and adapts to the
// observed conflict rate: a round with merge or validation fallbacks
// halves it (floor 2, so batching keeps probing), a fully merged round
// grows it back by one toward k.
func (p *Pipeline) SetBatch(k int) {
	if k < 0 {
		k = 0
	}
	p.batchMax.Store(int32(k))
	p.batchCur.Store(int32(k))
}

// SetBatchLinger sets how long a draining worker waits for a batch to
// fill once the queue runs dry (the latency half of the size-or-latency
// trigger; 0 drains only what is already queued).
func (p *Pipeline) SetBatchLinger(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.batchLinger.Store(int64(d))
}

// adaptBatch updates the shared adaptive drain size after one batched
// round: multiplicative decrease once fallbacks dominate the round
// (half or more of the drained jobs re-mapped — the speculative work is
// mostly wasted at that point), additive increase after a fallback-free
// round. Spill commits count as neither: they recycled their
// speculative plan, so they cost the batch almost nothing.
func (p *Pipeline) adaptBatch(drained, fallbacks int) {
	max := p.batchMax.Load()
	if max <= 1 {
		return
	}
	cur := p.batchCur.Load()
	switch {
	case fallbacks*2 >= drained:
		next := cur / 2
		if next < 2 {
			next = 2
		}
		p.batchCur.CompareAndSwap(cur, next)
	case fallbacks == 0 && cur < max:
		p.batchCur.CompareAndSwap(cur, cur+1)
	}
}

func (p *Pipeline) worker() {
	defer p.wg.Done()
	for {
		k := int(p.batchCur.Load())
		if k <= 1 {
			j, ok := p.q.pop()
			if !ok {
				return
			}
			wait := p.q.clock().Sub(j.enqueued)
			j.done <- p.m.admit(j.req.App, j.req.Lib, wait)
			continue
		}
		jobs := p.q.popBatch(k, time.Duration(p.batchLinger.Load()))
		if len(jobs) == 0 {
			return
		}
		if len(jobs) == 1 {
			j := jobs[0]
			wait := p.q.clock().Sub(j.enqueued)
			j.done <- p.m.admit(j.req.App, j.req.Lib, wait)
			continue
		}
		fallbacks := p.m.admitBatch(jobs, p.q.clock())
		p.adaptBatch(len(jobs), fallbacks)
	}
}

// Submit enqueues an admission request, blocking while the queue is full,
// and returns a channel that delivers the Outcome. The request is queued
// at the application's own QoS class. The channel is buffered: a caller
// that abandons it leaks nothing and blocks no worker. A Submit blocked
// on a full queue returns the close error as soon as Close lands; it
// never outwaits the shutdown.
func (p *Pipeline) Submit(app *model.Application, lib *model.Library) (<-chan Outcome, error) {
	j := newJob(app, lib)
	if !p.q.push(j) {
		return nil, errPipelineClosed
	}
	return j.done, nil
}

// TrySubmit is Submit without the blocking: it reports false when the
// queue is full or the pipeline closed, so callers can shed load. A
// full-queue refusal (not a shutdown) is counted as shed for the
// request's class in the manager's Stats, so shed arrivals stay visible
// in the ledger even though they never reach a worker.
func (p *Pipeline) TrySubmit(app *model.Application, lib *model.Library) (<-chan Outcome, bool) {
	j := newJob(app, lib)
	if ok, closed := p.q.tryPush(j); !ok {
		if !closed {
			p.m.NoteShed(j.prio)
		}
		return nil, false
	}
	return j.done, true
}

// errPipelineClosed is the stable close error Submit returns.
var errPipelineClosed = fmt.Errorf("manager: pipeline is closed")

func newJob(app *model.Application, lib *model.Library) *job {
	return &job{
		req:  Request{App: app, Lib: lib},
		prio: clampPriority(app.QoS.Priority),
		done: make(chan Outcome, 1),
	}
}

// Close stops accepting requests, drains the queue and waits for all
// workers to finish. Outcomes of already-submitted requests are still
// delivered. Close never waits on submitters: closing the queue wakes
// every Submit blocked on a full queue (each returns the close error),
// so Close completes even under a continuous submit storm.
func (p *Pipeline) Close() {
	p.closing.Lock()
	if p.closed {
		p.closing.Unlock()
		return
	}
	p.closed = true
	p.closing.Unlock()
	// Workers drain the queue after close(): pop keeps delivering queued
	// jobs and only reports done once the queue is empty.
	p.q.close()
	p.wg.Wait()
}
