package manager

import (
	"fmt"
	"sync"
	"time"

	"rtsm/internal/model"
)

// Request is one admission to run through a Pipeline.
type Request struct {
	App *model.Application
	Lib *model.Library
}

type job struct {
	req      Request
	enqueued time.Time
	done     chan Outcome
}

// Pipeline is a bounded admission work queue in front of a Manager: up to
// `depth` requests wait in the queue and `workers` goroutines run the
// speculative mapping phase concurrently. Submit blocks when the queue is
// full, giving callers natural backpressure; TrySubmit sheds load instead.
//
// Departures need no queue — call Manager.Stop directly, it only takes
// the short commit lock.
type Pipeline struct {
	m    *Manager
	jobs chan *job

	closing sync.RWMutex // held shared by submitters, exclusively by Close
	closed  bool
	wg      sync.WaitGroup
}

// NewPipeline starts a pipeline with the given number of admission
// workers and queue slots. workers < 1 is treated as 1; depth < 1 makes
// the queue unbuffered (every Submit hands off directly to a worker).
func NewPipeline(m *Manager, workers, depth int) *Pipeline {
	if workers < 1 {
		workers = 1
	}
	if depth < 0 {
		depth = 0
	}
	p := &Pipeline{m: m, jobs: make(chan *job, depth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pipeline) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		wait := time.Since(j.enqueued)
		j.done <- p.m.admit(j.req.App, j.req.Lib, wait)
	}
}

// Submit enqueues an admission request, blocking while the queue is full,
// and returns a channel that delivers the Outcome. The channel is
// buffered: a caller that abandons it leaks nothing and blocks no worker.
func (p *Pipeline) Submit(app *model.Application, lib *model.Library) (<-chan Outcome, error) {
	p.closing.RLock()
	defer p.closing.RUnlock()
	if p.closed {
		return nil, fmt.Errorf("manager: pipeline is closed")
	}
	j := &job{req: Request{App: app, Lib: lib}, enqueued: time.Now(), done: make(chan Outcome, 1)}
	p.jobs <- j
	return j.done, nil
}

// TrySubmit is Submit without the blocking: it reports false when the
// queue is full or the pipeline closed, so callers can shed load.
func (p *Pipeline) TrySubmit(app *model.Application, lib *model.Library) (<-chan Outcome, bool) {
	p.closing.RLock()
	defer p.closing.RUnlock()
	if p.closed {
		return nil, false
	}
	j := &job{req: Request{App: app, Lib: lib}, enqueued: time.Now(), done: make(chan Outcome, 1)}
	select {
	case p.jobs <- j:
		return j.done, true
	default:
		return nil, false
	}
}

// Close stops accepting requests, drains the queue and waits for all
// workers to finish. Outcomes of already-submitted requests are still
// delivered.
func (p *Pipeline) Close() {
	p.closing.Lock()
	if p.closed {
		p.closing.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.closing.Unlock()
	p.wg.Wait()
}
