package manager

import (
	"fmt"
	"sync"
	"time"

	"rtsm/internal/model"
)

// Request is one admission to run through a Pipeline.
type Request struct {
	App *model.Application
	Lib *model.Library
}

type job struct {
	req      Request
	prio     model.Priority
	enqueued time.Time
	done     chan Outcome
}

// Pipeline is a bounded admission work queue in front of a Manager: up to
// `depth` requests wait in the queue and `workers` goroutines run the
// speculative mapping phase concurrently. Submit blocks when the queue is
// full, giving callers natural backpressure; TrySubmit sheds load instead.
//
// The queue is priority-aware: requests are classed by their
// application's QoS priority (model.Priority, tagged on the spec) into
// per-class FIFOs, and workers serve the highest class first. Aging keeps
// this starvation-free — a request promotes by one class per SetAging
// interval spent queued, so under a continuous high-priority stream a
// best-effort request still reaches the top class after a bounded wait
// and is then served before any later arrival. With every request
// untagged (BestEffort, the zero value) the queue degenerates to the
// plain FIFO of the pre-priority pipeline.
//
// Departures need no queue — call Manager.Stop directly, it only takes
// the short commit lock.
type Pipeline struct {
	m *Manager
	q *prioQueue

	closing sync.RWMutex // held shared by submitters, exclusively by Close
	closed  bool
	wg      sync.WaitGroup
}

// NewPipeline starts a pipeline with the given number of admission
// workers and queue slots. workers < 1 is treated as 1; depth < 1 keeps a
// single queue slot (every Submit hands off almost directly to a worker).
// Aging defaults to DefaultAging; tune it with SetAging.
func NewPipeline(m *Manager, workers, depth int) *Pipeline {
	if workers < 1 {
		workers = 1
	}
	p := &Pipeline{m: m, q: newPrioQueue(depth, DefaultAging)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// SetAging adjusts the queue time that promotes a waiting request by one
// priority class (d ≤ 0 disables aging: strict class order, best-effort
// requests may starve behind a continuous higher-class stream).
func (p *Pipeline) SetAging(d time.Duration) { p.q.setAging(d) }

func (p *Pipeline) worker() {
	defer p.wg.Done()
	for {
		j, ok := p.q.pop()
		if !ok {
			return
		}
		wait := time.Since(j.enqueued)
		j.done <- p.m.admit(j.req.App, j.req.Lib, wait)
	}
}

// Submit enqueues an admission request, blocking while the queue is full,
// and returns a channel that delivers the Outcome. The request is queued
// at the application's own QoS class. The channel is buffered: a caller
// that abandons it leaks nothing and blocks no worker.
func (p *Pipeline) Submit(app *model.Application, lib *model.Library) (<-chan Outcome, error) {
	p.closing.RLock()
	defer p.closing.RUnlock()
	if p.closed {
		return nil, fmt.Errorf("manager: pipeline is closed")
	}
	j := newJob(app, lib)
	if !p.q.push(j) {
		return nil, fmt.Errorf("manager: pipeline is closed")
	}
	return j.done, nil
}

// TrySubmit is Submit without the blocking: it reports false when the
// queue is full or the pipeline closed, so callers can shed load.
func (p *Pipeline) TrySubmit(app *model.Application, lib *model.Library) (<-chan Outcome, bool) {
	p.closing.RLock()
	defer p.closing.RUnlock()
	if p.closed {
		return nil, false
	}
	j := newJob(app, lib)
	if !p.q.tryPush(j) {
		return nil, false
	}
	return j.done, true
}

func newJob(app *model.Application, lib *model.Library) *job {
	return &job{
		req:      Request{App: app, Lib: lib},
		prio:     clampPriority(app.QoS.Priority),
		enqueued: time.Now(),
		done:     make(chan Outcome, 1),
	}
}

// Close stops accepting requests, drains the queue and waits for all
// workers to finish. Outcomes of already-submitted requests are still
// delivered.
func (p *Pipeline) Close() {
	p.closing.Lock()
	if p.closed {
		p.closing.Unlock()
		return
	}
	p.closed = true
	p.closing.Unlock()
	// Workers drain the queue after close(): pop keeps delivering queued
	// jobs and only reports done once the queue is empty.
	p.q.close()
	p.wg.Wait()
}
