package manager

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"

	"rtsm/internal/arch"
	"rtsm/internal/core"
	"rtsm/internal/journal"
	"rtsm/internal/model"
	"rtsm/internal/workload"
)

// procTiles lists the platform's failable processing tiles (stream
// endpoints and filler tiles carry no residents worth evacuating).
func procTiles(plat *arch.Platform) []arch.TileID {
	var ids []arch.TileID
	for _, t := range plat.Tiles {
		switch t.Type {
		case arch.TypeSource, arch.TypeSink, arch.TypeNone:
			continue
		}
		ids = append(ids, t.ID)
	}
	return ids
}

// runningNames is the manager's resident set, sorted for comparison.
func runningNames(m *Manager) []string {
	var names []string
	for _, ad := range m.Running() {
		names = append(names, ad.App.Name)
	}
	sort.Strings(names)
	return names
}

// TestCrashReplayReproducesLivePlatform is the crash-recovery pin:
// randomized concurrent churn with mid-run tile faults journals through
// a hash-chained writer, the run quiesces and seals (the durable
// checkpoint a crash would recover to), and then keeps working without
// ever sealing again — the torn tail. Replaying the journal into a
// fresh pristine platform must discard exactly the torn tail and
// reproduce the sealed live platform bit-for-bit: every reservation
// float, every occupancy count, every Failed flag. This is what makes
// the journal a recovery log rather than a trace: per-region append
// order equals commit order, and each event carries the exact
// aggregated deltas its live commit applied.
func TestCrashReplayReproducesLivePlatform(t *testing.T) {
	plat := workload.SyntheticRegionPlatform(8, 8, 123, 4)
	replayBase := plat.Clone() // pristine twin for the recovery
	tiles := procTiles(plat)
	if len(tiles) == 0 {
		t.Fatal("no processing tiles on the synthetic platform")
	}

	var buf bytes.Buffer
	jw := journal.NewWriter(&buf, journal.Options{BatchSize: 16})
	m := New(plat, core.Config{})
	m.SetJournal(jw)
	m.SetMappingReuse(true)
	m.SetRepair(true)
	m.SetPreemption(true)

	// Phase 1: four workers churn mixed-priority arrivals across all
	// regions (straddlers included) while faults cycle through the
	// processing tiles. Roughly a third of the admissions stay resident.
	const workers = 4
	const perWorker = 30
	prios := []model.Priority{model.BestEffort, model.BestEffort, model.Standard, model.Critical}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n := w*perWorker + i
				app, lib := workload.Synthetic(workload.SynthOptions{
					Shape: workload.ShapeChain, Processes: 3 + n%3, Seed: int64(n % 7),
					MaxUtil: 0.12, PeriodNs: 40_000,
					SrcTile:  fmt.Sprintf("SRC%d", n%4),
					SinkTile: fmt.Sprintf("SINK%d", (n+n/4)%4),
					Priority: prios[n%len(prios)],
				})
				app.Name = fmt.Sprintf("crash-%d", n)
				out := m.Admit(app, lib)
				if out.Admitted && n%3 != 0 {
					// Best effort teardown: a victim mid-evacuation or a
					// fault-dropped resident refuses the stop; both are
					// legitimate journaled outcomes.
					_ = m.Stop(app.Name)
				}
			}
		}(w)
	}
	wg.Add(1)
	var faultsFired int
	go func() {
		defer wg.Done()
		for k := 0; k < 10; k++ {
			id := tiles[(k*5)%len(tiles)]
			if rep := m.FailTile(id); rep.Failed {
				faultsFired++
			}
			if k%2 == 1 {
				m.RestoreTile(id)
			}
		}
	}()
	wg.Wait()
	if faultsFired == 0 {
		t.Fatal("no fault injected; fixture broken")
	}

	// Quiesced seal: everything journaled so far becomes durable. This
	// is the state a crash after this instant must recover to — capture
	// it bit-for-bit.
	jw.Flush()
	if err := jw.Err(); err != nil {
		t.Fatalf("journal writer: %v", err)
	}
	sealed := plat.Clone()
	sealedNames := runningNames(m)
	sealedLen := buf.Len()

	// Phase 2, the torn tail: more committed work — reservation changes
	// and a restore — that is appended and acked but never sealed.
	// Sync drains the writer without writing a seal record; abandoning
	// the writer here (no Close) is the simulated crash.
	torn := 0
	for i := 0; i < 20 && torn == 0; i++ {
		app, lib := workload.Synthetic(workload.SynthOptions{
			Shape: workload.ShapeChain, Processes: 3, Seed: int64(i),
			MaxUtil: 0.05, PeriodNs: 40_000,
			SrcTile: "SRC0", SinkTile: "SINK0",
		})
		app.Name = fmt.Sprintf("torn-%d", i)
		if out := m.Admit(app, lib); out.Admitted {
			torn++
		}
	}
	for _, id := range plat.FailedTiles() {
		m.RestoreTile(id) // guaranteed torn event even if no arrival fit
		torn++
	}
	if torn == 0 {
		t.Fatal("torn phase produced no events; fixture broken")
	}
	jw.Sync()
	if err := jw.Err(); err != nil {
		t.Fatalf("journal writer: %v", err)
	}
	if buf.Len() == sealedLen {
		t.Fatal("torn events never reached the journal stream")
	}

	rm, tail, err := Replay(replayBase, core.Config{}, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if tail == 0 {
		t.Fatal("replay discarded no torn tail; crash simulation broken")
	}
	if err := arch.PlatformsIdentical(sealed, replayBase); err != nil {
		t.Fatalf("replayed platform differs from sealed live platform: %v", err)
	}
	gotNames := runningNames(rm)
	if len(gotNames) != len(sealedNames) {
		t.Fatalf("replayed resident set: got %d residents, want %d\n got %v\nwant %v",
			len(gotNames), len(sealedNames), gotNames, sealedNames)
	}
	for i := range gotNames {
		if gotNames[i] != sealedNames[i] {
			t.Fatalf("replayed resident set differs at %d: got %q, want %q", i, gotNames[i], sealedNames[i])
		}
	}
	if err := rm.CheckInvariants(); err != nil {
		t.Fatalf("replayed manager invariants: %v", err)
	}
	t.Logf("crash replay: %d residents at seal, %d faults, %d torn events discarded", len(sealedNames), faultsFired, tail)
}

// TestReplayRejectsCorruptStream pins the failure mode: a journal whose
// chain does not verify must not rebuild a manager at all.
func TestReplayRejectsCorruptStream(t *testing.T) {
	plat := workload.SyntheticPlatform(4, 4, 7)
	var buf bytes.Buffer
	jw := journal.NewWriter(&buf, journal.Options{BatchSize: 2})
	m := New(plat, core.Config{})
	m.SetJournal(jw)
	for i := 0; i < 6; i++ {
		app, lib := workload.Synthetic(workload.SynthOptions{
			Shape: workload.ShapeChain, Processes: 3, Seed: int64(i),
			MaxUtil: 0.05, PeriodNs: 40_000,
		})
		app.Name = fmt.Sprintf("corrupt-%d", i)
		m.Admit(app, lib)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if len(raw) < 100 {
		t.Fatalf("journal too short to corrupt: %d bytes", len(raw))
	}
	raw[len(raw)/2] ^= 0x20
	if _, _, err := Replay(workload.SyntheticPlatform(4, 4, 7), core.Config{}, bytes.NewReader(raw)); err == nil {
		t.Fatal("replay accepted a corrupted journal")
	}
}

// TestReplaySegmentsRotatedPair pins journal rotation end to end: a live
// run rotates its journal mid-stream, and ReplaySegments over the
// resulting segment pair rebuilds the sealed live platform bit-for-bit,
// exactly as a single unrotated journal would. It also pins the failure
// modes: segments out of order and a lone later segment offered as a
// full history must both be rejected.
func TestReplaySegmentsRotatedPair(t *testing.T) {
	plat := workload.SyntheticRegionPlatform(8, 8, 321, 4)
	replayBase := plat.Clone()

	var seg1, seg2 bytes.Buffer
	jw := journal.NewWriter(&seg1, journal.Options{BatchSize: 8})
	m := New(plat, core.Config{})
	m.SetJournal(jw)

	admit := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			app, lib := workload.Synthetic(workload.SynthOptions{
				Shape: workload.ShapeChain, Processes: 3 + i%3, Seed: int64(i % 5),
				MaxUtil: 0.08, PeriodNs: 40_000,
				SrcTile:  fmt.Sprintf("SRC%d", i%4),
				SinkTile: fmt.Sprintf("SINK%d", i%4),
			})
			app.Name = fmt.Sprintf("rot-%d", i)
			if out := m.Admit(app, lib); out.Admitted && i%4 == 0 {
				_ = m.Stop(app.Name)
			}
		}
	}
	admit(0, 25)
	if err := jw.Rotate(&seg2, nil); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	admit(25, 50)
	if err := jw.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if seg1.Len() == 0 || seg2.Len() == 0 {
		t.Fatalf("rotation did not split the stream: %d / %d bytes", seg1.Len(), seg2.Len())
	}

	rm, tail, err := ReplaySegments(replayBase, core.Config{},
		bytes.NewReader(seg1.Bytes()), bytes.NewReader(seg2.Bytes()))
	if err != nil {
		t.Fatalf("replay segments: %v", err)
	}
	if tail != 0 {
		t.Fatalf("closed journal left %d torn events", tail)
	}
	if err := arch.PlatformsIdentical(plat, replayBase); err != nil {
		t.Fatalf("rotated replay differs from live platform: %v", err)
	}
	want := runningNames(m)
	got := runningNames(rm)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("replayed resident set differs:\n got %v\nwant %v", got, want)
	}
	if err := rm.CheckInvariants(); err != nil {
		t.Fatalf("replayed manager invariants: %v", err)
	}

	// Reordered segments break the seed chain.
	if _, _, err := ReplaySegments(plat.Clone(), core.Config{},
		bytes.NewReader(seg2.Bytes()), bytes.NewReader(seg1.Bytes())); err == nil {
		t.Fatal("replay accepted out-of-order segments")
	}
	// A later segment alone is an incomplete history: its snapshot head
	// declares a non-genesis seed, so offering it as segment 0 of a
	// chain must fail loudly rather than replay half the events.
	if _, _, err := ReplaySegments(plat.Clone(), core.Config{},
		bytes.NewReader(seg2.Bytes())); err == nil {
		t.Fatal("replay accepted a mid-chain segment as a full history")
	}
}
