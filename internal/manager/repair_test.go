package manager

import (
	"testing"

	"rtsm/internal/core"
	"rtsm/internal/model"
	"rtsm/internal/workload"
)

func repairTestArrival(name string, seed int64) (*model.Application, *model.Library) {
	app, lib := workload.Synthetic(workload.SynthOptions{
		Shape: workload.ShapeChain, Processes: 4, Seed: seed, MaxUtil: 0.3,
	})
	app.Name = name
	return app, lib
}

// TestStaleTemplateIsRepairedNotRemapped: when no pooled placement fits
// the live platform, the manager refits the template — keeping what still
// fits — instead of discarding it and running the full mapper.
func TestStaleTemplateIsRepairedNotRemapped(t *testing.T) {
	plat := workload.SyntheticPlatform(4, 4, 7)
	m := New(plat, core.Config{})
	m.SetMappingReuse(true)

	first, lib := repairTestArrival("tpl-seed", 3)
	ad, err := m.Start(first, lib)
	if err != nil {
		t.Fatal(err)
	}
	// Remember a tile the template uses, then stop the app and saturate
	// that tile so the remembered placement no longer fits.
	victim := ad.Result.Mapping.Tile[first.MappableProcesses()[0].ID]
	if err := m.Stop(first.Name); err != nil {
		t.Fatal(err)
	}
	// Mutate through the CoW write barrier: the manager's snapshots may
	// share this tile's struct, and the admission below will fault the
	// region in — a cached pointer would go stale.
	vt := plat.WTile(victim)
	vt.ReservedUtil = 1.0
	reservedMem := vt.FreeMem()
	vt.ReservedMem += reservedMem
	plat.BumpVersion()

	second, lib2 := repairTestArrival("tpl-replay", 3)
	out := m.Admit(second, lib2)
	if out.Err != nil {
		t.Fatalf("admission failed: %v", out.Err)
	}
	if !out.Repaired {
		t.Fatal("stale template should resolve via repair")
	}
	st := m.Stats()
	if st.StaleTemplates != 1 || st.RepairedTemplates != 1 {
		t.Fatalf("stats: StaleTemplates=%d RepairedTemplates=%d, want 1/1", st.StaleTemplates, st.RepairedTemplates)
	}
	if st.FullRemaps != 0 {
		t.Fatalf("repair path should not have run a full remap, FullRemaps=%d", st.FullRemaps)
	}
	if rate, ok := st.RepairRate(); !ok || rate != 1.0 {
		t.Fatalf("RepairRate = %v, %v; want 1.0", rate, ok)
	}
	for pid, tile := range out.Admission.Result.Mapping.Tile {
		if tile == victim {
			t.Fatalf("repaired admission still places process %d on the saturated tile", pid)
		}
	}

	// Full churn returns the ledger exactly to pristine: stop the
	// admission, undo the manual saturation, compare residuals.
	if err := m.Stop(second.Name); err != nil {
		t.Fatal(err)
	}
	vt = plat.WTile(victim) // re-fetch: commits since may have faulted the region
	vt.ReservedUtil = 0
	vt.ReservedMem -= reservedMem
	plat.BumpVersion()
	pristine := workload.SyntheticPlatform(4, 4, 7).Residual()
	if got := m.Residual(); !got.Equal(pristine) {
		t.Fatalf("ledger not pristine after churn with repair enabled:\n%+v", pristine.Diff(got))
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSetRepairOffFallsBackToFullRemap pins the pre-repair behaviour
// behind the toggle: a stale template goes straight to the full mapper.
func TestSetRepairOffFallsBackToFullRemap(t *testing.T) {
	plat := workload.SyntheticPlatform(4, 4, 7)
	m := New(plat, core.Config{})
	m.SetMappingReuse(true)
	m.SetRepair(false)

	first, lib := repairTestArrival("tpl-seed", 3)
	ad, err := m.Start(first, lib)
	if err != nil {
		t.Fatal(err)
	}
	victim := ad.Result.Mapping.Tile[first.MappableProcesses()[0].ID]
	if err := m.Stop(first.Name); err != nil {
		t.Fatal(err)
	}
	vt := plat.WTile(victim)
	vt.ReservedUtil = 1.0
	plat.BumpVersion()

	second, lib2 := repairTestArrival("tpl-replay", 3)
	out := m.Admit(second, lib2)
	if out.Err != nil {
		t.Fatalf("admission failed: %v", out.Err)
	}
	if out.Repaired {
		t.Fatal("repair is off; outcome must not be repaired")
	}
	st := m.Stats()
	if st.StaleTemplates != 1 || st.RepairAttempts != 0 || st.FullRemaps != 1 {
		t.Fatalf("stats: StaleTemplates=%d RepairAttempts=%d FullRemaps=%d, want 1/0/1",
			st.StaleTemplates, st.RepairAttempts, st.FullRemaps)
	}
}
