package manager

import (
	"time"

	"rtsm/internal/arch"
	"rtsm/internal/core"
	"rtsm/internal/journal"
)

// Run-time fault injection and recovery. Failing a tile or link flips
// the resource's Failed flag under its region lock — which bumps the
// region version, so every in-flight plan whose footprint touches it
// re-validates and sees the failure — and then evacuates the residents
// the resource carried: each one's reservations are released (it cannot
// keep running on dead silicon) and a relocation round tries to refit
// its mapping onto the surviving mesh, where canHost and the NoC router
// already exclude failed resources. Only when no refit commits is the
// resident dropped. The split is reported per fault (FaultReport) and
// accumulated in Stats.FaultRelocated / Stats.FaultDropped.

// FaultReport summarises one fault injection and its recovery.
type FaultReport struct {
	// Failed is false when nothing changed: the resource was already
	// failed, or the ID is unknown.
	Failed bool
	// Residents lists the applications that held reservations on the
	// failed resource, in admission order. Relocated and Dropped
	// partition it by evacuation outcome.
	Residents []string
	Relocated []string
	Dropped   []string
	// Recover is the wall time from the fault to the last resident's
	// outcome — the mesh's time-to-recover for this fault.
	Recover time.Duration
}

// FailTile marks the tile failed and evacuates its residents. Safe for
// concurrent use with admissions, stops and other faults.
func (m *Manager) FailTile(id arch.TileID) FaultReport {
	if id < 0 || int(id) >= len(m.plat.Tiles) {
		return FaultReport{}
	}
	return m.failResource(m.plat.RegionOfTile(id),
		func() bool { return m.plat.FailTile(id) },
		journal.Event{Type: journal.EvFailTile, Tile: id},
		func(p *core.Plan) bool { return p.UsesTile(id) })
}

// FailLink marks the link failed and evacuates the residents routing
// through it.
func (m *Manager) FailLink(id arch.LinkID) FaultReport {
	if id < 0 || int(id) >= len(m.plat.Links) {
		return FaultReport{}
	}
	return m.failResource(m.plat.RegionOfLink(id),
		func() bool { return m.plat.FailLink(id) },
		journal.Event{Type: journal.EvFailLink, Link: id},
		func(p *core.Plan) bool { return p.UsesLink(id) })
}

// RestoreTile returns a failed tile to service, reporting whether
// anything changed. Its ledger was kept intact through the failure, so
// the capacity the evacuation could not move (dropped residents were
// released) is immediately admissible again.
func (m *Manager) RestoreTile(id arch.TileID) bool {
	if id < 0 || int(id) >= len(m.plat.Tiles) {
		return false
	}
	return m.restoreResource(m.plat.RegionOfTile(id),
		func() bool { return m.plat.RestoreTile(id) },
		journal.Event{Type: journal.EvRestoreTile, Tile: id})
}

// RestoreLink returns a failed link to service.
func (m *Manager) RestoreLink(id arch.LinkID) bool {
	if id < 0 || int(id) >= len(m.plat.Links) {
		return false
	}
	return m.restoreResource(m.plat.RegionOfLink(id),
		func() bool { return m.plat.RestoreLink(id) },
		journal.Event{Type: journal.EvRestoreLink, Link: id})
}

// failResource is the shared fail-and-evacuate machinery: flip the flag
// and journal the fault under the resource's region lock, claim every
// resident whose plan touches the resource, release each one (journaled
// as a fault release under its footprint locks) and try to relocate it.
func (m *Manager) failResource(region arch.RegionID, fail func() bool,
	ev journal.Event, uses func(*core.Plan) bool) FaultReport {
	start := time.Now()
	rl := []arch.RegionID{region}
	m.locks.Lock(rl)
	ok := fail()
	if ok {
		m.journalEvent(ev)
	}
	m.locks.Unlock(rl)
	if !ok {
		return FaultReport{}
	}
	rep := FaultReport{Failed: true}
	m.mu.Lock()
	m.stats.FaultsInjected++
	m.mu.Unlock()

	// Claim-then-inspect: a resident's Result may be swapped by a
	// concurrent relocation, so its plan is only read under a claim
	// (claimVictim wins or the resident is someone else's problem — a
	// concurrent Stop or preemption already owns its release).
	type victim struct {
		ad   *Admission
		plan *core.Plan
	}
	var victims []victim
	for _, ad := range m.Running() {
		if !m.claimVictim(ad) {
			continue
		}
		plan, err := m.removalPlan(ad)
		if err != nil || !uses(plan) {
			m.unclaimVictims([]*Admission{ad})
			continue
		}
		victims = append(victims, victim{ad, plan})
		rep.Residents = append(rep.Residents, ad.App.Name)
	}

	for _, v := range victims {
		fp := v.plan.Regions()
		m.locks.Lock(fp)
		v.plan.Release(m.plat)
		m.journalPlan(journal.EvFaultRelease, v.ad.App.Name, v.ad.Priority, v.plan)
		m.locks.Unlock(fp)
		if m.relocateFaultVictim(v.ad) {
			rep.Relocated = append(rep.Relocated, v.ad.App.Name)
		} else {
			rep.Dropped = append(rep.Dropped, v.ad.App.Name)
		}
	}
	rep.Recover = time.Since(start)
	return rep
}

// restoreResource flips a resource back under its region lock.
func (m *Manager) restoreResource(region arch.RegionID, restore func() bool,
	ev journal.Event) bool {
	rl := []arch.RegionID{region}
	m.locks.Lock(rl)
	ok := restore()
	if ok {
		m.journalEvent(ev)
	}
	m.locks.Unlock(rl)
	if ok {
		m.mu.Lock()
		m.stats.Restores++
		m.mu.Unlock()
	}
	return ok
}

// relocateFaultVictim tries to keep an evacuated (already released)
// resident running by committing a relocated mapping, reporting whether
// it succeeded. It mirrors relocateVictim but relocates with the fault
// bias (see SetFaultBias) and books the outcome under the fault
// counters.
func (m *Manager) relocateFaultVictim(v *Admission) bool {
	if v.Result == nil || v.lib == nil {
		// Replay-rebuilt resident: journaled deltas are all that is known
		// about it — there is no mapping to refit. Drop it.
		m.dropFaultVictim(v)
		return false
	}
	cfg := m.cfg
	if m.faultBias > 0 {
		cfg.RegionBias = m.faultBias
	}
	vm := &core.Mapper{Lib: v.lib, Cfg: cfg}
	m.mu.Lock()
	maxRetries := m.maxRetries
	m.mu.Unlock()
	for attempt := 0; ; attempt++ {
		snap := m.Snapshot()
		rep, err := vm.Relocate(v.Result, snap)
		if err != nil {
			break // nothing to salvage or infeasible on the surviving mesh
		}
		plan, perr := core.NewPlan(m.plat, rep)
		if perr != nil {
			break
		}
		footprint := plan.Regions()
		m.locks.Lock(footprint)
		if plan.Validate(m.plat) == nil {
			plan.Commit(m.plat)
			m.journalPlan(journal.EvRelocate, v.App.Name, v.Priority, plan)
			m.locks.Unlock(footprint)
			m.mu.Lock()
			m.loadRelease(v)
			v.Result = rep
			m.loadCharge(v)
			delete(m.preempting, v.App.Name)
			m.running[v.App.Name] = v
			m.stats.FaultRelocated++
			m.mu.Unlock()
			return true
		}
		m.locks.Unlock(footprint)
		if attempt >= maxRetries {
			break
		}
	}
	m.dropFaultVictim(v)
	return false
}

// dropFaultVictim records a resident the evacuation could not re-place.
func (m *Manager) dropFaultVictim(v *Admission) {
	m.mu.Lock()
	// Journal the eviction before the name frees up, so a re-admission
	// of the same name appends after it.
	m.journalEvent(journal.Event{Type: journal.EvEvict, App: v.App.Name})
	delete(m.preempting, v.App.Name)
	m.loadRelease(v)
	m.stats.FaultDropped++
	m.mu.Unlock()
}
