package manager

import (
	"errors"
	"fmt"
	"testing"

	"rtsm/internal/arch"
	"rtsm/internal/core"
	"rtsm/internal/model"
	"rtsm/internal/workload"
)

// fillBestEffort admits best-effort background apps until the first
// rejection, returning the admitted names. The platform is then "full"
// for this structure class: the next arrival of equal or larger demand
// cannot be admitted without displacement.
func fillBestEffort(t *testing.T, m *Manager, mk func(i int) (*model.Application, *model.Library)) []string {
	t.Helper()
	var names []string
	for i := 0; i < 500; i++ {
		app, lib := mk(i)
		out := m.Admit(app, lib)
		if !out.Admitted {
			return names
		}
		names = append(names, app.Name)
	}
	t.Fatal("background never saturated the platform")
	return nil
}

func beChain(i int) (*model.Application, *model.Library) {
	app, lib := workload.Synthetic(workload.SynthOptions{
		Shape: workload.ShapeChain, Processes: 3 + i%2, Seed: int64(i % 5),
		MaxUtil: 0.30, PeriodNs: 400_000,
	})
	app.Name = fmt.Sprintf("be-%d", i)
	return app, lib
}

// TestPreemptionAdmitsCriticalOnFullMesh pins the tentpole end to end at
// the manager level: a critical arrival on a saturated mesh is admitted
// by displacing best-effort victims, the ledger stays exact, and full
// teardown returns the platform to pristine.
func TestPreemptionAdmitsCriticalOnFullMesh(t *testing.T) {
	plat := workload.SyntheticPlatform(4, 4, 7)
	pristine := plat.Residual()
	m := New(plat, core.Config{})

	fillBestEffort(t, m, beChain)

	crit, lib := workload.Synthetic(workload.SynthOptions{
		Shape: workload.ShapeChain, Processes: 3, Seed: 1,
		MaxUtil: 0.30, PeriodNs: 400_000, Priority: model.Critical,
	})
	crit.Name = "critical-1"
	out := m.Admit(crit, lib)
	if !out.Admitted {
		t.Fatalf("critical arrival rejected despite preemption: %v", out.Err)
	}
	if out.Priority != model.Critical {
		t.Fatalf("outcome priority %v, want critical", out.Priority)
	}
	st := m.Stats()
	if st.Preemptions == 0 {
		t.Fatal("critical admission went through without preemption; background did not saturate")
	}
	if len(out.Preempted) == 0 {
		t.Fatal("outcome does not name its victims")
	}
	if st.Relocations+st.Evictions != st.Preemptions {
		t.Fatalf("victim accounting leaks: %d preempted, %d relocated + %d evicted",
			st.Preemptions, st.Relocations, st.Evictions)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("ledger after preemption: %v", err)
	}

	// Tear everything down; evicted victims are already gone.
	for _, ad := range m.Running() {
		if err := m.Stop(ad.App.Name); err != nil {
			t.Fatalf("stop %s: %v", ad.App.Name, err)
		}
	}
	if final := m.Residual(); !final.Equal(pristine) {
		d := pristine.Diff(final)
		t.Fatalf("ledger not pristine after full teardown: %d tiles, %d links drifted",
			len(d.Tiles), len(d.Links))
	}
}

// TestPreemptionDisabledRejects pins the ablation: the identical critical
// arrival on the identical saturated mesh is rejected with preemption
// off.
func TestPreemptionDisabledRejects(t *testing.T) {
	plat := workload.SyntheticPlatform(4, 4, 7)
	m := New(plat, core.Config{})
	m.SetPreemption(false)

	fillBestEffort(t, m, beChain)

	crit, lib := workload.Synthetic(workload.SynthOptions{
		Shape: workload.ShapeChain, Processes: 3, Seed: 1,
		MaxUtil: 0.30, PeriodNs: 400_000, Priority: model.Critical,
	})
	crit.Name = "critical-1"
	out := m.Admit(crit, lib)
	if out.Admitted {
		t.Fatal("critical arrival admitted on a full mesh with preemption off")
	}
	if st := m.Stats(); st.Preemptions != 0 {
		t.Fatalf("preemptions counted with preemption off: %d", st.Preemptions)
	}
}

// TestPreemptionRaisesCriticalAdmissionRate is the acceptance bar behind
// BenchmarkAdmissionPriority*: over the same saturated mesh and the same
// critical arrival sequence, the per-class admission rate with preemption
// strictly exceeds the no-preemption baseline.
func TestPreemptionRaisesCriticalAdmissionRate(t *testing.T) {
	run := func(preempt bool) (rate float64, st Stats) {
		plat := workload.SyntheticPlatform(4, 4, 7)
		m := New(plat, core.Config{})
		m.SetPreemption(preempt)
		fillBestEffort(t, m, beChain)
		for i := 0; i < 8; i++ {
			app, lib := workload.Synthetic(workload.SynthOptions{
				Shape: workload.ShapeChain, Processes: 3 + i%2, Seed: int64(i),
				MaxUtil: 0.30, PeriodNs: 400_000, Priority: model.Critical,
			})
			app.Name = fmt.Sprintf("crit-%d", i)
			m.Admit(app, lib)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("ledger (preempt=%v): %v", preempt, err)
		}
		r, ok := m.Stats().AdmissionRate(model.Critical)
		if !ok {
			t.Fatal("no critical arrivals counted")
		}
		return r, m.Stats()
	}
	withRate, withStats := run(true)
	withoutRate, _ := run(false)
	if withRate <= withoutRate {
		t.Fatalf("critical admission rate with preemption %.2f not above baseline %.2f",
			withRate, withoutRate)
	}
	if withStats.Preemptions == 0 {
		t.Fatal("rate comparison meaningless: no preemption occurred")
	}
	t.Logf("critical admission rate: %.0f%% with preemption vs %.0f%% without (%d preempted: %d relocated, %d evicted)",
		100*withRate, 100*withoutRate, withStats.Preemptions, withStats.Relocations, withStats.Evictions)
}

// TestPreemptionRelocatesHiperlan2Background is the end-to-end scenario
// of the paper's case study under load: HIPERLAN/2 receivers arrive at
// critical priority on a mesh already saturated by best-effort synthetic
// churn. Preemption must admit receivers, and the planner must prefer
// relocation over eviction — displaced best-effort victims with small
// footprints refit into the scattered residual slack, so the observed
// relocation rate is strictly positive.
func TestPreemptionRelocatesHiperlan2Background(t *testing.T) {
	// The synthetic mesh plus the receiver's pinned stream endpoints.
	plat := workload.SyntheticPlatform(6, 6, 11)
	plat.AttachTile(arch.TileSpec{
		Name: "A/D", Type: arch.TypeSource, At: arch.Pt(0, 0),
		ClockHz: 200_000_000, MemBytes: 64 << 10, NICapBps: 800_000_000,
	})
	plat.AttachTile(arch.TileSpec{
		Name: "Sink", Type: arch.TypeSink, At: arch.Pt(5, 5),
		ClockHz: 200_000_000, MemBytes: 64 << 10, NICapBps: 800_000_000,
	})
	m := New(plat, core.Config{})

	// Small best-effort apps: enough of them saturate the mesh, and each
	// one is cheap to relocate into leftover slack.
	mkBG := func(i int) (*model.Application, *model.Library) {
		app, lib := workload.Synthetic(workload.SynthOptions{
			Shape: workload.ShapeChain, Processes: 3, Seed: int64(i % 7),
			MaxUtil: 0.12, PeriodNs: 400_000,
		})
		app.Name = fmt.Sprintf("bg-%d", i)
		return app, lib
	}
	fillBestEffort(t, m, mkBG)

	admitted := 0
	for i, mode := range workload.Hiperlan2Modes {
		app := workload.Hiperlan2(mode)
		app.Name = fmt.Sprintf("rx-%d-%s", i, mode.Name)
		app.QoS.Priority = model.Critical
		lib := workload.Hiperlan2Library(mode)
		if out := m.Admit(app, lib); out.Admitted {
			admitted++
		}
		if st := m.Stats(); st.Preemptions > 0 && st.Relocations > 0 {
			break
		}
	}
	st := m.Stats()
	if admitted == 0 {
		t.Fatal("no HIPERLAN/2 receiver admitted over the background")
	}
	if st.Preemptions == 0 {
		t.Fatal("receivers were admitted without preemption; background did not saturate the mesh")
	}
	if st.Relocations == 0 {
		t.Fatalf("no victim relocated (all %d evicted): relocation-before-eviction broken", st.Evictions)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("ledger after receiver admissions: %v", err)
	}
	t.Logf("receivers admitted: %d; victims preempted: %d (%d relocated, %d evicted)",
		admitted, st.Preemptions, st.Relocations, st.Evictions)
}

// TestPruneVictimsDropsUnneededVictims pins the planner's minimality
// pass: victims whose eviction the found mapping does not rely on are
// unclaimed unharmed instead of being displaced for nothing. On an
// unsaturated mesh the arrival fits without any eviction, so a claimed
// pair must be pruned to the empty set and returned to the running set.
func TestPruneVictimsDropsUnneededVictims(t *testing.T) {
	plat := workload.SyntheticPlatform(6, 6, 7)
	m := New(plat, core.Config{})
	for i := 0; i < 2; i++ {
		app, lib := beChain(i)
		if out := m.Admit(app, lib); !out.Admitted {
			t.Fatalf("fixture admission %d failed: %v", i, out.Err)
		}
	}
	victims := m.Running()
	for _, v := range victims {
		if !m.claimVictim(v) {
			t.Fatalf("claim of %s failed", v.App.Name)
		}
	}

	app, lib := workload.Synthetic(workload.SynthOptions{
		Shape: workload.ShapeChain, Processes: 3, Seed: 9,
		MaxUtil: 0.30, PeriodNs: 400_000,
	})
	app.Name = "arrival"
	mapper := &core.Mapper{Lib: lib, Cfg: core.Config{}}
	res, err := mapper.Map(app, m.Snapshot().Plat)
	if err != nil || !res.Feasible {
		t.Fatalf("arrival not mappable on the uncontended mesh: %v", err)
	}

	kept := m.pruneVictims(victims, res)
	if len(kept) != 0 {
		t.Fatalf("prune kept %d victims for a mapping that needs none", len(kept))
	}
	if got := len(m.Running()); got != 2 {
		t.Fatalf("%d admissions running after prune, want the 2 unclaimed victims", got)
	}
}

// TestStateOfTracksLifecycle pins the lifecycle query the fleet's
// placement reconciliation relies on: a live application is always
// pending, running or preempting, and AppUnknown appears only once the
// manager truly holds nothing — after Stop or an eviction.
func TestStateOfTracksLifecycle(t *testing.T) {
	plat := workload.SyntheticPlatform(4, 4, 3)
	m := New(plat, core.Config{})
	if got := m.StateOf("ghost"); got != AppUnknown {
		t.Fatalf("StateOf(never admitted) = %v, want AppUnknown", got)
	}
	app, lib := beChain(0)
	if out := m.Admit(app, lib); !out.Admitted {
		t.Fatalf("fixture admission failed: %v", out.Err)
	}
	if got := m.StateOf(app.Name); got != AppRunning {
		t.Fatalf("StateOf(running) = %v, want AppRunning", got)
	}
	ad := m.Running()[0]
	if !m.claimVictim(ad) {
		t.Fatal("claim of a running admission failed")
	}
	if got := m.StateOf(app.Name); got != AppPreempting {
		t.Fatalf("StateOf(claimed) = %v, want AppPreempting", got)
	}
	m.unclaimVictims([]*Admission{ad})
	if got := m.StateOf(app.Name); got != AppRunning {
		t.Fatalf("StateOf(unclaimed) = %v, want AppRunning", got)
	}
	if err := m.Stop(app.Name); err != nil {
		t.Fatal(err)
	}
	if got := m.StateOf(app.Name); got != AppUnknown {
		t.Fatalf("StateOf(stopped) = %v, want AppUnknown", got)
	}
}

// TestStopDuringRelocationReturnsSentinel pins the Stop contract around
// preemption: a victim claimed by the planner reports ErrRelocating
// (recognisable through errors.Is) instead of vanishing or corrupting
// the ledger. Claiming is internal and brief, so the test drives the
// claim directly.
func TestStopDuringRelocationReturnsSentinel(t *testing.T) {
	plat := workload.SyntheticPlatform(4, 4, 3)
	m := New(plat, core.Config{})
	app, lib := beChain(0)
	if out := m.Admit(app, lib); !out.Admitted {
		t.Fatalf("fixture admission failed: %v", out.Err)
	}
	ad := m.Running()[0]
	if !m.claimVictim(ad) {
		t.Fatal("claim of a running admission failed")
	}
	err := m.Stop(ad.App.Name)
	if err == nil || !errors.Is(err, ErrRelocating) {
		t.Fatalf("Stop during relocation returned %v, want ErrRelocating", err)
	}
	m.unclaimVictims([]*Admission{ad})
	if err := m.Stop(ad.App.Name); err != nil {
		t.Fatalf("Stop after unclaim: %v", err)
	}
}
