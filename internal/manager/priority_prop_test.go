package manager

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"rtsm/internal/model"
)

// Property tests for the priority queue's fairness contract, driven with
// an injected clock so aging is deterministic. The pop rule under test:
// the queue always dequeues the job with the highest effective class
// (own class + one level per aging interval queued, capped at the top),
// ties broken by enqueue time. Two theorems follow and are checked over
// randomized arrival streams:
//
//  1. Per-class FIFO: within one class, jobs are dequeued in enqueue
//     order (aging preserves relative order inside a class).
//  2. Bounded bypass (the aging bound): once a job has waited
//     aging × (NumPriorities−1 − class), it competes at the top class,
//     and from then on no later-enqueued job of ANY class is dequeued
//     before it. A best-effort admission therefore waits at most the
//     aging bound plus the drain time of the jobs already ahead of it —
//     it cannot starve behind a continuous higher-class stream.

// propClock is a manually advanced clock for the queue's now func.
type propClock struct{ t time.Time }

func (c *propClock) now() time.Time { return c.t }

func newPropQueue(depth int, aging time.Duration) (*prioQueue, *propClock) {
	q := newPrioQueue(depth, aging)
	clk := &propClock{t: time.Unix(0, 0)}
	q.now = clk.now
	return q, clk
}

// agingBound is the queue time after which a job of the lowest class
// competes at the top class.
func agingBound(aging time.Duration) time.Duration {
	return aging * time.Duration(model.NumPriorities-1)
}

func TestPriorityQueueFairnessProperties(t *testing.T) {
	const aging = 100 * time.Millisecond
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			q, clk := newPropQueue(1<<20, aging)

			// A randomized interleaving of pushes and pops with the clock
			// advancing in random steps, biased toward a backlog so aging
			// actually engages.
			next := 0
			var popped []*job
			queued := make(map[*job]struct{})
			step := func() {
				clk.t = clk.t.Add(time.Duration(rng.Intn(40)) * time.Millisecond)
				if rng.Intn(3) < 2 || q.len() == 0 {
					j := &job{
						prio:     model.Priority(rng.Intn(model.NumPriorities)),
						enqueued: clk.t,
						done:     make(chan Outcome, 1),
					}
					j.req.App = nil // payload is irrelevant to ordering
					_ = next
					next++
					if ok, _ := q.tryPush(j); !ok {
						t.Fatal("queue full despite huge depth")
					}
					queued[j] = struct{}{}
					return
				}
				// Before popping, note every queued job already at the top
				// effective class: the winner must be the oldest of them.
				var agedOldest *job
				for j := range queued {
					if q.effectiveClass(j, clk.t) == model.NumPriorities-1 {
						if agedOldest == nil || j.enqueued.Before(agedOldest.enqueued) {
							agedOldest = j
						}
					}
				}
				j, ok := q.pop()
				if !ok {
					t.Fatal("pop on non-empty queue failed")
				}
				delete(queued, j)
				popped = append(popped, j)
				// Pop-rule check: nothing left queued may strictly dominate
				// the winner (higher effective class, or same class and
				// earlier enqueue).
				effJ := q.effectiveClass(j, clk.t)
				for k := range queued {
					effK := q.effectiveClass(k, clk.t)
					if effK > effJ {
						t.Fatalf("popped eff %d while eff %d was queued", effJ, effK)
					}
					if effK == effJ && k.enqueued.Before(j.enqueued) {
						t.Fatalf("popped a younger job at equal effective class")
					}
				}
				// Bounded bypass: with a top-class job waiting, the winner
				// is enqueued no later than the oldest such job. In
				// particular a best-effort job that has aged past
				// agingBound is never overtaken by a later arrival.
				if agedOldest != nil && j.enqueued.After(agedOldest.enqueued) {
					t.Fatalf("job enqueued at %v overtook a fully aged job from %v",
						j.enqueued, agedOldest.enqueued)
				}
			}
			for i := 0; i < 3000; i++ {
				step()
			}
			// Drain and check per-class FIFO over the whole history.
			for q.len() > 0 {
				j, _ := q.pop()
				popped = append(popped, j)
			}
			var lastByClass [model.NumPriorities]time.Time
			for _, j := range popped {
				c := clampPriority(j.prio)
				if j.enqueued.Before(lastByClass[c]) {
					t.Fatalf("class %v dequeued out of FIFO order", c)
				}
				lastByClass[c] = j.enqueued
			}
		})
	}
}

// TestPriorityQueueAgingBoundEndToEnd pins the fairness theorem in its
// user-facing form: a best-effort job enqueued into a continuous stream
// of critical arrivals is served once its wait crosses the aging bound —
// strict priority without aging would starve it forever.
func TestPriorityQueueAgingBoundEndToEnd(t *testing.T) {
	const aging = 50 * time.Millisecond
	q, clk := newPropQueue(1<<16, aging)

	be := &job{prio: model.BestEffort, enqueued: clk.t}
	if ok, _ := q.tryPush(be); !ok {
		t.Fatal("push failed")
	}
	served := false
	var wait time.Duration
	for i := 0; i < 100; i++ {
		// One critical arrival and one service per 10ms tick: the
		// critical stream alone would saturate the queue forever.
		crit := &job{prio: model.Critical, enqueued: clk.t}
		if ok, _ := q.tryPush(crit); !ok {
			t.Fatal("push failed")
		}
		clk.t = clk.t.Add(10 * time.Millisecond)
		j, ok := q.pop()
		if !ok {
			t.Fatal("pop failed")
		}
		if j == be {
			served = true
			wait = clk.t.Sub(be.enqueued)
			break
		}
	}
	if !served {
		t.Fatal("best-effort job starved behind the critical stream")
	}
	// Served at the first pop after crossing the bound; with one service
	// per tick the wait is the bound plus at most one tick.
	if limit := agingBound(aging) + 10*time.Millisecond; wait > limit {
		t.Fatalf("best-effort wait %v exceeds aging bound %v", wait, limit)
	}
	// Sanity: without aging the same stream starves the best-effort job.
	q2, clk2 := newPropQueue(1<<16, 0)
	be2 := &job{prio: model.BestEffort, enqueued: clk2.t}
	q2.tryPush(be2)
	for i := 0; i < 100; i++ {
		q2.tryPush(&job{prio: model.Critical, enqueued: clk2.t})
		clk2.t = clk2.t.Add(10 * time.Millisecond)
		if j, _ := q2.pop(); j == be2 {
			t.Fatal("strict-priority queue served the best-effort job ahead of critical work")
		}
	}
}
