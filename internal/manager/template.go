package manager

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"rtsm/internal/core"
	"rtsm/internal/csdf"
	"rtsm/internal/model"
)

// Mapping reuse: an online manager sees the same application structures
// over and over — the paper's own case study is a receiver that restarts
// whenever the radio re-tunes. Recomputing the four-step mapping for a
// structurally identical arrival is pure waste when the previous mapping
// still fits, and the transactional commit path makes reuse safe: a
// remembered mapping is re-validated against the live platform exactly
// like a speculatively computed one, so a stale template can only be
// rejected, never corrupt the ledger. On a template hit an admission
// costs one validate-and-apply (tens of microseconds) instead of a full
// mapping run (milliseconds); on validation failure the admission falls
// back to the normal snapshot-map-commit path and refreshes the template.
//
// Reuse trades mapping optimality for admission latency: a template
// computed against a different residual state may power tiles a fresh
// mapping would avoid. Managers therefore default to reuse off; enable
// it with SetMappingReuse for throughput-oriented deployments.

// Fingerprint identifies the structure of a mapping problem: everything
// Mapper.Map's outcome depends on except the platform's residual state
// and the application's display name. Two arrivals with equal
// fingerprints are interchangeable for mapping purposes.
//
// The encoding is a hand-rolled length-prefixed binary walk of the spec
// rather than reflected JSON: the fingerprint runs once per admission on
// the warm path, where JSON encoding used to be the single largest cost.
// The name and the QoS priority are excluded — identity is structural,
// not nominal, and priority orders the queue, not the mapping.
// Implementations are visited in process declaration order and library
// registration order, both part of the mapping's semantics (they encode
// the paper's tie-breaking); port maps are visited in sorted-key order
// so equal structures hash equally.
func Fingerprint(app *model.Application, lib *model.Library) (string, error) {
	e := fpEncoder{buf: make([]byte, 0, 1024)}
	e.i64(app.QoS.PeriodNs)
	e.i64(app.QoS.LatencyNs)
	e.i64(int64(len(app.Processes)))
	for _, p := range app.Processes {
		e.str(p.Name)
		e.str(p.PinnedTile)
		e.bool(p.Control)
	}
	e.i64(int64(len(app.Channels)))
	for _, c := range app.Channels {
		e.str(c.Name)
		e.i64(int64(c.Src))
		e.i64(int64(c.Dst))
		e.i64(c.TokensPerPeriod)
		e.i64(c.TokenBytes)
		e.str(c.SrcPort)
		e.str(c.DstPort)
	}
	for _, p := range app.Processes {
		for _, im := range lib.For(p.Name) {
			e.str(im.Process)
			e.str(string(im.TileType))
			e.pattern(im.WCET)
			e.ports(im.In)
			e.ports(im.Out)
			e.f64(im.EnergyPerPeriod)
			e.i64(im.MemBytes)
		}
	}
	sum := sha256.Sum256(e.buf)
	return hex.EncodeToString(sum[:]), nil
}

// fpEncoder accumulates the fingerprint's unambiguous byte encoding:
// every variable-length field is length-prefixed, so no two distinct
// specs share an encoding.
type fpEncoder struct {
	buf []byte
}

func (e *fpEncoder) i64(v int64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(v))
}

func (e *fpEncoder) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

func (e *fpEncoder) str(s string) {
	e.i64(int64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *fpEncoder) bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

func (e *fpEncoder) pattern(p csdf.Pattern) {
	e.i64(int64(len(p)))
	for _, v := range p {
		e.i64(v)
	}
}

func (e *fpEncoder) ports(m map[string]csdf.Pattern) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.i64(int64(len(keys)))
	for _, k := range keys {
		e.str(k)
		e.pattern(m[k])
	}
}

// templatePoolSize caps how many alternative placements are remembered
// per fingerprint. First-fit mappings computed at different platform
// occupancies land on different tiles, so a small pool covers the
// platform well; trying all of them is still two orders of magnitude
// cheaper than one mapper run.
const templatePoolSize = 8

// templateCache remembers recently committed mappings per fingerprint.
// Results stored here are treated as immutable; Apply and Remove only
// read them. Per fingerprint a pool of differently placed mappings is
// kept, with a rotating start index so concurrent instances of the same
// structure spread over tiles instead of all contending for the first
// template's.
type templateCache struct {
	mu   sync.RWMutex
	m    map[string][]*core.Result
	next map[string]*uint64
}

func newTemplateCache() *templateCache {
	return &templateCache{
		m:    make(map[string][]*core.Result),
		next: make(map[string]*uint64),
	}
}

// get returns the pool for a fingerprint and the index to start trying
// templates from; successive callers get successive start indices, so
// concurrent instances of the same structure spread over tiles instead
// of all contending for the first template's. Callers iterate the pool
// as pool[(start+k) % len(pool)] for k = 0..len-1. The returned slice is
// the cache's own copy-on-write header: it must not be modified, and
// handing it out allocation-free is what keeps a warm template hit off
// the heap entirely (pinned by BenchmarkTemplateGet).
func (c *templateCache) get(fp string) (pool []*core.Result, start int) {
	c.mu.RLock()
	pool = c.m[fp]
	ctr := c.next[fp]
	c.mu.RUnlock()
	if len(pool) <= 1 {
		return pool, 0
	}
	return pool, int(atomic.AddUint64(ctr, 1) % uint64(len(pool)))
}

// put adds a mapping to the fingerprint's pool unless an identically
// placed one is already there; the oldest entry is evicted past the cap.
// The pool slice is copy-on-write: get hands out the current header
// without copying, so the backing array must never be mutated in place.
// The stored result is a shallow copy with the working-platform clone and
// the trace stripped: commit and repair only read Mapping, Energy and
// BaseResidual, and a long-lived pool must not pin a mesh deep copy per
// template.
func (c *templateCache) put(fp string, res *core.Result) {
	slim := *res
	slim.Platform = nil
	slim.Trace = nil
	res = &slim
	c.mu.Lock()
	defer c.mu.Unlock()
	pool := c.m[fp]
	for _, have := range pool {
		if samePlacement(have, res) {
			return
		}
	}
	if len(pool) >= templatePoolSize {
		pool = pool[1:]
	}
	next := make([]*core.Result, 0, len(pool)+1)
	next = append(next, pool...)
	c.m[fp] = append(next, res)
	if c.next[fp] == nil {
		c.next[fp] = new(uint64)
	}
}

// samePlacement reports whether two results place processes on the same
// tiles — the only dimension the pool needs diversity in.
func samePlacement(a, b *core.Result) bool {
	at, bt := a.Mapping.Tile, b.Mapping.Tile
	if len(at) != len(bt) {
		return false
	}
	for pid, tid := range at {
		if bt[pid] != tid {
			return false
		}
	}
	return true
}
