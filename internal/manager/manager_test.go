package manager

import (
	"errors"
	"fmt"
	"testing"

	"rtsm/internal/core"
	"rtsm/internal/workload"
)

func TestStartStopLifecycle(t *testing.T) {
	m := New(workload.Hiperlan2Platform(), core.Config{})
	mode := workload.Hiperlan2Modes[0]
	app := workload.Hiperlan2(mode)
	lib := workload.Hiperlan2Library(mode)

	ad, err := m.Start(app, lib)
	if err != nil {
		t.Fatal(err)
	}
	if !ad.Result.Feasible {
		t.Fatal("admitted infeasible mapping")
	}
	if got := len(m.Running()); got != 1 {
		t.Errorf("Running = %d, want 1", got)
	}
	load := m.Load()
	if load.TilesPowered != 4 {
		t.Errorf("TilesPowered = %d, want 4", load.TilesPowered)
	}
	if load.LinkReserved <= 0 {
		t.Error("no link capacity reserved")
	}
	if m.TotalEnergy() <= 0 {
		t.Error("no energy accounted")
	}

	if err := m.Stop(app.Name); err != nil {
		t.Fatal(err)
	}
	if got := len(m.Running()); got != 0 {
		t.Errorf("Running after stop = %d, want 0", got)
	}
	load = m.Load()
	if load.TilesPowered != 0 || load.LinkReserved != 0 {
		t.Errorf("resources leaked after stop: %+v", load)
	}
}

func TestRejectionLeavesNoResidue(t *testing.T) {
	m := New(workload.Hiperlan2Platform(), core.Config{})
	mode := workload.Hiperlan2Modes[1]
	lib := workload.Hiperlan2Library(mode)

	first := workload.Hiperlan2(mode)
	if _, err := m.Start(first, lib); err != nil {
		t.Fatal(err)
	}
	before := m.Load()

	second := workload.Hiperlan2(mode)
	second.Name = "second"
	_, err := m.Start(second, lib)
	var rej *RejectionError
	if !errors.As(err, &rej) {
		t.Fatalf("err = %v, want RejectionError", err)
	}
	after := m.Load()
	if before != after {
		t.Errorf("rejection changed platform state: %+v vs %+v", before, after)
	}
	// After the first stops, the second fits.
	if err := m.Stop(first.Name); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start(second, lib); err != nil {
		t.Fatalf("second should be admitted after release: %v", err)
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	m := New(workload.Hiperlan2Platform(), core.Config{})
	mode := workload.Hiperlan2Modes[0]
	app := workload.Hiperlan2(mode)
	lib := workload.Hiperlan2Library(mode)
	if _, err := m.Start(app, lib); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start(app, lib); err == nil {
		t.Error("duplicate name admitted")
	}
}

func TestStopUnknown(t *testing.T) {
	m := New(workload.Hiperlan2Platform(), core.Config{})
	if err := m.Stop("ghost"); err == nil {
		t.Error("stopping unknown application succeeded")
	}
}

func TestChurnInvariant(t *testing.T) {
	// Property: any sequence of admissions and releases leaves the
	// platform exactly clean once everything has stopped, and never
	// over-commits while running.
	plat := workload.SyntheticPlatform(5, 5, 9)
	m := New(plat, core.Config{})
	type runningApp struct{ name string }
	var live []runningApp
	admitted, rejected := 0, 0
	for round := 0; round < 30; round++ {
		if round%3 == 2 && len(live) > 0 {
			victim := live[0]
			live = live[1:]
			if err := m.Stop(victim.name); err != nil {
				t.Fatal(err)
			}
			continue
		}
		app, lib := workload.Synthetic(workload.SynthOptions{
			Shape:     workload.ShapeChain,
			Processes: 3 + round%4,
			Seed:      int64(round),
			MaxUtil:   0.25,
		})
		app.Name = fmt.Sprintf("app-%d", round)
		if _, err := m.Start(app, lib); err != nil {
			var rej *RejectionError
			if !errors.As(err, &rej) {
				t.Fatalf("round %d: %v", round, err)
			}
			rejected++
			continue
		}
		admitted++
		live = append(live, runningApp{name: app.Name})
		// Invariant: no tile over-committed while running.
		for _, tile := range plat.Tiles {
			if tile.ReservedUtil > 1.0+1e-9 {
				t.Fatalf("round %d: tile %s over-committed: %v", round, tile.Name, tile.ReservedUtil)
			}
			if tile.ReservedMem > tile.MemBytes {
				t.Fatalf("round %d: tile %s memory over-committed", round, tile.Name)
			}
		}
		for _, l := range plat.Links {
			if l.ReservedBps > l.CapBps {
				t.Fatalf("round %d: link %d over-committed", round, l.ID)
			}
		}
	}
	if admitted == 0 {
		t.Fatal("nothing admitted in 30 rounds")
	}
	for _, r := range live {
		if err := m.Stop(r.name); err != nil {
			t.Fatal(err)
		}
	}
	for _, tile := range plat.Tiles {
		if tile.ReservedUtil > 1e-9 || tile.ReservedMem != 0 || tile.Occupants != 0 {
			t.Errorf("tile %s not clean after full churn: util=%v mem=%d occ=%d",
				tile.Name, tile.ReservedUtil, tile.ReservedMem, tile.Occupants)
		}
	}
	for _, l := range plat.Links {
		if l.ReservedBps != 0 {
			t.Errorf("link %d not clean after full churn", l.ID)
		}
	}
	t.Logf("churn: %d admitted, %d rejected", admitted, rejected)
}
