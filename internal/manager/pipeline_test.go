package manager

import (
	"fmt"
	"testing"

	"rtsm/internal/core"
	"rtsm/internal/model"
	"rtsm/internal/workload"
)

func synthReq(i int) (*model.Application, *model.Library) {
	app, lib := workload.Synthetic(workload.SynthOptions{
		Shape:     workload.ShapeChain,
		Processes: 3,
		Seed:      int64(i % 8),
		MaxUtil:   0.15,
		PeriodNs:  40_000,
	})
	app.Name = fmt.Sprintf("pipe-%d", i)
	return app, lib
}

func TestPipelineDeliversAllOutcomes(t *testing.T) {
	m := New(workload.SyntheticPlatform(6, 6, 1), core.Config{})
	pipe := NewPipeline(m, 3, 4)

	const n = 20
	chans := make([]<-chan Outcome, n)
	for i := 0; i < n; i++ {
		ch, err := pipe.Submit(synthReq(i))
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	admitted := 0
	for i, ch := range chans {
		out := <-ch
		if out.App != fmt.Sprintf("pipe-%d", i) {
			t.Fatalf("outcome %d is for %q", i, out.App)
		}
		if out.Admitted {
			admitted++
			if err := m.Stop(out.App); err != nil {
				t.Fatal(err)
			}
		} else if out.Err == nil {
			t.Fatalf("outcome %d has neither admission nor error", i)
		}
		if out.Admitted && out.Wait < 0 {
			t.Fatalf("outcome %d has negative wait", i)
		}
	}
	if admitted == 0 {
		t.Fatal("pipeline admitted nothing")
	}
	st := m.Stats()
	if st.Admitted+st.Rejected != n {
		t.Fatalf("stats account for %d arrivals, want %d", st.Admitted+st.Rejected, n)
	}
	pipe.Close()
	if _, err := pipe.Submit(synthReq(99)); err == nil {
		t.Fatal("Submit after Close succeeded")
	}
	if _, ok := pipe.TrySubmit(synthReq(99)); ok {
		t.Fatal("TrySubmit after Close succeeded")
	}
	pipe.Close() // idempotent
}

func TestPipelineCloseDrainsQueue(t *testing.T) {
	m := New(workload.SyntheticPlatform(6, 6, 1), core.Config{})
	pipe := NewPipeline(m, 2, 8)
	const n = 10
	chans := make([]<-chan Outcome, n)
	for i := 0; i < n; i++ {
		ch, err := pipe.Submit(synthReq(i))
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	pipe.Close() // must wait for all ten, not drop queued ones
	for i, ch := range chans {
		select {
		case <-ch:
		default:
			t.Fatalf("outcome %d not delivered after Close", i)
		}
	}
}

func TestPipelineTrySubmitShedsWhenFull(t *testing.T) {
	m := New(workload.SyntheticPlatform(6, 6, 1), core.Config{})
	// One worker, one queue slot: while the worker maps (milliseconds)
	// the slot fills and further microsecond-scale TrySubmits must shed.
	// The first TrySubmit always lands in the empty buffer, so out of
	// many rapid ones at least one is accepted and at least one is shed.
	pipe := NewPipeline(m, 1, 1)
	defer pipe.Close()
	accepted, shed := 0, 0
	var chans []<-chan Outcome
	for i := 0; i < 12; i++ {
		if ch, ok := pipe.TrySubmit(synthReq(i)); ok {
			accepted++
			chans = append(chans, ch)
		} else {
			shed++
		}
	}
	for _, ch := range chans {
		<-ch
	}
	if accepted == 0 {
		t.Error("every TrySubmit was shed")
	}
	if shed == 0 {
		t.Error("no TrySubmit was shed despite a full pipeline")
	}
	// Every full-queue refusal is on the ledger: the synthetic requests
	// are untagged (BestEffort), so the whole shed count lands there.
	st := m.Stats()
	var total uint64
	for c := range st.ByClass {
		total += st.ByClass[c].Shed
	}
	if total != uint64(shed) {
		t.Errorf("stats record %d shed arrivals, want %d", total, shed)
	}
	if st.ByClass[model.BestEffort].Shed != uint64(shed) {
		t.Errorf("BestEffort shed = %d, want %d", st.ByClass[model.BestEffort].Shed, shed)
	}
}

// TestTrySubmitAfterCloseIsNotShed pins the full-vs-closed distinction:
// a TrySubmit refused because the pipeline shut down is not load
// shedding and must not inflate the shed ledger.
func TestTrySubmitAfterCloseIsNotShed(t *testing.T) {
	m := New(workload.SyntheticPlatform(6, 6, 1), core.Config{})
	pipe := NewPipeline(m, 1, 4)
	pipe.Close()
	if _, ok := pipe.TrySubmit(synthReq(0)); ok {
		t.Fatal("TrySubmit after Close succeeded")
	}
	st := m.Stats()
	for c := range st.ByClass {
		if st.ByClass[c].Shed != 0 {
			t.Fatalf("class %d counted a post-close refusal as shed", c)
		}
	}
}

// TestMappingReuseSemantics pins the template fast path: a second
// structurally identical arrival is admitted without a mapper run, holds
// real reservations, and releases them cleanly.
func TestMappingReuseSemantics(t *testing.T) {
	plat := workload.SyntheticPlatform(6, 6, 1)
	pristine := plat.Residual()
	m := New(plat, core.Config{})
	m.SetMappingReuse(true)

	mk := func(name string) (*model.Application, *model.Library) {
		app, lib := workload.Synthetic(workload.SynthOptions{
			Shape: workload.ShapeChain, Processes: 4, Seed: 5, MaxUtil: 0.15, PeriodNs: 40_000})
		app.Name = name
		return app, lib
	}
	a1, l1 := mk("first")
	f1, err := Fingerprint(a1, l1)
	if err != nil {
		t.Fatal(err)
	}
	a2, l2 := mk("second")
	f2, err := Fingerprint(a2, l2)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatal("structurally identical apps fingerprint differently")
	}
	a3, l3 := workload.Synthetic(workload.SynthOptions{
		Shape: workload.ShapeChain, Processes: 4, Seed: 6, MaxUtil: 0.15, PeriodNs: 40_000})
	if f3, _ := Fingerprint(a3, l3); f3 == f1 {
		t.Fatal("different structures share a fingerprint")
	}

	if out := m.Admit(a1, l1); !out.Admitted {
		t.Fatalf("first admission failed: %v", out.Err)
	}
	// Release the first so the remembered placement is guaranteed free:
	// this pins the hit path deterministically (with the first still
	// resident the template may conflict on a single-occupancy tile and
	// legitimately fall back to a fresh mapping).
	if err := m.Stop("first"); err != nil {
		t.Fatal(err)
	}
	out := m.Admit(a2, l2)
	if !out.Admitted {
		t.Fatalf("second admission failed: %v", out.Err)
	}
	if m.Stats().TemplateHits != 1 {
		t.Fatalf("TemplateHits = %d, want 1", m.Stats().TemplateHits)
	}
	if out.Attempts != 0 || out.Map != 0 {
		t.Fatalf("template admission ran the mapper: attempts=%d map=%v", out.Attempts, out.Map)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := m.Stop("second"); err != nil {
		t.Fatal(err)
	}
	if got := m.Residual(); !got.Equal(pristine) {
		t.Fatal("template reuse corrupted the reservation ledger")
	}
}
