package manager

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rtsm/internal/core"
	"rtsm/internal/model"
	"rtsm/internal/workload"
)

// pinnedReq builds an admission request whose stream endpoints are pinned
// to the given per-region source/sink tiles of a SyntheticRegionPlatform.
func pinnedReq(n int, src, sink string) (*model.Application, *model.Library) {
	app, lib := workload.Synthetic(workload.SynthOptions{
		Shape: workload.ShapeChain, Processes: 3, Seed: int64(n % 7),
		MaxUtil: 0.10, PeriodNs: 40_000,
		SrcTile: src, SinkTile: sink,
	})
	app.Name = fmt.Sprintf("batch-%s-%d", src, n)
	return app, lib
}

// TestCloseReturnsWhileSubmitBlockedOnFullQueue is the shutdown-stall
// regression test. The old pipeline held a reader lock across the
// blocking queue push, so a Submit stuck on a full queue could stall
// Close (a writer) indefinitely. Now close detection lives inside the
// queue: Close must return promptly even though a Submit is parked on a
// full queue, and that Submit must come back with the close error. A
// workerless pipeline keeps the queue full deterministically.
func TestCloseReturnsWhileSubmitBlockedOnFullQueue(t *testing.T) {
	m := New(workload.SyntheticPlatform(6, 6, 1), core.Config{})
	p := &Pipeline{m: m, q: newPrioQueue(1, DefaultAging)} // no workers: nothing drains

	if _, err := p.Submit(synthReq(0)); err != nil { // fills the only slot
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() {
		_, err := p.Submit(synthReq(1)) // parks in push on the full queue
		blocked <- err
	}()
	// Wait until the submitter is actually parked inside the queue.
	for i := 0; ; i++ {
		select {
		case err := <-blocked:
			t.Fatalf("second Submit returned before Close: %v", err)
		default:
		}
		if i > 100 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	closed := make(chan struct{})
	go func() {
		p.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close stalled behind a Submit blocked on a full queue")
	}
	select {
	case err := <-blocked:
		if err == nil {
			t.Fatal("Submit blocked across Close reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Submit stayed blocked after Close")
	}
}

// TestCloseUnderSubmitStorm closes the pipeline while submitter
// goroutines hammer it continuously. Close must complete, every Submit
// must resolve (outcome or close error), and each accepted request must
// deliver exactly one outcome.
func TestCloseUnderSubmitStorm(t *testing.T) {
	m := New(workload.SyntheticPlatform(6, 6, 1), core.Config{})
	p := NewPipeline(m, 2, 2)

	const submitters = 6
	var accepted, refused, delivered atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ch, err := p.Submit(synthReq(s*10_000 + i))
				if err != nil {
					refused.Add(1)
					return // pipeline closed; storm over for this submitter
				}
				accepted.Add(1)
				out := <-ch
				delivered.Add(1)
				if out.Admitted {
					_ = m.Stop(out.App)
				}
			}
		}(s)
	}
	time.Sleep(20 * time.Millisecond) // let the storm build up

	closed := make(chan struct{})
	go func() {
		p.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not complete under a continuous submit storm")
	}
	close(stop)
	wg.Wait()
	if accepted.Load() != delivered.Load() {
		t.Fatalf("%d accepted submissions but %d outcomes delivered",
			accepted.Load(), delivered.Load())
	}
	if accepted.Load() == 0 {
		t.Fatal("storm produced no accepted submissions; fixture broken")
	}
}

// TestQueueStampsEnqueueWithInjectedClock pins the clock-consistency
// fix: the enqueue timestamp that wait accounting and aging promotion
// read must come from the queue's own (injectable) clock, not from a
// time.Now taken at job construction.
func TestQueueStampsEnqueueWithInjectedClock(t *testing.T) {
	q := newPrioQueue(4, DefaultAging)
	fake := time.Unix(1_000_000, 0)
	q.now = func() time.Time { return fake }

	j := newJob(synthReq(0))
	if !j.enqueued.IsZero() {
		t.Fatal("newJob stamped its own enqueue time; the queue clock must own it")
	}
	if !q.push(j) {
		t.Fatal("push failed")
	}
	if !j.enqueued.Equal(fake) {
		t.Fatalf("enqueued stamped %v, want the injected clock's %v", j.enqueued, fake)
	}
	if got := q.clock(); !got.Equal(fake) {
		t.Fatalf("queue clock reads %v, want %v", got, fake)
	}
	fake = fake.Add(3 * time.Second)
	if wait := q.clock().Sub(j.enqueued); wait != 3*time.Second {
		t.Fatalf("wait computed from queue clock is %v, want 3s", wait)
	}
}

// TestAdmitBatchConflictHeavy drives the batched path with arrivals all
// pinned to the same mesh region, so every pair of speculative plans
// overlaps and nothing can merge. The batch layer must degrade without
// dropping or double-committing anything: every job gets exactly one
// outcome, the stats account for every arrival, no merged commit is
// recorded, every admission that could not merge went through a spill
// commit or the per-item fallback, and the ledger returns to pristine.
func TestAdmitBatchConflictHeavy(t *testing.T) {
	plat := workload.SyntheticRegionPlatform(8, 8, 123, 4)
	m := New(plat, core.Config{})
	pristine := m.Residual()

	const n = 8
	jobs := make([]*job, n)
	for i := 0; i < n; i++ {
		jobs[i] = newJob(pinnedReq(i, "SRC0", "SINK0"))
		jobs[i].enqueued = time.Now()
	}
	fallbacks := m.admitBatch(jobs, time.Now())

	admitted := make([]string, 0, n)
	for i, j := range jobs {
		select {
		case out := <-j.done:
			if out.Admitted {
				admitted = append(admitted, out.App)
			} else if out.Err == nil {
				t.Fatalf("job %d has neither admission nor error", i)
			}
		default:
			t.Fatalf("job %d got no outcome", i)
		}
		// Exactly one outcome: the channel must now be empty.
		select {
		case <-j.done:
			t.Fatalf("job %d delivered a second outcome", i)
		default:
		}
	}
	st := m.Stats()
	if st.Admitted+st.Rejected != n {
		t.Fatalf("stats account for %d arrivals, want %d", st.Admitted+st.Rejected, n)
	}
	if st.Batches != 0 {
		t.Fatalf("conflict-heavy batch recorded %d merged commits, want 0", st.Batches)
	}
	// Nothing merged, so every admitted arrival went through a spill
	// commit (its stacked plan recycled per-item) or a per-item
	// fallback; the two must cover all admissions.
	if st.BatchSpills+st.BatchFallbacks < st.Admitted {
		t.Fatalf("spills (%d) + fallbacks (%d) cover only part of %d admissions",
			st.BatchSpills, st.BatchFallbacks, st.Admitted)
	}
	if fallbacks != int(st.BatchFallbacks) {
		t.Fatalf("admitBatch returned %d fallbacks, stats say %d", fallbacks, st.BatchFallbacks)
	}
	for _, name := range admitted {
		if err := m.Stop(name); err != nil {
			t.Fatalf("stop %s: %v", name, err)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants after conflict-heavy batch: %v", err)
	}
	if final := m.Residual(); !final.Equal(pristine) {
		t.Fatal("ledger not pristine after stopping every batched admission")
	}
}

// TestAdmitBatchMergesDisjointRegions spreads one arrival per region
// over a 16-region platform and drains them as one batch: at least one
// multi-application merged commit must form, every arrival must resolve
// exactly once, and full churn must leave the ledger pristine.
func TestAdmitBatchMergesDisjointRegions(t *testing.T) {
	plat := workload.SyntheticRegionPlatform(16, 16, 123, 4)
	m := New(plat, core.Config{})
	pristine := m.Residual()

	n := plat.RegionCount() / 2 // 8 arrivals over 16 regions: overlap is sparse
	jobs := make([]*job, n)
	for i := 0; i < n; i++ {
		jobs[i] = newJob(pinnedReq(i, fmt.Sprintf("SRC%d", i*2), fmt.Sprintf("SINK%d", i*2)))
		jobs[i].enqueued = time.Now()
	}
	m.admitBatch(jobs, time.Now())

	admitted := make([]string, 0, n)
	for i, j := range jobs {
		select {
		case out := <-j.done:
			if out.Admitted {
				admitted = append(admitted, out.App)
			} else if out.Err == nil {
				t.Fatalf("job %d has neither admission nor error", i)
			}
		default:
			t.Fatalf("job %d got no outcome", i)
		}
	}
	st := m.Stats()
	if st.Batches == 0 {
		t.Fatalf("region-spread batch produced no merged commit (%d batched, %d fallbacks)",
			st.BatchedAdmissions, st.BatchFallbacks)
	}
	if st.BatchedAdmissions < 2 {
		t.Fatalf("merged commit covered %d admissions, want >= 2", st.BatchedAdmissions)
	}
	for _, name := range admitted {
		if err := m.Stop(name); err != nil {
			t.Fatalf("stop %s: %v", name, err)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants after batched churn: %v", err)
	}
	if final := m.Residual(); !final.Equal(pristine) {
		t.Fatal("ledger not pristine after stopping every batched admission")
	}
}

// TestPipelineBatchedDeliversAll runs a batching pipeline end to end:
// every submission resolves exactly once, the stats account for every
// arrival, and the adaptive drain size stays within [2, K].
func TestPipelineBatchedDeliversAll(t *testing.T) {
	plat := workload.SyntheticRegionPlatform(16, 16, 123, 4)
	m := New(plat, core.Config{})
	m.SetMappingReuse(true)
	pipe := NewPipeline(m, 2, 16)
	pipe.SetBatch(4)
	pipe.SetBatchLinger(2 * time.Millisecond)

	const n = 48
	chans := make([]<-chan Outcome, n)
	for i := 0; i < n; i++ {
		ch, err := pipe.Submit(pinnedReq(i, fmt.Sprintf("SRC%d", i%16), fmt.Sprintf("SINK%d", i%16)))
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		out := <-ch
		if out.Admitted {
			if err := m.Stop(out.App); err != nil {
				t.Fatalf("stop %s: %v", out.App, err)
			}
		} else if out.Err == nil {
			t.Fatalf("outcome %d has neither admission nor error", i)
		}
	}
	pipe.Close()
	st := m.Stats()
	if st.Admitted+st.Rejected != n {
		t.Fatalf("stats account for %d arrivals, want %d", st.Admitted+st.Rejected, n)
	}
	if cur := pipe.batchCur.Load(); cur < 2 || cur > 4 {
		t.Fatalf("adaptive drain size %d escaped [2, 4]", cur)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants after batched pipeline churn: %v", err)
	}
}
