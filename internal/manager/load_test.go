package manager

import (
	"fmt"
	"testing"

	"rtsm/internal/core"
	"rtsm/internal/workload"
)

// TestLoadEstimateTracksResidency pins the accounting the fleet router
// depends on: the lock-free estimate rises by exactly one resident's
// contribution per admission and returns to zero when everything stops.
func TestLoadEstimateTracksResidency(t *testing.T) {
	m := New(workload.Hiperlan2Platform(), core.Config{})
	le := m.LoadEstimate()
	if le.CapacityMilli() <= 0 {
		t.Fatal("platform has no processing capacity")
	}
	if le.Running() != 0 || le.UtilMilli() != 0 || le.EnergyMilli() != 0 {
		t.Fatalf("fresh manager not at zero load: %d running, %d util, %d energy",
			le.Running(), le.UtilMilli(), le.EnergyMilli())
	}

	mode := workload.Hiperlan2Modes[0]
	app := workload.Hiperlan2(mode)
	lib := workload.Hiperlan2Library(mode)
	if _, err := m.Start(app, lib); err != nil {
		t.Fatal(err)
	}
	if le.Running() != 1 {
		t.Fatalf("Running = %d, want 1", le.Running())
	}
	util, energy := le.UtilMilli(), le.EnergyMilli()
	if util <= 0 || energy <= 0 {
		t.Fatalf("admission charged nothing: util %d, energy %d", util, energy)
	}
	if u := le.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("Utilization = %v, want in (0,1]", u)
	}

	if err := m.Stop(app.Name); err != nil {
		t.Fatal(err)
	}
	if le.Running() != 0 || le.UtilMilli() != 0 || le.EnergyMilli() != 0 {
		t.Fatalf("load leaked after stop: %d running, %d util, %d energy",
			le.Running(), le.UtilMilli(), le.EnergyMilli())
	}
}

// TestLoadEstimateZeroAfterChurn admits and stops a churn of synthetic
// applications and requires the estimate to land back on zero — the
// add/remove hooks must be exactly paired on every commit path.
func TestLoadEstimateZeroAfterChurn(t *testing.T) {
	m := New(workload.SyntheticPlatform(4, 4, 7), core.Config{})
	le := m.LoadEstimate()
	var admitted []string
	for i := 0; i < 12; i++ {
		app, lib := workload.Synthetic(workload.SynthOptions{
			Shape: workload.ShapeChain, Processes: 3, Seed: int64(i),
			MaxUtil: 0.2, PeriodNs: 40_000,
		})
		app.Name = fmt.Sprintf("churn-%d", i)
		if out := m.Admit(app, lib); out.Admitted {
			admitted = append(admitted, app.Name)
		}
	}
	if len(admitted) == 0 {
		t.Fatal("nothing admitted")
	}
	if got := le.Running(); got != int64(len(admitted)) {
		t.Fatalf("Running = %d, want %d", got, len(admitted))
	}
	for _, name := range admitted {
		if err := m.Stop(name); err != nil {
			t.Fatal(err)
		}
	}
	if le.Running() != 0 || le.UtilMilli() != 0 || le.EnergyMilli() != 0 {
		t.Fatalf("load leaked after churn: %d running, %d util, %d energy",
			le.Running(), le.UtilMilli(), le.EnergyMilli())
	}
}

// TestRejectionRetryableSplit pins the spill signal: capacity rejections
// are retryable (a sibling mesh could admit the identical app), while
// structural rejections are not (they fail everywhere the same way).
func TestRejectionRetryableSplit(t *testing.T) {
	// Capacity: the single-set HIPERLAN/2 platform admits one receiver;
	// the second identical one finds no feasible mapping.
	m := New(workload.Hiperlan2Platform(), core.Config{})
	m.SetPreemption(false)
	mode := workload.Hiperlan2Modes[0]
	lib := workload.Hiperlan2Library(mode)
	first := workload.Hiperlan2(mode)
	if out := m.Admit(first, lib); !out.Admitted {
		t.Fatalf("first admission failed: %v", out.Err)
	}
	second := workload.Hiperlan2(mode)
	second.Name = "rx-second"
	out := m.Admit(second, lib)
	if out.Admitted {
		t.Fatal("second receiver fit a full platform")
	}
	if !IsRetryableRejection(out.Err) {
		t.Fatalf("capacity rejection not retryable: %v", out.Err)
	}

	// Structural: an app pinned to a tile this platform does not have is
	// hopeless everywhere.
	broken := workload.Hiperlan2(mode)
	broken.Name = "rx-broken"
	for _, p := range broken.Processes {
		if p.PinnedTile != "" {
			p.PinnedTile = "NO_SUCH_TILE"
			break
		}
	}
	out = m.Admit(broken, lib)
	if out.Admitted {
		t.Fatal("admitted an app pinned to a nonexistent tile")
	}
	if IsRetryableRejection(out.Err) {
		t.Fatalf("structural rejection marked retryable: %v", out.Err)
	}
}
