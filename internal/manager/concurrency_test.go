package manager

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"rtsm/internal/core"
	"rtsm/internal/workload"
)

// TestConcurrentStartStopStress hammers Start/Stop from many goroutines
// (run it with -race) and checks the reservation ledger stays sane while
// load is in flight and returns to pristine once everything has stopped:
// no tile double-booking, and NoC bandwidth and buffer reservations sum
// back to zero.
func TestConcurrentStartStopStress(t *testing.T) {
	plat := workload.SyntheticPlatform(6, 6, 42)
	pristine := plat.Residual()
	m := New(plat, core.Config{})

	const (
		goroutines = 8
		perG       = 12
	)
	var (
		admitted, rejected atomic.Int64
		invariantErr       atomic.Value
		wg                 sync.WaitGroup
	)
	var stopMu sync.Mutex
	var toStop []string

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				app, lib := workload.Synthetic(workload.SynthOptions{
					Shape:     workload.ShapeChain,
					Processes: 3 + (g+i)%3,
					Seed:      int64(g*1000 + i),
					MaxUtil:   0.2,
				})
				app.Name = fmt.Sprintf("g%d-app%d", g, i)
				out := m.Admit(app, lib)
				if out.Err != nil {
					rejected.Add(1)
				} else {
					admitted.Add(1)
					if i%2 == 0 {
						// Half the admissions churn out immediately…
						if err := m.Stop(app.Name); err != nil {
							t.Error(err)
						}
					} else {
						// …the rest stay resident until the end.
						stopMu.Lock()
						toStop = append(toStop, app.Name)
						stopMu.Unlock()
					}
				}
				if err := m.CheckInvariants(); err != nil {
					invariantErr.Store(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err, _ := invariantErr.Load().(error); err != nil {
		t.Fatalf("invariant violated under concurrent load: %v", err)
	}
	if admitted.Load() == 0 {
		t.Fatal("stress run admitted nothing")
	}
	st := m.Stats()
	if st.Admitted+st.Rejected != goroutines*perG {
		t.Errorf("stats lost arrivals: admitted=%d rejected=%d, want total %d",
			st.Admitted, st.Rejected, goroutines*perG)
	}
	for _, name := range toStop {
		if err := m.Stop(name); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(m.Running()); got != 0 {
		t.Fatalf("%d applications still running after full stop", got)
	}
	if got := m.Residual(); !got.Equal(pristine) {
		t.Fatalf("reservations leaked after full churn:\npristine %+v\nafter    %+v", pristine, got)
	}
	t.Logf("stress: %d admitted, %d rejected, %d conflicts, %d retries",
		st.Admitted, st.Rejected, st.Conflicts, st.Retries)
}

// TestContendedAdmissionAdmitsExactlyOne races identical HIPERLAN/2
// receivers — the platform fits exactly one — from several goroutines.
// However the race interleaves, exactly one must win, every loser must
// get a clean rejection, and the winner's departure must restore the
// pristine residual.
func TestContendedAdmissionAdmitsExactlyOne(t *testing.T) {
	mode := workload.Hiperlan2Modes[1]
	for round := 0; round < 5; round++ {
		plat := workload.Hiperlan2Platform()
		pristine := plat.Residual()
		m := New(plat, core.Config{})
		lib := workload.Hiperlan2Library(mode)

		const racers = 6
		outcomes := make([]Outcome, racers)
		var start, wg sync.WaitGroup
		start.Add(1)
		for i := 0; i < racers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				app := workload.Hiperlan2(mode)
				app.Name = fmt.Sprintf("rx-%d", i)
				start.Wait()
				outcomes[i] = m.Admit(app, lib)
			}(i)
		}
		start.Done()
		wg.Wait()

		var winners []string
		for _, out := range outcomes {
			if out.Admitted {
				winners = append(winners, out.App)
			} else if out.Err == nil {
				t.Fatalf("round %d: %s neither admitted nor rejected", round, out.App)
			}
		}
		if len(winners) != 1 {
			t.Fatalf("round %d: %d admissions of an app the platform fits once: %v",
				round, len(winners), winners)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := m.Stop(winners[0]); err != nil {
			t.Fatal(err)
		}
		if got := m.Residual(); !got.Equal(pristine) {
			t.Fatalf("round %d: residual corrupted after contended admission", round)
		}
	}
}

// TestStaleSnapshotCommitSafety is the snapshot-isolation property test:
// across many seeds, two admissions race on a tight platform so that one
// regularly commits a mapping whose snapshot predates the other's
// reservation. Whatever the interleaving, a stale mapping is never
// committed over a conflicting one — the commit retries or rejects — and
// the residual ledger is never corrupted.
func TestStaleSnapshotCommitSafety(t *testing.T) {
	var allAdmitted, someRejected, conflicts int
	for seed := int64(0); seed < 24; seed++ {
		plat := workload.SyntheticPlatform(3, 3, seed)
		pristine := plat.Residual()
		m := New(plat, core.Config{})

		const racers = 3
		var wg sync.WaitGroup
		outcomes := make([]Outcome, racers)
		for i := 0; i < racers; i++ {
			app, lib := workload.Synthetic(workload.SynthOptions{
				Shape:     workload.ShapeChain,
				Processes: 3,
				Seed:      seed*10 + int64(i),
				MaxUtil:   0.45,
			})
			app.Name = fmt.Sprintf("seed%d-app%d", seed, i)
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				outcomes[i] = m.Admit(app, lib)
			}(i)
		}
		wg.Wait()

		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: ledger corrupted: %v", seed, err)
		}
		admitted := 0
		for _, out := range outcomes {
			if out.Admitted {
				admitted++
			}
		}
		if admitted == racers {
			allAdmitted++
		} else {
			someRejected++
		}
		conflicts += int(m.Stats().Conflicts)
		for _, ad := range m.Running() {
			if err := m.Stop(ad.App.Name); err != nil {
				t.Fatal(err)
			}
		}
		if got := m.Residual(); !got.Equal(pristine) {
			t.Fatalf("seed %d: residual corrupted after racing admissions:\npristine %+v\nafter    %+v",
				seed, pristine, got)
		}
	}
	// The property holds vacuously if the platforms were never tight; make
	// sure the workload actually produced contention in some runs.
	if someRejected == 0 && conflicts == 0 {
		t.Fatal("workload produced no contention; property not exercised")
	}
	t.Logf("stale-snapshot property: %d seeds all-admitted, %d contended, %d commit conflicts",
		allAdmitted, someRejected, conflicts)
}

// TestConcurrentDuplicateName races two admissions under the same name:
// the pending-name reservation must let at most one through, whichever
// interleaving occurs.
func TestConcurrentDuplicateName(t *testing.T) {
	for round := 0; round < 8; round++ {
		m := New(workload.SyntheticPlatform(5, 5, 9), core.Config{})
		var wg sync.WaitGroup
		var ok atomic.Int32
		for i := 0; i < 2; i++ {
			app, lib := workload.Synthetic(workload.SynthOptions{
				Shape:     workload.ShapeChain,
				Processes: 3,
				Seed:      int64(i),
				MaxUtil:   0.2,
			})
			app.Name = "same-name"
			wg.Add(1)
			go func() {
				defer wg.Done()
				if out := m.Admit(app, lib); out.Admitted {
					ok.Add(1)
				}
			}()
		}
		wg.Wait()
		if got := ok.Load(); got != 1 {
			t.Fatalf("round %d: %d admissions under one name, want exactly 1", round, got)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}
