package manager

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"rtsm/internal/core"
	"rtsm/internal/model"
	"rtsm/internal/workload"
)

// TestShardedCommitStraddlingRegions hammers a 4-region platform with
// admissions whose stream endpoints deliberately straddle region
// boundaries (src in one quadrant, sink in another), interleaved with
// region-local ones, while departures run concurrently. Straddling plans
// take multiple region locks; the canonical acquisition order must keep
// this deadlock-free, and under -race the reservation ledger must stay
// data-race-free and invariant-clean throughout.
func TestShardedCommitStraddlingRegions(t *testing.T) {
	plat := workload.SyntheticRegionPlatform(8, 8, 123, 4)
	m := New(plat, core.Config{})
	m.SetMappingReuse(true)
	pristine := m.Residual()

	// Endpoint pairs: four region-local, plus straddlers crossing every
	// quadrant boundary and both diagonals.
	pairs := [][2]string{
		{"SRC0", "SINK0"}, {"SRC1", "SINK1"}, {"SRC2", "SINK2"}, {"SRC3", "SINK3"},
		{"SRC0", "SINK1"}, {"SRC1", "SINK3"}, {"SRC2", "SINK0"}, {"SRC3", "SINK2"},
		{"SRC0", "SINK3"}, {"SRC1", "SINK2"},
	}
	const workers = 4
	const perWorker = 30
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n := w*perWorker + i
				pair := pairs[n%len(pairs)]
				app, lib := workload.Synthetic(workload.SynthOptions{
					Shape: workload.ShapeChain, Processes: 3 + n%3, Seed: int64(n % 7),
					MaxUtil: 0.10, PeriodNs: 40_000,
					SrcTile: pair[0], SinkTile: pair[1],
				})
				app.Name = fmt.Sprintf("straddle-%d", n)
				out := m.Admit(app, lib)
				if out.Admitted {
					if err := m.Stop(app.Name); err != nil {
						errs <- fmt.Errorf("stop %s: %w", app.Name, err)
						return
					}
				}
				if n%10 == 0 {
					if err := m.CheckInvariants(); err != nil {
						errs <- fmt.Errorf("invariants mid-run: %w", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Admitted == 0 {
		t.Fatal("nothing admitted; straddle workload broken")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants after churn: %v", err)
	}
	if final := m.Residual(); !final.Equal(pristine) {
		d := pristine.Diff(final)
		t.Fatalf("ledger not pristine after full churn: %d tiles, %d links drifted",
			len(d.Tiles), len(d.Links))
	}
	t.Logf("straddle churn: %d admitted, %d rejected, %d conflicts, %d template hits",
		st.Admitted, st.Rejected, st.Conflicts, st.TemplateHits)
}

// TestPreemptionInRegionADoesNotBlockRegionB stresses the priority
// planner's locking claim under -race: preemption work confined to
// region 0 — hypothetical eviction, the union-locked victim/arrival
// swap, victim relocation — holds only region-0 locks in its commit
// sections, so best-effort churn whose footprints stay in region 3
// keeps committing concurrently throughout the storm. The test drives a
// continuous preemption storm in region 0 (critical arrivals onto a
// saturated quadrant) against a fixed churn quota in region 3 and
// requires the quota to complete while the storm is provably still
// running, with the ledger race-free, invariant-clean and pristine
// after teardown.
func TestPreemptionInRegionADoesNotBlockRegionB(t *testing.T) {
	plat := workload.SyntheticRegionPlatform(8, 8, 123, 4)
	pristine := plat.Residual()
	m := New(plat, core.Config{})

	mkRegion := func(name string, seed int64, region int, procs int, util float64, prio model.Priority) (*model.Application, *model.Library) {
		app, lib := workload.Synthetic(workload.SynthOptions{
			Shape: workload.ShapeChain, Processes: procs, Seed: seed,
			MaxUtil: util, PeriodNs: 400_000,
			SrcTile: fmt.Sprintf("SRC%d", region), SinkTile: fmt.Sprintf("SINK%d", region),
			Priority: prio,
		})
		app.Name = name
		return app, lib
	}

	// Saturate region 0 with best-effort residents so critical arrivals
	// there must preempt.
	for i := 0; i < 200; i++ {
		app, lib := mkRegion(fmt.Sprintf("a-bg-%d", i), int64(i%5), 0, 3, 0.30, model.BestEffort)
		if out := m.Admit(app, lib); !out.Admitted {
			break
		}
	}

	stormDone := make(chan struct{})
	stormPreempting := make(chan struct{}) // closed after the first preemption
	stop := make(chan struct{})
	var stormAdmitted, stormPreempted int
	go func() {
		defer close(stormDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			app, lib := mkRegion(fmt.Sprintf("a-crit-%d", i), int64(i%3), 0, 3, 0.30, model.Critical)
			out := m.Admit(app, lib)
			if out.Admitted {
				stormAdmitted++
				if stormPreempted += len(out.Preempted); stormPreempted > 0 {
					select {
					case <-stormPreempting:
					default:
						close(stormPreempting)
					}
				}
				if err := m.Stop(app.Name); err != nil && !errors.Is(err, ErrRelocating) {
					t.Errorf("storm stop %s: %v", app.Name, err)
					return
				}
			}
		}
	}()

	// Wait for the storm to provably preempt before starting the quota:
	// on a single-CPU host the scheduler may otherwise run the whole
	// quota before ever picking the storm goroutine up, and the test
	// would measure nothing. (The admission path getting faster is what
	// exposed this — the quota used to be slow enough to lose the race.)
	const quota = 40
	deadline := time.After(60 * time.Second)
	select {
	case <-stormPreempting:
	case <-deadline:
		t.Fatal("preemption storm never preempted; fixture broken")
	}
	for i := 0; i < quota; i++ {
		done := make(chan Outcome, 1)
		go func(i int) {
			app, lib := mkRegion(fmt.Sprintf("b-%d", i), int64(i%4), 3, 3, 0.10, model.BestEffort)
			out := m.Admit(app, lib)
			if out.Admitted {
				if err := m.Stop(app.Name); err != nil {
					t.Errorf("stop %s: %v", app.Name, err)
				}
			}
			done <- out
		}(i)
		select {
		case <-done:
		case <-deadline:
			t.Fatal("region-3 churn starved behind the region-0 preemption storm")
		}
	}
	close(stop)
	<-stormDone
	if stormAdmitted == 0 || stormPreempted == 0 {
		t.Fatalf("storm did not exercise preemption (admitted %d, preempted %d)", stormAdmitted, stormPreempted)
	}

	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants after storm: %v", err)
	}
	for _, ad := range m.Running() {
		if err := m.Stop(ad.App.Name); err != nil {
			t.Fatalf("teardown stop %s: %v", ad.App.Name, err)
		}
	}
	if final := m.Residual(); !final.Equal(pristine) {
		d := pristine.Diff(final)
		t.Fatalf("ledger not pristine after storm teardown: %d tiles, %d links drifted",
			len(d.Tiles), len(d.Links))
	}
}

// TestShardedDegenerateSingleRegion pins the degenerate case the rest of
// the suite relies on: a manager over an unpartitioned platform behaves
// exactly like the pre-sharding global-lock manager — one region, one
// lock, identical admission outcomes for a deterministic sequence.
func TestShardedDegenerateSingleRegion(t *testing.T) {
	plat := workload.SyntheticPlatform(6, 6, 42)
	if got := plat.RegionCount(); got != 1 {
		t.Fatalf("unpartitioned platform has %d regions, want 1", got)
	}
	m := New(plat, core.Config{})
	for i := 0; i < 6; i++ {
		app, lib := workload.Synthetic(workload.SynthOptions{
			Shape: workload.ShapeChain, Processes: 3, Seed: int64(i),
			MaxUtil: 0.10, PeriodNs: 40_000,
		})
		app.Name = fmt.Sprintf("single-%d", i)
		out := m.Admit(app, lib)
		if out.Err != nil && out.Admitted {
			t.Fatalf("inconsistent outcome for %s", app.Name)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
