package manager

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"rtsm/internal/core"
	"rtsm/internal/model"
	"rtsm/internal/workload"
)

// The uncontended batched-vs-per-item microbenchmark pair. Both
// benchmarks drive the identical churn workload — 4 worker goroutines,
// each owning 4 of the 16 mesh regions, each admitting a burst of one
// arrival per owned region and then (outside the timer) stopping them —
// and differ only in the admission path: admitBatch drains a worker's
// burst as one round (one merged multi-application commit of the
// disjoint plans under the union lock), the control admits the same
// burst one item at a time. Region ownership makes worker footprints
// disjoint by construction, so neither variant sees a conflict, a
// retry or a repair: the pair isolates pure per-admission path length
// and pins that the batch machinery costs nothing over the per-item
// path even with no contention to absorb (both paths are one
// fingerprint, one plan construction, one validation and one commit
// per admission).
//
// The acceptance pair (BenchmarkAdmissionBatched at the repo root)
// runs the comparison through the full pipeline, where arrivals race:
// there the merged commit and the spill path absorb the cross-worker
// conflicts the per-item control pays for in retries and repairs, and
// the batched side wins by integer factors. CI uploads both pairs as
// the batched-vs-unbatched artifact (BENCH_6.json).

// burstReq is one region-pinned catalogue arrival: structure and
// stream endpoints are both fixed by the region, so every round
// re-admits the same 16 (structure, region) pairs and the template
// pools stay hot after the warm passes. Single-process chains keep the
// placement region-local (step 2's local search pulls a lone kernel
// straight toward its pinned endpoints; longer chains can strand mid
// processes at the first-fit tiles near the mesh origin), which is what
// lets the disjoint-footprint merge actually form.
func burstReq(region, n int) (*model.Application, *model.Library) {
	app, lib := workload.Synthetic(workload.SynthOptions{
		Shape: workload.ShapeChain, Processes: 1, Seed: int64(region),
		MaxUtil: 0.05, PeriodNs: 400_000,
		SrcTile: fmt.Sprintf("SRC%d", region), SinkTile: fmt.Sprintf("SINK%d", region),
	})
	app.Name = fmt.Sprintf("burst-%d-%d", region, n)
	return app, lib
}

func benchmarkAdmissionBurst(b *testing.B, batched bool) {
	plat := workload.SyntheticRegionPlatform(16, 16, 123, 4)
	m := New(plat, core.Config{})
	m.SetMappingReuse(true)
	m.SetRepair(true)
	const workers = 4
	regions := plat.RegionCount()
	perWorker := regions / workers

	// Generate the catalogue once; the timed loop re-admits the same 16
	// applications so it measures the admission path, not the synthetic
	// workload generator.
	apps := make([]*model.Application, regions)
	libs := make([]*model.Library, regions)
	for r := 0; r < regions; r++ {
		apps[r], libs[r] = burstReq(r, 0)
	}

	// Warm the template pools with the round's own steady state: one
	// pass admitting all 16 arrivals concurrently-resident (so the
	// remembered placements are mutually compatible) and one pass on the
	// empty platform.
	var warm []string
	for r := 0; r < regions; r++ {
		if out := m.Admit(apps[r], libs[r]); out.Admitted {
			warm = append(warm, apps[r].Name)
		}
	}
	for _, name := range warm {
		if err := m.Stop(name); err != nil {
			b.Fatal(err)
		}
	}
	for r := 0; r < regions; r++ {
		if out := m.Admit(apps[r], libs[r]); out.Admitted {
			if err := m.Stop(apps[r].Name); err != nil {
				b.Fatal(err)
			}
		}
	}
	base := m.Stats()

	// Jobs are pipeline plumbing both paths pay for in a real
	// deployment; build each worker's burst once (the buffered done
	// channels are drained every round, so they are reusable) and keep
	// the timed loop to the admission paths themselves.
	bursts := make([][]*job, workers)
	for w := 0; w < workers; w++ {
		bursts[w] = make([]*job, perWorker)
		for k := range bursts[w] {
			bursts[w][k] = newJob(apps[w*perWorker+k], libs[w*perWorker+k])
		}
	}
	start := time.Now()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		admitted := make([][]string, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lo := w * perWorker
				if batched {
					jobs := bursts[w]
					for _, j := range jobs {
						j.enqueued = start
					}
					m.admitBatch(jobs, start)
					for _, j := range jobs {
						if out := <-j.done; out.Admitted {
							admitted[w] = append(admitted[w], out.App)
						}
					}
				} else {
					for k := 0; k < perWorker; k++ {
						if out := m.admit(apps[lo+k], libs[lo+k], 0); out.Admitted {
							admitted[w] = append(admitted[w], apps[lo+k].Name)
						}
					}
				}
			}(w)
		}
		wg.Wait()
		// The stop side is identical churn for both variants; keep it
		// outside the timer so the ratio reads admission cost alone.
		b.StopTimer()
		for _, names := range admitted {
			for _, name := range names {
				if err := m.Stop(name); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StartTimer()
	}
	b.StopTimer()

	st := m.Stats()
	total := st.Admitted - base.Admitted
	if total == 0 {
		b.Fatal("benchmark admitted nothing; workload broken")
	}
	if elapsed := b.Elapsed(); elapsed > 0 {
		b.ReportMetric(float64(total)/elapsed.Seconds(), "admissions/sec")
	}
	b.ReportMetric(float64(st.Retries-base.Retries)/float64(total), "retries/arrival")
	if batched {
		b.ReportMetric(100*float64(st.BatchedAdmissions-base.BatchedAdmissions)/float64(total), "%batched")
		b.ReportMetric(100*float64(st.BatchSpills-base.BatchSpills)/float64(total), "%spilled")
		b.ReportMetric(100*float64(st.BatchFallbacks-base.BatchFallbacks)/float64(total), "%fellback")
	}
	if err := m.CheckInvariants(); err != nil {
		b.Fatalf("ledger corrupted under benchmark load: %v", err)
	}
}

// BenchmarkAdmissionBurstBatched: each worker's burst drains through
// admitBatch — one merged commit under the union of its region locks.
func BenchmarkAdmissionBurstBatched(b *testing.B) {
	benchmarkAdmissionBurst(b, true)
}

// BenchmarkAdmissionBurstPerItem: the identical bursts admitted one
// item at a time, the pre-batching path.
func BenchmarkAdmissionBurstPerItem(b *testing.B) {
	benchmarkAdmissionBurst(b, false)
}
