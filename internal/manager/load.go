package manager

import (
	"sync/atomic"

	"rtsm/internal/arch"
)

// LoadEstimate is the manager's lock-free utilization summary, maintained
// incrementally as admissions commit and leave. A fleet router samples it
// on every arrival to score candidate meshes, so reads must not touch the
// manager's mutex or region locks: all three counters are plain atomics,
// and the capacity is static (derived from the platform's processing-tile
// count at construction). The numbers are estimates in the same sense the
// mapper's are — each admission's utilization is the sum of its processes'
// cycle budgets at commit time, not a measurement — but they move in exact
// lockstep with the resident population, which is what load balancing
// needs.
type LoadEstimate struct {
	running     atomic.Int64
	utilMilli   atomic.Int64
	energyMilli atomic.Int64
	capMilli    int64
}

// Running returns the number of resident applications (admitted and not
// yet stopped; victims mid-relocation count until actually evicted).
func (l *LoadEstimate) Running() int64 { return l.running.Load() }

// UtilMilli returns the summed processing-tile utilization of all
// residents in thousandths of a tile (one fully busy tile = 1000).
func (l *LoadEstimate) UtilMilli() int64 { return l.utilMilli.Load() }

// EnergyMilli returns the summed per-period mapped energy of all
// residents in thousandths of the mapper's energy unit.
func (l *LoadEstimate) EnergyMilli() int64 { return l.energyMilli.Load() }

// CapacityMilli returns the static utilization capacity of the mesh in
// thousandths of a tile: 1000 per processing tile (stream endpoints and
// other non-processing tiles don't count).
func (l *LoadEstimate) CapacityMilli() int64 { return l.capMilli }

// Utilization returns the fraction of the mesh's processing capacity the
// residents reserve, in [0,1] (clamped; a zero-capacity platform reads
// as fully loaded so a router never prefers it).
func (l *LoadEstimate) Utilization() float64 {
	if l.capMilli <= 0 {
		return 1
	}
	u := float64(l.utilMilli.Load()) / float64(l.capMilli)
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// add charges one committed admission to the estimate.
func (l *LoadEstimate) add(utilMilli, energyMilli int64) {
	l.running.Add(1)
	l.utilMilli.Add(utilMilli)
	l.energyMilli.Add(energyMilli)
}

// remove reverses add for a departing admission.
func (l *LoadEstimate) remove(utilMilli, energyMilli int64) {
	l.running.Add(-1)
	l.utilMilli.Add(-utilMilli)
	l.energyMilli.Add(-energyMilli)
}

// LoadEstimate exposes the manager's lock-free load estimate (distinct
// from Load, which walks the platform under all region locks for an
// exact occupancy summary). The pointer is stable for the manager's
// lifetime; callers sample it with the atomic accessors.
func (m *Manager) LoadEstimate() *LoadEstimate { return &m.load }

// initLoadCapacity sizes the static capacity from the platform's
// processing tiles. Called once from New, before any admission.
func (m *Manager) initLoadCapacity() {
	var tiles int64
	for _, tt := range m.plat.TileTypes() {
		if tt == arch.TypeSource || tt == arch.TypeSink {
			continue
		}
		tiles += int64(len(m.plat.TilesOfType(tt)))
	}
	m.load.capMilli = tiles * 1000
}

// loadCharge computes and caches an admission's contribution to the load
// estimate — summed per-process utilization (cycle budget over period) in
// milli-tiles plus mapped energy — and charges it. Utilization reads only
// static tile data (TileCycleBudget is lock-free), so this is safe from
// any commit path. Called exactly once per committed admission; the
// cached values make the eventual loadRelease exact even if the estimate
// inputs drift (e.g. a relocation moved the app before it stopped).
func (m *Manager) loadCharge(ad *Admission) {
	if ad.Result == nil {
		// Replay-rebuilt resident: utilisation was precomputed from the
		// journaled deltas at replay time; energy did not survive.
		m.load.add(ad.loadUtilMilli, ad.loadEnergyMilli)
		return
	}
	var utilMilli int64
	for _, p := range ad.App.MappableProcesses() {
		im := ad.Result.Mapping.Impl[p.ID]
		if im == nil {
			continue
		}
		cyc, err := im.CyclesPerPeriod(ad.App, p)
		if err != nil {
			continue
		}
		tid, ok := ad.Result.Mapping.Tile[p.ID]
		if !ok {
			continue
		}
		if budget := m.plat.TileCycleBudget(tid, ad.App.QoS.PeriodNs); budget > 0 {
			utilMilli += 1000 * cyc / budget
		}
	}
	ad.loadUtilMilli = utilMilli
	ad.loadEnergyMilli = int64(ad.Result.Energy.Total() * 1000)
	m.load.add(ad.loadUtilMilli, ad.loadEnergyMilli)
}

// loadRelease reverses loadCharge when an admission stops or is evicted.
func (m *Manager) loadRelease(ad *Admission) {
	m.load.remove(ad.loadUtilMilli, ad.loadEnergyMilli)
}
