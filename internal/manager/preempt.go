package manager

import (
	"sort"
	"time"

	"rtsm/internal/arch"
	"rtsm/internal/core"
	"rtsm/internal/journal"
	"rtsm/internal/model"
)

// The preemption planner: policy on top of the mechanism stack. The
// pipeline (PR 1) made admissions concurrent, repair (PR 2) made stale
// mappings cheap to refit, and region sharding (PR 3) made commits
// footprint-local. Preemption composes all three: when a priority arrival
// finds the mesh full, the planner picks minimal-cost lower-priority
// victims whose footprints overlap the failing plan's conflicted regions,
// verifies on a hypothetical snapshot that their departure actually makes
// the arrival feasible, swaps them atomically under the union of the
// touched region locks — admissions confined to other regions commit
// concurrently throughout — and then tries to *relocate* each victim via
// core.Relocate (repair against the post-eviction residual) before
// falling back to eviction.

// maxPreemptionVictims bounds how many lower-priority admissions one
// arrival may displace: past a few victims the hypothetical re-mapping
// rounds cost more than the arrival is worth, and the blast radius of a
// single admission stays contained.
const maxPreemptionVictims = 3

// victimCandidates lists running admissions of class strictly below prio,
// cheapest first: lowest class, then lowest mapped energy (a proxy for
// how much work a relocation must re-place), then admission order.
func (m *Manager) victimCandidates(prio model.Priority) []*Admission {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []*Admission
	for _, ad := range m.running {
		// Replay-rebuilt residents (nil Result) carry no mapping to
		// relocate and no energy to rank by; only faults displace them.
		if ad.Priority < prio && ad.Result != nil {
			out = append(out, ad)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority < out[j].Priority
		}
		ei, ej := out[i].Result.Energy.Total(), out[j].Result.Energy.Total()
		if ei != ej {
			return ei < ej
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// claimVictim moves a running admission into the preempting set, making
// it unstoppable (Stop returns ErrRelocating) and invisible to further
// victim selection. It reports false when the admission is no longer
// running — it stopped or was claimed by a competing preemption.
func (m *Manager) claimVictim(ad *Admission) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur, ok := m.running[ad.App.Name]
	if !ok || cur != ad {
		return false
	}
	delete(m.running, ad.App.Name)
	m.preempting[ad.App.Name] = ad
	return true
}

// unclaimVictims returns claimed victims to the running set untouched —
// the preemption did not go through.
func (m *Manager) unclaimVictims(victims []*Admission) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, v := range victims {
		delete(m.preempting, v.App.Name)
		m.running[v.App.Name] = v
	}
}

// pruneVictims drops claimed victims whose eviction the found mapping
// does not actually rely on, returning the minimal suffix-greedy set.
// The greedy accumulation can collect dead weight: with no region
// attribution every cheapest candidate is tried first, and one that
// relieved nothing still sits in the set when a later victim finally
// makes the arrival fit. Each victim is re-checked by validating the
// mapping against a hypothetical platform where everyone else in the
// set is evicted but this victim stays; a victim that passes is
// unclaimed unharmed. Validation is a residual-capacity scan — no
// mapper rounds — so the prune costs one snapshot per kept-back check.
func (m *Manager) pruneVictims(victims []*Admission, res *core.Result) []*Admission {
	if len(victims) <= 1 {
		return victims
	}
	needed := victims
	for i := 0; i < len(needed); {
		// Writable: the hypothetical evictions below mutate the probe,
		// which a frozen CoW snapshot forbids — the writable child still
		// shares every untouched region with the capture.
		probe := m.Snapshot().Writable()
		for j, v := range needed {
			if j != i {
				core.HypotheticalEviction(probe, v.Result)
			}
		}
		if core.Validate(probe.Plat, res) == nil {
			m.unclaimVictims([]*Admission{needed[i]})
			needed = append(needed[:i], needed[i+1:]...)
		} else {
			i++
		}
	}
	return needed
}

// preemptAdmit tries to admit a priority arrival by displacing
// lower-priority victims. It is called on the rejection path, outside all
// locks, with target naming the regions where the failing plan ran out of
// resources (nil = no attribution, every victim eligible). On success the
// arrival is admitted, out is finished and true is returned; on failure
// nothing has changed and the caller proceeds to reject as before.
func (m *Manager) preemptAdmit(out *Outcome, app *model.Application, lib *model.Library,
	mapper *core.Mapper, prio model.Priority, target []arch.RegionID) bool {
	cands := m.victimCandidates(prio)
	if len(cands) == 0 {
		return false
	}

	// Greedy victim accumulation on a hypothetical platform: evict the
	// cheapest overlapping candidate, re-map, repeat until the arrival
	// fits or the victim budget is spent. All of this runs on the
	// snapshot's deep copy — the live platform is untouched and unlocked.
	// A candidate is claimed before its Result is read: once claimed,
	// nobody else (Stop, a competing preemptor's relocation) touches the
	// admission, so the read is race-free; a candidate that turns out
	// not to overlap the target regions is unclaimed straight away.
	mapStart := time.Now()
	snap := m.Snapshot().Writable()
	var victims []*Admission
	var res *core.Result
	for _, cand := range cands {
		if len(victims) == maxPreemptionVictims {
			break
		}
		if !m.claimVictim(cand) {
			continue
		}
		rp, err := core.NewRemovalPlan(m.plat, cand.Result)
		if err != nil || (target != nil && !rp.Overlaps(target)) {
			m.unclaimVictims([]*Admission{cand})
			continue
		}
		victims = append(victims, cand)
		core.HypotheticalEviction(snap, cand.Result)
		r, err := mapper.Map(app, snap.Plat)
		if err != nil {
			break
		}
		if r.Feasible {
			res = r
			break
		}
	}
	if res != nil {
		victims = m.pruneVictims(victims, res)
	}
	out.Map += time.Since(mapStart)
	if res == nil {
		m.unclaimVictims(victims)
		return false
	}

	// Atomic swap under the union of the victims' and the arrival's
	// region locks: release the victims, re-validate the arrival against
	// the live platform (a competing admission may have landed since the
	// hypothetical snapshot), commit or roll everything back. Admissions
	// whose footprints avoid these regions commit concurrently.
	commitStart := time.Now()
	nplan, err := core.NewPlan(m.plat, res)
	if err != nil {
		m.unclaimVictims(victims)
		out.Commit += time.Since(commitStart)
		return false
	}
	vplans := make([]*core.Plan, len(victims))
	union := append([]arch.RegionID(nil), nplan.Regions()...)
	for i, v := range victims {
		vp, verr := core.NewRemovalPlan(m.plat, v.Result)
		if verr != nil {
			m.unclaimVictims(victims)
			out.Commit += time.Since(commitStart)
			return false
		}
		vplans[i] = vp
		union = append(union, vp.Regions()...)
	}
	m.locks.Lock(union)
	for i, vp := range vplans {
		vp.Release(m.plat)
		m.journalPlan(journal.EvPreemptRelease, victims[i].App.Name, victims[i].Priority, vp)
	}
	if err := nplan.Validate(m.plat); err != nil {
		// Lost a race since the hypothetical snapshot: roll the
		// evictions back verbatim and let the caller reject. Preemption
		// is a last resort, not a retry loop of its own. The re-commits
		// are journaled as relocations so replay reproduces the same
		// release-then-recommit float arithmetic the live ledger saw —
		// (x−u)+u is not x in float64, so the pair cannot be elided.
		for i, vp := range vplans {
			vp.Commit(m.plat)
			m.journalPlan(journal.EvRelocate, victims[i].App.Name, victims[i].Priority, vp)
		}
		m.locks.Unlock(union)
		m.unclaimVictims(victims)
		out.Commit += time.Since(commitStart)
		return false
	}
	nplan.Commit(m.plat)
	m.journalPlan(journal.EvAdmit, app.Name, prio, nplan)
	m.locks.Unlock(union)
	out.Commit += time.Since(commitStart)

	m.mu.Lock()
	m.seq++
	ad := &Admission{App: app, Result: res, Seq: m.seq, Priority: prio, lib: lib}
	m.running[app.Name] = ad
	m.stats.Preemptions += uint64(len(victims))
	for _, v := range victims {
		out.Preempted = append(out.Preempted, v.App.Name)
	}
	maxRetries := m.maxRetries
	m.mu.Unlock()

	// Relocation before eviction: each victim's stale mapping is refit
	// against the post-swap residual — typically most placements survive
	// and only the overlap with the new arrival is re-placed — and only
	// when no refit commits is the victim truly gone. This runs before
	// finishLocked so the relocation repair/commit time lands in Stats
	// and the class's latency — displacing victims is part of what this
	// admission cost.
	for _, v := range victims {
		m.relocateVictim(v, out, maxRetries)
	}
	m.mu.Lock()
	m.finishLocked(out, ad, nil)
	m.mu.Unlock()
	return true
}

// relocateVictim tries to keep a preempted (already released) victim
// running by committing a relocated mapping; when nothing fits it records
// the eviction. Runs outside all locks except the short sharded commits.
func (m *Manager) relocateVictim(v *Admission, out *Outcome, maxRetries int) {
	vm := &core.Mapper{Lib: v.lib, Cfg: m.cfg}
	var repairAttempts uint64
	for attempt := 0; ; attempt++ {
		repairStart := time.Now()
		snap := m.Snapshot()
		rep, err := vm.Relocate(v.Result, snap)
		out.Repair += time.Since(repairStart)
		repairAttempts++
		if err != nil {
			break // nothing to salvage or infeasible: evict
		}
		commitStart := time.Now()
		plan, perr := core.NewPlan(m.plat, rep)
		if perr != nil {
			out.Commit += time.Since(commitStart)
			break
		}
		footprint := plan.Regions()
		m.locks.Lock(footprint)
		verr := plan.Validate(m.plat)
		if verr == nil {
			plan.Commit(m.plat)
			m.journalPlan(journal.EvRelocate, v.App.Name, v.Priority, plan)
			m.locks.Unlock(footprint)
			out.Commit += time.Since(commitStart)
			m.mu.Lock()
			// The relocated mapping may use different tiles and energy;
			// re-charge so the load estimate tracks the new placement.
			m.loadRelease(v)
			v.Result = rep
			m.loadCharge(v)
			delete(m.preempting, v.App.Name)
			m.running[v.App.Name] = v
			m.stats.Relocations++
			m.stats.RepairAttempts += repairAttempts
			m.mu.Unlock()
			return
		}
		m.locks.Unlock(footprint)
		out.Commit += time.Since(commitStart)
		if attempt >= maxRetries {
			break // lost too many commit races: evict
		}
	}
	m.mu.Lock()
	// Journal the eviction before the name frees up: a re-admission of
	// the same name must append after it, or replay would apply the
	// eviction to the newcomer.
	m.journalEvent(journal.Event{Type: journal.EvEvict, App: v.App.Name})
	delete(m.preempting, v.App.Name)
	m.loadRelease(v)
	m.stats.Evictions++
	m.stats.RepairAttempts += repairAttempts
	m.mu.Unlock()
}
