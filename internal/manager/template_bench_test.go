package manager

import (
	"testing"

	"rtsm/internal/arch"
	"rtsm/internal/core"
	"rtsm/internal/model"
)

// fullTemplatePool returns a cache with one fingerprint's pool filled to
// capacity, the worst case for the rotation.
func fullTemplatePool() (*templateCache, string) {
	tc := newTemplateCache()
	const fp = "bench-fp"
	for i := 0; i < templatePoolSize; i++ {
		tc.put(fp, &core.Result{Mapping: &core.Mapping{
			Tile: map[model.ProcessID]arch.TileID{0: arch.TileID(i)},
		}})
	}
	return tc, fp
}

// TestTemplateGetZeroAlloc pins the satellite claim: handing out a full
// pool with its rotation offset allocates nothing — get returns the
// cache's own copy-on-write header plus an index instead of building a
// rotated copy per lookup.
func TestTemplateGetZeroAlloc(t *testing.T) {
	tc, fp := fullTemplatePool()
	allocs := testing.AllocsPerRun(1000, func() {
		pool, start := tc.get(fp)
		if len(pool) != templatePoolSize || start < 0 || start >= len(pool) {
			t.Fatalf("bad pool/start: %d/%d", len(pool), start)
		}
	})
	if allocs != 0 {
		t.Fatalf("templateCache.get allocates %v objects per lookup, want 0", allocs)
	}
}

// TestTemplateGetRotates: successive lookups spread start indices over
// the whole pool, so concurrent instances of one structure do not all
// fight for the same first template.
func TestTemplateGetRotates(t *testing.T) {
	tc, fp := fullTemplatePool()
	seen := make(map[int]bool)
	for i := 0; i < 4*templatePoolSize; i++ {
		_, start := tc.get(fp)
		seen[start] = true
	}
	if len(seen) != templatePoolSize {
		t.Fatalf("rotation visited %d of %d start indices", len(seen), templatePoolSize)
	}
}

// BenchmarkTemplateGet measures the template-pool lookup on the
// admission fast path; run with -benchmem, the acceptance claim is
// 0 B/op, 0 allocs/op.
func BenchmarkTemplateGet(b *testing.B) {
	tc, fp := fullTemplatePool()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool, start := tc.get(fp)
		if pool[start%len(pool)] == nil {
			b.Fatal("nil template")
		}
	}
}

// BenchmarkTemplateGetParallel is the contended variant: many admission
// workers rotating through one hot fingerprint.
func BenchmarkTemplateGetParallel(b *testing.B) {
	tc, fp := fullTemplatePool()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			pool, start := tc.get(fp)
			if pool[start%len(pool)] == nil {
				b.Fatal("nil template")
			}
		}
	})
}
