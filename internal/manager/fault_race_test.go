package manager

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"rtsm/internal/arch"
	"rtsm/internal/core"
	"rtsm/internal/journal"
	"rtsm/internal/model"
	"rtsm/internal/workload"
)

// TestFaultStormAccountingUnderChurn storms tile faults through region 0
// — fail, evacuate, restore, repeat — while best-effort admissions churn
// region 3, all journaled, all under -race. It pins three properties of
// the evacuation path:
//
//  1. Evacuation accounting partitions: every resident a fault touches
//     is relocated or dropped, never both and never neither, and the
//     Stats counters agree with the per-fault reports.
//  2. The ledger survives: invariants hold and a full teardown returns
//     the platform to pristine.
//  3. Journal order equals commit order: replaying the full journal
//     into a pristine twin reproduces the live platform bit-for-bit,
//     which could not hold if any region's events were appended out of
//     commit order during the storm.
func TestFaultStormAccountingUnderChurn(t *testing.T) {
	plat := workload.SyntheticRegionPlatform(8, 8, 123, 4)
	replayBase := plat.Clone()
	pristine := plat.Residual()

	var buf bytes.Buffer
	jw := journal.NewWriter(&buf, journal.Options{BatchSize: 32})
	m := New(plat, core.Config{})
	m.SetJournal(jw)
	m.SetMappingReuse(true)
	m.SetRepair(true)
	m.SetPreemption(true)

	// Region-0 processing tiles are the storm's targets.
	var stormTiles []arch.TileID
	for _, tl := range plat.Tiles {
		switch tl.Type {
		case arch.TypeSource, arch.TypeSink, arch.TypeNone:
			continue
		}
		if plat.RegionOfTile(tl.ID) == 0 {
			stormTiles = append(stormTiles, tl.ID)
		}
	}
	if len(stormTiles) == 0 {
		t.Fatal("no processing tiles in region 0")
	}

	// Saturate region 0 so the storm has residents to evacuate.
	for i := 0; i < 100; i++ {
		app, lib := workload.Synthetic(workload.SynthOptions{
			Shape: workload.ShapeChain, Processes: 3, Seed: int64(i % 5),
			MaxUtil: 0.25, PeriodNs: 400_000,
			SrcTile: "SRC0", SinkTile: "SINK0",
			Priority: model.BestEffort,
		})
		app.Name = fmt.Sprintf("r0-%d", i)
		if out := m.Admit(app, lib); !out.Admitted {
			break
		}
	}

	var wg sync.WaitGroup
	var reports []FaultReport
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 40; k++ {
			id := stormTiles[k%len(stormTiles)]
			if rep := m.FailTile(id); rep.Failed {
				reports = append(reports, rep)
			}
			m.RestoreTile(id)
		}
	}()
	const churnWorkers = 2
	const perWorker = 40
	for w := 0; w < churnWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n := w*perWorker + i
				app, lib := workload.Synthetic(workload.SynthOptions{
					Shape: workload.ShapeChain, Processes: 3 + n%3, Seed: int64(n % 7),
					MaxUtil: 0.10, PeriodNs: 40_000,
					SrcTile: "SRC3", SinkTile: "SINK3",
				})
				app.Name = fmt.Sprintf("r3-%d-%d", w, i)
				if out := m.Admit(app, lib); out.Admitted {
					if err := m.Stop(app.Name); err != nil && !errors.Is(err, ErrRelocating) {
						t.Errorf("churn stop %s: %v", app.Name, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if len(reports) == 0 {
		t.Fatal("storm injected no faults; fixture broken")
	}

	// Property 1: each report partitions its residents.
	var relocated, dropped uint64
	for fi, rep := range reports {
		seen := map[string]string{}
		for _, name := range rep.Relocated {
			seen[name] = "relocated"
		}
		for _, name := range rep.Dropped {
			if prev, dup := seen[name]; dup {
				t.Fatalf("fault %d: resident %q both %s and dropped", fi, name, prev)
			}
			seen[name] = "dropped"
		}
		if len(seen) != len(rep.Residents) {
			t.Fatalf("fault %d: %d residents, but %d evacuation outcomes", fi, len(rep.Residents), len(seen))
		}
		for _, name := range rep.Residents {
			if _, ok := seen[name]; !ok {
				t.Fatalf("fault %d: resident %q has no evacuation outcome", fi, name)
			}
		}
		relocated += uint64(len(rep.Relocated))
		dropped += uint64(len(rep.Dropped))
	}
	st := m.Stats()
	if st.FaultRelocated != relocated || st.FaultDropped != dropped {
		t.Fatalf("stats disagree with reports: relocated %d/%d, dropped %d/%d",
			st.FaultRelocated, relocated, st.FaultDropped, dropped)
	}
	if relocated == 0 {
		t.Fatal("storm never relocated a resident; fixture too weak")
	}

	// Property 3: full-journal replay reproduces the live platform.
	for _, id := range plat.FailedTiles() {
		m.RestoreTile(id)
	}
	jw.Flush()
	if err := jw.Err(); err != nil {
		t.Fatalf("journal writer: %v", err)
	}
	rm, tail, err := Replay(replayBase, core.Config{}, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if tail != 0 {
		t.Fatalf("flushed journal left %d torn events", tail)
	}
	if err := arch.PlatformsIdentical(plat, replayBase); err != nil {
		t.Fatalf("replayed platform differs from live platform after storm: %v", err)
	}
	if err := rm.CheckInvariants(); err != nil {
		t.Fatalf("replayed manager invariants: %v", err)
	}

	// Property 2: invariants and pristine teardown on the live manager.
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants after storm: %v", err)
	}
	for _, ad := range m.Running() {
		if err := m.Stop(ad.App.Name); err != nil {
			t.Fatalf("teardown stop %s: %v", ad.App.Name, err)
		}
	}
	if final := m.Residual(); !final.Equal(pristine) {
		d := pristine.Diff(final)
		t.Fatalf("ledger not pristine after storm teardown: %d tiles, %d links drifted",
			len(d.Tiles), len(d.Links))
	}
	t.Logf("fault storm: %d faults, %d relocated, %d dropped, %d restores",
		len(reports), relocated, dropped, st.Restores)
}
