package manager

import (
	"fmt"
	"sync"
	"testing"

	"rtsm/internal/core"
	"rtsm/internal/model"
	"rtsm/internal/workload"
)

// TestEpochSnapshotSharingStress drives concurrent admissions and
// departures with copy-on-write epoch snapshots on (the defaults) and,
// under -race, pins the sharing protocol: many workers map against the
// same frozen base snapshot while commits fault regions in on the live
// platform, the ledger stays invariant-clean and returns to pristine,
// and the statistics show that sharing actually happened — admissions
// served from an existing epoch snapshot plus base captures add up to
// more than the captures alone.
func TestEpochSnapshotSharingStress(t *testing.T) {
	plat := workload.SyntheticRegionPlatform(8, 8, 123, 4)
	pristine := plat.Residual()
	m := New(plat, core.Config{})
	// No template reuse: every admission must take (or share) a base
	// snapshot, so the sharing counters are actually exercised. A
	// non-zero lag makes sharing frequent regardless of how commits
	// interleave with captures on the host running the test.
	m.SetMappingReuse(false)
	m.SetEpochLag(4)

	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n := w*perWorker + i
				app, lib := workload.Synthetic(workload.SynthOptions{
					Shape: workload.ShapeChain, Processes: 3 + n%3, Seed: int64(n % 6),
					MaxUtil: 0.12, PeriodNs: 40_000,
					SrcTile: fmt.Sprintf("SRC%d", n%4), SinkTile: fmt.Sprintf("SINK%d", n%4),
				})
				app.Name = fmt.Sprintf("epoch-%d", n)
				out := m.Admit(app, lib)
				if out.Admitted {
					if err := m.Stop(app.Name); err != nil {
						t.Errorf("stop %s: %v", app.Name, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("ledger corrupted under shared epoch snapshots: %v", err)
	}
	if final := m.Residual(); !final.Equal(pristine) {
		d := pristine.Diff(final)
		t.Fatalf("reservations leaked: %d tiles, %d links drifted", len(d.Tiles), len(d.Links))
	}
	st := m.Stats()
	if st.Admitted == 0 {
		t.Fatal("stress run admitted nothing")
	}
	if st.Snapshots == 0 {
		t.Fatal("no base snapshots recorded; counter plumbing broken")
	}
	if st.SnapshotsShared == 0 {
		t.Fatalf("no admission shared an epoch snapshot across %d concurrent arrivals (Snapshots=%d)",
			st.Admitted+st.Rejected, st.Snapshots)
	}
	if st.CoWFaults == 0 {
		t.Fatal("no CoW faults recorded despite commits on shared snapshots")
	}
	t.Logf("epoch stress: %d admitted, %d base snapshots, %d shared, %d CoW faults",
		st.Admitted, st.Snapshots, st.SnapshotsShared, st.CoWFaults)
}

// TestEpochDisabledTakesPerAdmissionSnapshots pins the ablation: with
// epoch sharing off every admission captures its own base snapshot.
func TestEpochDisabledTakesPerAdmissionSnapshots(t *testing.T) {
	m := New(workload.SyntheticPlatform(5, 5, 9), core.Config{})
	m.SetMappingReuse(false)
	m.SetEpochSnapshots(false)
	for i := 0; i < 6; i++ {
		app, lib := workload.Synthetic(workload.SynthOptions{
			Shape: workload.ShapeChain, Processes: 3, Seed: int64(i), MaxUtil: 0.1,
		})
		app.Name = fmt.Sprintf("noepoch-%d", i)
		out := m.Admit(app, lib)
		if out.Admitted {
			if err := m.Stop(app.Name); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := m.Stats()
	if st.SnapshotsShared != 0 {
		t.Fatalf("epoch sharing off but %d admissions shared a snapshot", st.SnapshotsShared)
	}
	if st.Snapshots == 0 {
		t.Fatal("no snapshots recorded")
	}
}

// TestDeepCopySnapshotModeStillWorks pins the -cow=false ablation end to
// end: deep snapshots under all region locks, no sharing, no faults,
// same admission outcomes.
func TestDeepCopySnapshotModeStillWorks(t *testing.T) {
	plat := workload.SyntheticPlatform(5, 5, 9)
	pristine := plat.Residual()
	m := New(plat, core.Config{})
	m.SetCoWSnapshots(false)
	var admitted []string
	for i := 0; i < 8; i++ {
		app, lib := workload.Synthetic(workload.SynthOptions{
			Shape: workload.ShapeChain, Processes: 3, Seed: int64(i), MaxUtil: 0.1,
			Priority: model.Priority(i % model.NumPriorities),
		})
		app.Name = fmt.Sprintf("deep-%d", i)
		if out := m.Admit(app, lib); out.Admitted {
			admitted = append(admitted, app.Name)
		}
	}
	st := m.Stats()
	if st.Admitted == 0 {
		t.Fatal("deep-copy mode admitted nothing")
	}
	if st.CoWFaults != 0 {
		t.Fatalf("deep-copy mode recorded %d CoW faults, want 0", st.CoWFaults)
	}
	for _, name := range admitted {
		if err := m.Stop(name); err != nil {
			t.Fatal(err)
		}
	}
	if final := m.Residual(); !final.Equal(pristine) {
		t.Fatal("deep-copy mode leaked reservations")
	}
}
