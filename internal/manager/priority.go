package manager

import (
	"sync"
	"time"

	"rtsm/internal/model"
)

// Priority-aware admission queue. The pipeline used to be one FIFO
// channel: under load a latency-critical arrival waited behind best-effort
// churn. The prioQueue replaces it with one FIFO per admission class plus
// aging: a worker pops the head with the highest *effective* class, where
// a job's effective class grows by one level per Aging of queue time (up
// to Critical). Strict priority alone would starve best-effort work under
// a continuous critical stream; with aging, once a job has waited
// Aging×(NumPriorities−1−class) it competes at the top class, and the
// enqueue-time tie-break then guarantees no later arrival of any class is
// popped before it — the bounded-bypass fairness property
// priority_prop_test.go pins.

// DefaultAging is the queue time that promotes a waiting admission by one
// priority class. See Pipeline.SetAging.
const DefaultAging = 100 * time.Millisecond

// prioQueue is a bounded multi-class FIFO. All methods are safe for
// concurrent use. The zero value is not usable; see newPrioQueue.
type prioQueue struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	queues   [model.NumPriorities][]*job
	size     int
	depth    int
	aging    time.Duration
	closed   bool
	// now is the clock, injectable so the fairness property tests can
	// drive aging deterministically.
	now func() time.Time
}

// newPrioQueue returns a queue holding at most depth jobs (depth < 1 is
// treated as 1: a single handoff slot).
func newPrioQueue(depth int, aging time.Duration) *prioQueue {
	if depth < 1 {
		depth = 1
	}
	q := &prioQueue{depth: depth, aging: aging, now: time.Now}
	q.notEmpty.L = &q.mu
	q.notFull.L = &q.mu
	return q
}

// setAging adjusts the promotion interval (≤ 0 disables aging: strict
// class order, best-effort may starve).
func (q *prioQueue) setAging(d time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.aging = d
}

// clampPriority folds out-of-range classes into the valid range so a
// wild priority value cannot index outside the per-class queues.
func clampPriority(p model.Priority) model.Priority {
	if p < 0 {
		return 0
	}
	if int(p) >= model.NumPriorities {
		return model.Priority(model.NumPriorities - 1)
	}
	return p
}

// effectiveClass is the class the job competes at now: its own class plus
// one level per aging interval spent queued, capped at the top class.
func (q *prioQueue) effectiveClass(j *job, now time.Time) int {
	c := int(clampPriority(j.prio))
	if q.aging <= 0 {
		return c
	}
	c += int(now.Sub(j.enqueued) / q.aging)
	if c >= model.NumPriorities {
		c = model.NumPriorities - 1
	}
	return c
}

// push enqueues a job, blocking while the queue is full. It reports false
// when the queue closed (before or while waiting for a slot).
func (q *prioQueue) push(j *job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size >= q.depth && !q.closed {
		q.notFull.Wait()
	}
	if q.closed {
		return false
	}
	q.enqueueLocked(j)
	return true
}

// tryPush is push without the blocking: ok is false when the queue is
// full or closed, and closed distinguishes the two so callers can count
// a full-queue refusal as load shed rather than a shutdown.
func (q *prioQueue) tryPush(j *job) (ok, closed bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.size >= q.depth {
		return false, q.closed
	}
	q.enqueueLocked(j)
	return true, false
}

func (q *prioQueue) enqueueLocked(j *job) {
	// Stamp the enqueue time with the queue's own clock, the same source
	// the aging promotion reads: under an injected test clock the
	// worker's wait accounting and the effective-class computation now
	// agree by construction (they used to diverge when jobs stamped
	// themselves with time.Now at construction).
	j.enqueued = q.now()
	c := clampPriority(j.prio)
	q.queues[c] = append(q.queues[c], j)
	q.size++
	q.notEmpty.Signal()
}

// clock reads the queue's time source — the one enqueue stamps and aging
// reads — so callers computing queue waits stay consistent with both.
func (q *prioQueue) clock() time.Time {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.now()
}

// pop dequeues the job with the highest effective class, breaking ties by
// enqueue time (oldest first). It blocks while the queue is empty and
// returns false once the queue is closed and drained.
func (q *prioQueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 {
		if q.closed {
			return nil, false
		}
		q.notEmpty.Wait()
	}
	j := q.dequeueLocked()
	q.notFull.Signal()
	return j, true
}

// dequeueLocked removes and returns the winning head. Within a class FIFO
// order makes the head the oldest — and therefore the highest-effective —
// job of its class, so only the heads need comparing.
func (q *prioQueue) dequeueLocked() *job {
	now := q.now()
	best := -1
	bestClass := -1
	for c := range q.queues {
		if len(q.queues[c]) == 0 {
			continue
		}
		head := q.queues[c][0]
		eff := q.effectiveClass(head, now)
		if best < 0 || eff > bestClass ||
			(eff == bestClass && head.enqueued.Before(q.queues[best][0].enqueued)) {
			best, bestClass = c, eff
		}
	}
	j := q.queues[best][0]
	q.queues[best][0] = nil // release the slot for GC
	q.queues[best] = q.queues[best][1:]
	q.size--
	return j
}

// popBatch dequeues up to max jobs in one drain, highest effective class
// first — the size-or-latency trigger of the batched admission path. It
// blocks like pop for the first job, then collects whatever else is
// queued; if the queue runs dry before the batch fills and linger is
// positive, it waits up to linger (in small slices, so a burst arriving
// mid-wait completes the batch early) for stragglers. It returns nil
// once the queue is closed and drained.
func (q *prioQueue) popBatch(max int, linger time.Duration) []*job {
	if max < 1 {
		max = 1
	}
	first, ok := q.pop()
	if !ok {
		return nil
	}
	batch := make([]*job, 1, max)
	batch[0] = first
	deadline := time.Now().Add(linger)
	for len(batch) < max {
		q.mu.Lock()
		for q.size > 0 && len(batch) < max {
			batch = append(batch, q.dequeueLocked())
			q.notFull.Signal()
		}
		closed := q.closed
		q.mu.Unlock()
		if len(batch) == max || closed || linger <= 0 || !time.Now().Before(deadline) {
			break
		}
		// A condition variable has no timed wait in Go; a short sleep
		// slice bounds the latency cost at `linger` while still letting
		// a mid-wait burst fill the batch.
		time.Sleep(batchLingerSlice)
	}
	return batch
}

// batchLingerSlice is the poll interval popBatch waits in while lingering
// for a batch to fill.
const batchLingerSlice = 50 * time.Microsecond

// close marks the queue closed and wakes every waiter. Queued jobs remain
// poppable; pushes fail from here on.
func (q *prioQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

// len returns the number of queued jobs.
func (q *prioQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}
