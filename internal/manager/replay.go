package manager

import (
	"fmt"
	"io"

	"rtsm/internal/arch"
	"rtsm/internal/core"
	"rtsm/internal/journal"
	"rtsm/internal/model"
)

// Replay rebuilds a crashed manager from its journal: the stream is
// verified (hash chain, Merkle roots, sequence order), the torn tail —
// events appended after the last seal — is discarded, and the sealed
// events are applied in order to the given fresh platform. plat must be
// pristine and topologically identical to the crashed manager's (same
// mesh, same partition); the journal carries reservation deltas, not
// topology.
//
// The reconstruction is bit-for-bit: every journaled event carries the
// exact aggregated per-tile float delta its live commit applied
// (math.Float64bits round-trip), events were appended inside the same
// region-locked sections that applied them (per-region journal order =
// commit order), and replay applies each event as the same single
// commit or release call — so the replayed ledger, including the
// order-sensitive ReservedUtil float sums, equals the live one exactly.
//
// Rebuilt residents carry no Result or library (those did not survive
// the crash): they can be stopped, inspected and displaced by faults,
// but not relocated or preempted. The returned tail count is how many
// unsealed trailing events were discarded.
func Replay(plat *arch.Platform, cfg core.Config, r io.Reader) (*Manager, int, error) {
	events, tail, err := journal.Verify(r)
	if err != nil {
		return nil, tail, err
	}
	m, err := replayEvents(plat, cfg, events)
	return m, tail, err
}

// ReplaySegments is Replay over a rotated journal: the segments are the
// files a sequence of Writer.Rotate calls produced, oldest first. The
// chain is verified end to end (each later segment's snapshot head must
// carry the previous segment's final seal as its seed) and the combined
// event stream is applied exactly as Replay would apply a single
// segment, so a rotated journal rebuilds the same bit-for-bit platform.
func ReplaySegments(plat *arch.Platform, cfg core.Config, segments ...io.Reader) (*Manager, int, error) {
	events, tail, err := journal.VerifyChain(segments...)
	if err != nil {
		return nil, tail, err
	}
	m, err := replayEvents(plat, cfg, events)
	return m, tail, err
}

// ReplayEvents applies an already-verified event stream to a fresh
// manager over plat. It is the replay half of crash recovery when the
// caller did its own verification — journal.Recover / RecoverFiles
// return the sealed events plus the chain position for a resumed
// writer; this turns those events into the live manager. The same
// pristine-platform and bit-for-bit guarantees as Replay apply.
func ReplayEvents(plat *arch.Platform, cfg core.Config, events []journal.Event) (*Manager, error) {
	return replayEvents(plat, cfg, events)
}

// replayEvents applies a verified event stream to a fresh manager.
func replayEvents(plat *arch.Platform, cfg core.Config, events []journal.Event) (*Manager, error) {
	m := New(plat, cfg)
	// released holds residents between a preemption or fault release and
	// the matching relocate (back to running) or evict (gone). Live
	// bookkeeping keeps a victim's load charged until its outcome;
	// replay mirrors that.
	released := make(map[string]*Admission)
	for i := range events {
		e := &events[i]
		switch e.Type {
		case journal.EvAdmit:
			plan := replayPlan(m, e)
			plan.Commit(plat)
			m.seq++
			prio := clampPriority(model.Priority(e.Priority))
			ad := &Admission{
				App:           model.NewApplication(e.App, model.QoS{Priority: prio}),
				Seq:           m.seq,
				Priority:      prio,
				plan:          plan,
				loadUtilMilli: planUtilMilli(plan),
			}
			m.running[e.App] = ad
			m.load.add(ad.loadUtilMilli, 0)
		case journal.EvDepart:
			replayPlan(m, e).Release(plat)
			if ad := m.running[e.App]; ad != nil {
				delete(m.running, e.App)
				m.load.remove(ad.loadUtilMilli, ad.loadEnergyMilli)
			}
		case journal.EvPreemptRelease, journal.EvFaultRelease:
			replayPlan(m, e).Release(plat)
			if ad := m.running[e.App]; ad != nil {
				delete(m.running, e.App)
				released[e.App] = ad
			}
		case journal.EvRelocate:
			plan := replayPlan(m, e)
			plan.Commit(plat)
			ad := released[e.App]
			if ad == nil {
				// A relocation with no release on record would mean the
				// journal skipped a reservation change.
				return nil, fmt.Errorf("manager: replay: relocate of %q without a prior release (seq %d)", e.App, e.Seq)
			}
			delete(released, e.App)
			m.load.remove(ad.loadUtilMilli, ad.loadEnergyMilli)
			ad.plan = plan
			ad.loadUtilMilli = planUtilMilli(plan)
			ad.loadEnergyMilli = 0
			m.load.add(ad.loadUtilMilli, 0)
			m.running[e.App] = ad
		case journal.EvEvict:
			if ad := released[e.App]; ad != nil {
				delete(released, e.App)
				m.load.remove(ad.loadUtilMilli, ad.loadEnergyMilli)
			}
		case journal.EvFailTile:
			plat.FailTile(e.Tile)
		case journal.EvRestoreTile:
			plat.RestoreTile(e.Tile)
		case journal.EvFailLink:
			plat.FailLink(e.Link)
		case journal.EvRestoreLink:
			plat.RestoreLink(e.Link)
		default:
			return nil, fmt.Errorf("manager: replay: unknown event type %q (seq %d)", e.Type, e.Seq)
		}
	}
	if len(released) > 0 {
		// Victims mid-evacuation at the crash: their release is sealed
		// but their outcome is not. They hold no reservations, so the
		// honest reconstruction is "gone" — exactly what the live manager
		// would have concluded had it crashed after the release.
		for name, ad := range released {
			m.load.remove(ad.loadUtilMilli, ad.loadEnergyMilli)
			delete(released, name)
		}
	}
	return m, nil
}

// replayPlan rebuilds one event's reservation plan from its deltas.
func replayPlan(m *Manager, e *journal.Event) *core.Plan {
	ts, ls := e.Reservations()
	return core.NewDeltaPlan(m.plat, e.App, ts, ls)
}

// planUtilMilli estimates a replayed resident's load contribution from
// its journaled per-tile utilisation deltas. It approximates the live
// loadCharge (which truncates per process, not per tile); the load
// estimate is advisory, unlike the ledger it never needs to be exact.
func planUtilMilli(p *core.Plan) int64 {
	tiles, _ := p.Deltas()
	var milli int64
	for _, t := range tiles {
		milli += int64(t.Util * 1000)
	}
	return milli
}
