// Package manager implements the on-line resource manager the paper's
// setting presumes (§1.3: "the spatial mapping is performed always when a
// new streaming application is started"): applications arrive and leave at
// run time, each arrival is mapped against the platform's actual residual
// resources, admitted if a feasible mapping exists, and holds its
// reservations until it stops. This is the component a deployment would
// run on the control processor; the examples and experiment E12 exercise
// it.
//
// Admission is a concurrent pipeline. The expensive part of an admission —
// the four-step spatial mapping — runs outside the platform lock, against
// a point-in-time Snapshot of the platform's residual state, so many
// arrivals can be mapped in parallel. Only the commit is serialized: it
// re-validates the mapping against the live platform (core.Apply is
// transactional) and, when a competing admission claimed the resources
// since the snapshot was taken, re-snapshots and re-maps — optimistic
// concurrency with bounded retries. Use Pipeline for a bounded work queue
// feeding N admission workers.
package manager

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"rtsm/internal/arch"
	"rtsm/internal/core"
	"rtsm/internal/model"
)

// DefaultMaxRetries bounds how many times one admission re-maps after a
// commit conflict or a stale infeasible verdict before giving up.
const DefaultMaxRetries = 3

// Admission records one running application.
type Admission struct {
	App    *model.Application
	Result *core.Result
	// Seq is the admission order, for deterministic reporting.
	Seq int
}

// RejectionError reports why an application was not admitted.
type RejectionError struct {
	App    string
	Reason string
}

func (e *RejectionError) Error() string {
	return fmt.Sprintf("manager: %q rejected: %s", e.App, e.Reason)
}

// Outcome is the full per-admission report of one Admit call: how it
// ended, how many mapping rounds it took and where the time went.
type Outcome struct {
	App string
	// Admitted is true when the application now holds reservations.
	Admitted bool
	// Attempts counts mapping rounds: 1 for a clean admission, more when
	// commit conflicts or stale snapshots forced a re-map.
	Attempts int
	// Wait is the time spent queued before a pipeline worker picked the
	// request up (zero for direct Admit/Start calls).
	Wait time.Duration
	// Map is the total time spent in full four-step mapping, outside the
	// platform lock, summed over attempts.
	Map time.Duration
	// Repair is the total time spent in incremental repair of stale
	// mappings, also outside the platform lock.
	Repair time.Duration
	// Commit is the total time spent in the serialized commit section.
	Commit time.Duration
	// Repaired is true when the committed mapping came from core.Repair
	// rather than a full four-step map.
	Repaired bool
	// Admission is the resulting reservation record, nil unless admitted.
	Admission *Admission
	// Err is nil when admitted and a *RejectionError (or duplicate-name
	// error) otherwise.
	Err error
}

// Stats aggregates admission outcomes over the manager's lifetime.
type Stats struct {
	Admitted uint64
	Rejected uint64
	// Conflicts counts commit attempts that found the platform changed in
	// a way that invalidated the speculative mapping.
	Conflicts uint64
	// Retries counts extra mapping rounds run because of conflicts or
	// stale snapshots (Attempts beyond the first, summed over arrivals).
	Retries uint64
	// TemplateHits counts admissions committed from a reused mapping
	// template without running the mapper (see SetMappingReuse).
	TemplateHits uint64
	// StaleTemplates counts template instantiations where a pool existed
	// but no remembered placement fit the live platform.
	StaleTemplates uint64
	// ConflictRetries counts mapping rounds re-entered after a commit
	// conflict (the retried subset of Conflicts).
	ConflictRetries uint64
	// RepairedConflicts and RepairedTemplates count conflict-retry and
	// stale-template rounds resolved by core.Repair: the round's mapping
	// came from refitting the stale one, no full four-step remap ran.
	// (Whether the commit then wins its own race is a separate event; a
	// lost commit shows up as a further ConflictRetries round.) Together
	// with FullRemaps they partition ConflictRetries + StaleTemplates.
	RepairedConflicts uint64
	RepairedTemplates uint64
	// RepairAttempts counts core.Repair invocations, successful or not.
	RepairAttempts uint64
	// FullRemaps counts conflict-retry and stale-template rounds that fell
	// back to the full four-step map (repair disabled, refused or
	// infeasible).
	FullRemaps uint64
	// Wait, Map, Repair and Commit accumulate the respective Outcome
	// durations.
	Wait   time.Duration
	Map    time.Duration
	Repair time.Duration
	Commit time.Duration
}

// RepairRate reports the fraction of retry-or-stale rounds resolved by
// incremental repair instead of a full remap; the second value is false
// when no such round happened.
func (s Stats) RepairRate() (float64, bool) {
	denom := s.ConflictRetries + s.StaleTemplates
	if denom == 0 {
		return 0, false
	}
	return float64(s.RepairedConflicts+s.RepairedTemplates) / float64(denom), true
}

// Manager owns a platform and the set of admitted applications. All
// methods are safe for concurrent use.
type Manager struct {
	cfg core.Config

	mu         sync.Mutex
	plat       *arch.Platform
	running    map[string]*Admission
	pending    map[string]struct{}
	seq        int
	stats      Stats
	maxRetries int
	templates  *templateCache // nil = mapping reuse disabled
	repair     bool           // repair stale mappings instead of re-mapping
}

// New returns a manager over the given platform. The platform is owned by
// the manager from here on: reservations of admitted applications live on
// it, and all access to it is serialized behind the manager's lock.
func New(plat *arch.Platform, cfg core.Config) *Manager {
	return &Manager{
		plat:       plat,
		cfg:        cfg,
		running:    make(map[string]*Admission),
		pending:    make(map[string]struct{}),
		maxRetries: DefaultMaxRetries,
		repair:     true,
	}
}

// SetRepair enables or disables the incremental remapping engine. When on
// (the default), a commit conflict or a stale template is repaired —
// core.Repair pins everything that still fits and re-places only the
// conflicting processes — and the full four-step map runs only when repair
// refuses or comes back infeasible. When off, every retry re-maps from
// scratch, the pre-repair behaviour.
func (m *Manager) SetRepair(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.repair = on
}

// SetMaxRetries bounds the optimistic-concurrency retry loop (0 disables
// retrying: one mapping round per arrival).
func (m *Manager) SetMaxRetries(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.maxRetries = n
}

// SetMappingReuse enables or disables the mapping template cache: when
// on, an arrival whose structure (Fingerprint) matches a previously
// admitted application first tries to commit that application's mapping —
// re-validated transactionally against the live platform — and only runs
// the full mapper when the template no longer fits. Reuse trades mapping
// optimality under load for admission latency; it is off by default.
func (m *Manager) SetMappingReuse(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if on && m.templates == nil {
		m.templates = newTemplateCache()
	} else if !on {
		m.templates = nil
	}
}

// Platform exposes the managed platform. It is safe to read only while no
// admissions are in flight; concurrent inspectors should use Snapshot or
// Residual instead.
func (m *Manager) Platform() *arch.Platform { return m.plat }

// Snapshot returns a point-in-time deep copy of the managed platform.
func (m *Manager) Snapshot() *arch.Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.plat.Snapshot()
}

// Residual returns the platform's current free-capacity view.
func (m *Manager) Residual() arch.Residual {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.plat.Residual()
}

// Stats returns a copy of the accumulated admission statistics.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Start maps the application against the current platform state and
// admits it when feasible. Application names identify admissions and must
// be unique among running applications. Start is Admit without the
// outcome report.
func (m *Manager) Start(app *model.Application, lib *model.Library) (*Admission, error) {
	out := m.Admit(app, lib)
	if out.Err != nil {
		return nil, out.Err
	}
	return out.Admission, nil
}

// Admit runs one admission through the pipeline — snapshot, speculative
// map, serialized validate-and-commit, bounded retry — and reports the
// outcome. Rejections are reported in Outcome.Err, not returned.
func (m *Manager) Admit(app *model.Application, lib *model.Library) Outcome {
	return m.admit(app, lib, 0)
}

// repairTrigger classifies why a round starts from a stale mapping, for
// the repair-vs-full-remap accounting.
type repairTrigger int

const (
	triggerNone     repairTrigger = iota
	triggerConflict               // a commit conflict invalidated the round's mapping
	triggerTemplate               // no pooled template placement fit the live platform
)

func (m *Manager) admit(app *model.Application, lib *model.Library, wait time.Duration) Outcome {
	out := Outcome{App: app.Name, Wait: wait}

	m.mu.Lock()
	if _, dup := m.running[app.Name]; dup {
		m.mu.Unlock()
		out.Err = fmt.Errorf("manager: application %q already running", app.Name)
		return out
	}
	if _, dup := m.pending[app.Name]; dup {
		m.mu.Unlock()
		out.Err = fmt.Errorf("manager: application %q is already being admitted", app.Name)
		return out
	}
	m.pending[app.Name] = struct{}{}
	tc := m.templates
	repairOn := m.repair
	m.mu.Unlock()

	mapper := &core.Mapper{Lib: lib, Cfg: m.cfg}

	// repairFrom is the stale mapping the next round refits instead of
	// mapping from scratch; trigger records what made it stale.
	var repairFrom *core.Result
	trigger := triggerNone
	var snap *arch.Snapshot

	// Fast path: structurally identical application admitted before —
	// try committing its mapping directly. Validation against the live
	// platform makes a stale template harmless: it can be refused, not
	// applied wrongly.
	var fp string
	if tc != nil {
		if f, err := Fingerprint(app, lib); err == nil {
			fp = f
			if pool := tc.get(fp); len(pool) > 0 {
				commitStart := time.Now()
				// Each failed Apply already computed the template's full
				// violation list; remember the least-conflicted template
				// as the cheapest one to repair instead of re-validating
				// the pool afterwards.
				leastConflicted := pool[0]
				leastViolations := -1
				m.mu.Lock()
				for _, tpl := range pool {
					if err := core.Apply(m.plat, tpl); err != nil {
						var conflict *core.ConflictError
						if errors.As(err, &conflict) &&
							(leastViolations < 0 || len(conflict.Violations) < leastViolations) {
							leastConflicted, leastViolations = tpl, len(conflict.Violations)
						}
						continue
					}
					m.seq++
					ad := &Admission{App: app, Result: tpl, Seq: m.seq}
					m.running[app.Name] = ad
					m.stats.TemplateHits++
					out.Commit += time.Since(commitStart)
					m.finishLocked(&out, ad, nil)
					m.mu.Unlock()
					return out
				}
				// No remembered placement fits the current residual
				// state. Instead of discarding the pool, repair a
				// template against a fresh snapshot: the placements that
				// still fit stay, only the conflicting processes are
				// re-placed.
				m.stats.StaleTemplates++
				snap = m.plat.Snapshot()
				m.mu.Unlock()
				out.Commit += time.Since(commitStart)
				trigger = triggerTemplate
				if repairOn {
					repairFrom = leastConflicted
				}
			}
		}
	}

	if snap == nil {
		m.mu.Lock()
		snap = m.plat.Snapshot()
		m.mu.Unlock()
	}

	// Counters accumulated outside the lock, folded into Stats at the
	// next commit section.
	var repairAttempts, fullRemaps uint64
	for {
		out.Attempts++
		var res *core.Result
		var mapErr error
		repaired := false
		if repairFrom != nil {
			repairStart := time.Now()
			rep, err := mapper.Repair(repairFrom, snap)
			out.Repair += time.Since(repairStart)
			repairAttempts++
			repairFrom = nil
			if err == nil && rep.Feasible {
				res = rep
				repaired = true
			}
		}
		if res == nil {
			// Full four-step map: the first round of a normal admission,
			// or the fallback when repair is off, refused or infeasible.
			if trigger != triggerNone {
				fullRemaps++
			}
			mapStart := time.Now()
			res, mapErr = mapper.Map(app, snap.Plat)
			out.Map += time.Since(mapStart)
		}

		commitStart := time.Now()
		m.mu.Lock()
		m.stats.RepairAttempts += repairAttempts
		m.stats.FullRemaps += fullRemaps
		repairAttempts, fullRemaps = 0, 0
		if repaired {
			// This retry/stale round was served by repair; no full remap
			// ran, whatever the commit below decides.
			switch trigger {
			case triggerConflict:
				m.stats.RepairedConflicts++
			case triggerTemplate:
				m.stats.RepairedTemplates++
			}
		}
		// The terminal branches below account the commit-section time
		// into out.Commit *before* finishLocked folds it into Stats; the
		// retry branches accumulate it after unlocking instead, and it
		// reaches Stats with the eventual terminal attempt.
		switch {
		case mapErr != nil:
			// Structural errors (unknown tiles, no implementations) do
			// not depend on residual state; no point retrying.
			out.Commit += time.Since(commitStart)
			m.finishLocked(&out, nil, &RejectionError{App: app.Name, Reason: mapErr.Error()})
		case !res.Feasible:
			// Infeasible against the snapshot. If the platform changed
			// since — e.g. an application stopped and freed resources —
			// the verdict may be stale; retry on fresh state.
			if m.plat.Version() != snap.Version && out.Attempts <= m.maxRetries {
				snap = m.plat.Snapshot()
				m.mu.Unlock()
				out.Commit += time.Since(commitStart)
				trigger = triggerNone
				continue
			}
			reason := "no feasible mapping with current occupancy"
			if n := len(res.Trace.Notes); n > 0 {
				reason = res.Trace.Notes[n-1]
			}
			out.Commit += time.Since(commitStart)
			m.finishLocked(&out, nil, &RejectionError{App: app.Name, Reason: reason})
		default:
			err := core.Apply(m.plat, res)
			if err == nil {
				m.seq++
				ad := &Admission{App: app, Result: res, Seq: m.seq}
				m.running[app.Name] = ad
				if repaired {
					out.Repaired = true
				}
				out.Commit += time.Since(commitStart)
				m.finishLocked(&out, ad, nil)
				if tc != nil && fp != "" {
					tc.put(fp, res)
				}
				break
			}
			var conflict *core.ConflictError
			if errors.As(err, &conflict) {
				m.stats.Conflicts++
				if out.Attempts <= m.maxRetries {
					// A competing admission won the resources between
					// snapshot and commit: repair the mapping we just
					// computed against fresh state (or re-map from
					// scratch when repair is off).
					m.stats.ConflictRetries++
					snap = m.plat.Snapshot()
					m.mu.Unlock()
					out.Commit += time.Since(commitStart)
					trigger = triggerConflict
					if repairOn {
						repairFrom = res
					}
					continue
				}
			}
			out.Commit += time.Since(commitStart)
			m.finishLocked(&out, nil, &RejectionError{App: app.Name, Reason: err.Error()})
		}
		m.mu.Unlock()
		return out
	}
}

// finishLocked records the end of an admission attempt. Callers hold m.mu.
func (m *Manager) finishLocked(out *Outcome, ad *Admission, err error) {
	delete(m.pending, out.App)
	if ad != nil {
		out.Admitted = true
		out.Admission = ad
		m.stats.Admitted++
	} else {
		out.Err = err
		m.stats.Rejected++
	}
	if out.Attempts > 0 {
		m.stats.Retries += uint64(out.Attempts - 1)
	}
	m.stats.Wait += out.Wait
	m.stats.Map += out.Map
	m.stats.Repair += out.Repair
	m.stats.Commit += out.Commit
}

// Stop releases the named application's resources.
func (m *Manager) Stop(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, pend := m.pending[name]; pend {
		return fmt.Errorf("manager: application %q is still being admitted", name)
	}
	ad, ok := m.running[name]
	if !ok {
		return fmt.Errorf("manager: application %q is not running", name)
	}
	core.Remove(m.plat, ad.Result)
	delete(m.running, name)
	return nil
}

// Running lists admitted applications in admission order.
func (m *Manager) Running() []*Admission {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Admission, 0, len(m.running))
	for _, ad := range m.running {
		out = append(out, ad)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// TotalEnergy sums the per-period energy of all running applications.
// Periods may differ between applications; the sum is meaningful as a
// power-proportional figure when periods are equal (as in the
// experiments) and otherwise serves as a coarse load indicator.
func (m *Manager) TotalEnergy() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var e float64
	for _, ad := range m.running {
		e += ad.Result.Energy.Total()
	}
	return e
}

// Load summarises platform occupancy: fraction of tiles powered, mean
// utilisation of powered tiles, and fraction of total link capacity
// reserved.
type Load struct {
	TilesPowered int
	TilesTotal   int
	MeanUtil     float64
	LinkReserved float64 // fraction of aggregate link capacity
}

// Load computes the current occupancy summary.
func (m *Manager) Load() Load {
	m.mu.Lock()
	defer m.mu.Unlock()
	var l Load
	var utilSum float64
	for _, t := range m.plat.Tiles {
		if t.Type == arch.TypeSource || t.Type == arch.TypeSink {
			continue
		}
		l.TilesTotal++
		if t.Occupants > 0 {
			l.TilesPowered++
			utilSum += t.ReservedUtil
		}
	}
	if l.TilesPowered > 0 {
		l.MeanUtil = utilSum / float64(l.TilesPowered)
	}
	var cap, res int64
	for _, link := range m.plat.Links {
		cap += link.CapBps
		res += link.ReservedBps
	}
	if cap > 0 {
		l.LinkReserved = float64(res) / float64(cap)
	}
	return l
}

// CheckInvariants verifies the platform's reservation ledger is sane: no
// tile or link over-committed, nothing negative. The stress tests call it
// while admissions are in flight.
func (m *Manager) CheckInvariants() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	const eps = 1e-9
	for _, t := range m.plat.Tiles {
		if t.ReservedMem < 0 || t.ReservedMem > t.MemBytes {
			return fmt.Errorf("tile %q memory ledger out of range: %d of %d", t.Name, t.ReservedMem, t.MemBytes)
		}
		if t.ReservedUtil < -eps || t.ReservedUtil > 1+eps {
			return fmt.Errorf("tile %q utilisation out of range: %v", t.Name, t.ReservedUtil)
		}
		if t.Occupants < 0 || (t.MaxOccupants > 0 && t.Occupants > t.MaxOccupants) {
			return fmt.Errorf("tile %q occupancy out of range: %d", t.Name, t.Occupants)
		}
		if t.NICapBps > 0 && (t.ReservedInBps < 0 || t.ReservedInBps > t.NICapBps ||
			t.ReservedOutBps < 0 || t.ReservedOutBps > t.NICapBps) {
			return fmt.Errorf("tile %q NI ledger out of range: in=%d out=%d cap=%d",
				t.Name, t.ReservedInBps, t.ReservedOutBps, t.NICapBps)
		}
	}
	for _, l := range m.plat.Links {
		if l.ReservedBps < 0 || l.ReservedBps > l.CapBps {
			return fmt.Errorf("link %d ledger out of range: %d of %d", l.ID, l.ReservedBps, l.CapBps)
		}
	}
	return nil
}
